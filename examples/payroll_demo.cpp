//===- payroll_demo.cpp - GADT on a realistic application -----------------===//
//
// The paper's long-range goal is "a semi-automatic debugging and testing
// system which can be used during large-scale program development of
// non-trivial programs". This demo plays that scenario on a payroll
// application:
//
//  1. the tax routine ships with a wrong bracket boundary;
//  2. the overtime routine is covered by a T-GEN test suite generated
//     from its specification (params/gen clauses — no hand-written test
//     code);
//  3. the debugging session consults the test database, slices on the
//     first wrong output, and localizes the bug down to the statements of
//     the bracket logic.
//
//   $ ./payroll_demo
//
//===----------------------------------------------------------------------===//

#include "core/GADT.h"
#include "core/ReferenceOracle.h"
#include "obs/Log.h"
#include "pascal/Frontend.h"
#include "pascal/PrettyPrinter.h"
#include "tgen/FrameGen.h"
#include "tgen/Generator.h"
#include "tgen/SpecParser.h"
#include "workload/Payroll.h"

#include <cstdio>

using namespace gadt;
using namespace gadt::core;

int main() {
  DiagnosticsEngine Diags;
  auto Buggy = pascal::parseAndCheck(workload::PayrollTaxBug, Diags);
  auto Intended = pascal::parseAndCheck(workload::PayrollCorrect, Diags);
  if (!Buggy || !Intended) {
    obs::logError("payroll_demo", Diags.str());
    return 1;
  }

  // Run both: the symptom.
  {
    interp::Interpreter IB(*Buggy), IC(*Intended);
    std::printf("shipped payroll run:  %s", IB.run().Output.c_str());
    std::printf("intended payroll run: %s\n", IC.run().Output.c_str());
  }

  // The overtime routine was tested before release: generate its suite
  // straight from the specification and record the reports.
  std::shared_ptr<tgen::TestSpec> OtSpec =
      tgen::parseSpec(workload::OvertimeSpec, Diags);
  if (!OtSpec) {
    obs::logError("payroll_demo", Diags.str());
    return 1;
  }
  tgen::FrameSet Frames = tgen::generateFrames(*OtSpec);
  auto Check = [&](const std::vector<interp::Value> &Args,
                   const interp::CallOutcome &Out) {
    interp::Interpreter I(*Intended);
    interp::CallOutcome Expected = I.callRoutine("overtimepay", Args);
    if (!Expected.Ok || !Out.Ok)
      return Expected.Ok == Out.Ok;
    for (const interp::Binding &B : Expected.Outputs)
      for (const interp::Binding &Got : Out.Outputs)
        if (Got.Name == B.Name && !Got.V.equals(B.V))
          return false;
    return true;
  };
  auto OtDB = std::make_shared<tgen::TestReportDB>(tgen::runTestSuite(
      *Buggy, *OtSpec, Frames, tgen::specInstantiator(*OtSpec), Check));
  std::printf("overtimepay test suite (from its spec): %u cases, %u "
              "passed\n%s\n",
              OtDB->passCount() + OtDB->failCount(), OtDB->passCount(),
              OtDB->str().c_str());

  // Debug.
  GADTSession Session(*Buggy, GADTOptions(), Diags);
  if (!Session.valid()) {
    obs::logError("payroll_demo", Diags.str());
    return 1;
  }
  Session.addTestDatabase(OtSpec, OtDB);
  IntendedProgramOracle User(*Intended);
  BugReport Bug = Session.debug(User);

  if (!Bug.Found) {
    std::printf("no bug localized: %s\n", Bug.Message.c_str());
    return 1;
  }
  std::printf("%s\n", Bug.Message.c_str());
  if (!Bug.WrongOutput.empty())
    std::printf("wrong output variable: %s\n", Bug.WrongOutput.c_str());
  std::printf("statements to inspect first:\n");
  for (const pascal::Stmt *S : Bug.CandidateStmts)
    std::printf("  %s: %s", S->getLoc().str().c_str(),
                pascal::printStmt(*S).c_str());
  std::printf("\ndialogue: %u judgements, %u answered by the engineer, ",
              Session.stats().Judgements, Session.stats().userQueries());
  unsigned Auto = 0;
  for (const auto &[Source, Count] : Session.stats().AnswersBySource)
    if (Source != "user")
      Auto += Count;
  std::printf("%u automatic; %u nodes sliced away\n", Auto,
              Session.stats().NodesPruned);
  return 0;
}
