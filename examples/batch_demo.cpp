//===- batch_demo.cpp - Debug a fleet of buggy programs in parallel -------===//
//
// Demonstrates the batch-debugging runtime: many (buggy program, intended
// program) pairs are queued as session requests and executed across a
// thread pool. Sessions over the same subject share its transformed
// program, system dependence graph and static slices through a
// RuntimeContext, so the second batch over the same fleet is served
// entirely from the warm caches.
//
//   $ ./batch_demo
//
// Set GADT_TRACE to watch the run in a trace viewer (README,
// "Observability"): every parse, transform, SDG build, cache lookup,
// oracle judgement and session is recorded as a span and flushed as JSONL
// at exit, with flow arrows stitching each session across worker threads.
// The other telemetry sinks ride the same run:
//
//   $ GADT_TRACE=batch.trace.jsonl GADT_LOG=batch.log.jsonl \
//     GADT_PROFILE=batch.collapsed:997 GADT_METRICS=batch.metrics.jsonl:50 \
//     ./batch_demo
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/BatchRunner.h"
#include "workload/PaperPrograms.h"
#include "workload/Synthetic.h"

#include <cstdio>
#include <cstdlib>

using namespace gadt;
using namespace gadt::runtime;
using namespace gadt::workload;

int main() {
  // The fleet: three distinct subjects, each debugged four times (think:
  // one buggy submission arriving from four different CI shards).
  std::vector<ProgramPair> Fleet = {
      chainProgram(8, 5),
      treeProgram(3),
      {Figure4Fixed, Figure4Buggy, "decrement"},
  };
  std::vector<SessionRequest> Requests;
  for (unsigned Round = 0; Round < 4; ++Round)
    for (const ProgramPair &P : Fleet) {
      SessionRequest R;
      R.Source = P.Buggy;
      R.Intended = P.Fixed;
      Requests.push_back(std::move(R));
    }

  auto Ctx = std::make_shared<RuntimeContext>();
  BatchRunner Runner(Ctx, {/*Threads=*/4});
  std::printf("debugging %zu sessions on %u threads...\n\n", Requests.size(),
              Runner.threadCount());
  obs::logInfo("batch_demo", "batch starting",
               {{"sessions", std::to_string(Requests.size()),
                 /*Quote=*/false},
                {"threads", std::to_string(Runner.threadCount()),
                 /*Quote=*/false}});

  std::vector<SessionResult> Results = Runner.run(Requests);
  for (size_t I = 0; I < Results.size(); ++I) {
    const SessionResult &R = Results[I];
    if (R.Found)
      std::printf("  [%2zu] bug in '%s' (%u oracle judgements)\n", I,
                  R.UnitName.c_str(), R.Stats.Judgements);
    else
      std::printf("  [%2zu] no bug found: %s\n", I, R.Message.c_str());
  }

  std::printf("\ncache accounting after the cold batch:\n  %s\n",
              Ctx->stats().str().c_str());

  // Run the same fleet again: every artifact is already cached.
  Runner.run(Requests);
  std::printf("after a warm batch over the same fleet:\n  %s\n",
              Ctx->stats().str().c_str());

  // The same numbers (and more: per-phase counters, session wall-time and
  // queue-wait histograms) live in the unified metrics registry.
  std::printf("\nmetrics registry snapshot:\n%s",
              obs::Registry::global().str().c_str());

  obs::logInfo("batch_demo", "batch complete",
               {{"sessions", std::to_string(Results.size()),
                 /*Quote=*/false}});

  if (const char *TracePath = std::getenv("GADT_TRACE"))
    std::printf("\ntracing: %llu events will be flushed to %s "
                "(load in chrome://tracing or Perfetto)\n",
                static_cast<unsigned long long>(
                    obs::Tracer::global().eventCount()),
                TracePath);
  if (!std::getenv("GADT_TRACE") && !std::getenv("GADT_PROFILE"))
    std::printf("\nhint: GADT_TRACE=t.jsonl GADT_LOG=l.jsonl "
                "GADT_PROFILE=p.collapsed GADT_METRICS=m.jsonl:50 %s\n",
                "./batch_demo");
  return 0;
}
