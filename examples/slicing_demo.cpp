//===- slicing_demo.cpp - Slicing end to end (paper Figures 2, 8, 9) ------===//
//
// Shows both faces of the slicing subsystem:
//  1. the classic program slice of Figure 2 — source in, reduced source
//     out; and
//  2. the execution-tree pruning of Section 7 — slice the Figure 4 trace
//     on one erroneous output and print the shrinking trees of Figures
//     8 and 9.
//
//   $ ./slicing_demo
//
//===----------------------------------------------------------------------===//

#include "analysis/SDG.h"
#include "obs/Log.h"
#include "pascal/Frontend.h"
#include "pascal/PrettyPrinter.h"
#include "slicing/ProgramProjection.h"
#include "slicing/StaticSlicer.h"
#include "slicing/TreePruner.h"
#include "trace/ExecTreeBuilder.h"
#include "workload/PaperPrograms.h"

#include <cstdio>

using namespace gadt;
using namespace gadt::slicing;

int main() {
  DiagnosticsEngine Diags;

  // --- Figure 2: slice program p on variable mul at the end.
  auto P = pascal::parseAndCheck(workload::Figure2, Diags);
  if (!P) {
    obs::logError("slicing_demo", Diags.str());
    return 1;
  }
  analysis::SDG G(*P);
  StaticSlice Slice = sliceOnProgramVar(G, *P, "mul");
  auto Projected = projectSlice(*P, Slice, Diags);
  if (!Projected) {
    obs::logError("slicing_demo", Diags.str());
    return 1;
  }
  std::printf("=== original program ===\n%s\n",
              pascal::printProgram(*P).c_str());
  std::printf("=== slice on mul (Figure 2b) ===\n%s\n",
              pascal::printProgram(*Projected).c_str());

  // --- Figures 8/9: prune the Figure 4 execution tree.
  auto Fig4 = pascal::parseAndCheck(workload::Figure4Buggy, Diags);
  if (!Fig4)
    return 1;
  analysis::SDG G4(*Fig4);
  interp::ExecResult Res;
  auto Tree = trace::buildExecTree(*Fig4, {}, {}, &Res);
  if (!Res.Ok)
    return 1;

  trace::ExecNode *Computs = nullptr, *Partialsums = nullptr;
  Tree->forEachNode([&](trace::ExecNode *N) {
    if (N->getName() == "computs")
      Computs = N;
    if (N->getName() == "partialsums")
      Partialsums = N;
  });

  StaticSlice OnR1 = sliceOnRoutineOutput(
      G4, Computs->getRoutine(), "r1");
  std::printf("=== execution tree pruned on computs output r1 "
              "(Figure 8) ===\n%s\n",
              renderPruned(Computs, pruneByStaticSlice(Computs, OnR1))
                  .c_str());

  StaticSlice OnS2 = sliceOnRoutineOutput(
      G4, Partialsums->getRoutine(), "s2");
  std::printf("=== execution tree pruned on partialsums output s2 "
              "(Figure 9) ===\n%s",
              renderPruned(Partialsums,
                           pruneByStaticSlice(Partialsums, OnS2))
                  .c_str());
  return 0;
}
