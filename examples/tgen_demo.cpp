//===- tgen_demo.cpp - T-GEN end to end (paper Figure 1) ------------------===//
//
// Reproduces the paper's Section 2 workflow on the arrsum specification:
// parse the spec, generate the test frames, group them into scripts,
// instantiate executable test cases, run them against the subject program,
// and print the resulting report database.
//
//   $ ./tgen_demo [--buggy]
//
// With --buggy the subject's arrsum is broken first, showing how failures
// land in the database.
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "pascal/Frontend.h"
#include "tgen/FrameGen.h"
#include "tgen/ReportDB.h"
#include "tgen/SpecParser.h"
#include "workload/ArrsumFixture.h"
#include "workload/PaperPrograms.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace gadt;
using namespace gadt::tgen;

int main(int argc, char **argv) {
  bool Buggy = argc > 1 && std::strcmp(argv[1], "--buggy") == 0;

  DiagnosticsEngine Diags;
  auto Spec = parseSpec(workload::ArrsumSpec, Diags);
  if (!Spec) {
    obs::logError("tgen_demo", Diags.str());
    return 1;
  }
  std::printf("specification: test %s, %zu categories\n",
              Spec->TestName.c_str(), Spec->Categories.size());

  FrameSet Frames = generateFrames(*Spec);
  std::printf("\ngenerated %zu test frames:\n", Frames.Frames.size());
  for (size_t I = 0; I != Frames.Frames.size(); ++I) {
    const TestFrame &F = Frames.Frames[I];
    std::printf("  %-28s", F.str().c_str());
    if (!Frames.ResultOf[I].empty())
      std::printf("  -> %s", Frames.ResultOf[I].c_str());
    if (F.IsSingle)
      std::printf("  [single]");
    if (F.IsError)
      std::printf("  [error]");
    std::printf("\n");
  }

  std::printf("\nscripts:\n");
  for (const auto &[Name, Indices] : Frames.Scripts) {
    std::printf("  %s:", Name.c_str());
    for (size_t I : Indices)
      std::printf(" %s", Frames.Frames[I].str().c_str());
    std::printf("\n");
  }

  std::string Source = workload::Figure4Fixed;
  if (Buggy) {
    size_t Pos = Source.find("b := 0;");
    Source.replace(Pos, 7, "b := 1;");
  }
  auto Prog = pascal::parseAndCheck(Source, Diags);
  if (!Prog) {
    obs::logError("tgen_demo", Diags.str());
    return 1;
  }

  TestReportDB DB =
      runTestSuite(*Prog, *Spec, Frames, workload::instantiateArrsumFrame,
                   workload::checkArrsumOutcome);
  std::printf("\ntest report database (%u passed, %u failed):\n%s",
              DB.passCount(), DB.failCount(), DB.str().c_str());
  return DB.failCount() == 0 ? 0 : 1;
}
