//===- quickstart.cpp - Localize the paper's bug in a few lines -----------===//
//
// The smallest end-to-end use of the GADT library: compile the paper's
// Figure 4 program (which contains the planted `y + 1` bug in function
// decrement), let the whole pipeline run — transformation, tracing,
// algorithmic debugging with slicing — and have the user simulated by the
// intended (fixed) program.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "core/GADT.h"
#include "core/ReferenceOracle.h"
#include "obs/Log.h"
#include "pascal/Frontend.h"
#include "pascal/PrettyPrinter.h"
#include "workload/PaperPrograms.h"

#include <cstdio>

using namespace gadt;

int main() {
  DiagnosticsEngine Diags;
  auto Buggy = pascal::parseAndCheck(workload::Figure4Buggy, Diags);
  auto Fixed = pascal::parseAndCheck(workload::Figure4Fixed, Diags);
  if (!Buggy || !Fixed) {
    obs::logError("quickstart", Diags.str());
    return 1;
  }

  core::GADTSession Session(*Buggy, core::GADTOptions(), Diags);
  if (!Session.valid()) {
    obs::logError("quickstart", Diags.str());
    return 1;
  }

  // The "user" answers by consulting the intended program.
  core::IntendedProgramOracle User(*Fixed);
  core::BugReport Bug = Session.debug(User);

  std::printf("execution tree (%u nodes):\n%s\n",
              Session.tree()->size(), Session.tree()->str().c_str());
  if (!Bug.Found) {
    std::printf("no bug found: %s\n", Bug.Message.c_str());
    return 1;
  }
  std::printf("%s (declared at %s)\n", Bug.Message.c_str(),
              Bug.Loc.str().c_str());
  for (const pascal::Stmt *S : Bug.CandidateStmts)
    std::printf("  suspect statement at %s: %s", S->getLoc().str().c_str(),
                pascal::printStmt(*S).c_str());
  std::printf("user interactions: %u, slicing activations: %u, "
              "nodes pruned: %u\n",
              Session.stats().userQueries(),
              Session.stats().SlicingActivations,
              Session.stats().NodesPruned);
  return 0;
}
