//===- export_samples.cpp - Write the bundled workloads to disk -----------===//
//
// Dumps the paper's programs, the payroll application, and the T-GEN
// specifications as plain files, ready for use with the gadt_session CLI:
//
//   $ ./export_samples samples/
//   $ ./gadt_session samples/figure4_buggy.pas \
//         --intended samples/figure4_fixed.pas \
//         --spec samples/arrsum.tspec
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "workload/ArrsumFixture.h"
#include "workload/PaperPrograms.h"
#include "workload/Payroll.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

using namespace gadt;

int main(int argc, char **argv) {
  std::string Dir = argc > 1 ? argv[1] : "samples";
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    obs::logError("export_samples",
                  "cannot create " + Dir + ": " + EC.message());
    return 1;
  }

  struct Sample {
    const char *Name;
    const char *Text;
  };
  const Sample Samples[] = {
      {"figure4_buggy.pas", workload::Figure4Buggy},
      {"figure4_fixed.pas", workload::Figure4Fixed},
      {"figure2.pas", workload::Figure2},
      {"section6_globals.pas", workload::Section6Globals},
      {"section6_global_goto.pas", workload::Section6GlobalGoto},
      {"section6_loop_goto.pas", workload::Section6LoopGoto},
      {"payroll_correct.pas", workload::PayrollCorrect},
      {"payroll_taxbug.pas", workload::PayrollTaxBug},
      {"payroll_overtimebug.pas", workload::PayrollOvertimeBug},
      {"arrsum.tspec", workload::ArrsumSpecWithGens},
      {"taxfor.tspec", workload::TaxforSpec},
      {"overtimepay.tspec", workload::OvertimeSpec},
  };
  for (const Sample &S : Samples) {
    std::string Path = Dir + "/" + S.Name;
    std::ofstream Out(Path);
    if (!Out) {
      obs::logError("export_samples", "cannot write " + Path);
      return 1;
    }
    Out << S.Text;
    std::printf("wrote %s\n", Path.c_str());
  }
  return 0;
}
