//===- gadt_session.cpp - Interactive GADT debugging CLI ------------------===//
//
// Debug any Pascal-subset program, replicating the paper's dialogue
// (Section 8):
//
//   $ ./gadt_session program.pas [options] [-- input numbers...]
//
// Options:
//   --no-transform       skip the transformation phase
//   --no-slicing         disable slicing on error indications
//   --dynamic-slicing    use dynamic instead of static slicing
//   --divide             use divide-and-query instead of top-down search
//   --trace-loops        treat local loops as debugging units
//   --assert UNIT EXPR   add a specification assertion for UNIT
//   --intended FILE      answer queries from this correct program instead
//                        of asking interactively
//   --spec FILE          a T-GEN specification with params/gen clauses;
//                        builds a test database for the test-lookup oracle
//   --tested-by FILE     the reference program the test cases are judged
//                        against (defaults to --intended)
//
// Answer each interactive query with: y(es), n(o), "n <var>" (wrong output
// variable, activates slicing), or d(ont know). With no file argument the
// paper's Figure 4 program is debugged.
//
//===----------------------------------------------------------------------===//

#include "core/GADT.h"
#include "core/InteractiveOracle.h"
#include "core/ReferenceOracle.h"
#include "obs/Log.h"
#include "pascal/Frontend.h"
#include "tgen/Generator.h"
#include "tgen/SpecParser.h"
#include "workload/PaperPrograms.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace gadt;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream File(Path);
  if (!File) {
    obs::logError("gadt_session", "cannot open " + Path);
    return false;
  }
  std::ostringstream Buf;
  Buf << File.rdbuf();
  Out = Buf.str();
  return true;
}

/// Judges test outcomes by re-running the case in the reference program
/// and comparing all outputs.
class ReferenceChecker {
public:
  ReferenceChecker(const pascal::Program &Reference, std::string Routine)
      : Reference(Reference), Routine(std::move(Routine)) {}

  bool operator()(const std::vector<interp::Value> &Args,
                  const interp::CallOutcome &Out) const {
    interp::Interpreter I(Reference);
    interp::CallOutcome Expected = I.callRoutine(Routine, Args);
    if (!Expected.Ok || !Out.Ok)
      return Expected.Ok == Out.Ok;
    for (const interp::Binding &B : Expected.Outputs)
      for (const interp::Binding &Got : Out.Outputs)
        if (Got.Name == B.Name && !Got.V.equals(B.V))
          return false;
    return true;
  }

private:
  const pascal::Program &Reference;
  std::string Routine;
};

} // namespace

int main(int argc, char **argv) {
  std::string Source = workload::Figure4Buggy;
  std::string IntendedPath, SpecPath, TestedByPath;
  core::GADTOptions Opts;
  std::vector<int64_t> Input;
  std::vector<std::pair<std::string, std::string>> AssertionArgs;

  bool InInput = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (InInput) {
      Input.push_back(std::atoll(Arg.c_str()));
      continue;
    }
    if (Arg == "--") {
      InInput = true;
    } else if (Arg == "--no-transform") {
      Opts.Transform = false;
    } else if (Arg == "--no-slicing") {
      Opts.Debugger.Slicing = core::SliceMode::None;
    } else if (Arg == "--dynamic-slicing") {
      Opts.Debugger.Slicing = core::SliceMode::Dynamic;
    } else if (Arg == "--divide") {
      Opts.Debugger.Strategy = core::SearchStrategy::DivideAndQuery;
    } else if (Arg == "--trace-loops") {
      Opts.TraceLoops = true;
    } else if (Arg == "--assert" && I + 2 < argc) {
      AssertionArgs.push_back({argv[I + 1], argv[I + 2]});
      I += 2;
    } else if (Arg == "--intended" && I + 1 < argc) {
      IntendedPath = argv[++I];
    } else if (Arg == "--spec" && I + 1 < argc) {
      SpecPath = argv[++I];
    } else if (Arg == "--tested-by" && I + 1 < argc) {
      TestedByPath = argv[++I];
    } else {
      if (!readFile(Arg, Source))
        return 1;
    }
  }

  DiagnosticsEngine Diags;
  auto Prog = pascal::parseAndCheck(Source, Diags);
  if (!Prog) {
    obs::logError("gadt_session", Diags.str());
    return 1;
  }

  std::unique_ptr<pascal::Program> Intended;
  if (!IntendedPath.empty()) {
    std::string Text;
    if (!readFile(IntendedPath, Text))
      return 1;
    Intended = pascal::parseAndCheck(Text, Diags);
    if (!Intended) {
      obs::logError("gadt_session", Diags.str());
      return 1;
    }
  }

  core::GADTSession Session(*Prog, Opts, Diags);
  if (!Session.valid()) {
    obs::logError("gadt_session", Diags.str());
    return 1;
  }
  for (const auto &[Unit, Expr] : AssertionArgs)
    if (!Session.assertions().addAssertion(
            Unit, Expr, core::AssertionOracle::Strength::Specification,
            Diags)) {
      obs::logError("gadt_session", Diags.str());
      return 1;
    }

  // Build the test database from a self-contained specification.
  std::unique_ptr<pascal::Program> TestedBy;
  if (!SpecPath.empty()) {
    std::string SpecText;
    if (!readFile(SpecPath, SpecText))
      return 1;
    std::shared_ptr<tgen::TestSpec> Spec =
        tgen::parseSpec(SpecText, Diags);
    if (!Spec) {
      obs::logError("gadt_session", Diags.str());
      return 1;
    }
    if (!Spec->hasGenerators()) {
      obs::logError("gadt_session",
                    SpecPath + " has no params/gen clauses, cannot "
                               "instantiate test cases");
      return 1;
    }
    const pascal::Program *Reference = Intended.get();
    if (!TestedByPath.empty()) {
      std::string Text;
      if (!readFile(TestedByPath, Text))
        return 1;
      TestedBy = pascal::parseAndCheck(Text, Diags);
      if (!TestedBy) {
        obs::logError("gadt_session", Diags.str());
        return 1;
      }
      Reference = TestedBy.get();
    }
    if (!Reference) {
      obs::logError("gadt_session",
                    "--spec needs --tested-by or --intended as the "
                    "reference for expected outcomes");
      return 1;
    }
    tgen::FrameSet Frames = tgen::generateFrames(*Spec);
    ReferenceChecker Checker(*Reference, Spec->TestName);
    auto DB = std::make_shared<tgen::TestReportDB>(
        tgen::runTestSuite(*Reference, *Spec, Frames,
                           tgen::specInstantiator(*Spec), Checker));
    std::printf("test database: %zu frames, %u cases passed, %u failed\n",
                Frames.Frames.size(), DB->passCount(), DB->failCount());
    Session.addTestDatabase(Spec, DB);
  }

  if (!Session.transformStats().Log.empty()) {
    std::printf("transformation phase:\n");
    for (const std::string &Line : Session.transformStats().Log)
      std::printf("  %s\n", Line.c_str());
  }

  core::InteractiveOracle Interactive(std::cin, std::cout);
  std::unique_ptr<core::IntendedProgramOracle> Reference;
  core::Oracle *User = &Interactive;
  if (Intended) {
    Reference = std::make_unique<core::IntendedProgramOracle>(*Intended);
    User = Reference.get();
  }

  core::BugReport Bug = Session.debug(*User, Input);

  if (!Session.lastRun().Ok) {
    std::printf("%s\n", Bug.Message.c_str());
    return 1;
  }
  std::printf("\nprogram output: %s\n", Session.lastRun().Output.c_str());
  if (Bug.Found) {
    std::printf("%s\n", Bug.Message.c_str());
    for (const pascal::Stmt *S : Bug.CandidateStmts)
      std::printf("  suspect statement at %s\n",
                  S->getLoc().str().c_str());
  } else
    std::printf("search ended without localizing a bug: %s\n",
                Bug.Message.c_str());
  std::printf("interactions: %u asked, %u answered by %s",
              Session.stats().Judgements, Session.stats().userQueries(),
              Intended ? "the intended program" : "you");
  for (const auto &[Source2, Count] : Session.stats().AnswersBySource)
    if (Source2 != "user")
      std::printf(", %u by %s", Count, Source2.c_str());
  std::printf("; slicing pruned %u nodes\n", Session.stats().NodesPruned);
  return Bug.Found ? 0 : 1;
}
