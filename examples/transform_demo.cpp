//===- transform_demo.cpp - The transformation catalogue (Section 6) ------===//
//
// Prints before/after source for the paper's three transformation
// examples: conversion of globals to parameters, breaking of global gotos
// into exit conditions, and rewriting of gotos that leave while loops.
//
//   $ ./transform_demo
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "pascal/Frontend.h"
#include "pascal/PrettyPrinter.h"
#include "support/StringUtils.h"
#include "transform/Transform.h"
#include "workload/PaperPrograms.h"

#include <cstdio>

using namespace gadt;

static int showTransformation(const char *Title, const char *Source) {
  DiagnosticsEngine Diags;
  auto Prog = pascal::parseAndCheck(Source, Diags);
  if (!Prog) {
    obs::logError("transform_demo", Diags.str());
    return 1;
  }
  transform::TransformResult R = transform::transformProgram(*Prog, Diags);
  if (!R.Transformed) {
    obs::logError("transform_demo", Diags.str());
    return 1;
  }
  std::string Before = pascal::printProgram(*Prog);
  std::string After = pascal::printProgram(*R.Transformed);
  std::printf("================ %s ================\n", Title);
  std::printf("--- original (%u lines) ---\n%s\n", countCodeLines(Before),
              Before.c_str());
  std::printf("--- transformed (%u lines) ---\n%s\n",
              countCodeLines(After), After.c_str());
  std::printf("--- actions ---\n");
  for (const std::string &Line : R.Stats.Log)
    std::printf("  %s\n", Line.c_str());
  std::printf("\n");
  return 0;
}

int main() {
  int Rc = 0;
  Rc |= showTransformation("globals to parameters",
                           workload::Section6Globals);
  Rc |= showTransformation("breaking global gotos",
                           workload::Section6GlobalGoto);
  Rc |= showTransformation("goto out of a while loop",
                           workload::Section6LoopGoto);
  return Rc;
}
