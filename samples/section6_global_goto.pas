
program gg;
label 8;
var
  a, b: integer;

procedure p(v: integer; var r: integer);
label 9;

  procedure q(u: integer; var s: integer);
  begin
    s := u + 1;
    if u > 10 then
      goto 9;
    s := s * 2;
  end;

begin
  r := 0;
  q(v, r);
  r := r + 100;
  9:
  r := r + 1;
  if v > 100 then
    goto 8;
  r := r + 1000;
end;

begin
  a := 20;
  p(a, b);
  8:
  writeln(b);
end.
