
program payroll;
const
  maxemp = 20;
  stdhours = 40;
type
  intarray = array[1..20] of integer;
var
  hours, rates: intarray;
  nemp, totalnet, totaltax, highest: integer;

function overtimepay(h, rate: integer): integer;
begin
  if h > stdhours then
    overtimepay := ((h - stdhours) * rate * 2) div 1
  else
    overtimepay := 0;
end;

function grosspay(h, rate: integer): integer;
var
  base: integer;
begin
  if h > stdhours then
    base := stdhours * rate
  else
    base := h * rate;
  grosspay := base + overtimepay(h, rate);
end;

function taxfor(gross: integer): integer;
var
  t: integer;
begin
  t := 0;
  if gross > 500 then begin
    if gross > 2000 then
      t := ((2000 - 500) * 20) div 100 +
           ((gross - 2000) * 40) div 100
    else
      t := ((gross - 500) * 20) div 100;
  end;
  taxfor := t;
end;

function netpay(h, rate: integer): integer;
var
  g: integer;
begin
  g := grosspay(h, rate);
  netpay := g - taxfor(g);
end;

procedure processall(n: integer; var totnet, tottax: integer);
var
  i, g: integer;
begin
  totnet := 0;
  tottax := 0;
  for i := 1 to n do begin
    g := grosspay(hours[i], rates[i]);
    tottax := tottax + taxfor(g);
    totnet := totnet + netpay(hours[i], rates[i]);
  end;
end;

procedure findhighest(n: integer; var best: integer);
var
  i, np: integer;
begin
  best := 0;
  for i := 1 to n do begin
    np := netpay(hours[i], rates[i]);
    if np > best then
      best := np;
  end;
end;

begin
  nemp := 5;
  hours[1] := 38;  rates[1] := 12;
  hours[2] := 45;  rates[2] := 30;
  hours[3] := 40;  rates[3] := 55;
  hours[4] := 52;  rates[4] := 18;
  hours[5] := 20;  rates[5] := 90;
  processall(nemp, totalnet, totaltax);
  findhighest(nemp, highest);
  writeln(totalnet, ' ', totaltax, ' ', highest);
end.
