
program g;
var
  x, z, w: integer;

procedure p(var y: integer);
begin
  y := x + 1;
  z := y - x;
end;

begin
  x := 10;
  p(w);
  writeln(z);
end.
