
program lg;
var
  n, acc: integer;

procedure scan(limit: integer; var total: integer);
label 9;
var
  i: integer;
begin
  total := 0;
  i := 0;
  while i < limit do begin
    i := i + 1;
    total := total + i;
    if total > 50 then
      goto 9;
    total := total + 1;
  end;
  total := total + 500;
  9:
  total := total + 7;
end;

begin
  n := 100;
  scan(n, acc);
  writeln(acc);
end.
