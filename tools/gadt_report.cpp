//===- gadt_report.cpp - Merge telemetry into one ops report --------------===//
//
// Folds the telemetry a traced run leaves behind — the span trace
// (GADT_TRACE), the structured log (GADT_LOG), the metric series
// (GADT_METRICS), the collapsed profile (GADT_PROFILE) — plus any number
// of committed BENCH_*.json captures into a single markdown ops report:
//
//   $ gadt_report --trace t.jsonl --log l.jsonl --metrics m.jsonl \
//                 --profile p.collapsed --bench BENCH_PR5.json \
//                 --bench BENCH_PR6.json --out report.md
//
// Every input is optional; sections for absent inputs are omitted. The
// report answers the questions an operator asks first: where did the time
// go (span totals, profile), did sessions cross threads cleanly (flow
// accounting), what did the caches retain (gauges), did anything get
// dropped or logged at warn+ — and how do the numbers compare with the
// committed benchmark trajectory.
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "support/JSON.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace gadt;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    obs::logError("gadt_report", "cannot open " + Path);
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Text.size();
    if (Nl > Pos)
      Lines.push_back(Text.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Lines;
}

std::string baseName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? Path : Path.substr(Slash + 1);
}

std::string fmtMicros(double Us) {
  char Buf[32];
  if (Us >= 1e6)
    std::snprintf(Buf, sizeof(Buf), "%.2f s", Us / 1e6);
  else if (Us >= 1e3)
    std::snprintf(Buf, sizeof(Buf), "%.2f ms", Us / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%.1f us", Us);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Trace section
//===----------------------------------------------------------------------===//

struct SpanAgg {
  uint64_t Count = 0;
  double TotalUs = 0;
  double MaxUs = 0;
};

struct FlowAgg {
  int StartTid = -1, FinishTid = -1;
  bool Stepped = false;
};

void traceSection(const std::string &Path, std::string &Md) {
  std::string Text;
  if (!readFile(Path, Text))
    return;
  std::map<std::string, SpanAgg> Spans;
  std::map<uint64_t, FlowAgg> Flows;
  std::map<int, std::string> ThreadNames;
  std::set<int> Tids;
  uint64_t Events = 0, Instants = 0, Unparsed = 0;

  for (const std::string &Line : splitLines(Text)) {
    std::optional<json::Value> V = json::parse(Line);
    if (!V || !V->isObject()) {
      ++Unparsed;
      continue;
    }
    ++Events;
    std::string Ph = V->getString("ph");
    int Tid = static_cast<int>(V->getNumber("tid"));
    std::string Name = V->getString("name");
    Tids.insert(Tid);
    if (Ph == "X") {
      SpanAgg &A = Spans[Name];
      A.Count++;
      double Us = V->getNumber("dur");
      A.TotalUs += Us;
      A.MaxUs = std::max(A.MaxUs, Us);
    } else if (Ph == "i") {
      ++Instants;
    } else if (Ph == "s" || Ph == "t" || Ph == "f") {
      FlowAgg &F = Flows[static_cast<uint64_t>(V->getNumber("id"))];
      if (Ph == "s")
        F.StartTid = Tid;
      else if (Ph == "f")
        F.FinishTid = Tid;
      else
        F.Stepped = true;
    } else if (Ph == "M" && Name == "thread_name") {
      if (const json::Value *Args = V->find("args"))
        ThreadNames[Tid] = Args->getString("name");
    }
  }

  Md += "## Span trace\n\n";
  Md += "- events: " + std::to_string(Events) + " (" +
        std::to_string(Instants) + " instants";
  if (Unparsed)
    Md += ", " + std::to_string(Unparsed) + " unparsed lines";
  Md += ")\n- threads: " + std::to_string(Tids.size());
  if (!ThreadNames.empty()) {
    Md += " (";
    bool First = true;
    for (const auto &[Tid, N] : ThreadNames) {
      if (!First)
        Md += ", ";
      First = false;
      Md += N;
    }
    Md += ")";
  }
  Md += "\n";

  uint64_t CrossThread = 0, Complete = 0;
  for (const auto &[Id, F] : Flows) {
    if (F.StartTid >= 0 && F.FinishTid >= 0) {
      ++Complete;
      if (F.StartTid != F.FinishTid)
        ++CrossThread;
    }
  }
  if (!Flows.empty()) {
    Md += "- session flows: " + std::to_string(Flows.size()) + " started, " +
          std::to_string(Complete) + " completed, " +
          std::to_string(CrossThread) + " crossed threads\n";
  }
  Md += "\n| span | count | total | mean | max |\n";
  Md += "|---|---:|---:|---:|---:|\n";
  std::vector<std::pair<std::string, SpanAgg>> Rows(Spans.begin(),
                                                    Spans.end());
  std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    return A.second.TotalUs > B.second.TotalUs;
  });
  for (const auto &[Name, A] : Rows) {
    Md += "| `" + Name + "` | " + std::to_string(A.Count) + " | " +
          fmtMicros(A.TotalUs) + " | " + fmtMicros(A.TotalUs / A.Count) +
          " | " + fmtMicros(A.MaxUs) + " |\n";
  }
  Md += "\n";
}

//===----------------------------------------------------------------------===//
// Structured-log section
//===----------------------------------------------------------------------===//

void logSection(const std::string &Path, std::string &Md) {
  std::string Text;
  if (!readFile(Path, Text))
    return;
  std::map<std::string, uint64_t> ByLevel;
  std::map<std::string, uint64_t> ByComponent;
  std::vector<std::string> Notable; // warn+ messages, capped
  uint64_t Records = 0;
  for (const std::string &Line : splitLines(Text)) {
    std::optional<json::Value> V = json::parse(Line);
    if (!V || !V->isObject())
      continue;
    ++Records;
    std::string Level = V->getString("level", "?");
    ByLevel[Level]++;
    ByComponent[V->getString("component", "?")]++;
    if ((Level == "warn" || Level == "error") && Notable.size() < 8)
      Notable.push_back("[" + Level + "] " + V->getString("component") +
                        ": " + V->getString("msg"));
  }
  Md += "## Structured log\n\n- records: " + std::to_string(Records);
  Md += " (";
  bool First = true;
  for (const auto &[L, N] : ByLevel) {
    if (!First)
      Md += ", ";
    First = false;
    Md += L + " " + std::to_string(N);
  }
  Md += ")\n- components: ";
  First = true;
  for (const auto &[C, N] : ByComponent) {
    if (!First)
      Md += ", ";
    First = false;
    Md += "`" + C + "` (" + std::to_string(N) + ")";
  }
  Md += "\n";
  if (!Notable.empty()) {
    Md += "\nWarnings and errors:\n\n";
    for (const std::string &N : Notable)
      Md += "- " + N + "\n";
  }
  Md += "\n";
}

//===----------------------------------------------------------------------===//
// Metrics section
//===----------------------------------------------------------------------===//

void metricsSection(const std::string &Path, std::string &Md) {
  std::string Text;
  if (!readFile(Path, Text))
    return;
  std::vector<json::Value> Ticks;
  for (const std::string &Line : splitLines(Text)) {
    std::optional<json::Value> V = json::parse(Line);
    if (V && V->isObject())
      Ticks.push_back(std::move(*V));
  }
  Md += "## Metric series\n\n- ticks: " + std::to_string(Ticks.size());
  if (Ticks.empty()) {
    Md += "\n\n";
    return;
  }
  const json::Value &First = Ticks.front();
  const json::Value &Last = Ticks.back();
  Md += " spanning " +
        fmtMicros(Last.getNumber("ts") - First.getNumber("ts")) + "\n";

  Md += "\n| counter | total | over the series |\n|---|---:|---:|\n";
  if (const json::Value *Counters = Last.find("counters")) {
    const json::Value *FirstCounters = First.find("counters");
    for (const auto &[Name, V] : Counters->Obj) {
      uint64_t Total = static_cast<uint64_t>(V.getNumber("total"));
      uint64_t Before =
          FirstCounters
              ? static_cast<uint64_t>(
                    FirstCounters->find(Name)
                        ? FirstCounters->find(Name)->getNumber("total")
                        : 0)
              : 0;
      Md += "| `" + Name + "` | " + std::to_string(Total) + " | +" +
            std::to_string(Total - Before) + " |\n";
    }
  }
  Md += "\n| gauge | final |\n|---|---:|\n";
  if (const json::Value *Gauges = Last.find("gauges"))
    for (const auto &[Name, V] : Gauges->Obj)
      Md += "| `" + Name + "` | " +
            std::to_string(static_cast<int64_t>(V.Num)) + " |\n";
  Md += "\n| histogram | count | p50 | p95 | p99 |\n|---|---:|---:|---:|---:|\n";
  if (const json::Value *Hists = Last.find("histograms"))
    for (const auto &[Name, V] : Hists->Obj) {
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf), "| `%s` | %llu | %.1f | %.1f | %.1f |\n",
                    Name.c_str(),
                    static_cast<unsigned long long>(V.getNumber("count")),
                    V.getNumber("p50"), V.getNumber("p95"),
                    V.getNumber("p99"));
      Md += Buf;
    }
  Md += "\n";
}

//===----------------------------------------------------------------------===//
// Profile section
//===----------------------------------------------------------------------===//

void profileSection(const std::string &Path, std::string &Md) {
  std::string Text;
  if (!readFile(Path, Text))
    return;
  std::vector<std::pair<uint64_t, std::string>> Stacks;
  uint64_t Total = 0;
  for (const std::string &Line : splitLines(Text)) {
    size_t Space = Line.find_last_of(' ');
    if (Space == std::string::npos)
      continue;
    uint64_t N = std::strtoull(Line.c_str() + Space + 1, nullptr, 10);
    if (!N)
      continue;
    Total += N;
    Stacks.emplace_back(N, Line.substr(0, Space));
  }
  Md += "## Sampling profile\n\n- samples attributed to spans: " +
        std::to_string(Total) + " across " +
        std::to_string(Stacks.size()) + " distinct span paths\n\n";
  if (!Total) {
    return;
  }
  std::sort(Stacks.rbegin(), Stacks.rend());
  Md += "| span path | samples | share |\n|---|---:|---:|\n";
  size_t Shown = std::min<size_t>(Stacks.size(), 15);
  for (size_t I = 0; I < Shown; ++I) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.1f%%",
                  100.0 * double(Stacks[I].first) / double(Total));
    Md += "| `" + Stacks[I].second + "` | " +
          std::to_string(Stacks[I].first) + " | " + Buf + " |\n";
  }
  if (Stacks.size() > Shown)
    Md += "\n(" + std::to_string(Stacks.size() - Shown) +
          " colder paths omitted)\n";
  Md += "\n";
}

//===----------------------------------------------------------------------===//
// Bench-trajectory section
//===----------------------------------------------------------------------===//

void benchSection(const std::vector<std::string> &Paths, std::string &Md) {
  struct Capture {
    std::string Label;
    std::map<std::string, double> RealNs;
  };
  std::vector<Capture> Captures;
  std::vector<std::string> AllNames; // first-seen order
  for (const std::string &Path : Paths) {
    std::string Text;
    if (!readFile(Path, Text))
      continue;
    std::optional<json::Value> V = json::parse(Text);
    if (!V || !V->isObject()) {
      obs::logError("gadt_report", "not a bench capture: " + Path);
      continue;
    }
    Capture C;
    C.Label = baseName(Path);
    if (const json::Value *Results = V->find("results"))
      for (const json::Value &R : Results->Arr) {
        std::string Name = R.getString("name");
        C.RealNs[Name] = R.getNumber("real_ns");
        if (std::find(AllNames.begin(), AllNames.end(), Name) ==
            AllNames.end())
          AllNames.push_back(Name);
      }
    Captures.push_back(std::move(C));
  }
  if (Captures.empty())
    return;
  Md += "## Benchmark trajectory\n\nmin-of-N real time per iteration.\n\n";
  Md += "| benchmark |";
  for (const Capture &C : Captures)
    Md += " " + C.Label + " |";
  if (Captures.size() >= 2)
    Md += " last vs first |";
  Md += "\n|---|";
  for (size_t I = 0; I < Captures.size(); ++I)
    Md += "---:|";
  if (Captures.size() >= 2)
    Md += "---:|";
  Md += "\n";
  for (const std::string &Name : AllNames) {
    Md += "| `" + Name + "` |";
    for (const Capture &C : Captures) {
      auto It = C.RealNs.find(Name);
      Md += It == C.RealNs.end() ? " — |"
                                 : " " + fmtMicros(It->second / 1000.0) +
                                       " |";
    }
    if (Captures.size() >= 2) {
      auto FirstIt = Captures.front().RealNs.find(Name);
      auto LastIt = Captures.back().RealNs.find(Name);
      if (FirstIt != Captures.front().RealNs.end() &&
          LastIt != Captures.back().RealNs.end() && FirstIt->second > 0) {
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), " %+.1f%% |",
                      100.0 * (LastIt->second - FirstIt->second) /
                          FirstIt->second);
        Md += Buf;
      } else {
        Md += " — |";
      }
    }
    Md += "\n";
  }
  Md += "\n";
}

} // namespace

int main(int argc, char **argv) {
  std::string TracePath, LogPath, MetricsPath, ProfilePath, OutPath;
  std::vector<std::string> BenchPaths;
  for (int I = 1; I < argc; ++I) {
    std::string_view Arg(argv[I]);
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    const char *V = nullptr;
    if (Arg == "--trace" && (V = Next()))
      TracePath = V;
    else if (Arg == "--log" && (V = Next()))
      LogPath = V;
    else if (Arg == "--metrics" && (V = Next()))
      MetricsPath = V;
    else if (Arg == "--profile" && (V = Next()))
      ProfilePath = V;
    else if (Arg == "--bench" && (V = Next()))
      BenchPaths.push_back(V);
    else if (Arg == "--out" && (V = Next()))
      OutPath = V;
    else {
      std::printf("usage: %s [--trace t.jsonl] [--log l.jsonl] "
                  "[--metrics m.jsonl] [--profile p.collapsed] "
                  "[--bench BENCH.json]... [--out report.md]\n",
                  argv[0]);
      return Arg == "--help" ? 0 : 1;
    }
  }

  std::string Md = "# GADT ops report\n\n";
  Md += "Inputs:";
  for (const auto &[Flag, Path] :
       std::initializer_list<std::pair<const char *, const std::string &>>{
           {"trace", TracePath},
           {"log", LogPath},
           {"metrics", MetricsPath},
           {"profile", ProfilePath}})
    if (!Path.empty())
      Md += std::string(" ") + Flag + "=`" + Path + "`";
  for (const std::string &B : BenchPaths)
    Md += " bench=`" + B + "`";
  Md += "\n\n";

  if (!TracePath.empty())
    traceSection(TracePath, Md);
  if (!LogPath.empty())
    logSection(LogPath, Md);
  if (!MetricsPath.empty())
    metricsSection(MetricsPath, Md);
  if (!ProfilePath.empty())
    profileSection(ProfilePath, Md);
  if (!BenchPaths.empty())
    benchSection(BenchPaths, Md);

  if (OutPath.empty()) {
    std::fputs(Md.c_str(), stdout);
    return 0;
  }
  std::ofstream Out(OutPath, std::ios::trunc);
  if (!Out) {
    obs::logError("gadt_report", "cannot write " + OutPath);
    return 1;
  }
  Out << Md;
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
