//===- BatchRunner.h - Parallel batch-debugging runtime ---------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes many independent debugging sessions — each a (program, input,
/// oracle, options) tuple — across a fixed-size thread pool with a shared
/// work queue. Sessions draw their transformed program, dependence graph
/// and static slices from a shared RuntimeContext, so repeated sessions
/// over the same subject skip all recomputation; everything per-session
/// (the traced execution tree, the oracle dialogue, the judgement memo)
/// stays thread-local.
///
/// Results are deterministic: result[i] always belongs to request[i], and
/// a request's outcome is a pure function of the request, so any thread
/// count (including 1) produces byte-identical results.
///
/// Under tracing, every request carries an obs::FlowContext id from the
/// enqueuing thread to the worker that executes it: the enqueue slice
/// emits a flow-start, the worker a flow-step at pickup, and the session
/// span a flow-finish — Perfetto renders the three as arrows stitching one
/// session's slices across threads. Workers name their trace tracks
/// "gadt-worker-<n>".
///
//===----------------------------------------------------------------------===//

#ifndef GADT_RUNTIME_BATCHRUNNER_H
#define GADT_RUNTIME_BATCHRUNNER_H

#include "runtime/RuntimeContext.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gadt {
namespace runtime {

/// One debugging job: a subject, an input, an oracle and options.
struct SessionRequest {
  /// Source text of the buggy subject program.
  std::string Source;
  /// Source text of the intended (reference) program; when non-empty, the
  /// session's user oracle is an IntendedProgramOracle over it (the parse
  /// is interned in the shared context).
  std::string Intended;
  /// Values consumed by the subject's read() statements.
  std::vector<int64_t> Input;
  core::GADTOptions Opts;
  /// Overrides \c Intended: builds this session's private oracle. Must be
  /// callable from any worker thread (a fresh oracle per call).
  std::function<std::unique_ptr<core::Oracle>()> MakeOracle;
};

/// The outcome of one session, self-contained (no pointers into the
/// session's execution tree, which dies with the session).
struct SessionResult {
  bool Prepared = false; ///< artifacts + session construction succeeded
  bool Found = false;
  std::string UnitName;
  std::string WrongOutput;
  std::string Message;
  uint64_t Fingerprint = 0;
  core::SessionStats Stats;

  /// Canonical rendering of everything above including the full dialogue —
  /// the unit of the byte-identical determinism guarantee.
  std::string summary() const;
};

struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned Threads = 0;
};

/// Runs a session against the shared context, serially on the calling
/// thread. BatchRunner workers execute exactly this, so a serial loop over
/// runSession is the reference the parallel results are compared against.
SessionResult runSession(RuntimeContext &Ctx, const SessionRequest &Req);

/// The pool. Workers start on construction and join on destruction; run()
/// may be called repeatedly (later batches reuse the warmed context).
class BatchRunner {
public:
  explicit BatchRunner(std::shared_ptr<RuntimeContext> Ctx,
                       BatchOptions Opts = {});
  ~BatchRunner();

  BatchRunner(const BatchRunner &) = delete;
  BatchRunner &operator=(const BatchRunner &) = delete;

  /// Executes all requests and returns results in request order. Blocks
  /// until the batch completes. Not reentrant.
  std::vector<SessionResult> run(const std::vector<SessionRequest> &Requests);

  RuntimeContext &context() { return *Ctx; }
  unsigned threadCount() const { return Threads; }

private:
  struct Batch;
  void workerLoop(unsigned Index);

  std::shared_ptr<RuntimeContext> Ctx;
  unsigned Threads;
  std::vector<std::thread> Workers;

  std::mutex M;
  std::condition_variable WorkReady;
  std::deque<std::function<void()>> Queue;
  bool Stopping = false;
};

} // namespace runtime
} // namespace gadt

#endif // GADT_RUNTIME_BATCHRUNNER_H
