//===- RuntimeContext.cpp - Shared caches for batch debugging -------------===//

#include "runtime/RuntimeContext.h"

#include "bytecode/Bytecode.h"
#include "obs/Trace.h"
#include "pascal/Frontend.h"
#include "pascal/PrettyPrinter.h"
#include "slicing/StaticSlicer.h"
#include "support/Hashing.h"

using namespace gadt;
using namespace gadt::runtime;

std::string RuntimeStats::str() const {
  auto Cache = [](const char *Name, uint64_t Misses, uint64_t Hits) {
    return std::string(Name) + " " + std::to_string(Misses) + "/" +
           std::to_string(Misses + Hits);
  };
  return Cache("programs", ProgramMisses, ProgramHits) + " " +
         Cache("transforms", TransformMisses, TransformHits) + " " +
         Cache("sdgs", SdgMisses, SdgHits) + " " +
         Cache("code", CodeMisses, CodeHits) + " " +
         Cache("slices", SliceMisses, SliceHits) + " subjects " +
         std::to_string(Subjects) + " (miss/total)";
}

/// One parsed program plus its fingerprint; parse failures cache their
/// diagnostics so repeated bad sources fail fast.
struct RuntimeContext::ProgramEntry {
  std::shared_ptr<const pascal::Program> Program; ///< null on failure
  uint64_t Fingerprint = 0;
  std::string Errors;
};

RuntimeContext::RuntimeContext(obs::Registry *Metrics, RuntimeOptions Opts)
    : Reg(Metrics ? *Metrics : obs::Registry::global()),
      ProgramC{Reg.counter("runtime.cache.program.hits"),
               Reg.counter("runtime.cache.program.misses")},
      TransformC{Reg.counter("runtime.cache.transform.hits"),
                 Reg.counter("runtime.cache.transform.misses")},
      SdgC{Reg.counter("runtime.cache.sdg.hits"),
           Reg.counter("runtime.cache.sdg.misses")},
      CodeC{Reg.counter("runtime.cache.code.hits"),
            Reg.counter("runtime.cache.code.misses")},
      SliceC{Reg.counter("runtime.cache.slice.hits"),
             Reg.counter("runtime.cache.slice.misses")},
      ProgramG{Reg.gauge("runtime.cache.program.entries"),
               Reg.gauge("runtime.cache.program.bytes")},
      TransformG{Reg.gauge("runtime.cache.transform.entries"),
                 Reg.gauge("runtime.cache.transform.bytes")},
      SdgG{Reg.gauge("runtime.cache.sdg.entries"),
           Reg.gauge("runtime.cache.sdg.bytes")},
      CodeG{Reg.gauge("runtime.cache.code.entries"),
            Reg.gauge("runtime.cache.code.bytes")},
      SliceG{Reg.gauge("runtime.cache.slice.entries"),
             Reg.gauge("runtime.cache.slice.bytes")},
      Options(Opts), EvictionC(Reg.counter("runtime.cache.evictions")) {}

RuntimeContext::~RuntimeContext() = default;

namespace {
/// Forwards one lookup outcome to the registry and the active trace span.
template <typename Counters>
void noteLookup(Counters &C, obs::Span &Span, bool WasMiss) {
  (WasMiss ? C.Misses : C.Hits).add();
  Span.arg("hit", !WasMiss);
}

} // namespace

void RuntimeContext::publishOccupancy() {
  auto Publish = [](CacheGauges &G, size_t Entries, size_t Bytes) {
    G.Entries.set(static_cast<int64_t>(Entries));
    G.Bytes.set(static_cast<int64_t>(Bytes));
  };
  Publish(ProgramG, Programs.size(), Programs.totalBytes());
  Publish(TransformG, Transforms.size(), Transforms.totalBytes());
  Publish(SdgG, Sdgs.size(), Sdgs.totalBytes());
  Publish(CodeG, Codes.size(), Codes.totalBytes());
  Publish(SliceG, Slices.size(), Slices.totalBytes());
}

void RuntimeContext::enforceBudget() {
  if (!Options.CacheBudgetBytes)
    return;
  for (;;) {
    size_t Total = Programs.totalBytes() + Transforms.totalBytes() +
                   Sdgs.totalBytes() + Codes.totalBytes() +
                   Slices.totalBytes();
    if (Total <= Options.CacheBudgetBytes)
      return;
    // Evict the globally oldest ready entry (OnceCache ticks are drawn
    // from one process-wide clock, so ticks compare across caches).
    uint64_t Best = UINT64_MAX;
    int Which = -1;
    auto Consider = [&](uint64_t Tick, int I) {
      if (Tick < Best) {
        Best = Tick;
        Which = I;
      }
    };
    Consider(Programs.oldestReadyTick(), 0);
    Consider(Transforms.oldestReadyTick(), 1);
    Consider(Sdgs.oldestReadyTick(), 2);
    Consider(Codes.oldestReadyTick(), 3);
    Consider(Slices.oldestReadyTick(), 4);
    size_t Freed = 0;
    switch (Which) {
    case 0: Freed = Programs.evictOldest(); break;
    case 1: Freed = Transforms.evictOldest(); break;
    case 2: Freed = Sdgs.evictOldest(); break;
    case 3: Freed = Codes.evictOldest(); break;
    case 4: Freed = Slices.evictOldest(); break;
    default:
      return; // nothing evictable (entries still building)
    }
    (void)Freed;
    EvictionC.add();
  }
}

std::shared_ptr<const pascal::Program>
RuntimeContext::internProgram(const std::string &Source,
                              DiagnosticsEngine &Diags) {
  uint64_t SourceHash = hashBytes(Source);
  obs::Span Span("cache.program", "cache");
  bool WasMiss = false;
  std::shared_ptr<const ProgramEntry> E = Programs.getOrBuild(
      SourceHash,
      [&]() -> std::shared_ptr<const ProgramEntry> {
        auto Entry = std::make_shared<ProgramEntry>();
        DiagnosticsEngine Local;
        Entry->Program = pascal::parseAndCheck(Source, Local);
        if (Entry->Program)
          Entry->Fingerprint = hashProgram(*Entry->Program);
        else
          Entry->Errors = Local.str();
        return Entry;
      },
      &WasMiss);
  noteLookup(ProgramC, Span, WasMiss);
  if (WasMiss) {
    Programs.noteBytes(SourceHash, Source.size() + E->Errors.size() +
                                       sizeof(ProgramEntry));
    enforceBudget();
  }
  publishOccupancy();
  if (!E->Program)
    Diags.error(SourceLoc(), "batch runtime: cached parse failure: " +
                                 E->Errors);
  return E->Program;
}

std::shared_ptr<const core::SessionArtifacts>
RuntimeContext::prepare(const std::string &Source,
                        const core::GADTOptions &Opts,
                        DiagnosticsEngine &Diags) {
  std::shared_ptr<const pascal::Program> Subject =
      internProgram(Source, Diags);
  if (!Subject)
    return nullptr;
  uint64_t Fingerprint = hashProgram(*Subject);

  auto Artifacts = std::make_shared<core::SessionArtifacts>();
  Artifacts->Fingerprint = Fingerprint;
  Artifacts->Subject = Subject;

  if (Opts.Transform) {
    obs::Span Span("cache.transform", "cache");
    bool WasMiss = false;
    std::shared_ptr<const TransformEntry> X = Transforms.getOrBuild(
        Fingerprint,
        [&]() -> std::shared_ptr<const TransformEntry> {
          auto Entry = std::make_shared<TransformEntry>();
          Entry->Original = Subject;
          DiagnosticsEngine Local;
          transform::TransformResult R =
              transform::transformProgram(*Subject, Local);
          if (R.Transformed) {
            Entry->Transformed = std::move(R.Transformed);
            Entry->Stats = std::move(R.Stats);
          } else {
            Entry->Errors = Local.str();
          }
          return Entry;
        },
        &WasMiss);
    noteLookup(TransformC, Span, WasMiss);
    if (WasMiss) {
      uint64_t NewBytes = sizeof(TransformEntry) + X->Errors.size();
      if (X->Transformed)
        NewBytes += pascal::printProgram(*X->Transformed).size();
      Transforms.noteBytes(Fingerprint, NewBytes);
      enforceBudget();
    }
    publishOccupancy();
    Reg.gauge("runtime.subjects").set(static_cast<int64_t>(Transforms.size()));
    if (!X->Transformed) {
      Diags.error(SourceLoc(), "batch runtime: cached transform failure: " +
                                   X->Errors);
      return nullptr;
    }
    Artifacts->Prepared = X->Transformed;
    Artifacts->TransformInfo = X->Stats;
    // Pin the original the transformed clone's TypeContext belongs to.
    Artifacts->Subject = X->Original;
  } else {
    Artifacts->Prepared = Subject;
  }

  if (Opts.Debugger.Slicing == core::SliceMode::Static) {
    std::pair<uint64_t, bool> SdgKey{Fingerprint, Opts.Transform};
    std::shared_ptr<const pascal::Program> Prepared = Artifacts->Prepared;
    std::shared_ptr<const pascal::Program> Pin = Artifacts->Subject;
    obs::Span Span("cache.sdg", "cache");
    bool WasMiss = false;
    std::shared_ptr<const SdgEntry> G = Sdgs.getOrBuild(
        SdgKey,
        [&]() -> std::shared_ptr<const SdgEntry> {
          auto Entry = std::make_shared<SdgEntry>();
          Entry->Prepared = Prepared;
          Entry->OriginalPin = Pin;
          // Ids are identical for any thread count, so the parallel
          // per-routine build is safe to use under the shared cache.
          Entry->Graph = std::make_unique<const analysis::SDG>(
              *Prepared, analysis::SDGBuildOptions{0});
          return Entry;
        },
        &WasMiss);
    noteLookup(SdgC, Span, WasMiss);
    if (WasMiss) {
      Sdgs.noteBytes(SdgKey, sizeof(SdgEntry) +
                                 G->Graph->nodes().size() *
                                     sizeof(analysis::SDGNode) +
                                 uint64_t(G->Graph->numEdges()) * 8);
      enforceBudget();
    }
    publishOccupancy();
    // Alias the SDG's lifetime to its cache entry, and debug the exact
    // program object the graph was built over — textual variants of one
    // fingerprint intern as distinct ASTs, but slices resolve by pointer.
    Artifacts->Sdg =
        std::shared_ptr<const analysis::SDG>(G, G->Graph.get());
    Artifacts->Prepared = G->Prepared;
    Artifacts->Subject = G->OriginalPin;
    // Hand sessions a slice provider backed by the shared memo. The
    // criterion routine belongs to the cached prepared program, so slices
    // are shared by every session over this subject.
    std::shared_ptr<const analysis::SDG> Sdg = Artifacts->Sdg;
    bool Transformed = Opts.Transform;
    Artifacts->Slices =
        [this, Sdg, Fingerprint,
         Transformed](const pascal::RoutineDecl *R, support::Symbol Out)
        -> std::shared_ptr<const slicing::StaticSlice> {
      if (!R)
        return nullptr;
      SliceKey Key{Fingerprint, Transformed,
                   support::Symbol(R->getName()).id(), Out.id()};
      obs::Span Span("cache.slice", "cache");
      bool WasMiss = false;
      std::shared_ptr<const slicing::StaticSlice> S = Slices.getOrBuild(
          Key,
          [&]() -> std::shared_ptr<const slicing::StaticSlice> {
            return std::make_shared<const slicing::StaticSlice>(
                slicing::sliceOnRoutineOutput(*Sdg, R, Out));
          },
          &WasMiss);
      noteLookup(SliceC, Span, WasMiss);
      if (WasMiss) {
        Slices.noteBytes(Key, sizeof(slicing::StaticSlice) + S->size() * 4);
        enforceBudget();
      }
      publishOccupancy();
      return S;
    };
  }

  {
    // Compile-once bytecode for the prepared program (src/bytecode).
    // Unsupported programs cache a null Code, so the tree-tier fallback
    // decision is also made exactly once per subject.
    std::pair<uint64_t, bool> CodeKey{Fingerprint, Opts.Transform};
    std::shared_ptr<const pascal::Program> Prepared = Artifacts->Prepared;
    std::shared_ptr<const pascal::Program> Pin = Artifacts->Subject;
    obs::Span Span("cache.code", "cache");
    bool WasMiss = false;
    std::shared_ptr<const CodeEntry> E = Codes.getOrBuild(
        CodeKey,
        [&]() -> std::shared_ptr<const CodeEntry> {
          auto Entry = std::make_shared<CodeEntry>();
          Entry->Prepared = Prepared;
          Entry->OriginalPin = Pin;
          Entry->Code = bytecode::compile(*Prepared, /*Checked=*/false);
          return Entry;
        },
        &WasMiss);
    noteLookup(CodeC, Span, WasMiss);
    if (WasMiss) {
      Codes.noteBytes(CodeKey, sizeof(CodeEntry) +
                                   (E->Code ? E->Code->memoryBytes() : 0));
      enforceBudget();
    }
    publishOccupancy();
    // Textual variants of one fingerprint intern as distinct ASTs when
    // transformation is off; compiled code binds to the AST it was built
    // over, so only hand out code whose program is the one this session
    // executes (otherwise the interpreter compiles privately).
    if (E->Code && E->Code->Prog == Artifacts->Prepared.get())
      Artifacts->Code = E->Code;
  }
  return Artifacts;
}

RuntimeStats RuntimeContext::stats() const {
  RuntimeStats S;
  S.ProgramHits = Programs.hits();
  S.ProgramMisses = Programs.misses();
  S.TransformHits = Transforms.hits();
  S.TransformMisses = Transforms.misses();
  S.SdgHits = Sdgs.hits();
  S.SdgMisses = Sdgs.misses();
  S.CodeHits = Codes.hits();
  S.CodeMisses = Codes.misses();
  S.SliceHits = Slices.hits();
  S.SliceMisses = Slices.misses();
  S.Subjects = Transforms.size();
  return S;
}
