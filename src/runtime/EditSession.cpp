//===- EditSession.cpp - Incremental, transactional recompute -------------===//

#include "runtime/EditSession.h"

#include "analysis/CallGraph.h"
#include "analysis/SideEffects.h"
#include "obs/Trace.h"
#include "pascal/ASTMatch.h"
#include "pascal/Frontend.h"
#include "support/NodeSet.h"

#include <algorithm>
#include <unordered_map>

using namespace gadt;
using namespace gadt::runtime;
using namespace gadt::pascal;

namespace {

/// Hash of a routine's caller-observable effect summary. Non-local
/// variables are identified by (name, depth, slot) — stable across edits
/// that leave the owning frame's layout alone, which is exactly when
/// callers may replay.
uint64_t effectSigOf(const analysis::RoutineEffects &E) {
  std::string S;
  auto FoldVar = [&S](const VarDecl *V) {
    S += V->getName();
    S += '@';
    S += std::to_string(V->getDepth());
    S += ':';
    S += std::to_string(V->getSlot());
    S += ';';
  };
  for (const VarDecl *V : E.GRef)
    FoldVar(V);
  S += '|';
  for (const VarDecl *V : E.GMod)
    FoldVar(V);
  S += '|';
  for (unsigned I : E.RefParams) {
    S += std::to_string(I);
    S += ',';
  }
  S += '|';
  for (unsigned I : E.ModParams) {
    S += std::to_string(I);
    S += ',';
  }
  return hashBytes(S);
}

std::vector<uint64_t>
effectSigsFor(const analysis::SideEffectAnalysis &SE,
              const std::vector<RoutineFingerprint> &Fps) {
  std::vector<uint64_t> Sigs;
  Sigs.reserve(Fps.size());
  for (const RoutineFingerprint &FP : Fps)
    Sigs.push_back(effectSigOf(SE.effects(FP.Routine)));
  return Sigs;
}

} // namespace

EditSession::EditSession(EditSessionOptions O)
    : Opts(O), Reg(O.Metrics ? *O.Metrics : obs::Registry::global()),
      RoutinesDirtyC(Reg.counter("runtime.incremental.routines_dirty")),
      PdgRebuiltC(Reg.counter("runtime.incremental.pdg_rebuilt")),
      SummaryRecomputedC(Reg.counter("runtime.incremental.summary_recomputed")),
      SlicesInvalidatedC(Reg.counter("runtime.incremental.slices_invalidated")),
      CodeRecompiledC(Reg.counter("runtime.incremental.code_recompiled")) {}

EditSession::~EditSession() = default;

EditTransaction EditSession::begin(const std::string &Source) {
  if (Retired.Prog) {
    // Deferred reclamation of the state the last commit replaced.
    obs::Span Reclaim("incremental.reclaim", "runtime");
    Retired = State();
  }
  EditTransaction T;
  T.Session = this;
  DiagnosticsEngine Diags;
  std::unique_ptr<Program> P = parseAndCheck(Source, Diags);
  if (!P) {
    T.Errors = Diags.str();
    return T;
  }
  if (Opts.Transform) {
    DiagnosticsEngine TDiags;
    transform::TransformStats TS;
    if (!transform::transformProgramInPlace(*P, TDiags, TS)) {
      T.Errors = TDiags.str();
      return T;
    }
    T.TransformInfo = std::move(TS);
  }
  T.Prog = std::shared_ptr<const Program>(std::move(P));
  return T;
}

IncrementalStats EditTransaction::commit() {
  IncrementalStats S;
  if (!Session || !Prog)
    return S; // invalid transaction: the session stays untouched
  EditSession *Owner = Session;
  Session = nullptr;
  S = Owner->commitStaged(std::move(Prog));
  Prog.reset();
  return S;
}

/// Cold path: build every artifact of \p Staged from scratch. Staged.Prog,
/// Fps and EffectSigs are already set.
void EditSession::coldBuild(
    State &Staged, std::shared_ptr<const analysis::SideEffectAnalysis> SEA,
    IncrementalStats &S) {
  S.FullRebuild = true;
  unsigned N = static_cast<unsigned>(Staged.Fps.size());
  S.RoutinesDirty = N;
  S.PdgRebuilt = N;
  S.SummaryRecomputed = N;
  S.SlicesInvalidated = static_cast<unsigned>(St.Slices.size());
  analysis::SDGBuildOptions O;
  O.Threads = Opts.Threads;
  O.KeepReplayData = true;
  O.SharedCG = Staged.CG;
  O.SharedSEA = std::move(SEA);
  Staged.Graph = std::make_unique<analysis::SDG>(*Staged.Prog, O);
  Staged.Code = bytecode::compile(*Staged.Prog, Opts.Checked);
  S.CodeRecompiled = Staged.Code ? N : 0;
}

IncrementalStats EditSession::commitStaged(
    std::shared_ptr<const Program> NewProg) {
  obs::Span Span("incremental.commit", "runtime");
  IncrementalStats S;
  S.Committed = true;

  State Staged;
  Staged.Prog = std::move(NewProg);
  {
    obs::Span FpSpan("incremental.fingerprint", "runtime");
    Staged.Fps = fingerprintRoutines(*Staged.Prog);
  }
  S.RoutinesTotal = static_cast<unsigned>(Staged.Fps.size());

  // Incremental commits need the same routines in the same preorder
  // positions; adding, removing or reordering routines shifts every index
  // the reuse machinery keys on, so those edits rebuild cold.
  bool CanIncrement = !Opts.ForceFullRebuild && St.Prog && St.Graph &&
                      St.Graph->hasReplayData() &&
                      St.Fps.size() == Staged.Fps.size();
  if (CanIncrement)
    for (size_t I = 0; I != St.Fps.size(); ++I)
      if (St.Fps[I].QualifiedName != Staged.Fps[I].QualifiedName) {
        CanIncrement = false;
        break;
      }

  // The call graph and effect sets feed the dirty rules below and the SDG
  // build (SharedCG/SharedSEA) — built exactly once per commit. On the
  // incremental path they are *seeded*: clean routines' call sites and
  // direct access sets are translated from the previous state through the
  // AstMap instead of re-walking every body, so the mapping is built first
  // and the dirty rules that need the new call graph run after it.
  std::shared_ptr<const analysis::SideEffectAnalysis> SEA;

  if (!CanIncrement) {
    {
      obs::Span EffSpan("incremental.effects", "runtime");
      Staged.CG = std::make_shared<const analysis::CallGraph>(*Staged.Prog);
      SEA = std::make_shared<const analysis::SideEffectAnalysis>(*Staged.Prog,
                                                                 *Staged.CG);
      Staged.EffectSigs = effectSigsFor(*SEA, Staged.Fps);
    }
    Staged.SEA = SEA;
    coldBuild(Staged, std::move(SEA), S);
  } else {
    const size_t N = Staged.Fps.size();
    std::unordered_map<const RoutineDecl *, size_t> OldIdx, NewIdx;
    for (size_t I = 0; I != N; ++I) {
      OldIdx[St.Fps[I].Routine] = I;
      NewIdx[Staged.Fps[I].Routine] = I;
    }

    std::vector<char> HeaderChanged(N, 0), FrameChanged(N, 0),
        BodyChanged(N, 0), PdgDirty(N, 0), CodeDirty(N, 0);
    for (size_t I = 0; I != N; ++I) {
      HeaderChanged[I] = St.Fps[I].HeaderHash != Staged.Fps[I].HeaderHash;
      FrameChanged[I] = St.Fps[I].FrameHash != Staged.Fps[I].FrameHash;
      BodyChanged[I] = St.Fps[I].BodyHash != Staged.Fps[I].BodyHash;
      if (St.Fps[I].FullHash != Staged.Fps[I].FullHash)
        PdgDirty[I] = CodeDirty[I] = 1;
    }

    // A frame change re-slots the owner's frame; everything lexically
    // inside addresses it by (hops, slot), so the whole subtree rebuilds.
    // The subtree flag doubles as "binding may have changed": a frame edit
    // anywhere on the ancestor chain can re-bind names in this body (a new
    // local shadowing a global), which gates effect-set seeding below.
    std::vector<char> FrameSubtree(N, 0);
    for (size_t I = 0; I != N; ++I)
      for (const RoutineDecl *R = Staged.Fps[I].Routine; R;
           R = R->getParent())
        if (FrameChanged[NewIdx.at(R)]) {
          FrameSubtree[I] = 1;
          PdgDirty[I] = CodeDirty[I] = 1;
          break;
        }

    // Old->new AST correspondence for everything that may replay. Mapping
    // failures (which fingerprint equality should preclude) demote the
    // routine to a rebuild — never to a wrong replay.
    AstMap Map;
    std::vector<char> BodyMapped(N, 0);
    {
      obs::Span MapSpan("incremental.map", "runtime");
      Map.bindNewProgram(*Staged.Prog);
      for (size_t I = 0; I != N; ++I)
        Map.addRoutine(St.Fps[I].Routine, Staged.Fps[I].Routine);
      for (size_t I = 0; I != N; ++I) {
        if (!HeaderChanged[I] &&
            !Map.mapHeaderVars(St.Fps[I].Routine, Staged.Fps[I].Routine))
          PdgDirty[I] = CodeDirty[I] = 1;
        if (!FrameChanged[I] &&
            !Map.mapLocalVars(St.Fps[I].Routine, Staged.Fps[I].Routine))
          PdgDirty[I] = CodeDirty[I] = 1;
        if (!BodyChanged[I]) {
          if (Map.mapBody(St.Fps[I].Routine, Staged.Fps[I].Routine))
            BodyMapped[I] = 1;
          else
            PdgDirty[I] = CodeDirty[I] = 1;
        }
      }
    }

    {
      obs::Span EffSpan("incremental.effects", "runtime");
      // Call sites depend only on the body text, so a mapped body reuses
      // them outright. Direct access sets additionally depend on name
      // binding, so they seed only when no ancestor frame changed either;
      // per-routine translation failures inside fall back to the walk.
      Staged.CG = St.CG ? std::make_shared<const analysis::CallGraph>(
                              *Staged.Prog, *St.CG, Map, BodyMapped)
                        : std::make_shared<const analysis::CallGraph>(
                              *Staged.Prog);
      std::vector<char> CleanDirect(N, 0);
      for (size_t I = 0; I != N; ++I)
        CleanDirect[I] = (BodyMapped[I] && !FrameSubtree[I]) ? 1 : 0;
      // The walk's var-argument exclusion set depends on callee parameter
      // modes, so a callee header change stales the caller's direct sets
      // even though the caller's own text is untouched.
      for (const analysis::CallSite &CS : Staged.CG->allCallSites())
        if (CS.Callee && HeaderChanged[NewIdx.at(CS.Callee)])
          CleanDirect[NewIdx.at(CS.Caller)] = 0;
      SEA = std::make_shared<const analysis::SideEffectAnalysis>(
          *Staged.Prog, *Staged.CG, St.SEA.get(), &Map, &CleanDirect);
      Staged.EffectSigs = effectSigsFor(*SEA, Staged.Fps);
    }
    Staged.SEA = SEA;
    const analysis::CallGraph &NewCG = *Staged.CG;

    // A header change alters the caller side of every call (parameter
    // shapes, actual vertices, call-site code); an effect-signature change
    // alters only the caller's dependence vertices for globals — bytecode
    // never bakes callee effect sets.
    for (const analysis::CallSite &CS : NewCG.allCallSites()) {
      size_t Caller = NewIdx.at(CS.Caller), Callee = NewIdx.at(CS.Callee);
      if (HeaderChanged[Callee])
        PdgDirty[Caller] = CodeDirty[Caller] = 1;
      if (Staged.EffectSigs[Callee] != St.EffectSigs[Callee])
        PdgDirty[Caller] = 1;
    }

    // Summary pairs must re-solve for dirty routines and all transitive
    // callers (a callee's new pairs can change what flows through a caller's
    // call sites, hence the caller's own pairs).
    std::vector<std::vector<size_t>> CallersOf(N);
    for (const analysis::CallSite &CS : NewCG.allCallSites())
      CallersOf[NewIdx.at(CS.Callee)].push_back(NewIdx.at(CS.Caller));
    std::vector<char> Affected(PdgDirty);
    std::vector<size_t> Work;
    for (size_t I = 0; I != N; ++I)
      if (Affected[I])
        Work.push_back(I);
    while (!Work.empty()) {
      size_t I = Work.back();
      Work.pop_back();
      for (size_t C : CallersOf[I])
        if (!Affected[C]) {
          Affected[C] = 1;
          Work.push_back(C);
        }
    }

    analysis::SDGReusePlan Plan;
    Plan.Old = St.Graph.get();
    Plan.Map = &Map;
    Plan.Replay.resize(N);
    for (size_t I = 0; I != N; ++I)
      Plan.Replay[I] = !PdgDirty[I];
    Plan.SummaryAffected = Affected;
    analysis::SDGRebuildStats RS;
    analysis::SDGBuildOptions O;
    O.Threads = Opts.Threads;
    O.KeepReplayData = true;
    O.Reuse = &Plan;
    O.Stats = &RS;
    O.SharedCG = Staged.CG;
    O.SharedSEA = std::move(SEA);
    Staged.Graph = std::make_unique<analysis::SDG>(*Staged.Prog, O);
    S.PdgRebuilt = RS.PdgBuilt;
    S.PdgReplayed = RS.PdgReplayed;
    S.SummaryRecomputed = RS.SummaryRecomputed;

    // Slice eviction. A memoized slice survives when its node set avoids
    // every old-graph vertex the edit could perturb:
    //  (a) the id ranges of dirty routines;
    //  (b) the ranges of routines *called by* dirty routines, in the old
    //      or new call graph — a dirty caller can add or drop call sites,
    //      which extends/shrinks the caller-ascension frontier reachable
    //      from the callee's formal vertices;
    //  (c) the call-record vertices of calls whose callee's summary pair
    //      set actually changed (exact post-fixpoint comparison — a clean
    //      hub whose callee summaries held steady evicts nothing).
    if (!St.Slices.empty()) {
      obs::Span SliceSpan("incremental.slices", "runtime");
      const analysis::SDG &OldG = *St.Graph;
      const analysis::SDG &NewG = *Staged.Graph;
      support::NodeSet Perturbed(
          static_cast<uint32_t>(OldG.nodes().size()));
      auto MarkRange = [&Perturbed, &OldG](size_t I) {
        auto R = OldG.routineRange(I);
        Perturbed.insertRange(R.first, R.second);
      };
      for (size_t I = 0; I != N; ++I)
        if (PdgDirty[I])
          MarkRange(I);
      for (const analysis::CallSite &CS : St.CG->allCallSites())
        if (PdgDirty[OldIdx.at(CS.Caller)])
          MarkRange(OldIdx.at(CS.Callee));
      for (const analysis::CallSite &CS : NewCG.allCallSites())
        if (PdgDirty[NewIdx.at(CS.Caller)])
          MarkRange(NewIdx.at(CS.Callee));
      std::vector<char> PairsChanged(N, 0);
      if (OldG.summaryPairs().size() == N &&
          NewG.summaryPairs().size() == N)
        for (size_t I = 0; I != N; ++I)
          PairsChanged[I] = OldG.summaryPairs()[I] != NewG.summaryPairs()[I];
      for (uint32_t Id = 0; Id != OldG.nodes().size(); ++Id) {
        const analysis::SDGCallRecord *Call = OldG.node(Id).getCall();
        if (!Call)
          continue;
        auto It = OldIdx.find(Call->Site.Callee);
        if (It != OldIdx.end() && PairsChanged[It->second])
          Perturbed.insert(Id);
      }

      // Survivors remap id-by-id: a clean routine's arena has the same
      // node count and order in both graphs, so the per-routine range
      // delta is a plain shift.
      std::vector<uint32_t> OldBegins(N);
      for (size_t I = 0; I != N; ++I)
        OldBegins[I] = OldG.routineRange(I).first;
      for (auto &KV : St.Slices) {
        const slicing::StaticSlice &Slice = *KV.second;
        std::vector<uint32_t> Ids = Slice.nodes().ids();
        bool Hit = false;
        for (uint32_t Id : Ids)
          if (Perturbed.contains(Id)) {
            Hit = true;
            break;
          }
        if (Hit) {
          ++S.SlicesInvalidated;
          continue;
        }
        support::NodeSet Remapped(
            static_cast<uint32_t>(NewG.nodes().size()));
        for (uint32_t Id : Ids) {
          size_t R = static_cast<size_t>(
              std::upper_bound(OldBegins.begin(), OldBegins.end(), Id) -
              OldBegins.begin() - 1);
          Remapped.insert(Id - OldBegins[R] + NewG.routineRange(R).first);
        }
        Staged.Slices[KV.first] =
            std::make_shared<const slicing::StaticSlice>(
                slicing::sliceFromNodes(NewG, std::move(Remapped)));
        ++S.SlicesRemapped;
      }
    }

    // Bytecode: splice clean routines' segments, recompile dirty ones. A
    // previously rejected program (null code) retries a full compile — the
    // edit may have removed the unsupported construct.
    obs::Span CodeSpan("incremental.code", "runtime");
    if (St.Code) {
      bytecode::CodeReusePlan CP;
      CP.Old = St.Code.get();
      CP.Map = &Map;
      CP.Replay.resize(N);
      for (size_t I = 0; I != N; ++I)
        CP.Replay[I] = !CodeDirty[I];
      bytecode::CodeRebuildStats CS;
      Staged.Code =
          bytecode::compileWithReuse(*Staged.Prog, Opts.Checked, CP, &CS);
      S.CodeRecompiled = CS.Recompiled;
      S.CodeReplayed = CS.Replayed;
    } else {
      Staged.Code = bytecode::compile(*Staged.Prog, Opts.Checked);
      S.CodeRecompiled =
          Staged.Code ? static_cast<unsigned>(N) : 0;
    }

    for (size_t I = 0; I != N; ++I)
      if (PdgDirty[I] || CodeDirty[I])
        ++S.RoutinesDirty;
  }

  // Retire the previous master state instead of destroying it here:
  // tearing down the old AST, replay arenas and bytecode is linear in
  // program size, and commit latency is the product surface. The next
  // begin() reclaims it alongside its own (far larger) parse work.
  Retired = std::move(St);
  St = std::move(Staged);
  Last = S;

  RoutinesDirtyC.add(S.RoutinesDirty);
  PdgRebuiltC.add(S.PdgRebuilt);
  SummaryRecomputedC.add(S.SummaryRecomputed);
  SlicesInvalidatedC.add(S.SlicesInvalidated);
  CodeRecompiledC.add(S.CodeRecompiled);
  if (Span.active()) {
    Span.arg("full_rebuild", S.FullRebuild);
    Span.arg("routines_total", S.RoutinesTotal);
    Span.arg("routines_dirty", S.RoutinesDirty);
    Span.arg("pdg_rebuilt", S.PdgRebuilt);
    Span.arg("pdg_replayed", S.PdgReplayed);
    Span.arg("summary_recomputed", S.SummaryRecomputed);
    Span.arg("slices_invalidated", S.SlicesInvalidated);
    Span.arg("slices_remapped", S.SlicesRemapped);
    Span.arg("code_recompiled", S.CodeRecompiled);
    Span.arg("code_replayed", S.CodeReplayed);
  }
  return S;
}

std::shared_ptr<const slicing::StaticSlice>
EditSession::sliceOnOutput(const std::string &Routine,
                           const std::string &Var) {
  if (!St.Prog || !St.Graph)
    return nullptr;
  auto Key = std::make_pair(Routine, Var);
  auto It = St.Slices.find(Key);
  if (It != St.Slices.end())
    return It->second;
  const RoutineDecl *Target = nullptr;
  forEachRoutine(St.Prog->getMain(), [&](RoutineDecl *R) {
    if (!Target && (R->qualifiedName() == Routine || R->getName() == Routine))
      Target = R;
  });
  if (!Target)
    return nullptr;
  auto Slice = std::make_shared<const slicing::StaticSlice>(
      slicing::sliceOnRoutineOutput(*St.Graph, Target, Var));
  St.Slices.emplace(std::move(Key), Slice);
  return Slice;
}
