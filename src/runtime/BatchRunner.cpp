//===- BatchRunner.cpp - Parallel batch-debugging runtime -----------------===//

#include "runtime/BatchRunner.h"

#include "core/ReferenceOracle.h"
#include "obs/Trace.h"
#include "support/Hashing.h"

#include <atomic>
#include <cstdio>

using namespace gadt;
using namespace gadt::core;
using namespace gadt::runtime;

std::string SessionResult::summary() const {
  std::string Out;
  Out += "fp=" + hashHex(Fingerprint);
  Out += " prepared=" + std::string(Prepared ? "1" : "0");
  Out += " found=" + std::string(Found ? "1" : "0");
  Out += " unit=" + UnitName;
  Out += " wrong=" + WrongOutput;
  Out += " msg=" + Message;
  Out += "\njudgements=" + std::to_string(Stats.Judgements);
  Out += " unanswered=" + std::to_string(Stats.Unanswered);
  Out += " memo=" + std::to_string(Stats.MemoHits);
  Out += " slicing=" + std::to_string(Stats.SlicingActivations);
  Out += " pruned=" + std::to_string(Stats.NodesPruned);
  Out += "\n" + Stats.transcript();
  return Out;
}

SessionResult gadt::runtime::runSession(RuntimeContext &Ctx,
                                        const SessionRequest &Req) {
  // Wall time is measured through the tracer clock so the histogram and
  // the trace span agree; the clock read costs nothing extra when tracing
  // is off.
  uint64_t StartNs = obs::Tracer::global().nowNanos();
  obs::Span Span("session", "runtime");
  // Close the flow opened at enqueue time: the finish event binds to this
  // session slice ("bp":"e"), so Perfetto draws the arrow from the
  // enqueuing thread's slice into this one.
  if (uint64_t Flow = obs::FlowContext::current(); Flow && obs::enabled()) {
    obs::Tracer::global().flowEvent('f', "session.flow", "runtime", Flow);
    Span.arg("flow", Flow);
  }
  SessionResult Res;
  DiagnosticsEngine Diags;

  auto Finish = [&](SessionResult R) {
    uint64_t DurNs = obs::Tracer::global().nowNanos() - StartNs;
    obs::Registry &Reg = Ctx.metrics();
    Reg.counter("runtime.sessions").add();
    Reg.histogram("runtime.session.micros").observe(DurNs / 1000);
    Span.arg("fp", hashHex(R.Fingerprint));
    Span.arg("prepared", R.Prepared);
    Span.arg("found", R.Found);
    return R;
  };

  std::shared_ptr<const SessionArtifacts> Artifacts =
      Ctx.prepare(Req.Source, Req.Opts, Diags);
  if (!Artifacts) {
    Res.Message = Diags.str();
    return Finish(std::move(Res));
  }
  Res.Fingerprint = Artifacts->Fingerprint;

  GADTSession Session(Artifacts, Req.Opts, Diags);
  if (!Session.valid()) {
    Res.Message = Diags.str();
    return Finish(std::move(Res));
  }
  Session.setMetricsRegistry(&Ctx.metrics());

  // Build this session's private oracle (oracles are stateful; the
  // intended *program* parse is shared through the context).
  std::unique_ptr<Oracle> Private;
  std::shared_ptr<const pascal::Program> IntendedProg;
  if (Req.MakeOracle) {
    Private = Req.MakeOracle();
  } else if (!Req.Intended.empty()) {
    IntendedProg = Ctx.internProgram(Req.Intended, Diags);
    if (!IntendedProg) {
      Res.Message = Diags.str();
      return Finish(std::move(Res));
    }
    Private = std::make_unique<IntendedProgramOracle>(*IntendedProg);
  }
  if (!Private) {
    Res.Message = "batch runtime: request provides no oracle";
    return Finish(std::move(Res));
  }
  Res.Prepared = true;

  BugReport Report = Session.debug(*Private, Req.Input);
  Res.Found = Report.Found;
  Res.UnitName = Report.UnitName;
  Res.WrongOutput = Report.WrongOutput;
  Res.Message = Report.Message;
  Res.Stats = Session.stats();
  return Finish(std::move(Res));
}

struct BatchRunner::Batch {
  std::mutex M;
  std::condition_variable Done;
  size_t Remaining = 0;
};

BatchRunner::BatchRunner(std::shared_ptr<RuntimeContext> Ctx,
                         BatchOptions Opts)
    : Ctx(std::move(Ctx)) {
  if (!this->Ctx)
    this->Ctx = std::make_shared<RuntimeContext>();
  Threads = Opts.Threads ? Opts.Threads
                         : std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

BatchRunner::~BatchRunner() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void BatchRunner::workerLoop(unsigned Index) {
  if (obs::enabled()) {
    char Name[32];
    std::snprintf(Name, sizeof(Name), "gadt-worker-%u", Index);
    obs::Tracer::global().setThreadName(Name);
  }
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(M);
      WorkReady.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // stopping and drained
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    Job();
  }
}

std::vector<SessionResult>
BatchRunner::run(const std::vector<SessionRequest> &Requests) {
  std::vector<SessionResult> Results(Requests.size());
  if (Requests.empty())
    return Results;

  auto State = std::make_shared<Batch>();
  State->Remaining = Requests.size();
  {
    std::lock_guard<std::mutex> Lock(M);
    for (size_t I = 0; I < Requests.size(); ++I) {
      uint64_t EnqueuedNs = obs::Tracer::global().nowNanos();
      // Each request gets a flow id linking its spans across threads: the
      // enqueue slice here starts the flow, the worker steps it at pickup
      // and the session span finishes it.
      uint64_t FlowId = 0;
      if (obs::enabled()) {
        FlowId = obs::FlowContext::nextId();
        obs::Span Enq("enqueue", "runtime");
        Enq.arg("flow", FlowId);
        Enq.arg("request", static_cast<uint64_t>(I));
        obs::Tracer::global().flowEvent('s', "session.flow", "runtime",
                                        FlowId);
      }
      Queue.push_back([this, State, &Requests, &Results, I, EnqueuedNs,
                       FlowId] {
        obs::FlowContext::Scope FlowScope(FlowId);
        // Time between enqueue and a worker picking the job up: the
        // batch's queueing delay, visible per job in the trace and as a
        // histogram in the context's registry.
        uint64_t WaitNs = obs::Tracer::global().nowNanos() - EnqueuedNs;
        Ctx->metrics()
            .histogram("runtime.queue_wait.micros")
            .observe(WaitNs / 1000);
        if (obs::enabled()) {
          obs::Tracer::global().completeEvent(
              "queue.wait", "runtime", EnqueuedNs, WaitNs,
              {{"flow", std::to_string(FlowId), /*Quote=*/false}});
          obs::Tracer::global().flowEvent('t', "session.flow", "runtime",
                                          FlowId);
        }
        Results[I] = runSession(*Ctx, Requests[I]);
        std::lock_guard<std::mutex> BatchLock(State->M);
        if (--State->Remaining == 0)
          State->Done.notify_all();
      });
    }
  }
  WorkReady.notify_all();

  std::unique_lock<std::mutex> Lock(State->M);
  State->Done.wait(Lock, [&] { return State->Remaining == 0; });
  return Results;
}
