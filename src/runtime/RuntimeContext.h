//===- RuntimeContext.h - Shared caches for batch debugging -----*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared, thread-safe memoization layer of the batch-debugging
/// runtime. A RuntimeContext owns five caches, consulted in order when a
/// session is prepared:
///
///  - a *program cache*: one parse+check per distinct source text (keyed by
///    the FNV-1a hash of the text);
///  - a *transform cache*: one transformation run per program fingerprint
///    (support/Hashing.h hashProgram — the canonical-print hash, so textual
///    variants of the same program share one entry);
///  - an *SDG cache*: one system dependence graph per (fingerprint,
///    transformed?) prepared program;
///  - a *code cache*: one bytecode compilation (src/bytecode) per
///    (fingerprint, transformed?) prepared program — sessions execute the
///    cached code instead of recompiling; unsupported programs cache a
///    null entry so the fallback decision is also made once;
///  - a *static-slice memo*: one two-phase slice per (fingerprint,
///    transformed?, routine, output-variable) criterion, filled lazily as
///    debugging sessions request slices.
///
/// All cached values are immutable after construction and shared by
/// std::shared_ptr; each is built exactly once (support/OnceCache.h), so
/// hit/miss counters are exact. Entries are never invalidated: keys are
/// content hashes, so a changed program is a different key. A context can
/// outlive any number of sessions and BatchRunners.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_RUNTIME_RUNTIMECONTEXT_H
#define GADT_RUNTIME_RUNTIMECONTEXT_H

#include "core/GADT.h"
#include "obs/Metrics.h"
#include "support/OnceCache.h"

#include <atomic>
#include <memory>
#include <string>
#include <tuple>

namespace gadt {
namespace runtime {

/// Construction-time knobs of a RuntimeContext.
struct RuntimeOptions {
  /// Byte budget across all five caches; 0 = unlimited (the default, and
  /// the previous behavior). When a miss pushes the summed byte estimate
  /// over the budget, the globally least-recently-built ready entries are
  /// evicted until the estimate fits again. Eviction drops the cache's
  /// reference only — sessions already holding an entry keep it alive.
  size_t CacheBudgetBytes = 0;
};

/// Counter snapshot across all caches of a context.
struct RuntimeStats {
  uint64_t ProgramHits = 0, ProgramMisses = 0;
  uint64_t TransformHits = 0, TransformMisses = 0;
  uint64_t SdgHits = 0, SdgMisses = 0;
  uint64_t CodeHits = 0, CodeMisses = 0;
  uint64_t SliceHits = 0, SliceMisses = 0;
  /// Distinct program fingerprints seen by the transform cache.
  uint64_t Subjects = 0;

  /// One line per cache: "programs 3/13 transforms 1/11 ..." (miss/total).
  std::string str() const;
};

/// One transformation run, pinned together with the original program whose
/// TypeContext the transformed clone shares.
struct TransformEntry {
  std::shared_ptr<const pascal::Program> Original;
  std::shared_ptr<const pascal::Program> Transformed; ///< null on failure
  transform::TransformStats Stats;
  std::string Errors; ///< diagnostics of a failed run
};

/// One dependence graph, pinning the prepared program it describes.
struct SdgEntry {
  std::shared_ptr<const pascal::Program> Prepared;
  std::shared_ptr<const pascal::Program> OriginalPin;
  std::unique_ptr<const analysis::SDG> Graph;
};

/// One bytecode compilation, pinning the prepared program it was compiled
/// from. \c Code is null when the bytecode tier rejected the program
/// (cached too, so the tree-tier fallback is decided once per subject).
struct CodeEntry {
  std::shared_ptr<const pascal::Program> Prepared;
  std::shared_ptr<const pascal::Program> OriginalPin;
  std::shared_ptr<const bytecode::CompiledProgram> Code;
};

/// The shared cache layer. Thread-safe; see file comment.
class RuntimeContext {
public:
  /// \p Metrics receives this context's telemetry — cache hit/miss
  /// counters (`runtime.cache.*`), session accounting and wall-time
  /// histograms. Defaults to the process-wide registry; tests pass a
  /// private one for exact accounting. Must outlive the context.
  explicit RuntimeContext(obs::Registry *Metrics = nullptr,
                          RuntimeOptions Opts = RuntimeOptions());
  ~RuntimeContext();

  RuntimeContext(const RuntimeContext &) = delete;
  RuntimeContext &operator=(const RuntimeContext &) = delete;

  /// Parse-and-check with interning: repeated texts parse once. Returns
  /// null on compile errors (\p Diags explains; the failure is cached).
  std::shared_ptr<const pascal::Program>
  internProgram(const std::string &Source, DiagnosticsEngine &Diags);

  /// Prepares shareable session artifacts for \p Source under \p Opts:
  /// parse (cached), transform (cached), dependence graph (cached, when
  /// static slicing is on) and a slice provider backed by the shared memo.
  /// Returns null on compile or transform failure. The artifacts (and any
  /// session built from them) reference the context's caches and must not
  /// outlive it.
  std::shared_ptr<const core::SessionArtifacts>
  prepare(const std::string &Source, const core::GADTOptions &Opts,
          DiagnosticsEngine &Diags);

  RuntimeStats stats() const;

  /// The registry this context reports into (see the constructor).
  obs::Registry &metrics() { return Reg; }

private:
  struct ProgramEntry;

  /// Key of the slice memo: (fingerprint, transformed?, routine-name
  /// symbol, output-variable symbol). Symbol ids are process-stable for
  /// equal strings, so the key carries no string payload.
  using SliceKey = std::tuple<uint64_t, bool, uint32_t, uint32_t>;

  OnceCache<uint64_t, ProgramEntry> Programs;        // by source-text hash
  OnceCache<uint64_t, TransformEntry> Transforms;    // by program fingerprint
  OnceCache<std::pair<uint64_t, bool>, SdgEntry> Sdgs;
  OnceCache<std::pair<uint64_t, bool>, CodeEntry> Codes;
  OnceCache<SliceKey, slicing::StaticSlice> Slices;

  obs::Registry &Reg;
  /// `runtime.cache.<cache>.{hits,misses}`, resolved once at construction.
  /// Kept exactly in sync with the OnceCache counters above (every
  /// getOrBuild bumps both); tests/ObsTest.cpp asserts the equality.
  struct CacheCounters {
    obs::Counter &Hits, &Misses;
  };
  CacheCounters ProgramC, TransformC, SdgC, CodeC, SliceC;

  /// `runtime.cache.<cache>.{entries,bytes}` occupancy gauges, refreshed on
  /// every lookup. Bytes are an estimate of what an entry retains (source
  /// text, canonical print, graph nodes+edges, slice payload) — good enough
  /// to watch growth under long batch runs, not an allocator measurement.
  /// The per-entry estimates live in the OnceCaches themselves (noteBytes),
  /// which is what makes budget eviction subtract the right amount.
  struct CacheGauges {
    obs::Gauge &Entries, &Bytes;
  };
  CacheGauges ProgramG, TransformG, SdgG, CodeG, SliceG;

  RuntimeOptions Options;
  obs::Counter &EvictionC; ///< `runtime.cache.evictions`

  /// Evicts globally least-recently-built ready entries until the summed
  /// byte estimate fits Options.CacheBudgetBytes. No-op when unlimited.
  void enforceBudget();
  /// Refreshes all ten occupancy gauges from the caches.
  void publishOccupancy();
};

} // namespace runtime
} // namespace gadt

#endif // GADT_RUNTIME_RUNTIMECONTEXT_H
