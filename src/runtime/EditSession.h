//===- EditSession.h - Incremental, transactional recompute -----*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transactional edit-and-recompute over one evolving program. An
/// EditSession holds the committed "master" state — the checked (and
/// optionally transformed) program, its per-routine fingerprints and effect
/// signatures, the system dependence graph with replay data, the compiled
/// bytecode, and a static-slice memo. begin() stages an edit as an
/// EditTransaction: the new source is parsed and checked (and transformed)
/// up front, so a broken edit produces an invalid transaction and the
/// session is untouched — commit is all-or-nothing.
///
/// commit() diffs the staged program against the master at routine
/// granularity (support/Hashing.h fingerprints) and invalidates surgically:
///
///  - a routine whose full fingerprint changed rebuilds its own PDG arena
///    and bytecode segment;
///  - a header (caller-visible signature) change additionally dirties the
///    routine's callers;
///  - a frame (locals layout) change dirties the routine's whole lexical
///    subtree — nested routines address outer frames by (depth, slot);
///  - a side-effect signature change of a callee re-derives its callers'
///    PDGs (formal/actual vertices for globals depend on GREF/GMOD), but
///    not their bytecode, which never bakes callee effect sets;
///  - summary edges are re-solved only for dirtied routines and their
///    transitive callers (analysis/SDG.h partial fixpoint);
///  - memoized slices are dropped only when their node set intersects the
///    perturbed region of the old graph; survivors are remapped id-by-id
///    onto the new graph.
///
/// Everything else replays from cache against the freshly parsed AST via
/// lockstep old->new pointer matching (pascal/ASTMatch.h). Equal canonical
/// prints guarantee identical AST shape, so replay is exact; any matcher or
/// replay mismatch falls back to rebuilding the routine (or the whole
/// artifact) — slower, never wrong. A commit is observable through the
/// returned IncrementalStats, the `runtime.incremental.*` counters and an
/// `incremental.commit` span.
///
/// Sessions are single-threaded by contract (Threads only parallelizes the
/// PDG rebuild inside a commit). Artifacts handed out (sdg(), slices) are
/// valid until the next successful commit; program() and code() are
/// shared_ptr-pinned and survive it.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_RUNTIME_EDITSESSION_H
#define GADT_RUNTIME_EDITSESSION_H

#include "analysis/SDG.h"
#include "bytecode/Bytecode.h"
#include "obs/Metrics.h"
#include "slicing/StaticSlicer.h"
#include "support/Hashing.h"
#include "transform/Transform.h"

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace gadt {
namespace runtime {

/// Construction-time knobs of an EditSession.
struct EditSessionOptions {
  /// Run the GADT transformation phase on every staged parse. Transform
  /// output is cached at whole-program granularity only (its passes rewrite
  /// call sites program-wide), so edits still pay a full transform run.
  bool Transform = false;
  /// Compile bytecode with use-before-assign checking.
  bool Checked = false;
  /// PDG rebuild parallelism inside a commit (0 = hardware concurrency).
  unsigned Threads = 1;
  /// Disable all reuse: every commit is a cold rebuild. For baseline
  /// measurement (bench/perf_micro.cpp) and differential testing.
  bool ForceFullRebuild = false;
  /// Registry for the `runtime.incremental.*` counters and commit spans;
  /// defaults to the process-wide one.
  obs::Registry *Metrics = nullptr;
};

/// What one commit did. Counters are per-commit (not cumulative).
struct IncrementalStats {
  bool Committed = false;   ///< false: the transaction was invalid
  bool FullRebuild = false; ///< first commit, forced, or routine list changed
  unsigned RoutinesTotal = 0;
  unsigned RoutinesDirty = 0; ///< routines with any artifact invalidated
  unsigned PdgRebuilt = 0, PdgReplayed = 0;
  unsigned SummaryRecomputed = 0; ///< routines whose summary pairs re-solved
  unsigned SlicesInvalidated = 0, SlicesRemapped = 0;
  unsigned CodeRecompiled = 0, CodeReplayed = 0;
};

class EditSession;

/// A staged edit: parsed, checked and (optionally) transformed, but not yet
/// committed. Invalid when the frontend or transform failed — errors() has
/// the diagnostics and commit() refuses, leaving the session untouched.
class EditTransaction {
public:
  EditTransaction(EditTransaction &&) = default;
  EditTransaction &operator=(EditTransaction &&) = default;

  bool valid() const { return Prog != nullptr; }
  const std::string &errors() const { return Errors; }
  const transform::TransformStats &transformStats() const {
    return TransformInfo;
  }

  /// Diffs against the session master, invalidates surgically, swaps the
  /// staged state in atomically. Consumes the transaction. Returns what was
  /// done; Committed is false when the transaction was invalid.
  IncrementalStats commit();

private:
  friend class EditSession;
  EditTransaction() = default;

  EditSession *Session = nullptr;
  std::shared_ptr<const pascal::Program> Prog;
  transform::TransformStats TransformInfo;
  std::string Errors;
};

/// The session. See the file comment.
class EditSession {
public:
  explicit EditSession(EditSessionOptions Opts = EditSessionOptions());
  ~EditSession();

  EditSession(const EditSession &) = delete;
  EditSession &operator=(const EditSession &) = delete;

  /// Stages \p Source as a transaction (parse + check + transform now).
  EditTransaction begin(const std::string &Source);

  /// The committed program; null before the first successful commit.
  const pascal::Program *program() const { return St.Prog.get(); }
  std::shared_ptr<const pascal::Program> programPtr() const {
    return St.Prog;
  }
  /// The committed dependence graph; valid until the next commit.
  const analysis::SDG *sdg() const { return St.Graph.get(); }
  /// The committed bytecode; null when the tier rejected the program.
  std::shared_ptr<const bytecode::CompiledProgram> code() const {
    return St.Code;
  }

  /// Memoized static slice on (routine, output variable). \p Routine
  /// matches a routine's qualified name (or plain name). The slice is valid
  /// until the next commit; commits keep it memoized when the edit provably
  /// cannot change it.
  std::shared_ptr<const slicing::StaticSlice>
  sliceOnOutput(const std::string &Routine, const std::string &Var);

  const IncrementalStats &lastStats() const { return Last; }
  const EditSessionOptions &options() const { return Opts; }

private:
  friend class EditTransaction;

  /// Master state, swapped wholesale by a successful commit.
  struct State {
    std::shared_ptr<const pascal::Program> Prog;
    std::vector<RoutineFingerprint> Fps;
    /// Per-routine hash of (GREF, GMOD, RefParams, ModParams), aligned
    /// with Fps.
    std::vector<uint64_t> EffectSigs;
    /// The program's call graph, shared with Graph; kept here so the next
    /// commit's slice-perturbation pass reads the old call sites without
    /// rebuilding the graph, and so clean routines' sites can be translated
    /// instead of re-collected.
    std::shared_ptr<const analysis::CallGraph> CG;
    /// The program's side-effect analysis, shared with Graph; kept so the
    /// next commit can seed clean routines' direct access sets from it.
    std::shared_ptr<const analysis::SideEffectAnalysis> SEA;
    std::unique_ptr<analysis::SDG> Graph; ///< built with KeepReplayData
    std::shared_ptr<const bytecode::CompiledProgram> Code;
    std::map<std::pair<std::string, std::string>,
             std::shared_ptr<const slicing::StaticSlice>>
        Slices;
  };

  IncrementalStats commitStaged(std::shared_ptr<const pascal::Program> P);
  void coldBuild(State &Staged,
                 std::shared_ptr<const analysis::SideEffectAnalysis> SEA,
                 IncrementalStats &S);

  State St;
  /// The state the last commit replaced, kept until the next begin().
  /// Destroying a whole master state (AST, replay arenas, bytecode) is
  /// linear in program size; deferring it keeps commit latency down to the
  /// surgical work, and begin() — which already pays a full parse — absorbs
  /// the reclamation.
  State Retired;
  IncrementalStats Last;
  EditSessionOptions Opts;
  obs::Registry &Reg;
  obs::Counter &RoutinesDirtyC, &PdgRebuiltC, &SummaryRecomputedC,
      &SlicesInvalidatedC, &CodeRecompiledC;
};

} // namespace runtime
} // namespace gadt

#endif // GADT_RUNTIME_EDITSESSION_H
