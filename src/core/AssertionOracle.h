//===- AssertionOracle.h - Assertion-based oracle ---------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// User-supplied assertions about intended unit behaviour, in the style of
/// [Drabent, Nadjm-Tehrani, Maluszynski 1988] which the paper adopts:
/// "Assertions in this model are expressed in terms of Boolean expressions,
/// which can refer to functions and procedures, parameters, and global
/// variables." An assertion is a boolean expression over the unit's input
/// and output binding names (inputs additionally under `in_<name>` when an
/// output shadows them).
///
/// Two strengths:
///  - Specification: holds exactly when the behaviour is intended — its
///    value answers the query outright (this is what cuts interactions).
///  - Necessary: must hold for intended behaviour — a violation answers
///    "incorrect", but holding proves nothing.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_CORE_ASSERTIONORACLE_H
#define GADT_CORE_ASSERTIONORACLE_H

#include "core/Oracle.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <string>

namespace gadt {
namespace core {

/// Holds assertions keyed by unit name and judges nodes with them.
class AssertionOracle : public Oracle {
public:
  enum class Strength : uint8_t { Specification, Necessary };

  /// Parses \p ExprText with the classifier-expression grammar and attaches
  /// it to \p UnitName. Returns false (with diagnostics) on a parse error.
  bool addAssertion(const std::string &UnitName, const std::string &ExprText,
                    Strength S, DiagnosticsEngine &Diags);

  Judgement judge(const trace::ExecNode &N) override;

  unsigned assertionCount() const { return Count; }

private:
  struct Entry;
  std::map<std::string, std::vector<std::shared_ptr<Entry>>> ByUnit;
  unsigned Count = 0;
};

} // namespace core
} // namespace gadt

#endif // GADT_CORE_ASSERTIONORACLE_H
