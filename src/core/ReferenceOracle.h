//===- ReferenceOracle.h - Oracle backed by an intended program -*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An oracle that answers from an executable *intended program*: the
/// queried unit is re-run in a correct reference implementation with the
/// node's recorded inputs, and the outputs are compared. This mechanizes
/// the paper's human user (who judges against the intended behaviour in
/// their head) so that sessions, tests and scaling benchmarks run
/// deterministically; the incorrect-output report it produces ("no, error
/// on first output variable") is exactly what triggers slicing.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_CORE_REFERENCEORACLE_H
#define GADT_CORE_REFERENCEORACLE_H

#include "core/Oracle.h"
#include "pascal/AST.h"

namespace gadt {
namespace core {

/// Judges call units against a reference program containing routines with
/// the same names and signatures. Loop and iteration units are answered
/// DontKnow (they have no callable counterpart).
class IntendedProgramOracle : public Oracle {
public:
  /// \p Intended is not owned and must outlive the oracle.
  explicit IntendedProgramOracle(const pascal::Program &Intended,
                                 std::string Source = "user")
      : Intended(Intended), Source(std::move(Source)) {}

  Judgement judge(const trace::ExecNode &N) override;

  /// Number of reference executions performed (the simulated user's
  /// "mental evaluations" — the interaction count of the paper).
  unsigned queriesAnswered() const { return Queries; }

private:
  const pascal::Program &Intended;
  std::string Source;
  unsigned Queries = 0;
};

} // namespace core
} // namespace gadt

#endif // GADT_CORE_REFERENCEORACLE_H
