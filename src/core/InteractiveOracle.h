//===- InteractiveOracle.h - Stream-based user dialogue ---------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interactive oracle: presents each query in the paper's dialogue
/// notation ("computs(In y: 3, Out r1: 12, Out r2: 9)?") and reads the
/// user's verdict. Accepted answers:
///
///   y | yes          — the unit behaved as intended
///   n | no           — it did not
///   n <output>       — it did not, and <output> is a wrong output variable
///                      (activates slicing, paper Section 7)
///   d | dontknow     — no verdict
///
//===----------------------------------------------------------------------===//

#ifndef GADT_CORE_INTERACTIVEORACLE_H
#define GADT_CORE_INTERACTIVEORACLE_H

#include "core/Oracle.h"

#include <iosfwd>

namespace gadt {
namespace core {

/// Reads answers from a stream (stdin in the CLI example; a string stream
/// in tests).
class InteractiveOracle : public Oracle {
public:
  InteractiveOracle(std::istream &In, std::ostream &Out) : In(In), Out(Out) {}

  Judgement judge(const trace::ExecNode &N) override;

private:
  std::istream &In;
  std::ostream &Out;
};

} // namespace core
} // namespace gadt

#endif // GADT_CORE_INTERACTIVEORACLE_H
