//===- GADT.cpp - Generalized Algorithmic Debugging and Testing -----------===//

#include "core/GADT.h"

#include "obs/Log.h"
#include "obs/Trace.h"
#include "trace/ExecTreeBuilder.h"

using namespace gadt;
using namespace gadt::core;
using namespace gadt::interp;
using namespace gadt::pascal;

GADTSession::GADTSession(const Program &Subject, GADTOptions Opts,
                         DiagnosticsEngine &Diags)
    : Opts(Opts) {
  if (Opts.Transform) {
    transform::TransformResult R = transform::transformProgram(Subject, Diags);
    if (!R.Transformed)
      return;
    TransformedStorage = std::move(R.Transformed);
    TransformInfo = std::move(R.Stats);
    Prepared = TransformedStorage.get();
  } else {
    Prepared = &Subject;
  }
  if (Opts.Debugger.Slicing == SliceMode::Static)
    Sdg = std::make_unique<analysis::SDG>(*Prepared);
}

GADTSession::GADTSession(std::shared_ptr<const SessionArtifacts> A,
                         GADTOptions Opts, DiagnosticsEngine &Diags)
    : Opts(Opts), Artifacts(std::move(A)) {
  if (!Artifacts || !Artifacts->Prepared) {
    Diags.error(SourceLoc(), "session artifacts are missing the prepared "
                             "program");
    return;
  }
  Prepared = Artifacts->Prepared.get();
  TransformInfo = Artifacts->TransformInfo;
  // Fall back to building the graph locally when static slicing is
  // requested but the artifacts were prepared without it.
  if (Opts.Debugger.Slicing == SliceMode::Static && !Artifacts->Sdg)
    Sdg = std::make_unique<analysis::SDG>(*Prepared);
}

GADTSession::~GADTSession() = default;

const analysis::SDG *GADTSession::sdg() const {
  if (Sdg)
    return Sdg.get();
  return Artifacts ? Artifacts->Sdg.get() : nullptr;
}

void GADTSession::addTestDatabase(
    std::shared_ptr<const tgen::TestSpec> Spec,
    std::shared_ptr<const tgen::TestReportDB> DB) {
  TestOracleImpl.addDatabase(std::move(Spec), std::move(DB));
}

BugReport GADTSession::debug(Oracle &UserOracle, std::vector<int64_t> Input) {
  BugReport Failure;
  if (!valid()) {
    Failure.Message = "session preparation failed";
    return Failure;
  }

  // Tracing phase.
  InterpOptions IOpts;
  IOpts.TraceLoops = Opts.TraceLoops;
  IOpts.TraceIterations = Opts.TraceIterations;
  IOpts.TrackDeps = Opts.Debugger.Slicing == SliceMode::Dynamic;
  // Shared compiled bytecode (null when unsupported → the interpreter
  // falls back to the tree tier, or compiles privately on first run).
  IOpts.Code = Artifacts ? Artifacts->Code : nullptr;
  LastTree = trace::buildExecTree(*Prepared, IOpts, std::move(Input),
                                  &LastRun);
  if (!LastRun.Ok) {
    Failure.Message = "subject program failed: " + LastRun.Error.Message +
                      " at " + LastRun.Error.Loc.str();
    return Failure;
  }

  // Debugging phase: assertions, then the test database, then the user.
  OracleChain Chain;
  Chain.append(&Assertions);
  Chain.append(&TestOracleImpl);
  Chain.append(&UserOracle);

  AlgorithmicDebugger Debugger(*LastTree, Chain, Opts.Debugger);
  if (const analysis::SDG *G = sdg())
    Debugger.setSDG(G);
  if (Artifacts && Artifacts->Slices)
    Debugger.setSliceProvider(Artifacts->Slices);
  BugReport Report;
  {
    obs::Span Span("debug", "debug");
    Report = Debugger.run();
    LastStats = Debugger.stats();
    Span.arg("found", Report.Found);
    if (Report.Found)
      Span.arg("unit", Report.UnitName);
    Span.arg("judgements", LastStats.Judgements);
    Span.arg("memo_hits", LastStats.MemoHits);
    Span.arg("nodes_pruned", LastStats.NodesPruned);
  }

  // Route the session's interaction accounting — the paper's figure of
  // merit — into the unified registry. The SessionStats struct remains the
  // per-run API; these counters are the cross-session totals.
  Metrics->counter("debug.sessions").add();
  Metrics->counter("debug.queries.total").add(LastStats.Judgements);
  Metrics->counter("debug.queries.unanswered").add(LastStats.Unanswered);
  for (const auto &[Source, N] : LastStats.AnswersBySource)
    Metrics->counter("debug.queries." + Source).add(N);
  Metrics->counter("debug.memo.hits").add(LastStats.MemoHits);
  Metrics->counter("debug.slicing.activations")
      .add(LastStats.SlicingActivations);
  Metrics->counter("debug.slicing.nodes_pruned").add(LastStats.NodesPruned);

  if (obs::Log::global().enabledFor(obs::LogLevel::Info))
    obs::logInfo("core", Report.Found ? "bug localized" : "no bug localized",
                 {{"unit", Report.UnitName, /*Quote=*/true},
                  {"judgements", std::to_string(LastStats.Judgements),
                   /*Quote=*/false},
                  {"memo_hits", std::to_string(LastStats.MemoHits),
                   /*Quote=*/false},
                  {"nodes_pruned", std::to_string(LastStats.NodesPruned),
                   /*Quote=*/false}});
  return Report;
}
