//===- GADT.cpp - Generalized Algorithmic Debugging and Testing -----------===//

#include "core/GADT.h"

#include "trace/ExecTreeBuilder.h"

using namespace gadt;
using namespace gadt::core;
using namespace gadt::interp;
using namespace gadt::pascal;

GADTSession::GADTSession(const Program &Subject, GADTOptions Opts,
                         DiagnosticsEngine &Diags)
    : Opts(Opts) {
  if (Opts.Transform) {
    transform::TransformResult R = transform::transformProgram(Subject, Diags);
    if (!R.Transformed)
      return;
    TransformedStorage = std::move(R.Transformed);
    TransformInfo = std::move(R.Stats);
    Prepared = TransformedStorage.get();
  } else {
    Prepared = &Subject;
  }
  if (Opts.Debugger.Slicing == SliceMode::Static)
    Sdg = std::make_unique<analysis::SDG>(*Prepared);
}

GADTSession::~GADTSession() = default;

void GADTSession::addTestDatabase(
    std::shared_ptr<const tgen::TestSpec> Spec,
    std::shared_ptr<const tgen::TestReportDB> DB) {
  TestOracleImpl.addDatabase(std::move(Spec), std::move(DB));
}

BugReport GADTSession::debug(Oracle &UserOracle, std::vector<int64_t> Input) {
  BugReport Failure;
  if (!valid()) {
    Failure.Message = "session preparation failed";
    return Failure;
  }

  // Tracing phase.
  InterpOptions IOpts;
  IOpts.TraceLoops = Opts.TraceLoops;
  IOpts.TraceIterations = Opts.TraceIterations;
  IOpts.TrackDeps = Opts.Debugger.Slicing == SliceMode::Dynamic;
  LastTree = trace::buildExecTree(*Prepared, IOpts, std::move(Input),
                                  &LastRun);
  if (!LastRun.Ok) {
    Failure.Message = "subject program failed: " + LastRun.Error.Message +
                      " at " + LastRun.Error.Loc.str();
    return Failure;
  }

  // Debugging phase: assertions, then the test database, then the user.
  OracleChain Chain;
  Chain.append(&Assertions);
  Chain.append(&TestOracleImpl);
  Chain.append(&UserOracle);

  AlgorithmicDebugger Debugger(*LastTree, Chain, Opts.Debugger);
  if (Sdg)
    Debugger.setSDG(Sdg.get());
  BugReport Report = Debugger.run();
  LastStats = Debugger.stats();
  return Report;
}
