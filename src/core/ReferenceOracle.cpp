//===- ReferenceOracle.cpp - Oracle backed by an intended program ---------===//

#include "core/ReferenceOracle.h"

#include "interp/Interpreter.h"

#include <set>

using namespace gadt;
using namespace gadt::core;
using namespace gadt::interp;
using namespace gadt::pascal;
using namespace gadt::trace;

namespace {

const RoutineDecl *findByName(const RoutineDecl *Root,
                              const std::string &Name) {
  if (Root->getName() == Name)
    return Root;
  for (const auto &N : Root->getNested())
    if (const RoutineDecl *Found = findByName(N.get(), Name))
      return Found;
  return nullptr;
}

} // namespace

Judgement IntendedProgramOracle::judge(const ExecNode &N) {
  if (N.getKind() != UnitKind::Call || !N.getRoutine())
    return Judgement::dontKnow();
  const RoutineDecl *Ref = findByName(Intended.getMain(), N.getName());
  if (!Ref)
    return Judgement::dontKnow();

  // Assemble arguments by matching the node's input bindings to parameter
  // names; everything else becomes a global preset.
  std::set<std::string> ParamNames;
  std::vector<Value> Args;
  for (const auto &P : Ref->getParams()) {
    ParamNames.insert(P->getName());
    const Binding *In = N.findInput(P->getName());
    Args.push_back(In ? In->V : Value());
  }
  std::vector<Binding> Presets;
  for (const Binding &In : N.getInputs())
    if (!ParamNames.count(In.Name))
      Presets.push_back(In);

  Interpreter I(Intended);
  CallOutcome Out = I.callRoutine(N.getName(), std::move(Args), Presets);
  if (!Out.Ok)
    return Judgement::dontKnow();
  ++Queries;

  // Compare the traced outputs against the intended ones; the first
  // mismatching binding is reported as the wrong output variable — the
  // paper's "no, error on first output variable".
  for (const Binding &Traced : N.getOutputs()) {
    if (Traced.Name == "<output>") {
      if (Traced.V.isStr() && Traced.V.asStr() != Out.Output)
        return Judgement::incorrect(Source, Traced.Name);
      continue;
    }
    for (const Binding &RefOut : Out.Outputs)
      if (RefOut.Name == Traced.Name) {
        if (!RefOut.V.equals(Traced.V))
          return Judgement::incorrect(Source, Traced.Name);
        break;
      }
  }
  return Judgement::correct(Source);
}
