//===- AssertionOracle.cpp - Assertion-based oracle -----------------------===//

#include "core/AssertionOracle.h"

#include "tgen/ConstEval.h"
#include "tgen/SpecParser.h"

using namespace gadt;
using namespace gadt::core;
using namespace gadt::trace;

struct AssertionOracle::Entry {
  pascal::ExprPtr Expr;
  Strength S;
  std::string Text;
};

bool AssertionOracle::addAssertion(const std::string &UnitName,
                                   const std::string &ExprText, Strength S,
                                   DiagnosticsEngine &Diags) {
  pascal::ExprPtr E = tgen::parseClassifierExpr(ExprText, Diags);
  if (!E)
    return false;
  auto Ent = std::make_shared<Entry>();
  Ent->Expr = std::move(E);
  Ent->S = S;
  Ent->Text = ExprText;
  ByUnit[UnitName].push_back(std::move(Ent));
  ++Count;
  return true;
}

Judgement AssertionOracle::judge(const ExecNode &N) {
  auto It = ByUnit.find(N.getName());
  if (It == ByUnit.end())
    return Judgement::dontKnow();

  // Environment: inputs by name (also under in_<name>), then outputs by
  // name (shadowing inputs of the same name, e.g. var parameters).
  tgen::ValueEnv Env;
  for (const interp::Binding &B : N.getInputs()) {
    Env[B.Name] = B.V;
    Env["in_" + B.Name.str()] = B.V;
  }
  for (const interp::Binding &B : N.getOutputs())
    Env[B.Name] = B.V;

  for (const auto &Ent : It->second) {
    auto Holds = tgen::evalPredicate(Ent->Expr.get(), Env);
    if (!Holds)
      continue; // undefined over these bindings: no conclusion
    if (Ent->S == Strength::Specification)
      return *Holds ? Judgement::correct("assertion")
                    : Judgement::incorrect("assertion");
    if (!*Holds)
      return Judgement::incorrect("assertion");
  }
  return Judgement::dontKnow();
}
