//===- Oracle.cpp - Oracles for algorithmic debugging ---------------------===//

#include "core/Oracle.h"

using namespace gadt;
using namespace gadt::core;
using namespace gadt::trace;

Oracle::~Oracle() = default;

Judgement LambdaOracle::judge(const ExecNode &N) {
  Judgement J = F(N);
  if (J.A != Answer::DontKnow && J.Source.empty())
    J.Source = Source;
  return J;
}

Judgement ScriptedOracle::judge(const ExecNode &N) {
  auto It = Script.find(N.getName());
  if (It == Script.end())
    return Judgement::dontKnow();
  size_t &Pos = Cursor[N.getName()];
  const std::vector<Judgement> &Entries = It->second;
  Judgement J = Entries[std::min(Pos, Entries.size() - 1)];
  ++Pos;
  return J;
}

Judgement OracleChain::judge(const ExecNode &N) {
  for (Oracle *O : Oracles) {
    Judgement J = O->judge(N);
    if (J.A != Answer::DontKnow) {
      ++Counts[J.Source.empty() ? "unknown" : J.Source];
      return J;
    }
  }
  return Judgement::dontKnow();
}

unsigned OracleChain::totalAnswers() const {
  unsigned Total = 0;
  for (const auto &[Source, Count] : Counts)
    Total += Count;
  return Total;
}
