//===- TestOracle.cpp - Test-database-backed oracle -----------------------===//

#include "core/TestOracle.h"

using namespace gadt;
using namespace gadt::core;
using namespace gadt::tgen;
using namespace gadt::trace;

void TestDatabaseOracle::addDatabase(std::shared_ptr<const TestSpec> Spec,
                                     std::shared_ptr<const TestReportDB> DB) {
  std::string Name = Spec->TestName;
  ByRoutine[Name] = {std::move(Spec), std::move(DB)};
}

Judgement TestDatabaseOracle::judge(const ExecNode &N) {
  if (!TrustTests || N.getKind() != interp::UnitKind::Call)
    return Judgement::dontKnow();
  auto It = ByRoutine.find(N.getName());
  if (It == ByRoutine.end())
    return Judgement::dontKnow();
  ++Lookups;

  std::optional<TestFrame> Frame =
      classifyInputs(*It->second.Spec, N.getInputs());
  if (!Frame)
    return Judgement::dontKnow(); // no automatic selector function applies
  ++Matched;

  switch (It->second.DB->verdict(Frame->encode())) {
  case Verdict::Pass:
    // A good test report for this frame: skip the procedure.
    return Judgement::correct("test-db");
  case Verdict::Fail:
  case Verdict::Untested:
    // The paper: "the debugging must go on inside the procedure".
    return Judgement::dontKnow();
  }
  return Judgement::dontKnow();
}
