//===- Debugger.h - The algorithmic debugger --------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bug-localization search over the execution tree (paper Sections 3,
/// 5.3, 7): traverse the tree asking the oracle about unit executions until
/// a unit is found whose own behaviour is wrong while all the units it
/// invoked behaved correctly — the bug is then inside that unit's body.
///
/// When an answer pinpoints one incorrect output variable, the slicing
/// subsystem prunes the execution tree to the units that can affect that
/// variable (statically via the system dependence graph, or dynamically via
/// the dependences gathered while tracing), and the search continues on the
/// pruned tree ("a smaller and smaller set of procedures").
///
/// Three search strategies are provided: the paper's top-down traversal,
/// Shapiro's divide-and-query, and an exhaustive bottom-up baseline.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_CORE_DEBUGGER_H
#define GADT_CORE_DEBUGGER_H

#include "analysis/SDG.h"
#include "core/Oracle.h"
#include "trace/ExecTree.h"
#include "support/NodeSet.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

namespace gadt {

namespace slicing {
class StaticSlice;
} // namespace slicing

namespace core {

/// Supplies the static slice for (routine, output-variable) criteria. The
/// batch runtime installs a provider backed by a shared cross-session memo
/// (keyed on interned symbol ids); without one the debugger computes each
/// slice itself. A provider may return null to fall back to local
/// computation.
using SliceProvider = std::function<std::shared_ptr<const slicing::StaticSlice>(
    const pascal::RoutineDecl *, support::Symbol)>;

/// How the execution tree is searched.
enum class SearchStrategy : uint8_t {
  TopDown,         ///< the paper's left-to-right descent
  TopDownHeaviest, ///< descend into larger subtrees first
  DivideAndQuery,  ///< Shapiro's weight-halving strategy
  BottomUp,        ///< exhaustive postorder baseline
};

/// How error indications on specific outputs are exploited.
enum class SliceMode : uint8_t { None, Static, Dynamic };

struct DebuggerOptions {
  SearchStrategy Strategy = SearchStrategy::TopDown;
  SliceMode Slicing = SliceMode::Static;
  /// The user invoked the debugger after observing a symptom, so the root
  /// is known to misbehave and is not queried (paper Section 3).
  bool AssumeRootIncorrect = true;
  /// Remember answers: two executions of the same unit with the same
  /// inputs and outputs behave identically, so they are asked only once
  /// (Shapiro: the debugger "acquires knowledge about the expected
  /// behavior ... and uses this knowledge to localize errors").
  bool MemoizeJudgements = true;
};

/// Where the search ended.
struct BugReport {
  bool Found = false;
  const trace::ExecNode *Node = nullptr;
  std::string UnitName;
  SourceLoc Loc;
  std::string Message;
  /// The output variable flagged as wrong when the buggy unit was judged
  /// (empty when the answer was a plain "no").
  std::string WrongOutput;
  /// Statements of the buggy unit's own body that can affect the wrong
  /// output (intersection of the static slice with the unit body) — the
  /// places to inspect first. Empty without an SDG or wrong-output report.
  std::vector<const pascal::Stmt *> CandidateStmts;
};

/// One exchange of the debugging dialogue, in the order it happened.
struct DialogueEntry {
  std::string Query;       ///< node signature, paper notation
  Answer A = Answer::DontKnow;
  std::string WrongOutput; ///< set when the answer singled out an output
  std::string Source;      ///< "user", "assertion", "test-db", ...
  bool FromMemo = false;   ///< answered from an earlier identical query

  /// Renders the exchange in the paper's Section 8 style:
  /// "computs(In y: 3, ...)? no, error on output r1".
  std::string str() const;
};

/// Interaction accounting — the paper's figure of merit.
struct SessionStats {
  /// Total judgements requested from the oracle (by any source).
  unsigned Judgements = 0;
  /// Judgements per answering source ("user", "assertion", "test-db").
  std::map<std::string, unsigned> AnswersBySource;
  /// Queries nobody could answer (treated as "correct", conservatively).
  unsigned Unanswered = 0;
  /// Queries answered from the memo of earlier identical queries.
  unsigned MemoHits = 0;
  unsigned SlicingActivations = 0;
  /// Execution-tree nodes removed from the search by slicing.
  unsigned NodesPruned = 0;
  /// The full dialogue, in order (memo hits included, marked as such).
  std::vector<DialogueEntry> Dialogue;

  /// Renders the whole session as the paper prints it.
  std::string transcript() const;

  unsigned userQueries() const {
    auto It = AnswersBySource.find("user");
    return It == AnswersBySource.end() ? 0 : It->second;
  }
};

/// One debugging search over one execution tree.
class AlgorithmicDebugger {
public:
  /// \p Tree and \p UserOracle must outlive the debugger.
  AlgorithmicDebugger(trace::ExecTree &Tree, Oracle &O,
                      DebuggerOptions Opts = DebuggerOptions());

  /// Supplies the dependence graph required by SliceMode::Static (the graph
  /// must describe the program the tree was traced from).
  void setSDG(const analysis::SDG *G) { Sdg = G; }

  /// Installs a shared slice memo; slices it returns must come from the
  /// same SDG supplied via setSDG.
  void setSliceProvider(SliceProvider P) { Slices = std::move(P); }

  /// Runs the search to completion.
  BugReport run();

  const SessionStats &stats() const { return Stats; }

  /// The ids still searchable after all slicing prunes (for inspection).
  const support::NodeSet &activeIds() const { return Active; }

private:
  Judgement ask(const trace::ExecNode &N);
  /// The static slice for (R, Output): from the provider when installed,
  /// computed locally otherwise. Null without an SDG.
  std::shared_ptr<const slicing::StaticSlice>
  staticSliceFor(const pascal::RoutineDecl *R,
                 const std::string &Output) const;
  void applySliceIfPossible(const trace::ExecNode &N,
                            const std::string &WrongOutput);
  unsigned activeSubtreeSize(const trace::ExecNode *N) const;
  BugReport bugAt(const trace::ExecNode *N) const;

  BugReport runTopDown(const trace::ExecNode *Root, bool HeaviestFirst);
  BugReport runDivideAndQuery(const trace::ExecNode *Root);
  BugReport runBottomUp(const trace::ExecNode *Root);

  trace::ExecTree &Tree;
  Oracle &O;
  DebuggerOptions Opts;
  const analysis::SDG *Sdg = nullptr;
  SliceProvider Slices;
  support::NodeSet Active;
  /// Judgement memo. Two unit executions get one verdict when their
  /// dialogue signatures coincide; instead of keying on the rendered
  /// string, entries are hashed over the interned unit name, iteration
  /// index and binding names/values, and verified structurally against a
  /// representative node — no string keys, no tree rebalancing.
  struct MemoEntry {
    const trace::ExecNode *Rep;
    Judgement J;
  };
  std::unordered_map<uint64_t, std::vector<MemoEntry>> Memo;
  /// Wrong-output variable recorded per judged-incorrect node.
  std::map<const trace::ExecNode *, std::string> WrongOutputOf;
  SessionStats Stats;
};

} // namespace core
} // namespace gadt

#endif // GADT_CORE_DEBUGGER_H
