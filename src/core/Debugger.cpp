//===- Debugger.cpp - The algorithmic debugger ----------------------------===//

#include "core/Debugger.h"

#include "obs/Trace.h"
#include "slicing/DynamicSlicer.h"
#include "slicing/StaticSlicer.h"
#include "slicing/TreePruner.h"

#include <algorithm>

using namespace gadt;
using namespace gadt::core;
using namespace gadt::trace;

std::string DialogueEntry::str() const {
  std::string Out = Query + "? ";
  switch (A) {
  case Answer::Correct:
    Out += "yes";
    break;
  case Answer::Incorrect:
    Out += "no";
    if (!WrongOutput.empty())
      Out += ", error on output " + WrongOutput;
    break;
  case Answer::DontKnow:
    Out += "(no answer)";
    break;
  }
  if (FromMemo)
    Out += "  [remembered]";
  else if (!Source.empty() && Source != "user")
    Out += "  [answered by " + Source + "]";
  return Out;
}

std::string SessionStats::transcript() const {
  std::string Out;
  for (const DialogueEntry &E : Dialogue) {
    Out += E.str();
    Out += '\n';
  }
  return Out;
}

AlgorithmicDebugger::AlgorithmicDebugger(ExecTree &Tree, Oracle &O,
                                         DebuggerOptions Opts)
    : Tree(Tree), O(O), Opts(Opts), Active(Tree.maxNodeId() + 1) {
  Active.insertRange(1, Tree.maxNodeId() + 1);
}

/// One telemetry event per oracle exchange: who answered, what the verdict
/// was, and whether the memo short-circuited the oracle.
static void emitJudgementEvent(const trace::ExecNode &N, const Judgement &J,
                               bool FromMemo) {
  if (!obs::enabled())
    return;
  const char *Verdict = J.A == Answer::Correct     ? "correct"
                        : J.A == Answer::Incorrect ? "incorrect"
                                                   : "dont_know";
  std::vector<obs::TraceArg> Args;
  Args.push_back({"unit", N.getName(), /*Quote=*/true});
  Args.push_back({"source",
                  FromMemo ? std::string("memo")
                           : (J.Source.empty() ? std::string("unknown")
                                               : J.Source),
                  /*Quote=*/true});
  Args.push_back({"verdict", Verdict, /*Quote=*/true});
  if (!J.WrongOutput.empty())
    Args.push_back({"wrong_output", J.WrongOutput, /*Quote=*/true});
  obs::Tracer::global().instant("judgement", "debug", std::move(Args));
}

namespace {

uint64_t hashMix(uint64_t H, uint64_t V) {
  H ^= V;
  H *= 1099511628211ull; // FNV-1a step over 64-bit lanes
  return H;
}

/// True when the unit is a function whose last output is its result binding
/// — the signature renders that binding as "=value" rather than "Out ...".
bool hasResultBinding(const ExecNode &N) {
  return N.getRoutine() && N.getRoutine()->isFunction() &&
         !N.getOutputs().empty() &&
         N.getOutputs().back().Name == N.getRoutine()->getName();
}

uint64_t hashValueRender(uint64_t H, const interp::Value &V) {
  using K = interp::Value::Kind;
  H = hashMix(H, static_cast<uint64_t>(V.kind()));
  switch (V.kind()) {
  case K::Unset:
    break;
  case K::Int:
    H = hashMix(H, static_cast<uint64_t>(V.asInt()));
    break;
  case K::Bool:
    H = hashMix(H, V.asBool() ? 1 : 2);
    break;
  case K::Str:
    for (unsigned char C : V.asStr())
      H = hashMix(H, C);
    break;
  case K::Array:
    // Bounds are deliberately excluded: Value::str() renders elements only,
    // and the memo must hit exactly when the rendered signatures coincide.
    for (int64_t E : V.asArray().Elems)
      H = hashMix(H, static_cast<uint64_t>(E));
    break;
  }
  return H;
}

/// Equality of the *rendered* text of two values without rendering it:
/// Value::str() is injective within each kind and distinguishes kinds
/// (quotes, brackets, true/false), except that array bounds do not appear.
bool valueRenderEqual(const interp::Value &A, const interp::Value &B) {
  using K = interp::Value::Kind;
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case K::Unset:
    return true;
  case K::Int:
    return A.asInt() == B.asInt();
  case K::Bool:
    return A.asBool() == B.asBool();
  case K::Str:
    return A.asStr() == B.asStr();
  case K::Array:
    return A.asArray().Elems == B.asArray().Elems;
  }
  return false;
}

bool bindingsRenderEqual(const std::vector<interp::Binding> &A,
                         const std::vector<interp::Binding> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].Name != B[I].Name || !valueRenderEqual(A[I].V, B[I].V))
      return false;
  return true;
}

/// The iteration tag rendered into the signature: the 1-based index for
/// Iteration units, absent (0) otherwise.
uint64_t iterationTag(const ExecNode &N) {
  return N.getKind() == interp::UnitKind::Iteration ? N.getIterIndex() + 1
                                                    : 0;
}

uint64_t judgementKeyHash(const ExecNode &N) {
  uint64_t H = 1469598103934665603ull;
  H = hashMix(H, N.getNameSymbol().id());
  H = hashMix(H, iterationTag(N));
  H = hashMix(H, hasResultBinding(N) ? 1 : 0);
  for (const interp::Binding &B : N.getInputs()) {
    H = hashMix(H, B.Name.id());
    H = hashValueRender(H, B.V);
  }
  H = hashMix(H, 0x9e3779b97f4a7c15ull); // input/output boundary
  for (const interp::Binding &B : N.getOutputs()) {
    H = hashMix(H, B.Name.id());
    H = hashValueRender(H, B.V);
  }
  return H;
}

/// True iff \p A and \p B render identical dialogue signatures.
bool judgementKeyEqual(const ExecNode &A, const ExecNode &B) {
  return A.getNameSymbol() == B.getNameSymbol() &&
         iterationTag(A) == iterationTag(B) &&
         hasResultBinding(A) == hasResultBinding(B) &&
         bindingsRenderEqual(A.getInputs(), B.getInputs()) &&
         bindingsRenderEqual(A.getOutputs(), B.getOutputs());
}

} // namespace

Judgement AlgorithmicDebugger::ask(const ExecNode &N) {
  // Identical unit behaviour needs only one verdict: the memo key is the
  // interned unit name plus the binding names and values — equal exactly
  // when the rendered dialogue signatures are equal, without making the
  // signature string the key.
  std::string Key = N.signature();
  std::vector<MemoEntry> *Bucket = nullptr;
  if (Opts.MemoizeJudgements) {
    Bucket = &Memo[judgementKeyHash(N)];
    for (const MemoEntry &E : *Bucket) {
      if (!judgementKeyEqual(*E.Rep, N))
        continue;
      ++Stats.MemoHits;
      Stats.Dialogue.push_back(
          {Key, E.J.A, E.J.WrongOutput, E.J.Source, /*FromMemo=*/true});
      emitJudgementEvent(N, E.J, /*FromMemo=*/true);
      return E.J;
    }
  }
  ++Stats.Judgements;
  Judgement J = O.judge(N);
  if (J.A == Answer::DontKnow)
    ++Stats.Unanswered;
  else
    ++Stats.AnswersBySource[J.Source.empty() ? "unknown" : J.Source];
  Stats.Dialogue.push_back(
      {Key, J.A, J.WrongOutput, J.Source, /*FromMemo=*/false});
  emitJudgementEvent(N, J, /*FromMemo=*/false);
  if (J.A == Answer::Incorrect && !J.WrongOutput.empty())
    WrongOutputOf[&N] = J.WrongOutput;
  if (Bucket && J.A != Answer::DontKnow)
    Bucket->push_back({&N, J});
  return J;
}

unsigned
AlgorithmicDebugger::activeSubtreeSize(const ExecNode *N) const {
  // Chain-closed active set + contiguous subtree interval: the reachable
  // active weight is a masked popcount, not a traversal.
  if (!Active.contains(N->getId()))
    return 0;
  return static_cast<unsigned>(
      Active.countRange(N->getId(), N->subtreeEnd()));
}

std::shared_ptr<const slicing::StaticSlice>
AlgorithmicDebugger::staticSliceFor(const pascal::RoutineDecl *R,
                                    const std::string &Output) const {
  if (!Sdg)
    return nullptr;
  if (Slices)
    if (std::shared_ptr<const slicing::StaticSlice> S = Slices(R, Output))
      return S;
  return std::make_shared<const slicing::StaticSlice>(
      slicing::sliceOnRoutineOutput(*Sdg, R, Output));
}

void AlgorithmicDebugger::applySliceIfPossible(
    const ExecNode &N, const std::string &WrongOutput) {
  support::NodeSet Kept;
  switch (Opts.Slicing) {
  case SliceMode::None:
    return;
  case SliceMode::Static: {
    if (!Sdg || !N.getRoutine())
      return;
    std::shared_ptr<const slicing::StaticSlice> Slice =
        staticSliceFor(N.getRoutine(), WrongOutput);
    if (!Slice || Slice->size() == 0)
      return; // no formal-out vertex for this output
    Kept = slicing::pruneByStaticSlice(&N, *Slice);
    break;
  }
  case SliceMode::Dynamic: {
    if (!N.findOutput(WrongOutput))
      return;
    Kept = slicing::dynamicSlice(&N, WrongOutput);
    break;
  }
  }

  unsigned Before = activeSubtreeSize(&N);
  // Restrict the active set within N's subtree to the kept ids; nodes
  // outside N's subtree are unaffected (the search is inside N now anyway).
  Active.intersectRangeWith(Kept, N.getId(), N.subtreeEnd());
  Active.insert(N.getId()); // the sliced node itself stays suspect
  unsigned After = activeSubtreeSize(&N);
  ++Stats.SlicingActivations;
  Stats.NodesPruned += Before - After;
}

BugReport AlgorithmicDebugger::bugAt(const ExecNode *N) const {
  BugReport R;
  R.Found = true;
  R.Node = N;
  R.UnitName = N->getName();
  const char *Kind = "procedure";
  if (N->getRoutine()) {
    R.Loc = N->getRoutine()->getLoc();
    Kind = N->getRoutine()->isFunction() ? "function" : "procedure";
  } else if (N->getLoopStmt()) {
    R.Loc = N->getLoopStmt()->getLoc();
    Kind = "loop";
  }
  R.Message = "an error is localized inside the body of " +
              std::string(Kind) + " " + N->getName();
  auto It = WrongOutputOf.find(N);
  if (It != WrongOutputOf.end())
    R.WrongOutput = It->second;

  // Narrow further: the statements of the unit's own body that can affect
  // the wrong output (or any output when none was singled out).
  if (Sdg && N->getRoutine()) {
    const pascal::RoutineDecl *Routine = N->getRoutine();
    std::set<const pascal::Stmt *> InSlice;
    auto Collect = [&](const std::string &Output) {
      std::shared_ptr<const slicing::StaticSlice> Slice =
          staticSliceFor(Routine, Output);
      if (Slice)
        InSlice.insert(Slice->stmts().begin(), Slice->stmts().end());
    };
    if (!R.WrongOutput.empty())
      Collect(R.WrongOutput);
    else
      for (const interp::Binding &Out : N->getOutputs())
        Collect(Out.Name);
    if (!InSlice.empty() && Routine->getBody())
      pascal::forEachStmt(
          const_cast<pascal::CompoundStmt *>(Routine->getBody()),
          [&](pascal::Stmt *S) {
            if (InSlice.count(S))
              R.CandidateStmts.push_back(S);
          });
  }
  return R;
}

BugReport AlgorithmicDebugger::run() {
  ExecNode *Root = Tree.getRoot();
  if (!Root) {
    BugReport R;
    R.Message = "empty execution tree";
    return R;
  }
  if (!Opts.AssumeRootIncorrect) {
    Judgement J = ask(*Root);
    if (J.A != Answer::Incorrect) {
      BugReport R;
      R.Message = "no incorrect behaviour observed at the root";
      return R;
    }
    if (!J.WrongOutput.empty())
      applySliceIfPossible(*Root, J.WrongOutput);
  }
  switch (Opts.Strategy) {
  case SearchStrategy::TopDown:
    return runTopDown(Root, /*HeaviestFirst=*/false);
  case SearchStrategy::TopDownHeaviest:
    return runTopDown(Root, /*HeaviestFirst=*/true);
  case SearchStrategy::DivideAndQuery:
    return runDivideAndQuery(Root);
  case SearchStrategy::BottomUp:
    return runBottomUp(Root);
  }
  return BugReport();
}

BugReport AlgorithmicDebugger::runTopDown(const ExecNode *Root,
                                          bool HeaviestFirst) {
  const ExecNode *Suspect = Root;
  for (;;) {
    std::vector<const ExecNode *> Order;
    for (const ExecNode *C : Suspect->getChildren())
      if (Active.contains(C->getId()))
        Order.push_back(C);
    if (HeaviestFirst)
      std::stable_sort(Order.begin(), Order.end(),
                       [this](const ExecNode *A, const ExecNode *B) {
                         return activeSubtreeSize(A) > activeSubtreeSize(B);
                       });

    const ExecNode *Next = nullptr;
    for (const ExecNode *C : Order) {
      Judgement J = ask(*C);
      if (J.A != Answer::Incorrect)
        continue; // correct, or unanswerable: search elsewhere
      if (!J.WrongOutput.empty())
        applySliceIfPossible(*C, J.WrongOutput);
      Next = C;
      break;
    }
    if (!Next)
      return bugAt(Suspect);
    Suspect = Next;
  }
}

BugReport AlgorithmicDebugger::runDivideAndQuery(const ExecNode *Root) {
  const ExecNode *Suspect = Root;
  for (;;) {
    // Gather the active proper descendants of the suspect.
    std::vector<const ExecNode *> Candidates;
    std::vector<const ExecNode *> Stack;
    for (const ExecNode *C : Suspect->getChildren())
      Stack.push_back(C);
    while (!Stack.empty()) {
      const ExecNode *N = Stack.back();
      Stack.pop_back();
      if (!Active.contains(N->getId()))
        continue;
      Candidates.push_back(N);
      for (const ExecNode *C : N->getChildren())
        Stack.push_back(C);
    }
    if (Candidates.empty())
      return bugAt(Suspect);

    // Shapiro's heuristic: query the node whose subtree weight is closest
    // to half the suspect's weight.
    unsigned Total = static_cast<unsigned>(Candidates.size());
    const ExecNode *Pick = nullptr;
    long BestDist = -1;
    for (const ExecNode *N : Candidates) {
      long W = activeSubtreeSize(N);
      long Dist = std::abs(2 * W - static_cast<long>(Total));
      if (!Pick || Dist < BestDist) {
        Pick = N;
        BestDist = Dist;
      }
    }

    Judgement J = ask(*Pick);
    if (J.A == Answer::Incorrect) {
      if (!J.WrongOutput.empty())
        applySliceIfPossible(*Pick, J.WrongOutput);
      Suspect = Pick;
      continue;
    }
    // Correct (or unanswerable): discard the whole subtree.
    Active.eraseRange(Pick->getId(), Pick->subtreeEnd());
  }
}

BugReport AlgorithmicDebugger::runBottomUp(const ExecNode *Root) {
  // Exhaustive postorder baseline: children are judged before parents, so
  // the first incorrect node has all-correct children and is the bug.
  // Iterative with an explicit frame stack — recursion depth would equal
  // tree depth.
  const ExecNode *Found = nullptr;
  struct Frame {
    const ExecNode *N;
    const ExecNode *NextChild;
  };
  std::vector<Frame> St;
  if (Active.contains(Root->getId()))
    St.push_back({Root, Root->firstChild()});
  while (!St.empty() && !Found) {
    Frame &F = St.back();
    if (F.NextChild) {
      const ExecNode *C = F.NextChild;
      F.NextChild = C->nextSibling();
      if (Active.contains(C->getId()))
        St.push_back({C, C->firstChild()});
      continue;
    }
    const ExecNode *N = F.N;
    St.pop_back();
    if (N == Root)
      break; // the root is assumed incorrect, not queried
    Judgement J = ask(*N);
    if (J.A == Answer::Incorrect)
      Found = N;
  }
  if (Found)
    return bugAt(Found);
  return bugAt(Root);
}
