//===- Debugger.cpp - The algorithmic debugger ----------------------------===//

#include "core/Debugger.h"

#include "obs/Trace.h"
#include "slicing/DynamicSlicer.h"
#include "slicing/StaticSlicer.h"
#include "slicing/TreePruner.h"

#include <algorithm>

using namespace gadt;
using namespace gadt::core;
using namespace gadt::trace;

std::string DialogueEntry::str() const {
  std::string Out = Query + "? ";
  switch (A) {
  case Answer::Correct:
    Out += "yes";
    break;
  case Answer::Incorrect:
    Out += "no";
    if (!WrongOutput.empty())
      Out += ", error on output " + WrongOutput;
    break;
  case Answer::DontKnow:
    Out += "(no answer)";
    break;
  }
  if (FromMemo)
    Out += "  [remembered]";
  else if (!Source.empty() && Source != "user")
    Out += "  [answered by " + Source + "]";
  return Out;
}

std::string SessionStats::transcript() const {
  std::string Out;
  for (const DialogueEntry &E : Dialogue) {
    Out += E.str();
    Out += '\n';
  }
  return Out;
}

AlgorithmicDebugger::AlgorithmicDebugger(ExecTree &Tree, Oracle &O,
                                         DebuggerOptions Opts)
    : Tree(Tree), O(O), Opts(Opts) {
  Tree.forEachNode([this](ExecNode *N) { Active.insert(N->getId()); });
}

/// One telemetry event per oracle exchange: who answered, what the verdict
/// was, and whether the memo short-circuited the oracle.
static void emitJudgementEvent(const trace::ExecNode &N, const Judgement &J,
                               bool FromMemo) {
  if (!obs::enabled())
    return;
  const char *Verdict = J.A == Answer::Correct     ? "correct"
                        : J.A == Answer::Incorrect ? "incorrect"
                                                   : "dont_know";
  std::vector<obs::TraceArg> Args;
  Args.push_back({"unit", N.getName(), /*Quote=*/true});
  Args.push_back({"source",
                  FromMemo ? std::string("memo")
                           : (J.Source.empty() ? std::string("unknown")
                                               : J.Source),
                  /*Quote=*/true});
  Args.push_back({"verdict", Verdict, /*Quote=*/true});
  if (!J.WrongOutput.empty())
    Args.push_back({"wrong_output", J.WrongOutput, /*Quote=*/true});
  obs::Tracer::global().instant("judgement", "debug", std::move(Args));
}

Judgement AlgorithmicDebugger::ask(const ExecNode &N) {
  // Identical unit behaviour needs only one verdict: key the memo by the
  // full dialogue signature (name, inputs, outputs).
  std::string Key = N.signature();
  if (Opts.MemoizeJudgements) {
    auto It = Memo.find(Key);
    if (It != Memo.end()) {
      ++Stats.MemoHits;
      Stats.Dialogue.push_back({Key, It->second.A, It->second.WrongOutput,
                                It->second.Source, /*FromMemo=*/true});
      emitJudgementEvent(N, It->second, /*FromMemo=*/true);
      return It->second;
    }
  }
  ++Stats.Judgements;
  Judgement J = O.judge(N);
  if (J.A == Answer::DontKnow)
    ++Stats.Unanswered;
  else
    ++Stats.AnswersBySource[J.Source.empty() ? "unknown" : J.Source];
  Stats.Dialogue.push_back(
      {Key, J.A, J.WrongOutput, J.Source, /*FromMemo=*/false});
  emitJudgementEvent(N, J, /*FromMemo=*/false);
  if (J.A == Answer::Incorrect && !J.WrongOutput.empty())
    WrongOutputOf[&N] = J.WrongOutput;
  if (Opts.MemoizeJudgements && J.A != Answer::DontKnow)
    Memo.emplace(std::move(Key), J);
  return J;
}

unsigned
AlgorithmicDebugger::activeSubtreeSize(const ExecNode *N) const {
  if (!Active.count(N->getId()))
    return 0;
  unsigned Count = 1;
  for (const auto &C : N->getChildren())
    Count += activeSubtreeSize(C.get());
  return Count;
}

std::shared_ptr<const slicing::StaticSlice>
AlgorithmicDebugger::staticSliceFor(const pascal::RoutineDecl *R,
                                    const std::string &Output) const {
  if (!Sdg)
    return nullptr;
  if (Slices)
    if (std::shared_ptr<const slicing::StaticSlice> S = Slices(R, Output))
      return S;
  return std::make_shared<const slicing::StaticSlice>(
      slicing::sliceOnRoutineOutput(*Sdg, R, Output));
}

void AlgorithmicDebugger::applySliceIfPossible(
    const ExecNode &N, const std::string &WrongOutput) {
  std::set<uint32_t> Kept;
  switch (Opts.Slicing) {
  case SliceMode::None:
    return;
  case SliceMode::Static: {
    if (!Sdg || !N.getRoutine())
      return;
    std::shared_ptr<const slicing::StaticSlice> Slice =
        staticSliceFor(N.getRoutine(), WrongOutput);
    if (!Slice || Slice->size() == 0)
      return; // no formal-out vertex for this output
    Kept = slicing::pruneByStaticSlice(&N, *Slice);
    break;
  }
  case SliceMode::Dynamic: {
    if (!N.findOutput(WrongOutput))
      return;
    Kept = slicing::dynamicSlice(&N, WrongOutput);
    break;
  }
  }

  unsigned Before = activeSubtreeSize(&N);
  // Restrict the active set within N's subtree to the kept ids; nodes
  // outside N's subtree are unaffected (the search is inside N now anyway).
  std::vector<const ExecNode *> Stack = {&N};
  while (!Stack.empty()) {
    const ExecNode *Cur = Stack.back();
    Stack.pop_back();
    if (!Kept.count(Cur->getId()))
      Active.erase(Cur->getId());
    for (const auto &C : Cur->getChildren())
      Stack.push_back(C.get());
  }
  Active.insert(N.getId()); // the sliced node itself stays suspect
  unsigned After = activeSubtreeSize(&N);
  ++Stats.SlicingActivations;
  Stats.NodesPruned += Before - After;
}

BugReport AlgorithmicDebugger::bugAt(const ExecNode *N) const {
  BugReport R;
  R.Found = true;
  R.Node = N;
  R.UnitName = N->getName();
  const char *Kind = "procedure";
  if (N->getRoutine()) {
    R.Loc = N->getRoutine()->getLoc();
    Kind = N->getRoutine()->isFunction() ? "function" : "procedure";
  } else if (N->getLoopStmt()) {
    R.Loc = N->getLoopStmt()->getLoc();
    Kind = "loop";
  }
  R.Message = "an error is localized inside the body of " +
              std::string(Kind) + " " + N->getName();
  auto It = WrongOutputOf.find(N);
  if (It != WrongOutputOf.end())
    R.WrongOutput = It->second;

  // Narrow further: the statements of the unit's own body that can affect
  // the wrong output (or any output when none was singled out).
  if (Sdg && N->getRoutine()) {
    const pascal::RoutineDecl *Routine = N->getRoutine();
    std::set<const pascal::Stmt *> InSlice;
    auto Collect = [&](const std::string &Output) {
      std::shared_ptr<const slicing::StaticSlice> Slice =
          staticSliceFor(Routine, Output);
      if (Slice)
        InSlice.insert(Slice->stmts().begin(), Slice->stmts().end());
    };
    if (!R.WrongOutput.empty())
      Collect(R.WrongOutput);
    else
      for (const interp::Binding &Out : N->getOutputs())
        Collect(Out.Name);
    if (!InSlice.empty() && Routine->getBody())
      pascal::forEachStmt(
          const_cast<pascal::CompoundStmt *>(Routine->getBody()),
          [&](pascal::Stmt *S) {
            if (InSlice.count(S))
              R.CandidateStmts.push_back(S);
          });
  }
  return R;
}

BugReport AlgorithmicDebugger::run() {
  ExecNode *Root = Tree.getRoot();
  if (!Root) {
    BugReport R;
    R.Message = "empty execution tree";
    return R;
  }
  if (!Opts.AssumeRootIncorrect) {
    Judgement J = ask(*Root);
    if (J.A != Answer::Incorrect) {
      BugReport R;
      R.Message = "no incorrect behaviour observed at the root";
      return R;
    }
    if (!J.WrongOutput.empty())
      applySliceIfPossible(*Root, J.WrongOutput);
  }
  switch (Opts.Strategy) {
  case SearchStrategy::TopDown:
    return runTopDown(Root, /*HeaviestFirst=*/false);
  case SearchStrategy::TopDownHeaviest:
    return runTopDown(Root, /*HeaviestFirst=*/true);
  case SearchStrategy::DivideAndQuery:
    return runDivideAndQuery(Root);
  case SearchStrategy::BottomUp:
    return runBottomUp(Root);
  }
  return BugReport();
}

BugReport AlgorithmicDebugger::runTopDown(const ExecNode *Root,
                                          bool HeaviestFirst) {
  const ExecNode *Suspect = Root;
  for (;;) {
    std::vector<const ExecNode *> Order;
    for (const auto &C : Suspect->getChildren())
      if (Active.count(C->getId()))
        Order.push_back(C.get());
    if (HeaviestFirst)
      std::stable_sort(Order.begin(), Order.end(),
                       [this](const ExecNode *A, const ExecNode *B) {
                         return activeSubtreeSize(A) > activeSubtreeSize(B);
                       });

    const ExecNode *Next = nullptr;
    for (const ExecNode *C : Order) {
      Judgement J = ask(*C);
      if (J.A != Answer::Incorrect)
        continue; // correct, or unanswerable: search elsewhere
      if (!J.WrongOutput.empty())
        applySliceIfPossible(*C, J.WrongOutput);
      Next = C;
      break;
    }
    if (!Next)
      return bugAt(Suspect);
    Suspect = Next;
  }
}

BugReport AlgorithmicDebugger::runDivideAndQuery(const ExecNode *Root) {
  const ExecNode *Suspect = Root;
  for (;;) {
    // Gather the active proper descendants of the suspect.
    std::vector<const ExecNode *> Candidates;
    std::vector<const ExecNode *> Stack;
    for (const auto &C : Suspect->getChildren())
      Stack.push_back(C.get());
    while (!Stack.empty()) {
      const ExecNode *N = Stack.back();
      Stack.pop_back();
      if (!Active.count(N->getId()))
        continue;
      Candidates.push_back(N);
      for (const auto &C : N->getChildren())
        Stack.push_back(C.get());
    }
    if (Candidates.empty())
      return bugAt(Suspect);

    // Shapiro's heuristic: query the node whose subtree weight is closest
    // to half the suspect's weight.
    unsigned Total = static_cast<unsigned>(Candidates.size());
    const ExecNode *Pick = nullptr;
    long BestDist = -1;
    for (const ExecNode *N : Candidates) {
      long W = activeSubtreeSize(N);
      long Dist = std::abs(2 * W - static_cast<long>(Total));
      if (!Pick || Dist < BestDist) {
        Pick = N;
        BestDist = Dist;
      }
    }

    Judgement J = ask(*Pick);
    if (J.A == Answer::Incorrect) {
      if (!J.WrongOutput.empty())
        applySliceIfPossible(*Pick, J.WrongOutput);
      Suspect = Pick;
      continue;
    }
    // Correct (or unanswerable): discard the whole subtree.
    std::vector<const ExecNode *> Prune = {Pick};
    while (!Prune.empty()) {
      const ExecNode *N = Prune.back();
      Prune.pop_back();
      Active.erase(N->getId());
      for (const auto &C : N->getChildren())
        Prune.push_back(C.get());
    }
  }
}

BugReport AlgorithmicDebugger::runBottomUp(const ExecNode *Root) {
  // Exhaustive postorder baseline: children are judged before parents, so
  // the first incorrect node has all-correct children and is the bug.
  const ExecNode *Found = nullptr;
  std::function<bool(const ExecNode *)> Visit =
      [&](const ExecNode *N) -> bool {
    if (!Active.count(N->getId()))
      return false;
    for (const auto &C : N->getChildren())
      if (Visit(C.get()))
        return true;
    if (N == Root)
      return false; // the root is assumed incorrect, not queried
    Judgement J = ask(*N);
    if (J.A == Answer::Incorrect) {
      Found = N;
      return true;
    }
    return false;
  };
  if (Visit(Root) && Found)
    return bugAt(Found);
  return bugAt(Root);
}
