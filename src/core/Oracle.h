//===- Oracle.h - Oracles for algorithmic debugging -------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracle abstraction of algorithmic debugging (paper Section 3): the
/// debugger asks whether a unit execution matches the *intended* program
/// behaviour. Before involving the user, GADT consults "two existing
/// sources of information": previously supplied assertions and the test
/// database (Section 5.3.1) — modeled here as an ordered OracleChain.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_CORE_ORACLE_H
#define GADT_CORE_ORACLE_H

#include "trace/ExecTree.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace gadt {
namespace core {

/// The possible answers about one unit execution.
enum class Answer : uint8_t { Correct, Incorrect, DontKnow };

/// A judgement, with provenance and (optionally, paper Section 5.3.3) the
/// specific output variable the answerer flagged as wrong — the trigger for
/// slicing.
struct Judgement {
  Answer A = Answer::DontKnow;
  /// Name of the erroneous output binding; empty when unspecified.
  std::string WrongOutput;
  /// Which oracle produced the answer ("user", "assertion", "test-db", ...).
  std::string Source;

  static Judgement correct(std::string Source) {
    return {Answer::Correct, "", std::move(Source)};
  }
  static Judgement incorrect(std::string Source, std::string WrongOutput = "") {
    return {Answer::Incorrect, std::move(WrongOutput), std::move(Source)};
  }
  static Judgement dontKnow() { return {Answer::DontKnow, "", ""}; }
};

/// Judges unit executions.
class Oracle {
public:
  virtual ~Oracle();
  virtual Judgement judge(const trace::ExecNode &N) = 0;
};

/// Wraps a callable.
class LambdaOracle : public Oracle {
public:
  using Fn = std::function<Judgement(const trace::ExecNode &)>;
  explicit LambdaOracle(Fn F, std::string Source = "lambda")
      : F(std::move(F)), Source(std::move(Source)) {}

  Judgement judge(const trace::ExecNode &N) override;

private:
  Fn F;
  std::string Source;
};

/// Replays scripted answers keyed by unit name — used to reproduce the
/// paper's Section 8 dialogue deterministically. Repeated queries about the
/// same unit consume successive entries (the last entry repeats).
class ScriptedOracle : public Oracle {
public:
  void add(const std::string &UnitName, Judgement J) {
    Script[UnitName].push_back(std::move(J));
  }
  /// Shorthand: yes / no / no-with-wrong-output.
  void answerYes(const std::string &UnitName) {
    add(UnitName, Judgement::correct("user"));
  }
  void answerNo(const std::string &UnitName, std::string WrongOutput = "") {
    add(UnitName, Judgement::incorrect("user", std::move(WrongOutput)));
  }

  Judgement judge(const trace::ExecNode &N) override;

private:
  std::map<std::string, std::vector<Judgement>> Script;
  std::map<std::string, size_t> Cursor;
};

/// Asks a list of oracles in order; the first non-DontKnow answer wins.
/// Counts answers per source for the interaction statistics the paper's
/// evaluation is about.
class OracleChain : public Oracle {
public:
  /// Oracles are not owned; order is consultation order.
  void append(Oracle *O) { Oracles.push_back(O); }

  Judgement judge(const trace::ExecNode &N) override;

  const std::map<std::string, unsigned> &answersBySource() const {
    return Counts;
  }
  unsigned totalAnswers() const;

private:
  std::vector<Oracle *> Oracles;
  std::map<std::string, unsigned> Counts;
};

} // namespace core
} // namespace gadt

#endif // GADT_CORE_ORACLE_H
