//===- TestOracle.h - Test-database-backed oracle ---------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The test-case-lookup component (paper Section 5.3.2): for a queried
/// call, classify the concrete inputs into a test frame and look the frame
/// up in the report database. "In the case of a good test report the
/// debugger skips this procedure"; an absent or failing frame leaves the
/// query unanswered and debugging goes on inside the procedure.
///
/// Trusting a passing frame is exactly as reliable as the test suite
/// ("the reliability of testing is largely dependent on the tester");
/// setTrustTests(false) disables lookups so a session can be replayed
/// without them, as the paper prescribes when the combined method fails.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_CORE_TESTORACLE_H
#define GADT_CORE_TESTORACLE_H

#include "core/Oracle.h"
#include "tgen/Classifier.h"
#include "tgen/ReportDB.h"
#include "tgen/TestSpec.h"

#include <map>
#include <memory>

namespace gadt {
namespace core {

/// Oracle over one or more (specification, report database) pairs, keyed by
/// the routine under test.
class TestDatabaseOracle : public Oracle {
public:
  /// Registers a tested routine. \p Spec and \p DB are shared with the
  /// caller (the session may keep extending the database).
  void addDatabase(std::shared_ptr<const tgen::TestSpec> Spec,
                   std::shared_ptr<const tgen::TestReportDB> DB);

  void setTrustTests(bool Trust) { TrustTests = Trust; }

  Judgement judge(const trace::ExecNode &N) override;

  unsigned lookupsAttempted() const { return Lookups; }
  unsigned framesMatched() const { return Matched; }

private:
  struct Registered {
    std::shared_ptr<const tgen::TestSpec> Spec;
    std::shared_ptr<const tgen::TestReportDB> DB;
  };
  std::map<std::string, Registered> ByRoutine;
  bool TrustTests = true;
  unsigned Lookups = 0;
  unsigned Matched = 0;
};

} // namespace core
} // namespace gadt

#endif // GADT_CORE_TESTORACLE_H
