//===- InteractiveOracle.cpp - Stream-based user dialogue ------------------===//

#include "core/InteractiveOracle.h"

#include "support/StringUtils.h"

#include <istream>
#include <ostream>
#include <sstream>

using namespace gadt;
using namespace gadt::core;

Judgement InteractiveOracle::judge(const trace::ExecNode &N) {
  Out << N.signature() << "? ";
  Out.flush();
  std::string Line;
  if (!std::getline(In, Line))
    return Judgement::dontKnow();

  std::istringstream Words(toLower(Line));
  std::string First, Second;
  Words >> First >> Second;
  if (First == "y" || First == "yes")
    return Judgement::correct("user");
  if (First == "n" || First == "no")
    return Judgement::incorrect("user", Second);
  return Judgement::dontKnow();
}
