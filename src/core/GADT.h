//===- GADT.h - Generalized Algorithmic Debugging and Testing ---*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level GADT system (paper Figure 3): transformation phase,
/// tracing phase, and debugging phase with its three components — pure
/// algorithmic debugging, test-case lookup, and program slicing. This is
/// the public API a user of the library drives:
///
/// \code
///   DiagnosticsEngine Diags;
///   auto Prog = pascal::parseAndCheck(Source, Diags);
///   core::GADTSession Session(*Prog, {}, Diags);
///   Session.addTestDatabase(Spec, ReportDB);       // optional
///   Session.assertions().addAssertion(...);        // optional
///   core::IntendedProgramOracle User(*FixedProg);  // or InteractiveOracle
///   core::BugReport Bug = Session.debug(User, /*Input=*/{});
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef GADT_CORE_GADT_H
#define GADT_CORE_GADT_H

#include "analysis/SDG.h"
#include "core/AssertionOracle.h"
#include "core/Debugger.h"
#include "core/Oracle.h"
#include "core/TestOracle.h"
#include "interp/Interpreter.h"
#include "obs/Metrics.h"
#include "pascal/AST.h"
#include "tgen/ReportDB.h"
#include "transform/Transform.h"

#include <memory>

namespace gadt {
namespace core {

struct GADTOptions {
  /// Run the transformation phase first (paper Section 5.1). Programs that
  /// are already side-effect free pass through unchanged.
  bool Transform = true;
  /// Trace local loops (and optionally iterations) as debugging units.
  bool TraceLoops = false;
  bool TraceIterations = false;
  DebuggerOptions Debugger;
};

/// Prebuilt, shareable session inputs. The batch runtime (src/runtime)
/// produces these from its cross-session caches so that repeated sessions
/// over the same subject skip the transformation, dependence-graph and
/// slicing work; a session constructed from artifacts rebuilds nothing.
/// Every member is immutable after construction and safe to share across
/// concurrently running sessions.
struct SessionArtifacts {
  /// Fingerprint of the parsed subject (support/Hashing.h hashProgram).
  uint64_t Fingerprint = 0;
  /// The parsed original. Pins the AST (and its TypeContext) that
  /// \c Prepared shares.
  std::shared_ptr<const pascal::Program> Subject;
  /// The program to trace and debug: the transformed clone, or \c Subject
  /// itself when transformation is off.
  std::shared_ptr<const pascal::Program> Prepared;
  transform::TransformStats TransformInfo;
  /// Dependence graph over \c Prepared; null unless static slicing was
  /// requested when the artifacts were prepared.
  std::shared_ptr<const analysis::SDG> Sdg;
  /// Shared static-slice memo over \c Sdg; may be null.
  SliceProvider Slices;
  /// Bytecode compiled from \c Prepared (src/bytecode); null when the
  /// program is unsupported by the bytecode tier or the artifacts were
  /// prepared without the shared code cache. Sessions hand this to the
  /// interpreter so repeated runs skip compilation.
  std::shared_ptr<const bytecode::CompiledProgram> Code;
};

/// One debugging session over one subject program. The session owns the
/// transformed program, the dependence graph, and the most recent execution
/// tree; it can be re-run on different inputs and with different oracles.
class GADTSession {
public:
  /// Prepares the session (transformation + dependence graph). On failure
  /// \c valid() is false and \p Diags explains why. \p Subject must outlive
  /// the session.
  GADTSession(const pascal::Program &Subject, GADTOptions Opts,
              DiagnosticsEngine &Diags);

  /// Prepares the session from shared artifacts: the transformed program,
  /// dependence graph and slice memo are injected instead of rebuilt.
  /// \p Artifacts must have been prepared with the same transformation and
  /// slicing settings as \p Opts requests.
  GADTSession(std::shared_ptr<const SessionArtifacts> Artifacts,
              GADTOptions Opts, DiagnosticsEngine &Diags);
  ~GADTSession();

  bool valid() const { return Prepared != nullptr; }

  /// The program actually being debugged (transformed when enabled).
  const pascal::Program &subject() const { return *Prepared; }
  const transform::TransformStats &transformStats() const {
    return TransformInfo;
  }

  /// Where this session's interaction accounting is aggregated (dotted
  /// `debug.*` counters) in addition to the per-run SessionStats struct.
  /// Defaults to the process-wide registry; the batch runtime points
  /// sessions at their RuntimeContext's registry.
  void setMetricsRegistry(obs::Registry *R) {
    Metrics = R ? R : &obs::Registry::global();
  }

  /// Registers a test database for the test-lookup component.
  void addTestDatabase(std::shared_ptr<const tgen::TestSpec> Spec,
                       std::shared_ptr<const tgen::TestReportDB> DB);
  /// The assertion store consulted before the test database and the user.
  AssertionOracle &assertions() { return Assertions; }

  /// Runs the full pipeline: trace the subject on \p Input, then search for
  /// the bug, consulting assertions, then the test database, then
  /// \p UserOracle. Returns an unsuccessful report (with Message) when
  /// execution of the subject failed outright.
  BugReport debug(Oracle &UserOracle, std::vector<int64_t> Input = {});

  /// Statistics of the most recent debug() run.
  const SessionStats &stats() const { return LastStats; }
  /// The execution tree of the most recent debug() run (null before any).
  const trace::ExecTree *tree() const { return LastTree.get(); }
  /// The outcome of the most recent traced execution.
  const interp::ExecResult &lastRun() const { return LastRun; }

private:
  /// The dependence graph in effect: owned or injected.
  const analysis::SDG *sdg() const;

  GADTOptions Opts;
  std::unique_ptr<pascal::Program> TransformedStorage;
  const pascal::Program *Prepared = nullptr;
  transform::TransformStats TransformInfo;
  std::unique_ptr<analysis::SDG> Sdg;
  /// Set when constructed from shared artifacts; keeps injected programs,
  /// graph and slice memo alive for the session's lifetime.
  std::shared_ptr<const SessionArtifacts> Artifacts;
  obs::Registry *Metrics = &obs::Registry::global();
  AssertionOracle Assertions;
  TestDatabaseOracle TestOracleImpl;
  std::unique_ptr<trace::ExecTree> LastTree;
  interp::ExecResult LastRun;
  SessionStats LastStats;
};

} // namespace core
} // namespace gadt

#endif // GADT_CORE_GADT_H
