//===- Type.h - Pascal types ------------------------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system of the Pascal subset: integer, boolean, fixed-bound
/// integer arrays, and a string type for write() arguments. Types are
/// interned by TypeContext, so pointer equality is type equality for
/// scalars; arrays compare structurally via Type::equals.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_PASCAL_TYPE_H
#define GADT_PASCAL_TYPE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gadt {
namespace pascal {

/// A Pascal type. Instances are owned by a TypeContext and immutable.
class Type {
public:
  enum class Kind : uint8_t { Integer, Boolean, Array, String };

  Kind getKind() const { return K; }
  bool isInteger() const { return K == Kind::Integer; }
  bool isBoolean() const { return K == Kind::Boolean; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }

  /// Array element type; null for non-arrays.
  const Type *getElementType() const { return Elem; }
  /// Inclusive array bounds (valid only for arrays).
  int64_t getLowerBound() const { return Lo; }
  int64_t getUpperBound() const { return Hi; }
  int64_t getArraySize() const { return Hi - Lo + 1; }

  /// Structural equality. Array bounds participate: `array[1..10]` differs
  /// from `array[1..5]`, but see \c isAssignableFrom for the lenient rule
  /// used in checking.
  bool equals(const Type *Other) const;

  /// Assignment compatibility: scalars must match exactly; arrays need only
  /// matching element types (bounds are enforced at run time, which lets the
  /// paper's `[1, 2]` array constructors flow into `intarray` parameters).
  bool isAssignableFrom(const Type *Other) const;

  /// Renders as Pascal source: "integer", "array[1..10] of integer", ...
  std::string str() const;

private:
  friend class TypeContext;
  explicit Type(Kind K) : K(K) {}
  Type(const Type *Elem, int64_t Lo, int64_t Hi)
      : K(Kind::Array), Elem(Elem), Lo(Lo), Hi(Hi) {}

  Kind K;
  const Type *Elem = nullptr;
  int64_t Lo = 0;
  int64_t Hi = 0;
};

/// Owns and interns Type instances for one program.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const Type *getIntegerType() const { return IntTy.get(); }
  const Type *getBooleanType() const { return BoolTy.get(); }
  const Type *getStringType() const { return StrTy.get(); }
  const Type *getArrayType(const Type *Elem, int64_t Lo, int64_t Hi);

private:
  std::unique_ptr<Type> IntTy;
  std::unique_ptr<Type> BoolTy;
  std::unique_ptr<Type> StrTy;
  std::vector<std::unique_ptr<Type>> ArrayTypes;
};

} // namespace pascal
} // namespace gadt

#endif // GADT_PASCAL_TYPE_H
