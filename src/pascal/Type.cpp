//===- Type.cpp - Pascal types --------------------------------------------===//

#include "pascal/Type.h"

#include <cassert>

using namespace gadt;
using namespace gadt::pascal;

bool Type::equals(const Type *Other) const {
  assert(Other && "comparing against a null type");
  if (this == Other)
    return true;
  if (K != Other->K)
    return false;
  if (K != Kind::Array)
    return true;
  return Lo == Other->Lo && Hi == Other->Hi && Elem->equals(Other->Elem);
}

bool Type::isAssignableFrom(const Type *Other) const {
  assert(Other && "checking assignability from a null type");
  if (K != Other->K)
    return false;
  if (K != Kind::Array)
    return true;
  return Elem->equals(Other->Elem);
}

std::string Type::str() const {
  switch (K) {
  case Kind::Integer:
    return "integer";
  case Kind::Boolean:
    return "boolean";
  case Kind::String:
    return "string";
  case Kind::Array:
    return "array[" + std::to_string(Lo) + ".." + std::to_string(Hi) +
           "] of " + Elem->str();
  }
  return "<invalid>";
}

TypeContext::TypeContext()
    : IntTy(new Type(Type::Kind::Integer)), BoolTy(new Type(Type::Kind::Boolean)),
      StrTy(new Type(Type::Kind::String)) {}

const Type *TypeContext::getArrayType(const Type *Elem, int64_t Lo,
                                      int64_t Hi) {
  assert(Elem && "array element type must be non-null");
  assert(Lo <= Hi && "array bounds must be non-empty");
  for (const auto &T : ArrayTypes)
    if (T->getElementType() == Elem && T->getLowerBound() == Lo &&
        T->getUpperBound() == Hi)
      return T.get();
  ArrayTypes.emplace_back(new Type(Elem, Lo, Hi));
  return ArrayTypes.back().get();
}
