//===- Sema.cpp - Pascal semantic analysis --------------------------------===//

#include "pascal/Sema.h"

#include "support/Casting.h"

#include <algorithm>
#include <unordered_set>

using namespace gadt;
using namespace gadt::pascal;

namespace {

/// Carries the state of one analysis run.
class SemaPass {
public:
  SemaPass(Program &P, DiagnosticsEngine &Diags) : P(P), Diags(Diags) {}

  bool run();

private:
  // Declaration checking.
  bool checkRoutineTree(RoutineDecl *R);
  bool checkDuplicateNames(RoutineDecl *R);
  bool checkLabels(RoutineDecl *R);

  // Name lookup (walks the static scope chain from \p From outward).
  VarDecl *lookupVar(RoutineDecl *From, const std::string &Name);
  RoutineDecl *lookupRoutine(RoutineDecl *From, const std::string &Name);
  /// Finds the nearest enclosing routine (including \p From) that declares
  /// label \p Label; null when none does.
  RoutineDecl *lookupLabel(RoutineDecl *From, int Label);

  // Statement / expression checking within routine \p R.
  void checkBody(RoutineDecl *R);
  void checkStmt(RoutineDecl *R, Stmt *S);
  const Type *checkExpr(RoutineDecl *R, Expr *E);
  bool checkLValue(RoutineDecl *R, Expr *E, const char *What);
  void checkCallArgs(RoutineDecl *R, RoutineDecl *Callee,
                     std::vector<ExprPtr> &Args, SourceLoc Loc);

  void error(SourceLoc Loc, std::string Msg) {
    Diags.error(Loc, std::move(Msg));
  }

  const Type *intTy() { return P.types().getIntegerType(); }
  const Type *boolTy() { return P.types().getBooleanType(); }

  Program &P;
  DiagnosticsEngine &Diags;
  unsigned LoopCounter = 0;
};

bool SemaPass::run() {
  RoutineDecl *Main = P.getMain();
  if (!Main) {
    error(SourceLoc(), "program has no main routine");
    return false;
  }
  if (!checkRoutineTree(Main))
    return false;
  forEachRoutine(Main, [this](RoutineDecl *R) { checkBody(R); });
  return !Diags.hasErrors();
}

bool SemaPass::checkRoutineTree(RoutineDecl *R) {
  // Create the function-result pseudo-variable before any body is checked.
  if (R->isFunction() && !R->getResultVar()) {
    auto RV = std::make_unique<VarDecl>(R->getLoc(), R->getName(),
                                        R->getReturnType(),
                                        VarDecl::VarKind::Result);
    RV->setOwner(R);
    R->setResultVar(std::move(RV));
  }
  for (const auto &V : R->getParams())
    V->setOwner(R);
  for (const auto &V : R->getLocals())
    V->setOwner(R);

  if (!checkDuplicateNames(R))
    return false;
  if (!checkLabels(R))
    return false;
  for (const auto &N : R->getNested()) {
    N->setParent(R);
    if (!checkRoutineTree(N.get()))
      return false;
  }
  return true;
}

bool SemaPass::checkDuplicateNames(RoutineDecl *R) {
  std::unordered_set<std::string> Seen;
  auto Check = [&](const std::string &Name, SourceLoc Loc) {
    if (!Seen.insert(Name).second) {
      error(Loc, "redeclaration of '" + Name + "' in " + R->getName());
      return false;
    }
    return true;
  };
  for (const auto &V : R->getParams())
    if (!Check(V->getName(), V->getLoc()))
      return false;
  for (const auto &V : R->getLocals())
    if (!Check(V->getName(), V->getLoc()))
      return false;
  for (const auto &N : R->getNested())
    if (!Check(N->getName(), N->getLoc()))
      return false;
  return true;
}

bool SemaPass::checkLabels(RoutineDecl *R) {
  // Each declared label must be defined exactly once in this routine's own
  // body (not in a nested routine's body).
  for (int Label : R->getLabels()) {
    unsigned Definitions = 0;
    if (R->getBody())
      forEachStmt(R->getBody(), [&](Stmt *S) {
        if (auto *LS = dyn_cast<LabeledStmt>(S))
          if (LS->getLabel() == Label)
            ++Definitions;
      });
    if (Definitions == 0) {
      error(R->getLoc(), "label " + std::to_string(Label) + " declared in " +
                             R->getName() + " but never defined");
      return false;
    }
    if (Definitions > 1) {
      error(R->getLoc(), "label " + std::to_string(Label) +
                             " defined more than once in " + R->getName());
      return false;
    }
  }
  // Every labeled statement must use a label declared here.
  bool Ok = true;
  if (R->getBody())
    forEachStmt(R->getBody(), [&](Stmt *S) {
      auto *LS = dyn_cast<LabeledStmt>(S);
      if (!LS)
        return;
      if (std::find(R->getLabels().begin(), R->getLabels().end(),
                    LS->getLabel()) == R->getLabels().end()) {
        error(LS->getLoc(), "label " + std::to_string(LS->getLabel()) +
                                " not declared in " + R->getName());
        Ok = false;
      }
    });
  return Ok;
}

VarDecl *SemaPass::lookupVar(RoutineDecl *From, const std::string &Name) {
  for (RoutineDecl *R = From; R; R = R->getParent())
    if (VarDecl *V = R->findLocal(Name))
      return V;
  return nullptr;
}

RoutineDecl *SemaPass::lookupRoutine(RoutineDecl *From,
                                     const std::string &Name) {
  for (RoutineDecl *R = From; R; R = R->getParent()) {
    if (R->getName() == Name)
      return R; // direct recursion / enclosing routine
    if (RoutineDecl *N = R->findNested(Name))
      return N;
  }
  return nullptr;
}

RoutineDecl *SemaPass::lookupLabel(RoutineDecl *From, int Label) {
  for (RoutineDecl *R = From; R; R = R->getParent())
    if (std::find(R->getLabels().begin(), R->getLabels().end(), Label) !=
        R->getLabels().end())
      return R;
  return nullptr;
}

void SemaPass::checkBody(RoutineDecl *R) {
  if (!R->getBody())
    return;
  checkStmt(R, R->getBody());
}

void SemaPass::checkStmt(RoutineDecl *R, Stmt *S) {
  switch (S->getKind()) {
  case Stmt::Kind::Compound:
    for (const StmtPtr &Sub : cast<CompoundStmt>(S)->getBody())
      checkStmt(R, Sub.get());
    return;

  case Stmt::Kind::Assign: {
    auto *AS = cast<AssignStmt>(S);
    if (!checkLValue(R, AS->getTarget(), "assignment target"))
      return;
    const Type *TargetTy = AS->getTarget()->getType();
    const Type *ValueTy = checkExpr(R, AS->getValue());
    if (TargetTy && ValueTy && !TargetTy->isAssignableFrom(ValueTy))
      error(AS->getLoc(), "cannot assign " + ValueTy->str() + " to " +
                              TargetTy->str());
    return;
  }

  case Stmt::Kind::If: {
    auto *IS = cast<IfStmt>(S);
    const Type *CondTy = checkExpr(R, IS->getCond());
    if (CondTy && !CondTy->isBoolean())
      error(IS->getCond()->getLoc(), "if condition must be boolean, got " +
                                         CondTy->str());
    checkStmt(R, IS->getThen());
    if (IS->getElse())
      checkStmt(R, IS->getElse());
    return;
  }

  case Stmt::Kind::While: {
    auto *WS = cast<WhileStmt>(S);
    const Type *CondTy = checkExpr(R, WS->getCond());
    if (CondTy && !CondTy->isBoolean())
      error(WS->getCond()->getLoc(), "while condition must be boolean, got " +
                                         CondTy->str());
    if (WS->getUnitName().empty())
      WS->setUnitName(R->getName() + ".while#" +
                      std::to_string(++LoopCounter));
    checkStmt(R, WS->getBody());
    return;
  }

  case Stmt::Kind::Repeat: {
    auto *RS = cast<RepeatStmt>(S);
    for (const StmtPtr &Sub : RS->getBody())
      checkStmt(R, Sub.get());
    const Type *CondTy = checkExpr(R, RS->getCond());
    if (CondTy && !CondTy->isBoolean())
      error(RS->getCond()->getLoc(),
            "until condition must be boolean, got " + CondTy->str());
    if (RS->getUnitName().empty())
      RS->setUnitName(R->getName() + ".repeat#" +
                      std::to_string(++LoopCounter));
    return;
  }

  case Stmt::Kind::For: {
    auto *FS = cast<ForStmt>(S);
    if (!checkLValue(R, FS->getLoopVar(), "for-loop variable"))
      return;
    const Type *VarTy = FS->getLoopVar()->getType();
    if (VarTy && !VarTy->isInteger())
      error(FS->getLoopVar()->getLoc(), "for-loop variable must be integer");
    const Type *FromTy = checkExpr(R, FS->getFrom());
    if (FromTy && !FromTy->isInteger())
      error(FS->getFrom()->getLoc(), "for-loop start value must be integer");
    const Type *ToTy = checkExpr(R, FS->getTo());
    if (ToTy && !ToTy->isInteger())
      error(FS->getTo()->getLoc(), "for-loop end value must be integer");
    if (FS->getUnitName().empty())
      FS->setUnitName(R->getName() + ".for#" + std::to_string(++LoopCounter));
    checkStmt(R, FS->getBody());
    return;
  }

  case Stmt::Kind::ProcCall: {
    auto *PC = cast<ProcCallStmt>(S);
    RoutineDecl *Callee = lookupRoutine(R, PC->getCalleeName());
    if (!Callee) {
      error(PC->getLoc(), "call to undeclared routine '" +
                              PC->getCalleeName() + "'");
      return;
    }
    PC->setCallee(Callee);
    checkCallArgs(R, Callee, PC->getArgs(), PC->getLoc());
    return;
  }

  case Stmt::Kind::Goto: {
    auto *GS = cast<GotoStmt>(S);
    RoutineDecl *Target = lookupLabel(R, GS->getLabel());
    if (!Target) {
      error(GS->getLoc(), "goto to undeclared label " +
                              std::to_string(GS->getLabel()));
      return;
    }
    GS->setTargetRoutine(Target);
    GS->setNonLocal(Target != R);
    return;
  }

  case Stmt::Kind::Labeled:
    checkStmt(R, cast<LabeledStmt>(S)->getSub());
    return;

  case Stmt::Kind::Read: {
    auto *RS = cast<ReadStmt>(S);
    for (const ExprPtr &T : RS->getTargets()) {
      if (!checkLValue(R, T.get(), "read target"))
        continue;
      const Type *Ty = T->getType();
      if (Ty && !Ty->isInteger())
        error(T->getLoc(), "read target must be integer, got " + Ty->str());
    }
    return;
  }

  case Stmt::Kind::Write: {
    auto *WS = cast<WriteStmt>(S);
    for (const ExprPtr &A : WS->getArgs()) {
      const Type *Ty = checkExpr(R, A.get());
      if (Ty && Ty->isArray())
        error(A->getLoc(), "cannot write an entire array");
    }
    return;
  }

  case Stmt::Kind::Empty:
    return;
  }
}

bool SemaPass::checkLValue(RoutineDecl *R, Expr *E, const char *What) {
  if (auto *VR = dyn_cast<VarRefExpr>(E)) {
    VarDecl *D = lookupVar(R, VR->getName());
    if (!D) {
      // A reference to the enclosing function's name denotes its result.
      for (RoutineDecl *Scope = R; Scope; Scope = Scope->getParent())
        if (Scope->isFunction() && Scope->getName() == VR->getName()) {
          D = Scope->getResultVar();
          break;
        }
    }
    if (!D) {
      error(VR->getLoc(),
            std::string("undeclared variable '") + VR->getName() + "'");
      return false;
    }
    VR->setDecl(D);
    VR->setType(D->getType());
    return true;
  }
  if (auto *IE = dyn_cast<IndexExpr>(E)) {
    if (!checkLValue(R, IE->getBase(), What))
      return false;
    const Type *BaseTy = IE->getBase()->getType();
    if (BaseTy && !BaseTy->isArray()) {
      error(IE->getLoc(), "indexed value is not an array");
      return false;
    }
    const Type *IdxTy = checkExpr(R, IE->getIndex());
    if (IdxTy && !IdxTy->isInteger())
      error(IE->getIndex()->getLoc(), "array index must be integer");
    if (BaseTy)
      IE->setType(BaseTy->getElementType());
    return true;
  }
  error(E->getLoc(), std::string(What) + " must be a variable or array element");
  return false;
}

void SemaPass::checkCallArgs(RoutineDecl *R, RoutineDecl *Callee,
                             std::vector<ExprPtr> &Args, SourceLoc Loc) {
  const auto &Params = Callee->getParams();
  if (Args.size() != Params.size()) {
    error(Loc, "call to " + Callee->getName() + " passes " +
                   std::to_string(Args.size()) + " arguments, expected " +
                   std::to_string(Params.size()));
    return;
  }
  for (size_t I = 0, N = Args.size(); I != N; ++I) {
    VarDecl *Param = Params[I].get();
    Expr *Arg = Args[I].get();
    const Type *ArgTy;
    if (Param->isReference()) {
      // var/out arguments must be designators.
      if (!isa<VarRefExpr>(Arg) && !isa<IndexExpr>(Arg)) {
        error(Arg->getLoc(), "argument for var parameter '" +
                                 Param->getName() + "' must be a variable");
        continue;
      }
      if (!checkLValue(R, Arg, "var argument"))
        continue;
      ArgTy = Arg->getType();
    } else {
      ArgTy = checkExpr(R, Arg);
    }
    if (ArgTy && !Param->getType()->isAssignableFrom(ArgTy))
      error(Arg->getLoc(), "argument " + std::to_string(I + 1) + " of " +
                               Callee->getName() + " has type " +
                               ArgTy->str() + ", expected " +
                               Param->getType()->str());
  }
}

const Type *SemaPass::checkExpr(RoutineDecl *R, Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLiteral:
    E->setType(intTy());
    return E->getType();
  case Expr::Kind::BoolLiteral:
    E->setType(boolTy());
    return E->getType();
  case Expr::Kind::StringLiteral:
    E->setType(P.types().getStringType());
    return E->getType();

  case Expr::Kind::ArrayLiteral: {
    auto *AL = cast<ArrayLiteralExpr>(E);
    for (const ExprPtr &Elem : AL->getElements()) {
      const Type *Ty = checkExpr(R, Elem.get());
      if (Ty && !Ty->isInteger())
        error(Elem->getLoc(), "array constructor elements must be integers");
    }
    E->setType(P.types().getArrayType(
        intTy(), 1, static_cast<int64_t>(AL->getElements().size())));
    return E->getType();
  }

  case Expr::Kind::VarRef:
  case Expr::Kind::Index:
    if (!checkLValue(R, E, "expression"))
      return nullptr;
    return E->getType();

  case Expr::Kind::Call: {
    auto *CE = cast<CallExpr>(E);
    RoutineDecl *Callee = lookupRoutine(R, CE->getCalleeName());
    if (!Callee) {
      error(CE->getLoc(), "call to undeclared routine '" +
                              CE->getCalleeName() + "'");
      return nullptr;
    }
    if (!Callee->isFunction()) {
      error(CE->getLoc(), "procedure '" + Callee->getName() +
                              "' cannot be called in an expression");
      return nullptr;
    }
    CE->setCallee(Callee);
    checkCallArgs(R, Callee, CE->getArgs(), CE->getLoc());
    CE->setType(Callee->getReturnType());
    return E->getType();
  }

  case Expr::Kind::Unary: {
    auto *UE = cast<UnaryExpr>(E);
    const Type *OpTy = checkExpr(R, UE->getOperand());
    if (!OpTy)
      return nullptr;
    if (UE->getOp() == UnaryOp::Neg) {
      if (!OpTy->isInteger()) {
        error(UE->getLoc(), "unary '-' requires an integer operand");
        return nullptr;
      }
      E->setType(intTy());
    } else {
      if (!OpTy->isBoolean()) {
        error(UE->getLoc(), "'not' requires a boolean operand");
        return nullptr;
      }
      E->setType(boolTy());
    }
    return E->getType();
  }

  case Expr::Kind::Binary: {
    auto *BE = cast<BinaryExpr>(E);
    const Type *L = checkExpr(R, BE->getLHS());
    const Type *Rt = checkExpr(R, BE->getRHS());
    if (!L || !Rt)
      return nullptr;
    switch (BE->getOp()) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      if (!L->isInteger() || !Rt->isInteger()) {
        error(BE->getLoc(), std::string("operator '") +
                                binaryOpSpelling(BE->getOp()) +
                                "' requires integer operands");
        return nullptr;
      }
      E->setType(intTy());
      return E->getType();
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      if (!(L->isInteger() && Rt->isInteger()) &&
          !(L->isBoolean() && Rt->isBoolean())) {
        error(BE->getLoc(), "'='/'<>' operands must both be integer or both "
                            "boolean");
        return nullptr;
      }
      E->setType(boolTy());
      return E->getType();
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      if (!L->isInteger() || !Rt->isInteger()) {
        error(BE->getLoc(), std::string("operator '") +
                                binaryOpSpelling(BE->getOp()) +
                                "' requires integer operands");
        return nullptr;
      }
      E->setType(boolTy());
      return E->getType();
    case BinaryOp::And:
    case BinaryOp::Or:
      if (!L->isBoolean() || !Rt->isBoolean()) {
        error(BE->getLoc(), std::string("operator '") +
                                binaryOpSpelling(BE->getOp()) +
                                "' requires boolean operands");
        return nullptr;
      }
      E->setType(boolTy());
      return E->getType();
    }
    return nullptr;
  }
  }
  return nullptr;
}

} // namespace

bool gadt::pascal::analyze(Program &P, DiagnosticsEngine &Diags) {
  SemaPass Pass(P, Diags);
  bool Ok = Pass.run();
  if (Ok) {
    assignNodeIds(P);
    assignStorageSlots(P);
  }
  return Ok;
}
