//===- Token.h - Pascal token definitions -----------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens for the Pascal subset used throughout the paper: programs, nested
/// procedures/functions, value/var/in/out parameters, labels and gotos,
/// structured statements, integer/boolean/array expressions.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_PASCAL_TOKEN_H
#define GADT_PASCAL_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace gadt {
namespace pascal {

enum class TokenKind : uint8_t {
  // Sentinels.
  Eof,
  Unknown,

  // Literals and identifiers.
  Identifier,
  IntLiteral,
  StringLiteral,

  // Keywords (Pascal keywords are case-insensitive).
  KwProgram,
  KwProcedure,
  KwFunction,
  KwVar,
  KwConst,
  KwType,
  KwLabel,
  KwBegin,
  KwEnd,
  KwIf,
  KwThen,
  KwElse,
  KwWhile,
  KwDo,
  KwRepeat,
  KwUntil,
  KwFor,
  KwTo,
  KwDownto,
  KwGoto,
  KwArray,
  KwOf,
  KwDiv,
  KwMod,
  KwAnd,
  KwOr,
  KwNot,
  KwTrue,
  KwFalse,
  KwIn,  // Parameter mode in transformed programs (paper Section 6).
  KwOut, // Parameter mode in transformed programs (paper Section 6).

  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  Dot,
  DotDot,
  Assign, // :=
  Plus,
  Minus,
  Star,
  Equal,
  NotEqual, // <>
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
};

/// Returns a human-readable spelling for diagnostics ("':='", "'begin'", ...).
const char *tokenKindName(TokenKind Kind);

/// A single lexed token. \c Text carries the identifier/literal spelling;
/// \c IntValue the decoded value of integer literals.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;
  int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
  bool isOneOf(TokenKind K1, TokenKind K2) const { return is(K1) || is(K2); }
  template <typename... Ts>
  bool isOneOf(TokenKind K1, TokenKind K2, Ts... Ks) const {
    return is(K1) || isOneOf(K2, Ks...);
  }
};

} // namespace pascal
} // namespace gadt

#endif // GADT_PASCAL_TOKEN_H
