//===- Lexer.cpp - Pascal lexer -------------------------------------------===//

#include "pascal/Lexer.h"

#include "support/StringUtils.h"

#include <cctype>
#include <unordered_map>

using namespace gadt;
using namespace gadt::pascal;

char Lexer::advance() {
  if (Pos >= Source.size())
    return '\0';
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    // (* ... *) comment.
    if (C == '(' && peek(1) == '*') {
      SourceLoc Loc = currentLoc();
      advance();
      advance();
      bool Closed = false;
      while (peek() != '\0') {
        if (peek() == '*' && peek(1) == ')') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Loc, "unterminated comment");
      continue;
    }
    // { ... } comment.
    if (C == '{') {
      SourceLoc Loc = currentLoc();
      advance();
      bool Closed = false;
      while (peek() != '\0') {
        if (advance() == '}') {
          Closed = true;
          break;
        }
      }
      if (!Closed)
        Diags.error(Loc, "unterminated comment");
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexIdentifierOrKeyword(SourceLoc Loc) {
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Spelling(Source.substr(Start, Pos - Start));
  std::string Lower = toLower(Spelling);

  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"program", TokenKind::KwProgram},
      {"procedure", TokenKind::KwProcedure},
      {"function", TokenKind::KwFunction},
      {"var", TokenKind::KwVar},
      {"const", TokenKind::KwConst},
      {"type", TokenKind::KwType},
      {"label", TokenKind::KwLabel},
      {"begin", TokenKind::KwBegin},
      {"end", TokenKind::KwEnd},
      {"if", TokenKind::KwIf},
      {"then", TokenKind::KwThen},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},
      {"repeat", TokenKind::KwRepeat},
      {"until", TokenKind::KwUntil},
      {"for", TokenKind::KwFor},
      {"to", TokenKind::KwTo},
      {"downto", TokenKind::KwDownto},
      {"goto", TokenKind::KwGoto},
      {"array", TokenKind::KwArray},
      {"of", TokenKind::KwOf},
      {"div", TokenKind::KwDiv},
      {"mod", TokenKind::KwMod},
      {"and", TokenKind::KwAnd},
      {"or", TokenKind::KwOr},
      {"not", TokenKind::KwNot},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"in", TokenKind::KwIn},
      {"out", TokenKind::KwOut},
  };

  auto It = Keywords.find(Lower);
  if (It != Keywords.end())
    return makeToken(It->second, Loc, std::move(Lower));
  // Identifiers are stored case-normalized; Pascal is case-insensitive.
  return makeToken(TokenKind::Identifier, Loc, std::move(Lower));
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Start = Pos;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  std::string Spelling(Source.substr(Start, Pos - Start));
  Token T = makeToken(TokenKind::IntLiteral, Loc, Spelling);
  T.IntValue = std::stoll(Spelling);
  return T;
}

Token Lexer::lexString(SourceLoc Loc) {
  // Pascal strings: 'text', with '' as an escaped quote.
  std::string Value;
  for (;;) {
    char C = peek();
    if (C == '\0' || C == '\n') {
      Diags.error(Loc, "unterminated string literal");
      break;
    }
    advance();
    if (C == '\'') {
      if (peek() == '\'') {
        advance();
        Value.push_back('\'');
        continue;
      }
      break;
    }
    Value.push_back(C);
  }
  return makeToken(TokenKind::StringLiteral, Loc, std::move(Value));
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Loc = currentLoc();
  char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::Eof, Loc);

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);

  advance();
  switch (C) {
  case '\'':
    return lexString(Loc);
  case '(':
    return makeToken(TokenKind::LParen, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Loc);
  case ';':
    return makeToken(TokenKind::Semicolon, Loc);
  case ':':
    return makeToken(match('=') ? TokenKind::Assign : TokenKind::Colon, Loc);
  case '.':
    return makeToken(match('.') ? TokenKind::DotDot : TokenKind::Dot, Loc);
  case '+':
    return makeToken(TokenKind::Plus, Loc);
  case '-':
    return makeToken(TokenKind::Minus, Loc);
  case '*':
    return makeToken(TokenKind::Star, Loc);
  case '=':
    return makeToken(TokenKind::Equal, Loc);
  case '<':
    if (match('>'))
      return makeToken(TokenKind::NotEqual, Loc);
    if (match('='))
      return makeToken(TokenKind::LessEqual, Loc);
    return makeToken(TokenKind::Less, Loc);
  case '>':
    return makeToken(match('=') ? TokenKind::GreaterEqual : TokenKind::Greater,
                     Loc);
  default:
    Diags.error(Loc, std::string("stray character '") + C + "' in input");
    return makeToken(TokenKind::Unknown, Loc, std::string(1, C));
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::Eof))
      return Tokens;
  }
}
