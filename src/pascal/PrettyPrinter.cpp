//===- PrettyPrinter.cpp - AST to Pascal source ---------------------------===//

#include "pascal/PrettyPrinter.h"

#include "support/Casting.h"

using namespace gadt;
using namespace gadt::pascal;

namespace {

class Printer {
public:
  std::string Out;

  void indent(unsigned Depth) { Out.append(Depth * 2, ' '); }

  void line(unsigned Depth, const std::string &Text) {
    indent(Depth);
    Out += Text;
    Out += '\n';
  }

  void printVarGroup(unsigned Depth,
                     const std::vector<std::unique_ptr<VarDecl>> &Vars) {
    if (Vars.empty())
      return;
    line(Depth, "var");
    for (const auto &V : Vars)
      line(Depth + 1, V->getName() + ": " + V->getType()->str() + ";");
  }

  void printParams(const RoutineDecl &R) {
    if (R.getParams().empty())
      return;
    Out += '(';
    for (size_t I = 0, N = R.getParams().size(); I != N; ++I) {
      const VarDecl &P = *R.getParams()[I];
      if (I != 0)
        Out += "; ";
      const char *Mode = paramModeSpelling(P.getMode());
      if (*Mode) {
        Out += Mode;
        Out += ' ';
      }
      Out += P.getName();
      Out += ": ";
      Out += P.getType()->str();
    }
    Out += ')';
  }

  void printLabels(unsigned Depth, const std::vector<int> &Labels) {
    if (Labels.empty())
      return;
    indent(Depth);
    Out += "label ";
    for (size_t I = 0, N = Labels.size(); I != N; ++I) {
      if (I != 0)
        Out += ", ";
      Out += std::to_string(Labels[I]);
    }
    Out += ";\n";
  }

  void printRoutine(const RoutineDecl &R, unsigned Depth) {
    indent(Depth);
    Out += R.isFunction() ? "function " : "procedure ";
    Out += R.getName();
    printParams(R);
    if (R.isFunction()) {
      Out += ": ";
      Out += R.getReturnType()->str();
    }
    Out += ";\n";
    printLabels(Depth, R.getLabels());
    printVarGroup(Depth, R.getLocals());
    for (const auto &N : R.getNested())
      printRoutine(*N, Depth + 1);
    printBlockBody(R, Depth);
    Out += ";\n";
  }

  /// Prints "begin ... end" of a routine (no trailing separator).
  void printBlockBody(const RoutineDecl &R, unsigned Depth) {
    line(Depth, "begin");
    if (const CompoundStmt *Body = R.getBody())
      for (const StmtPtr &S : Body->getBody())
        printStmt(*S, Depth + 1, /*Terminate=*/true);
    indent(Depth);
    Out += "end";
  }

  void printStmt(const Stmt &S, unsigned Depth, bool Terminate) {
    switch (S.getKind()) {
    case Stmt::Kind::Assign: {
      const auto &AS = cast<AssignStmt>(&S);
      indent(Depth);
      Out += AS->getTarget()->str() + " := " + AS->getValue()->str();
      break;
    }
    case Stmt::Kind::Compound: {
      const auto *CS = cast<CompoundStmt>(&S);
      line(Depth, "begin");
      for (const StmtPtr &Sub : CS->getBody())
        printStmt(*Sub, Depth + 1, true);
      indent(Depth);
      Out += "end";
      break;
    }
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(&S);
      indent(Depth);
      Out += "if " + IS->getCond()->str() + " then\n";
      printStmt(*IS->getThen(), Depth + 1, false);
      if (IS->getElse()) {
        line(Depth, "else");
        printStmt(*IS->getElse(), Depth + 1, false);
      }
      break;
    }
    case Stmt::Kind::While: {
      const auto *WS = cast<WhileStmt>(&S);
      indent(Depth);
      Out += "while " + WS->getCond()->str() + " do\n";
      printStmt(*WS->getBody(), Depth + 1, false);
      break;
    }
    case Stmt::Kind::Repeat: {
      const auto *RS = cast<RepeatStmt>(&S);
      line(Depth, "repeat");
      for (const StmtPtr &Sub : RS->getBody())
        printStmt(*Sub, Depth + 1, true);
      indent(Depth);
      Out += "until " + RS->getCond()->str();
      break;
    }
    case Stmt::Kind::For: {
      const auto *FS = cast<ForStmt>(&S);
      indent(Depth);
      Out += "for " + FS->getLoopVar()->str() + " := " +
             FS->getFrom()->str() + (FS->isDownward() ? " downto " : " to ") +
             FS->getTo()->str() + " do\n";
      printStmt(*FS->getBody(), Depth + 1, false);
      break;
    }
    case Stmt::Kind::ProcCall: {
      const auto *PC = cast<ProcCallStmt>(&S);
      indent(Depth);
      Out += PC->getCalleeName();
      if (!PC->getArgs().empty()) {
        Out += '(';
        for (size_t I = 0, N = PC->getArgs().size(); I != N; ++I) {
          if (I != 0)
            Out += ", ";
          Out += PC->getArgs()[I]->str();
        }
        Out += ')';
      }
      break;
    }
    case Stmt::Kind::Goto:
      indent(Depth);
      Out += "goto " + std::to_string(cast<GotoStmt>(&S)->getLabel());
      break;
    case Stmt::Kind::Labeled: {
      const auto *LS = cast<LabeledStmt>(&S);
      indent(Depth);
      Out += std::to_string(LS->getLabel()) + ":\n";
      printStmt(*LS->getSub(), Depth, false);
      break;
    }
    case Stmt::Kind::Read: {
      const auto *RS = cast<ReadStmt>(&S);
      indent(Depth);
      Out += "read(";
      for (size_t I = 0, N = RS->getTargets().size(); I != N; ++I) {
        if (I != 0)
          Out += ", ";
        Out += RS->getTargets()[I]->str();
      }
      Out += ')';
      break;
    }
    case Stmt::Kind::Write: {
      const auto *WS = cast<WriteStmt>(&S);
      indent(Depth);
      Out += WS->isWriteln() ? "writeln" : "write";
      if (!WS->getArgs().empty()) {
        Out += '(';
        for (size_t I = 0, N = WS->getArgs().size(); I != N; ++I) {
          if (I != 0)
            Out += ", ";
          Out += WS->getArgs()[I]->str();
        }
        Out += ')';
      }
      break;
    }
    case Stmt::Kind::Empty:
      indent(Depth);
      break;
    }
    // Exactly one terminator: strip the newline a nested block printer may
    // have emitted, then close the statement.
    if (Terminate) {
      if (!Out.empty() && Out.back() == '\n')
        Out.pop_back();
      Out += ";\n";
    } else if (Out.empty() || Out.back() != '\n') {
      Out += '\n';
    }
  }
};

} // namespace

std::string gadt::pascal::printProgram(const Program &P) {
  Printer Pr;
  const RoutineDecl &Main = *P.getMain();
  Pr.Out += "program " + Main.getName() + ";\n";
  if (!P.getTypeDefs().empty()) {
    Pr.line(0, "type");
    for (const TypeDef &TD : P.getTypeDefs())
      Pr.line(1, TD.Name + " = " + TD.Ty->str() + ";");
  }
  Pr.printLabels(0, Main.getLabels());
  Pr.printVarGroup(0, Main.getLocals());
  for (const auto &N : Main.getNested())
    Pr.printRoutine(*N, 0);
  Pr.printBlockBody(Main, 0);
  Pr.Out += ".\n";
  return std::move(Pr.Out);
}

std::string gadt::pascal::printRoutine(const RoutineDecl &R, unsigned Indent) {
  Printer Pr;
  Pr.printRoutine(R, Indent);
  return std::move(Pr.Out);
}

std::string gadt::pascal::printStmt(const Stmt &S, unsigned Indent) {
  Printer Pr;
  Pr.printStmt(S, Indent, /*Terminate=*/true);
  return std::move(Pr.Out);
}
