//===- Token.cpp - Pascal token definitions -------------------------------===//

#include "pascal/Token.h"

using namespace gadt;
using namespace gadt::pascal;

const char *gadt::pascal::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Unknown:
    return "unknown character";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwProgram:
    return "'program'";
  case TokenKind::KwProcedure:
    return "'procedure'";
  case TokenKind::KwFunction:
    return "'function'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwConst:
    return "'const'";
  case TokenKind::KwType:
    return "'type'";
  case TokenKind::KwLabel:
    return "'label'";
  case TokenKind::KwBegin:
    return "'begin'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwRepeat:
    return "'repeat'";
  case TokenKind::KwUntil:
    return "'until'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwTo:
    return "'to'";
  case TokenKind::KwDownto:
    return "'downto'";
  case TokenKind::KwGoto:
    return "'goto'";
  case TokenKind::KwArray:
    return "'array'";
  case TokenKind::KwOf:
    return "'of'";
  case TokenKind::KwDiv:
    return "'div'";
  case TokenKind::KwMod:
    return "'mod'";
  case TokenKind::KwAnd:
    return "'and'";
  case TokenKind::KwOr:
    return "'or'";
  case TokenKind::KwNot:
    return "'not'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwOut:
    return "'out'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::DotDot:
    return "'..'";
  case TokenKind::Assign:
    return "':='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::NotEqual:
    return "'<>'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  }
  return "token";
}
