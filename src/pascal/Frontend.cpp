//===- Frontend.cpp - Parse + analyze convenience -------------------------===//

#include "pascal/Frontend.h"

#include "pascal/Parser.h"
#include "pascal/Sema.h"

using namespace gadt;
using namespace gadt::pascal;

std::unique_ptr<Program> gadt::pascal::parseAndCheck(std::string_view Source,
                                                     DiagnosticsEngine &Diags) {
  Parser P(Source, Diags);
  std::unique_ptr<Program> Prog = P.parseProgram();
  if (!Prog)
    return nullptr;
  if (!analyze(*Prog, Diags))
    return nullptr;
  return Prog;
}
