//===- Frontend.cpp - Parse + analyze convenience -------------------------===//

#include "pascal/Frontend.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pascal/Parser.h"
#include "pascal/Sema.h"

using namespace gadt;
using namespace gadt::pascal;

std::unique_ptr<Program> gadt::pascal::parseAndCheck(std::string_view Source,
                                                     DiagnosticsEngine &Diags) {
  // Instrument references are stable for the registry's lifetime, so the
  // name lookup runs once, not per parse.
  static obs::Counter &Parses =
      obs::Registry::global().counter("frontend.parses");
  static obs::Counter &Errors =
      obs::Registry::global().counter("frontend.errors");
  Parses.add();
  std::unique_ptr<Program> Prog;
  {
    obs::Span S("parse", "frontend");
    S.arg("bytes", Source.size());
    Parser P(Source, Diags);
    Prog = P.parseProgram();
    S.arg("ok", Prog != nullptr);
  }
  if (!Prog) {
    Errors.add();
    return nullptr;
  }
  {
    obs::Span S("sema", "frontend");
    if (!analyze(*Prog, Diags)) {
      S.arg("ok", false);
      Errors.add();
      return nullptr;
    }
    S.arg("ok", true);
  }
  return Prog;
}
