//===- AST.h - Pascal abstract syntax tree ----------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax tree for the Pascal subset. The design follows the
/// LLVM style: kind-enum RTTI with classof/isa/cast, unique_ptr ownership of
/// children, raw non-owning cross references filled in by Sema.
///
/// A whole program is modeled as a tree of RoutineDecls: the program itself
/// is the root routine (its "locals" are the global variables, its "nested"
/// routines are the top-level procedures), which makes every analysis and
/// transformation uniform over units — exactly the granularity at which the
/// paper performs algorithmic debugging.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_PASCAL_AST_H
#define GADT_PASCAL_AST_H

#include "pascal/Type.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace gadt {
namespace pascal {

class Expr;
class Stmt;
class VarDecl;
class RoutineDecl;

using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all expressions. Sema annotates each expression with its
/// type; the parser leaves \c Ty null.
class Expr {
public:
  enum class Kind : uint8_t {
    IntLiteral,
    BoolLiteral,
    StringLiteral,
    ArrayLiteral,
    VarRef,
    Index,
    Call,
    Unary,
    Binary,
  };

  virtual ~Expr() = default;

  Kind getKind() const { return K; }
  SourceLoc getLoc() const { return Loc; }
  const Type *getType() const { return Ty; }
  void setType(const Type *T) { Ty = T; }

  /// Stable id within a numbered program (see assignNodeIds); 0 = unassigned.
  unsigned getId() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }

  /// Deep copy; cross references (resolved decls) are copied verbatim and
  /// remain valid only while the referenced declarations are alive.
  virtual ExprPtr clone() const = 0;

  /// Renders the expression as Pascal source.
  std::string str() const;

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
  const Type *Ty = nullptr;
  unsigned Id = 0;
};

/// An integer literal such as `42`.
class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(SourceLoc Loc, int64_t Value)
      : Expr(Kind::IntLiteral, Loc), Value(Value) {}

  int64_t getValue() const { return Value; }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLiteral; }

private:
  int64_t Value;
};

/// `true` or `false`.
class BoolLiteralExpr : public Expr {
public:
  BoolLiteralExpr(SourceLoc Loc, bool Value)
      : Expr(Kind::BoolLiteral, Loc), Value(Value) {}

  bool getValue() const { return Value; }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::BoolLiteral;
  }

private:
  bool Value;
};

/// A string literal; permitted only as a write() argument.
class StringLiteralExpr : public Expr {
public:
  StringLiteralExpr(SourceLoc Loc, std::string Value)
      : Expr(Kind::StringLiteral, Loc), Value(std::move(Value)) {}

  const std::string &getValue() const { return Value; }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::StringLiteral;
  }

private:
  std::string Value;
};

/// `[e1, e2, ...]` — an array constructor with bounds [1..n]. Not standard
/// Pascal, but the paper's examples call `sqrtest([1,2], 2, isok)`.
class ArrayLiteralExpr : public Expr {
public:
  ArrayLiteralExpr(SourceLoc Loc, std::vector<ExprPtr> Elements)
      : Expr(Kind::ArrayLiteral, Loc), Elements(std::move(Elements)) {}

  const std::vector<ExprPtr> &getElements() const { return Elements; }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::ArrayLiteral;
  }

private:
  std::vector<ExprPtr> Elements;
};

/// A reference to a variable, parameter or (inside a function body) the
/// function-result pseudo-variable.
class VarRefExpr : public Expr {
public:
  VarRefExpr(SourceLoc Loc, std::string Name)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }
  /// Renames the reference (transformation passes re-bind globals to the
  /// parameters that replace them; Sema re-resolves afterwards).
  void setName(std::string N) { Name = std::move(N); }

  /// The declaration this reference resolves to; filled in by Sema. For a
  /// function-result assignment target this is the function's result
  /// pseudo-variable (RoutineDecl::getResultVar()).
  VarDecl *getDecl() const { return Decl; }
  void setDecl(VarDecl *D) { Decl = D; }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->getKind() == Kind::VarRef; }

private:
  std::string Name;
  VarDecl *Decl = nullptr;
};

/// An array element access `base[index]`.
class IndexExpr : public Expr {
public:
  IndexExpr(SourceLoc Loc, ExprPtr Base, ExprPtr Index)
      : Expr(Kind::Index, Loc), Base(std::move(Base)),
        IndexE(std::move(Index)) {}

  Expr *getBase() const { return Base.get(); }
  Expr *getIndex() const { return IndexE.get(); }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Index; }

private:
  ExprPtr Base;
  ExprPtr IndexE;
};

/// A function call in expression position.
class CallExpr : public Expr {
public:
  CallExpr(SourceLoc Loc, std::string CalleeName, std::vector<ExprPtr> Args)
      : Expr(Kind::Call, Loc), CalleeName(std::move(CalleeName)),
        Args(std::move(Args)) {}

  const std::string &getCalleeName() const { return CalleeName; }
  RoutineDecl *getCallee() const { return Callee; }
  void setCallee(RoutineDecl *R) { Callee = R; }
  const std::vector<ExprPtr> &getArgs() const { return Args; }
  std::vector<ExprPtr> &getArgs() { return Args; }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Call; }

private:
  std::string CalleeName;
  RoutineDecl *Callee = nullptr;
  std::vector<ExprPtr> Args;
};

/// Unary operators.
enum class UnaryOp : uint8_t { Neg, Not };

class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, UnaryOp Op, ExprPtr Operand)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp getOp() const { return Op; }
  Expr *getOperand() const { return Operand.get(); }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Operand;
};

/// Binary operators of the subset.
enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div, // Pascal `div` (integer division)
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

/// Returns the Pascal spelling of \p Op ("+", "div", "<=", ...).
const char *binaryOpSpelling(BinaryOp Op);

class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, BinaryOp Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp getOp() const { return Op; }
  Expr *getLHS() const { return LHS.get(); }
  Expr *getRHS() const { return RHS.get(); }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }

private:
  BinaryOp Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all statements.
class Stmt {
public:
  enum class Kind : uint8_t {
    Assign,
    Compound,
    If,
    While,
    Repeat,
    For,
    ProcCall,
    Goto,
    Labeled,
    Read,
    Write,
    Empty,
  };

  virtual ~Stmt() = default;

  Kind getKind() const { return K; }
  SourceLoc getLoc() const { return Loc; }

  unsigned getId() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }

  /// Deep copy (see Expr::clone for the cross-reference caveat).
  virtual StmtPtr clone() const = 0;

protected:
  Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
  unsigned Id = 0;
};

/// `target := value` where target is a VarRef or Index expression.
class AssignStmt : public Stmt {
public:
  AssignStmt(SourceLoc Loc, ExprPtr Target, ExprPtr Value)
      : Stmt(Kind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}

  Expr *getTarget() const { return Target.get(); }
  Expr *getValue() const { return Value.get(); }
  ExprPtr takeValue() { return std::move(Value); }
  void setValue(ExprPtr V) { Value = std::move(V); }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }

private:
  ExprPtr Target;
  ExprPtr Value;
};

/// `begin s1; s2; ... end`.
class CompoundStmt : public Stmt {
public:
  CompoundStmt(SourceLoc Loc, std::vector<StmtPtr> Body)
      : Stmt(Kind::Compound, Loc), Body(std::move(Body)) {}

  const std::vector<StmtPtr> &getBody() const { return Body; }
  std::vector<StmtPtr> &getBody() { return Body; }

  StmtPtr clone() const override;
  /// Typed deep copy for the common "clone a body" case.
  std::unique_ptr<CompoundStmt> cloneCompound() const;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Compound; }

private:
  std::vector<StmtPtr> Body;
};

/// `if cond then s1 [else s2]`.
class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  Expr *getCond() const { return Cond.get(); }
  Stmt *getThen() const { return Then.get(); }
  Stmt *getElse() const { return Else.get(); }
  /// Mutable child slots for transformation passes.
  StmtPtr &thenSlot() { return Then; }
  StmtPtr &elseSlot() { return Else; }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; // may be null
};

/// `while cond do body`. Loops are debugging units in the paper, so each
/// loop carries a synthesized unit name ("p.while@12") assigned by Sema.
class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, ExprPtr Cond, StmtPtr Body)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}

  Expr *getCond() const { return Cond.get(); }
  void setCond(ExprPtr C) { Cond = std::move(C); }
  Stmt *getBody() const { return Body.get(); }
  /// Mutable body slot for transformation passes.
  StmtPtr &bodySlot() { return Body; }

  const std::string &getUnitName() const { return UnitName; }
  void setUnitName(std::string N) { UnitName = std::move(N); }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }

private:
  ExprPtr Cond;
  StmtPtr Body;
  std::string UnitName;
};

/// `repeat s1; ... until cond`.
class RepeatStmt : public Stmt {
public:
  RepeatStmt(SourceLoc Loc, std::vector<StmtPtr> Body, ExprPtr Cond)
      : Stmt(Kind::Repeat, Loc), Body(std::move(Body)), Cond(std::move(Cond)) {}

  const std::vector<StmtPtr> &getBody() const { return Body; }
  std::vector<StmtPtr> &getBody() { return Body; }
  Expr *getCond() const { return Cond.get(); }

  const std::string &getUnitName() const { return UnitName; }
  void setUnitName(std::string N) { UnitName = std::move(N); }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Repeat; }

private:
  std::vector<StmtPtr> Body;
  ExprPtr Cond;
  std::string UnitName;
};

/// `for v := from to|downto to do body`.
class ForStmt : public Stmt {
public:
  ForStmt(SourceLoc Loc, ExprPtr LoopVar, ExprPtr From, ExprPtr To,
          bool Downward, StmtPtr Body)
      : Stmt(Kind::For, Loc), LoopVar(std::move(LoopVar)),
        From(std::move(From)), To(std::move(To)), Downward(Downward),
        Body(std::move(Body)) {}

  /// The control variable reference (always a VarRefExpr).
  Expr *getLoopVar() const { return LoopVar.get(); }
  Expr *getFrom() const { return From.get(); }
  Expr *getTo() const { return To.get(); }
  bool isDownward() const { return Downward; }
  Stmt *getBody() const { return Body.get(); }
  /// Mutable body slot for transformation passes.
  StmtPtr &bodySlot() { return Body; }

  const std::string &getUnitName() const { return UnitName; }
  void setUnitName(std::string N) { UnitName = std::move(N); }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::For; }

private:
  ExprPtr LoopVar;
  ExprPtr From;
  ExprPtr To;
  bool Downward;
  StmtPtr Body;
  std::string UnitName;
};

/// A procedure call statement.
class ProcCallStmt : public Stmt {
public:
  ProcCallStmt(SourceLoc Loc, std::string CalleeName, std::vector<ExprPtr> Args)
      : Stmt(Kind::ProcCall, Loc), CalleeName(std::move(CalleeName)),
        Args(std::move(Args)) {}

  const std::string &getCalleeName() const { return CalleeName; }
  RoutineDecl *getCallee() const { return Callee; }
  void setCallee(RoutineDecl *R) { Callee = R; }
  const std::vector<ExprPtr> &getArgs() const { return Args; }
  std::vector<ExprPtr> &getArgs() { return Args; }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::ProcCall; }

private:
  std::string CalleeName;
  RoutineDecl *Callee = nullptr;
  std::vector<ExprPtr> Args;
};

/// `goto L`. Sema records whether the target label is declared in the
/// current routine (local) or in an enclosing one (a *global goto* in the
/// paper's terminology, subject to the breaking transformation).
class GotoStmt : public Stmt {
public:
  GotoStmt(SourceLoc Loc, int Label) : Stmt(Kind::Goto, Loc), Label(Label) {}

  int getLabel() const { return Label; }

  /// Routine whose scope declares the target label; set by Sema.
  RoutineDecl *getTargetRoutine() const { return TargetRoutine; }
  void setTargetRoutine(RoutineDecl *R) { TargetRoutine = R; }
  /// True when the goto leaves the routine it occurs in.
  bool isNonLocal() const { return NonLocal; }
  void setNonLocal(bool V) { NonLocal = V; }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Goto; }

private:
  int Label;
  RoutineDecl *TargetRoutine = nullptr;
  bool NonLocal = false;
};

/// `L: stmt`.
class LabeledStmt : public Stmt {
public:
  LabeledStmt(SourceLoc Loc, int Label, StmtPtr Sub)
      : Stmt(Kind::Labeled, Loc), Label(Label), Sub(std::move(Sub)) {}

  int getLabel() const { return Label; }
  Stmt *getSub() const { return Sub.get(); }
  /// Mutable substatement slot for transformation passes.
  StmtPtr &subSlot() { return Sub; }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Labeled; }

private:
  int Label;
  StmtPtr Sub;
};

/// `read(v1, v2, ...)` — reads integers from the program input stream.
class ReadStmt : public Stmt {
public:
  ReadStmt(SourceLoc Loc, std::vector<ExprPtr> Targets)
      : Stmt(Kind::Read, Loc), Targets(std::move(Targets)) {}

  const std::vector<ExprPtr> &getTargets() const { return Targets; }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Read; }

private:
  std::vector<ExprPtr> Targets;
};

/// `write(...)` / `writeln(...)`.
class WriteStmt : public Stmt {
public:
  WriteStmt(SourceLoc Loc, std::vector<ExprPtr> Args, bool Newline)
      : Stmt(Kind::Write, Loc), Args(std::move(Args)), Newline(Newline) {}

  const std::vector<ExprPtr> &getArgs() const { return Args; }
  bool isWriteln() const { return Newline; }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Write; }

private:
  std::vector<ExprPtr> Args;
  bool Newline;
};

/// The empty statement (between stray semicolons).
class EmptyStmt : public Stmt {
public:
  explicit EmptyStmt(SourceLoc Loc) : Stmt(Kind::Empty, Loc) {}

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Empty; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// Parameter passing modes. `In` and `Out` appear in programs produced by
/// the paper's transformation phase (Section 6); `In` behaves like a value
/// parameter and `Out` like a var parameter whose input value is unspecified.
enum class ParamMode : uint8_t { Value, Var, In, Out };

const char *paramModeSpelling(ParamMode Mode);

/// A variable: global, routine-local, parameter, or the result
/// pseudo-variable of a function.
class VarDecl {
public:
  enum class VarKind : uint8_t { Local, Param, Result };

  VarDecl(SourceLoc Loc, std::string Name, const Type *Ty, VarKind VK,
          ParamMode Mode = ParamMode::Value)
      : Loc(Loc), Name(std::move(Name)), Ty(Ty), VK(VK), Mode(Mode) {}

  SourceLoc getLoc() const { return Loc; }
  const std::string &getName() const { return Name; }
  const Type *getType() const { return Ty; }
  VarKind getVarKind() const { return VK; }
  bool isParam() const { return VK == VarKind::Param; }
  bool isResult() const { return VK == VarKind::Result; }
  ParamMode getMode() const { return Mode; }
  void setMode(ParamMode M) { Mode = M; }
  /// True for var/out parameters (callee writes flow back to the caller).
  bool isReference() const {
    return VK == VarKind::Param &&
           (Mode == ParamMode::Var || Mode == ParamMode::Out);
  }

  /// The routine whose scope declares this variable; set by Sema. Globals
  /// belong to the root (program) routine.
  RoutineDecl *getOwner() const { return Owner; }
  void setOwner(RoutineDecl *R) { Owner = R; }

  /// Storage coordinates assigned by assignStorageSlots: the index of this
  /// variable in its owner's activation frame, and the owner's static
  /// nesting depth (program = 0). Together they let the interpreter reach
  /// any variable with (depth hops, array index) instead of map lookups.
  uint32_t getSlot() const { return Slot; }
  uint32_t getDepth() const { return Depth; }
  void setStorage(uint32_t S, uint32_t D) {
    Slot = S;
    Depth = D;
  }

private:
  SourceLoc Loc;
  std::string Name;
  const Type *Ty;
  VarKind VK;
  ParamMode Mode;
  RoutineDecl *Owner = nullptr;
  uint32_t Slot = 0;
  uint32_t Depth = 0;
};

/// A procedure, function, or the program itself (the root routine).
///
/// The root routine has isProgram() == true: its locals are the program's
/// global variables and its body is the main block.
class RoutineDecl {
public:
  RoutineDecl(SourceLoc Loc, std::string Name, bool IsFunction,
              const Type *ReturnType)
      : Loc(Loc), Name(std::move(Name)), IsFunction(IsFunction),
        ReturnType(ReturnType) {}

  RoutineDecl(const RoutineDecl &) = delete;
  RoutineDecl &operator=(const RoutineDecl &) = delete;

  SourceLoc getLoc() const { return Loc; }
  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  bool isFunction() const { return IsFunction; }
  const Type *getReturnType() const { return ReturnType; }
  bool isProgram() const { return Parent == nullptr; }

  RoutineDecl *getParent() const { return Parent; }
  void setParent(RoutineDecl *P) { Parent = P; }

  const std::vector<std::unique_ptr<VarDecl>> &getParams() const {
    return Params;
  }
  std::vector<std::unique_ptr<VarDecl>> &getParams() { return Params; }
  const std::vector<std::unique_ptr<VarDecl>> &getLocals() const {
    return Locals;
  }
  std::vector<std::unique_ptr<VarDecl>> &getLocals() { return Locals; }
  const std::vector<int> &getLabels() const { return Labels; }
  std::vector<int> &getLabels() { return Labels; }
  const std::vector<std::unique_ptr<RoutineDecl>> &getNested() const {
    return Nested;
  }
  std::vector<std::unique_ptr<RoutineDecl>> &getNested() { return Nested; }

  CompoundStmt *getBody() const { return Body.get(); }
  void setBody(std::unique_ptr<CompoundStmt> B) { Body = std::move(B); }

  /// Function-result pseudo-variable (functions only); created by Sema.
  VarDecl *getResultVar() const { return ResultVar.get(); }
  void setResultVar(std::unique_ptr<VarDecl> V) { ResultVar = std::move(V); }

  VarDecl *addParam(std::unique_ptr<VarDecl> P) {
    Params.push_back(std::move(P));
    return Params.back().get();
  }
  VarDecl *addLocal(std::unique_ptr<VarDecl> L) {
    Locals.push_back(std::move(L));
    return Locals.back().get();
  }
  RoutineDecl *addNested(std::unique_ptr<RoutineDecl> R) {
    Nested.push_back(std::move(R));
    return Nested.back().get();
  }

  /// Fully qualified name, e.g. "main.p.q" — unique within a program.
  std::string qualifiedName() const;

  /// Looks up a parameter or local (not enclosing scopes) by lowercase name.
  VarDecl *findLocal(const std::string &Name) const;
  /// Looks up an immediately nested routine by lowercase name.
  RoutineDecl *findNested(const std::string &Name) const;

  /// Deep copy of the whole routine tree. Cross references inside the clone
  /// (VarRef decls, call targets, var owners) are remapped to the cloned
  /// declarations, so the result is a self-contained program tree.
  std::unique_ptr<RoutineDecl> cloneTree() const;

  /// Node-id block assigned by assignNodeIds: this routine's statements and
  /// expressions occupy the contiguous id range [First, First + Count), the
  /// statements first. Two routines with equal canonical bodies have equal
  /// (Stmts, Count), and the k-th id of one corresponds to the k-th id of
  /// the other — the incremental matcher maps clean routines by this block
  /// arithmetic instead of re-walking their bodies.
  unsigned getNodeIdFirst() const { return NodeIdFirst; }
  unsigned getNodeIdStmts() const { return NodeIdStmts; }
  unsigned getNodeIdCount() const { return NodeIdCount; }
  void setNodeIdRange(unsigned First, unsigned Stmts, unsigned Count) {
    NodeIdFirst = First;
    NodeIdStmts = Stmts;
    NodeIdCount = Count;
  }

  /// Storage layout assigned by assignStorageSlots: static nesting depth
  /// (program = 0) and the declarations backing each frame slot, in slot
  /// order (params, then locals, then the function result).
  uint32_t getStorageDepth() const { return StorageDepth; }
  uint32_t getNumSlots() const {
    return static_cast<uint32_t>(SlotDecls.size());
  }
  const std::vector<const VarDecl *> &getSlotDecls() const {
    return SlotDecls;
  }
  void setStorageLayout(uint32_t Depth, std::vector<const VarDecl *> Decls) {
    StorageDepth = Depth;
    SlotDecls = std::move(Decls);
  }

private:
  SourceLoc Loc;
  std::string Name;
  bool IsFunction;
  const Type *ReturnType; // null for procedures and the program
  RoutineDecl *Parent = nullptr;
  std::vector<std::unique_ptr<VarDecl>> Params;
  std::vector<std::unique_ptr<VarDecl>> Locals;
  std::vector<int> Labels;
  std::vector<std::unique_ptr<RoutineDecl>> Nested;
  std::unique_ptr<CompoundStmt> Body;
  std::unique_ptr<VarDecl> ResultVar;
  uint32_t StorageDepth = 0;
  std::vector<const VarDecl *> SlotDecls;
  unsigned NodeIdFirst = 0, NodeIdStmts = 0, NodeIdCount = 0;
};

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

/// A named type definition (`type intarray = array[1..10] of integer;`).
struct TypeDef {
  std::string Name;
  const Type *Ty = nullptr;
};

/// A parsed (and, after Sema, checked) program: the type table plus the root
/// routine. Owns the TypeContext that all Type pointers point into.
class Program {
public:
  Program() : Types(std::make_unique<TypeContext>()) {}

  TypeContext &getTypeContext() { return *Types; }
  const std::vector<TypeDef> &getTypeDefs() const { return TypeDefs; }
  std::vector<TypeDef> &getTypeDefs() { return TypeDefs; }

  RoutineDecl *getMain() const { return Main.get(); }
  void setMain(std::unique_ptr<RoutineDecl> M) { Main = std::move(M); }

  const std::string &getName() const { return Main->getName(); }

  /// Deep copy sharing the TypeContext of this program. The clone keeps a
  /// non-owning pointer to our TypeContext, so the original must outlive it;
  /// transformations clone, mutate, and hand both back to the caller.
  /// Clones start with storage slots unassigned (they are re-analyzed after
  /// mutation, which reassigns them).
  std::unique_ptr<Program> clone() const;

  /// Whether assignStorageSlots has run on the current shape of the tree.
  bool areSlotsAssigned() const { return SlotsAssigned; }
  void setSlotsAssigned(bool B) { SlotsAssigned = B; }

  /// Id -> node table filled by assignNodeIds ([0] is null; statements and
  /// expressions share the numbering). Lets id-keyed consumers (the
  /// incremental matcher) reach any node without re-walking the tree; the
  /// typed pointer is recovered from the querying side's static type.
  const std::vector<const void *> &getNodeTable() const { return NodeTable; }
  void setNodeTable(std::vector<const void *> T) { NodeTable = std::move(T); }

private:
  std::unique_ptr<TypeContext> Types;
  TypeContext *SharedTypes = nullptr; // set on clones
  std::vector<TypeDef> TypeDefs;
  std::unique_ptr<RoutineDecl> Main;
  bool SlotsAssigned = false;
  std::vector<const void *> NodeTable;

public:
  /// The context actually used for type creation (shared for clones).
  TypeContext &types() { return SharedTypes ? *SharedTypes : *Types; }
};

//===----------------------------------------------------------------------===//
// Utilities
//===----------------------------------------------------------------------===//

/// Assigns dense, deterministic ids (1-based, preorder) to every statement
/// and expression in \p P. Returns the number of nodes numbered.
unsigned assignNodeIds(Program &P);

/// Assigns frame-storage coordinates to every variable of \p P: each
/// routine gets its static nesting depth and a slot-ordered declaration
/// table (params, locals, function result), and each VarDecl the matching
/// (slot, depth) pair. Sema runs this after every successful analysis;
/// re-running after tree mutation is safe and required. Returns the
/// largest frame size.
uint32_t assignStorageSlots(Program &P);

/// Calls \p Fn on every routine of the tree rooted at \p Root (preorder,
/// including \p Root itself).
void forEachRoutine(RoutineDecl *Root,
                    const std::function<void(RoutineDecl *)> &Fn);

/// Calls \p Fn on every statement in \p S (preorder, including \p S),
/// without descending into nested routines (statements own no routines, so
/// that cannot happen anyway).
void forEachStmt(Stmt *S, const std::function<void(Stmt *)> &Fn);

/// Calls \p Fn on every expression in \p S (preorder).
void forEachExpr(Stmt *S, const std::function<void(Expr *)> &Fn);

/// Calls \p Fn on \p E and every sub-expression (preorder).
void forEachExprIn(Expr *E, const std::function<void(Expr *)> &Fn);

} // namespace pascal
} // namespace gadt

#endif // GADT_PASCAL_AST_H
