//===- Parser.cpp - Pascal recursive-descent parser -----------------------===//

#include "pascal/Parser.h"

using namespace gadt;
using namespace gadt::pascal;

Parser::Parser(std::string_view Source, DiagnosticsEngine &Diags)
    : Diags(Diags) {
  Lexer Lex(Source, Diags);
  Tokens = Lex.lexAll();
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (consumeIf(K))
    return true;
  error(std::string("expected ") + tokenKindName(K) + " " + Context +
        ", found " + tokenKindName(tok().Kind));
  return false;
}

void Parser::error(const std::string &Message) {
  Diags.error(tok().Loc, Message);
}

std::unique_ptr<Program> Parser::parseProgram() {
  Prog = std::make_unique<Program>();
  TypeTable.clear();
  TypeTable["integer"] = Prog->types().getIntegerType();
  TypeTable["boolean"] = Prog->types().getBooleanType();

  if (!expect(TokenKind::KwProgram, "at start of program"))
    return nullptr;
  if (!tok().is(TokenKind::Identifier)) {
    error("expected program name");
    return nullptr;
  }
  SourceLoc Loc = tok().Loc;
  std::string Name = tok().Text;
  consume();
  if (!expect(TokenKind::Semicolon, "after program name"))
    return nullptr;

  auto Main =
      std::make_unique<RoutineDecl>(Loc, Name, /*IsFunction=*/false,
                                    /*ReturnType=*/nullptr);
  if (!parseBlock(*Main))
    return nullptr;
  if (!expect(TokenKind::Dot, "after final 'end'"))
    return nullptr;

  Prog->setMain(std::move(Main));
  if (Diags.hasErrors())
    return nullptr;
  return std::move(Prog);
}

bool Parser::parseBlock(RoutineDecl &R) {
  ConstScopes.push_back(ConstScope());
  // Names declared in this routine shadow outer constants.
  for (const auto &P : R.getParams())
    ConstScopes.back().Shadowed.insert(P->getName());
  ConstScopes.back().Shadowed.insert(R.getName());

  bool Ok = [&] {
    for (;;) {
      switch (tok().Kind) {
      case TokenKind::KwLabel:
        if (!parseLabelSection(R))
          return false;
        continue;
      case TokenKind::KwType:
        if (!parseTypeSection())
          return false;
        continue;
      case TokenKind::KwConst:
        if (!parseConstSection())
          return false;
        continue;
      case TokenKind::KwVar:
        if (!parseVarSection(R))
          return false;
        continue;
      case TokenKind::KwProcedure:
      case TokenKind::KwFunction: {
        std::unique_ptr<RoutineDecl> Sub = parseRoutineDecl(R);
        if (!Sub)
          return false;
        ConstScopes.back().Shadowed.insert(Sub->getName());
        // A body arriving for an earlier `forward` declaration completes
        // it; the fresh declaration replaces the placeholder.
        if (RoutineDecl *Fwd = R.findNested(Sub->getName())) {
          if (Fwd->getBody()) {
            error("redeclaration of routine '" + Sub->getName() + "'");
            return false;
          }
          if (!Sub->getBody()) {
            error("duplicate forward declaration of '" + Sub->getName() +
                  "'");
            return false;
          }
          // `procedure f;` after `procedure f(x: ...); forward;` inherits
          // the forward heading; a repeated heading must agree.
          if (Sub->getParams().empty() && !Fwd->getParams().empty())
            Sub->getParams() = std::move(Fwd->getParams());
          else if (Fwd->getParams().size() != Sub->getParams().size()) {
            error("definition of '" + Sub->getName() +
                  "' disagrees with its forward declaration");
            return false;
          }
          for (auto &N : R.getNested())
            if (N.get() == Fwd) {
              Sub->setParent(&R);
              N = std::move(Sub);
              break;
            }
          continue;
        }
        Sub->setParent(&R);
        R.addNested(std::move(Sub));
        continue;
      }
      default:
        break;
      }
      break;
    }
    std::unique_ptr<CompoundStmt> Body = parseCompound();
    if (!Body)
      return false;
    R.setBody(std::move(Body));
    // Every forward declaration must have been completed by now.
    for (const auto &N : R.getNested())
      if (!N->getBody()) {
        error("routine '" + N->getName() +
              "' was declared forward but never defined");
        return false;
      }
    return true;
  }();
  ConstScopes.pop_back();
  return Ok;
}

bool Parser::parseConstSection() {
  consume(); // 'const'
  bool SawOne = false;
  while (tok().is(TokenKind::Identifier) &&
         peekTok().is(TokenKind::Equal)) {
    std::string Name = tok().Text;
    consume();
    consume(); // '='
    bool Negative = consumeIf(TokenKind::Minus);
    if (tok().is(TokenKind::IntLiteral)) {
      ConstScopes.back().Ints[Name] =
          Negative ? -tok().IntValue : tok().IntValue;
      consume();
    } else if (!Negative && tok().is(TokenKind::KwTrue)) {
      ConstScopes.back().Bools[Name] = true;
      consume();
    } else if (!Negative && tok().is(TokenKind::KwFalse)) {
      ConstScopes.back().Bools[Name] = false;
      consume();
    } else {
      int64_t Referenced;
      if (!Negative && tok().is(TokenKind::Identifier) &&
          lookupConstInt(tok().Text, Referenced)) {
        ConstScopes.back().Ints[Name] = Referenced;
        consume();
      } else {
        error("expected integer, boolean or constant name after '='");
        return false;
      }
    }
    ConstScopes.back().Shadowed.erase(Name);
    if (!expect(TokenKind::Semicolon, "after constant definition"))
      return false;
    SawOne = true;
  }
  if (!SawOne) {
    error("expected constant definition after 'const'");
    return false;
  }
  return true;
}

ExprPtr Parser::lookupConst(const std::string &Name, SourceLoc Loc) const {
  for (auto It = ConstScopes.rbegin(); It != ConstScopes.rend(); ++It) {
    auto IntIt = It->Ints.find(Name);
    if (IntIt != It->Ints.end())
      return std::make_unique<IntLiteralExpr>(Loc, IntIt->second);
    auto BoolIt = It->Bools.find(Name);
    if (BoolIt != It->Bools.end())
      return std::make_unique<BoolLiteralExpr>(Loc, BoolIt->second);
    if (It->Shadowed.count(Name))
      return nullptr;
  }
  return nullptr;
}

bool Parser::lookupConstInt(const std::string &Name, int64_t &Out) const {
  for (auto It = ConstScopes.rbegin(); It != ConstScopes.rend(); ++It) {
    auto IntIt = It->Ints.find(Name);
    if (IntIt != It->Ints.end()) {
      Out = IntIt->second;
      return true;
    }
    if (It->Shadowed.count(Name))
      return false;
  }
  return false;
}

bool Parser::parseLabelSection(RoutineDecl &R) {
  consume(); // 'label'
  for (;;) {
    if (!tok().is(TokenKind::IntLiteral)) {
      error("expected label number in label declaration");
      return false;
    }
    R.getLabels().push_back(static_cast<int>(tok().IntValue));
    consume();
    if (consumeIf(TokenKind::Comma))
      continue;
    return expect(TokenKind::Semicolon, "after label declaration");
  }
}

bool Parser::parseTypeSection() {
  consume(); // 'type'
  // One or more `name = type;` definitions.
  bool SawOne = false;
  while (tok().is(TokenKind::Identifier) &&
         peekTok().is(TokenKind::Equal)) {
    std::string Name = tok().Text;
    consume();
    consume(); // '='
    const Type *Ty = parseType();
    if (!Ty)
      return false;
    if (!expect(TokenKind::Semicolon, "after type definition"))
      return false;
    if (TypeTable.count(Name)) {
      error("redefinition of type '" + Name + "'");
      return false;
    }
    TypeTable[Name] = Ty;
    Prog->getTypeDefs().push_back({Name, Ty});
    SawOne = true;
  }
  if (!SawOne) {
    error("expected type definition after 'type'");
    return false;
  }
  return true;
}

bool Parser::parseVarSection(RoutineDecl &R) {
  consume(); // 'var'
  bool SawOne = false;
  while (tok().is(TokenKind::Identifier)) {
    std::vector<std::pair<std::string, SourceLoc>> Names;
    for (;;) {
      if (!tok().is(TokenKind::Identifier)) {
        error("expected variable name");
        return false;
      }
      Names.push_back({tok().Text, tok().Loc});
      consume();
      if (!consumeIf(TokenKind::Comma))
        break;
    }
    if (!expect(TokenKind::Colon, "after variable names"))
      return false;
    const Type *Ty = parseType();
    if (!Ty)
      return false;
    if (!expect(TokenKind::Semicolon, "after variable declaration"))
      return false;
    for (auto &[Name, Loc] : Names) {
      R.addLocal(std::make_unique<VarDecl>(Loc, Name, Ty,
                                           VarDecl::VarKind::Local));
      ConstScopes.back().Shadowed.insert(Name);
    }
    SawOne = true;
  }
  if (!SawOne) {
    error("expected variable declaration after 'var'");
    return false;
  }
  return true;
}

std::unique_ptr<RoutineDecl> Parser::parseRoutineDecl(RoutineDecl &Parent) {
  (void)Parent;
  bool IsFunction = tok().is(TokenKind::KwFunction);
  consume(); // 'procedure' / 'function'
  if (!tok().is(TokenKind::Identifier)) {
    error("expected routine name");
    return nullptr;
  }
  SourceLoc Loc = tok().Loc;
  std::string Name = tok().Text;
  consume();

  auto R = std::make_unique<RoutineDecl>(Loc, Name, IsFunction,
                                         /*ReturnType=*/nullptr);
  if (tok().is(TokenKind::LParen) && !parseParamList(*R))
    return nullptr;

  if (IsFunction) {
    if (!expect(TokenKind::Colon, "before function result type"))
      return nullptr;
    const Type *RetTy = parseType();
    if (!RetTy)
      return nullptr;
    // Rebuild with the return type (it is immutable on RoutineDecl).
    auto WithRet = std::make_unique<RoutineDecl>(Loc, Name, true, RetTy);
    WithRet->getParams() = std::move(R->getParams());
    R = std::move(WithRet);
  }
  if (!expect(TokenKind::Semicolon, "after routine heading"))
    return nullptr;
  // `forward;` defers the body to a later declaration (required in Pascal
  // for mutual recursion).
  if (tok().is(TokenKind::Identifier) && tok().Text == "forward") {
    consume();
    if (!expect(TokenKind::Semicolon, "after 'forward'"))
      return nullptr;
    return R;
  }
  if (!parseBlock(*R))
    return nullptr;
  if (!expect(TokenKind::Semicolon, "after routine body"))
    return nullptr;
  return R;
}

bool Parser::parseParamList(RoutineDecl &R) {
  consume(); // '('
  if (consumeIf(TokenKind::RParen))
    return true;
  for (;;) {
    ParamMode Mode = ParamMode::Value;
    if (consumeIf(TokenKind::KwVar))
      Mode = ParamMode::Var;
    else if (consumeIf(TokenKind::KwIn))
      Mode = ParamMode::In;
    else if (consumeIf(TokenKind::KwOut))
      Mode = ParamMode::Out;

    std::vector<std::pair<std::string, SourceLoc>> Names;
    for (;;) {
      if (!tok().is(TokenKind::Identifier)) {
        error("expected parameter name");
        return false;
      }
      Names.push_back({tok().Text, tok().Loc});
      consume();
      if (!consumeIf(TokenKind::Comma))
        break;
    }
    if (!expect(TokenKind::Colon, "after parameter names"))
      return false;
    const Type *Ty = parseType();
    if (!Ty)
      return false;
    for (auto &[Name, Loc] : Names)
      R.addParam(std::make_unique<VarDecl>(Loc, Name, Ty,
                                           VarDecl::VarKind::Param, Mode));
    if (consumeIf(TokenKind::Semicolon))
      continue;
    return expect(TokenKind::RParen, "at end of parameter list");
  }
}

int64_t Parser::parseArrayBound(bool &Ok) {
  bool Negative = consumeIf(TokenKind::Minus);
  int64_t Value;
  if (tok().is(TokenKind::IntLiteral)) {
    Value = tok().IntValue;
  } else if (tok().is(TokenKind::Identifier) &&
             lookupConstInt(tok().Text, Value)) {
    // Constant array bounds: `array[1..maxsize] of integer`.
  } else {
    error("expected integer or constant array bound");
    Ok = false;
    return 0;
  }
  consume();
  Ok = true;
  return Negative ? -Value : Value;
}

const Type *Parser::parseType() {
  if (tok().is(TokenKind::Identifier)) {
    auto It = TypeTable.find(tok().Text);
    if (It == TypeTable.end()) {
      error("unknown type name '" + tok().Text + "'");
      return nullptr;
    }
    consume();
    return It->second;
  }
  if (consumeIf(TokenKind::KwArray)) {
    if (!expect(TokenKind::LBracket, "after 'array'"))
      return nullptr;
    bool Ok = false;
    int64_t Lo = parseArrayBound(Ok);
    if (!Ok)
      return nullptr;
    if (!expect(TokenKind::DotDot, "between array bounds"))
      return nullptr;
    int64_t Hi = parseArrayBound(Ok);
    if (!Ok)
      return nullptr;
    if (Lo > Hi) {
      error("array lower bound exceeds upper bound");
      return nullptr;
    }
    if (!expect(TokenKind::RBracket, "after array bounds"))
      return nullptr;
    if (!expect(TokenKind::KwOf, "in array type"))
      return nullptr;
    const Type *Elem = parseType();
    if (!Elem)
      return nullptr;
    if (Elem->isArray()) {
      error("arrays of arrays are not supported");
      return nullptr;
    }
    return Prog->types().getArrayType(Elem, Lo, Hi);
  }
  error(std::string("expected type, found ") + tokenKindName(tok().Kind));
  return nullptr;
}

std::unique_ptr<CompoundStmt> Parser::parseCompound() {
  SourceLoc Loc = tok().Loc;
  if (!expect(TokenKind::KwBegin, "at start of compound statement"))
    return nullptr;
  std::vector<StmtPtr> Body;
  if (!consumeIf(TokenKind::KwEnd)) {
    for (;;) {
      StmtPtr S = parseStatement();
      if (!S)
        return nullptr;
      if (!isa<EmptyStmt>(S.get()))
        Body.push_back(std::move(S));
      if (consumeIf(TokenKind::Semicolon)) {
        if (consumeIf(TokenKind::KwEnd))
          break;
        continue;
      }
      if (consumeIf(TokenKind::KwEnd))
        break;
      error(std::string("expected ';' or 'end', found ") +
            tokenKindName(tok().Kind));
      return nullptr;
    }
  }
  return std::make_unique<CompoundStmt>(Loc, std::move(Body));
}

StmtPtr Parser::parseStatement() {
  // Optional label prefix `9: stmt`.
  if (tok().is(TokenKind::IntLiteral) && peekTok().is(TokenKind::Colon)) {
    SourceLoc Loc = tok().Loc;
    int Label = static_cast<int>(tok().IntValue);
    consume();
    consume(); // ':'
    StmtPtr Sub = parseStatement();
    if (!Sub)
      return nullptr;
    return std::make_unique<LabeledStmt>(Loc, Label, std::move(Sub));
  }
  return parseUnlabeledStatement();
}

StmtPtr Parser::parseUnlabeledStatement() {
  switch (tok().Kind) {
  case TokenKind::KwBegin:
    return parseCompound();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwRepeat:
    return parseRepeat();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwGoto: {
    SourceLoc Loc = tok().Loc;
    consume();
    if (!tok().is(TokenKind::IntLiteral)) {
      error("expected label number after 'goto'");
      return nullptr;
    }
    int Label = static_cast<int>(tok().IntValue);
    consume();
    return std::make_unique<GotoStmt>(Loc, Label);
  }
  case TokenKind::Identifier:
    return parseAssignOrCall();
  case TokenKind::Semicolon:
  case TokenKind::KwEnd:
  case TokenKind::KwUntil:
    return std::make_unique<EmptyStmt>(tok().Loc);
  default:
    error(std::string("expected statement, found ") +
          tokenKindName(tok().Kind));
    return nullptr;
  }
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = tok().Loc;
  consume(); // 'if'
  ExprPtr Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::KwThen, "in if statement"))
    return nullptr;
  StmtPtr Then = parseStatement();
  if (!Then)
    return nullptr;
  StmtPtr Else;
  if (consumeIf(TokenKind::KwElse)) {
    Else = parseStatement();
    if (!Else)
      return nullptr;
  }
  return std::make_unique<IfStmt>(Loc, std::move(Cond), std::move(Then),
                                  std::move(Else));
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = tok().Loc;
  consume(); // 'while'
  ExprPtr Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::KwDo, "in while statement"))
    return nullptr;
  StmtPtr Body = parseStatement();
  if (!Body)
    return nullptr;
  return std::make_unique<WhileStmt>(Loc, std::move(Cond), std::move(Body));
}

StmtPtr Parser::parseRepeat() {
  SourceLoc Loc = tok().Loc;
  consume(); // 'repeat'
  std::vector<StmtPtr> Body;
  for (;;) {
    StmtPtr S = parseStatement();
    if (!S)
      return nullptr;
    if (!isa<EmptyStmt>(S.get()))
      Body.push_back(std::move(S));
    if (consumeIf(TokenKind::Semicolon))
      continue;
    break;
  }
  if (!expect(TokenKind::KwUntil, "at end of repeat statement"))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond)
    return nullptr;
  return std::make_unique<RepeatStmt>(Loc, std::move(Body), std::move(Cond));
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = tok().Loc;
  consume(); // 'for'
  if (!tok().is(TokenKind::Identifier)) {
    error("expected loop variable after 'for'");
    return nullptr;
  }
  auto LoopVar = std::make_unique<VarRefExpr>(tok().Loc, tok().Text);
  consume();
  if (!expect(TokenKind::Assign, "after for-loop variable"))
    return nullptr;
  ExprPtr From = parseExpr();
  if (!From)
    return nullptr;
  bool Downward;
  if (consumeIf(TokenKind::KwTo))
    Downward = false;
  else if (consumeIf(TokenKind::KwDownto))
    Downward = true;
  else {
    error("expected 'to' or 'downto' in for statement");
    return nullptr;
  }
  ExprPtr To = parseExpr();
  if (!To)
    return nullptr;
  if (!expect(TokenKind::KwDo, "in for statement"))
    return nullptr;
  StmtPtr Body = parseStatement();
  if (!Body)
    return nullptr;
  return std::make_unique<ForStmt>(Loc, std::move(LoopVar), std::move(From),
                                   std::move(To), Downward, std::move(Body));
}

StmtPtr Parser::parseAssignOrCall() {
  SourceLoc Loc = tok().Loc;
  std::string Name = tok().Text;
  consume();

  // read/readln/write/writeln are builtin statements.
  bool IsRead = Name == "read" || Name == "readln";
  bool IsWrite = Name == "write" || Name == "writeln";
  if ((IsRead || IsWrite) && tok().is(TokenKind::LParen)) {
    consume();
    std::vector<ExprPtr> Args;
    if (!tok().is(TokenKind::RParen)) {
      for (;;) {
        ExprPtr Arg = parseExpr();
        if (!Arg)
          return nullptr;
        Args.push_back(std::move(Arg));
        if (!consumeIf(TokenKind::Comma))
          break;
      }
    }
    if (!expect(TokenKind::RParen, "after argument list"))
      return nullptr;
    if (IsRead)
      return std::make_unique<ReadStmt>(Loc, std::move(Args));
    return std::make_unique<WriteStmt>(Loc, std::move(Args),
                                       Name == "writeln");
  }
  if (IsWrite && !tok().is(TokenKind::LParen)) {
    // `writeln` with no arguments.
    return std::make_unique<WriteStmt>(Loc, std::vector<ExprPtr>(),
                                       Name == "writeln");
  }

  // Assignment to a variable or array element.
  if (tok().is(TokenKind::LBracket)) {
    consume();
    ExprPtr Idx = parseExpr();
    if (!Idx)
      return nullptr;
    if (!expect(TokenKind::RBracket, "after array index"))
      return nullptr;
    auto Base = std::make_unique<VarRefExpr>(Loc, Name);
    auto Target =
        std::make_unique<IndexExpr>(Loc, std::move(Base), std::move(Idx));
    if (!expect(TokenKind::Assign, "in assignment"))
      return nullptr;
    ExprPtr Value = parseExpr();
    if (!Value)
      return nullptr;
    return std::make_unique<AssignStmt>(Loc, std::move(Target),
                                        std::move(Value));
  }
  if (consumeIf(TokenKind::Assign)) {
    if (lookupConst(Name, Loc)) {
      Diags.error(Loc, "cannot assign to constant '" + Name + "'");
      return nullptr;
    }
    auto Target = std::make_unique<VarRefExpr>(Loc, Name);
    ExprPtr Value = parseExpr();
    if (!Value)
      return nullptr;
    return std::make_unique<AssignStmt>(Loc, std::move(Target),
                                        std::move(Value));
  }

  // Procedure call, with or without arguments.
  std::vector<ExprPtr> Args;
  if (consumeIf(TokenKind::LParen)) {
    if (!tok().is(TokenKind::RParen)) {
      for (;;) {
        ExprPtr Arg = parseExpr();
        if (!Arg)
          return nullptr;
        Args.push_back(std::move(Arg));
        if (!consumeIf(TokenKind::Comma))
          break;
      }
    }
    if (!expect(TokenKind::RParen, "after argument list"))
      return nullptr;
  }
  return std::make_unique<ProcCallStmt>(Loc, Name, std::move(Args));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() {
  ExprPtr LHS = parseSimpleExpr();
  if (!LHS)
    return nullptr;
  for (;;) {
    BinaryOp Op;
    switch (tok().Kind) {
    case TokenKind::Equal:
      Op = BinaryOp::Eq;
      break;
    case TokenKind::NotEqual:
      Op = BinaryOp::Ne;
      break;
    case TokenKind::Less:
      Op = BinaryOp::Lt;
      break;
    case TokenKind::LessEqual:
      Op = BinaryOp::Le;
      break;
    case TokenKind::Greater:
      Op = BinaryOp::Gt;
      break;
    case TokenKind::GreaterEqual:
      Op = BinaryOp::Ge;
      break;
    default:
      return LHS;
    }
    SourceLoc Loc = tok().Loc;
    consume();
    ExprPtr RHS = parseSimpleExpr();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Loc, Op, std::move(LHS),
                                       std::move(RHS));
  }
}

ExprPtr Parser::parseSimpleExpr() {
  // Optional leading sign.
  if (tok().is(TokenKind::Minus)) {
    SourceLoc Loc = tok().Loc;
    consume();
    ExprPtr Operand = parseTerm();
    if (!Operand)
      return nullptr;
    ExprPtr LHS = std::make_unique<UnaryExpr>(Loc, UnaryOp::Neg,
                                              std::move(Operand));
    for (;;) {
      BinaryOp Op;
      if (tok().is(TokenKind::Plus))
        Op = BinaryOp::Add;
      else if (tok().is(TokenKind::Minus))
        Op = BinaryOp::Sub;
      else if (tok().is(TokenKind::KwOr))
        Op = BinaryOp::Or;
      else
        return LHS;
      SourceLoc OpLoc = tok().Loc;
      consume();
      ExprPtr RHS = parseTerm();
      if (!RHS)
        return nullptr;
      LHS = std::make_unique<BinaryExpr>(OpLoc, Op, std::move(LHS),
                                         std::move(RHS));
    }
  }
  consumeIf(TokenKind::Plus); // A leading '+' is a no-op.

  ExprPtr LHS = parseTerm();
  if (!LHS)
    return nullptr;
  for (;;) {
    BinaryOp Op;
    if (tok().is(TokenKind::Plus))
      Op = BinaryOp::Add;
    else if (tok().is(TokenKind::Minus))
      Op = BinaryOp::Sub;
    else if (tok().is(TokenKind::KwOr))
      Op = BinaryOp::Or;
    else
      return LHS;
    SourceLoc Loc = tok().Loc;
    consume();
    ExprPtr RHS = parseTerm();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Loc, Op, std::move(LHS),
                                       std::move(RHS));
  }
}

ExprPtr Parser::parseTerm() {
  ExprPtr LHS = parseFactor();
  if (!LHS)
    return nullptr;
  for (;;) {
    BinaryOp Op;
    if (tok().is(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (tok().is(TokenKind::KwDiv))
      Op = BinaryOp::Div;
    else if (tok().is(TokenKind::KwMod))
      Op = BinaryOp::Mod;
    else if (tok().is(TokenKind::KwAnd))
      Op = BinaryOp::And;
    else
      return LHS;
    SourceLoc Loc = tok().Loc;
    consume();
    ExprPtr RHS = parseFactor();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Loc, Op, std::move(LHS),
                                       std::move(RHS));
  }
}

ExprPtr Parser::parseFactor() {
  SourceLoc Loc = tok().Loc;
  switch (tok().Kind) {
  case TokenKind::IntLiteral: {
    int64_t Value = tok().IntValue;
    consume();
    return std::make_unique<IntLiteralExpr>(Loc, Value);
  }
  case TokenKind::StringLiteral: {
    std::string Value = tok().Text;
    consume();
    return std::make_unique<StringLiteralExpr>(Loc, std::move(Value));
  }
  case TokenKind::KwTrue:
    consume();
    return std::make_unique<BoolLiteralExpr>(Loc, true);
  case TokenKind::KwFalse:
    consume();
    return std::make_unique<BoolLiteralExpr>(Loc, false);
  case TokenKind::KwNot: {
    consume();
    ExprPtr Operand = parseFactor();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Not, std::move(Operand));
  }
  case TokenKind::Minus: {
    consume();
    ExprPtr Operand = parseFactor();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Neg, std::move(Operand));
  }
  case TokenKind::LParen: {
    consume();
    ExprPtr Inner = parseExpr();
    if (!Inner)
      return nullptr;
    if (!expect(TokenKind::RParen, "after parenthesized expression"))
      return nullptr;
    return Inner;
  }
  case TokenKind::LBracket: {
    // Array constructor `[e1, e2, ...]`.
    consume();
    std::vector<ExprPtr> Elements;
    if (!tok().is(TokenKind::RBracket)) {
      for (;;) {
        ExprPtr E = parseExpr();
        if (!E)
          return nullptr;
        Elements.push_back(std::move(E));
        if (!consumeIf(TokenKind::Comma))
          break;
      }
    }
    if (!expect(TokenKind::RBracket, "after array constructor"))
      return nullptr;
    if (Elements.empty()) {
      error("array constructor must have at least one element");
      return nullptr;
    }
    return std::make_unique<ArrayLiteralExpr>(Loc, std::move(Elements));
  }
  case TokenKind::Identifier: {
    std::string Name = tok().Text;
    consume();
    if (tok().is(TokenKind::LParen)) {
      consume();
      std::vector<ExprPtr> Args;
      if (!tok().is(TokenKind::RParen)) {
        for (;;) {
          ExprPtr Arg = parseExpr();
          if (!Arg)
            return nullptr;
          Args.push_back(std::move(Arg));
          if (!consumeIf(TokenKind::Comma))
            break;
        }
      }
      if (!expect(TokenKind::RParen, "after call arguments"))
        return nullptr;
      return std::make_unique<CallExpr>(Loc, Name, std::move(Args));
    }
    if (tok().is(TokenKind::LBracket)) {
      consume();
      ExprPtr Idx = parseExpr();
      if (!Idx)
        return nullptr;
      if (!expect(TokenKind::RBracket, "after array index"))
        return nullptr;
      auto Base = std::make_unique<VarRefExpr>(Loc, Name);
      return std::make_unique<IndexExpr>(Loc, std::move(Base),
                                         std::move(Idx));
    }
    if (ExprPtr Const = lookupConst(Name, Loc))
      return Const;
    return std::make_unique<VarRefExpr>(Loc, Name);
  }
  default:
    error(std::string("expected expression, found ") +
          tokenKindName(tok().Kind));
    return nullptr;
  }
}
