//===- Frontend.h - Parse + analyze convenience -----------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call entry point: source text in, checked Program out.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_PASCAL_FRONTEND_H
#define GADT_PASCAL_FRONTEND_H

#include "pascal/AST.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string_view>

namespace gadt {
namespace pascal {

/// Parses and semantically checks \p Source. Returns null (with diagnostics
/// in \p Diags) on any error.
std::unique_ptr<Program> parseAndCheck(std::string_view Source,
                                       DiagnosticsEngine &Diags);

} // namespace pascal
} // namespace gadt

#endif // GADT_PASCAL_FRONTEND_H
