//===- ASTMatch.h - Old→new AST correspondence across edits -----*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Old→new node correspondence across an edit. The incremental runtime
/// commits every edit as a fresh parse of the whole source; cached
/// per-routine artifacts (PDG arenas, compiled bytecode, slice node sets)
/// hold pointers into the *old* AST. For routines whose body fingerprint
/// did not change, the old and new ASTs are structurally identical, so
/// their sema-assigned preorder id blocks align one-to-one: the k-th id of
/// the old block corresponds to the k-th id of the new one. AstMap records
/// that correspondence as a flat id-indexed pointer table — filled by block
/// arithmetic from the programs' node tables (pascal/AST.h assignNodeIds),
/// no body re-walk — and the replay paths rewrite cached pointers through
/// it.
///
/// Matching is defensive where it is cheap: routine pairing, header/local
/// variable mapping and the id-block shape (statement and total counts) are
/// verified; the per-node correspondence itself is carried by fingerprint
/// equality (the caller's precondition) and re-checked at replay time,
/// where call records and variable bindings are compared node-by-node. Any
/// mismatch makes the routine non-replayable; the transaction then falls
/// back to rebuilding it, so a matcher miss can cost time but never
/// correctness.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_PASCAL_ASTMATCH_H
#define GADT_PASCAL_ASTMATCH_H

#include "pascal/AST.h"

#include <unordered_map>
#include <vector>

namespace gadt {
namespace pascal {

class AstMap {
public:
  /// Binds the edit's new program; mapBody copies slices of its node table.
  /// Must be called before the first mapBody.
  void bindNewProgram(const Program &P) { NewProg = &P; }

  /// The new-AST counterpart of an old node, or null when unmapped.
  /// Statements and expressions index a flat table by the old node's
  /// program-wide id (assigned by sema's assignNodeIds pass) — replay
  /// rewrites every cached pointer through these, so the lookup must not
  /// hash. Id 0 means "never numbered" and stays unmapped.
  const Stmt *stmt(const Stmt *S) const {
    return static_cast<const Stmt *>(node(S));
  }
  const Expr *expr(const Expr *E) const {
    return static_cast<const Expr *>(node(E));
  }
  const VarDecl *var(const VarDecl *V) const { return find(Vars, V); }
  const RoutineDecl *routine(const RoutineDecl *R) const {
    return find(Routines, R);
  }

  /// Pairs two routines by identity (no body/var mapping yet).
  void addRoutine(const RoutineDecl *OldR, const RoutineDecl *NewR) {
    Routines[OldR] = NewR;
  }

  /// Maps the caller-visible variables (parameters and the function result
  /// slot). Valid when the routines' header fingerprints are equal; returns
  /// false on any shape mismatch.
  bool mapHeaderVars(const RoutineDecl *OldR, const RoutineDecl *NewR);

  /// Maps the locals. Valid when the frame fingerprints are equal.
  bool mapLocalVars(const RoutineDecl *OldR, const RoutineDecl *NewR);

  /// Maps the two bodies' nodes by id-block arithmetic: both routines'
  /// statements and expressions occupy contiguous sema-assigned id blocks,
  /// and equal body fingerprints (the caller's precondition) mean the
  /// blocks align index-for-index, so the old block's slice of the node
  /// map is filled straight from the new program's node table. Verifies the
  /// block shape (statement and total counts); returns false on mismatch —
  /// callers then treat the routine as dirty, which never consults the
  /// entries. Requires bindNewProgram.
  bool mapBody(const RoutineDecl *OldR, const RoutineDecl *NewR);

private:
  template <typename Node>
  static const Node *find(const std::unordered_map<const Node *, const Node *> &M,
                          const Node *K) {
    if (!K)
      return nullptr;
    auto It = M.find(K);
    return It == M.end() ? nullptr : It->second;
  }

  template <typename Node> const void *node(const Node *K) const {
    if (!K)
      return nullptr;
    unsigned Id = K->getId();
    return Id < Nodes.size() ? Nodes[Id] : nullptr;
  }

  /// Old stmt/expr id -> new node. Stmt and expr ids share one numbering
  /// space, so one table serves both; the typed accessors above recover
  /// the static type from the query key.
  std::vector<const void *> Nodes;
  const Program *NewProg = nullptr;
  std::unordered_map<const VarDecl *, const VarDecl *> Vars;
  std::unordered_map<const RoutineDecl *, const RoutineDecl *> Routines;
};

} // namespace pascal
} // namespace gadt

#endif // GADT_PASCAL_ASTMATCH_H
