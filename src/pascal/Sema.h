//===- Sema.h - Pascal semantic analysis ------------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution, type checking and label checking for the Pascal subset.
/// Sema also prepares the AST for later phases: it creates function-result
/// pseudo-variables, classifies gotos as local or non-local (the paper's
/// "global gotos"), and assigns stable unit names to loops (the paper treats
/// local loops as debugging units).
///
//===----------------------------------------------------------------------===//

#ifndef GADT_PASCAL_SEMA_H
#define GADT_PASCAL_SEMA_H

#include "pascal/AST.h"
#include "support/Diagnostics.h"

namespace gadt {
namespace pascal {

/// Runs semantic analysis over \p P. Returns true on success; reports
/// problems to \p Diags otherwise. Safe to run on transformed programs as
/// well (re-checking after a transformation is a cheap sanity pass).
bool analyze(Program &P, DiagnosticsEngine &Diags);

} // namespace pascal
} // namespace gadt

#endif // GADT_PASCAL_SEMA_H
