//===- PrettyPrinter.h - AST to Pascal source -------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a (possibly transformed or sliced) AST back to Pascal source.
/// Used to present transformation results (paper Section 6), project slices
/// onto source (paper Figure 2), and compute the growth-factor metric
/// (paper Section 9).
///
//===----------------------------------------------------------------------===//

#ifndef GADT_PASCAL_PRETTYPRINTER_H
#define GADT_PASCAL_PRETTYPRINTER_H

#include "pascal/AST.h"

#include <string>

namespace gadt {
namespace pascal {

/// Renders the whole program as Pascal source.
std::string printProgram(const Program &P);

/// Renders a single routine declaration (with nested routines and body) at
/// the given indentation depth.
std::string printRoutine(const RoutineDecl &R, unsigned Indent = 0);

/// Renders a single statement at the given indentation depth.
std::string printStmt(const Stmt &S, unsigned Indent = 0);

} // namespace pascal
} // namespace gadt

#endif // GADT_PASCAL_PRETTYPRINTER_H
