//===- AST.cpp - Pascal abstract syntax tree ------------------------------===//

#include "pascal/AST.h"

#include <unordered_map>

using namespace gadt;
using namespace gadt::pascal;

//===----------------------------------------------------------------------===//
// Spellings
//===----------------------------------------------------------------------===//

const char *gadt::pascal::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "div";
  case BinaryOp::Mod:
    return "mod";
  case BinaryOp::Eq:
    return "=";
  case BinaryOp::Ne:
    return "<>";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "and";
  case BinaryOp::Or:
    return "or";
  }
  return "?";
}

const char *gadt::pascal::paramModeSpelling(ParamMode Mode) {
  switch (Mode) {
  case ParamMode::Value:
    return "";
  case ParamMode::Var:
    return "var";
  case ParamMode::In:
    return "in";
  case ParamMode::Out:
    return "out";
  }
  return "";
}

//===----------------------------------------------------------------------===//
// Expr::str
//===----------------------------------------------------------------------===//

namespace {

/// Binding strength used to decide parenthesization when rendering.
int precedenceOf(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Or:
    return 1;
  case BinaryOp::And:
    return 2;
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return 3;
  case BinaryOp::Add:
  case BinaryOp::Sub:
    return 4;
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Mod:
    return 5;
  }
  return 0;
}

void renderExpr(const Expr *E, std::string &Out, int ParentPrec) {
  switch (E->getKind()) {
  case Expr::Kind::IntLiteral:
    Out += std::to_string(cast<IntLiteralExpr>(E)->getValue());
    return;
  case Expr::Kind::BoolLiteral:
    Out += cast<BoolLiteralExpr>(E)->getValue() ? "true" : "false";
    return;
  case Expr::Kind::StringLiteral:
    Out += '\'';
    Out += cast<StringLiteralExpr>(E)->getValue();
    Out += '\'';
    return;
  case Expr::Kind::ArrayLiteral: {
    const auto *AL = cast<ArrayLiteralExpr>(E);
    Out += '[';
    for (size_t I = 0, N = AL->getElements().size(); I != N; ++I) {
      if (I != 0)
        Out += ", ";
      renderExpr(AL->getElements()[I].get(), Out, 0);
    }
    Out += ']';
    return;
  }
  case Expr::Kind::VarRef:
    Out += cast<VarRefExpr>(E)->getName();
    return;
  case Expr::Kind::Index: {
    const auto *IE = cast<IndexExpr>(E);
    renderExpr(IE->getBase(), Out, 6);
    Out += '[';
    renderExpr(IE->getIndex(), Out, 0);
    Out += ']';
    return;
  }
  case Expr::Kind::Call: {
    const auto *CE = cast<CallExpr>(E);
    Out += CE->getCalleeName();
    Out += '(';
    for (size_t I = 0, N = CE->getArgs().size(); I != N; ++I) {
      if (I != 0)
        Out += ", ";
      renderExpr(CE->getArgs()[I].get(), Out, 0);
    }
    Out += ')';
    return;
  }
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    Out += UE->getOp() == UnaryOp::Neg ? "-" : "not ";
    renderExpr(UE->getOperand(), Out, 6);
    return;
  }
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    int Prec = precedenceOf(BE->getOp());
    bool Paren = Prec < ParentPrec;
    if (Paren)
      Out += '(';
    renderExpr(BE->getLHS(), Out, Prec);
    Out += ' ';
    Out += binaryOpSpelling(BE->getOp());
    Out += ' ';
    renderExpr(BE->getRHS(), Out, Prec + 1);
    if (Paren)
      Out += ')';
    return;
  }
  }
}

} // namespace

std::string Expr::str() const {
  std::string Out;
  renderExpr(this, Out, 0);
  return Out;
}

//===----------------------------------------------------------------------===//
// clone implementations
//===----------------------------------------------------------------------===//

static std::vector<ExprPtr> cloneExprs(const std::vector<ExprPtr> &Exprs) {
  std::vector<ExprPtr> Out;
  Out.reserve(Exprs.size());
  for (const ExprPtr &E : Exprs)
    Out.push_back(E->clone());
  return Out;
}

static std::vector<StmtPtr> cloneStmts(const std::vector<StmtPtr> &Stmts) {
  std::vector<StmtPtr> Out;
  Out.reserve(Stmts.size());
  for (const StmtPtr &S : Stmts)
    Out.push_back(S->clone());
  return Out;
}

ExprPtr IntLiteralExpr::clone() const {
  auto E = std::make_unique<IntLiteralExpr>(getLoc(), Value);
  E->setType(getType());
  return E;
}

ExprPtr BoolLiteralExpr::clone() const {
  auto E = std::make_unique<BoolLiteralExpr>(getLoc(), Value);
  E->setType(getType());
  return E;
}

ExprPtr StringLiteralExpr::clone() const {
  auto E = std::make_unique<StringLiteralExpr>(getLoc(), Value);
  E->setType(getType());
  return E;
}

ExprPtr ArrayLiteralExpr::clone() const {
  auto E = std::make_unique<ArrayLiteralExpr>(getLoc(), cloneExprs(Elements));
  E->setType(getType());
  return E;
}

ExprPtr VarRefExpr::clone() const {
  auto E = std::make_unique<VarRefExpr>(getLoc(), Name);
  E->setDecl(Decl);
  E->setType(getType());
  return E;
}

ExprPtr IndexExpr::clone() const {
  auto E = std::make_unique<IndexExpr>(getLoc(), Base->clone(),
                                       IndexE->clone());
  E->setType(getType());
  return E;
}

ExprPtr CallExpr::clone() const {
  auto E = std::make_unique<CallExpr>(getLoc(), CalleeName, cloneExprs(Args));
  E->setCallee(Callee);
  E->setType(getType());
  return E;
}

ExprPtr UnaryExpr::clone() const {
  auto E = std::make_unique<UnaryExpr>(getLoc(), Op, Operand->clone());
  E->setType(getType());
  return E;
}

ExprPtr BinaryExpr::clone() const {
  auto E =
      std::make_unique<BinaryExpr>(getLoc(), Op, LHS->clone(), RHS->clone());
  E->setType(getType());
  return E;
}

StmtPtr AssignStmt::clone() const {
  return std::make_unique<AssignStmt>(getLoc(), Target->clone(),
                                      Value->clone());
}

StmtPtr CompoundStmt::clone() const { return cloneCompound(); }

std::unique_ptr<CompoundStmt> CompoundStmt::cloneCompound() const {
  return std::make_unique<CompoundStmt>(getLoc(), cloneStmts(Body));
}

StmtPtr IfStmt::clone() const {
  return std::make_unique<IfStmt>(getLoc(), Cond->clone(), Then->clone(),
                                  Else ? Else->clone() : nullptr);
}

StmtPtr WhileStmt::clone() const {
  auto S = std::make_unique<WhileStmt>(getLoc(), Cond->clone(), Body->clone());
  S->setUnitName(UnitName);
  return S;
}

StmtPtr RepeatStmt::clone() const {
  auto S = std::make_unique<RepeatStmt>(getLoc(), cloneStmts(Body),
                                        Cond->clone());
  S->setUnitName(UnitName);
  return S;
}

StmtPtr ForStmt::clone() const {
  auto S = std::make_unique<ForStmt>(getLoc(), LoopVar->clone(), From->clone(),
                                     To->clone(), Downward, Body->clone());
  S->setUnitName(UnitName);
  return S;
}

StmtPtr ProcCallStmt::clone() const {
  auto S =
      std::make_unique<ProcCallStmt>(getLoc(), CalleeName, cloneExprs(Args));
  S->setCallee(Callee);
  return S;
}

StmtPtr GotoStmt::clone() const {
  auto S = std::make_unique<GotoStmt>(getLoc(), Label);
  S->setTargetRoutine(TargetRoutine);
  S->setNonLocal(NonLocal);
  return S;
}

StmtPtr LabeledStmt::clone() const {
  return std::make_unique<LabeledStmt>(getLoc(), Label, Sub->clone());
}

StmtPtr ReadStmt::clone() const {
  return std::make_unique<ReadStmt>(getLoc(), cloneExprs(Targets));
}

StmtPtr WriteStmt::clone() const {
  return std::make_unique<WriteStmt>(getLoc(), cloneExprs(Args), Newline);
}

StmtPtr EmptyStmt::clone() const {
  return std::make_unique<EmptyStmt>(getLoc());
}

//===----------------------------------------------------------------------===//
// RoutineDecl
//===----------------------------------------------------------------------===//

std::string RoutineDecl::qualifiedName() const {
  if (!Parent)
    return Name;
  return Parent->qualifiedName() + "." + Name;
}

VarDecl *RoutineDecl::findLocal(const std::string &VarName) const {
  for (const auto &P : Params)
    if (P->getName() == VarName)
      return P.get();
  for (const auto &L : Locals)
    if (L->getName() == VarName)
      return L.get();
  if (ResultVar && ResultVar->getName() == VarName)
    return ResultVar.get();
  return nullptr;
}

RoutineDecl *RoutineDecl::findNested(const std::string &RoutineName) const {
  for (const auto &R : Nested)
    if (R->getName() == RoutineName)
      return R.get();
  return nullptr;
}

namespace {

/// Bookkeeping for cloneTree: old declaration -> new declaration.
struct CloneMaps {
  std::unordered_map<const VarDecl *, VarDecl *> Vars;
  std::unordered_map<const RoutineDecl *, RoutineDecl *> Routines;
};

std::unique_ptr<VarDecl> cloneVar(const VarDecl &V, CloneMaps &Maps) {
  auto NewV = std::make_unique<VarDecl>(V.getLoc(), V.getName(), V.getType(),
                                        V.getVarKind(), V.getMode());
  Maps.Vars[&V] = NewV.get();
  return NewV;
}

std::unique_ptr<RoutineDecl> cloneRoutineStructure(const RoutineDecl &R,
                                                   CloneMaps &Maps) {
  auto NewR = std::make_unique<RoutineDecl>(R.getLoc(), R.getName(),
                                            R.isFunction(), R.getReturnType());
  Maps.Routines[&R] = NewR.get();
  for (const auto &P : R.getParams()) {
    VarDecl *NP = NewR->addParam(cloneVar(*P, Maps));
    NP->setOwner(NewR.get());
  }
  for (const auto &L : R.getLocals()) {
    VarDecl *NL = NewR->addLocal(cloneVar(*L, Maps));
    NL->setOwner(NewR.get());
  }
  if (const VarDecl *RV = R.getResultVar()) {
    NewR->setResultVar(cloneVar(*RV, Maps));
    NewR->getResultVar()->setOwner(NewR.get());
  }
  NewR->getLabels() = R.getLabels();
  for (const auto &N : R.getNested()) {
    RoutineDecl *NN = NewR->addNested(cloneRoutineStructure(*N, Maps));
    NN->setParent(NewR.get());
  }
  if (R.getBody())
    NewR->setBody(R.getBody()->cloneCompound());
  return NewR;
}

void remapExpr(Expr *E, const CloneMaps &Maps) {
  forEachExprIn(E, [&Maps](Expr *Sub) {
    if (auto *VR = dyn_cast<VarRefExpr>(Sub)) {
      if (VR->getDecl()) {
        auto It = Maps.Vars.find(VR->getDecl());
        if (It != Maps.Vars.end())
          VR->setDecl(It->second);
      }
    } else if (auto *CE = dyn_cast<CallExpr>(Sub)) {
      if (CE->getCallee()) {
        auto It = Maps.Routines.find(CE->getCallee());
        if (It != Maps.Routines.end())
          CE->setCallee(It->second);
      }
    }
  });
}

void remapStmts(RoutineDecl *R, const CloneMaps &Maps) {
  if (R->getBody()) {
    forEachStmt(R->getBody(), [&Maps](Stmt *S) {
      if (auto *PC = dyn_cast<ProcCallStmt>(S)) {
        if (PC->getCallee()) {
          auto It = Maps.Routines.find(PC->getCallee());
          if (It != Maps.Routines.end())
            PC->setCallee(It->second);
        }
      } else if (auto *GS = dyn_cast<GotoStmt>(S)) {
        if (GS->getTargetRoutine()) {
          auto It = Maps.Routines.find(GS->getTargetRoutine());
          if (It != Maps.Routines.end())
            GS->setTargetRoutine(It->second);
        }
      }
    });
    forEachExpr(R->getBody(),
                [&Maps](Expr *E) { remapExpr(E, Maps); });
  }
  for (const auto &N : R->getNested())
    remapStmts(N.get(), Maps);
}

} // namespace

std::unique_ptr<RoutineDecl> RoutineDecl::cloneTree() const {
  CloneMaps Maps;
  std::unique_ptr<RoutineDecl> NewRoot = cloneRoutineStructure(*this, Maps);
  remapStmts(NewRoot.get(), Maps);
  return NewRoot;
}

std::unique_ptr<Program> Program::clone() const {
  auto NewP = std::make_unique<Program>();
  // Clones share our TypeContext: Type pointers inside the cloned AST point
  // into it, so the original program must outlive the clone.
  NewP->SharedTypes = SharedTypes ? SharedTypes : Types.get();
  NewP->TypeDefs = TypeDefs;
  NewP->setMain(Main->cloneTree());
  // Keep the clone immediately interpretable: the batch runtime caches
  // transformed clones and interprets one instance from many threads, so
  // the Interpreter's lazy slot assignment must never trigger on a shared
  // program (it would be a write race).
  if (SlotsAssigned)
    assignStorageSlots(*NewP);
  return NewP;
}

//===----------------------------------------------------------------------===//
// Traversal
//===----------------------------------------------------------------------===//

void gadt::pascal::forEachRoutine(
    RoutineDecl *Root, const std::function<void(RoutineDecl *)> &Fn) {
  Fn(Root);
  for (const auto &N : Root->getNested())
    forEachRoutine(N.get(), Fn);
}

void gadt::pascal::forEachStmt(Stmt *S,
                               const std::function<void(Stmt *)> &Fn) {
  if (!S)
    return;
  Fn(S);
  switch (S->getKind()) {
  case Stmt::Kind::Compound:
    for (const StmtPtr &Sub : cast<CompoundStmt>(S)->getBody())
      forEachStmt(Sub.get(), Fn);
    return;
  case Stmt::Kind::If: {
    auto *IS = cast<IfStmt>(S);
    forEachStmt(IS->getThen(), Fn);
    forEachStmt(IS->getElse(), Fn);
    return;
  }
  case Stmt::Kind::While:
    forEachStmt(cast<WhileStmt>(S)->getBody(), Fn);
    return;
  case Stmt::Kind::Repeat:
    for (const StmtPtr &Sub : cast<RepeatStmt>(S)->getBody())
      forEachStmt(Sub.get(), Fn);
    return;
  case Stmt::Kind::For:
    forEachStmt(cast<ForStmt>(S)->getBody(), Fn);
    return;
  case Stmt::Kind::Labeled:
    forEachStmt(cast<LabeledStmt>(S)->getSub(), Fn);
    return;
  case Stmt::Kind::Assign:
  case Stmt::Kind::ProcCall:
  case Stmt::Kind::Goto:
  case Stmt::Kind::Read:
  case Stmt::Kind::Write:
  case Stmt::Kind::Empty:
    return;
  }
}

void gadt::pascal::forEachExprIn(Expr *E,
                                 const std::function<void(Expr *)> &Fn) {
  if (!E)
    return;
  Fn(E);
  switch (E->getKind()) {
  case Expr::Kind::ArrayLiteral:
    for (const ExprPtr &Sub : cast<ArrayLiteralExpr>(E)->getElements())
      forEachExprIn(Sub.get(), Fn);
    return;
  case Expr::Kind::Index: {
    auto *IE = cast<IndexExpr>(E);
    forEachExprIn(IE->getBase(), Fn);
    forEachExprIn(IE->getIndex(), Fn);
    return;
  }
  case Expr::Kind::Call:
    for (const ExprPtr &Sub : cast<CallExpr>(E)->getArgs())
      forEachExprIn(Sub.get(), Fn);
    return;
  case Expr::Kind::Unary:
    forEachExprIn(cast<UnaryExpr>(E)->getOperand(), Fn);
    return;
  case Expr::Kind::Binary: {
    auto *BE = cast<BinaryExpr>(E);
    forEachExprIn(BE->getLHS(), Fn);
    forEachExprIn(BE->getRHS(), Fn);
    return;
  }
  case Expr::Kind::IntLiteral:
  case Expr::Kind::BoolLiteral:
  case Expr::Kind::StringLiteral:
  case Expr::Kind::VarRef:
    return;
  }
}

void gadt::pascal::forEachExpr(Stmt *S,
                               const std::function<void(Expr *)> &Fn) {
  forEachStmt(S, [&Fn](Stmt *Sub) {
    switch (Sub->getKind()) {
    case Stmt::Kind::Assign: {
      auto *AS = cast<AssignStmt>(Sub);
      forEachExprIn(AS->getTarget(), Fn);
      forEachExprIn(AS->getValue(), Fn);
      return;
    }
    case Stmt::Kind::If:
      forEachExprIn(cast<IfStmt>(Sub)->getCond(), Fn);
      return;
    case Stmt::Kind::While:
      forEachExprIn(cast<WhileStmt>(Sub)->getCond(), Fn);
      return;
    case Stmt::Kind::Repeat:
      forEachExprIn(cast<RepeatStmt>(Sub)->getCond(), Fn);
      return;
    case Stmt::Kind::For: {
      auto *FS = cast<ForStmt>(Sub);
      forEachExprIn(FS->getLoopVar(), Fn);
      forEachExprIn(FS->getFrom(), Fn);
      forEachExprIn(FS->getTo(), Fn);
      return;
    }
    case Stmt::Kind::ProcCall:
      for (const ExprPtr &Arg : cast<ProcCallStmt>(Sub)->getArgs())
        forEachExprIn(Arg.get(), Fn);
      return;
    case Stmt::Kind::Read:
      for (const ExprPtr &T : cast<ReadStmt>(Sub)->getTargets())
        forEachExprIn(T.get(), Fn);
      return;
    case Stmt::Kind::Write:
      for (const ExprPtr &A : cast<WriteStmt>(Sub)->getArgs())
        forEachExprIn(A.get(), Fn);
      return;
    case Stmt::Kind::Compound:
    case Stmt::Kind::Goto:
    case Stmt::Kind::Labeled:
    case Stmt::Kind::Empty:
      return;
    }
  });
}

uint32_t gadt::pascal::assignStorageSlots(Program &P) {
  uint32_t MaxSlots = 0;
  forEachRoutine(P.getMain(), [&MaxSlots](RoutineDecl *R) {
    uint32_t Depth = 0;
    for (const RoutineDecl *Up = R->getParent(); Up; Up = Up->getParent())
      ++Depth;
    std::vector<const VarDecl *> Decls;
    auto Place = [&](VarDecl *V) {
      V->setStorage(static_cast<uint32_t>(Decls.size()), Depth);
      Decls.push_back(V);
    };
    for (const auto &Param : R->getParams())
      Place(Param.get());
    for (const auto &Local : R->getLocals())
      Place(Local.get());
    if (VarDecl *Result = R->getResultVar())
      Place(Result);
    MaxSlots = std::max(MaxSlots, static_cast<uint32_t>(Decls.size()));
    R->setStorageLayout(Depth, std::move(Decls));
  });
  P.setSlotsAssigned(true);
  return MaxSlots;
}

unsigned gadt::pascal::assignNodeIds(Program &P) {
  unsigned Next = 1;
  std::vector<const void *> Table;
  Table.push_back(nullptr); // id 0 = unassigned
  forEachRoutine(P.getMain(), [&Next, &Table](RoutineDecl *R) {
    if (!R->getBody()) {
      R->setNodeIdRange(0, 0, 0);
      return;
    }
    unsigned First = Next;
    forEachStmt(R->getBody(), [&Next, &Table](Stmt *S) {
      S->setId(Next++);
      Table.push_back(S);
    });
    unsigned Stmts = Next - First;
    forEachExpr(R->getBody(), [&Next, &Table](Expr *E) {
      E->setId(Next++);
      Table.push_back(E);
    });
    R->setNodeIdRange(First, Stmts, Next - First);
  });
  P.setNodeTable(std::move(Table));
  return Next - 1;
}
