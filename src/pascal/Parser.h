//===- Parser.h - Pascal recursive-descent parser ---------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent parser for the Pascal subset. Produces an unchecked
/// AST; name resolution and type checking happen in Sema.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_PASCAL_PARSER_H
#define GADT_PASCAL_PARSER_H

#include "pascal/AST.h"
#include "pascal/Lexer.h"
#include "support/Diagnostics.h"

#include <memory>
#include <set>
#include <string_view>
#include <unordered_map>

namespace gadt {
namespace pascal {

/// Parses one program. On any syntax error the parser reports to the
/// diagnostics engine and returns null from \c parseProgram.
class Parser {
public:
  Parser(std::string_view Source, DiagnosticsEngine &Diags);

  /// Parses a complete `program ... end.` unit. Returns null on error.
  std::unique_ptr<Program> parseProgram();

private:
  // Token stream helpers.
  const Token &tok() const { return Tokens[Index]; }
  const Token &peekTok(unsigned Ahead = 1) const {
    size_t I = Index + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  void consume() {
    if (Index + 1 < Tokens.size())
      ++Index;
  }
  bool consumeIf(TokenKind K) {
    if (!tok().is(K))
      return false;
    consume();
    return true;
  }
  /// Consumes \p K or reports "expected ...". Returns success.
  bool expect(TokenKind K, const char *Context);
  void error(const std::string &Message);

  // Grammar productions.
  bool parseBlock(RoutineDecl &R);
  bool parseLabelSection(RoutineDecl &R);
  bool parseTypeSection();
  bool parseConstSection();
  bool parseVarSection(RoutineDecl &R);
  std::unique_ptr<RoutineDecl> parseRoutineDecl(RoutineDecl &Parent);
  bool parseParamList(RoutineDecl &R);
  const Type *parseType();
  int64_t parseArrayBound(bool &Ok);

  // Constant scoping: Pascal `const` names are substituted with their
  // literal values during parsing; declarations in inner scopes shadow
  // outer constants.
  struct ConstScope {
    std::unordered_map<std::string, int64_t> Ints;
    std::unordered_map<std::string, bool> Bools;
    std::set<std::string> Shadowed; ///< var/param/routine names here
  };
  /// Looks up \p Name through the scope stack; returns a literal expression
  /// or null when the name is not a visible constant.
  ExprPtr lookupConst(const std::string &Name, SourceLoc Loc) const;
  bool lookupConstInt(const std::string &Name, int64_t &Out) const;

  std::unique_ptr<CompoundStmt> parseCompound();
  StmtPtr parseStatement();
  StmtPtr parseUnlabeledStatement();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseRepeat();
  StmtPtr parseFor();
  StmtPtr parseAssignOrCall();

  ExprPtr parseExpr();          // relational level
  ExprPtr parseSimpleExpr();    // additive / or
  ExprPtr parseTerm();          // multiplicative / and
  ExprPtr parseFactor();

  std::unique_ptr<Program> Prog;
  std::vector<Token> Tokens;
  size_t Index = 0;
  DiagnosticsEngine &Diags;
  std::unordered_map<std::string, const Type *> TypeTable;
  std::vector<ConstScope> ConstScopes;
};

} // namespace pascal
} // namespace gadt

#endif // GADT_PASCAL_PARSER_H
