//===- Lexer.h - Pascal lexer -----------------------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the Pascal subset. Identifiers and keywords are
/// case-insensitive; `(* ... *)` and `{ ... }` comments are skipped.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_PASCAL_LEXER_H
#define GADT_PASCAL_LEXER_H

#include "pascal/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <string_view>
#include <vector>

namespace gadt {
namespace pascal {

/// Converts a source buffer into a token stream.
///
/// The lexer reports malformed input (unterminated comments/strings, stray
/// characters) to the DiagnosticsEngine and keeps going, so the parser can
/// surface as many problems as possible in one pass.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticsEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Lexes and returns the next token (Eof at end of input, forever after).
  Token next();

  /// Lexes the entire buffer. The last token is always Eof.
  std::vector<Token> lexAll();

private:
  SourceLoc currentLoc() const { return SourceLoc(Line, Column); }
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  bool match(char Expected);
  void skipTrivia();
  Token makeToken(TokenKind Kind, SourceLoc Loc, std::string Text = {});
  Token lexIdentifierOrKeyword(SourceLoc Loc);
  Token lexNumber(SourceLoc Loc);
  Token lexString(SourceLoc Loc);

  std::string_view Source;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace pascal
} // namespace gadt

#endif // GADT_PASCAL_LEXER_H
