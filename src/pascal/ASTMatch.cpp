//===- ASTMatch.cpp - Old→new AST correspondence across edits -------------===//

#include "pascal/ASTMatch.h"

#include "pascal/AST.h"

#include <algorithm>

using namespace gadt;
using namespace gadt::pascal;

bool AstMap::mapHeaderVars(const RoutineDecl *OldR, const RoutineDecl *NewR) {
  const auto &OldP = OldR->getParams();
  const auto &NewP = NewR->getParams();
  if (OldP.size() != NewP.size())
    return false;
  for (size_t I = 0; I != OldP.size(); ++I) {
    if (OldP[I]->getName() != NewP[I]->getName() ||
        OldP[I]->getMode() != NewP[I]->getMode())
      return false;
    Vars[OldP[I].get()] = NewP[I].get();
  }
  const VarDecl *OldRes = OldR->getResultVar();
  const VarDecl *NewRes = NewR->getResultVar();
  if ((OldRes == nullptr) != (NewRes == nullptr))
    return false;
  if (OldRes)
    Vars[OldRes] = NewRes;
  return true;
}

bool AstMap::mapLocalVars(const RoutineDecl *OldR, const RoutineDecl *NewR) {
  const auto &OldL = OldR->getLocals();
  const auto &NewL = NewR->getLocals();
  if (OldL.size() != NewL.size())
    return false;
  for (size_t I = 0; I != OldL.size(); ++I) {
    if (OldL[I]->getName() != NewL[I]->getName())
      return false;
    Vars[OldL[I].get()] = NewL[I].get();
  }
  return true;
}

bool AstMap::mapBody(const RoutineDecl *OldR, const RoutineDecl *NewR) {
  Stmt *OldBody = OldR->getBody();
  Stmt *NewBody = NewR->getBody();
  if ((OldBody == nullptr) != (NewBody == nullptr))
    return false;
  if (!OldBody)
    return true;
  if (!NewProg)
    return false;
  // Equal body fingerprints imply equal preorder shape, hence equal block
  // layout; the counts re-check that before any pointer is written. Zero
  // counts mean sema never numbered this body — nothing to map against.
  const unsigned Count = OldR->getNodeIdCount();
  if (Count == 0 || Count != NewR->getNodeIdCount() ||
      OldR->getNodeIdStmts() != NewR->getNodeIdStmts())
    return false;
  const unsigned OldFirst = OldR->getNodeIdFirst();
  const unsigned NewFirst = NewR->getNodeIdFirst();
  const std::vector<const void *> &Table = NewProg->getNodeTable();
  if (OldFirst == 0 || NewFirst == 0 || NewFirst + Count > Table.size())
    return false;
  if (Nodes.size() < OldFirst + Count)
    Nodes.resize(OldFirst + Count, nullptr);
  std::copy_n(Table.begin() + NewFirst, Count, Nodes.begin() + OldFirst);
  return true;
}
