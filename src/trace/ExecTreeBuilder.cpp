//===- ExecTreeBuilder.cpp - Build trees from interpreter events ----------===//

#include "trace/ExecTreeBuilder.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cassert>

using namespace gadt;
using namespace gadt::trace;
using namespace gadt::interp;

void ExecTreeBuilder::enterUnit(const UnitStart &Start) {
  std::vector<ExecNode> &Nodes = Tree->Nodes;
  if (Nodes.empty())
    Nodes.emplace_back(); // dummy slot 0; ids are 1-based
  assert(Start.NodeId == Nodes.size() &&
         "unit ids must be dense and preorder");
  Nodes.emplace_back();
  ExecNode &N = Nodes.back();
  N.Id = Start.NodeId;
  N.ParentId = OpenIds.empty() ? 0 : OpenIds.back();
  N.Kind = Start.Kind;
  N.Name = Start.Name;
  N.Routine = Start.Routine;
  N.CallStmt = Start.CallStmt;
  N.CallExpr = Start.CallExpr;
  N.LoopStmt = Start.LoopStmt;
  N.IterIndex = Start.IterIndex;
  N.Loc = Start.Loc;
  OpenIds.push_back(Start.NodeId);
}

void ExecTreeBuilder::exitUnit(uint32_t NodeId, std::vector<Binding> Inputs,
                               std::vector<Binding> Outputs) {
  assert(!OpenIds.empty() && OpenIds.back() == NodeId &&
         "exitUnit without matching enterUnit");
  ExecNode &N = Tree->Nodes[NodeId];
  N.Inputs = std::move(Inputs);
  N.Outputs = std::move(Outputs);
  // Every node allocated since this unit entered belongs to its subtree.
  N.Size = static_cast<uint32_t>(Tree->Nodes.size()) - NodeId;
  OpenIds.pop_back();
}

std::unique_ptr<ExecTree> ExecTreeBuilder::takeTree() {
  // Tolerate an aborted run (runtime error mid-trace): close the subtree
  // intervals of units that never exited, keeping navigation well-formed.
  for (auto It = OpenIds.rbegin(); It != OpenIds.rend(); ++It)
    Tree->Nodes[*It].Size = static_cast<uint32_t>(Tree->Nodes.size()) - *It;
  OpenIds.clear();
  if (Tree->size() != 0) {
    static obs::Counter &NodesC =
        obs::Registry::global().counter("tree.nodes");
    static obs::Counter &BytesC =
        obs::Registry::global().counter("tree.bytes");
    NodesC.add(Tree->size());
    BytesC.add(Tree->memoryBytes());
  }
  return std::move(Tree);
}

std::unique_ptr<ExecTree>
gadt::trace::buildExecTree(const pascal::Program &P, InterpOptions Opts,
                           std::vector<int64_t> Input, ExecResult *Result) {
  obs::Span Span("exectree", "trace");
  Span.arg("track_deps", Opts.TrackDeps);
  Interpreter Interp(P, Opts);
  Interp.setInput(std::move(Input));
  ExecTreeBuilder Builder;
  Interp.setListener(&Builder);
  ExecResult Res = Interp.run();
  Span.arg("steps", Res.Steps);
  Span.arg("units", Res.UnitsExecuted);
  Span.arg("ok", Res.Ok);
  if (Result)
    *Result = Res;
  return Builder.takeTree();
}
