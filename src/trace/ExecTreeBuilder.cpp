//===- ExecTreeBuilder.cpp - Build trees from interpreter events ----------===//

#include "trace/ExecTreeBuilder.h"

#include "obs/Trace.h"

#include <cassert>

using namespace gadt;
using namespace gadt::trace;
using namespace gadt::interp;

void ExecTreeBuilder::enterUnit(const UnitStart &Start) {
  auto Node = std::make_unique<ExecNode>(Start.NodeId, Start);
  ExecNode *Raw = Node.get();
  if (Stack.empty()) {
    assert(!PendingRoot && "two roots in one trace");
    PendingRoot = std::move(Node);
  } else {
    Stack.back()->addChild(std::move(Node));
  }
  Stack.push_back(Raw);
}

void ExecTreeBuilder::exitUnit(uint32_t NodeId, std::vector<Binding> Inputs,
                               std::vector<Binding> Outputs) {
  assert(!Stack.empty() && "exitUnit without matching enterUnit");
  ExecNode *N = Stack.back();
  assert(N->getId() == NodeId && "mismatched unit exit");
  (void)NodeId;
  N->setBindings(std::move(Inputs), std::move(Outputs));
  Stack.pop_back();
  if (Stack.empty()) {
    Tree->setRoot(std::move(PendingRoot));
    Tree->forEachNode([this](ExecNode *Node) { Tree->registerNode(Node); });
  }
}

std::unique_ptr<ExecTree> ExecTreeBuilder::takeTree() {
  // Tolerate an aborted run (runtime error mid-trace): attach whatever has
  // been completed so far.
  if (PendingRoot) {
    Tree->setRoot(std::move(PendingRoot));
    Tree->forEachNode([this](ExecNode *Node) { Tree->registerNode(Node); });
    Stack.clear();
  }
  return std::move(Tree);
}

std::unique_ptr<ExecTree>
gadt::trace::buildExecTree(const pascal::Program &P, InterpOptions Opts,
                           std::vector<int64_t> Input, ExecResult *Result) {
  obs::Span Span("exectree", "trace");
  Span.arg("track_deps", Opts.TrackDeps);
  Interpreter Interp(P, Opts);
  Interp.setInput(std::move(Input));
  ExecTreeBuilder Builder;
  Interp.setListener(&Builder);
  ExecResult Res = Interp.run();
  Span.arg("steps", Res.Steps);
  Span.arg("units", Res.UnitsExecuted);
  Span.arg("ok", Res.Ok);
  if (Result)
    *Result = Res;
  return Builder.takeTree();
}
