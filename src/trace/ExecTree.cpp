//===- ExecTree.cpp - Execution trees -------------------------------------===//

#include "trace/ExecTree.h"

using namespace gadt;
using namespace gadt::trace;
using namespace gadt::interp;

const Binding *ExecNode::findOutput(const std::string &Name) const {
  for (const Binding &B : Outputs)
    if (B.Name == Name)
      return &B;
  return nullptr;
}

const Binding *ExecNode::findInput(const std::string &Name) const {
  for (const Binding &B : Inputs)
    if (B.Name == Name)
      return &B;
  return nullptr;
}

std::string ExecNode::signature() const {
  std::string Out = getName();
  if (getKind() == UnitKind::Iteration)
    Out += " iteration " + std::to_string(getIterIndex());

  // A function's result is rendered after the parenthesis, paper-style:
  // decrement(In y: 3)=4.
  const Binding *ResultBinding = nullptr;
  if (getRoutine() && getRoutine()->isFunction() && !Outputs.empty() &&
      Outputs.back().Name == getRoutine()->getName())
    ResultBinding = &Outputs.back();

  Out += "(";
  bool First = true;
  for (const Binding &B : Inputs) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "In " + B.Name + ": " + B.V.str();
  }
  for (const Binding &B : Outputs) {
    if (&B == ResultBinding)
      continue;
    if (!First)
      Out += ", ";
    First = false;
    Out += "Out " + B.Name + ": " + B.V.str();
  }
  Out += ")";
  if (ResultBinding)
    Out += "=" + ResultBinding->V.str();
  return Out;
}

unsigned ExecNode::subtreeSize() const {
  unsigned N = 1;
  for (const auto &C : Children)
    N += C->subtreeSize();
  return N;
}

void ExecTree::setRoot(std::unique_ptr<ExecNode> R) {
  Root = std::move(R);
  if (Root)
    registerNode(Root.get());
}

void ExecTree::registerNode(ExecNode *N) {
  if (ById.size() <= N->getId())
    ById.resize(N->getId() + 1, nullptr);
  ById[N->getId()] = N;
}

ExecNode *ExecTree::node(uint32_t Id) const {
  return Id < ById.size() ? ById[Id] : nullptr;
}

void ExecTree::forEachNode(const std::function<void(ExecNode *)> &Fn) const {
  if (!Root)
    return;
  std::vector<ExecNode *> Stack = {Root.get()};
  while (!Stack.empty()) {
    ExecNode *N = Stack.back();
    Stack.pop_back();
    Fn(N);
    const auto &Children = N->getChildren();
    for (auto It = Children.rbegin(); It != Children.rend(); ++It)
      Stack.push_back(It->get());
  }
}

static void renderNode(const ExecNode *N, unsigned Depth, std::string &Out) {
  Out.append(Depth * 2, ' ');
  Out += N->signature();
  Out += '\n';
  for (const auto &C : N->getChildren())
    renderNode(C.get(), Depth + 1, Out);
}

std::string ExecTree::str() const {
  std::string Out;
  if (Root)
    renderNode(Root.get(), 0, Out);
  return Out;
}

static std::string escapeDot(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string ExecTree::dot(const std::set<uint32_t> *Kept) const {
  std::string Out = "digraph exectree {\n  node [shape=box, "
                    "fontname=\"monospace\"];\n";
  forEachNode([&](ExecNode *N) {
    bool Retained = !Kept || Kept->count(N->getId());
    Out += "  n" + std::to_string(N->getId()) + " [label=\"" +
           escapeDot(N->signature()) + "\"";
    if (!Retained)
      Out += ", style=dashed, color=grey, fontcolor=grey";
    Out += "];\n";
    for (const auto &C : N->getChildren())
      Out += "  n" + std::to_string(N->getId()) + " -> n" +
             std::to_string(C->getId()) + ";\n";
  });
  Out += "}\n";
  return Out;
}
