//===- ExecTree.cpp - Execution trees -------------------------------------===//

#include "trace/ExecTree.h"

using namespace gadt;
using namespace gadt::trace;
using namespace gadt::interp;

const Binding *ExecNode::findOutput(const std::string &Name) const {
  for (const Binding &B : Outputs)
    if (B.Name == Name)
      return &B;
  return nullptr;
}

const Binding *ExecNode::findInput(const std::string &Name) const {
  for (const Binding &B : Inputs)
    if (B.Name == Name)
      return &B;
  return nullptr;
}

std::string ExecNode::signature() const {
  std::string Out = getName();
  if (getKind() == UnitKind::Iteration)
    Out += " iteration " + std::to_string(getIterIndex());

  // A function's result is rendered after the parenthesis, paper-style:
  // decrement(In y: 3)=4.
  const Binding *ResultBinding = nullptr;
  if (getRoutine() && getRoutine()->isFunction() && !Outputs.empty() &&
      Outputs.back().Name == getRoutine()->getName())
    ResultBinding = &Outputs.back();

  Out += "(";
  bool First = true;
  for (const Binding &B : Inputs) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "In ";
    Out += B.Name.str();
    Out += ": ";
    Out += B.V.str();
  }
  for (const Binding &B : Outputs) {
    if (&B == ResultBinding)
      continue;
    if (!First)
      Out += ", ";
    First = false;
    Out += "Out ";
    Out += B.Name.str();
    Out += ": ";
    Out += B.V.str();
  }
  Out += ")";
  if (ResultBinding)
    Out += "=" + ResultBinding->V.str();
  return Out;
}

void ExecTree::forEachNode(const std::function<void(ExecNode *)> &Fn) const {
  for (size_t I = 1; I < Nodes.size(); ++I)
    Fn(const_cast<ExecNode *>(&Nodes[I]));
}

std::string ExecTree::str() const {
  std::string Out;
  // Preorder is id order; depth is the number of enclosing subtree
  // intervals still open, tracked on an explicit end-id stack.
  std::vector<uint32_t> OpenEnds;
  for (size_t I = 1; I < Nodes.size(); ++I) {
    const ExecNode &N = Nodes[I];
    while (!OpenEnds.empty() && N.getId() >= OpenEnds.back())
      OpenEnds.pop_back();
    Out.append(OpenEnds.size() * 2, ' ');
    Out += N.signature();
    Out += '\n';
    OpenEnds.push_back(N.subtreeEnd());
  }
  return Out;
}

static std::string escapeDot(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string ExecTree::dot(const support::NodeSet *Kept) const {
  std::string Out = "digraph exectree {\n  node [shape=box, "
                    "fontname=\"monospace\"];\n";
  for (size_t I = 1; I < Nodes.size(); ++I) {
    const ExecNode &N = Nodes[I];
    bool Retained = !Kept || Kept->count(N.getId());
    Out += "  n" + std::to_string(N.getId()) + " [label=\"" +
           escapeDot(N.signature()) + "\"";
    if (!Retained)
      Out += ", style=dashed, color=grey, fontcolor=grey";
    Out += "];\n";
    for (const ExecNode *C = N.firstChild(); C; C = C->nextSibling())
      Out += "  n" + std::to_string(N.getId()) + " -> n" +
             std::to_string(C->getId()) + ";\n";
  }
  Out += "}\n";
  return Out;
}

size_t ExecTree::memoryBytes() const {
  size_t Bytes = Nodes.capacity() * sizeof(ExecNode);
  for (const ExecNode &N : Nodes) {
    Bytes += (N.getInputs().capacity() + N.getOutputs().capacity()) *
             sizeof(Binding);
    for (const Binding &B : N.getInputs())
      if (B.V.isArray())
        Bytes += B.V.asArray().Elems.capacity() * sizeof(int64_t);
    for (const Binding &B : N.getOutputs())
      if (B.V.isArray())
        Bytes += B.V.asArray().Elems.capacity() * sizeof(int64_t);
  }
  return Bytes;
}
