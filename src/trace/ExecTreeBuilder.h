//===- ExecTreeBuilder.h - Build trees from interpreter events --*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical TraceListener: assembles an ExecTree from the
/// interpreter's unit enter/exit events (the paper's tracing phase).
///
/// The interpreter assigns unit ids densely in preorder (entry order), so
/// enterUnit appends the node at index id of the arena and exitUnit fixes
/// the subtree size as "nodes allocated since entry" — the interval
/// [id, id + size) invariant costs nothing extra to establish.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_TRACE_EXECTREEBUILDER_H
#define GADT_TRACE_EXECTREEBUILDER_H

#include "interp/Interpreter.h"
#include "trace/ExecTree.h"

#include <memory>
#include <vector>

namespace gadt {
namespace trace {

/// Collects unit events into an ExecTree. One builder builds one tree;
/// call \c takeTree after the run.
class ExecTreeBuilder : public interp::TraceListener {
public:
  ExecTreeBuilder() : Tree(std::make_unique<ExecTree>()) {}

  void enterUnit(const interp::UnitStart &Start) override;
  void exitUnit(uint32_t NodeId, std::vector<interp::Binding> Inputs,
                std::vector<interp::Binding> Outputs) override;

  /// Hands over the finished tree (the builder is empty afterwards).
  /// Tolerates an aborted run: units that never exited get their subtree
  /// sizes closed off here, with whatever bindings were recorded.
  std::unique_ptr<ExecTree> takeTree();

private:
  std::unique_ptr<ExecTree> Tree;
  /// Ids (not pointers — the arena may reallocate) of entered-but-not-yet-
  /// exited units, innermost last.
  std::vector<uint32_t> OpenIds;
};

/// Convenience: runs \p P (with optional input) and returns the execution
/// tree, or null when execution failed. \p Result receives the run outcome.
std::unique_ptr<ExecTree> buildExecTree(const pascal::Program &P,
                                        interp::InterpOptions Opts,
                                        std::vector<int64_t> Input,
                                        interp::ExecResult *Result = nullptr);

} // namespace trace
} // namespace gadt

#endif // GADT_TRACE_EXECTREEBUILDER_H
