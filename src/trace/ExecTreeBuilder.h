//===- ExecTreeBuilder.h - Build trees from interpreter events --*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical TraceListener: assembles an ExecTree from the
/// interpreter's unit enter/exit events (the paper's tracing phase).
///
//===----------------------------------------------------------------------===//

#ifndef GADT_TRACE_EXECTREEBUILDER_H
#define GADT_TRACE_EXECTREEBUILDER_H

#include "interp/Interpreter.h"
#include "trace/ExecTree.h"

#include <memory>
#include <vector>

namespace gadt {
namespace trace {

/// Collects unit events into an ExecTree. One builder builds one tree;
/// call \c takeTree after the run.
class ExecTreeBuilder : public interp::TraceListener {
public:
  ExecTreeBuilder() : Tree(std::make_unique<ExecTree>()) {}

  void enterUnit(const interp::UnitStart &Start) override;
  void exitUnit(uint32_t NodeId, std::vector<interp::Binding> Inputs,
                std::vector<interp::Binding> Outputs) override;

  /// Hands over the finished tree (the builder is empty afterwards).
  std::unique_ptr<ExecTree> takeTree();

private:
  std::unique_ptr<ExecTree> Tree;
  std::vector<ExecNode *> Stack;
  std::unique_ptr<ExecNode> PendingRoot;
};

/// Convenience: runs \p P (with optional input) and returns the execution
/// tree, or null when execution failed. \p Result receives the run outcome.
std::unique_ptr<ExecTree> buildExecTree(const pascal::Program &P,
                                        interp::InterpOptions Opts,
                                        std::vector<int64_t> Input,
                                        interp::ExecResult *Result = nullptr);

} // namespace trace
} // namespace gadt

#endif // GADT_TRACE_EXECTREEBUILDER_H
