//===- ExecTree.h - Execution trees -----------------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution tree of the paper's tracing phase (Section 5.2): one node
/// per unit execution (procedure/function call, local loop, iteration),
/// annotated with input and output bindings. The algorithmic debugger
/// traverses this tree; the slicing subsystem prunes it.
///
/// The tree is an arena: one flat array of nodes indexed by the
/// interpreter-assigned unit id (dense, preorder by entry time, 1-based —
/// slot 0 is unused). Preorder ids make every subtree a contiguous id
/// interval [id, id + size): subtree weight is O(1) from the size stored at
/// build time, pruning skips a discarded subtree by jumping over its
/// interval, and child/sibling/parent navigation is pointer arithmetic —
/// no per-node unique_ptr, child vector, or recursive destructor.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_TRACE_EXECTREE_H
#define GADT_TRACE_EXECTREE_H

#include "interp/Interpreter.h"
#include "support/NodeSet.h"

#include <functional>
#include <string>
#include <vector>

namespace gadt {
namespace trace {

class ExecTree;
class ExecTreeBuilder;

/// One unit execution, stored inline in the tree's node array. Nodes are
/// created only by ExecTreeBuilder; navigation relies on the node living
/// at index Id of a preorder-contiguous arena.
class ExecNode {
public:
  uint32_t getId() const { return Id; }
  interp::UnitKind getKind() const { return Kind; }
  const std::string &getName() const { return Name.str(); }
  support::Symbol getNameSymbol() const { return Name; }
  const pascal::RoutineDecl *getRoutine() const { return Routine; }
  const pascal::Stmt *getCallStmt() const { return CallStmt; }
  const pascal::Expr *getCallExpr() const { return CallExpr; }
  const pascal::Stmt *getLoopStmt() const { return LoopStmt; }
  uint32_t getIterIndex() const { return IterIndex; }
  SourceLoc getLoc() const { return Loc; }

  const std::vector<interp::Binding> &getInputs() const { return Inputs; }
  const std::vector<interp::Binding> &getOutputs() const { return Outputs; }

  /// Number of nodes in this subtree (including this node) — O(1), stored
  /// when the unit exited during tracing.
  unsigned subtreeSize() const { return Size; }
  /// This subtree occupies exactly the id interval [getId(), subtreeEnd()).
  uint32_t subtreeEnd() const { return Id + Size; }

  ExecNode *getParent() const {
    return ParentId ? const_cast<ExecNode *>(this) - (Id - ParentId) : nullptr;
  }
  uint32_t getParentId() const { return ParentId; }

  /// First child, or null for a leaf. A node's first child, if any, is its
  /// immediate preorder successor.
  ExecNode *firstChild() const {
    return Size > 1 ? const_cast<ExecNode *>(this) + 1 : nullptr;
  }
  /// Next sibling under the same parent, or null. The sibling starts right
  /// after this subtree's interval, if the parent's interval extends there.
  ExecNode *nextSibling() const {
    if (!ParentId)
      return nullptr;
    const ExecNode *P = getParent();
    if (Id + Size >= P->Id + P->Size)
      return nullptr;
    return const_cast<ExecNode *>(this) + Size;
  }

  /// The node with id \p OtherId of the same tree (arena index; \p OtherId
  /// must be a valid id of this node's tree).
  ExecNode *nodeAt(uint32_t OtherId) const {
    return const_cast<ExecNode *>(this) + (static_cast<int64_t>(OtherId) -
                                           static_cast<int64_t>(Id));
  }

  /// Lazy child sequence over the sibling chain. Iteration yields
  /// ExecNode*; size()/operator[] walk the chain (children are not stored,
  /// they are derived from subtree intervals).
  class ChildRange {
  public:
    class iterator {
    public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = ExecNode *;
      using difference_type = std::ptrdiff_t;
      using pointer = ExecNode *const *;
      using reference = ExecNode *;

      explicit iterator(ExecNode *N) : N(N) {}
      ExecNode *operator*() const { return N; }
      iterator &operator++() {
        N = N->nextSibling();
        return *this;
      }
      bool operator==(const iterator &O) const { return N == O.N; }
      bool operator!=(const iterator &O) const { return N != O.N; }

    private:
      ExecNode *N;
    };

    explicit ChildRange(ExecNode *First) : First(First) {}
    iterator begin() const { return iterator(First); }
    iterator end() const { return iterator(nullptr); }
    bool empty() const { return First == nullptr; }
    size_t size() const {
      size_t N = 0;
      for (ExecNode *C = First; C; C = C->nextSibling())
        ++N;
      return N;
    }
    ExecNode *operator[](size_t I) const {
      ExecNode *C = First;
      while (I--)
        C = C->nextSibling();
      return C;
    }
    ExecNode *front() const { return First; }

  private:
    ExecNode *First;
  };

  ChildRange getChildren() const {
    return ChildRange(firstChild());
  }

  /// Finds the output binding with the given name; null when absent.
  const interp::Binding *findOutput(const std::string &Name) const;
  /// Finds the input binding with the given name; null when absent.
  const interp::Binding *findInput(const std::string &Name) const;

  /// Renders the node in the paper's dialogue notation, e.g.
  /// "computs(In y: 3, Out r1: 12, Out r2: 9)" or "decrement(In y: 3)=4".
  std::string signature() const;

private:
  friend class ExecTree;
  friend class ExecTreeBuilder;

  uint32_t Id = 0;
  uint32_t ParentId = 0;
  uint32_t Size = 1; ///< subtree size including self; finalized at unit exit
  uint32_t IterIndex = 0;
  interp::UnitKind Kind = interp::UnitKind::Call;
  support::Symbol Name;
  const pascal::RoutineDecl *Routine = nullptr;
  const pascal::Stmt *CallStmt = nullptr;
  const pascal::Expr *CallExpr = nullptr;
  const pascal::Stmt *LoopStmt = nullptr;
  SourceLoc Loc;
  std::vector<interp::Binding> Inputs;
  std::vector<interp::Binding> Outputs;
};

/// The whole tree: a flat preorder arena, index == unit id.
class ExecTree {
public:
  /// The root (id 1), or null for an empty tree.
  ExecNode *getRoot() const {
    return Nodes.size() > 1 ? const_cast<ExecNode *>(&Nodes[1]) : nullptr;
  }

  /// Node lookup by interpreter unit id; null when unknown. O(1).
  ExecNode *node(uint32_t Id) const {
    return Id >= 1 && Id < Nodes.size() ? const_cast<ExecNode *>(&Nodes[Id])
                                        : nullptr;
  }

  /// Number of nodes.
  unsigned size() const {
    return Nodes.empty() ? 0 : static_cast<unsigned>(Nodes.size() - 1);
  }
  /// Ids are exactly 1 .. maxNodeId().
  uint32_t maxNodeId() const { return size(); }

  /// Calls \p Fn on every node, preorder. Preorder is id order, so this is
  /// a linear sweep — no stack, no recursion.
  void forEachNode(const std::function<void(ExecNode *)> &Fn) const;

  /// Renders the tree as an indented listing of node signatures, matching
  /// the paper's Figures 7-9 presentation. Iterative: tree depth only
  /// bounds a small id stack, never the C++ call stack.
  std::string str() const;

  /// Renders the tree in Graphviz DOT syntax. When \p Kept is non-null,
  /// nodes outside the set are drawn dashed/grey — visualizing exactly what
  /// a slice pruned (Figures 8/9 as pictures). Signatures are escaped, so
  /// string-valued bindings produce valid DOT.
  std::string dot(const support::NodeSet *Kept = nullptr) const;

  /// Approximate heap footprint of the arena and its bindings, for the
  /// tree.bytes gauge.
  size_t memoryBytes() const;

private:
  friend class ExecTreeBuilder;

  std::vector<ExecNode> Nodes; ///< [0] is an unused dummy slot
};

} // namespace trace
} // namespace gadt

#endif // GADT_TRACE_EXECTREE_H
