//===- ExecTree.h - Execution trees -----------------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution tree of the paper's tracing phase (Section 5.2): one node
/// per unit execution (procedure/function call, local loop, iteration),
/// annotated with input and output bindings. The algorithmic debugger
/// traverses this tree; the slicing subsystem prunes it.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_TRACE_EXECTREE_H
#define GADT_TRACE_EXECTREE_H

#include "interp/Interpreter.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace gadt {
namespace trace {

/// One unit execution. Ids are the interpreter-assigned unit ids (dense,
/// preorder by entry time, 1-based; the root is id 1).
class ExecNode {
public:
  ExecNode(uint32_t Id, interp::UnitStart Start)
      : Id(Id), Start(std::move(Start)) {}

  uint32_t getId() const { return Id; }
  interp::UnitKind getKind() const { return Start.Kind; }
  const std::string &getName() const { return Start.Name; }
  const pascal::RoutineDecl *getRoutine() const { return Start.Routine; }
  const pascal::Stmt *getCallStmt() const { return Start.CallStmt; }
  const pascal::Expr *getCallExpr() const { return Start.CallExpr; }
  const pascal::Stmt *getLoopStmt() const { return Start.LoopStmt; }
  uint32_t getIterIndex() const { return Start.IterIndex; }
  SourceLoc getLoc() const { return Start.Loc; }

  const std::vector<interp::Binding> &getInputs() const { return Inputs; }
  const std::vector<interp::Binding> &getOutputs() const { return Outputs; }
  void setBindings(std::vector<interp::Binding> In,
                   std::vector<interp::Binding> Out) {
    Inputs = std::move(In);
    Outputs = std::move(Out);
  }

  ExecNode *getParent() const { return Parent; }
  const std::vector<std::unique_ptr<ExecNode>> &getChildren() const {
    return Children;
  }
  ExecNode *addChild(std::unique_ptr<ExecNode> Child) {
    Child->Parent = this;
    Children.push_back(std::move(Child));
    return Children.back().get();
  }

  /// Finds the output binding with the given name; null when absent.
  const interp::Binding *findOutput(const std::string &Name) const;
  /// Finds the input binding with the given name; null when absent.
  const interp::Binding *findInput(const std::string &Name) const;

  /// Renders the node in the paper's dialogue notation, e.g.
  /// "computs(In y: 3, Out r1: 12, Out r2: 9)" or "decrement(In y: 3)=4".
  std::string signature() const;

  /// Number of nodes in this subtree (including this node).
  unsigned subtreeSize() const;

private:
  uint32_t Id;
  interp::UnitStart Start;
  std::vector<interp::Binding> Inputs;
  std::vector<interp::Binding> Outputs;
  ExecNode *Parent = nullptr;
  std::vector<std::unique_ptr<ExecNode>> Children;
};

/// The whole tree plus an id-indexed view.
class ExecTree {
public:
  ExecNode *getRoot() const { return Root.get(); }
  void setRoot(std::unique_ptr<ExecNode> R);

  /// Node lookup by interpreter unit id; null when unknown.
  ExecNode *node(uint32_t Id) const;

  unsigned size() const { return Root ? Root->subtreeSize() : 0; }

  /// Registers \p N in the id index (builder use).
  void registerNode(ExecNode *N);

  /// Calls \p Fn on every node, preorder.
  void forEachNode(const std::function<void(ExecNode *)> &Fn) const;

  /// Renders the tree as an indented listing of node signatures, matching
  /// the paper's Figures 7-9 presentation.
  std::string str() const;

  /// Renders the tree in Graphviz DOT syntax. When \p Kept is non-null,
  /// nodes outside the set are drawn dashed/grey — visualizing exactly what
  /// a slice pruned (Figures 8/9 as pictures).
  std::string dot(const std::set<uint32_t> *Kept = nullptr) const;

private:
  std::unique_ptr<ExecNode> Root;
  std::vector<ExecNode *> ById; // index = id (0 unused)
};

} // namespace trace
} // namespace gadt

#endif // GADT_TRACE_EXECTREE_H
