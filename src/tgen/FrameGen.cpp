//===- FrameGen.cpp - Test frame generation -------------------------------===//

#include "tgen/FrameGen.h"

using namespace gadt;
using namespace gadt::tgen;

std::string TestFrame::encode() const {
  std::string Out;
  for (size_t I = 0; I != ChoiceNames.size(); ++I) {
    if (I != 0)
      Out += '.';
    Out += ChoiceNames[I];
  }
  return Out;
}

std::string TestFrame::str() const {
  std::string Out = "(";
  for (size_t I = 0; I != ChoiceNames.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += ChoiceNames[I];
  }
  Out += ")";
  return Out;
}

const std::vector<size_t> *
FrameSet::framesOfScript(const std::string &Name) const {
  for (const auto &[ScriptName, Indices] : Scripts)
    if (ScriptName == Name)
      return &Indices;
  return nullptr;
}

namespace {

/// Recursively enumerates combinations of ordinary (non-SINGLE, non-ERROR)
/// choices whose selectors hold.
void enumerate(const TestSpec &Spec, size_t CatIndex, TestFrame &Partial,
               std::vector<TestFrame> &Out) {
  if (CatIndex == Spec.Categories.size()) {
    Out.push_back(Partial);
    return;
  }
  const Category &Cat = Spec.Categories[CatIndex];
  for (const Choice &Ch : Cat.Choices) {
    if (Ch.Single || Ch.Error)
      continue;
    if (!Ch.If.eval(Partial.Properties))
      continue;
    Partial.ChoiceNames.push_back(Ch.Name);
    std::vector<std::string> Added;
    for (const std::string &P : Ch.Properties)
      if (Partial.Properties.insert(P).second)
        Added.push_back(P);
    enumerate(Spec, CatIndex + 1, Partial, Out);
    Partial.ChoiceNames.pop_back();
    for (const std::string &P : Added)
      Partial.Properties.erase(P);
  }
}

/// Builds the one frame generated for a SINGLE/ERROR choice: the marked
/// choice in its own category, the first selectable ordinary choice in
/// every other category. Returns false when no consistent completion
/// exists.
bool buildMarkedFrame(const TestSpec &Spec, size_t MarkedCat,
                      const Choice &Marked, TestFrame &Out) {
  Out = TestFrame();
  Out.IsError = Marked.Error;
  Out.IsSingle = Marked.Single;
  for (size_t CI = 0; CI != Spec.Categories.size(); ++CI) {
    const Category &Cat = Spec.Categories[CI];
    const Choice *Picked = nullptr;
    if (CI == MarkedCat) {
      if (Marked.If.eval(Out.Properties))
        Picked = &Marked;
    } else {
      for (const Choice &Ch : Cat.Choices) {
        if (Ch.Single || Ch.Error)
          continue;
        if (Ch.If.eval(Out.Properties)) {
          Picked = &Ch;
          break;
        }
      }
    }
    if (!Picked)
      return false;
    Out.ChoiceNames.push_back(Picked->Name);
    Out.Properties.insert(Picked->Properties.begin(),
                          Picked->Properties.end());
  }
  return true;
}

} // namespace

FrameSet gadt::tgen::generateFrames(const TestSpec &Spec) {
  FrameSet Set;

  // Ordinary combinations first.
  TestFrame Partial;
  enumerate(Spec, 0, Partial, Set.Frames);

  // One frame per SINGLE/ERROR choice (paper: "Only one frame is generated
  // for each choice associated with the SINGLE property").
  for (size_t CI = 0; CI != Spec.Categories.size(); ++CI)
    for (const Choice &Ch : Spec.Categories[CI].Choices) {
      if (!Ch.Single && !Ch.Error)
        continue;
      TestFrame Frame;
      if (buildMarkedFrame(Spec, CI, Ch, Frame))
        Set.Frames.push_back(std::move(Frame));
    }

  // Script assignment: each frame goes to every script whose selector it
  // satisfies; frames matching none go to "default".
  for (const Bucket &Script : Spec.Scripts)
    Set.Scripts.push_back({Script.Name, {}});
  std::vector<size_t> Unassigned;
  for (size_t FI = 0; FI != Set.Frames.size(); ++FI) {
    bool Matched = false;
    for (size_t SI = 0; SI != Spec.Scripts.size(); ++SI)
      if (Spec.Scripts[SI].If.eval(Set.Frames[FI].Properties)) {
        Set.Scripts[SI].second.push_back(FI);
        Matched = true;
      }
    if (!Matched)
      Unassigned.push_back(FI);
  }
  if (!Unassigned.empty())
    Set.Scripts.push_back({"default", std::move(Unassigned)});

  // Result buckets: first matching result selector.
  Set.ResultOf.resize(Set.Frames.size());
  for (size_t FI = 0; FI != Set.Frames.size(); ++FI)
    for (const Bucket &Res : Spec.Results)
      if (Res.If.eval(Set.Frames[FI].Properties)) {
        Set.ResultOf[FI] = Res.Name;
        break;
      }
  return Set;
}
