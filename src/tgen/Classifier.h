//===- Classifier.h - Concrete input to test frame mapping ------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The debugging-time half of T-GEN integration (paper Section 5.3.2):
/// "For a given input ... a function can be defined which automatically
/// selects the suitable test frame." Here those selector functions are the
/// `when` classifier expressions of the specification, evaluated over
/// *feature variables* derived from the concrete input bindings of an
/// execution-tree node.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_TGEN_CLASSIFIER_H
#define GADT_TGEN_CLASSIFIER_H

#include "interp/Interpreter.h"
#include "tgen/ConstEval.h"
#include "tgen/FrameGen.h"
#include "tgen/TestSpec.h"

#include <optional>
#include <vector>

namespace gadt {
namespace tgen {

/// Derives the feature environment from concrete input bindings:
///  - each integer/boolean input under its own name;
///  - for each array input `a`: `a_len` (element count), and when nonempty
///    `a_min`, `a_max`, `a_spread` (max - min).
ValueEnv extractFeatures(const std::vector<interp::Binding> &Inputs);

/// Selects, per category, the first choice whose selector holds for the
/// properties accumulated so far and whose `when` classifier is true for
/// \p Features. Returns nullopt when some category has no automatically
/// selectable choice — the case where the paper falls back to asking the
/// user to pick from a menu.
std::optional<TestFrame> classifyFeatures(const TestSpec &Spec,
                                          const ValueEnv &Features);

/// Convenience: features straight from bindings.
std::optional<TestFrame>
classifyInputs(const TestSpec &Spec,
               const std::vector<interp::Binding> &Inputs);

} // namespace tgen
} // namespace gadt

#endif // GADT_TGEN_CLASSIFIER_H
