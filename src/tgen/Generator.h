//===- Generator.h - Executable test cases from specifications -*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spec-driven test-case instantiation (paper Section 2: "By extending the
/// test specification with declarations and executable statements the
/// system can generate executable test cases from test frames"). A
/// specification that declares its parameters (`params a, n, out b;`) and
/// attaches `gen` bindings to its choices can turn every frame into
/// concrete argument values without host-language callbacks.
///
/// Generator expressions use the classifier grammar plus builtins:
///   fill(count, elem)  — array [1..count], elem evaluated with i = 1..count
///   max(x, y), min(x, y), abs(x)
///
/// Bindings evaluate in category order; later bindings see (and may
/// override) earlier ones, so `type_of_elements` can use the `n` bound by
/// `size_of_array`.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_TGEN_GENERATOR_H
#define GADT_TGEN_GENERATOR_H

#include "tgen/ConstEval.h"
#include "tgen/FrameGen.h"
#include "tgen/ReportDB.h"
#include "tgen/TestSpec.h"

#include <optional>
#include <vector>

namespace gadt {
namespace tgen {

/// Evaluates a generator expression (classifier grammar + fill/max/min/abs)
/// over \p Env. Returns nullopt on unbound names or invalid arguments.
std::optional<interp::Value> evalGenExpr(const pascal::Expr *E,
                                         const ValueEnv &Env);

/// Instantiates \p Frame into argument values for Spec.TestName using the
/// spec's own `params` and `gen` clauses. Out parameters become unset
/// values. Returns nullopt when the spec has no generators, when a frame
/// choice cannot be found, or when some non-out parameter ends up unbound.
std::optional<std::vector<interp::Value>>
instantiateFrame(const TestSpec &Spec, const TestFrame &Frame);

/// A FrameInstantiator backed by the spec itself — plug-compatible with
/// runTestSuite.
FrameInstantiator specInstantiator(const TestSpec &Spec);

} // namespace tgen
} // namespace gadt

#endif // GADT_TGEN_GENERATOR_H
