//===- FrameGen.h - Test frame generation -----------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generation of test frames from a category-partition specification
/// (paper Section 2): all combinations of one choice per category whose
/// selector expressions hold, SINGLE/ERROR choices contributing exactly one
/// frame each, and frames grouped into test scripts and result buckets by
/// their selectors.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_TGEN_FRAMEGEN_H
#define GADT_TGEN_FRAMEGEN_H

#include "tgen/TestSpec.h"

#include <set>
#include <string>
#include <vector>

namespace gadt {
namespace tgen {

/// One test frame: a choice from each category plus the accumulated
/// property set.
struct TestFrame {
  /// Choice name per category, in category order.
  std::vector<std::string> ChoiceNames;
  std::set<std::string> Properties;
  bool IsError = false;  ///< contains an ERROR choice
  bool IsSingle = false; ///< generated for a SINGLE choice

  /// The paper stores reports "in a coded form of the test frames": the
  /// dot-joined choice names, e.g. "more.mixed.large".
  std::string encode() const;
  /// The paper's display form: "(more, mixed, large)".
  std::string str() const;
};

/// Frames plus their script/result assignment.
struct FrameSet {
  std::vector<TestFrame> Frames;
  /// Script name -> indices into Frames. Frames matching no script land in
  /// the "default" entry.
  std::vector<std::pair<std::string, std::vector<size_t>>> Scripts;
  /// Result bucket per frame ("" when none matches).
  std::vector<std::string> ResultOf;

  const std::vector<size_t> *framesOfScript(const std::string &Name) const;
};

/// Generates all frames of \p Spec, applies SINGLE/ERROR semantics, and
/// assigns scripts and result buckets.
FrameSet generateFrames(const TestSpec &Spec);

} // namespace tgen
} // namespace gadt

#endif // GADT_TGEN_FRAMEGEN_H
