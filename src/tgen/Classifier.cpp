//===- Classifier.cpp - Concrete input to test frame mapping --------------===//

#include "tgen/Classifier.h"

#include <algorithm>

using namespace gadt;
using namespace gadt::tgen;
using namespace gadt::interp;

ValueEnv gadt::tgen::extractFeatures(const std::vector<Binding> &Inputs) {
  ValueEnv Env;
  for (const Binding &B : Inputs) {
    if (B.V.isInt() || B.V.isBool()) {
      Env[B.Name] = B.V;
      continue;
    }
    if (!B.V.isArray())
      continue;
    const ArrayVal &Arr = B.V.asArray();
    Env[B.Name] = B.V; // full array, for element classifiers
    const std::string &Name = B.Name.str();
    Env[Name + "_len"] =
        Value::makeInt(static_cast<int64_t>(Arr.Elems.size()));
    if (!Arr.Elems.empty()) {
      auto [MinIt, MaxIt] =
          std::minmax_element(Arr.Elems.begin(), Arr.Elems.end());
      Env[Name + "_min"] = Value::makeInt(*MinIt);
      Env[Name + "_max"] = Value::makeInt(*MaxIt);
      Env[Name + "_spread"] = Value::makeInt(*MaxIt - *MinIt);
    }
  }
  return Env;
}

std::optional<TestFrame>
gadt::tgen::classifyFeatures(const TestSpec &Spec, const ValueEnv &Features) {
  TestFrame Frame;
  for (const Category &Cat : Spec.Categories) {
    const Choice *Picked = nullptr;
    for (const Choice &Ch : Cat.Choices) {
      if (!Ch.When)
        continue; // not automatically selectable
      if (!Ch.If.eval(Frame.Properties))
        continue;
      auto Holds = evalPredicate(Ch.When.get(), Features);
      if (Holds && *Holds) {
        Picked = &Ch;
        break;
      }
    }
    if (!Picked)
      return std::nullopt;
    Frame.ChoiceNames.push_back(Picked->Name);
    Frame.Properties.insert(Picked->Properties.begin(),
                            Picked->Properties.end());
    Frame.IsError |= Picked->Error;
    Frame.IsSingle |= Picked->Single;
  }
  return Frame;
}

std::optional<TestFrame>
gadt::tgen::classifyInputs(const TestSpec &Spec,
                           const std::vector<Binding> &Inputs) {
  return classifyFeatures(Spec, extractFeatures(Inputs));
}
