//===- TestSpec.h - T-GEN test specifications -------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The category-partition test specification language of T-GEN (paper
/// Section 2, extending Ostrand-Balcer's category partition method with
/// test scripts, result categories, executable test cases and test
/// reports). A specification, mirroring the paper's Figure 1:
///
///   test arrsum;
///   category size_of_array;
///     zero : property SINGLE when n = 0;
///     one  : property SINGLE when n = 1;
///     two  : when n = 2;
///     more : property MORE when n > 2;
///   category type_of_elements;
///     positive : when a_min > 0;
///     negative : when a_max < 0;
///     mixed    : if MORE property MIXED when (a_min <= 0) and (a_max >= 0);
///   category deviation;
///     small   : if not MIXED;
///     large   : if MIXED when a_spread > 10;
///     average : if MIXED when a_spread <= 10;
///   scripts
///     script_1 : if MIXED;
///     script_2 : if not MIXED;
///   result
///     result_1 : if MIXED;
///   end.
///
/// `property P` attaches a property name usable in later `if` selector
/// expressions; SINGLE and ERROR are the Ostrand-Balcer markers (one frame
/// per such choice). `when <expr>` is this implementation's realization of
/// the paper's "automatic test frame selector functions": a boolean
/// expression over *feature variables* derived from concrete input values,
/// evaluated when the debugger classifies a call (Section 5.3.2).
///
//===----------------------------------------------------------------------===//

#ifndef GADT_TGEN_TESTSPEC_H
#define GADT_TGEN_TESTSPEC_H

#include "pascal/AST.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace gadt {
namespace tgen {

/// A selector expression over property names (`if MORE and not MIXED`).
class Selector {
public:
  enum class Kind : uint8_t { True, Prop, Not, And, Or };

  static Selector alwaysTrue() { return Selector(Kind::True); }
  static Selector prop(std::string Name);
  static Selector notOf(Selector S);
  static Selector andOf(Selector L, Selector R);
  static Selector orOf(Selector L, Selector R);

  Kind getKind() const { return K; }

  /// Evaluates against the set of properties established so far.
  bool eval(const std::set<std::string> &Properties) const;

  /// Renders in source syntax ("more and not mixed"); "true" when trivial.
  std::string str() const;

private:
  explicit Selector(Kind K) : K(K) {}

  Kind K;
  std::string PropName;
  std::shared_ptr<const Selector> LHS;
  std::shared_ptr<const Selector> RHS;
};

/// One choice within a category.
struct Choice {
  std::string Name;
  /// Guard over properties of earlier choices; alwaysTrue when omitted.
  Selector If = Selector::alwaysTrue();
  /// Properties this choice establishes (lowercased).
  std::vector<std::string> Properties;
  /// Ostrand-Balcer markers.
  bool Single = false;
  bool Error = false;
  /// Classifier over feature variables; null when the choice cannot be
  /// selected automatically.
  pascal::ExprPtr When;
  /// Generator bindings (`gen n := 7, a := fill(n, 3 * i + 1)`): evaluated
  /// in category order to turn a frame into executable test-case inputs
  /// (the paper: "By extending the test specification ... the system can
  /// generate executable test cases from test frames").
  std::vector<std::pair<std::string, pascal::ExprPtr>> Gens;
};

/// One category (a critical property of an input parameter or of the
/// environment).
struct Category {
  std::string Name;
  std::vector<Choice> Choices;
};

/// A named script or result bucket with its selector.
struct Bucket {
  std::string Name;
  Selector If = Selector::alwaysTrue();
};

/// A parameter of the routine under test, as declared in the optional
/// `params` section (`params a, n, out b;`). Out parameters receive no
/// generated value.
struct ParamSpec {
  std::string Name;
  bool IsOut = false;
};

/// A whole specification for one procedure under test.
struct TestSpec {
  std::string TestName; ///< routine under test (lowercased)
  std::vector<ParamSpec> Params;
  std::vector<Category> Categories;
  std::vector<Bucket> Scripts;
  std::vector<Bucket> Results;

  const Category *findCategory(const std::string &Name) const;
  /// True when the spec can instantiate frames by itself (params declared
  /// and generator bindings present).
  bool hasGenerators() const;
};

} // namespace tgen
} // namespace gadt

#endif // GADT_TGEN_TESTSPEC_H
