//===- Generator.cpp - Executable test cases from specifications ----------===//

#include "tgen/Generator.h"

#include "support/Casting.h"

#include <algorithm>

using namespace gadt;
using namespace gadt::tgen;
using namespace gadt::interp;
using namespace gadt::pascal;

std::optional<Value> gadt::tgen::evalGenExpr(const Expr *E,
                                             const ValueEnv &Env) {
  if (const auto *CE = dyn_cast<CallExpr>(E)) {
    const std::string &Name = CE->getCalleeName();
    const auto &Args = CE->getArgs();

    if (Name == "fill") {
      if (Args.size() != 2)
        return std::nullopt;
      auto Count = evalGenExpr(Args[0].get(), Env);
      if (!Count || !Count->isInt() || Count->asInt() < 0 ||
          Count->asInt() > 1000000)
        return std::nullopt;
      ArrayVal Arr;
      Arr.Lo = 1;
      Arr.Hi = Count->asInt();
      for (int64_t I = 1; I <= Count->asInt(); ++I) {
        ValueEnv Inner = Env;
        Inner["i"] = Value::makeInt(I);
        auto Elem = evalGenExpr(Args[1].get(), Inner);
        if (!Elem || !Elem->isInt())
          return std::nullopt;
        Arr.Elems.push_back(Elem->asInt());
      }
      return Value::makeArray(std::move(Arr));
    }

    if (Name == "max" || Name == "min") {
      if (Args.size() != 2)
        return std::nullopt;
      auto L = evalGenExpr(Args[0].get(), Env);
      auto R = evalGenExpr(Args[1].get(), Env);
      if (!L || !R || !L->isInt() || !R->isInt())
        return std::nullopt;
      int64_t A = L->asInt(), B = R->asInt();
      return Value::makeInt(Name == "max" ? std::max(A, B)
                                          : std::min(A, B));
    }

    if (Name == "abs") {
      if (Args.size() != 1)
        return std::nullopt;
      auto V = evalGenExpr(Args[0].get(), Env);
      if (!V || !V->isInt())
        return std::nullopt;
      return Value::makeInt(V->asInt() < 0 ? -V->asInt() : V->asInt());
    }

    return std::nullopt; // unknown builtin
  }

  // Binary/unary nodes must recurse through *this* evaluator so nested
  // builtin calls work; leaves fall through to the closed evaluator.
  if (const auto *BE = dyn_cast<BinaryExpr>(E)) {
    auto L = evalGenExpr(BE->getLHS(), Env);
    auto R = evalGenExpr(BE->getRHS(), Env);
    if (!L || !R)
      return std::nullopt;
    ValueEnv Tmp;
    Tmp["l"] = *L;
    Tmp["r"] = *R;
    BinaryExpr Shim(BE->getLoc(), BE->getOp(),
                    std::make_unique<VarRefExpr>(BE->getLoc(), "l"),
                    std::make_unique<VarRefExpr>(BE->getLoc(), "r"));
    return evalClosedExpr(&Shim, Tmp);
  }
  if (const auto *UE = dyn_cast<UnaryExpr>(E)) {
    auto V = evalGenExpr(UE->getOperand(), Env);
    if (!V)
      return std::nullopt;
    ValueEnv Tmp;
    Tmp["v"] = *V;
    UnaryExpr Shim(UE->getLoc(), UE->getOp(),
                   std::make_unique<VarRefExpr>(UE->getLoc(), "v"));
    return evalClosedExpr(&Shim, Tmp);
  }
  return evalClosedExpr(E, Env);
}

std::optional<std::vector<Value>>
gadt::tgen::instantiateFrame(const TestSpec &Spec, const TestFrame &Frame) {
  if (!Spec.hasGenerators())
    return std::nullopt;
  if (Frame.ChoiceNames.size() != Spec.Categories.size())
    return std::nullopt;

  // Evaluate the gen bindings of the frame's choices in category order.
  ValueEnv Env;
  for (size_t CI = 0; CI != Spec.Categories.size(); ++CI) {
    const Category &Cat = Spec.Categories[CI];
    const Choice *Ch = nullptr;
    for (const Choice &Candidate : Cat.Choices)
      if (Candidate.Name == Frame.ChoiceNames[CI])
        Ch = &Candidate;
    if (!Ch)
      return std::nullopt;
    for (const auto &[Name, ExprP] : Ch->Gens) {
      auto V = evalGenExpr(ExprP.get(), Env);
      if (!V)
        return std::nullopt;
      Env[Name] = std::move(*V);
    }
  }

  std::vector<Value> Args;
  for (const ParamSpec &P : Spec.Params) {
    if (P.IsOut) {
      Args.push_back(Value());
      continue;
    }
    auto It = Env.find(P.Name);
    if (It == Env.end())
      return std::nullopt; // ungenerated input parameter
    Args.push_back(It->second);
  }
  return Args;
}

FrameInstantiator gadt::tgen::specInstantiator(const TestSpec &Spec) {
  return [&Spec](const TestFrame &Frame) {
    return instantiateFrame(Spec, Frame);
  };
}
