//===- ReportDB.cpp - Test case execution and report database -------------===//

#include "tgen/ReportDB.h"

using namespace gadt;
using namespace gadt::tgen;
using namespace gadt::interp;
using namespace gadt::pascal;

void TestReportDB::record(TestCaseRecord R) {
  auto &Counts = ByFrame[R.FrameCode];
  if (R.Pass) {
    ++Counts.first;
    ++Passes;
  } else {
    ++Counts.second;
    ++Fails;
  }
  Records.push_back(std::move(R));
}

Verdict TestReportDB::verdict(const std::string &FrameCode) const {
  auto It = ByFrame.find(FrameCode);
  if (It == ByFrame.end())
    return Verdict::Untested;
  if (It->second.second > 0)
    return Verdict::Fail;
  return It->second.first > 0 ? Verdict::Pass : Verdict::Untested;
}

std::string TestReportDB::str() const {
  std::string Out;
  for (const auto &[Frame, Counts] : ByFrame) {
    Out += Frame;
    Out += ": ";
    Out += Counts.second > 0 ? "fail" : "pass";
    Out += " (" + std::to_string(Counts.first + Counts.second) + " case";
    if (Counts.first + Counts.second != 1)
      Out += 's';
    Out += ")\n";
  }
  return Out;
}

TestReportDB gadt::tgen::runTestSuite(const Program &P, const TestSpec &Spec,
                                      const FrameSet &Frames,
                                      const FrameInstantiator &Instantiate,
                                      const OutcomeChecker &Check) {
  TestReportDB DB;
  for (size_t FI = 0; FI != Frames.Frames.size(); ++FI) {
    const TestFrame &Frame = Frames.Frames[FI];
    std::optional<std::vector<Value>> Args = Instantiate(Frame);
    if (!Args)
      continue; // stays Untested

    std::string Script;
    for (const auto &[Name, Indices] : Frames.Scripts)
      for (size_t Index : Indices)
        if (Index == FI)
          Script = Name;

    Interpreter I(P);
    CallOutcome Out = I.callRoutine(Spec.TestName, *Args);

    TestCaseRecord Rec;
    Rec.FrameCode = Frame.encode();
    Rec.Script = Script;
    if (!Out.Ok) {
      // A runtime error is a pass for ERROR frames (the input is supposed
      // to be rejected) and a failure otherwise.
      Rec.Pass = Frame.IsError;
      Rec.Detail = Out.Error.Message;
    } else {
      Rec.Pass = Check(*Args, Out);
      if (!Rec.Pass)
        Rec.Detail = "outcome check failed";
    }
    DB.record(std::move(Rec));
  }
  return DB;
}
