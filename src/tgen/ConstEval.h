//===- ConstEval.h - Closed expression evaluation ---------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates a Pascal expression over a flat name->value environment — the
/// engine behind `when` classifiers (feature variables from concrete call
/// inputs) and user assertions about unit behaviour (paper Section 3,
/// [Drabent, et al-88]-style assertions over input/output bindings).
///
//===----------------------------------------------------------------------===//

#ifndef GADT_TGEN_CONSTEVAL_H
#define GADT_TGEN_CONSTEVAL_H

#include "interp/Value.h"
#include "pascal/AST.h"

#include <map>
#include <optional>
#include <string>

namespace gadt {
namespace tgen {

using ValueEnv = std::map<std::string, interp::Value>;

/// Evaluates \p E over \p Env. Returns nullopt when the expression uses an
/// unbound name, an unsupported construct (calls, indexing), divides by
/// zero, or mixes types.
std::optional<interp::Value> evalClosedExpr(const pascal::Expr *E,
                                            const ValueEnv &Env);

/// Convenience: evaluates and requires a boolean result.
std::optional<bool> evalPredicate(const pascal::Expr *E,
                                  const ValueEnv &Env);

} // namespace tgen
} // namespace gadt

#endif // GADT_TGEN_CONSTEVAL_H
