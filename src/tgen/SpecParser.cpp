//===- SpecParser.cpp - Parser for T-GEN specifications -------------------===//

#include "tgen/SpecParser.h"

#include "pascal/Lexer.h"
#include "support/StringUtils.h"

using namespace gadt;
using namespace gadt::tgen;
using namespace gadt::pascal;

namespace {

class SpecParserImpl {
public:
  SpecParserImpl(std::string_view Source, DiagnosticsEngine &Diags)
      : Diags(Diags) {
    Lexer Lex(Source, Diags);
    Tokens = Lex.lexAll();
  }

  std::unique_ptr<TestSpec> parse();
  ExprPtr parseStandaloneExpr();

private:
  const Token &tok() const { return Tokens[Index]; }
  void consume() {
    if (Index + 1 < Tokens.size())
      ++Index;
  }
  bool consumeIf(TokenKind K) {
    if (!tok().is(K))
      return false;
    consume();
    return true;
  }
  /// True when the current token is the identifier \p Word.
  bool isWord(const char *Word) const {
    return tok().is(TokenKind::Identifier) && tok().Text == Word;
  }
  bool consumeWord(const char *Word) {
    if (!isWord(Word))
      return false;
    consume();
    return true;
  }
  void error(const std::string &Msg) { Diags.error(tok().Loc, Msg); }
  bool expect(TokenKind K, const char *Context) {
    if (consumeIf(K))
      return true;
    error(std::string("expected ") + tokenKindName(K) + " " + Context);
    return false;
  }

  bool parseCategory(TestSpec &Spec);
  bool parseChoice(Category &Cat);
  bool parseBuckets(std::vector<Bucket> &Out);
  bool parseSelector(Selector &Out);
  bool parseSelTerm(Selector &Out);
  bool parseSelFactor(Selector &Out);

  // Classifier (when) expressions: a Pascal expression subset.
  ExprPtr parseWhenExpr();
  ExprPtr parseWhenOr();
  ExprPtr parseWhenAnd();
  ExprPtr parseWhenRel();
  ExprPtr parseWhenAdd();
  ExprPtr parseWhenMul();
  ExprPtr parseWhenFactor();

  std::vector<Token> Tokens;
  size_t Index = 0;
  DiagnosticsEngine &Diags;
};

std::unique_ptr<TestSpec> SpecParserImpl::parse() {
  auto Spec = std::make_unique<TestSpec>();
  if (!consumeWord("test")) {
    error("specification must start with 'test <routine>;'");
    return nullptr;
  }
  if (!tok().is(TokenKind::Identifier)) {
    error("expected routine name after 'test'");
    return nullptr;
  }
  Spec->TestName = tok().Text;
  consume();
  if (!expect(TokenKind::Semicolon, "after test name"))
    return nullptr;

  if (consumeWord("params")) {
    for (;;) {
      ParamSpec P;
      if (consumeIf(TokenKind::KwOut))
        P.IsOut = true;
      if (!tok().is(TokenKind::Identifier)) {
        error("expected parameter name in params section");
        return nullptr;
      }
      P.Name = tok().Text;
      consume();
      Spec->Params.push_back(std::move(P));
      if (consumeIf(TokenKind::Comma))
        continue;
      if (!expect(TokenKind::Semicolon, "after params section"))
        return nullptr;
      break;
    }
  }

  while (isWord("category"))
    if (!parseCategory(*Spec))
      return nullptr;
  if (consumeWord("scripts"))
    if (!parseBuckets(Spec->Scripts))
      return nullptr;
  if (consumeWord("result"))
    if (!parseBuckets(Spec->Results))
      return nullptr;
  if (!consumeIf(TokenKind::KwEnd)) {
    error("expected 'end.' at end of specification");
    return nullptr;
  }
  if (!expect(TokenKind::Dot, "after 'end'"))
    return nullptr;
  if (Spec->Categories.empty()) {
    error("specification declares no categories");
    return nullptr;
  }
  if (Diags.hasErrors())
    return nullptr;
  return Spec;
}

bool SpecParserImpl::parseCategory(TestSpec &Spec) {
  consume(); // 'category'
  if (!tok().is(TokenKind::Identifier)) {
    error("expected category name");
    return false;
  }
  Category Cat;
  Cat.Name = tok().Text;
  consume();
  if (!expect(TokenKind::Semicolon, "after category name"))
    return false;
  // Choices run until the next section keyword.
  while (tok().is(TokenKind::Identifier) && !isWord("category") &&
         !isWord("scripts") && !isWord("result")) {
    if (!parseChoice(Cat))
      return false;
  }
  if (Cat.Choices.empty()) {
    error("category '" + Cat.Name + "' has no choices");
    return false;
  }
  Spec.Categories.push_back(std::move(Cat));
  return true;
}

bool SpecParserImpl::parseChoice(Category &Cat) {
  Choice Ch;
  Ch.Name = tok().Text;
  consume();
  if (!expect(TokenKind::Colon, "after choice name"))
    return false;
  for (;;) {
    if (consumeIf(TokenKind::KwIf)) {
      Selector Sel = Selector::alwaysTrue();
      if (!parseSelector(Sel))
        return false;
      Ch.If = std::move(Sel);
      continue;
    }
    if (consumeWord("property")) {
      for (;;) {
        if (!tok().is(TokenKind::Identifier)) {
          error("expected property name");
          return false;
        }
        std::string Prop = tok().Text;
        consume();
        if (Prop == "single")
          Ch.Single = true;
        else if (Prop == "error")
          Ch.Error = true;
        else
          Ch.Properties.push_back(Prop);
        if (!consumeIf(TokenKind::Comma))
          break;
      }
      continue;
    }
    if (consumeWord("when")) {
      Ch.When = parseWhenExpr();
      if (!Ch.When)
        return false;
      continue;
    }
    if (consumeWord("gen")) {
      for (;;) {
        if (!tok().is(TokenKind::Identifier)) {
          error("expected name in gen binding");
          return false;
        }
        std::string Name = tok().Text;
        consume();
        if (!expect(TokenKind::Assign, "in gen binding"))
          return false;
        ExprPtr Value = parseWhenExpr();
        if (!Value)
          return false;
        Ch.Gens.push_back({std::move(Name), std::move(Value)});
        if (!consumeIf(TokenKind::Comma))
          break;
      }
      continue;
    }
    break;
  }
  if (!expect(TokenKind::Semicolon, "at end of choice"))
    return false;
  Cat.Choices.push_back(std::move(Ch));
  return true;
}

bool SpecParserImpl::parseBuckets(std::vector<Bucket> &Out) {
  while (tok().is(TokenKind::Identifier) && !isWord("category") &&
         !isWord("scripts") && !isWord("result")) {
    Bucket B;
    B.Name = tok().Text;
    consume();
    if (!expect(TokenKind::Colon, "after name"))
      return false;
    if (consumeIf(TokenKind::KwIf)) {
      Selector Sel = Selector::alwaysTrue();
      if (!parseSelector(Sel))
        return false;
      B.If = std::move(Sel);
    }
    if (!expect(TokenKind::Semicolon, "at end of entry"))
      return false;
    Out.push_back(std::move(B));
  }
  if (Out.empty()) {
    error("section declares no entries");
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Selector expressions
//===----------------------------------------------------------------------===//

bool SpecParserImpl::parseSelector(Selector &Out) {
  if (!parseSelTerm(Out))
    return false;
  while (consumeIf(TokenKind::KwOr)) {
    Selector RHS = Selector::alwaysTrue();
    if (!parseSelTerm(RHS))
      return false;
    Out = Selector::orOf(std::move(Out), std::move(RHS));
  }
  return true;
}

bool SpecParserImpl::parseSelTerm(Selector &Out) {
  if (!parseSelFactor(Out))
    return false;
  while (consumeIf(TokenKind::KwAnd)) {
    Selector RHS = Selector::alwaysTrue();
    if (!parseSelFactor(RHS))
      return false;
    Out = Selector::andOf(std::move(Out), std::move(RHS));
  }
  return true;
}

bool SpecParserImpl::parseSelFactor(Selector &Out) {
  if (consumeIf(TokenKind::KwNot)) {
    Selector Sub = Selector::alwaysTrue();
    if (!parseSelFactor(Sub))
      return false;
    Out = Selector::notOf(std::move(Sub));
    return true;
  }
  if (consumeIf(TokenKind::LParen)) {
    if (!parseSelector(Out))
      return false;
    return expect(TokenKind::RParen, "after selector");
  }
  if (tok().is(TokenKind::Identifier)) {
    Out = Selector::prop(tok().Text);
    consume();
    return true;
  }
  error("expected property name in selector expression");
  return false;
}

//===----------------------------------------------------------------------===//
// Classifier (when) expressions
//===----------------------------------------------------------------------===//

ExprPtr SpecParserImpl::parseWhenExpr() { return parseWhenOr(); }

ExprPtr SpecParserImpl::parseWhenOr() {
  ExprPtr LHS = parseWhenAnd();
  if (!LHS)
    return nullptr;
  while (tok().is(TokenKind::KwOr)) {
    SourceLoc Loc = tok().Loc;
    consume();
    ExprPtr RHS = parseWhenAnd();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Loc, BinaryOp::Or, std::move(LHS),
                                       std::move(RHS));
  }
  return LHS;
}

ExprPtr SpecParserImpl::parseWhenAnd() {
  ExprPtr LHS = parseWhenRel();
  if (!LHS)
    return nullptr;
  while (tok().is(TokenKind::KwAnd)) {
    SourceLoc Loc = tok().Loc;
    consume();
    ExprPtr RHS = parseWhenRel();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Loc, BinaryOp::And, std::move(LHS),
                                       std::move(RHS));
  }
  return LHS;
}

ExprPtr SpecParserImpl::parseWhenRel() {
  ExprPtr LHS = parseWhenAdd();
  if (!LHS)
    return nullptr;
  BinaryOp Op;
  switch (tok().Kind) {
  case TokenKind::Equal:
    Op = BinaryOp::Eq;
    break;
  case TokenKind::NotEqual:
    Op = BinaryOp::Ne;
    break;
  case TokenKind::Less:
    Op = BinaryOp::Lt;
    break;
  case TokenKind::LessEqual:
    Op = BinaryOp::Le;
    break;
  case TokenKind::Greater:
    Op = BinaryOp::Gt;
    break;
  case TokenKind::GreaterEqual:
    Op = BinaryOp::Ge;
    break;
  default:
    return LHS;
  }
  SourceLoc Loc = tok().Loc;
  consume();
  ExprPtr RHS = parseWhenAdd();
  if (!RHS)
    return nullptr;
  return std::make_unique<BinaryExpr>(Loc, Op, std::move(LHS),
                                      std::move(RHS));
}

ExprPtr SpecParserImpl::parseWhenAdd() {
  ExprPtr LHS = parseWhenMul();
  if (!LHS)
    return nullptr;
  for (;;) {
    BinaryOp Op;
    if (tok().is(TokenKind::Plus))
      Op = BinaryOp::Add;
    else if (tok().is(TokenKind::Minus))
      Op = BinaryOp::Sub;
    else
      return LHS;
    SourceLoc Loc = tok().Loc;
    consume();
    ExprPtr RHS = parseWhenMul();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Loc, Op, std::move(LHS),
                                       std::move(RHS));
  }
}

ExprPtr SpecParserImpl::parseWhenMul() {
  ExprPtr LHS = parseWhenFactor();
  if (!LHS)
    return nullptr;
  for (;;) {
    BinaryOp Op;
    if (tok().is(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (tok().is(TokenKind::KwDiv))
      Op = BinaryOp::Div;
    else if (tok().is(TokenKind::KwMod))
      Op = BinaryOp::Mod;
    else
      return LHS;
    SourceLoc Loc = tok().Loc;
    consume();
    ExprPtr RHS = parseWhenFactor();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Loc, Op, std::move(LHS),
                                       std::move(RHS));
  }
}

ExprPtr SpecParserImpl::parseWhenFactor() {
  SourceLoc Loc = tok().Loc;
  switch (tok().Kind) {
  case TokenKind::IntLiteral: {
    int64_t V = tok().IntValue;
    consume();
    return std::make_unique<IntLiteralExpr>(Loc, V);
  }
  case TokenKind::KwTrue:
    consume();
    return std::make_unique<BoolLiteralExpr>(Loc, true);
  case TokenKind::KwFalse:
    consume();
    return std::make_unique<BoolLiteralExpr>(Loc, false);
  case TokenKind::KwNot: {
    consume();
    ExprPtr Sub = parseWhenFactor();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Not, std::move(Sub));
  }
  case TokenKind::Minus: {
    consume();
    ExprPtr Sub = parseWhenFactor();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Neg, std::move(Sub));
  }
  case TokenKind::LParen: {
    consume();
    ExprPtr Inner = parseWhenExpr();
    if (!Inner)
      return nullptr;
    if (!expect(TokenKind::RParen, "after expression"))
      return nullptr;
    return Inner;
  }
  case TokenKind::Identifier: {
    std::string Name = tok().Text;
    consume();
    // Generator builtins (`fill`, `max`, `min`, `abs`) use call syntax.
    if (consumeIf(TokenKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!tok().is(TokenKind::RParen)) {
        for (;;) {
          ExprPtr Arg = parseWhenExpr();
          if (!Arg)
            return nullptr;
          Args.push_back(std::move(Arg));
          if (!consumeIf(TokenKind::Comma))
            break;
        }
      }
      if (!expect(TokenKind::RParen, "after generator arguments"))
        return nullptr;
      return std::make_unique<CallExpr>(Loc, Name, std::move(Args));
    }
    return std::make_unique<VarRefExpr>(Loc, Name);
  }
  default:
    error("expected classifier expression");
    return nullptr;
  }
}

} // namespace

ExprPtr SpecParserImpl::parseStandaloneExpr() {
  ExprPtr E = parseWhenExpr();
  if (!E)
    return nullptr;
  if (!tok().is(TokenKind::Eof)) {
    error("unexpected trailing input after expression");
    return nullptr;
  }
  return E;
}

std::unique_ptr<TestSpec> gadt::tgen::parseSpec(std::string_view Source,
                                                DiagnosticsEngine &Diags) {
  SpecParserImpl P(Source, Diags);
  return P.parse();
}

ExprPtr gadt::tgen::parseClassifierExpr(std::string_view Source,
                                        DiagnosticsEngine &Diags) {
  SpecParserImpl P(Source, Diags);
  return P.parseStandaloneExpr();
}
