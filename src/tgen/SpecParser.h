//===- SpecParser.h - Parser for T-GEN specifications -----------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the T-GEN specification language (see TestSpec.h for the
/// grammar). Shares the Pascal lexer; `when` classifier expressions use a
/// Pascal expression subset (literals, feature variables, arithmetic,
/// comparisons, and/or/not).
///
//===----------------------------------------------------------------------===//

#ifndef GADT_TGEN_SPECPARSER_H
#define GADT_TGEN_SPECPARSER_H

#include "support/Diagnostics.h"
#include "tgen/TestSpec.h"

#include <memory>
#include <string_view>

namespace gadt {
namespace tgen {

/// Parses one specification. Returns null (with diagnostics) on error.
std::unique_ptr<TestSpec> parseSpec(std::string_view Source,
                                    DiagnosticsEngine &Diags);

/// Parses a standalone classifier/assertion expression ("r1 = r2 * 2 and
/// b >= 0"). Returns null (with diagnostics) on error. Also used by the
/// debugger's assertion language, which shares this grammar.
pascal::ExprPtr parseClassifierExpr(std::string_view Source,
                                    DiagnosticsEngine &Diags);

} // namespace tgen
} // namespace gadt

#endif // GADT_TGEN_SPECPARSER_H
