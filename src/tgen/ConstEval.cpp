//===- ConstEval.cpp - Closed expression evaluation -----------------------===//

#include "tgen/ConstEval.h"

#include "support/Casting.h"

using namespace gadt;
using namespace gadt::tgen;
using namespace gadt::interp;
using namespace gadt::pascal;

std::optional<Value> gadt::tgen::evalClosedExpr(const Expr *E,
                                                const ValueEnv &Env) {
  switch (E->getKind()) {
  case Expr::Kind::IntLiteral:
    return Value::makeInt(cast<IntLiteralExpr>(E)->getValue());
  case Expr::Kind::BoolLiteral:
    return Value::makeBool(cast<BoolLiteralExpr>(E)->getValue());
  case Expr::Kind::StringLiteral:
    return Value::makeStr(cast<StringLiteralExpr>(E)->getValue());

  case Expr::Kind::VarRef: {
    auto It = Env.find(cast<VarRefExpr>(E)->getName());
    if (It == Env.end())
      return std::nullopt;
    return It->second;
  }

  case Expr::Kind::Index: {
    const auto *IE = cast<IndexExpr>(E);
    const auto *Base = dyn_cast<VarRefExpr>(IE->getBase());
    if (!Base)
      return std::nullopt;
    auto It = Env.find(Base->getName());
    if (It == Env.end() || !It->second.isArray())
      return std::nullopt;
    auto Idx = evalClosedExpr(IE->getIndex(), Env);
    if (!Idx || !Idx->isInt())
      return std::nullopt;
    const ArrayVal &Arr = It->second.asArray();
    if (!Arr.inBounds(Idx->asInt()))
      return std::nullopt;
    return Value::makeInt(Arr.at(Idx->asInt()));
  }

  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    auto Op = evalClosedExpr(UE->getOperand(), Env);
    if (!Op)
      return std::nullopt;
    if (UE->getOp() == UnaryOp::Neg) {
      if (!Op->isInt())
        return std::nullopt;
      return Value::makeInt(-Op->asInt());
    }
    if (!Op->isBool())
      return std::nullopt;
    return Value::makeBool(!Op->asBool());
  }

  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    auto L = evalClosedExpr(BE->getLHS(), Env);
    auto R = evalClosedExpr(BE->getRHS(), Env);
    if (!L || !R)
      return std::nullopt;
    switch (BE->getOp()) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod: {
      if (!L->isInt() || !R->isInt())
        return std::nullopt;
      int64_t A = L->asInt(), B = R->asInt();
      switch (BE->getOp()) {
      case BinaryOp::Add:
        return Value::makeInt(A + B);
      case BinaryOp::Sub:
        return Value::makeInt(A - B);
      case BinaryOp::Mul:
        return Value::makeInt(A * B);
      case BinaryOp::Div:
        if (B == 0)
          return std::nullopt;
        return Value::makeInt(A / B);
      case BinaryOp::Mod:
        if (B == 0)
          return std::nullopt;
        return Value::makeInt(A % B);
      default:
        return std::nullopt;
      }
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      if (L->kind() != R->kind())
        return std::nullopt;
      bool Equal = L->equals(*R);
      return Value::makeBool(BE->getOp() == BinaryOp::Eq ? Equal : !Equal);
    }
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: {
      if (!L->isInt() || !R->isInt())
        return std::nullopt;
      int64_t A = L->asInt(), B = R->asInt();
      switch (BE->getOp()) {
      case BinaryOp::Lt:
        return Value::makeBool(A < B);
      case BinaryOp::Le:
        return Value::makeBool(A <= B);
      case BinaryOp::Gt:
        return Value::makeBool(A > B);
      default:
        return Value::makeBool(A >= B);
      }
    }
    case BinaryOp::And:
    case BinaryOp::Or: {
      if (!L->isBool() || !R->isBool())
        return std::nullopt;
      return Value::makeBool(BE->getOp() == BinaryOp::And
                                 ? (L->asBool() && R->asBool())
                                 : (L->asBool() || R->asBool()));
    }
    }
    return std::nullopt;
  }

  case Expr::Kind::Call:
  case Expr::Kind::ArrayLiteral:
    return std::nullopt;
  }
  return std::nullopt;
}

std::optional<bool> gadt::tgen::evalPredicate(const Expr *E,
                                              const ValueEnv &Env) {
  auto V = evalClosedExpr(E, Env);
  if (!V || !V->isBool())
    return std::nullopt;
  return V->asBool();
}
