//===- TestSpec.cpp - T-GEN test specifications ---------------------------===//

#include "tgen/TestSpec.h"

using namespace gadt;
using namespace gadt::tgen;

Selector Selector::prop(std::string Name) {
  Selector S(Kind::Prop);
  S.PropName = std::move(Name);
  return S;
}

Selector Selector::notOf(Selector Sub) {
  Selector S(Kind::Not);
  S.LHS = std::make_shared<Selector>(std::move(Sub));
  return S;
}

Selector Selector::andOf(Selector L, Selector R) {
  Selector S(Kind::And);
  S.LHS = std::make_shared<Selector>(std::move(L));
  S.RHS = std::make_shared<Selector>(std::move(R));
  return S;
}

Selector Selector::orOf(Selector L, Selector R) {
  Selector S(Kind::Or);
  S.LHS = std::make_shared<Selector>(std::move(L));
  S.RHS = std::make_shared<Selector>(std::move(R));
  return S;
}

bool Selector::eval(const std::set<std::string> &Properties) const {
  switch (K) {
  case Kind::True:
    return true;
  case Kind::Prop:
    return Properties.count(PropName) != 0;
  case Kind::Not:
    return !LHS->eval(Properties);
  case Kind::And:
    return LHS->eval(Properties) && RHS->eval(Properties);
  case Kind::Or:
    return LHS->eval(Properties) || RHS->eval(Properties);
  }
  return true;
}

std::string Selector::str() const {
  switch (K) {
  case Kind::True:
    return "true";
  case Kind::Prop:
    return PropName;
  case Kind::Not:
    return "not " + LHS->str();
  case Kind::And:
    return "(" + LHS->str() + " and " + RHS->str() + ")";
  case Kind::Or:
    return "(" + LHS->str() + " or " + RHS->str() + ")";
  }
  return "?";
}

const Category *TestSpec::findCategory(const std::string &Name) const {
  for (const Category &C : Categories)
    if (C.Name == Name)
      return &C;
  return nullptr;
}

bool TestSpec::hasGenerators() const {
  if (Params.empty())
    return false;
  for (const Category &C : Categories)
    for (const Choice &Ch : C.Choices)
      if (!Ch.Gens.empty())
        return true;
  return false;
}
