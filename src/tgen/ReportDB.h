//===- ReportDB.h - Test case execution and report database -----*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable test cases and the test-report database (paper Section 2:
/// "During the execution of the test cases, test reports are produced in a
/// database. These test reports can easily be accessed by using a coded
/// form of the test frames"). The debugger's test-lookup component
/// (Section 5.3.2) queries verdicts by frame code.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_TGEN_REPORTDB_H
#define GADT_TGEN_REPORTDB_H

#include "interp/Interpreter.h"
#include "pascal/AST.h"
#include "tgen/FrameGen.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gadt {
namespace tgen {

/// One executed test case.
struct TestCaseRecord {
  std::string FrameCode;
  std::string Script; ///< script the frame belongs to ("" = default)
  bool Pass = false;
  std::string Detail; ///< failure explanation / runtime error text
};

/// What the database knows about a frame.
enum class Verdict { Pass, Fail, Untested };

/// The report database, keyed by encoded frames.
class TestReportDB {
public:
  void record(TestCaseRecord R);

  /// Pass when at least one case ran and none failed; Fail when any case
  /// failed; Untested otherwise.
  Verdict verdict(const std::string &FrameCode) const;

  const std::vector<TestCaseRecord> &records() const { return Records; }
  unsigned passCount() const { return Passes; }
  unsigned failCount() const { return Fails; }

  /// One line per frame: "more.mixed.large: pass (2 cases)".
  std::string str() const;

private:
  std::vector<TestCaseRecord> Records;
  std::map<std::string, std::pair<unsigned, unsigned>> ByFrame; // pass, fail
  unsigned Passes = 0;
  unsigned Fails = 0;
};

/// Produces concrete argument values for a frame; nullopt when the frame
/// cannot be instantiated (then it stays Untested).
using FrameInstantiator =
    std::function<std::optional<std::vector<interp::Value>>(const TestFrame &)>;

/// Judges an executed case given the arguments and the call outcome
/// (typically by comparing against a reference computation).
using OutcomeChecker = std::function<bool(
    const std::vector<interp::Value> &Args, const interp::CallOutcome &Out)>;

/// Runs one test case per frame of \p Frames against routine
/// \p Spec.TestName of \p P and collects the reports. Frames whose
/// execution hits a runtime error are recorded as failing cases.
TestReportDB runTestSuite(const pascal::Program &P, const TestSpec &Spec,
                          const FrameSet &Frames,
                          const FrameInstantiator &Instantiate,
                          const OutcomeChecker &Check);

} // namespace tgen
} // namespace gadt

#endif // GADT_TGEN_REPORTDB_H
