//===- Exporter.cpp - Periodic metrics export -----------------------------===//

#include "obs/Exporter.h"

#include "obs/Trace.h"
#include "support/JSON.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace gadt;
using namespace gadt::obs;

Exporter::Exporter() {
  // Pin construction order: the tracer (shared epoch) and registry must
  // outlive the flusher thread, so force both into existence first.
  (void)Tracer::global();
  (void)Registry::global();
}

Exporter::~Exporter() { stop(); }

Exporter &Exporter::global() {
  static Exporter E;
  return E;
}

void Exporter::start(std::string OutPath, uint64_t PeriodMillis) {
  std::lock_guard<std::mutex> Lock(M);
  if (Running.load(std::memory_order_relaxed))
    return;
  PeriodMs = PeriodMillis < 10 ? 10
                               : (PeriodMillis > 600000 ? 600000
                                                        : PeriodMillis);
  Path = std::move(OutPath);
  FileStarted = false;
  Prev = Registry::SnapshotData();
  Running.store(true, std::memory_order_release);
  Thread = std::thread([this] { flusherLoop(); });
}

void Exporter::stop() {
  std::thread T;
  std::string PromPath;
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Running.load(std::memory_order_relaxed)) {
      if (Thread.joinable())
        T = std::move(Thread);
    } else {
      Running.store(false, std::memory_order_release);
      T = std::move(Thread);
      PromPath = Path + ".prom";
    }
  }
  CV.notify_all();
  if (T.joinable())
    T.join();
  if (PromPath.empty())
    return;
  flushNow(); // final partial-period record
  std::ofstream(PromPath, std::ios::trunc) << prometheusText();
}

void Exporter::flushNow() {
  Registry::SnapshotData Now = Registry::global().snapshotData();
  std::lock_guard<std::mutex> Lock(M);
  std::string Line = renderRecord(Prev, Now);
  Prev = std::move(Now);
  Flushes.fetch_add(1, std::memory_order_relaxed);
  if (Path.empty())
    return;
  std::ofstream Out(Path, FileStarted ? std::ios::app : std::ios::trunc);
  FileStarted = true;
  Out << Line << '\n';
}

void Exporter::flusherLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> Lock(M);
      CV.wait_for(Lock, std::chrono::milliseconds(PeriodMs), [this] {
        return !Running.load(std::memory_order_relaxed);
      });
      if (!Running.load(std::memory_order_relaxed))
        return; // stop() flushes the final record after the join
    }
    flushNow();
  }
}

std::string
Exporter::renderRecord(Registry::SnapshotData &Prev,
                       const Registry::SnapshotData &Now) const {
  auto PrevOf = [](const auto &Vec, const std::string &Name) ->
      typename std::decay_t<decltype(Vec)>::value_type::second_type {
    for (const auto &[N, V] : Vec)
      if (N == Name)
        return V;
    return {};
  };

  uint64_t TsNanos = Tracer::global().nowNanos();
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  char Ts[48];
  std::snprintf(Ts, sizeof(Ts), "%llu.%03u",
                static_cast<unsigned long long>(TsNanos / 1000),
                static_cast<unsigned>(TsNanos % 1000));
  W.key("ts").raw(Ts);
  W.key("counters").beginObject();
  for (const auto &[Name, V] : Now.Counters) {
    W.key(Name).beginObject();
    W.key("total").value(V);
    W.key("delta").value(V - PrevOf(Prev.Counters, Name));
    W.endObject();
  }
  W.endObject();
  W.key("gauges").beginObject();
  for (const auto &[Name, V] : Now.Gauges)
    W.key(Name).value(V);
  W.endObject();
  W.key("histograms").beginObject();
  for (const auto &[Name, H] : Now.Histograms) {
    W.key(Name).beginObject();
    W.key("count").value(H.Count);
    W.key("delta").value(H.Count - PrevOf(Prev.Histograms, Name).Count);
    W.key("sum").value(H.Sum);
    W.key("p50").value(H.P50);
    W.key("p95").value(H.P95);
    W.key("p99").value(H.P99);
    W.endObject();
  }
  W.endObject();
  W.endObject();
  return Out;
}

namespace {

/// "runtime.cache.sdg.entries" → "gadt_runtime_cache_sdg_entries".
std::string promName(const std::string &Name) {
  std::string Out = "gadt_";
  for (char C : Name)
    Out += (C == '.' || C == '-') ? '_' : C;
  return Out;
}

void promLine(std::string &Out, const std::string &Name, const char *Type,
              const std::string &Sample) {
  Out += "# TYPE ";
  Out += Name;
  Out += ' ';
  Out += Type;
  Out += '\n';
  Out += Sample;
}

} // namespace

std::string Exporter::prometheusText() {
  Registry::SnapshotData S = Registry::global().snapshotData();
  std::string Out;
  char Buf[128];
  for (const auto &[Name, V] : S.Counters) {
    std::string N = promName(Name);
    std::snprintf(Buf, sizeof(Buf), "%s %llu\n", N.c_str(),
                  static_cast<unsigned long long>(V));
    promLine(Out, N, "counter", Buf);
  }
  for (const auto &[Name, V] : S.Gauges) {
    std::string N = promName(Name);
    std::snprintf(Buf, sizeof(Buf), "%s %lld\n", N.c_str(),
                  static_cast<long long>(V));
    promLine(Out, N, "gauge", Buf);
  }
  for (const auto &[Name, H] : S.Histograms) {
    std::string N = promName(Name);
    std::string Sample;
    static const struct {
      const char *Label;
      double Registry::HistogramStats::*Field;
    } Qs[] = {{"0.5", &Registry::HistogramStats::P50},
              {"0.95", &Registry::HistogramStats::P95},
              {"0.99", &Registry::HistogramStats::P99}};
    for (const auto &Q : Qs) {
      std::snprintf(Buf, sizeof(Buf), "%s{quantile=\"%s\"} %g\n", N.c_str(),
                    Q.Label, H.*(Q.Field));
      Sample += Buf;
    }
    std::snprintf(Buf, sizeof(Buf), "%s_sum %llu\n%s_count %llu\n",
                  N.c_str(), static_cast<unsigned long long>(H.Sum),
                  N.c_str(), static_cast<unsigned long long>(H.Count));
    Sample += Buf;
    promLine(Out, N, "summary", Sample);
  }
  return Out;
}

namespace {

/// Reads GADT_METRICS=<path>[:period_ms]; a final record and the .prom
/// exposition land at process exit (global destructor → stop()).
struct ExpEnvInit {
  ExpEnvInit() {
    const char *Spec = std::getenv("GADT_METRICS");
    if (!Spec || !*Spec)
      return;
    std::string Path(Spec);
    uint64_t PeriodMs = 1000;
    size_t Colon = Path.rfind(':');
    if (Colon != std::string::npos && Colon + 1 < Path.size() &&
        Path.find_first_not_of("0123456789", Colon + 1) ==
            std::string::npos) {
      PeriodMs = std::strtoull(Path.c_str() + Colon + 1, nullptr, 10);
      Path.resize(Colon);
    }
    if (!Path.empty())
      Exporter::global().start(Path, PeriodMs);
  }
};

} // namespace

void Exporter::envInit() { static ExpEnvInit Once; }
