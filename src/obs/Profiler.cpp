//===- Profiler.cpp - Sampling span-stack profiler ------------------------===//

#include "obs/Profiler.h"

#include "obs/Trace.h"
#include "support/JSON.h"

#include <chrono>
#include <cstdlib>
#include <fstream>

using namespace gadt;
using namespace gadt::obs;

Profiler::Profiler() = default;

Profiler::~Profiler() { stop(); }

Profiler &Profiler::global() {
  static Profiler P;
  return P;
}

void Profiler::start(double RequestedHz) {
  std::lock_guard<std::mutex> Lock(M);
  if (Running.load(std::memory_order_relaxed))
    return;
  Hz = RequestedHz < 1.0 ? 1.0 : (RequestedHz > 10000.0 ? 10000.0
                                                        : RequestedHz);
  IntervalNanos.store(static_cast<uint64_t>(1e9 / Hz),
                      std::memory_order_relaxed);
  Running.store(true, std::memory_order_release);
  detail::ActiveModes.fetch_or(detail::ModeProfile,
                               std::memory_order_relaxed);
  Thread = std::thread([this] { samplerLoop(); });
}

void Profiler::stop() {
  std::thread T;
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Running.load(std::memory_order_relaxed)) {
      if (Thread.joinable())
        T = std::move(Thread);
    } else {
      Running.store(false, std::memory_order_release);
      detail::ActiveModes.fetch_and(~detail::ModeProfile,
                                    std::memory_order_relaxed);
      T = std::move(Thread);
    }
  }
  if (T.joinable())
    T.join();

  std::string Path;
  {
    std::lock_guard<std::mutex> Lock(M);
    Path = OutPath;
  }
  if (!Path.empty()) {
    std::ofstream(Path, std::ios::trunc) << collapsed();
    std::ofstream(Path + ".json", std::ios::trunc) << jsonProfile()
                                                   << '\n';
  }
}

void Profiler::clear() {
  std::lock_guard<std::mutex> Lock(M);
  if (Running.load(std::memory_order_relaxed))
    return;
  Paths.clear();
  Samples.store(0, std::memory_order_relaxed);
  IdleSamples.store(0, std::memory_order_relaxed);
}

void Profiler::setOutputPath(std::string Path) {
  std::lock_guard<std::mutex> Lock(M);
  OutPath = std::move(Path);
}

void Profiler::samplerLoop() {
  std::string Path; // reused across samples
  while (Running.load(std::memory_order_acquire)) {
    // Sleep the sampling interval in small slices so stop() never waits
    // longer than ~2ms for the join.
    uint64_t Remaining = IntervalNanos.load(std::memory_order_relaxed);
    while (Remaining > 0 && Running.load(std::memory_order_acquire)) {
      uint64_t Chunk = Remaining < 2000000 ? Remaining : 2000000;
      std::this_thread::sleep_for(std::chrono::nanoseconds(Chunk));
      Remaining -= Chunk;
    }
    if (!Running.load(std::memory_order_acquire))
      break;

    for (const std::shared_ptr<SpanStack> &S : detail::allSpanStacks()) {
      uint32_t D = S->Depth.load(std::memory_order_acquire);
      if (D > SpanStack::MaxDepth)
        D = SpanStack::MaxDepth;
      if (D == 0) {
        IdleSamples.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Path.clear();
      for (uint32_t I = 0; I < D; ++I) {
        const char *Name = S->Names[I].load(std::memory_order_relaxed);
        if (!Name) // racing a push; attribute to the frames already set
          break;
        if (!Path.empty())
          Path += ';';
        Path += Name;
      }
      if (Path.empty()) {
        IdleSamples.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Samples.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> Lock(M);
      ++Paths[Path];
    }
  }
}

std::string Profiler::collapsed() const {
  std::lock_guard<std::mutex> Lock(M);
  std::string Out;
  for (const auto &[Path, N] : Paths) {
    Out += Path;
    Out += ' ';
    Out += std::to_string(N);
    Out += '\n';
  }
  return Out;
}

std::string Profiler::jsonProfile() const {
  std::lock_guard<std::mutex> Lock(M);
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.key("hz").value(Hz);
  W.key("samples").value(Samples.load(std::memory_order_relaxed));
  W.key("idle_samples").value(IdleSamples.load(std::memory_order_relaxed));
  W.key("stacks").beginObject();
  for (const auto &[Path, N] : Paths)
    W.key(Path).value(N);
  W.endObject();
  W.endObject();
  return Out;
}

namespace {

/// Reads GADT_PROFILE=<path>[:hz]; the profile is written at process exit
/// (global destructor → stop()).
struct ProfEnvInit {
  ProfEnvInit() {
    const char *Spec = std::getenv("GADT_PROFILE");
    if (!Spec || !*Spec)
      return;
    std::string Path(Spec);
    double Hz = 97.0;
    size_t Colon = Path.rfind(':');
    if (Colon != std::string::npos && Colon + 1 < Path.size() &&
        Path.find_first_not_of("0123456789", Colon + 1) ==
            std::string::npos) {
      Hz = static_cast<double>(
          std::strtoull(Path.c_str() + Colon + 1, nullptr, 10));
      Path.resize(Colon);
    }
    if (Path.empty())
      return;
    Profiler::global().setOutputPath(Path);
    Profiler::global().start(Hz);
  }
};

} // namespace

void Profiler::envInit() { static ProfEnvInit Once; }
