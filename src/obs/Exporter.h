//===- Exporter.h - Periodic metrics export -------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Periodic export of the global metrics registry: a background thread
/// wakes every period, snapshots every counter/gauge/histogram, and
/// appends one JSONL record per tick with both absolute values and deltas
/// since the previous tick:
///
///   {"ts":1234567.8,"counters":{"runtime.sessions":{"total":12,"delta":3}},
///    "gauges":{"runtime.cache.sdg.entries":4},
///    "histograms":{"runtime.session_micros":{"count":12,"delta":3,
///      "sum":4567,"p50":310.0,"p95":820.0,"p99":990.0}}}
///
/// Timestamps are fractional microseconds on the global tracer's epoch, so
/// the series lines up with trace spans and log records. On stop() (and
/// process exit) a Prometheus-style text exposition of the final snapshot
/// is written next to the series as <path>.prom — counters and gauges as
/// single samples, histograms as summaries with p50/p95/p99 quantile
/// labels. Metric names are mangled dots-to-underscores under a `gadt_`
/// prefix, per Prometheus conventions.
///
/// Enable with GADT_METRICS=<path>[:period_ms] (default 1000 ms), or from
/// code with Exporter::global().start(path, ms). Zero cost when off: no
/// thread exists and nothing in the hot path checks for it — instruments
/// are already lock-free atomics; the exporter only reads them.
///
/// Thread-safety: start/stop serialize on a mutex; the ticker waits on a
/// condition variable so stop() interrupts a sleeping tick immediately.
/// Snapshots race instrument updates benignly (relaxed atomic reads — a
/// tick observes values at-or-before its timestamp). TSan-clean.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_OBS_EXPORTER_H
#define GADT_OBS_EXPORTER_H

#include "obs/Metrics.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace gadt {
namespace obs {

class Exporter {
public:
  Exporter();
  ~Exporter();

  Exporter(const Exporter &) = delete;
  Exporter &operator=(const Exporter &) = delete;

  /// The process-wide exporter (the one GADT_METRICS starts).
  static Exporter &global();

  /// Applies GADT_METRICS=<path>[:period_ms] to the global exporter, once.
  /// Called from the tracer's environment init so this translation unit is
  /// kept by static-library links even when nothing names an Exporter.
  static void envInit();

  /// Starts the flusher thread appending one record to \p Path every
  /// \p PeriodMillis (clamped to [10, 600000]). No-op when running.
  void start(std::string Path, uint64_t PeriodMillis = 1000);
  /// Stops the flusher after one final flush, then writes the Prometheus
  /// exposition of the final snapshot to <path>.prom.
  void stop();
  bool isRunning() const { return Running.load(std::memory_order_acquire); }

  /// Takes one snapshot and appends one record now (works whether or not
  /// the thread is running — tests drive the exporter with this).
  void flushNow();

  /// Ticks flushed since construction.
  uint64_t flushCount() const {
    return Flushes.load(std::memory_order_relaxed);
  }

  /// Prometheus text exposition of the registry's current state.
  static std::string prometheusText();

private:
  void flusherLoop();
  /// Renders one series record against \p Prev and advances it.
  std::string renderRecord(Registry::SnapshotData &Prev,
                           const Registry::SnapshotData &Now) const;

  std::mutex M; ///< guards Thread/Path/Prev and start/stop transitions
  std::condition_variable CV;
  std::atomic<bool> Running{false};
  std::atomic<uint64_t> Flushes{0};
  uint64_t PeriodMs = 1000;
  std::thread Thread;
  std::string Path;
  bool FileStarted = false;
  Registry::SnapshotData Prev; ///< previous tick, for deltas
};

} // namespace obs
} // namespace gadt

#endif // GADT_OBS_EXPORTER_H
