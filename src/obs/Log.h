//===- Log.h - Structured leveled JSONL logging -----------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured logging for the runtime and tools: leveled, component-tagged
/// JSONL records, one complete JSON object per line:
///
///   {"ts":1234.567,"level":"info","component":"runtime","tid":3,
///    "msg":"batch complete","fields":{"sessions":12}}
///
/// Timestamps share the global tracer's epoch (fractional microseconds
/// since process start), so log records interleave with trace spans on the
/// same timeline — gadt_report and a Perfetto-side-by-side both rely on
/// that. `tid` is the tracer's dense thread id.
///
/// Logging is off by default and costs one relaxed atomic load plus a
/// compare per call site when disabled — no allocation, no formatting, no
/// clock read. Enable it by either:
///
///  - setting GADT_LOG=<path>[:level] in the environment (level one of
///    debug|info|warn|error, default info): records at or above the level
///    are appended to <path> as they are produced, or
///  - calling Log::global().enableToFile(path, level) / enable(level)
///    from code (the latter buffers in memory; drain with drain()).
///
/// logError() keeps CLI error reporting working when logging is off: it
/// falls back to plain stderr, so examples and tools route all their
/// error output through it instead of ad-hoc fprintf(stderr, ...).
///
/// Thread-safety: the level check is a relaxed atomic; record rendering
/// happens outside the sink lock; the sink (buffer and/or file stream) is
/// mutex-protected. Safe from any number of threads, TSan-clean.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_OBS_LOG_H
#define GADT_OBS_LOG_H

#include "obs/Trace.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gadt {
namespace obs {

enum class LogLevel : uint8_t { Debug = 0, Info = 1, Warn = 2, Error = 3 };

const char *logLevelName(LogLevel L);
/// Parses "debug"/"info"/"warn"/"error"; false on anything else.
bool parseLogLevel(std::string_view S, LogLevel &Out);

/// The process-wide structured log. Independent instances are possible for
/// tests; the helpers below always target Log::global().
class Log {
public:
  Log();
  ~Log();

  Log(const Log &) = delete;
  Log &operator=(const Log &) = delete;

  static Log &global();

  /// Starts accepting records at or above \p Min, appending them to
  /// \p Path (truncated on the first write of this enablement).
  void enableToFile(std::string Path, LogLevel Min = LogLevel::Info);
  /// Starts accepting records into the in-memory buffer only.
  void enable(LogLevel Min = LogLevel::Debug);
  /// Stops accepting records (flushes the file sink first).
  void disable();

  /// The disabled-path check: one relaxed load and a compare.
  bool enabledFor(LogLevel L) const {
    return static_cast<uint8_t>(L) >=
           Threshold.load(std::memory_order_relaxed);
  }

  /// Renders and sinks one record. Callers guard with enabledFor() (the
  /// helpers below do); write() itself re-checks and drops when disabled.
  void write(LogLevel L, const char *Component, std::string_view Msg,
             std::vector<TraceArg> Fields = {});

  /// Drains and returns everything buffered in memory (JSONL).
  std::string drain();
  /// Flushes buffered records to the enableToFile() path, if any.
  void flush();
  /// Records accepted since construction (across enablements).
  uint64_t recordCount() const {
    return Records.load(std::memory_order_relaxed);
  }

private:
  void flushLocked();

  /// Minimum accepted level; 255 when disabled (every LogLevel compares
  /// below it, so enabledFor() is one load + compare).
  std::atomic<uint8_t> Threshold{255};
  std::atomic<uint64_t> Records{0};

  std::mutex M;
  std::vector<std::string> Buffer; ///< rendered lines awaiting drain/flush
  std::string FilePath;            ///< empty: memory-only
  bool FileStarted = false;
};

/// Level-checked helpers against the global log. The disabled path is one
/// relaxed atomic load; arguments are not evaluated into allocations at
/// call sites that pre-check enabledFor() before building fields.
inline void log(LogLevel L, const char *Component, std::string_view Msg,
                std::vector<TraceArg> Fields = {}) {
  Log &G = Log::global();
  if (G.enabledFor(L))
    G.write(L, Component, Msg, std::move(Fields));
}
inline void logDebug(const char *Component, std::string_view Msg,
                     std::vector<TraceArg> Fields = {}) {
  log(LogLevel::Debug, Component, Msg, std::move(Fields));
}
inline void logInfo(const char *Component, std::string_view Msg,
                    std::vector<TraceArg> Fields = {}) {
  log(LogLevel::Info, Component, Msg, std::move(Fields));
}
inline void logWarn(const char *Component, std::string_view Msg,
                    std::vector<TraceArg> Fields = {}) {
  log(LogLevel::Warn, Component, Msg, std::move(Fields));
}
/// Errors must reach a human even when structured logging is off: falls
/// back to plain stderr, so CLI tools report failures through one call.
inline void logError(const char *Component, std::string_view Msg,
                     std::vector<TraceArg> Fields = {}) {
  Log &G = Log::global();
  if (G.enabledFor(LogLevel::Error)) {
    G.write(LogLevel::Error, Component, Msg, std::move(Fields));
    return;
  }
  std::fprintf(stderr, "%s: %.*s%s", Component,
               static_cast<int>(Msg.size()), Msg.data(),
               (!Msg.empty() && Msg.back() == '\n') ? "" : "\n");
}

} // namespace obs
} // namespace gadt

#endif // GADT_OBS_LOG_H
