//===- Trace.h - RAII span tracer with JSONL export -------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline span tracing. Every phase of the GADT pipeline (parse, sema,
/// transform, SDG construction, tracing, slicing, the debugging dialogue,
/// the runtime's cache lookups and batch sessions) opens an obs::Span; the
/// resulting events are buffered per thread and exported as JSONL in the
/// Chrome Trace Event Format — one complete JSON object per line, so the
/// stream is parseable line by line and loadable in chrome://tracing or
/// Perfetto after wrapping the lines in a JSON array (see README,
/// "Observability").
///
/// Spans form a hierarchy: each thread keeps a stack of its open spans, so
/// every exported event carries a span id (`sid`) and its parent's id
/// (`psid`), and instants (judgement events, log marks) attach to the span
/// they occurred under. The same stack is what obs::Profiler samples. A
/// FlowContext carries a logical-flow id across threads (e.g. one batch
/// session from the enqueuing thread to the worker that runs it); flows
/// render as Chrome-Trace flow events ('s'/'t'/'f'), which Perfetto draws
/// as arrows connecting the slices of one session across worker threads.
///
/// Tracing is off by default and costs a single relaxed atomic load plus a
/// branch per span when disabled — no allocation, no clock read, no lock,
/// no stack maintenance. Enable it by either:
///
///  - setting GADT_TRACE=<path>[:cap] in the environment: every
///    process-lifetime event is flushed to <path> at exit (and on explicit
///    flush()); the optional numeric suffix caps buffered events per
///    thread, or
///  - calling Tracer::global().enableToFile(path) / enable() from code
///    (the latter buffers only; drain with exportJsonl()).
///
/// Per-thread buffers are bounded (setMaxEventsPerThread, default 2^20):
/// once a thread's buffer is full, further events are dropped and counted
/// on the global registry's `obs.trace.dropped` counter instead of growing
/// without limit under long traced batch runs.
///
/// Threading: each thread appends to its own buffer under its own
/// (uncontended) mutex; the exporter takes the buffer-list lock and each
/// buffer lock briefly. The span stack is written with release stores and
/// read by the profiler with acquire loads; names must be static string
/// literals. Safe to use concurrently from any number of threads,
/// including under ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_OBS_TRACE_H
#define GADT_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gadt {
namespace obs {

namespace detail {
/// Which telemetry modes want spans maintained, read on every span open.
/// Bit 0: the global tracer is recording events; bit 1: the profiler is
/// sampling span stacks. Lives outside the Tracer so the disabled-path
/// check needs no function-local-static guard.
constexpr uint32_t ModeTrace = 1u;
constexpr uint32_t ModeProfile = 2u;
extern std::atomic<uint32_t> ActiveModes;
} // namespace detail

/// True when the global tracer is collecting events. The one branch paid on
/// the hot path when all telemetry is off.
inline bool enabled() {
  return detail::ActiveModes.load(std::memory_order_relaxed) &
         detail::ModeTrace;
}

/// True when spans must maintain the per-thread stack (tracing needs it for
/// parent ids, the profiler for samples).
inline bool spansActive() {
  return detail::ActiveModes.load(std::memory_order_relaxed) != 0;
}

/// One key/value annotation on an event. \c Quote distinguishes string
/// values from pre-rendered numeric/boolean JSON.
struct TraceArg {
  std::string Key;
  std::string Val;
  bool Quote = true;
};

/// One buffered trace event (Chrome Trace Event Format fields).
struct TraceEvent {
  const char *Name = ""; ///< static string: span names are literals
  const char *Cat = "";
  char Phase = 'X';      ///< 'X' complete, 'i' instant, 's'/'t'/'f' flow
  uint64_t TsNanos = 0;  ///< since tracer epoch
  uint64_t DurNanos = 0; ///< complete events only
  uint32_t Tid = 0;
  uint64_t SpanId = 0;   ///< rendered as "sid" (complete events)
  uint64_t ParentId = 0; ///< rendered as "psid" (enclosing span)
  uint64_t FlowId = 0;   ///< rendered as "id" (flow events only)
  std::vector<TraceArg> Args;
};

/// The fixed-depth stack of spans a thread currently has open, readable by
/// the profiler thread while the owner pushes and pops. Slots only ever
/// hold nullptr or static string literals, so a stale read during a pop is
/// still a valid name (it is simply attributed to the previous sample).
struct SpanStack {
  static constexpr unsigned MaxDepth = 64;
  std::atomic<const char *> Names[MaxDepth] = {};
  std::atomic<uint64_t> Ids[MaxDepth] = {};
  std::atomic<uint32_t> Depth{0};
};

namespace detail {
/// The calling thread's span stack, registered for profiling on first use.
SpanStack &threadSpanStack();
/// Stacks of all threads that ever opened a span (dead threads pruned).
std::vector<std::shared_ptr<SpanStack>> allSpanStacks();
/// Id of the innermost open span on this thread, 0 when none.
uint64_t currentSpanId();
} // namespace detail

/// A logical-flow id carried across threads, connecting the spans of one
/// unit of work (a batch session) from the thread that enqueued it to the
/// worker that executes it. Thread-local; see BatchRunner.
class FlowContext {
public:
  /// This thread's active flow id, 0 when none.
  static uint64_t current();
  /// A fresh process-unique flow id (never 0).
  static uint64_t nextId();

  /// RAII: installs \p Id as the thread's flow for the scope's lifetime.
  class Scope {
  public:
    explicit Scope(uint64_t Id);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    uint64_t Prev;
  };
};

class Span;

/// Collects events from all threads and renders them as JSONL. One global
/// instance (Tracer::global()) serves the whole process; independent
/// instances are possible for tests. Buffers live as long as the tracer.
class Tracer {
public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// The process-wide tracer. Enabled at startup when GADT_TRACE=<path> is
  /// set (flushing to that path at exit).
  static Tracer &global();

  /// Starts collecting; flush() / process exit writes JSONL to \p Path.
  void enableToFile(std::string Path);
  /// Starts collecting into memory only; drain with exportJsonl().
  void enable();
  /// Stops collecting. Buffered events remain until flushed or exported.
  void disable();
  bool isEnabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Caps each thread's event buffer; once full, events are dropped and
  /// counted on the global registry's `obs.trace.dropped` counter.
  void setMaxEventsPerThread(size_t N) {
    MaxEventsPerThread.store(N, std::memory_order_relaxed);
  }
  size_t maxEventsPerThread() const {
    return MaxEventsPerThread.load(std::memory_order_relaxed);
  }

  /// Drains all buffered events, rendered one JSON object per line.
  std::string exportJsonl();

  /// Drains buffered events to the enableToFile() path (first flush
  /// truncates, later ones append). No-op without a path.
  void flush();

  /// Buffered events across all threads (not yet flushed/exported).
  uint64_t eventCount() const;

  /// Nanoseconds since this tracer's epoch (plain clock read; works whether
  /// or not tracing is enabled). obs::Log shares this epoch so logs and
  /// spans interleave on one timeline.
  uint64_t nowNanos() const;

  /// The calling thread's dense tracer thread id (assigned on first use;
  /// also stamped on log records so they join the trace timeline).
  uint32_t threadId();

  /// Appends \p E (stamped by the caller) to the calling thread's buffer.
  void record(TraceEvent E);

  /// Records a complete event over an interval measured by the caller.
  void completeEvent(const char *Name, const char *Cat, uint64_t TsNanos,
                     uint64_t DurNanos, std::vector<TraceArg> Args = {});

  /// Records an instant event at now, attached to the calling thread's
  /// innermost open span.
  void instant(const char *Name, const char *Cat,
               std::vector<TraceArg> Args = {});

  /// Records a flow event: \p Phase is 's' (start), 't' (step) or 'f'
  /// (finish, rendered with binding point "e" so it attaches to the
  /// enclosing slice). Events of one flow share \p FlowId.
  void flowEvent(char Phase, const char *Name, const char *Cat,
                 uint64_t FlowId);

  /// Records a thread-name metadata event ('M') so trace viewers label the
  /// calling thread's track.
  void setThreadName(const char *Name);

private:
  friend class Span;

  struct ThreadBuf {
    std::mutex M;
    std::vector<TraceEvent> Events;
    uint32_t Tid = 0;
  };

  ThreadBuf &threadBuf();

  /// Distinguishes tracer instances so the per-thread buffer cache never
  /// serves a stale pointer after a tracer at the same address died.
  const uint64_t Id;

  std::atomic<bool> Enabled{false};
  std::atomic<size_t> MaxEventsPerThread{size_t(1) << 20};
  const std::chrono::steady_clock::time_point Epoch;

  mutable std::mutex BufsM;
  std::map<std::thread::id, std::unique_ptr<ThreadBuf>> Bufs;
  uint32_t NextTid = 1;

  std::mutex FileM;
  std::string FilePath;
  bool FileStarted = false;
};

/// RAII span: opens on construction, pushes itself on the thread's span
/// stack, and records a complete event on destruction. When all telemetry
/// is disabled, construction is a relaxed atomic load and a branch;
/// nothing else runs and nothing is allocated.
class Span {
public:
  explicit Span(const char *Name, const char *Cat = "gadt") {
    uint32_t Modes = detail::ActiveModes.load(std::memory_order_relaxed);
    if (!Modes)
      return;
    begin(Name, Cat, Modes);
  }
  ~Span() {
    if (Live)
      end();
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Annotates the span (shows under "args" in trace viewers). No-ops when
  /// the span is not being recorded, so callers need not re-check
  /// enabled().
  void arg(const char *K, std::string V) {
    if (Rec)
      Args.push_back({K, std::move(V), /*Quote=*/true});
  }
  void arg(const char *K, const char *V) { arg(K, std::string(V)); }
  void arg(const char *K, uint64_t V) {
    if (Rec)
      Args.push_back({K, std::to_string(V), /*Quote=*/false});
  }
  void arg(const char *K, int64_t V) {
    if (Rec)
      Args.push_back({K, std::to_string(V), /*Quote=*/false});
  }
  void arg(const char *K, unsigned V) { arg(K, static_cast<uint64_t>(V)); }
  void arg(const char *K, int V) { arg(K, static_cast<int64_t>(V)); }
  void arg(const char *K, bool V) {
    if (Rec)
      Args.push_back({K, V ? "true" : "false", /*Quote=*/false});
  }

  /// True when the span is live on the thread's span stack (some telemetry
  /// mode is active).
  bool active() const { return Live; }
  /// This span's id (0 when not live).
  uint64_t id() const { return SpanId; }

private:
  void begin(const char *Name, const char *Cat, uint32_t Modes);
  void end();

  bool Live = false;   ///< pushed on the span stack
  bool Rec = false;    ///< tracing was on at open: record an event at close
  bool Pushed = false; ///< false when the stack saturated at MaxDepth
  const char *Name = nullptr;
  const char *Cat = nullptr;
  uint64_t StartNanos = 0;
  uint64_t SpanId = 0;
  uint64_t ParentId = 0;
  std::vector<TraceArg> Args;
};

/// Instant event on the global tracer; checks enabled() itself — but
/// callers that build Args should guard with obs::enabled() to keep the
/// disabled path allocation-free.
inline void instant(const char *Name, const char *Cat,
                    std::vector<TraceArg> Args = {}) {
  if (obs::enabled())
    Tracer::global().instant(Name, Cat, std::move(Args));
}

} // namespace obs
} // namespace gadt

#endif // GADT_OBS_TRACE_H
