//===- Trace.h - RAII span tracer with JSONL export -------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline span tracing. Every phase of the GADT pipeline (parse, sema,
/// transform, SDG construction, tracing, slicing, the debugging dialogue,
/// the runtime's cache lookups and batch sessions) opens an obs::Span; the
/// resulting events are buffered per thread and exported as JSONL in the
/// Chrome Trace Event Format — one complete JSON object per line, so the
/// stream is parseable line by line and loadable in chrome://tracing or
/// Perfetto after wrapping the lines in a JSON array (see README,
/// "Observability").
///
/// Tracing is off by default and costs a single relaxed atomic load plus a
/// branch per span when disabled — no allocation, no clock read, no lock.
/// Enable it by either:
///
///  - setting GADT_TRACE=<path> in the environment: every process-lifetime
///    event is flushed to <path> at exit (and on explicit flush()), or
///  - calling Tracer::global().enableToFile(path) / enable() from code
///    (the latter buffers only; drain with exportJsonl()).
///
/// Threading: each thread appends to its own buffer under its own
/// (uncontended) mutex; the exporter takes the buffer-list lock and each
/// buffer lock briefly. Safe to use concurrently from any number of
/// threads, including under ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_OBS_TRACE_H
#define GADT_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gadt {
namespace obs {

namespace detail {
/// The global on/off switch, read on every span open. Lives outside the
/// Tracer so the disabled-path check needs no function-local-static guard.
extern std::atomic<bool> GloballyEnabled;
} // namespace detail

/// True when the global tracer is collecting events. The one branch paid on
/// the hot path when tracing is off.
inline bool enabled() {
  return detail::GloballyEnabled.load(std::memory_order_relaxed);
}

/// One key/value annotation on an event. \c Quote distinguishes string
/// values from pre-rendered numeric/boolean JSON.
struct TraceArg {
  std::string Key;
  std::string Val;
  bool Quote = true;
};

/// One buffered trace event (Chrome Trace Event Format fields).
struct TraceEvent {
  const char *Name = ""; ///< static string: span names are literals
  const char *Cat = "";
  char Phase = 'X';      ///< 'X' complete (has Dur), 'i' instant
  uint64_t TsNanos = 0;  ///< since tracer epoch
  uint64_t DurNanos = 0; ///< complete events only
  uint32_t Tid = 0;
  std::vector<TraceArg> Args;
};

class Span;

/// Collects events from all threads and renders them as JSONL. One global
/// instance (Tracer::global()) serves the whole process; independent
/// instances are possible for tests. Buffers live as long as the tracer.
class Tracer {
public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// The process-wide tracer. Enabled at startup when GADT_TRACE=<path> is
  /// set (flushing to that path at exit).
  static Tracer &global();

  /// Starts collecting; flush() / process exit writes JSONL to \p Path.
  void enableToFile(std::string Path);
  /// Starts collecting into memory only; drain with exportJsonl().
  void enable();
  /// Stops collecting. Buffered events remain until flushed or exported.
  void disable();
  bool isEnabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Drains all buffered events, rendered one JSON object per line.
  std::string exportJsonl();

  /// Drains buffered events to the enableToFile() path (first flush
  /// truncates, later ones append). No-op without a path.
  void flush();

  /// Buffered events across all threads (not yet flushed/exported).
  uint64_t eventCount() const;

  /// Nanoseconds since this tracer's epoch (plain clock read; works whether
  /// or not tracing is enabled).
  uint64_t nowNanos() const;

  /// Appends \p E (stamped by the caller) to the calling thread's buffer.
  void record(TraceEvent E);

  /// Records a complete event over an interval measured by the caller.
  void completeEvent(const char *Name, const char *Cat, uint64_t TsNanos,
                     uint64_t DurNanos, std::vector<TraceArg> Args = {});

  /// Records an instant event at now.
  void instant(const char *Name, const char *Cat,
               std::vector<TraceArg> Args = {});

private:
  friend class Span;

  struct ThreadBuf {
    std::mutex M;
    std::vector<TraceEvent> Events;
    uint32_t Tid = 0;
  };

  ThreadBuf &threadBuf();

  /// Distinguishes tracer instances so the per-thread buffer cache never
  /// serves a stale pointer after a tracer at the same address died.
  const uint64_t Id;

  std::atomic<bool> Enabled{false};
  const std::chrono::steady_clock::time_point Epoch;

  mutable std::mutex BufsM;
  std::map<std::thread::id, std::unique_ptr<ThreadBuf>> Bufs;
  uint32_t NextTid = 1;

  std::mutex FileM;
  std::string FilePath;
  bool FileStarted = false;
};

/// RAII span: opens on construction, records a complete event on
/// destruction. When tracing is disabled, construction is a relaxed atomic
/// load and a branch; nothing else runs and nothing is allocated.
class Span {
public:
  explicit Span(const char *Name, const char *Cat = "gadt") {
    if (!obs::enabled())
      return;
    begin(Name, Cat);
  }
  ~Span() {
    if (Live)
      end();
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Annotates the span (shows under "args" in trace viewers). No-ops when
  /// the span is inactive, so callers need not re-check enabled().
  void arg(const char *K, std::string V) {
    if (Live)
      Args.push_back({K, std::move(V), /*Quote=*/true});
  }
  void arg(const char *K, const char *V) { arg(K, std::string(V)); }
  void arg(const char *K, uint64_t V) {
    if (Live)
      Args.push_back({K, std::to_string(V), /*Quote=*/false});
  }
  void arg(const char *K, int64_t V) {
    if (Live)
      Args.push_back({K, std::to_string(V), /*Quote=*/false});
  }
  void arg(const char *K, unsigned V) { arg(K, static_cast<uint64_t>(V)); }
  void arg(const char *K, int V) { arg(K, static_cast<int64_t>(V)); }
  void arg(const char *K, bool V) {
    if (Live)
      Args.push_back({K, V ? "true" : "false", /*Quote=*/false});
  }

  bool active() const { return Live; }

private:
  void begin(const char *Name, const char *Cat);
  void end();

  bool Live = false;
  const char *Name = nullptr;
  const char *Cat = nullptr;
  uint64_t StartNanos = 0;
  std::vector<TraceArg> Args;
};

/// Instant event on the global tracer; checks enabled() itself — but
/// callers that build Args should guard with obs::enabled() to keep the
/// disabled path allocation-free.
inline void instant(const char *Name, const char *Cat,
                    std::vector<TraceArg> Args = {}) {
  if (obs::enabled())
    Tracer::global().instant(Name, Cat, std::move(Args));
}

} // namespace obs
} // namespace gadt

#endif // GADT_OBS_TRACE_H
