//===- Trace.cpp - RAII span tracer with JSONL export ---------------------===//

#include "obs/Trace.h"

#include "obs/Exporter.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "support/JSON.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace gadt;
using namespace gadt::obs;

std::atomic<uint32_t> gadt::obs::detail::ActiveModes{0};

namespace {

std::atomic<uint64_t> NextTracerId{1};
std::atomic<uint64_t> NextSpanId{1};
std::atomic<uint64_t> NextFlowId{1};

thread_local uint64_t CurrentFlowId = 0;

/// All live threads' span stacks, for the profiler. Holds weak_ptrs so a
/// thread's stack dies with the thread; allSpanStacks() prunes expired
/// entries. Immortal (leaked) so sampler threads racing process exit never
/// touch a destroyed registry.
struct StackRegistry {
  std::mutex M;
  std::vector<std::weak_ptr<SpanStack>> Stacks;
};

StackRegistry &stackRegistry() {
  static StackRegistry *R = new StackRegistry;
  return *R;
}

/// Renders one event as a Chrome Trace Event Format JSON object.
/// Timestamps are microseconds with nanosecond precision (ts/dur are
/// fractional micros, the unit chrome://tracing expects).
std::string renderEvent(const TraceEvent &E) {
  std::string Line;
  Line.reserve(128);
  char Buf[64];
  Line += "{\"name\":\"";
  Line += json::escape(E.Name);
  Line += "\",\"cat\":\"";
  Line += json::escape(E.Cat);
  Line += "\",\"ph\":\"";
  Line += E.Phase;
  Line += "\",\"pid\":1,\"tid\":";
  std::snprintf(Buf, sizeof(Buf), "%u", E.Tid);
  Line += Buf;
  std::snprintf(Buf, sizeof(Buf), ",\"ts\":%llu.%03u",
                static_cast<unsigned long long>(E.TsNanos / 1000),
                static_cast<unsigned>(E.TsNanos % 1000));
  Line += Buf;
  if (E.Phase == 'X') {
    std::snprintf(Buf, sizeof(Buf), ",\"dur\":%llu.%03u",
                  static_cast<unsigned long long>(E.DurNanos / 1000),
                  static_cast<unsigned>(E.DurNanos % 1000));
    Line += Buf;
  }
  if (E.Phase == 'i')
    Line += ",\"s\":\"t\""; // thread-scoped instant
  if (E.Phase == 's' || E.Phase == 't' || E.Phase == 'f') {
    std::snprintf(Buf, sizeof(Buf), ",\"id\":%llu",
                  static_cast<unsigned long long>(E.FlowId));
    Line += Buf;
    if (E.Phase == 'f')
      Line += ",\"bp\":\"e\""; // bind to the enclosing slice
  }
  // Span hierarchy: custom fields, ignored by viewers, consumed by
  // gadt_report and tests.
  if (E.SpanId) {
    std::snprintf(Buf, sizeof(Buf), ",\"sid\":%llu",
                  static_cast<unsigned long long>(E.SpanId));
    Line += Buf;
  }
  if (E.ParentId) {
    std::snprintf(Buf, sizeof(Buf), ",\"psid\":%llu",
                  static_cast<unsigned long long>(E.ParentId));
    Line += Buf;
  }
  if (!E.Args.empty()) {
    Line += ",\"args\":{";
    bool First = true;
    for (const TraceArg &A : E.Args) {
      if (!First)
        Line += ',';
      First = false;
      Line += '"';
      Line += json::escape(A.Key);
      Line += "\":";
      if (A.Quote) {
        Line += '"';
        Line += json::escape(A.Val);
        Line += '"';
      } else {
        Line += A.Val;
      }
    }
    Line += '}';
  }
  Line += '}';
  return Line;
}

} // namespace

//===----------------------------------------------------------------------===//
// Span stacks and flow context
//===----------------------------------------------------------------------===//

SpanStack &gadt::obs::detail::threadSpanStack() {
  // The holder's destructor runs at thread exit; the registry's weak_ptr
  // then expires and the next allSpanStacks() prunes it.
  thread_local std::shared_ptr<SpanStack> Stack = [] {
    auto S = std::make_shared<SpanStack>();
    StackRegistry &R = stackRegistry();
    std::lock_guard<std::mutex> Lock(R.M);
    R.Stacks.push_back(S);
    return S;
  }();
  return *Stack;
}

std::vector<std::shared_ptr<SpanStack>> gadt::obs::detail::allSpanStacks() {
  StackRegistry &R = stackRegistry();
  std::lock_guard<std::mutex> Lock(R.M);
  std::vector<std::shared_ptr<SpanStack>> Out;
  Out.reserve(R.Stacks.size());
  for (size_t I = 0; I < R.Stacks.size();) {
    if (std::shared_ptr<SpanStack> S = R.Stacks[I].lock()) {
      Out.push_back(std::move(S));
      ++I;
    } else {
      R.Stacks[I] = std::move(R.Stacks.back());
      R.Stacks.pop_back();
    }
  }
  return Out;
}

uint64_t gadt::obs::detail::currentSpanId() {
  SpanStack &S = threadSpanStack();
  uint32_t D = S.Depth.load(std::memory_order_relaxed);
  if (D == 0)
    return 0;
  if (D > SpanStack::MaxDepth)
    D = SpanStack::MaxDepth;
  return S.Ids[D - 1].load(std::memory_order_relaxed);
}

uint64_t FlowContext::current() { return CurrentFlowId; }

uint64_t FlowContext::nextId() {
  return NextFlowId.fetch_add(1, std::memory_order_relaxed);
}

FlowContext::Scope::Scope(uint64_t Id) : Prev(CurrentFlowId) {
  CurrentFlowId = Id;
}

FlowContext::Scope::~Scope() { CurrentFlowId = Prev; }

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

Tracer::Tracer()
    : Id(NextTracerId.fetch_add(1, std::memory_order_relaxed)),
      Epoch(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() {
  if (isEnabled())
    disable();
  flush();
}

Tracer &Tracer::global() {
  static Tracer T;
  return T;
}

void Tracer::enableToFile(std::string Path) {
  {
    std::lock_guard<std::mutex> Lock(FileM);
    FilePath = std::move(Path);
    FileStarted = false;
  }
  enable();
}

void Tracer::enable() {
  Enabled.store(true, std::memory_order_relaxed);
  if (this == &global())
    detail::ActiveModes.fetch_or(detail::ModeTrace,
                                 std::memory_order_relaxed);
}

void Tracer::disable() {
  Enabled.store(false, std::memory_order_relaxed);
  if (this == &global())
    detail::ActiveModes.fetch_and(~detail::ModeTrace,
                                  std::memory_order_relaxed);
}

uint64_t Tracer::nowNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

Tracer::ThreadBuf &Tracer::threadBuf() {
  // One-entry per-thread cache: almost every process has exactly one
  // tracer, so the map lookup below runs once per (thread, tracer).
  struct Cache {
    uint64_t TracerId = 0;
    ThreadBuf *Buf = nullptr;
  };
  thread_local Cache C;
  if (C.TracerId == Id && C.Buf)
    return *C.Buf;
  std::lock_guard<std::mutex> Lock(BufsM);
  std::unique_ptr<ThreadBuf> &Slot = Bufs[std::this_thread::get_id()];
  if (!Slot) {
    Slot = std::make_unique<ThreadBuf>();
    Slot->Tid = NextTid++;
  }
  C.TracerId = Id;
  C.Buf = Slot.get();
  return *Slot;
}

uint32_t Tracer::threadId() { return threadBuf().Tid; }

void Tracer::record(TraceEvent E) {
  ThreadBuf &B = threadBuf();
  E.Tid = B.Tid;
  size_t Max = MaxEventsPerThread.load(std::memory_order_relaxed);
  std::unique_lock<std::mutex> Lock(B.M);
  if (B.Events.size() >= Max) {
    Lock.unlock();
    // The global counter survives the tracer and is cheap to resolve once.
    static Counter &Dropped =
        Registry::global().counter("obs.trace.dropped");
    Dropped.add();
    return;
  }
  B.Events.push_back(std::move(E));
}

void Tracer::completeEvent(const char *Name, const char *Cat,
                           uint64_t TsNanos, uint64_t DurNanos,
                           std::vector<TraceArg> Args) {
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Phase = 'X';
  E.TsNanos = TsNanos;
  E.DurNanos = DurNanos;
  E.Args = std::move(Args);
  record(std::move(E));
}

void Tracer::instant(const char *Name, const char *Cat,
                     std::vector<TraceArg> Args) {
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Phase = 'i';
  E.TsNanos = nowNanos();
  E.ParentId = detail::currentSpanId();
  E.Args = std::move(Args);
  record(std::move(E));
}

void Tracer::flowEvent(char Phase, const char *Name, const char *Cat,
                       uint64_t FlowId) {
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Phase = Phase;
  E.TsNanos = nowNanos();
  E.FlowId = FlowId;
  E.ParentId = detail::currentSpanId();
  record(std::move(E));
}

void Tracer::setThreadName(const char *Name) {
  TraceEvent E;
  E.Name = "thread_name";
  E.Cat = "__metadata";
  E.Phase = 'M';
  E.TsNanos = 0;
  E.Args.push_back({"name", Name, /*Quote=*/true});
  record(std::move(E));
}

uint64_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> Lock(BufsM);
  uint64_t N = 0;
  for (const auto &[Tid, Buf] : Bufs) {
    std::lock_guard<std::mutex> BufLock(Buf->M);
    N += Buf->Events.size();
  }
  return N;
}

std::string Tracer::exportJsonl() {
  std::vector<TraceEvent> All;
  {
    std::lock_guard<std::mutex> Lock(BufsM);
    for (auto &[Tid, Buf] : Bufs) {
      std::lock_guard<std::mutex> BufLock(Buf->M);
      All.insert(All.end(), std::make_move_iterator(Buf->Events.begin()),
                 std::make_move_iterator(Buf->Events.end()));
      Buf->Events.clear();
    }
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.TsNanos < B.TsNanos;
                   });
  std::string Out;
  for (const TraceEvent &E : All) {
    Out += renderEvent(E);
    Out += '\n';
  }
  return Out;
}

void Tracer::flush() {
  std::string Path;
  bool Truncate;
  {
    std::lock_guard<std::mutex> Lock(FileM);
    if (FilePath.empty())
      return;
    Path = FilePath;
    Truncate = !FileStarted;
    FileStarted = true;
  }
  std::string Lines = exportJsonl();
  std::ofstream Out(Path, Truncate ? std::ios::trunc : std::ios::app);
  Out << Lines;
}

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

void Span::begin(const char *N, const char *C, uint32_t Modes) {
  Live = true;
  Rec = Modes & detail::ModeTrace;
  Name = N;
  Cat = C;
  SpanStack &S = detail::threadSpanStack();
  uint32_t D = S.Depth.load(std::memory_order_relaxed);
  if (D > 0 && D <= SpanStack::MaxDepth)
    ParentId = S.Ids[D - 1].load(std::memory_order_relaxed);
  SpanId = NextSpanId.fetch_add(1, std::memory_order_relaxed);
  if (D < SpanStack::MaxDepth) {
    // Name before Depth (release) so a sampler that observes the new depth
    // also observes the name.
    S.Names[D].store(N, std::memory_order_relaxed);
    S.Ids[D].store(SpanId, std::memory_order_relaxed);
    S.Depth.store(D + 1, std::memory_order_release);
    Pushed = true;
  }
  if (Rec)
    StartNanos = Tracer::global().nowNanos();
}

void Span::end() {
  if (Pushed) {
    SpanStack &S = detail::threadSpanStack();
    uint32_t D = S.Depth.load(std::memory_order_relaxed);
    if (D > 0)
      S.Depth.store(D - 1, std::memory_order_release);
  }
  if (!Rec)
    return;
  Tracer &T = Tracer::global();
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Phase = 'X';
  E.TsNanos = StartNanos;
  uint64_t Now = T.nowNanos();
  E.DurNanos = Now > StartNanos ? Now - StartNanos : 0;
  E.SpanId = SpanId;
  E.ParentId = ParentId;
  E.Args = std::move(Args);
  T.record(std::move(E));
}

namespace {

/// Reads GADT_TRACE at static-initialization time so tracing covers the
/// whole program without any code change in the traced binary. An optional
/// ":<n>" suffix (all digits) caps buffered events per thread. Also kicks
/// the profiler's and exporter's env inits: the explicit calls keep their
/// translation units in static-library links (an unreferenced object file
/// is dropped by the archive linker, env-init globals and all).
struct EnvInit {
  EnvInit() {
    Profiler::envInit();
    Exporter::envInit();
    const char *Spec = std::getenv("GADT_TRACE");
    if (!Spec || !*Spec)
      return;
    std::string Path(Spec);
    size_t Colon = Path.rfind(':');
    if (Colon != std::string::npos && Colon + 1 < Path.size() &&
        Path.find_first_not_of("0123456789", Colon + 1) ==
            std::string::npos) {
      Tracer::global().setMaxEventsPerThread(
          std::strtoull(Path.c_str() + Colon + 1, nullptr, 10));
      Path.resize(Colon);
    }
    if (!Path.empty())
      Tracer::global().enableToFile(Path);
  }
};
EnvInit TheEnvInit;

} // namespace
