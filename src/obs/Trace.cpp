//===- Trace.cpp - RAII span tracer with JSONL export ---------------------===//

#include "obs/Trace.h"

#include "support/JSON.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace gadt;
using namespace gadt::obs;

std::atomic<bool> gadt::obs::detail::GloballyEnabled{false};

namespace {

std::atomic<uint64_t> NextTracerId{1};

/// Renders one event as a Chrome Trace Event Format JSON object.
/// Timestamps are microseconds with nanosecond precision (ts/dur are
/// fractional micros, the unit chrome://tracing expects).
std::string renderEvent(const TraceEvent &E) {
  std::string Line;
  Line.reserve(128);
  char Buf[64];
  Line += "{\"name\":\"";
  Line += json::escape(E.Name);
  Line += "\",\"cat\":\"";
  Line += json::escape(E.Cat);
  Line += "\",\"ph\":\"";
  Line += E.Phase;
  Line += "\",\"pid\":1,\"tid\":";
  std::snprintf(Buf, sizeof(Buf), "%u", E.Tid);
  Line += Buf;
  std::snprintf(Buf, sizeof(Buf), ",\"ts\":%llu.%03u",
                static_cast<unsigned long long>(E.TsNanos / 1000),
                static_cast<unsigned>(E.TsNanos % 1000));
  Line += Buf;
  if (E.Phase == 'X') {
    std::snprintf(Buf, sizeof(Buf), ",\"dur\":%llu.%03u",
                  static_cast<unsigned long long>(E.DurNanos / 1000),
                  static_cast<unsigned>(E.DurNanos % 1000));
    Line += Buf;
  }
  if (E.Phase == 'i')
    Line += ",\"s\":\"t\""; // thread-scoped instant
  if (!E.Args.empty()) {
    Line += ",\"args\":{";
    bool First = true;
    for (const TraceArg &A : E.Args) {
      if (!First)
        Line += ',';
      First = false;
      Line += '"';
      Line += json::escape(A.Key);
      Line += "\":";
      if (A.Quote) {
        Line += '"';
        Line += json::escape(A.Val);
        Line += '"';
      } else {
        Line += A.Val;
      }
    }
    Line += '}';
  }
  Line += '}';
  return Line;
}

} // namespace

Tracer::Tracer()
    : Id(NextTracerId.fetch_add(1, std::memory_order_relaxed)),
      Epoch(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() {
  if (isEnabled())
    disable();
  flush();
}

Tracer &Tracer::global() {
  static Tracer T;
  return T;
}

void Tracer::enableToFile(std::string Path) {
  {
    std::lock_guard<std::mutex> Lock(FileM);
    FilePath = std::move(Path);
    FileStarted = false;
  }
  enable();
}

void Tracer::enable() {
  Enabled.store(true, std::memory_order_relaxed);
  if (this == &global())
    detail::GloballyEnabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  Enabled.store(false, std::memory_order_relaxed);
  if (this == &global())
    detail::GloballyEnabled.store(false, std::memory_order_relaxed);
}

uint64_t Tracer::nowNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

Tracer::ThreadBuf &Tracer::threadBuf() {
  // One-entry per-thread cache: almost every process has exactly one
  // tracer, so the map lookup below runs once per (thread, tracer).
  struct Cache {
    uint64_t TracerId = 0;
    ThreadBuf *Buf = nullptr;
  };
  thread_local Cache C;
  if (C.TracerId == Id && C.Buf)
    return *C.Buf;
  std::lock_guard<std::mutex> Lock(BufsM);
  std::unique_ptr<ThreadBuf> &Slot = Bufs[std::this_thread::get_id()];
  if (!Slot) {
    Slot = std::make_unique<ThreadBuf>();
    Slot->Tid = NextTid++;
  }
  C.TracerId = Id;
  C.Buf = Slot.get();
  return *Slot;
}

void Tracer::record(TraceEvent E) {
  ThreadBuf &B = threadBuf();
  E.Tid = B.Tid;
  std::lock_guard<std::mutex> Lock(B.M);
  B.Events.push_back(std::move(E));
}

void Tracer::completeEvent(const char *Name, const char *Cat,
                           uint64_t TsNanos, uint64_t DurNanos,
                           std::vector<TraceArg> Args) {
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Phase = 'X';
  E.TsNanos = TsNanos;
  E.DurNanos = DurNanos;
  E.Args = std::move(Args);
  record(std::move(E));
}

void Tracer::instant(const char *Name, const char *Cat,
                     std::vector<TraceArg> Args) {
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Phase = 'i';
  E.TsNanos = nowNanos();
  E.Args = std::move(Args);
  record(std::move(E));
}

uint64_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> Lock(BufsM);
  uint64_t N = 0;
  for (const auto &[Tid, Buf] : Bufs) {
    std::lock_guard<std::mutex> BufLock(Buf->M);
    N += Buf->Events.size();
  }
  return N;
}

std::string Tracer::exportJsonl() {
  std::vector<TraceEvent> All;
  {
    std::lock_guard<std::mutex> Lock(BufsM);
    for (auto &[Tid, Buf] : Bufs) {
      std::lock_guard<std::mutex> BufLock(Buf->M);
      All.insert(All.end(), std::make_move_iterator(Buf->Events.begin()),
                 std::make_move_iterator(Buf->Events.end()));
      Buf->Events.clear();
    }
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.TsNanos < B.TsNanos;
                   });
  std::string Out;
  for (const TraceEvent &E : All) {
    Out += renderEvent(E);
    Out += '\n';
  }
  return Out;
}

void Tracer::flush() {
  std::string Path;
  bool Truncate;
  {
    std::lock_guard<std::mutex> Lock(FileM);
    if (FilePath.empty())
      return;
    Path = FilePath;
    Truncate = !FileStarted;
    FileStarted = true;
  }
  std::string Lines = exportJsonl();
  std::ofstream Out(Path, Truncate ? std::ios::trunc : std::ios::app);
  Out << Lines;
}

void Span::begin(const char *N, const char *C) {
  Live = true;
  Name = N;
  Cat = C;
  StartNanos = Tracer::global().nowNanos();
}

void Span::end() {
  Tracer &T = Tracer::global();
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Phase = 'X';
  E.TsNanos = StartNanos;
  uint64_t Now = T.nowNanos();
  E.DurNanos = Now > StartNanos ? Now - StartNanos : 0;
  E.Args = std::move(Args);
  T.record(std::move(E));
}

namespace {

/// Reads GADT_TRACE at static-initialization time so tracing covers the
/// whole program without any code change in the traced binary.
struct EnvInit {
  EnvInit() {
    if (const char *Path = std::getenv("GADT_TRACE"))
      if (*Path)
        Tracer::global().enableToFile(Path);
  }
};
EnvInit TheEnvInit;

} // namespace
