//===- Metrics.h - Unified metrics registry ---------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central metrics registry: named counters, gauges and duration
/// histograms under consistent dotted names. It unifies the accounting the
/// repo previously scattered over three disconnected structs —
/// transform::TransformStats, core::SessionStats and runtime::RuntimeStats
/// all still exist and still work, but their totals are now also routed
/// here, so one snapshot answers "what did this process do":
///
///   frontend.parses            transform.globals_converted
///   debug.queries.user         runtime.cache.sdg.hits
///   interp.steps               runtime.session.micros (histogram)
///
/// Instruments are created on first use and never destroyed, so references
/// returned by counter()/gauge()/histogram() are stable for the registry's
/// lifetime and may be cached by hot paths. All mutation is relaxed-atomic;
/// the registry is safe to use from any number of threads.
///
/// Snapshots render as JSON (support/JSON.h) for machine consumption or as
/// aligned text for humans.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_OBS_METRICS_H
#define GADT_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gadt {
namespace obs {

/// Monotonically increasing event count.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A value that goes up and down (e.g. distinct subjects cached).
class Gauge {
public:
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  void add(int64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Power-of-two-bucketed histogram of non-negative values (durations in
/// microseconds, sizes, ...). Bucket i counts values whose bit width is i,
/// i.e. values in [2^(i-1), 2^i - 1] (bucket 0 counts zeros). Exact count,
/// sum, min and max are kept alongside.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 64;

  void observe(uint64_t V) {
    Buckets[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
    atomicMin(Min, V);
    atomicMax(Max, V);
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t min() const {
    uint64_t M = Min.load(std::memory_order_relaxed);
    return M == UINT64_MAX ? 0 : M;
  }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  uint64_t bucket(unsigned I) const {
    return I < NumBuckets ? Buckets[I].load(std::memory_order_relaxed) : 0;
  }
  /// Inclusive upper bound of bucket \p I.
  static uint64_t bucketBound(unsigned I) {
    return I == 0 ? 0 : (I >= 64 ? UINT64_MAX : (uint64_t(1) << I) - 1);
  }
  /// Inclusive lower bound of bucket \p I.
  static uint64_t bucketLowerBound(unsigned I) {
    return I <= 1 ? I : uint64_t(1) << (I - 1);
  }

  /// Approximate quantile by linear interpolation inside the bucket where
  /// the rank ceil(Q*count) lands, clamped to the exact observed [min,max]
  /// — so single-bucket populations (and Q=0/Q=1) come out exact. Returns
  /// 0 on an empty histogram. \p Q is clamped to [0,1].
  double approxQuantile(double Q) const {
    uint64_t N = count();
    if (N == 0)
      return 0.0;
    if (Q < 0.0)
      Q = 0.0;
    if (Q > 1.0)
      Q = 1.0;
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(N));
    if (Rank * 1.0 < Q * static_cast<double>(N)) // ceil without <cmath>
      ++Rank;
    if (Rank == 0)
      Rank = 1;
    uint64_t Cum = 0;
    for (unsigned I = 0; I < NumBuckets; ++I) {
      uint64_t B = bucket(I);
      if (B == 0)
        continue;
      if (Cum + B >= Rank) {
        double Lo = static_cast<double>(bucketLowerBound(I));
        double Hi = static_cast<double>(bucketBound(I));
        double Frac = static_cast<double>(Rank - Cum) /
                      static_cast<double>(B);
        double V = Lo + Frac * (Hi - Lo);
        double Mn = static_cast<double>(min());
        double Mx = static_cast<double>(max());
        return V < Mn ? Mn : (V > Mx ? Mx : V);
      }
      Cum += B;
    }
    return static_cast<double>(max());
  }

  static unsigned bucketOf(uint64_t V) {
    unsigned W = 0;
    while (V) {
      ++W;
      V >>= 1;
    }
    return W;
  }

private:
  static void atomicMin(std::atomic<uint64_t> &A, uint64_t V) {
    uint64_t Cur = A.load(std::memory_order_relaxed);
    while (V < Cur &&
           !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }
  static void atomicMax(std::atomic<uint64_t> &A, uint64_t V) {
    uint64_t Cur = A.load(std::memory_order_relaxed);
    while (V > Cur &&
           !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }

  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

/// Named instruments, created on first use. One process-wide default
/// (Registry::global()); independent instances for scoped accounting (the
/// batch runtime's RuntimeContext can own one, tests build private ones).
class Registry {
public:
  Registry() = default;
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  static Registry &global();

  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Current value of the named counter; 0 when it was never touched.
  uint64_t counterValue(std::string_view Name) const;
  int64_t gaugeValue(std::string_view Name) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histograms render count/sum/min/max, approximate p50/p95/p99, and the
  /// non-empty [bound,count] bucket pairs.
  std::string jsonSnapshot() const;

  /// Aligned "name value" lines, counters then gauges then histograms.
  std::string str() const;

  /// A point-in-time copy of every instrument's value, name-sorted — the
  /// exporter diffs two of these to emit deltas, and renders the latest
  /// as the Prometheus exposition.
  struct HistogramStats {
    uint64_t Count = 0, Sum = 0, Min = 0, Max = 0;
    double P50 = 0, P95 = 0, P99 = 0;
  };
  struct SnapshotData {
    std::vector<std::pair<std::string, uint64_t>> Counters;
    std::vector<std::pair<std::string, int64_t>> Gauges;
    std::vector<std::pair<std::string, HistogramStats>> Histograms;
  };
  SnapshotData snapshotData() const;

private:
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
};

} // namespace obs
} // namespace gadt

#endif // GADT_OBS_METRICS_H
