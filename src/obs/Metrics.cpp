//===- Metrics.cpp - Unified metrics registry -----------------------------===//

#include "obs/Metrics.h"

#include "support/JSON.h"

#include <algorithm>
#include <vector>

using namespace gadt;
using namespace gadt::obs;

Registry &Registry::global() {
  static Registry R;
  return R;
}

Counter &Registry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
  return *It->second;
}

Gauge &Registry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
  return *It->second;
}

Histogram &Registry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(std::string(Name), std::make_unique<Histogram>())
             .first;
  return *It->second;
}

uint64_t Registry::counterValue(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second->value();
}

int64_t Registry::gaugeValue(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? 0 : It->second->value();
}

std::string Registry::jsonSnapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.key("counters").beginObject();
  for (const auto &[Name, C] : Counters)
    W.key(Name).value(C->value());
  W.endObject();
  W.key("gauges").beginObject();
  for (const auto &[Name, G] : Gauges)
    W.key(Name).value(static_cast<int64_t>(G->value()));
  W.endObject();
  W.key("histograms").beginObject();
  for (const auto &[Name, H] : Histograms) {
    W.key(Name).beginObject();
    W.key("count").value(H->count());
    W.key("sum").value(H->sum());
    W.key("min").value(H->min());
    W.key("max").value(H->max());
    W.key("p50").value(H->approxQuantile(0.50));
    W.key("p95").value(H->approxQuantile(0.95));
    W.key("p99").value(H->approxQuantile(0.99));
    W.key("buckets").beginArray();
    for (unsigned I = 0; I < Histogram::NumBuckets; ++I) {
      uint64_t N = H->bucket(I);
      if (!N)
        continue;
      W.beginArray().value(Histogram::bucketBound(I)).value(N).endArray();
    }
    W.endArray();
    W.endObject();
  }
  W.endObject();
  W.endObject();
  return Out;
}

std::string Registry::str() const {
  std::lock_guard<std::mutex> Lock(M);
  size_t Width = 0;
  for (const auto &[Name, C] : Counters)
    Width = std::max(Width, Name.size());
  for (const auto &[Name, G] : Gauges)
    Width = std::max(Width, Name.size());
  for (const auto &[Name, H] : Histograms)
    Width = std::max(Width, Name.size());

  std::string Out;
  auto Line = [&](const std::string &Name, const std::string &Val) {
    Out += Name;
    Out.append(Width + 2 - Name.size(), ' ');
    Out += Val;
    Out += '\n';
  };
  for (const auto &[Name, C] : Counters)
    Line(Name, std::to_string(C->value()));
  for (const auto &[Name, G] : Gauges)
    Line(Name, std::to_string(G->value()));
  for (const auto &[Name, H] : Histograms) {
    uint64_t N = H->count();
    std::string Val = "count " + std::to_string(N) + " sum " +
                      std::to_string(H->sum()) + " min " +
                      std::to_string(H->min()) + " max " +
                      std::to_string(H->max());
    if (N) {
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf),
                    " avg %llu p50 %.1f p95 %.1f p99 %.1f",
                    static_cast<unsigned long long>(H->sum() / N),
                    H->approxQuantile(0.50), H->approxQuantile(0.95),
                    H->approxQuantile(0.99));
      Val += Buf;
    }
    Line(Name, Val);
  }
  return Out;
}

Registry::SnapshotData Registry::snapshotData() const {
  std::lock_guard<std::mutex> Lock(M);
  SnapshotData S;
  S.Counters.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    S.Counters.emplace_back(Name, C->value());
  S.Gauges.reserve(Gauges.size());
  for (const auto &[Name, G] : Gauges)
    S.Gauges.emplace_back(Name, G->value());
  S.Histograms.reserve(Histograms.size());
  for (const auto &[Name, H] : Histograms) {
    HistogramStats St;
    St.Count = H->count();
    St.Sum = H->sum();
    St.Min = H->min();
    St.Max = H->max();
    St.P50 = H->approxQuantile(0.50);
    St.P95 = H->approxQuantile(0.95);
    St.P99 = H->approxQuantile(0.99);
    S.Histograms.emplace_back(Name, St);
  }
  return S;
}
