//===- Log.cpp - Structured leveled JSONL logging -------------------------===//

#include "obs/Log.h"

#include "support/JSON.h"

#include <cstdlib>
#include <fstream>

using namespace gadt;
using namespace gadt::obs;

const char *gadt::obs::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  }
  return "info";
}

bool gadt::obs::parseLogLevel(std::string_view S, LogLevel &Out) {
  if (S == "debug")
    Out = LogLevel::Debug;
  else if (S == "info")
    Out = LogLevel::Info;
  else if (S == "warn")
    Out = LogLevel::Warn;
  else if (S == "error")
    Out = LogLevel::Error;
  else
    return false;
  return true;
}

Log::Log() = default;

Log::~Log() { flush(); }

Log &Log::global() {
  static Log L;
  return L;
}

void Log::enableToFile(std::string Path, LogLevel Min) {
  {
    std::lock_guard<std::mutex> Lock(M);
    FilePath = std::move(Path);
    FileStarted = false;
  }
  Threshold.store(static_cast<uint8_t>(Min), std::memory_order_relaxed);
}

void Log::enable(LogLevel Min) {
  {
    std::lock_guard<std::mutex> Lock(M);
    FilePath.clear();
    FileStarted = false;
  }
  Threshold.store(static_cast<uint8_t>(Min), std::memory_order_relaxed);
}

void Log::disable() {
  Threshold.store(255, std::memory_order_relaxed);
  flush();
}

void Log::write(LogLevel L, const char *Component, std::string_view Msg,
                std::vector<TraceArg> Fields) {
  if (!enabledFor(L))
    return;
  // Trim one trailing newline so multi-line diagnostic dumps render as one
  // record without an empty tail line.
  while (!Msg.empty() && (Msg.back() == '\n' || Msg.back() == '\r'))
    Msg.remove_suffix(1);

  // Render outside the sink lock: only the append is serialized.
  uint64_t TsNanos = Tracer::global().nowNanos();
  uint32_t Tid = Tracer::global().threadId();
  std::string Line;
  Line.reserve(96 + Msg.size());
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "{\"ts\":%llu.%03u",
                static_cast<unsigned long long>(TsNanos / 1000),
                static_cast<unsigned>(TsNanos % 1000));
  Line += Buf;
  Line += ",\"level\":\"";
  Line += logLevelName(L);
  Line += "\",\"component\":\"";
  Line += json::escape(Component);
  Line += "\",\"tid\":";
  std::snprintf(Buf, sizeof(Buf), "%u", Tid);
  Line += Buf;
  Line += ",\"msg\":\"";
  Line += json::escape(Msg);
  Line += '"';
  if (!Fields.empty()) {
    Line += ",\"fields\":{";
    bool First = true;
    for (const TraceArg &F : Fields) {
      if (!First)
        Line += ',';
      First = false;
      Line += '"';
      Line += json::escape(F.Key);
      Line += "\":";
      if (F.Quote) {
        Line += '"';
        Line += json::escape(F.Val);
        Line += '"';
      } else {
        Line += F.Val;
      }
    }
    Line += '}';
  }
  Line += '}';

  Records.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(M);
  Buffer.push_back(std::move(Line));
  // Warnings and errors hit the file immediately; lower levels batch.
  if (!FilePath.empty() &&
      (L >= LogLevel::Warn || Buffer.size() >= 64))
    flushLocked();
}

std::string Log::drain() {
  std::lock_guard<std::mutex> Lock(M);
  std::string Out;
  for (const std::string &L : Buffer) {
    Out += L;
    Out += '\n';
  }
  Buffer.clear();
  return Out;
}

void Log::flush() {
  std::lock_guard<std::mutex> Lock(M);
  if (!FilePath.empty())
    flushLocked();
}

void Log::flushLocked() {
  if (Buffer.empty())
    return;
  std::ofstream Out(FilePath,
                    FileStarted ? std::ios::app : std::ios::trunc);
  FileStarted = true;
  for (const std::string &L : Buffer) {
    Out << L;
    Out << '\n';
  }
  Buffer.clear();
}

namespace {

/// Reads GADT_LOG=<path>[:level] at static-initialization time.
struct LogEnvInit {
  LogEnvInit() {
    const char *Spec = std::getenv("GADT_LOG");
    if (!Spec || !*Spec)
      return;
    std::string Path(Spec);
    LogLevel Min = LogLevel::Info;
    size_t Colon = Path.rfind(':');
    if (Colon != std::string::npos) {
      LogLevel Parsed;
      if (parseLogLevel(std::string_view(Path).substr(Colon + 1), Parsed)) {
        Min = Parsed;
        Path.resize(Colon);
      }
    }
    if (!Path.empty())
      Log::global().enableToFile(Path, Min);
  }
};
LogEnvInit TheLogEnvInit;

} // namespace
