//===- Profiler.h - Sampling span-stack profiler ----------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sampling profiler over the span hierarchy: a background thread wakes
/// at a configurable rate and snapshots every registered thread's current
/// span stack (obs::SpanStack — maintained by obs::Span whenever any
/// telemetry mode is on). Samples aggregate into a span-path table
/// ("session;debug;judgement" → count) exported as collapsed-stack text
/// (one `path count` line per path — the input format of
/// flamegraph.pl / speedscope / inferno) and as JSON with sampling
/// metadata.
///
/// Cost model: zero when off — spans skip stack maintenance entirely, and
/// no sampler thread exists. While running, each sampled thread pays only
/// the release-store push/pop it already pays under tracing; the sampler
/// thread does all aggregation. Threads whose stack is empty at a sample
/// (workers parked on the queue) count as idle and are excluded from the
/// path table, so the exported profile attributes every sample to named
/// spans.
///
/// Enable for any binary with GADT_PROFILE=<path>[:hz] (default 97 Hz):
/// the collapsed profile is written to <path> and the JSON form to
/// <path>.json at process exit. From code: Profiler::global().start(hz),
/// stop(), collapsed() / jsonProfile().
///
/// Thread-safety: start/stop are serialized by a mutex and may race span
/// open/close freely (the mode bit and the stacks are atomics); the
/// aggregation table is owned by the sampler loop and only handed over
/// under the same mutex. TSan-clean.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_OBS_PROFILER_H
#define GADT_OBS_PROFILER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace gadt {
namespace obs {

class Profiler {
public:
  Profiler();
  ~Profiler();

  Profiler(const Profiler &) = delete;
  Profiler &operator=(const Profiler &) = delete;

  /// The process-wide profiler (the one GADT_PROFILE starts).
  static Profiler &global();

  /// Applies GADT_PROFILE=<path>[:hz] to the global profiler, once.
  /// Called from the tracer's environment init so this translation unit is
  /// kept by static-library links even when nothing names a Profiler.
  static void envInit();

  /// Starts the sampler thread at \p Hz samples/sec (clamped to
  /// [1, 10000]). No-op when already running.
  void start(double Hz = 97.0);
  /// Stops and joins the sampler; aggregated results remain readable. If
  /// an output path is set, writes the collapsed profile and its JSON
  /// sibling.
  void stop();
  bool isRunning() const { return Running.load(std::memory_order_acquire); }

  /// Discards aggregated samples (not allowed while running).
  void clear();

  /// Samples that found at least one open span / that found none.
  uint64_t sampleCount() const {
    return Samples.load(std::memory_order_relaxed);
  }
  uint64_t idleSampleCount() const {
    return IdleSamples.load(std::memory_order_relaxed);
  }

  /// Collapsed-stack text: "outer;inner;leaf 42\n" per distinct path,
  /// path-sorted. Empty when nothing was sampled.
  std::string collapsed() const;
  /// {"hz":...,"samples":N,"idle_samples":M,"stacks":{"a;b":n,...}}
  std::string jsonProfile() const;

  /// Where stop() (and process exit) writes the profile; the JSON form
  /// goes to <path>.json.
  void setOutputPath(std::string Path);

private:
  void samplerLoop();

  mutable std::mutex M; ///< guards Paths, Thread, OutPath, start/stop
  std::map<std::string, uint64_t> Paths;
  std::atomic<uint64_t> Samples{0};
  std::atomic<uint64_t> IdleSamples{0};
  std::atomic<bool> Running{false};
  std::atomic<uint64_t> IntervalNanos{0};
  double Hz = 0;
  std::thread Thread;
  std::string OutPath;
};

} // namespace obs
} // namespace gadt

#endif // GADT_OBS_PROFILER_H
