//===- Symbols.h - Interned strings -----------------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide string interner. A Symbol is a 4-byte handle to a unique,
/// immutable string in a global pool: equality is an integer compare and a
/// binding name costs one word instead of a heap string. The tracing layer
/// stores every unit and binding name as a Symbol, so the millions of
/// bindings a large execution tree carries share one copy of each name.
///
/// Interning is thread-safe (readers take a shared lock; the pool is
/// read-mostly after warm-up) and ids are stable for the process lifetime,
/// which lets cross-session caches key on them. Ids are *not* stable across
/// processes or ordered lexicographically — anything user-visible must
/// render via str().
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SUPPORT_SYMBOLS_H
#define GADT_SUPPORT_SYMBOLS_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace gadt {
namespace support {

/// An interned string handle. Value-semantic, 4 bytes, trivially copyable.
/// Id 0 is the empty string, so a default Symbol is "" (matching the
/// default-constructed std::string it replaces).
class Symbol {
public:
  Symbol() = default;
  Symbol(std::string_view S) : Id(intern(S)) {}
  Symbol(const std::string &S) : Id(intern(S)) {}
  Symbol(const char *S) : Id(intern(S)) {}

  /// The interned string; valid for the process lifetime.
  const std::string &str() const;
  /// Implicit view as the interned string, so call sites that pass or
  /// assign names to std::string keep compiling unchanged.
  operator const std::string &() const { return str(); }

  bool empty() const { return Id == 0; }
  uint32_t id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  // Exact-match overloads against plain strings: interning the right-hand
  // side of every comparison would be wasteful (and would grow the pool
  // with transient probe strings), so compare content instead.
  friend bool operator==(Symbol A, const std::string &B) {
    return A.str() == B;
  }
  friend bool operator==(const std::string &A, Symbol B) {
    return A == B.str();
  }
  friend bool operator==(Symbol A, const char *B) { return A.str() == B; }
  friend bool operator==(const char *A, Symbol B) { return B.str() == A; }
  friend bool operator!=(Symbol A, const std::string &B) { return !(A == B); }
  friend bool operator!=(const std::string &A, Symbol B) { return !(A == B); }
  friend bool operator!=(Symbol A, const char *B) { return !(A == B); }
  friend bool operator!=(const char *A, Symbol B) { return !(A == B); }

private:
  static uint32_t intern(std::string_view S);

  uint32_t Id = 0;
};

std::ostream &operator<<(std::ostream &OS, Symbol S);

/// Number of distinct strings interned so far (diagnostics/tests).
size_t symbolPoolSize();

} // namespace support
} // namespace gadt

#endif // GADT_SUPPORT_SYMBOLS_H
