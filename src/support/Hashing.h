//===- Hashing.h - Stable hashing and program fingerprints ------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stable (process-independent) hashing for the batch runtime's shared
/// caches. The transform cache, the SDG cache and the static-slice memo are
/// keyed by a *program fingerprint*: the FNV-1a hash of the canonical
/// pretty-print of the checked AST, so that textual noise (whitespace,
/// comments, identifier case) does not defeat sharing, while any semantic
/// difference changes the key.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SUPPORT_HASHING_H
#define GADT_SUPPORT_HASHING_H

#include <cstdint>
#include <string>
#include <string_view>

namespace gadt {

namespace pascal {
class Program;
} // namespace pascal

/// 64-bit FNV-1a offset basis — the seed of an incremental hash.
inline constexpr uint64_t FnvOffsetBasis = 0xcbf29ce484222325ULL;

/// Folds \p S into \p Seed with 64-bit FNV-1a. Stable across runs,
/// platforms and processes (unlike std::hash).
uint64_t hashBytes(std::string_view S, uint64_t Seed = FnvOffsetBasis);

/// Order-dependent combination of two hashes (for composite cache keys).
uint64_t hashCombine(uint64_t A, uint64_t B);

/// Renders a hash as 16 lowercase hex digits for logs and reports.
std::string hashHex(uint64_t H);

/// The stable fingerprint of a checked program: FNV-1a over its canonical
/// pretty-print. Two programs with the same fingerprint have identical
/// canonical source, so transformation results, dependence graphs and
/// static slices computed for one are valid for the other.
uint64_t hashProgram(const pascal::Program &P);

} // namespace gadt

#endif // GADT_SUPPORT_HASHING_H
