//===- Hashing.h - Stable hashing and program fingerprints ------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stable (process-independent) hashing for the batch runtime's shared
/// caches. The transform cache, the SDG cache and the static-slice memo are
/// keyed by a *program fingerprint*: the FNV-1a hash of the canonical
/// pretty-print of the checked AST, so that textual noise (whitespace,
/// comments, identifier case) does not defeat sharing, while any semantic
/// difference changes the key.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SUPPORT_HASHING_H
#define GADT_SUPPORT_HASHING_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gadt {

namespace pascal {
class Program;
class RoutineDecl;
} // namespace pascal

/// 64-bit FNV-1a offset basis — the seed of an incremental hash.
inline constexpr uint64_t FnvOffsetBasis = 0xcbf29ce484222325ULL;

/// Folds \p S into \p Seed with 64-bit FNV-1a. Stable across runs,
/// platforms and processes (unlike std::hash).
uint64_t hashBytes(std::string_view S, uint64_t Seed = FnvOffsetBasis);

/// Order-dependent combination of two hashes (for composite cache keys).
uint64_t hashCombine(uint64_t A, uint64_t B);

/// Renders a hash as 16 lowercase hex digits for logs and reports.
std::string hashHex(uint64_t H);

/// The stable fingerprint of a checked program: FNV-1a over its canonical
/// pretty-print. Two programs with the same fingerprint have identical
/// canonical source, so transformation results, dependence graphs and
/// static slices computed for one are valid for the other.
uint64_t hashProgram(const pascal::Program &P);

/// Per-routine fingerprint, the unit of incremental invalidation. The three
/// component hashes separate the ways an edit can be visible from outside
/// the routine body:
///
/// - HeaderHash covers the caller-visible interface: name, procedure vs
///   function, return type, and the parameter list (names, modes, types).
///   A change dirties every caller's PDG and code.
/// - FrameHash covers the storage frame visible to *nested* routines:
///   the slot declarations (params, locals, result) and declared labels.
///   A change dirties everything nested below the routine, whose compiled
///   cell operands and dependence nodes address this frame.
/// - BodyHash covers the body's statement tree (kinds, operators, names,
///   literals — a structural fold equal iff the canonical body prints are
///   equal); a change dirties the routine's own PDG and compiled code.
///
/// FullHash combines all three and answers "did this routine change at
/// all". Hashes are functions of the canonical form only (never of
/// pointers or layout), so they are stable across parses of equal source
/// and across processes.
struct RoutineFingerprint {
  const pascal::RoutineDecl *Routine = nullptr;
  std::string QualifiedName;
  uint64_t HeaderHash = 0;
  uint64_t FrameHash = 0;
  uint64_t BodyHash = 0;
  uint64_t FullHash = 0;
};

/// Fingerprints every routine of \p P in declaration preorder (main first),
/// the same order as analysis::CallGraph::routines() and the SDG's
/// per-routine id ranges, so the two tables index-align.
std::vector<RoutineFingerprint> fingerprintRoutines(const pascal::Program &P);

} // namespace gadt

#endif // GADT_SUPPORT_HASHING_H
