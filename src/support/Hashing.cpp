//===- Hashing.cpp - Stable hashing and program fingerprints --------------===//

#include "support/Hashing.h"

#include "pascal/AST.h"
#include "pascal/PrettyPrinter.h"
#include "support/Casting.h"
#include "pascal/Type.h"

using namespace gadt;

uint64_t gadt::hashBytes(std::string_view S, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL; // FNV-1a 64-bit prime
  }
  return H;
}

uint64_t gadt::hashCombine(uint64_t A, uint64_t B) {
  // Hash the 16-byte concatenation A||B. Seeding with A and folding only B
  // would make the first fold symmetric (A^b0 == B^a0 for small values);
  // hashing both operands' bytes in sequence keeps the combination
  // order-dependent and platform-stable.
  uint64_t H = FnvOffsetBasis;
  for (unsigned Shift = 0; Shift < 64; Shift += 8) {
    H ^= (A >> Shift) & 0xff;
    H *= 0x100000001b3ULL;
  }
  for (unsigned Shift = 0; Shift < 64; Shift += 8) {
    H ^= (B >> Shift) & 0xff;
    H *= 0x100000001b3ULL;
  }
  return H;
}

std::string gadt::hashHex(uint64_t H) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[static_cast<size_t>(I)] = Digits[H & 0xf];
    H >>= 4;
  }
  return Out;
}

uint64_t gadt::hashProgram(const pascal::Program &P) {
  return hashBytes(pascal::printProgram(P));
}

namespace {

/// Incremental FNV-1a sink: the body fingerprint folds the AST structure
/// directly instead of materializing the canonical print — the print is a
/// pure function of the structure folded here (node kinds, operators,
/// names, literal values) and vice versa, so the hash discriminates exactly
/// as well, without the recursive string building.
struct FnvStream {
  uint64_t H = FnvOffsetBasis;
  void byte(uint8_t B) {
    H ^= B;
    H *= 0x100000001b3ULL;
  }
  void bytes(std::string_view S) {
    H = hashBytes(S, H);
    byte(0); // terminator: names/literals never contain NUL
  }
  void u32(uint32_t V) {
    for (unsigned Shift = 0; Shift < 32; Shift += 8)
      byte((V >> Shift) & 0xff);
  }
  void u64(uint64_t V) {
    for (unsigned Shift = 0; Shift < 64; Shift += 8)
      byte((V >> Shift) & 0xff);
  }
};

void foldExpr(FnvStream &S, const pascal::Expr *E) {
  using pascal::Expr;
  if (!E) {
    S.byte(0xff);
    return;
  }
  S.byte(static_cast<uint8_t>(E->getKind()));
  switch (E->getKind()) {
  case Expr::Kind::IntLiteral:
    S.u64(static_cast<uint64_t>(
        cast<pascal::IntLiteralExpr>(E)->getValue()));
    break;
  case Expr::Kind::BoolLiteral:
    S.byte(cast<pascal::BoolLiteralExpr>(E)->getValue() ? 1 : 0);
    break;
  case Expr::Kind::StringLiteral:
    S.bytes(cast<pascal::StringLiteralExpr>(E)->getValue());
    break;
  case Expr::Kind::ArrayLiteral: {
    const auto *AL = cast<pascal::ArrayLiteralExpr>(E);
    S.u32(static_cast<uint32_t>(AL->getElements().size()));
    for (const auto &El : AL->getElements())
      foldExpr(S, El.get());
    break;
  }
  case Expr::Kind::VarRef:
    S.bytes(cast<pascal::VarRefExpr>(E)->getName());
    break;
  case Expr::Kind::Index: {
    const auto *IE = cast<pascal::IndexExpr>(E);
    foldExpr(S, IE->getBase());
    foldExpr(S, IE->getIndex());
    break;
  }
  case Expr::Kind::Call: {
    const auto *CE = cast<pascal::CallExpr>(E);
    S.bytes(CE->getCalleeName());
    S.u32(static_cast<uint32_t>(CE->getArgs().size()));
    for (const auto &Arg : CE->getArgs())
      foldExpr(S, Arg.get());
    break;
  }
  case Expr::Kind::Unary: {
    const auto *UE = cast<pascal::UnaryExpr>(E);
    S.byte(static_cast<uint8_t>(UE->getOp()));
    foldExpr(S, UE->getOperand());
    break;
  }
  case Expr::Kind::Binary: {
    const auto *BE = cast<pascal::BinaryExpr>(E);
    S.byte(static_cast<uint8_t>(BE->getOp()));
    foldExpr(S, BE->getLHS());
    foldExpr(S, BE->getRHS());
    break;
  }
  }
}

void foldStmt(FnvStream &S, const pascal::Stmt *St) {
  using pascal::Stmt;
  if (!St) {
    S.byte(0xfe);
    return;
  }
  S.byte(static_cast<uint8_t>(St->getKind()));
  switch (St->getKind()) {
  case Stmt::Kind::Assign: {
    const auto *AS = cast<pascal::AssignStmt>(St);
    foldExpr(S, AS->getTarget());
    foldExpr(S, AS->getValue());
    break;
  }
  case Stmt::Kind::Compound: {
    const auto *CS = cast<pascal::CompoundStmt>(St);
    S.u32(static_cast<uint32_t>(CS->getBody().size()));
    for (const auto &Sub : CS->getBody())
      foldStmt(S, Sub.get());
    break;
  }
  case Stmt::Kind::If: {
    const auto *IS = cast<pascal::IfStmt>(St);
    foldExpr(S, IS->getCond());
    foldStmt(S, IS->getThen());
    foldStmt(S, IS->getElse());
    break;
  }
  case Stmt::Kind::While: {
    const auto *WS = cast<pascal::WhileStmt>(St);
    foldExpr(S, WS->getCond());
    foldStmt(S, WS->getBody());
    break;
  }
  case Stmt::Kind::Repeat: {
    const auto *RS = cast<pascal::RepeatStmt>(St);
    S.u32(static_cast<uint32_t>(RS->getBody().size()));
    for (const auto &Sub : RS->getBody())
      foldStmt(S, Sub.get());
    foldExpr(S, RS->getCond());
    break;
  }
  case Stmt::Kind::For: {
    const auto *FS = cast<pascal::ForStmt>(St);
    foldExpr(S, FS->getLoopVar());
    foldExpr(S, FS->getFrom());
    foldExpr(S, FS->getTo());
    S.byte(FS->isDownward() ? 1 : 0);
    foldStmt(S, FS->getBody());
    break;
  }
  case Stmt::Kind::ProcCall: {
    const auto *PC = cast<pascal::ProcCallStmt>(St);
    S.bytes(PC->getCalleeName());
    S.u32(static_cast<uint32_t>(PC->getArgs().size()));
    for (const auto &Arg : PC->getArgs())
      foldExpr(S, Arg.get());
    break;
  }
  case Stmt::Kind::Goto:
    S.u64(static_cast<uint64_t>(
        cast<pascal::GotoStmt>(St)->getLabel()));
    break;
  case Stmt::Kind::Labeled: {
    const auto *LS = cast<pascal::LabeledStmt>(St);
    S.u64(static_cast<uint64_t>(LS->getLabel()));
    foldStmt(S, LS->getSub());
    break;
  }
  case Stmt::Kind::Read: {
    const auto *RS = cast<pascal::ReadStmt>(St);
    S.u32(static_cast<uint32_t>(RS->getTargets().size()));
    for (const auto &T : RS->getTargets())
      foldExpr(S, T.get());
    break;
  }
  case Stmt::Kind::Write: {
    const auto *WS = cast<pascal::WriteStmt>(St);
    S.byte(WS->isWriteln() ? 1 : 0);
    S.u32(static_cast<uint32_t>(WS->getArgs().size()));
    for (const auto &Arg : WS->getArgs())
      foldExpr(S, Arg.get());
    break;
  }
  case Stmt::Kind::Empty:
    break;
  }
}

void foldVarDecl(std::string &Out, const pascal::VarDecl *V) {
  Out += V->getName();
  Out += ':';
  if (V->getType())
    Out += V->getType()->str();
  Out += ';';
}

uint64_t headerHashOf(const pascal::RoutineDecl *R) {
  std::string H;
  H += R->getName();
  H += R->isFunction() ? "|f|" : "|p|";
  if (R->isFunction() && R->getReturnType())
    H += R->getReturnType()->str();
  H += '(';
  for (const auto &P : R->getParams()) {
    H += pascal::paramModeSpelling(P->getMode());
    H += ' ';
    foldVarDecl(H, P.get());
  }
  H += ')';
  return hashBytes(H);
}

uint64_t frameHashOf(const pascal::RoutineDecl *R) {
  std::string F;
  for (const auto &P : R->getParams()) {
    F += pascal::paramModeSpelling(P->getMode());
    F += ' ';
    foldVarDecl(F, P.get());
  }
  F += '|';
  for (const auto &L : R->getLocals())
    foldVarDecl(F, L.get());
  F += '|';
  if (const pascal::VarDecl *Res = R->getResultVar())
    foldVarDecl(F, Res);
  F += '|';
  for (int Label : R->getLabels()) {
    F += std::to_string(Label);
    F += ',';
  }
  return hashBytes(F);
}

} // namespace

std::vector<RoutineFingerprint>
gadt::fingerprintRoutines(const pascal::Program &P) {
  std::vector<RoutineFingerprint> Out;
  pascal::forEachRoutine(P.getMain(), [&](pascal::RoutineDecl *R) {
    RoutineFingerprint FP;
    FP.Routine = R;
    FP.QualifiedName = R->qualifiedName();
    FP.HeaderHash = headerHashOf(R);
    FP.FrameHash = frameHashOf(R);
    // The body hash folds the statement tree directly (no nested routine
    // declarations, no sema-assigned loop unit names), so it tracks exactly
    // the statements this routine executes — equal iff the canonical body
    // prints are equal, computed without building the print.
    if (R->getBody()) {
      FnvStream S;
      foldStmt(S, R->getBody());
      FP.BodyHash = S.H;
    } else {
      FP.BodyHash = FnvOffsetBasis;
    }
    FP.FullHash = hashCombine(FP.HeaderHash,
                              hashCombine(FP.FrameHash, FP.BodyHash));
    Out.push_back(std::move(FP));
  });
  return Out;
}
