//===- Hashing.cpp - Stable hashing and program fingerprints --------------===//

#include "support/Hashing.h"

#include "pascal/PrettyPrinter.h"

using namespace gadt;

uint64_t gadt::hashBytes(std::string_view S, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL; // FNV-1a 64-bit prime
  }
  return H;
}

uint64_t gadt::hashCombine(uint64_t A, uint64_t B) {
  // Hash the 16-byte concatenation A||B. Seeding with A and folding only B
  // would make the first fold symmetric (A^b0 == B^a0 for small values);
  // hashing both operands' bytes in sequence keeps the combination
  // order-dependent and platform-stable.
  uint64_t H = FnvOffsetBasis;
  for (unsigned Shift = 0; Shift < 64; Shift += 8) {
    H ^= (A >> Shift) & 0xff;
    H *= 0x100000001b3ULL;
  }
  for (unsigned Shift = 0; Shift < 64; Shift += 8) {
    H ^= (B >> Shift) & 0xff;
    H *= 0x100000001b3ULL;
  }
  return H;
}

std::string gadt::hashHex(uint64_t H) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[static_cast<size_t>(I)] = Digits[H & 0xf];
    H >>= 4;
  }
  return Out;
}

uint64_t gadt::hashProgram(const pascal::Program &P) {
  return hashBytes(pascal::printProgram(P));
}
