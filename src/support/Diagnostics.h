//===- Diagnostics.h - Diagnostic collection --------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Library code never throws or exits; it reports
/// problems here and callers inspect \c hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SUPPORT_DIAGNOSTICS_H
#define GADT_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace gadt {

/// Severity of a single diagnostic.
enum class DiagSeverity { Note, Warning, Error };

/// One reported problem: severity, location and rendered message.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "line:col: error: message" in the style of compiler output
  /// (message starts lowercase, no trailing period).
  std::string str() const;
};

/// Collects diagnostics produced while processing one compilation unit.
///
/// The engine is deliberately simple: diagnostics are appended in order and
/// can be rendered as a batch. An error count is maintained so phases can
/// bail out early with \c hasErrors().
class DiagnosticsEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool empty() const { return Diags.empty(); }

  /// All diagnostics rendered one per line; empty string when none.
  std::string str() const;

  /// Drops all collected diagnostics and resets the error count.
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace gadt

#endif // GADT_SUPPORT_DIAGNOSTICS_H
