//===- StringUtils.cpp - Small string helpers -----------------------------===//

#include "support/StringUtils.h"

#include <cctype>

using namespace gadt;

std::string gadt::toLower(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S)
    Out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(C))));
  return Out;
}

std::string gadt::join(const std::vector<std::string> &Parts,
                       std::string_view Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::vector<std::string> gadt::splitLines(std::string_view S) {
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t NL = S.find('\n', Start);
    if (NL == std::string_view::npos) {
      if (Start < S.size())
        Lines.emplace_back(S.substr(Start));
      break;
    }
    Lines.emplace_back(S.substr(Start, NL - Start));
    Start = NL + 1;
  }
  return Lines;
}

bool gadt::isBlank(std::string_view S) {
  for (char C : S)
    if (!std::isspace(static_cast<unsigned char>(C)))
      return false;
  return true;
}

unsigned gadt::countCodeLines(std::string_view S) {
  unsigned Count = 0;
  for (const std::string &Line : splitLines(S))
    if (!isBlank(Line))
      ++Count;
  return Count;
}
