//===- Parallel.h - Minimal parallel-for helper -----------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny header-only fork-join helper for layers that cannot depend on the
/// runtime's BatchRunner pool (the analysis layer sits below it). Workers
/// pull indices from a shared atomic counter, so irregular per-item costs
/// balance automatically; the call returns only after every index has been
/// processed. Exceptions from the body are rethrown on the caller thread.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SUPPORT_PARALLEL_H
#define GADT_SUPPORT_PARALLEL_H

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace gadt {
namespace support {

/// Resolves a thread-count request: 0 means "one per hardware thread",
/// anything else is taken literally. Always at least 1.
inline unsigned resolveThreads(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

/// Runs Fn(I) for every I in [0, N) using up to \p Threads workers (after
/// resolveThreads). With one worker — or one item — everything runs inline
/// on the calling thread, so serial callers pay no thread setup. \p Fn must
/// be safe to invoke concurrently on distinct indices.
template <typename FnT>
void parallelFor(unsigned Threads, size_t N, FnT Fn) {
  Threads = resolveThreads(Threads);
  if (Threads > N)
    Threads = static_cast<unsigned>(N);
  if (N == 0)
    return;
  if (Threads <= 1) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }
  std::atomic<size_t> Next{0};
  std::exception_ptr Error;
  std::mutex ErrorMu;
  auto Worker = [&] {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      try {
        Fn(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ErrorMu);
        if (!Error)
          Error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> Pool;
  Pool.reserve(Threads - 1);
  for (unsigned T = 1; T != Threads; ++T)
    Pool.emplace_back(Worker);
  Worker();
  for (std::thread &T : Pool)
    T.join();
  if (Error)
    std::rethrow_exception(Error);
}

} // namespace support
} // namespace gadt

#endif // GADT_SUPPORT_PARALLEL_H
