//===- NodeSet.h - Dense node-id bitsets ------------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense id-set used across the substrate layers: execution-tree node ids
/// flowing between the slicers, the tree pruner and the debugger, and SDG
/// vertex ids inside the static analysis. Both id spaces are dense (tree:
/// preorder, 1-based; SDG: arena order), so a bitset beats a balanced tree
/// everywhere one was used: membership is one shift, counting a subtree is
/// a popcount over its id interval (subtrees are contiguous — see
/// ExecTree), and discarding a subtree is a masked word fill instead of
/// per-node erases.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SUPPORT_NODESET_H
#define GADT_SUPPORT_NODESET_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace gadt {
namespace support {

/// A set of dense node ids, stored as a bitset. Grows on insert; ids out
/// of range simply test as absent.
class NodeSet {
public:
  NodeSet() = default;
  /// Pre-sizes for ids in [0, UniverseEnd) — one allocation up front when
  /// the caller knows the tree's id range.
  explicit NodeSet(uint32_t UniverseEnd)
      : Words((UniverseEnd + 63) / 64, 0) {}

  bool contains(uint32_t Id) const {
    size_t W = Id / 64;
    return W < Words.size() && (Words[W] >> (Id % 64)) & 1;
  }
  /// std::set-compatible membership test (0 or 1).
  size_t count(uint32_t Id) const { return contains(Id) ? 1 : 0; }

  void insert(uint32_t Id) {
    size_t W = Id / 64;
    if (W >= Words.size())
      Words.resize(W + 1, 0);
    Words[W] |= uint64_t(1) << (Id % 64);
  }
  void erase(uint32_t Id) {
    size_t W = Id / 64;
    if (W < Words.size())
      Words[W] &= ~(uint64_t(1) << (Id % 64));
  }

  bool empty() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }
  /// Number of ids in the set (full popcount).
  size_t size() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  /// Inserts every id in [B, E).
  void insertRange(uint32_t B, uint32_t E) {
    if (B >= E)
      return;
    size_t Need = (E + 63) / 64;
    if (Need > Words.size())
      Words.resize(Need, 0);
    forRange(B, E, [this](size_t W, uint64_t M) { Words[W] |= M; });
  }
  /// Erases every id in [B, E).
  void eraseRange(uint32_t B, uint32_t E) {
    E = clampEnd(E);
    if (B >= E)
      return;
    forRange(B, E, [this](size_t W, uint64_t M) { Words[W] &= ~M; });
  }
  /// Number of set ids in [B, E) — a masked popcount, O(interval/64). With
  /// interval subtrees this is the O(1)-per-word subtree weight the search
  /// strategies scan with.
  size_t countRange(uint32_t B, uint32_t E) const {
    E = clampEnd(E);
    if (B >= E)
      return 0;
    size_t N = 0;
    forRange(B, E, [this, &N](size_t W, uint64_t M) {
      N += static_cast<size_t>(__builtin_popcountll(Words[W] & M));
    });
    return N;
  }

  /// Removes every id not in \p O (set intersection).
  void intersectWith(const NodeSet &O) {
    if (Words.size() > O.Words.size())
      Words.resize(O.Words.size());
    for (size_t I = 0; I != Words.size(); ++I)
      Words[I] &= O.Words[I];
  }
  /// Within [B, E) only, removes every id not in \p O; ids outside the
  /// interval are untouched. This is slicing's "restrict the active set
  /// inside the suspect's subtree" in a few masked word ops.
  void intersectRangeWith(const NodeSet &O, uint32_t B, uint32_t E) {
    E = clampEnd(E);
    if (B >= E)
      return;
    forRange(B, E, [this, &O](size_t W, uint64_t M) {
      uint64_t Other = W < O.Words.size() ? O.Words[W] : 0;
      Words[W] &= Other | ~M;
    });
  }

  /// The ids in ascending order (tests, rendering, golden transcripts).
  std::vector<uint32_t> ids() const {
    std::vector<uint32_t> Out;
    for (size_t W = 0; W != Words.size(); ++W)
      for (uint64_t Bits = Words[W]; Bits; Bits &= Bits - 1)
        Out.push_back(static_cast<uint32_t>(
            W * 64 + static_cast<size_t>(__builtin_ctzll(Bits))));
    return Out;
  }

  /// Set equality (capacity-insensitive).
  friend bool operator==(const NodeSet &A, const NodeSet &B) {
    size_t Common = std::min(A.Words.size(), B.Words.size());
    for (size_t I = 0; I != Common; ++I)
      if (A.Words[I] != B.Words[I])
        return false;
    const std::vector<uint64_t> &Rest =
        A.Words.size() > B.Words.size() ? A.Words : B.Words;
    for (size_t I = Common; I != Rest.size(); ++I)
      if (Rest[I])
        return false;
    return true;
  }
  friend bool operator!=(const NodeSet &A, const NodeSet &B) {
    return !(A == B);
  }

private:
  uint32_t clampEnd(uint32_t E) const {
    uint64_t Cap = static_cast<uint64_t>(Words.size()) * 64;
    return E > Cap ? static_cast<uint32_t>(Cap) : E;
  }

  /// Applies \p Fn(word-index, mask) to every word overlapping [B, E);
  /// the mask selects exactly the interval's bits in that word. Bounds
  /// must already be clamped/resized by the caller.
  template <typename FnT> void forRange(uint32_t B, uint32_t E, FnT Fn) const {
    size_t WB = B / 64, WE = (E - 1) / 64;
    uint64_t FirstMask = ~uint64_t(0) << (B % 64);
    uint64_t LastMask = (E % 64) ? (~uint64_t(0) >> (64 - E % 64)) : ~uint64_t(0);
    if (WB == WE) {
      Fn(WB, FirstMask & LastMask);
      return;
    }
    Fn(WB, FirstMask);
    for (size_t W = WB + 1; W != WE; ++W)
      Fn(W, ~uint64_t(0));
    Fn(WE, LastMask);
  }

  std::vector<uint64_t> Words;
};

} // namespace support
} // namespace gadt

#endif // GADT_SUPPORT_NODESET_H
