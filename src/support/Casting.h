//===- Casting.h - LLVM-style isa/cast/dyn_cast -----------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-rolled, kind-enum based RTTI in the style of llvm/Support/Casting.h.
/// Classes participate by providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SUPPORT_CASTING_H
#define GADT_SUPPORT_CASTING_H

#include <cassert>

namespace gadt {

/// Returns true when \p Val (non-null) is an instance of \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates a null argument.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace gadt

#endif // GADT_SUPPORT_CASTING_H
