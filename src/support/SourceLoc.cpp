//===- SourceLoc.cpp - Source locations and ranges ------------------------===//

#include "support/SourceLoc.h"

using namespace gadt;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}

std::string SourceRange::str() const {
  if (!isValid())
    return "<unknown>";
  return Begin.str() + "-" + End.str();
}
