//===- OnceCache.h - Build-once concurrent memo map -------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe map from keys to immutable, shareable values where each
/// value is built exactly once no matter how many threads request it
/// concurrently. The batch runtime's shared caches (transform results,
/// dependence graphs, static slices, compiled code) are instances of this
/// template.
///
/// Guarantees:
///  - the builder for a key runs exactly once; concurrent requesters of the
///    same key block until it finishes and then share the result;
///  - builders for *different* keys run in parallel (the map lock is never
///    held while building);
///  - hit/miss counters are exact: misses() equals the number of builder
///    invocations, hits() equals all other lookups;
///  - a builder returning null caches the failure (subsequent lookups
///    return null as hits without re-building);
///  - a builder that *throws* does not poison the slot: the exception
///    propagates to the caller that ran the builder, the slot is removed,
///    and concurrent or subsequent requesters retry the build;
///  - entries carry an optional byte weight and a last-build tick, so an
///    owner holding several caches can enforce a global byte budget by
///    evicting the oldest entries (see noteBytes/evictOldest/totalBytes).
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SUPPORT_ONCECACHE_H
#define GADT_SUPPORT_ONCECACHE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

namespace gadt {

/// One logical clock shared by every OnceCache instantiation in the
/// process, so "oldest entry" is comparable across caches of different
/// value types (the runtime budget enforcer needs exactly that).
inline std::atomic<uint64_t> &onceCacheClock() {
  static std::atomic<uint64_t> Clock{1};
  return Clock;
}

template <typename Key, typename T> class OnceCache {
public:
  using Builder = std::function<std::shared_ptr<const T>()>;

  /// Returns the value for \p K, invoking \p Build to create it if this is
  /// the first request. Thread-safe. When \p WasMiss is non-null it is set
  /// to whether *this* call ran the builder — the per-call view of the
  /// aggregate hit/miss counters, for callers that forward the outcome to
  /// telemetry.
  std::shared_ptr<const T> getOrBuild(const Key &K, const Builder &Build,
                                      bool *WasMiss = nullptr) {
    for (;;) {
      std::shared_ptr<Slot> S;
      bool Owner = false;
      {
        std::unique_lock<std::mutex> Lock(M);
        std::shared_ptr<Slot> &Entry = Slots[K];
        if (!Entry) {
          Entry = std::make_shared<Slot>();
          Owner = true;
        }
        S = Entry;
        if (!Owner && !S->Ready) {
          // Another thread is building this key. Wait until its slot is
          // published, or until it vanishes (builder threw, or the entry
          // was evicted mid-wait) — in which case retry from the top.
          CV.wait(Lock, [&] {
            auto It = Slots.find(K);
            return It == Slots.end() || It->second != S || S->Ready;
          });
          auto It = Slots.find(K);
          if (It == Slots.end() || It->second != S)
            continue;
        }
      }
      if (Owner) {
        std::shared_ptr<const T> V;
        try {
          V = Build();
        } catch (...) {
          // Un-poison: drop the slot (if it is still ours) and wake the
          // waiters so they retry; the exception goes to our caller.
          {
            std::lock_guard<std::mutex> Lock(M);
            auto It = Slots.find(K);
            if (It != Slots.end() && It->second == S)
              Slots.erase(It);
          }
          CV.notify_all();
          throw;
        }
        {
          std::lock_guard<std::mutex> Lock(M);
          S->V = std::move(V);
          S->Ready = true;
          S->Tick = onceCacheClock().fetch_add(1, std::memory_order_relaxed);
        }
        CV.notify_all();
        Misses.fetch_add(1, std::memory_order_relaxed);
        if (WasMiss)
          *WasMiss = true;
        return S->V;
      }
      Hits.fetch_add(1, std::memory_order_relaxed);
      if (WasMiss)
        *WasMiss = false;
      return S->V;
    }
  }

  /// The value already cached for \p K, or null (counts as neither hit nor
  /// miss; for inspection). Entries still being built read as absent.
  std::shared_ptr<const T> peek(const Key &K) const {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Slots.find(K);
    return It == Slots.end() || !It->second->Ready ? nullptr : It->second->V;
  }

  /// Records \p Bytes as the weight of the (ready) entry for \p K, for
  /// budget accounting. Typically called right after a miss.
  void noteBytes(const Key &K, size_t Bytes) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Slots.find(K);
    if (It == Slots.end() || !It->second->Ready)
      return;
    Total += Bytes - It->second->Bytes;
    It->second->Bytes = Bytes;
  }

  /// Sum of the recorded byte weights of all ready entries.
  size_t totalBytes() const {
    std::lock_guard<std::mutex> Lock(M);
    return Total;
  }

  /// The build tick of the least-recently-built ready entry, or UINT64_MAX
  /// when there is none. Comparable across caches via onceCacheClock().
  uint64_t oldestReadyTick() const {
    std::lock_guard<std::mutex> Lock(M);
    uint64_t Oldest = UINT64_MAX;
    for (const auto &KV : Slots)
      if (KV.second->Ready && KV.second->Tick < Oldest)
        Oldest = KV.second->Tick;
    return Oldest;
  }

  /// Evicts the least-recently-built ready entry. Entries still being built
  /// are never evicted. Returns the freed byte weight, or 0 if nothing was
  /// evictable. A shared_ptr handed out earlier keeps the value alive; only
  /// the cache's reference is dropped.
  size_t evictOldest() {
    std::lock_guard<std::mutex> Lock(M);
    auto Victim = Slots.end();
    uint64_t Oldest = UINT64_MAX;
    for (auto It = Slots.begin(); It != Slots.end(); ++It)
      if (It->second->Ready && It->second->Tick < Oldest) {
        Oldest = It->second->Tick;
        Victim = It;
      }
    if (Victim == Slots.end())
      return 0;
    size_t Freed = Victim->second->Bytes;
    Total -= Freed;
    Slots.erase(Victim);
    return Freed;
  }

  /// Drops the entry for \p K if it is ready. Returns its byte weight.
  size_t erase(const Key &K) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Slots.find(K);
    if (It == Slots.end() || !It->second->Ready)
      return 0;
    size_t Freed = It->second->Bytes;
    Total -= Freed;
    Slots.erase(It);
    return Freed;
  }

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Slots.size();
  }

private:
  struct Slot {
    std::shared_ptr<const T> V;
    bool Ready = false;
    size_t Bytes = 0;
    uint64_t Tick = 0;
  };

  mutable std::mutex M;
  mutable std::condition_variable CV;
  std::map<Key, std::shared_ptr<Slot>> Slots;
  size_t Total = 0;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
};

} // namespace gadt

#endif // GADT_SUPPORT_ONCECACHE_H
