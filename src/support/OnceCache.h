//===- OnceCache.h - Build-once concurrent memo map -------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe map from keys to immutable, shareable values where each
/// value is built exactly once no matter how many threads request it
/// concurrently. The batch runtime's shared caches (transform results,
/// dependence graphs, static slices) are instances of this template.
///
/// Guarantees:
///  - the builder for a key runs exactly once; concurrent requesters of the
///    same key block until it finishes and then share the result;
///  - builders for *different* keys run in parallel (the map lock is never
///    held while building);
///  - hit/miss counters are exact: misses() equals the number of builder
///    invocations, hits() equals all other lookups;
///  - a builder returning null caches the failure (subsequent lookups
///    return null as hits without re-building).
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SUPPORT_ONCECACHE_H
#define GADT_SUPPORT_ONCECACHE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

namespace gadt {

template <typename Key, typename T> class OnceCache {
public:
  using Builder = std::function<std::shared_ptr<const T>()>;

  /// Returns the value for \p K, invoking \p Build to create it if this is
  /// the first request. Thread-safe. When \p WasMiss is non-null it is set
  /// to whether *this* call ran the builder — the per-call view of the
  /// aggregate hit/miss counters, for callers that forward the outcome to
  /// telemetry.
  std::shared_ptr<const T> getOrBuild(const Key &K, const Builder &Build,
                                      bool *WasMiss = nullptr) {
    std::shared_ptr<Slot> S;
    {
      std::lock_guard<std::mutex> Lock(M);
      std::shared_ptr<Slot> &Entry = Slots[K];
      if (!Entry)
        Entry = std::make_shared<Slot>();
      S = Entry;
    }
    bool Built = false;
    std::call_once(S->Once, [&] {
      std::shared_ptr<const T> V = Build();
      // Publish under the map lock so peek() is race-free; threads waiting
      // on the once-flag are ordered by it regardless.
      std::lock_guard<std::mutex> Lock(M);
      S->V = std::move(V);
      Built = true;
    });
    if (Built)
      Misses.fetch_add(1, std::memory_order_relaxed);
    else
      Hits.fetch_add(1, std::memory_order_relaxed);
    if (WasMiss)
      *WasMiss = Built;
    return S->V;
  }

  /// The value already cached for \p K, or null (counts as neither hit nor
  /// miss; for inspection).
  std::shared_ptr<const T> peek(const Key &K) const {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Slots.find(K);
    return It == Slots.end() ? nullptr : It->second->V;
  }

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Slots.size();
  }

private:
  struct Slot {
    std::once_flag Once;
    std::shared_ptr<const T> V;
  };

  mutable std::mutex M;
  std::map<Key, std::shared_ptr<Slot>> Slots;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
};

} // namespace gadt

#endif // GADT_SUPPORT_ONCECACHE_H
