//===- StringUtils.h - Small string helpers ---------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared across the project. Pascal identifiers are
/// case-insensitive, so the front-end normalizes with \c toLower.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SUPPORT_STRINGUTILS_H
#define GADT_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace gadt {

/// ASCII lowercase copy of \p S (Pascal identifiers are case-insensitive).
std::string toLower(std::string_view S);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Splits \p S on newline characters; keeps empty lines, drops a trailing
/// empty line produced by a final '\n'.
std::vector<std::string> splitLines(std::string_view S);

/// True when \p S consists only of whitespace (or is empty).
bool isBlank(std::string_view S);

/// Counts the non-blank lines of \p S — our "lines of code" metric for the
/// transformation growth-factor experiment (paper Section 9).
unsigned countCodeLines(std::string_view S);

} // namespace gadt

#endif // GADT_SUPPORT_STRINGUTILS_H
