//===- SourceLoc.h - Source locations and ranges ----------------*- C++ -*-===//
//
// Part of the GADT project: a reproduction of "Generalized Algorithmic
// Debugging and Testing" (Fritzson, Gyimothy, Kamkar, Shahmehri; PLDI 1991).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source coordinates used by the lexer, parser, diagnostics and
/// the original<->transformed program mapping.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SUPPORT_SOURCELOC_H
#define GADT_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace gadt {

/// A position in a source buffer, 1-based line and column. Line 0 denotes an
/// invalid/unknown location (e.g. compiler-synthesized constructs).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(uint32_t Line, uint32_t Column)
      : Line(Line), Column(Column) {}

  constexpr bool isValid() const { return Line != 0; }

  friend constexpr bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
  friend constexpr bool operator!=(SourceLoc A, SourceLoc B) {
    return !(A == B);
  }
  friend constexpr bool operator<(SourceLoc A, SourceLoc B) {
    return A.Line != B.Line ? A.Line < B.Line : A.Column < B.Column;
  }

  /// Renders as "line:col", or "<unknown>" for invalid locations.
  std::string str() const;
};

/// A half-open range of source positions [Begin, End).
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  constexpr SourceRange() = default;
  constexpr SourceRange(SourceLoc Begin, SourceLoc End)
      : Begin(Begin), End(End) {}
  explicit constexpr SourceRange(SourceLoc Single)
      : Begin(Single), End(Single) {}

  constexpr bool isValid() const { return Begin.isValid(); }

  std::string str() const;
};

} // namespace gadt

#endif // GADT_SUPPORT_SOURCELOC_H
