//===- Symbols.cpp - Interned strings -------------------------------------===//

#include "support/Symbols.h"

#include <atomic>
#include <cassert>
#include <memory>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <unordered_map>

using namespace gadt;
using namespace gadt::support;

namespace {

/// The global pool. Strings live in fixed-size blocks published through
/// atomic pointers: a block, once published, is never moved or freed, so
/// str() is a lock-free double index and the references it returns stay
/// valid for the process lifetime. The map guarding uniqueness is only
/// touched by intern(), shared-locked for the (vastly dominant) hit case.
struct Pool {
  static constexpr uint32_t BlockBits = 12; // 4096 strings per block
  static constexpr uint32_t BlockSize = 1u << BlockBits;
  static constexpr uint32_t MaxBlocks = 1u << 12; // 16M distinct strings

  std::atomic<std::string *> Blocks[MaxBlocks] = {};
  std::shared_mutex M;
  std::unordered_map<std::string_view, uint32_t> Ids; // views into blocks
  uint32_t Count = 0;

  Pool() { insertLocked(""); } // id 0 == ""

  /// Requires the unique lock (or the constructor).
  uint32_t insertLocked(std::string_view S) {
    uint32_t Id = Count;
    uint32_t B = Id >> BlockBits;
    assert(B < MaxBlocks && "symbol pool exhausted");
    std::string *Block = Blocks[B].load(std::memory_order_relaxed);
    if (!Block) {
      Block = new std::string[BlockSize];
      Blocks[B].store(Block, std::memory_order_release);
    }
    Block[Id & (BlockSize - 1)] = std::string(S);
    Ids.emplace(Block[Id & (BlockSize - 1)], Id);
    ++Count;
    return Id;
  }

  const std::string &at(uint32_t Id) const {
    const std::string *Block =
        Blocks[Id >> BlockBits].load(std::memory_order_acquire);
    assert(Block && "symbol from a different process?");
    return Block[Id & (BlockSize - 1)];
  }

  static Pool &get() {
    static Pool P;
    return P;
  }
};

} // namespace

uint32_t Symbol::intern(std::string_view S) {
  if (S.empty())
    return 0;
  Pool &P = Pool::get();
  {
    std::shared_lock<std::shared_mutex> Lock(P.M);
    auto It = P.Ids.find(S);
    if (It != P.Ids.end())
      return It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(P.M);
  auto It = P.Ids.find(S); // re-check: another thread may have won the race
  if (It != P.Ids.end())
    return It->second;
  return P.insertLocked(S);
}

const std::string &Symbol::str() const {
  return Pool::get().at(Id);
}

std::ostream &support::operator<<(std::ostream &OS, Symbol S) {
  return OS << S.str();
}

size_t support::symbolPoolSize() {
  Pool &P = Pool::get();
  std::shared_lock<std::shared_mutex> Lock(P.M);
  return P.Count;
}
