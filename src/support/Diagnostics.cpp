//===- Diagnostics.cpp - Diagnostic collection ----------------------------===//

#include "support/Diagnostics.h"

using namespace gadt;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

std::string Diagnostic::str() const {
  std::string Out;
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += severityName(Severity);
  Out += ": ";
  Out += Message;
  return Out;
}

std::string DiagnosticsEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
