//===- JSON.h - Minimal JSON writer and parser ------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one JSON implementation the repo shares: a streaming writer used by
/// the span tracer (src/obs/Trace.h), metrics-registry snapshots
/// (src/obs/Metrics.h) and the benches' --json exports, plus a small
/// recursive-descent parser so tests can round-trip what the writer (and
/// the JSONL trace exporter) produced. Header-only; no dependencies beyond
/// the standard library.
///
/// The writer manages commas itself: interleave beginObject()/key()/value()
/// calls freely and the punctuation comes out right. Numbers are emitted
/// losslessly for integers; doubles use enough digits to round-trip.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SUPPORT_JSON_H
#define GADT_SUPPORT_JSON_H

#include <cassert>
#include <cctype>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gadt {
namespace json {

/// Escapes \p S for inclusion in a JSON string literal (quotes excluded).
inline std::string escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

/// Streaming writer appending to a caller-owned string.
class Writer {
public:
  explicit Writer(std::string &Out) : Out(Out) {}

  Writer &beginObject() {
    separate();
    Out += '{';
    Stack.push_back(State::FirstInObject);
    return *this;
  }
  Writer &endObject() {
    assert(!Stack.empty() && "endObject outside an object");
    Stack.pop_back();
    Out += '}';
    return *this;
  }
  Writer &beginArray() {
    separate();
    Out += '[';
    Stack.push_back(State::FirstInArray);
    return *this;
  }
  Writer &endArray() {
    assert(!Stack.empty() && "endArray outside an array");
    Stack.pop_back();
    Out += ']';
    return *this;
  }

  /// Writes the member key; the next value/container is its value.
  Writer &key(std::string_view K) {
    separate();
    Out += '"';
    Out += escape(K);
    Out += "\":";
    AfterKey = true;
    return *this;
  }

  Writer &value(std::string_view V) {
    separate();
    Out += '"';
    Out += escape(V);
    Out += '"';
    return *this;
  }
  Writer &value(const char *V) { return value(std::string_view(V)); }
  Writer &value(bool V) {
    separate();
    Out += V ? "true" : "false";
    return *this;
  }
  Writer &value(int64_t V) {
    separate();
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
    Out += Buf;
    return *this;
  }
  Writer &value(uint64_t V) {
    separate();
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
    Out += Buf;
    return *this;
  }
  Writer &value(int V) { return value(static_cast<int64_t>(V)); }
  Writer &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  Writer &value(double V) {
    separate();
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    Out += Buf;
    return *this;
  }
  Writer &null() {
    separate();
    Out += "null";
    return *this;
  }

  /// Appends \p Raw verbatim where a value is expected (for pre-rendered
  /// fragments, e.g. one trace event rendered per JSONL line).
  Writer &raw(std::string_view Raw) {
    separate();
    Out += Raw;
    return *this;
  }

private:
  enum class State : uint8_t { FirstInObject, InObject, FirstInArray, InArray };

  /// Emits the comma that precedes this element, if one is due.
  void separate() {
    if (AfterKey) {
      AfterKey = false;
      return;
    }
    if (Stack.empty())
      return;
    State &S = Stack.back();
    if (S == State::FirstInObject)
      S = State::InObject;
    else if (S == State::FirstInArray)
      S = State::InArray;
    else
      Out += ',';
  }

  std::string &Out;
  std::vector<State> Stack;
  bool AfterKey = false;
};

/// A parsed JSON value. Object member order is preserved.
struct Value {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// The member named \p Name of an object, or null when absent.
  const Value *find(std::string_view Name) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &[Key, V] : Obj)
      if (Key == Name)
        return &V;
    return nullptr;
  }

  /// Convenience accessors returning a fallback on kind mismatch / absence.
  std::string getString(std::string_view Name,
                        std::string Default = "") const {
    const Value *V = find(Name);
    return V && V->isString() ? V->Str : Default;
  }
  double getNumber(std::string_view Name, double Default = 0) const {
    const Value *V = find(Name);
    return V && V->isNumber() ? V->Num : Default;
  }
  bool getBool(std::string_view Name, bool Default = false) const {
    const Value *V = find(Name);
    return V && V->isBool() ? V->B : Default;
  }
};

namespace detail {

class Parser {
public:
  explicit Parser(std::string_view S) : S(S) {}

  std::optional<Value> parse() {
    std::optional<Value> V = parseValue();
    if (!V)
      return std::nullopt;
    skipWs();
    if (Pos != S.size())
      return std::nullopt; // trailing garbage
    return V;
  }

private:
  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Lit) {
    if (S.substr(Pos, Lit.size()) == Lit) {
      Pos += Lit.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parseString() {
    if (!consume('"'))
      return std::nullopt;
    std::string Out;
    while (Pos < S.size()) {
      char C = S[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        return std::nullopt;
      char E = S[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > S.size())
          return std::nullopt;
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = S[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return std::nullopt;
        }
        // Encode the code point as UTF-8 (surrogate pairs are passed
        // through as-is; the writer never produces them).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return std::nullopt;
      }
    }
    return std::nullopt; // unterminated
  }

  std::optional<Value> parseValue() {
    skipWs();
    if (Pos >= S.size())
      return std::nullopt;
    char C = S[Pos];
    Value V;
    if (C == '{') {
      ++Pos;
      V.K = Value::Kind::Object;
      skipWs();
      if (consume('}'))
        return V;
      for (;;) {
        std::optional<std::string> Key = [&]() {
          skipWs();
          return parseString();
        }();
        if (!Key || !consume(':'))
          return std::nullopt;
        std::optional<Value> Member = parseValue();
        if (!Member)
          return std::nullopt;
        V.Obj.emplace_back(std::move(*Key), std::move(*Member));
        if (consume(','))
          continue;
        if (consume('}'))
          return V;
        return std::nullopt;
      }
    }
    if (C == '[') {
      ++Pos;
      V.K = Value::Kind::Array;
      skipWs();
      if (consume(']'))
        return V;
      for (;;) {
        std::optional<Value> Elem = parseValue();
        if (!Elem)
          return std::nullopt;
        V.Arr.push_back(std::move(*Elem));
        if (consume(','))
          continue;
        if (consume(']'))
          return V;
        return std::nullopt;
      }
    }
    if (C == '"') {
      std::optional<std::string> Str = parseString();
      if (!Str)
        return std::nullopt;
      V.K = Value::Kind::String;
      V.Str = std::move(*Str);
      return V;
    }
    if (literal("true")) {
      V.K = Value::Kind::Bool;
      V.B = true;
      return V;
    }
    if (literal("false")) {
      V.K = Value::Kind::Bool;
      V.B = false;
      return V;
    }
    if (literal("null"))
      return V;
    // Number.
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return std::nullopt;
    std::string Num(S.substr(Start, Pos - Start));
    char *End = nullptr;
    V.K = Value::Kind::Number;
    V.Num = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size())
      return std::nullopt;
    return V;
  }

  std::string_view S;
  size_t Pos = 0;
};

} // namespace detail

/// Parses one JSON document. Returns nullopt on any syntax error or
/// trailing garbage.
inline std::optional<Value> parse(std::string_view S) {
  return detail::Parser(S).parse();
}

} // namespace json
} // namespace gadt

#endif // GADT_SUPPORT_JSON_H
