//===- LoopEscapes.cpp - Rewrite gotos jumping out of while loops ---------===//
//
// Paper Section 6, "Handling gotos inside a loop addressed outside the
// loop": a while loop containing `goto 9` with label 9 outside the loop is
// rewritten to
//
//   leave := false;
//   while (B) and not leave do begin
//     ... leave := true; goto whilelab; ...
//     whilelab: ;
//   end;
//   if leave then goto 9;
//
// so the loop has a single exit and can serve as a debugging unit. Several
// distinct escape targets are supported through an auxiliary code variable.
//
//===----------------------------------------------------------------------===//

#include "transform/Transform.h"
#include "transform/TransformUtils.h"

#include "pascal/Sema.h"
#include "support/Casting.h"

#include <algorithm>
#include <set>

using namespace gadt;
using namespace gadt::transform;
using namespace gadt::transform::detail;
using namespace gadt::pascal;

namespace {

/// Gotos inside \p W's body that leave the loop: non-local ones, and local
/// ones whose label is not defined inside the body.
std::vector<const GotoStmt *> escapingGotos(const RoutineDecl *R,
                                            WhileStmt *W) {
  std::set<int> InsideLabels;
  forEachStmt(W->getBody(), [&](Stmt *S) {
    if (const auto *LS = dyn_cast<LabeledStmt>(S))
      InsideLabels.insert(LS->getLabel());
  });
  std::vector<const GotoStmt *> Out;
  forEachStmt(W->getBody(), [&](Stmt *S) {
    if (const auto *GS = dyn_cast<GotoStmt>(S)) {
      if (GS->getTargetRoutine() != R || !InsideLabels.count(GS->getLabel()))
        Out.push_back(GS);
    }
  });
  return Out;
}

/// Finds one while loop with escaping gotos, innermost first.
WhileStmt *findTarget(RoutineDecl *R) {
  std::vector<WhileStmt *> Whiles;
  if (R->getBody())
    forEachStmt(R->getBody(), [&](Stmt *S) {
      if (auto *WS = dyn_cast<WhileStmt>(S))
        Whiles.push_back(WS);
    });
  // forEachStmt is preorder; scanning in reverse visits inner loops first.
  for (auto It = Whiles.rbegin(); It != Whiles.rend(); ++It)
    if (!escapingGotos(R, *It).empty())
      return *It;
  return nullptr;
}

void rewriteOne(Program &P, RoutineDecl *R, WhileStmt *W,
                TransformStats &Stats) {
  FreshNamer Names(P);
  SourceLoc Loc = W->getLoc();
  std::vector<const GotoStmt *> Escapes = escapingGotos(R, W);

  // Distinct targets in order of first appearance.
  std::vector<int> Targets;
  for (const GotoStmt *GS : Escapes)
    if (std::find(Targets.begin(), Targets.end(), GS->getLabel()) ==
        Targets.end())
      Targets.push_back(GS->getLabel());
  bool Multi = Targets.size() > 1;

  std::string LeaveName = Names.freshVar("leave");
  std::string CodeName = Multi ? Names.freshVar("leavecode") : "";
  int WhileLab = Names.freshLabel();

  R->addLocal(std::make_unique<VarDecl>(Loc, LeaveName,
                                        P.types().getBooleanType(),
                                        VarDecl::VarKind::Local));
  if (Multi)
    R->addLocal(std::make_unique<VarDecl>(Loc, CodeName,
                                          P.types().getIntegerType(),
                                          VarDecl::VarKind::Local));
  R->getLabels().push_back(WhileLab);

  auto CodeOf = [&](int Label) {
    for (size_t I = 0; I != Targets.size(); ++I)
      if (Targets[I] == Label)
        return static_cast<int64_t>(I + 1);
    return int64_t(0);
  };

  // 1. Replace each escaping goto with {leave := true; [code := k;]
  //    goto whilelab}.
  std::set<const Stmt *> ToReplace(Escapes.begin(), Escapes.end());
  rewriteStmts(R->getBody(), [&](Stmt *S, SlotEdit &Edit) {
    if (!ToReplace.count(S))
      return;
    const auto *GS = cast<GotoStmt>(S);
    std::vector<StmtPtr> Body;
    Body.push_back(mkAssign(S->getLoc(), LeaveName, mkBool(S->getLoc(), true)));
    if (Multi)
      Body.push_back(mkAssign(S->getLoc(), CodeName,
                              mkInt(S->getLoc(), CodeOf(GS->getLabel()))));
    Body.push_back(mkGoto(S->getLoc(), WhileLab));
    Edit.Replacement =
        std::make_unique<CompoundStmt>(S->getLoc(), std::move(Body));
  });

  // 2. Wrap the loop body so it ends with `whilelab: ;`.
  {
    std::vector<StmtPtr> NewBody;
    StmtPtr Old = std::move(W->bodySlot());
    if (auto *CS = dyn_cast<CompoundStmt>(Old.get())) {
      NewBody = std::move(CS->getBody());
    } else {
      NewBody.push_back(std::move(Old));
    }
    NewBody.push_back(std::make_unique<LabeledStmt>(
        Loc, WhileLab, std::make_unique<EmptyStmt>(Loc)));
    W->bodySlot() = std::make_unique<CompoundStmt>(Loc, std::move(NewBody));
  }

  // 3. Strengthen the condition: (B) and not leave.
  W->setCond(std::make_unique<BinaryExpr>(
      Loc, BinaryOp::And, std::unique_ptr<Expr>(W->getCond()->clone()),
      std::make_unique<UnaryExpr>(Loc, UnaryOp::Not,
                                  mkVarRef(Loc, LeaveName))));

  // 4. Initialize before the loop; dispatch after it.
  rewriteStmts(R->getBody(), [&](Stmt *S, SlotEdit &Edit) {
    if (S != W)
      return;
    Edit.Before.push_back(mkAssign(Loc, LeaveName, mkBool(Loc, false)));
    if (Multi)
      Edit.Before.push_back(mkAssign(Loc, CodeName, mkInt(Loc, 0)));
    if (Multi) {
      for (size_t I = 0; I != Targets.size(); ++I)
        Edit.After.push_back(mkCheckGoto(Loc, CodeName,
                                         static_cast<int64_t>(I + 1),
                                         Targets[I]));
    } else {
      auto Then = mkGoto(Loc, Targets[0]);
      Edit.After.push_back(std::make_unique<IfStmt>(
          Loc, mkVarRef(Loc, LeaveName), std::move(Then), nullptr));
    }
  });

  ++Stats.LoopsRewritten;
  Stats.Log.push_back("rewrote " + std::to_string(Escapes.size()) +
                      " escaping goto(s) in a while loop of " +
                      R->getName());
}

} // namespace

bool gadt::transform::rewriteLoopEscapes(Program &P, DiagnosticsEngine &Diags,
                                         TransformStats &Stats) {
  for (unsigned Round = 0; Round < 1000; ++Round) {
    WhileStmt *W = nullptr;
    RoutineDecl *Owner = nullptr;
    forEachRoutine(P.getMain(), [&](RoutineDecl *R) {
      if (W)
        return;
      if (WhileStmt *Found = findTarget(R)) {
        W = Found;
        Owner = R;
      }
    });
    if (!W)
      return true;
    rewriteOne(P, Owner, W, Stats);
    if (!analyze(P, Diags))
      return false;
  }
  Diags.error(SourceLoc(), "loop-escape rewriting did not converge");
  return false;
}
