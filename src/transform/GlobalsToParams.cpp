//===- GlobalsToParams.cpp - Convert global accesses to parameters --------===//
//
// Paper Section 6, "Conversion of global variables to parameters": every
// non-local variable a routine may reference becomes an `in` parameter,
// every one it may modify an `out` parameter (a variable both read and
// written becomes `var`), and each call site passes the variable
// explicitly. GREF/GMOD come from the Banning-style side-effect analysis,
// so effects reached through nested calls and var parameters are covered.
// After this pass the program is side-effect free at the unit level — the
// precondition for pure algorithmic debugging.
//
//===----------------------------------------------------------------------===//

#include "transform/Transform.h"
#include "transform/TransformUtils.h"

#include "analysis/CallGraph.h"
#include "analysis/SideEffects.h"
#include "pascal/Sema.h"
#include "support/Casting.h"

#include <map>

using namespace gadt;
using namespace gadt::transform;
using namespace gadt::transform::detail;
using namespace gadt::pascal;
using analysis::CallGraph;
using analysis::CallSite;
using analysis::SideEffectAnalysis;

namespace {

struct ConvertedGlobal {
  const VarDecl *Global = nullptr;
  ParamMode Mode = ParamMode::In;
  std::string ParamName;
};

} // namespace

bool gadt::transform::convertGlobalsToParams(Program &P,
                                             DiagnosticsEngine &Diags,
                                             TransformStats &Stats) {
  CallGraph CG(P);
  SideEffectAnalysis SEA(P, CG);
  FreshNamer Names(P);

  // --- Plan: which globals become parameters of which routine, and under
  // what name the variable is visible inside each routine.
  std::map<const RoutineDecl *, std::vector<ConvertedGlobal>> Plans;
  std::map<const RoutineDecl *,
           std::map<const VarDecl *, std::string>>
      VisibleName;

  forEachRoutine(P.getMain(), [&](RoutineDecl *R) {
    for (const auto &L : R->getLocals())
      VisibleName[R][L.get()] = L->getName();
    if (R->isProgram())
      return;
    const analysis::RoutineEffects &E = SEA.effects(R);
    // Merge GRef/GMod, keeping the deterministic name order.
    std::vector<const VarDecl *> All = E.GRef;
    for (const VarDecl *G : E.GMod)
      if (std::find(All.begin(), All.end(), G) == All.end())
        All.push_back(G);
    for (const VarDecl *G : All) {
      ConvertedGlobal CGl;
      CGl.Global = G;
      bool Ref = E.refsGlobal(G);
      bool Mod = E.modsGlobal(G);
      CGl.Mode = Ref && Mod ? ParamMode::Var
                 : Mod      ? ParamMode::Out
                            : ParamMode::In;
      // Reuse the global's name when it is free in this routine; the body
      // references then rebind to the parameter without rewriting.
      if (!R->findLocal(G->getName()) && R->getName() != G->getName())
        CGl.ParamName = G->getName();
      else
        CGl.ParamName = Names.freshVar(G->getName() + "_g");
      VisibleName[R][G] = CGl.ParamName;
      Plans[R].push_back(CGl);
    }
  });

  if (Plans.empty())
    return true;

  // --- Apply: add parameters and rename body references.
  for (auto &[RConst, Plan] : Plans) {
    auto *R = const_cast<RoutineDecl *>(RConst);
    for (const ConvertedGlobal &CGl : Plan) {
      R->addParam(std::make_unique<VarDecl>(
          R->getLoc(), CGl.ParamName, CGl.Global->getType(),
          VarDecl::VarKind::Param, CGl.Mode));
      if (CGl.ParamName != CGl.Global->getName() && R->getBody()) {
        forEachExpr(R->getBody(), [&](Expr *E) {
          if (auto *VR = dyn_cast<VarRefExpr>(E))
            if (VR->getDecl() == CGl.Global)
              VR->setName(CGl.ParamName);
        });
      }
      ++Stats.GlobalsConverted;
      Stats.Log.push_back("converted non-local '" + CGl.Global->getName() +
                          "' to " + paramModeSpelling(CGl.Mode) +
                          std::string(*paramModeSpelling(CGl.Mode) ? " " : "") +
                          "parameter '" + CGl.ParamName + "' of " +
                          R->getName());
    }
  }

  // --- Fix every call site: pass the variable under the caller's name.
  for (const CallSite &CS : CG.allCallSites()) {
    auto PlanIt = Plans.find(CS.Callee);
    if (PlanIt == Plans.end())
      continue;
    for (const ConvertedGlobal &CGl : PlanIt->second) {
      const std::string *ArgName = nullptr;
      auto CallerIt = VisibleName.find(CS.Caller);
      if (CallerIt != VisibleName.end()) {
        auto It = CallerIt->second.find(CGl.Global);
        if (It != CallerIt->second.end())
          ArgName = &It->second;
      }
      if (!ArgName) {
        Diags.error(CS.AtStmt->getLoc(),
                    "internal: caller " + CS.Caller->getName() +
                        " has no binding for converted global '" +
                        CGl.Global->getName() + "'");
        return false;
      }
      ExprPtr Arg = mkVarRef(CS.AtStmt->getLoc(), *ArgName);
      if (CS.CallStmt)
        const_cast<ProcCallStmt *>(CS.CallStmt)
            ->getArgs()
            .push_back(std::move(Arg));
      else
        const_cast<CallExpr *>(CS.CallExpr)->getArgs().push_back(
            std::move(Arg));
    }
  }

  return analyze(P, Diags);
}
