//===- GlobalGotos.cpp - Break non-local gotos into exit parameters -------===//
//
// Paper Section 6, "Breaking global gotos into several structured local
// gotos": a goto from routine q to a label declared in an enclosing scope
// becomes
//
//   procedure q(...; var exitcond: integer);
//   begin
//     exitcond := 0;
//     ... exitcond := 1; goto exitlab; ...
//     exitlab: ;
//   end
//
// and every call site gains `q(..., ec); if ec = 1 then goto 9;`. The
// inserted goto may itself be non-local one level up, so the pass iterates
// until every goto is local — exactly the paper's cascading treatment.
//
//===----------------------------------------------------------------------===//

#include "transform/Transform.h"
#include "transform/TransformUtils.h"

#include "analysis/CallGraph.h"
#include "pascal/Sema.h"
#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <set>

using namespace gadt;
using namespace gadt::transform;
using namespace gadt::transform::detail;
using namespace gadt::pascal;
using analysis::CallGraph;
using analysis::CallSite;

namespace {

/// Per-routine rewrite record shared with the call-site fixup.
struct ExitInfo {
  std::string ExitParam;
  std::vector<int> Targets; // label of code k at index k-1
};

std::vector<const GotoStmt *> nonLocalGotos(const RoutineDecl *R) {
  std::vector<const GotoStmt *> Out;
  if (R->getBody())
    forEachStmt(const_cast<CompoundStmt *>(R->getBody()), [&](Stmt *S) {
      if (const auto *GS = dyn_cast<GotoStmt>(S))
        if (GS->isNonLocal())
          Out.push_back(GS);
    });
  return Out;
}

} // namespace

bool gadt::transform::breakGlobalGotos(Program &P, DiagnosticsEngine &Diags,
                                       TransformStats &Stats) {
  for (unsigned Round = 0; Round < 1000; ++Round) {
    // Routines whose own body still performs non-local gotos, in routine
    // traversal order — a pointer-keyed map here would hand out the fresh
    // exit-parameter names in heap-address order, making two transforms of
    // the same program disagree on which routine gets "exitcond" vs
    // "exitcond1".
    std::vector<std::pair<RoutineDecl *, std::vector<const GotoStmt *>>>
        Offenders;
    forEachRoutine(P.getMain(), [&](RoutineDecl *R) {
      auto Gotos = nonLocalGotos(R);
      if (!Gotos.empty())
        Offenders.emplace_back(R, std::move(Gotos));
    });
    if (Offenders.empty())
      return true;

    FreshNamer Names(P);
    CallGraph CG(P); // call sites of the pre-rewrite program
    std::map<const RoutineDecl *, ExitInfo> Infos;

    // --- Rewrite each offending routine.
    for (auto &[R, Gotos] : Offenders) {
      ExitInfo Info;
      Info.ExitParam = Names.freshVar("exitcond");
      int ExitLab = Names.freshLabel();
      for (const GotoStmt *GS : Gotos)
        if (std::find(Info.Targets.begin(), Info.Targets.end(),
                      GS->getLabel()) == Info.Targets.end())
          Info.Targets.push_back(GS->getLabel());

      R->addParam(std::make_unique<VarDecl>(R->getLoc(), Info.ExitParam,
                                            P.types().getIntegerType(),
                                            VarDecl::VarKind::Param,
                                            ParamMode::Var));
      R->getLabels().push_back(ExitLab);

      auto CodeOf = [&Info](int Label) {
        for (size_t I = 0; I != Info.Targets.size(); ++I)
          if (Info.Targets[I] == Label)
            return static_cast<int64_t>(I + 1);
        return int64_t(0);
      };

      std::set<const Stmt *> ToReplace(Gotos.begin(), Gotos.end());
      rewriteStmts(R->getBody(), [&](Stmt *S, SlotEdit &Edit) {
        if (!ToReplace.count(S))
          return;
        const auto *GS = cast<GotoStmt>(S);
        std::vector<StmtPtr> Body;
        Body.push_back(mkAssign(S->getLoc(), Info.ExitParam,
                                mkInt(S->getLoc(), CodeOf(GS->getLabel()))));
        Body.push_back(mkGoto(S->getLoc(), ExitLab));
        Edit.Replacement =
            std::make_unique<CompoundStmt>(S->getLoc(), std::move(Body));
      });

      // exitcond := 0 first; exitlab: ; last.
      auto &Body = R->getBody()->getBody();
      Body.insert(Body.begin(),
                  mkAssign(R->getLoc(), Info.ExitParam,
                           mkInt(R->getLoc(), 0)));
      Body.push_back(std::make_unique<LabeledStmt>(
          R->getLoc(), ExitLab, std::make_unique<EmptyStmt>(R->getLoc())));

      Stats.GotosBroken += static_cast<unsigned>(Gotos.size());
      ++Stats.ExitParamsAdded;
      Stats.Log.push_back("added exit parameter '" + Info.ExitParam +
                          "' to " + R->getName() + " (breaking " +
                          std::to_string(Gotos.size()) +
                          " non-local goto(s))");
      Infos[R] = std::move(Info);
    }

    // --- Fix every call site of the rewritten routines.
    std::map<std::pair<const RoutineDecl *, const RoutineDecl *>, std::string>
        LocalNames;
    for (const CallSite &CS : CG.allCallSites()) {
      auto InfoIt = Infos.find(CS.Callee);
      if (InfoIt == Infos.end())
        continue;
      const ExitInfo &Info = InfoIt->second;
      if (CS.CallExpr) {
        Diags.error(CS.CallExpr->getLoc(),
                    "cannot break non-local goto out of function '" +
                        CS.Callee->getName() +
                        "' called in expression position");
        return false;
      }
      auto *Caller = const_cast<RoutineDecl *>(CS.Caller);
      std::string &LocalName = LocalNames[{CS.Caller, CS.Callee}];
      if (LocalName.empty()) {
        LocalName = Names.freshVar(Info.ExitParam + "_" +
                                   CS.Callee->getName());
        Caller->addLocal(std::make_unique<VarDecl>(
            CS.AtStmt->getLoc(), LocalName, P.types().getIntegerType(),
            VarDecl::VarKind::Local));
      }
      auto *CallStmt = const_cast<ProcCallStmt *>(CS.CallStmt);
      CallStmt->getArgs().push_back(
          mkVarRef(CS.AtStmt->getLoc(), LocalName));
      rewriteStmts(Caller->getBody(), [&](Stmt *S, SlotEdit &Edit) {
        if (S != CallStmt)
          return;
        for (size_t I = 0; I != Info.Targets.size(); ++I)
          Edit.After.push_back(mkCheckGoto(S->getLoc(), LocalName,
                                           static_cast<int64_t>(I + 1),
                                           Info.Targets[I]));
      });
    }

    if (!analyze(P, Diags))
      return false;
  }
  Diags.error(SourceLoc(), "global-goto breaking did not converge");
  return false;
}
