//===- Transform.cpp - Transformation driver ------------------------------===//

#include "transform/Transform.h"

#include "analysis/CallGraph.h"
#include "analysis/SideEffects.h"
#include "pascal/Sema.h"

using namespace gadt;
using namespace gadt::transform;
using namespace gadt::pascal;

TransformResult gadt::transform::transformProgram(const Program &P,
                                                  DiagnosticsEngine &Diags,
                                                  TransformOptions Opts) {
  TransformResult Result;
  std::unique_ptr<Program> Work = P.clone();

  // Goto passes can enable each other (a broken goto lands inside a loop, a
  // loop escape produces a new non-local goto), so alternate to fixpoint.
  for (unsigned Round = 0; Round < 100; ++Round) {
    unsigned Before =
        Result.Stats.LoopsRewritten + Result.Stats.GotosBroken;
    if (Opts.RewriteLoopEscapes &&
        !rewriteLoopEscapes(*Work, Diags, Result.Stats))
      return Result;
    if (Opts.BreakGlobalGotos &&
        !breakGlobalGotos(*Work, Diags, Result.Stats))
      return Result;
    unsigned After = Result.Stats.LoopsRewritten + Result.Stats.GotosBroken;
    if (After == Before)
      break;
  }

  if (Opts.GlobalsToParams &&
      !convertGlobalsToParams(*Work, Diags, Result.Stats))
    return Result;

  Result.Transformed = std::move(Work);
  return Result;
}
