//===- Transform.cpp - Transformation driver ------------------------------===//

#include "transform/Transform.h"

#include "analysis/CallGraph.h"
#include "analysis/SideEffects.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pascal/Sema.h"

using namespace gadt;
using namespace gadt::transform;
using namespace gadt::pascal;

bool gadt::transform::transformProgramInPlace(Program &P,
                                              DiagnosticsEngine &Diags,
                                              TransformStats &Stats,
                                              TransformOptions Opts) {
  // Goto passes can enable each other (a broken goto lands inside a loop, a
  // loop escape produces a new non-local goto), so alternate to fixpoint.
  for (unsigned Round = 0; Round < 100; ++Round) {
    unsigned Before = Stats.LoopsRewritten + Stats.GotosBroken;
    if (Opts.RewriteLoopEscapes && !rewriteLoopEscapes(P, Diags, Stats))
      return false;
    if (Opts.BreakGlobalGotos && !breakGlobalGotos(P, Diags, Stats))
      return false;
    unsigned After = Stats.LoopsRewritten + Stats.GotosBroken;
    if (After == Before)
      break;
  }

  if (Opts.GlobalsToParams && !convertGlobalsToParams(P, Diags, Stats))
    return false;
  return true;
}

TransformResult gadt::transform::transformProgram(const Program &P,
                                                  DiagnosticsEngine &Diags,
                                                  TransformOptions Opts) {
  obs::Span Span("transform", "transform");
  TransformResult Result;
  std::unique_ptr<Program> Work = P.clone();

  if (!transformProgramInPlace(*Work, Diags, Result.Stats, Opts))
    return Result;

  Result.Transformed = std::move(Work);

  // Route the run's TransformStats into the unified registry; the struct
  // itself stays the per-run API. Instrument references are stable, so
  // the name lookups run once.
  static obs::Counter &Runs =
      obs::Registry::global().counter("transform.runs");
  static obs::Counter &Loops =
      obs::Registry::global().counter("transform.loops_rewritten");
  static obs::Counter &Gotos =
      obs::Registry::global().counter("transform.gotos_broken");
  static obs::Counter &ExitParams =
      obs::Registry::global().counter("transform.exit_params_added");
  static obs::Counter &Globals =
      obs::Registry::global().counter("transform.globals_converted");
  Runs.add();
  Loops.add(Result.Stats.LoopsRewritten);
  Gotos.add(Result.Stats.GotosBroken);
  ExitParams.add(Result.Stats.ExitParamsAdded);
  Globals.add(Result.Stats.GlobalsConverted);
  Span.arg("loops_rewritten", Result.Stats.LoopsRewritten);
  Span.arg("gotos_broken", Result.Stats.GotosBroken);
  Span.arg("globals_converted", Result.Stats.GlobalsConverted);
  return Result;
}
