//===- TransformUtils.h - Shared transformation helpers ---------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the transformation passes: fresh names/labels, AST
/// construction shorthands, and a statement-list rewriter that supports
/// replacement and insertion around any statement slot.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_TRANSFORM_TRANSFORMUTILS_H
#define GADT_TRANSFORM_TRANSFORMUTILS_H

#include "pascal/AST.h"

#include <functional>
#include <set>
#include <string>

namespace gadt {
namespace transform {
namespace detail {

/// Tracks every identifier and label in use, handing out fresh ones.
class FreshNamer {
public:
  explicit FreshNamer(const pascal::Program &P);

  /// A name starting with \p Base that collides with nothing declared
  /// anywhere in the program (registers the result).
  std::string freshVar(const std::string &Base);
  /// A label number unused anywhere in the program (registers the result).
  int freshLabel();

private:
  std::set<std::string> Names;
  int MaxLabel = 0;
};

/// Edit request passed to the rewrite callback for one statement slot.
struct SlotEdit {
  /// When set, replaces the statement.
  pascal::StmtPtr Replacement;
  /// Spliced immediately before / after the (possibly replaced) statement.
  std::vector<pascal::StmtPtr> Before;
  std::vector<pascal::StmtPtr> After;
};

/// Walks every statement slot under \p Root (compound bodies, branch and
/// loop bodies, labeled substatements), invoking \p Fn with the current
/// statement; the callback fills the edit request. Insertions around a
/// single-statement slot (e.g. a then-branch) are realized by wrapping in a
/// compound. Children of replaced statements are visited too.
void rewriteStmts(pascal::CompoundStmt *Root,
                  const std::function<void(pascal::Stmt *, SlotEdit &)> &Fn);

// AST construction shorthands (locations are inherited from \p Loc).
pascal::ExprPtr mkVarRef(SourceLoc Loc, const std::string &Name);
pascal::ExprPtr mkInt(SourceLoc Loc, int64_t V);
pascal::ExprPtr mkBool(SourceLoc Loc, bool V);
pascal::StmtPtr mkAssign(SourceLoc Loc, const std::string &Var,
                         pascal::ExprPtr Value);
pascal::StmtPtr mkGoto(SourceLoc Loc, int Label);
/// `if <var> = <k> then goto <label>`
pascal::StmtPtr mkCheckGoto(SourceLoc Loc, const std::string &Var, int64_t K,
                            int Label);

} // namespace detail
} // namespace transform
} // namespace gadt

#endif // GADT_TRANSFORM_TRANSFORMUTILS_H
