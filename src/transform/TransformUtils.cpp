//===- TransformUtils.cpp - Shared transformation helpers -----------------===//

#include "transform/TransformUtils.h"

#include "support/Casting.h"

#include <algorithm>

using namespace gadt;
using namespace gadt::transform::detail;
using namespace gadt::pascal;

FreshNamer::FreshNamer(const Program &P) {
  forEachRoutine(P.getMain(), [this](RoutineDecl *R) {
    Names.insert(R->getName());
    for (const auto &V : R->getParams())
      Names.insert(V->getName());
    for (const auto &V : R->getLocals())
      Names.insert(V->getName());
    for (int L : R->getLabels())
      MaxLabel = std::max(MaxLabel, L);
  });
}

std::string FreshNamer::freshVar(const std::string &Base) {
  if (Names.insert(Base).second)
    return Base;
  for (unsigned I = 1;; ++I) {
    std::string Candidate = Base + std::to_string(I);
    if (Names.insert(Candidate).second)
      return Candidate;
  }
}

int FreshNamer::freshLabel() { return ++MaxLabel; }

namespace {

void rewriteSlot(StmtPtr &Slot,
                 const std::function<void(Stmt *, SlotEdit &)> &Fn);

void rewriteList(std::vector<StmtPtr> &List,
                 const std::function<void(Stmt *, SlotEdit &)> &Fn) {
  for (size_t I = 0; I < List.size(); ++I) {
    SlotEdit Edit;
    Fn(List[I].get(), Edit);
    if (Edit.Replacement)
      List[I] = std::move(Edit.Replacement);
    size_t NumBefore = Edit.Before.size();
    if (!Edit.Before.empty())
      List.insert(List.begin() + static_cast<long>(I),
                  std::make_move_iterator(Edit.Before.begin()),
                  std::make_move_iterator(Edit.Before.end()));
    size_t Cur = I + NumBefore;
    if (!Edit.After.empty())
      List.insert(List.begin() + static_cast<long>(Cur) + 1,
                  std::make_move_iterator(Edit.After.begin()),
                  std::make_move_iterator(Edit.After.end()));
    // Recurse into the (possibly replaced) statement only; inserted
    // statements are synthesized and already in final form.
    rewriteSlot(List[Cur], Fn);
    I = Cur + Edit.After.size();
  }
}

void recurseChildren(Stmt *S,
                     const std::function<void(Stmt *, SlotEdit &)> &Fn);

void rewriteSlot(StmtPtr &Slot,
                 const std::function<void(Stmt *, SlotEdit &)> &Fn) {
  recurseChildren(Slot.get(), Fn);
}

/// Applies the rewriter to a single-statement child slot, wrapping in a
/// compound when insertions are requested.
void rewriteChildSlot(StmtPtr &Slot,
                      const std::function<void(Stmt *, SlotEdit &)> &Fn) {
  if (!Slot)
    return;
  SlotEdit Edit;
  Fn(Slot.get(), Edit);
  if (Edit.Replacement)
    Slot = std::move(Edit.Replacement);
  if (!Edit.Before.empty() || !Edit.After.empty()) {
    SourceLoc Loc = Slot->getLoc();
    std::vector<StmtPtr> Body;
    for (StmtPtr &B : Edit.Before)
      Body.push_back(std::move(B));
    Body.push_back(std::move(Slot));
    size_t MainIndex = Body.size() - 1;
    for (StmtPtr &A : Edit.After)
      Body.push_back(std::move(A));
    auto Wrapped = std::make_unique<CompoundStmt>(Loc, std::move(Body));
    recurseChildren(Wrapped->getBody()[MainIndex].get(), Fn);
    Slot = std::move(Wrapped);
    return;
  }
  recurseChildren(Slot.get(), Fn);
}

void recurseChildren(Stmt *S,
                     const std::function<void(Stmt *, SlotEdit &)> &Fn) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Compound:
    rewriteList(cast<CompoundStmt>(S)->getBody(), Fn);
    return;
  case Stmt::Kind::Repeat:
    rewriteList(cast<RepeatStmt>(S)->getBody(), Fn);
    return;
  case Stmt::Kind::If: {
    // IfStmt exposes no slot setters; edit through a small shim.
    auto *IS = cast<IfStmt>(S);
    rewriteChildSlot(IS->thenSlot(), Fn);
    rewriteChildSlot(IS->elseSlot(), Fn);
    return;
  }
  case Stmt::Kind::While:
    rewriteChildSlot(cast<WhileStmt>(S)->bodySlot(), Fn);
    return;
  case Stmt::Kind::For:
    rewriteChildSlot(cast<ForStmt>(S)->bodySlot(), Fn);
    return;
  case Stmt::Kind::Labeled:
    rewriteChildSlot(cast<LabeledStmt>(S)->subSlot(), Fn);
    return;
  default:
    return;
  }
}

} // namespace

void gadt::transform::detail::rewriteStmts(
    CompoundStmt *Root, const std::function<void(Stmt *, SlotEdit &)> &Fn) {
  if (Root)
    rewriteList(Root->getBody(), Fn);
}

ExprPtr gadt::transform::detail::mkVarRef(SourceLoc Loc,
                                          const std::string &Name) {
  return std::make_unique<VarRefExpr>(Loc, Name);
}

ExprPtr gadt::transform::detail::mkInt(SourceLoc Loc, int64_t V) {
  return std::make_unique<IntLiteralExpr>(Loc, V);
}

ExprPtr gadt::transform::detail::mkBool(SourceLoc Loc, bool V) {
  return std::make_unique<BoolLiteralExpr>(Loc, V);
}

StmtPtr gadt::transform::detail::mkAssign(SourceLoc Loc,
                                          const std::string &Var,
                                          ExprPtr Value) {
  return std::make_unique<AssignStmt>(Loc, mkVarRef(Loc, Var),
                                      std::move(Value));
}

StmtPtr gadt::transform::detail::mkGoto(SourceLoc Loc, int Label) {
  return std::make_unique<GotoStmt>(Loc, Label);
}

StmtPtr gadt::transform::detail::mkCheckGoto(SourceLoc Loc,
                                             const std::string &Var,
                                             int64_t K, int Label) {
  auto Cond = std::make_unique<BinaryExpr>(Loc, BinaryOp::Eq,
                                           mkVarRef(Loc, Var),
                                           mkInt(Loc, K));
  return std::make_unique<IfStmt>(Loc, std::move(Cond), mkGoto(Loc, Label),
                                  nullptr);
}
