//===- Transform.h - The GADT transformation phase --------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's transformation phase (Sections 5.1 and 6): rewrite a program
/// with global side effects and global gotos into an equivalent program
/// whose units are side-effect free at the unit level, so that standard
/// algorithmic debugging applies. Three passes, in order:
///
///  1. rewriteLoopEscapes  — gotos jumping out of while loops become a
///     `leave` flag, a local jump to the end of the loop body, and a
///     conditional goto after the loop (paper: "Handling gotos inside a
///     loop addressed outside the loop").
///  2. breakGlobalGotos    — non-local gotos become integer exit-condition
///     parameters plus local gotos, with `if exitcond = k then goto L`
///     checks at every call site, iterated until all gotos are local
///     (paper: "Breaking global gotos into several structured local
///     gotos"). Exit side-effects in Banning's sense are thereby
///     eliminated.
///  3. convertGlobalsToParams — every non-local variable a routine may
///     reference/modify (GREF/GMOD) becomes an explicit in/out/var
///     parameter, with the variable passed at every call site (paper:
///     "Conversion of global variables to parameters").
///
/// Each pass mutates the program in place and re-runs semantic analysis;
/// the driver transformProgram() clones first, so the original is never
/// touched. The trace-generating actions the paper splices into the
/// transformed source are realized by the interpreter's unit events
/// instead (src/interp) — semantically the same observation points.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_TRANSFORM_TRANSFORM_H
#define GADT_TRANSFORM_TRANSFORM_H

#include "pascal/AST.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace gadt {
namespace transform {

/// Which passes to run (all by default).
struct TransformOptions {
  bool RewriteLoopEscapes = true;
  bool BreakGlobalGotos = true;
  bool GlobalsToParams = true;
};

/// What a transformation run did, for reporting and for the transparent
/// original<->transformed presentation.
struct TransformStats {
  unsigned LoopsRewritten = 0;
  unsigned GotosBroken = 0;
  unsigned ExitParamsAdded = 0;
  unsigned GlobalsConverted = 0; ///< (routine, global) pairs converted
  std::vector<std::string> Log;  ///< human-readable notes, one per action
};

/// Result of transformProgram.
struct TransformResult {
  std::unique_ptr<pascal::Program> Transformed; ///< null on failure
  TransformStats Stats;
};

/// Runs the configured passes on a clone of \p P. On failure (diagnostics
/// in \p Diags) Transformed is null. The clone shares \p P's TypeContext,
/// so \p P must outlive the result.
TransformResult transformProgram(const pascal::Program &P,
                                 DiagnosticsEngine &Diags,
                                 TransformOptions Opts = TransformOptions());

/// Runs the configured passes directly on \p P — for callers that own a
/// freshly parsed program and want to skip transformProgram's defensive
/// clone (the incremental edit pipeline re-parses per transaction, so
/// there is no original to protect). Returns success; on failure \p P is
/// left partially transformed and should be discarded.
bool transformProgramInPlace(pascal::Program &P, DiagnosticsEngine &Diags,
                             TransformStats &Stats,
                             TransformOptions Opts = TransformOptions());

/// Pass 1 (see file comment). Mutates \p P; re-analyzes; returns success.
bool rewriteLoopEscapes(pascal::Program &P, DiagnosticsEngine &Diags,
                        TransformStats &Stats);

/// Pass 2. Mutates \p P; re-analyzes; returns success. Reports an error for
/// non-local gotos inside *functions called in expressions* (the check
/// statement cannot be spliced after an expression), a case the paper does
/// not treat either.
bool breakGlobalGotos(pascal::Program &P, DiagnosticsEngine &Diags,
                      TransformStats &Stats);

/// Pass 3. Mutates \p P; re-analyzes; returns success.
bool convertGlobalsToParams(pascal::Program &P, DiagnosticsEngine &Diags,
                            TransformStats &Stats);

} // namespace transform
} // namespace gadt

#endif // GADT_TRANSFORM_TRANSFORM_H
