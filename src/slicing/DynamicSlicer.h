//===- DynamicSlicer.h - Dynamic slicing over execution trees ---*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural *dynamic* slicing at procedure granularity, the
/// [Kamkar-91b] variant the paper lists as under implementation: while
/// tracing, every value carries the set of unit executions whose outputs
/// flowed into it (data and dynamic control dependences — see
/// InterpOptions::TrackDeps). A slice on one output of one execution-tree
/// node is then simply the recorded dependence set of that output value,
/// closed over tree ancestry.
///
/// Dynamic slices are at most as large as static ones on the same
/// criterion, usually smaller: only what actually influenced this run
/// counts.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SLICING_DYNAMICSLICER_H
#define GADT_SLICING_DYNAMICSLICER_H

#include "trace/ExecTree.h"
#include "support/NodeSet.h"

#include <cstdint>
#include <string>

namespace gadt {
namespace slicing {

/// Retained node ids for the dynamic slice on output \p OutputName of
/// \p Criterion: every node in the subtree whose execution contributed to
/// that output value, plus the ancestors needed to keep the result a tree.
/// Requires the tree to have been built with dependence tracking; without
/// it every output has an empty dependence set and only \p Criterion is
/// retained.
support::NodeSet dynamicSlice(const trace::ExecNode *Criterion,
                            const std::string &OutputName);

} // namespace slicing
} // namespace gadt

#endif // GADT_SLICING_DYNAMICSLICER_H
