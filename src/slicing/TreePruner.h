//===- TreePruner.h - Execution-tree pruning --------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Projects a slice onto the execution tree (paper Section 7): given the
/// node where the user flagged an incorrect output variable, computes the
/// set of execution-tree nodes the continued algorithmic-debugging search
/// may still visit. Two variants exist — pruning by the *static* slice
/// (call sites outside the slice are discarded with their subtrees) and by
/// the *dynamic* dependences gathered during tracing (see DynamicSlicer).
/// The result is a retained-id set; the tree itself is never mutated, so a
/// session can re-slice repeatedly (paper: "a smaller and smaller set of
/// procedures") and intersect successive slices.
///
/// Retained sets are chain-closed: a node is retained only if its parent
/// is (the search never descends past a discarded node). That invariant is
/// what makes popcount-over-interval counting exact.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SLICING_TREEPRUNER_H
#define GADT_SLICING_TREEPRUNER_H

#include "slicing/StaticSlicer.h"
#include "trace/ExecTree.h"
#include "support/NodeSet.h"

#include <cstdint>

namespace gadt {
namespace slicing {

/// Retained node ids for a pruned subtree rooted at \p Root: \p Root itself
/// plus every descendant whose chain of call sites lies entirely inside
/// \p Slice. Loop/iteration nodes are retained when their loop statement is
/// in the slice.
support::NodeSet pruneByStaticSlice(const trace::ExecNode *Root,
                                  const StaticSlice &Slice);

/// Number of nodes in the subtree of \p Root retained by \p Kept — a
/// masked popcount over the subtree's id interval. \p Kept must be
/// chain-closed within the subtree (every set produced by the pruner, the
/// dynamic slicer, or their intersection is).
unsigned countRetained(const trace::ExecNode *Root,
                       const support::NodeSet &Kept);

/// Renders only the retained part of the subtree (paper Figures 8/9).
/// Discarded subtrees are skipped by interval jump.
std::string renderPruned(const trace::ExecNode *Root,
                         const support::NodeSet &Kept);

} // namespace slicing
} // namespace gadt

#endif // GADT_SLICING_TREEPRUNER_H
