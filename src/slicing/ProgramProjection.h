//===- ProgramProjection.h - Slice to program projection --------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Projects a static slice back onto program text, producing the reduced
/// "independent program" of Weiser slicing — the paper's Figure 2(b).
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SLICING_PROGRAMPROJECTION_H
#define GADT_SLICING_PROGRAMPROJECTION_H

#include "pascal/AST.h"
#include "slicing/StaticSlicer.h"
#include "support/Diagnostics.h"

#include <memory>

namespace gadt {
namespace slicing {

/// Builds a new program containing only the sliced statements: routines
/// with no vertex in the slice are dropped, statement lists are filtered,
/// control structure is kept when its predicate is in the slice, and
/// variable declarations not referenced by the projected code are removed.
///
/// The projection is re-checked with Sema (re-resolving names inside the
/// rebuilt tree); on the rare failure, null is returned with diagnostics in
/// \p Diags. The returned program shares the original's TypeContext, so the
/// original must outlive it.
std::unique_ptr<pascal::Program> projectSlice(const pascal::Program &P,
                                              const StaticSlice &Slice,
                                              DiagnosticsEngine &Diags);

} // namespace slicing
} // namespace gadt

#endif // GADT_SLICING_PROGRAMPROJECTION_H
