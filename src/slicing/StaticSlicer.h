//===- StaticSlicer.h - Two-phase interprocedural slicing -------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward interprocedural slicing over the system dependence graph using
/// the Horwitz-Reps-Binkley two-phase algorithm: phase 1 walks backwards
/// without descending into callees (summary edges substitute for them),
/// phase 2 descends into callees without re-ascending. The result is a
/// context-sensitive static slice — the machinery behind the paper's
/// Section 4 and Section 7.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SLICING_STATICSLICER_H
#define GADT_SLICING_STATICSLICER_H

#include "analysis/SDG.h"

#include <set>
#include <string>

namespace gadt {
namespace slicing {

/// The result of a slice: the SDG vertices in the slice, with convenience
/// views at statement and routine granularity.
class StaticSlice {
public:
  const std::set<const analysis::SDGNode *> &nodes() const { return Nodes; }

  bool containsNode(const analysis::SDGNode *N) const {
    return Nodes.count(N) != 0;
  }
  /// True when any vertex of \p S (statement, predicate or one of its
  /// actuals) is in the slice.
  bool containsStmt(const pascal::Stmt *S) const {
    return Stmts.count(S) != 0;
  }
  /// True when any vertex of routine \p R is in the slice.
  bool containsRoutine(const pascal::RoutineDecl *R) const {
    return Routines.count(R) != 0;
  }
  /// True when variable \p V appears as a formal/actual vertex or in the
  /// def/use set of some sliced statement (used to retain declarations when
  /// projecting).
  bool mentionsVar(const pascal::VarDecl *V) const {
    return Vars.count(V) != 0;
  }

  const std::set<const pascal::Stmt *> &stmts() const { return Stmts; }
  const std::set<const pascal::RoutineDecl *> &routines() const {
    return Routines;
  }

  /// True when the specific expression-position call \p E has a vertex in
  /// the slice (finer-grained than containsStmt for statements that make
  /// several calls).
  bool containsCallExpr(const pascal::Expr *E) const {
    return CallExprs.count(E) != 0;
  }

  size_t size() const { return Nodes.size(); }

private:
  friend StaticSlice backwardSlice(const analysis::SDG &,
                                   std::vector<const analysis::SDGNode *>);
  std::set<const analysis::SDGNode *> Nodes;
  std::set<const pascal::Stmt *> Stmts;
  std::set<const pascal::RoutineDecl *> Routines;
  std::set<const pascal::VarDecl *> Vars;
  std::set<const pascal::Expr *> CallExprs;
};

/// Computes the backward slice of \p G from \p Criteria.
StaticSlice backwardSlice(const analysis::SDG &G,
                          std::vector<const analysis::SDGNode *> Criteria);

/// Slice with respect to output variable \p VarName of routine \p R — the
/// criterion the debugger produces when the user flags one erroneous output
/// (paper Section 7). The formal-out vertex of the variable anchors the
/// slice. Returns an empty slice when no such vertex exists.
StaticSlice sliceOnRoutineOutput(const analysis::SDG &G,
                                 const pascal::RoutineDecl *R,
                                 const std::string &VarName);

/// Slice with respect to the value of global \p VarName at the end of the
/// program (the classic Weiser criterion of the paper's Figure 2).
StaticSlice sliceOnProgramVar(const analysis::SDG &G,
                              const pascal::Program &P,
                              const std::string &VarName);

} // namespace slicing
} // namespace gadt

#endif // GADT_SLICING_STATICSLICER_H
