//===- StaticSlicer.h - Two-phase interprocedural slicing -------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward interprocedural slicing over the system dependence graph using
/// the Horwitz-Reps-Binkley two-phase algorithm: phase 1 walks backwards
/// without descending into callees (summary edges substitute for them),
/// phase 2 descends into callees without re-ascending. The result is a
/// context-sensitive static slice — the machinery behind the paper's
/// Section 4 and Section 7.
///
/// Both phases run over the SDG's CSR in-edge arrays with a dense id
/// bitset for the visited set, so a slice costs two adjacency sweeps and
/// no node allocations. A StaticSlice therefore holds just the id set;
/// the statement/routine/variable views consumers filter with are
/// materialized lazily (and thread-safely) on first access.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_SLICING_STATICSLICER_H
#define GADT_SLICING_STATICSLICER_H

#include "analysis/SDG.h"
#include "support/NodeSet.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace gadt {
namespace slicing {

/// The result of a slice: the SDG vertex ids in the slice, with lazy
/// convenience views at statement and routine granularity. Copies are
/// cheap and share the materialized views.
class StaticSlice {
public:
  /// An empty slice attached to no graph.
  StaticSlice() = default;

  bool containsNode(analysis::SDGNodeId Id) const { return Ids.contains(Id); }
  /// True when any vertex of \p S (statement, predicate or one of its
  /// actuals) is in the slice.
  bool containsStmt(const pascal::Stmt *S) const {
    return views().Stmts.count(S) != 0;
  }
  /// True when any vertex of routine \p R is in the slice.
  bool containsRoutine(const pascal::RoutineDecl *R) const {
    return views().Routines.count(R) != 0;
  }
  /// True when variable \p V appears as a formal/actual vertex of some
  /// sliced node (used to retain declarations when projecting).
  bool mentionsVar(const pascal::VarDecl *V) const {
    return views().Vars.count(V) != 0;
  }
  /// True when the specific expression-position call \p E has a vertex in
  /// the slice (finer-grained than containsStmt for statements that make
  /// several calls).
  bool containsCallExpr(const pascal::Expr *E) const {
    return views().CallExprs.count(E) != 0;
  }

  /// The sliced vertex ids (indices into graph()->nodes()).
  const support::NodeSet &nodes() const { return Ids; }
  /// The SDG the ids refer to; null for a default-constructed slice.
  const analysis::SDG *graph() const { return G; }

  const std::unordered_set<const pascal::Stmt *> &stmts() const {
    return views().Stmts;
  }
  const std::unordered_set<const pascal::RoutineDecl *> &routines() const {
    return views().Routines;
  }

  size_t size() const { return Count; }

private:
  friend StaticSlice
  backwardSlice(const analysis::SDG &,
                const std::vector<analysis::SDGNodeId> &);
  friend StaticSlice sliceFromNodes(const analysis::SDG &,
                                    support::NodeSet);

  struct Views {
    std::unordered_set<const pascal::Stmt *> Stmts;
    std::unordered_set<const pascal::RoutineDecl *> Routines;
    std::unordered_set<const pascal::VarDecl *> Vars;
    std::unordered_set<const pascal::Expr *> CallExprs;
  };
  /// Heap cell behind a shared_ptr so slices stay copyable/movable and
  /// copies share one materialization; call_once makes first access safe
  /// when a cached const slice is read from several debugger threads.
  /// Ready mirrors the once_flag so the per-query fast path is an inlined
  /// acquire load instead of a library call — containsStmt sits in the
  /// tree pruner's per-node loop.
  struct Lazy {
    std::once_flag Once;
    std::atomic<bool> Ready{false};
    Views V;
  };
  const Views &views() const {
    if (Cache && Cache->Ready.load(std::memory_order_acquire))
      return Cache->V;
    return materializeViews();
  }
  const Views &materializeViews() const;

  const analysis::SDG *G = nullptr;
  support::NodeSet Ids;
  size_t Count = 0;
  std::shared_ptr<Lazy> Cache;
};

/// Computes the backward slice of \p G from \p Criteria.
StaticSlice backwardSlice(const analysis::SDG &G,
                          const std::vector<analysis::SDGNodeId> &Criteria);

/// Wraps an already-computed id set as a slice over \p G. The incremental
/// runtime uses this to replay a memoized slice onto a rebuilt graph after
/// shifting its ids by the per-routine range deltas; the caller is
/// responsible for the set actually being the backward closure of its
/// criterion in \p G.
StaticSlice sliceFromNodes(const analysis::SDG &G, support::NodeSet Ids);

/// Slice with respect to output variable \p VarName of routine \p R — the
/// criterion the debugger produces when the user flags one erroneous output
/// (paper Section 7). The formal-out vertex of the variable anchors the
/// slice. Returns an empty slice when no such vertex exists.
StaticSlice sliceOnRoutineOutput(const analysis::SDG &G,
                                 const pascal::RoutineDecl *R,
                                 const std::string &VarName);

/// Slice with respect to the value of global \p VarName at the end of the
/// program (the classic Weiser criterion of the paper's Figure 2).
StaticSlice sliceOnProgramVar(const analysis::SDG &G,
                              const pascal::Program &P,
                              const std::string &VarName);

} // namespace slicing
} // namespace gadt

#endif // GADT_SLICING_STATICSLICER_H
