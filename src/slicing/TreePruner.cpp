//===- TreePruner.cpp - Execution-tree pruning ----------------------------===//

#include "slicing/TreePruner.h"

using namespace gadt;
using namespace gadt::slicing;
using namespace gadt::trace;

namespace {

/// True when the call/loop site of \p N is inside the slice. The root of a
/// pruning request is always retained regardless.
bool siteInSlice(const ExecNode *N, const StaticSlice &Slice) {
  switch (N->getKind()) {
  case interp::UnitKind::Call: {
    // A call entered through a statement call or an expression call: the
    // containing statement's vertices carry the slice membership.
    if (N->getCallStmt())
      return Slice.containsStmt(N->getCallStmt());
    if (N->getCallExpr())
      return Slice.containsCallExpr(N->getCallExpr());
    // The root (program) node has no call site.
    return Slice.containsRoutine(N->getRoutine());
  }
  case interp::UnitKind::Loop:
  case interp::UnitKind::Iteration:
    return N->getLoopStmt() && Slice.containsStmt(N->getLoopStmt());
  }
  return false;
}

void pruneRec(const ExecNode *N, const StaticSlice &Slice,
              std::set<uint32_t> &Kept) {
  Kept.insert(N->getId());
  for (const auto &C : N->getChildren())
    if (siteInSlice(C.get(), Slice))
      pruneRec(C.get(), Slice, Kept);
}

void renderRec(const ExecNode *N, const std::set<uint32_t> &Kept,
               unsigned Depth, std::string &Out) {
  if (!Kept.count(N->getId()))
    return;
  Out.append(Depth * 2, ' ');
  Out += N->signature();
  Out += '\n';
  for (const auto &C : N->getChildren())
    renderRec(C.get(), Kept, Depth + 1, Out);
}

} // namespace

std::set<uint32_t>
gadt::slicing::pruneByStaticSlice(const ExecNode *Root,
                                  const StaticSlice &Slice) {
  std::set<uint32_t> Kept;
  if (Root)
    pruneRec(Root, Slice, Kept);
  return Kept;
}

unsigned gadt::slicing::countRetained(const ExecNode *Root,
                                      const std::set<uint32_t> &Kept) {
  if (!Root || !Kept.count(Root->getId()))
    return 0;
  unsigned N = 1;
  for (const auto &C : Root->getChildren())
    N += countRetained(C.get(), Kept);
  return N;
}

std::string gadt::slicing::renderPruned(const ExecNode *Root,
                                        const std::set<uint32_t> &Kept) {
  std::string Out;
  if (Root)
    renderRec(Root, Kept, 0, Out);
  return Out;
}
