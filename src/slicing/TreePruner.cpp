//===- TreePruner.cpp - Execution-tree pruning ----------------------------===//

#include "slicing/TreePruner.h"

using namespace gadt;
using namespace gadt::slicing;
using namespace gadt::trace;

namespace {

/// True when the call/loop site of \p N is inside the slice. The root of a
/// pruning request is always retained regardless.
bool siteInSlice(const ExecNode *N, const StaticSlice &Slice) {
  switch (N->getKind()) {
  case interp::UnitKind::Call: {
    // A call entered through a statement call or an expression call: the
    // containing statement's vertices carry the slice membership.
    if (N->getCallStmt())
      return Slice.containsStmt(N->getCallStmt());
    if (N->getCallExpr())
      return Slice.containsCallExpr(N->getCallExpr());
    // The root (program) node has no call site.
    return Slice.containsRoutine(N->getRoutine());
  }
  case interp::UnitKind::Loop:
  case interp::UnitKind::Iteration:
    return N->getLoopStmt() && Slice.containsStmt(N->getLoopStmt());
  }
  return false;
}

} // namespace

support::NodeSet gadt::slicing::pruneByStaticSlice(const ExecNode *Root,
                                          const StaticSlice &Slice) {
  support::NodeSet Kept;
  if (!Root)
    return Kept;
  Kept = support::NodeSet(Root->subtreeEnd());
  Kept.insert(Root->getId());
  // Preorder interval scan: a node is retained iff its parent is and its
  // own site is in the slice; a discarded node's whole subtree is skipped
  // by jumping its interval.
  uint32_t End = Root->subtreeEnd();
  for (uint32_t Id = Root->getId() + 1; Id < End;) {
    const ExecNode *N = Root->nodeAt(Id);
    if (Kept.contains(N->getParentId()) && siteInSlice(N, Slice)) {
      Kept.insert(Id);
      ++Id;
    } else {
      Id += N->subtreeSize();
    }
  }
  return Kept;
}

unsigned gadt::slicing::countRetained(const ExecNode *Root,
                                      const support::NodeSet &Kept) {
  if (!Root || !Kept.contains(Root->getId()))
    return 0;
  return static_cast<unsigned>(
      Kept.countRange(Root->getId(), Root->subtreeEnd()));
}

std::string gadt::slicing::renderPruned(const ExecNode *Root,
                                        const support::NodeSet &Kept) {
  std::string Out;
  if (!Root || !Kept.contains(Root->getId()))
    return Out;
  // Same indented preorder rendering as ExecTree::str(), restricted to the
  // retained chain; a non-retained node hides its whole subtree.
  std::vector<uint32_t> OpenEnds;
  uint32_t End = Root->subtreeEnd();
  for (uint32_t Id = Root->getId(); Id < End;) {
    const ExecNode *N = Root->nodeAt(Id);
    if (!Kept.contains(Id)) {
      Id += N->subtreeSize();
      continue;
    }
    while (!OpenEnds.empty() && Id >= OpenEnds.back())
      OpenEnds.pop_back();
    Out.append(OpenEnds.size() * 2, ' ');
    Out += N->signature();
    Out += '\n';
    OpenEnds.push_back(N->subtreeEnd());
    ++Id;
  }
  return Out;
}
