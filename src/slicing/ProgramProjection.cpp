//===- ProgramProjection.cpp - Slice to program projection ----------------===//

#include "slicing/ProgramProjection.h"

#include "pascal/Sema.h"
#include "support/Casting.h"

#include <algorithm>
#include <set>

using namespace gadt;
using namespace gadt::slicing;
using namespace gadt::pascal;

namespace {

/// Projects one statement; returns null when nothing of it is in the slice.
///
/// Unconditional jumps are kept whenever their routine survives: control
/// dependence does not capture them (the classic Ball-Horwitz refinement is
/// out of scope), so dropping them could change the control flow of the
/// remaining statements. Keeping them is sound, merely less minimal.
StmtPtr projectStmt(const Stmt *S, const StaticSlice &Slice) {
  switch (S->getKind()) {
  case Stmt::Kind::Compound: {
    const auto *CS = cast<CompoundStmt>(S);
    std::vector<StmtPtr> Kept;
    for (const StmtPtr &Sub : CS->getBody())
      if (StmtPtr P = projectStmt(Sub.get(), Slice))
        Kept.push_back(std::move(P));
    if (Kept.empty())
      return nullptr;
    return std::make_unique<CompoundStmt>(CS->getLoc(), std::move(Kept));
  }

  case Stmt::Kind::Labeled: {
    const auto *LS = cast<LabeledStmt>(S);
    StmtPtr Sub = projectStmt(LS->getSub(), Slice);
    if (!Sub)
      Sub = std::make_unique<EmptyStmt>(LS->getLoc());
    return std::make_unique<LabeledStmt>(LS->getLoc(), LS->getLabel(),
                                         std::move(Sub));
  }

  case Stmt::Kind::Goto:
    return S->clone();

  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(S);
    StmtPtr Then = projectStmt(IS->getThen(), Slice);
    StmtPtr Else = IS->getElse() ? projectStmt(IS->getElse(), Slice)
                                 : nullptr;
    if (!Slice.containsStmt(S) && !Then && !Else)
      return nullptr;
    if (!Then)
      Then = std::make_unique<EmptyStmt>(IS->getLoc());
    return std::make_unique<IfStmt>(IS->getLoc(), IS->getCond()->clone(),
                                    std::move(Then), std::move(Else));
  }

  case Stmt::Kind::While: {
    const auto *WS = cast<WhileStmt>(S);
    StmtPtr Body = projectStmt(WS->getBody(), Slice);
    if (!Slice.containsStmt(S) && !Body)
      return nullptr;
    if (!Body)
      Body = std::make_unique<EmptyStmt>(WS->getLoc());
    auto Out = std::make_unique<WhileStmt>(WS->getLoc(),
                                           WS->getCond()->clone(),
                                           std::move(Body));
    Out->setUnitName(WS->getUnitName());
    return Out;
  }

  case Stmt::Kind::Repeat: {
    const auto *RS = cast<RepeatStmt>(S);
    std::vector<StmtPtr> Kept;
    for (const StmtPtr &Sub : RS->getBody())
      if (StmtPtr P = projectStmt(Sub.get(), Slice))
        Kept.push_back(std::move(P));
    if (!Slice.containsStmt(S) && Kept.empty())
      return nullptr;
    auto Out = std::make_unique<RepeatStmt>(RS->getLoc(), std::move(Kept),
                                            RS->getCond()->clone());
    Out->setUnitName(RS->getUnitName());
    return Out;
  }

  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    StmtPtr Body = projectStmt(FS->getBody(), Slice);
    if (!Slice.containsStmt(S) && !Body)
      return nullptr;
    if (!Body)
      Body = std::make_unique<EmptyStmt>(FS->getLoc());
    auto Out = std::make_unique<ForStmt>(
        FS->getLoc(), FS->getLoopVar()->clone(), FS->getFrom()->clone(),
        FS->getTo()->clone(), FS->isDownward(), std::move(Body));
    Out->setUnitName(FS->getUnitName());
    return Out;
  }

  case Stmt::Kind::Assign:
  case Stmt::Kind::ProcCall:
  case Stmt::Kind::Read:
  case Stmt::Kind::Write:
  case Stmt::Kind::Empty:
    return Slice.containsStmt(S) ? S->clone() : nullptr;
  }
  return nullptr;
}

/// Collects every variable name referenced in \p R's (projected) body and
/// in its nested routines.
void collectReferencedNames(const RoutineDecl *R,
                            std::set<std::string> &Names) {
  if (R->getBody())
    forEachExpr(const_cast<CompoundStmt *>(R->getBody()), [&](Expr *E) {
      if (const auto *VR = dyn_cast<VarRefExpr>(E))
        Names.insert(VR->getName());
    });
  for (const auto &N : R->getNested())
    collectReferencedNames(N.get(), Names);
}

std::unique_ptr<RoutineDecl> projectRoutine(const RoutineDecl *R,
                                            const StaticSlice &Slice) {
  auto Out = std::make_unique<RoutineDecl>(R->getLoc(), R->getName(),
                                           R->isFunction(),
                                           R->getReturnType());
  for (const auto &P : R->getParams())
    Out->addParam(std::make_unique<VarDecl>(P->getLoc(), P->getName(),
                                            P->getType(), P->getVarKind(),
                                            P->getMode()));
  for (const auto &N : R->getNested())
    if (Slice.containsRoutine(N.get()))
      Out->addNested(projectRoutine(N.get(), Slice))->setParent(Out.get());

  StmtPtr Body = R->getBody() ? projectStmt(R->getBody(), Slice) : nullptr;
  if (Body)
    Out->setBody(std::unique_ptr<CompoundStmt>(
        cast<CompoundStmt>(Body.release())));
  else
    Out->setBody(std::make_unique<CompoundStmt>(R->getLoc(),
                                                std::vector<StmtPtr>()));

  // Keep locals that the projected code (or projected nested routines)
  // still mentions.
  std::set<std::string> Referenced;
  collectReferencedNames(Out.get(), Referenced);
  for (const auto &L : R->getLocals())
    if (Referenced.count(L->getName()))
      Out->addLocal(std::make_unique<VarDecl>(L->getLoc(), L->getName(),
                                              L->getType(), L->getVarKind(),
                                              L->getMode()));

  // Keep labels whose definition survived.
  std::set<int> DefinedLabels;
  forEachStmt(Out->getBody(), [&](Stmt *S) {
    if (const auto *LS = dyn_cast<LabeledStmt>(S))
      DefinedLabels.insert(LS->getLabel());
  });
  for (int L : R->getLabels())
    if (DefinedLabels.count(L))
      Out->getLabels().push_back(L);

  return Out;
}

} // namespace

std::unique_ptr<Program>
gadt::slicing::projectSlice(const Program &P, const StaticSlice &Slice,
                            DiagnosticsEngine &Diags) {
  auto Out = P.clone(); // shares the TypeContext; we replace the tree
  Out->setMain(projectRoutine(P.getMain(), Slice));
  if (!analyze(*Out, Diags))
    return nullptr;
  return Out;
}
