//===- DynamicSlicer.cpp - Dynamic slicing over execution trees -----------===//

#include "slicing/DynamicSlicer.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace gadt;
using namespace gadt::slicing;
using namespace gadt::trace;

namespace {

/// Marks nodes in \p N's subtree that are in \p Deps or have a marked
/// descendant; returns whether anything below (or \p N itself) was marked.
bool markRelevant(const ExecNode *N, const interp::DepSet &Deps,
                  std::set<uint32_t> &Kept) {
  bool Relevant = Deps.contains(N->getId());
  for (const auto &C : N->getChildren())
    if (markRelevant(C.get(), Deps, Kept))
      Relevant = true;
  if (Relevant)
    Kept.insert(N->getId());
  return Relevant;
}

} // namespace

std::set<uint32_t> gadt::slicing::dynamicSlice(const ExecNode *Criterion,
                                               const std::string &OutputName) {
  obs::Span Span("slice", "slicing");
  if (Span.active()) {
    Span.arg("kind", "dynamic");
    Span.arg("criterion", Criterion ? Criterion->getName()
                                    : std::string("<null>"));
    Span.arg("output", OutputName);
  }
  std::set<uint32_t> Kept;
  if (!Criterion)
    return Kept;
  Kept.insert(Criterion->getId());
  const interp::Binding *B = Criterion->findOutput(OutputName);
  if (B)
    for (const auto &C : Criterion->getChildren())
      markRelevant(C.get(), B->V.deps(), Kept);
  Span.arg("kept", Kept.size());
  static obs::Counter &Slices =
      obs::Registry::global().counter("slicing.dynamic.slices");
  static obs::Counter &KeptC =
      obs::Registry::global().counter("slicing.dynamic.kept");
  Slices.add();
  KeptC.add(Kept.size());
  return Kept;
}
