//===- DynamicSlicer.cpp - Dynamic slicing over execution trees -----------===//

#include "slicing/DynamicSlicer.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace gadt;
using namespace gadt::slicing;
using namespace gadt::trace;

support::NodeSet gadt::slicing::dynamicSlice(const ExecNode *Criterion,
                                    const std::string &OutputName) {
  obs::Span Span("slice", "slicing");
  if (Span.active()) {
    Span.arg("kind", "dynamic");
    Span.arg("criterion", Criterion ? Criterion->getName()
                                    : std::string("<null>"));
    Span.arg("output", OutputName);
  }
  support::NodeSet Kept;
  if (!Criterion)
    return Kept;
  uint32_t CritId = Criterion->getId();
  uint32_t End = Criterion->subtreeEnd();
  Kept = support::NodeSet(End);
  Kept.insert(CritId);
  if (const interp::Binding *B = Criterion->findOutput(OutputName)) {
    // Relevant = dependence ids inside the subtree; close over ancestry by
    // walking each one up until an already-marked ancestor. Each node is
    // marked at most once, so the closure is linear in the slice size.
    for (uint32_t DepId : B->V.deps().ids()) {
      if (DepId <= CritId || DepId >= End)
        continue; // dependence on a unit outside this subtree
      for (uint32_t Id = DepId; !Kept.contains(Id);
           Id = Criterion->nodeAt(Id)->getParentId())
        Kept.insert(Id);
    }
  }
  Span.arg("kept", Kept.size());
  static obs::Counter &Slices =
      obs::Registry::global().counter("slicing.dynamic.slices");
  static obs::Counter &KeptC =
      obs::Registry::global().counter("slicing.dynamic.kept");
  Slices.add();
  KeptC.add(Kept.size());
  return Kept;
}
