//===- DynamicSlicer.cpp - Dynamic slicing over execution trees -----------===//

#include "slicing/DynamicSlicer.h"

using namespace gadt;
using namespace gadt::slicing;
using namespace gadt::trace;

namespace {

/// Marks nodes in \p N's subtree that are in \p Deps or have a marked
/// descendant; returns whether anything below (or \p N itself) was marked.
bool markRelevant(const ExecNode *N, const interp::DepSet &Deps,
                  std::set<uint32_t> &Kept) {
  bool Relevant = Deps.contains(N->getId());
  for (const auto &C : N->getChildren())
    if (markRelevant(C.get(), Deps, Kept))
      Relevant = true;
  if (Relevant)
    Kept.insert(N->getId());
  return Relevant;
}

} // namespace

std::set<uint32_t> gadt::slicing::dynamicSlice(const ExecNode *Criterion,
                                               const std::string &OutputName) {
  std::set<uint32_t> Kept;
  if (!Criterion)
    return Kept;
  Kept.insert(Criterion->getId());
  const interp::Binding *B = Criterion->findOutput(OutputName);
  if (!B)
    return Kept;
  for (const auto &C : Criterion->getChildren())
    markRelevant(C.get(), B->V.deps(), Kept);
  return Kept;
}
