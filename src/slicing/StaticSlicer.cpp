//===- StaticSlicer.cpp - Two-phase interprocedural slicing ---------------===//

#include "slicing/StaticSlicer.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace gadt;
using namespace gadt::slicing;
using namespace gadt::analysis;
using namespace gadt::pascal;

const StaticSlice::Views &StaticSlice::materializeViews() const {
  static const Views Empty;
  if (!Cache)
    return Empty;
  std::call_once(Cache->Once, [this] {
    Views &V = Cache->V;
    for (uint32_t Id : Ids.ids()) {
      const SDGNode &N = G->node(Id);
      if (N.getStmt())
        V.Stmts.insert(N.getStmt());
      if (N.getRoutine())
        V.Routines.insert(N.getRoutine());
      if (N.getVar())
        V.Vars.insert(N.getVar());
      if (N.getCall() && N.getCall()->Site.CallExpr)
        V.CallExprs.insert(N.getCall()->Site.CallExpr);
    }
    Cache->Ready.store(true, std::memory_order_release);
  });
  return Cache->V;
}

StaticSlice
gadt::slicing::backwardSlice(const SDG &G,
                             const std::vector<SDGNodeId> &Criteria) {
  StaticSlice Result;
  if (Criteria.empty())
    return Result;

  // One visited bitset serves both phases (the final slice is the union);
  // Order doubles as the BFS queue and records discovery order, so the
  // phase-2 sweep re-scans the phase-1 frontier without a set copy.
  support::NodeSet Mark(static_cast<uint32_t>(G.nodes().size()));
  std::vector<SDGNodeId> Order;
  Order.reserve(Criteria.size());
  for (SDGNodeId C : Criteria)
    if (!Mark.contains(C)) {
      Mark.insert(C);
      Order.push_back(C);
    }

  // Phase 1: ascend to callers; summary edges stand in for callees.
  for (size_t Head = 0; Head != Order.size(); ++Head)
    for (const SDGEdge &E : G.ins(Order[Head])) {
      if (E.K == SDGEdgeKind::ParamOut || Mark.contains(E.N))
        continue;
      Mark.insert(E.N);
      Order.push_back(E.N);
    }

  // Phase 2: descend into callees from everything phase 1 marked; never
  // re-ascend.
  for (size_t Head = 0; Head != Order.size(); ++Head)
    for (const SDGEdge &E : G.ins(Order[Head])) {
      if (E.K == SDGEdgeKind::ParamIn || E.K == SDGEdgeKind::Call ||
          Mark.contains(E.N))
        continue;
      Mark.insert(E.N);
      Order.push_back(E.N);
    }

  Result.G = &G;
  Result.Ids = std::move(Mark);
  Result.Count = Order.size();
  Result.Cache = std::make_shared<StaticSlice::Lazy>();
  return Result;
}

StaticSlice gadt::slicing::sliceFromNodes(const SDG &G,
                                          support::NodeSet Ids) {
  StaticSlice Result;
  Result.G = &G;
  Result.Count = Ids.size();
  Result.Ids = std::move(Ids);
  Result.Cache = std::make_shared<StaticSlice::Lazy>();
  return Result;
}

namespace {

/// Shared epilogue of the criterion helpers: per-slice span arg + the
/// static-slicing counters, registered once.
void recordSlice(obs::Span &Span, const StaticSlice &S) {
  Span.arg("nodes", S.size());
  static obs::Counter &Slices =
      obs::Registry::global().counter("slicing.static.slices");
  static obs::Counter &Nodes =
      obs::Registry::global().counter("slicing.static.nodes");
  Slices.add();
  Nodes.add(S.size());
}

} // namespace

StaticSlice gadt::slicing::sliceOnRoutineOutput(const SDG &G,
                                                const RoutineDecl *R,
                                                const std::string &VarName) {
  obs::Span Span("slice", "slicing");
  if (Span.active()) {
    Span.arg("kind", "static");
    Span.arg("routine", R ? R->getName() : std::string("<null>"));
    Span.arg("output", VarName);
  }
  SDGNodeId Criterion = G.formalOut(R, VarName);
  if (Criterion == SDGNoNode && R->isFunction() && VarName == R->getName())
    Criterion = G.formalOutResult(R);
  if (Criterion == SDGNoNode)
    return StaticSlice();
  StaticSlice S = backwardSlice(G, {Criterion});
  recordSlice(Span, S);
  return S;
}

StaticSlice gadt::slicing::sliceOnProgramVar(const SDG &G, const Program &P,
                                             const std::string &VarName) {
  obs::Span Span("slice", "slicing");
  if (Span.active()) {
    Span.arg("kind", "static");
    Span.arg("output", VarName);
  }
  SDGNodeId Criterion = G.formalOut(P.getMain(), VarName);
  if (Criterion == SDGNoNode)
    return StaticSlice();
  StaticSlice S = backwardSlice(G, {Criterion});
  recordSlice(Span, S);
  return S;
}
