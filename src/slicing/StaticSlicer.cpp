//===- StaticSlicer.cpp - Two-phase interprocedural slicing ---------------===//

#include "slicing/StaticSlicer.h"

#include "analysis/Dataflow.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <deque>

using namespace gadt;
using namespace gadt::slicing;
using namespace gadt::analysis;
using namespace gadt::pascal;

namespace {

/// Marks everything backward-reachable from \p Seeds over edges whose kind
/// passes \p Follow, adding discoveries to \p Mark.
template <typename Pred>
void backwardReach(const std::vector<const SDGNode *> &Seeds,
                   std::set<const SDGNode *> &Mark, Pred Follow) {
  std::deque<const SDGNode *> Work(Seeds.begin(), Seeds.end());
  for (const SDGNode *S : Seeds)
    Mark.insert(S);
  while (!Work.empty()) {
    const SDGNode *N = Work.front();
    Work.pop_front();
    for (const SDGNode::Edge &E : N->ins()) {
      if (!Follow(E.K))
        continue;
      if (Mark.insert(E.N).second)
        Work.push_back(E.N);
    }
  }
}

} // namespace

StaticSlice gadt::slicing::backwardSlice(
    const SDG &G, std::vector<const SDGNode *> Criteria) {
  StaticSlice Result;
  if (Criteria.empty())
    return Result;

  // Phase 1: ascend to callers; summary edges stand in for callees.
  std::set<const SDGNode *> Phase1;
  backwardReach(Criteria, Phase1, [](SDGEdgeKind K) {
    return K != SDGEdgeKind::ParamOut;
  });

  // Phase 2: descend into callees; never re-ascend.
  std::set<const SDGNode *> All = Phase1;
  std::vector<const SDGNode *> Seeds(Phase1.begin(), Phase1.end());
  backwardReach(Seeds, All, [](SDGEdgeKind K) {
    return K != SDGEdgeKind::ParamIn && K != SDGEdgeKind::Call;
  });

  Result.Nodes = std::move(All);
  for (const SDGNode *N : Result.Nodes) {
    if (N->getStmt())
      Result.Stmts.insert(N->getStmt());
    if (N->getRoutine())
      Result.Routines.insert(N->getRoutine());
    if (N->getVar())
      Result.Vars.insert(N->getVar());
    if (N->getCall() && N->getCall()->Site.CallExpr)
      Result.CallExprs.insert(N->getCall()->Site.CallExpr);
  }
  (void)G;
  return Result;
}

StaticSlice gadt::slicing::sliceOnRoutineOutput(const SDG &G,
                                                const RoutineDecl *R,
                                                const std::string &VarName) {
  obs::Span Span("slice", "slicing");
  if (Span.active()) {
    Span.arg("kind", "static");
    Span.arg("routine", R ? R->getName() : std::string("<null>"));
    Span.arg("output", VarName);
  }
  const SDGNode *Criterion = G.formalOut(R, VarName);
  if (!Criterion && R->isFunction() && VarName == R->getName())
    Criterion = G.formalOutResult(R);
  if (!Criterion)
    return StaticSlice();
  StaticSlice S = backwardSlice(G, {Criterion});
  Span.arg("nodes", S.size());
  static obs::Counter &Slices =
      obs::Registry::global().counter("slicing.static.slices");
  static obs::Counter &Nodes =
      obs::Registry::global().counter("slicing.static.nodes");
  Slices.add();
  Nodes.add(S.size());
  return S;
}

StaticSlice gadt::slicing::sliceOnProgramVar(const SDG &G, const Program &P,
                                             const std::string &VarName) {
  obs::Span Span("slice", "slicing");
  if (Span.active()) {
    Span.arg("kind", "static");
    Span.arg("output", VarName);
  }
  const SDGNode *Criterion = G.formalOut(P.getMain(), VarName);
  if (!Criterion)
    return StaticSlice();
  StaticSlice S = backwardSlice(G, {Criterion});
  Span.arg("nodes", S.size());
  static obs::Counter &Slices =
      obs::Registry::global().counter("slicing.static.slices");
  static obs::Counter &Nodes =
      obs::Registry::global().counter("slicing.static.nodes");
  Slices.add();
  Nodes.add(S.size());
  return S;
}
