//===- Payroll.cpp - A realistic application workload ----------------------===//

#include "workload/Payroll.h"

#include <string>

using namespace gadt;

namespace {

// Holes: %TAXBASE% is the lower bracket boundary (intended 500);
// %OTNUM%/%OTDEN% the overtime multiplier (intended 3/2).
const char *const PayrollTemplate = R"(
program payroll;
const
  maxemp = 20;
  stdhours = 40;
type
  intarray = array[1..20] of integer;
var
  hours, rates: intarray;
  nemp, totalnet, totaltax, highest: integer;

function overtimepay(h, rate: integer): integer;
begin
  if h > stdhours then
    overtimepay := ((h - stdhours) * rate * %OTNUM%) div %OTDEN%
  else
    overtimepay := 0;
end;

function grosspay(h, rate: integer): integer;
var
  base: integer;
begin
  if h > stdhours then
    base := stdhours * rate
  else
    base := h * rate;
  grosspay := base + overtimepay(h, rate);
end;

function taxfor(gross: integer): integer;
var
  t: integer;
begin
  t := 0;
  if gross > %TAXBASE% then begin
    if gross > 2000 then
      t := ((2000 - %TAXBASE%) * 20) div 100 +
           ((gross - 2000) * 40) div 100
    else
      t := ((gross - %TAXBASE%) * 20) div 100;
  end;
  taxfor := t;
end;

function netpay(h, rate: integer): integer;
var
  g: integer;
begin
  g := grosspay(h, rate);
  netpay := g - taxfor(g);
end;

procedure processall(n: integer; var totnet, tottax: integer);
var
  i, g: integer;
begin
  totnet := 0;
  tottax := 0;
  for i := 1 to n do begin
    g := grosspay(hours[i], rates[i]);
    tottax := tottax + taxfor(g);
    totnet := totnet + netpay(hours[i], rates[i]);
  end;
end;

procedure findhighest(n: integer; var best: integer);
var
  i, np: integer;
begin
  best := 0;
  for i := 1 to n do begin
    np := netpay(hours[i], rates[i]);
    if np > best then
      best := np;
  end;
end;

begin
  nemp := 5;
  hours[1] := 38;  rates[1] := 12;
  hours[2] := 45;  rates[2] := 30;
  hours[3] := 40;  rates[3] := 55;
  hours[4] := 52;  rates[4] := 18;
  hours[5] := 20;  rates[5] := 90;
  processall(nemp, totalnet, totaltax);
  findhighest(nemp, highest);
  writeln(totalnet, ' ', totaltax, ' ', highest);
end.
)";

std::string instantiate(const char *TaxBase, const char *OtNum,
                        const char *OtDen) {
  std::string S = PayrollTemplate;
  auto ReplaceAll = [&S](const std::string &Hole, const std::string &Text) {
    for (size_t Pos = S.find(Hole); Pos != std::string::npos;
         Pos = S.find(Hole, Pos))
      S.replace(Pos, Hole.size(), Text);
  };
  ReplaceAll("%TAXBASE%", TaxBase);
  ReplaceAll("%OTNUM%", OtNum);
  ReplaceAll("%OTDEN%", OtDen);
  return S;
}

const std::string CorrectStorage = instantiate("500", "3", "2");
const std::string TaxBugStorage = instantiate("400", "3", "2");
const std::string OvertimeBugStorage = instantiate("500", "2", "1");

} // namespace

const char *const workload::PayrollCorrect = CorrectStorage.c_str();
const char *const workload::PayrollTaxBug = TaxBugStorage.c_str();
const char *const workload::PayrollOvertimeBug = OvertimeBugStorage.c_str();

const char *const workload::TaxforSpec = R"(
test taxfor;
params gross;
category bracket;
  boundary : property SINGLE when gross = 500 gen gross := 500;
  untaxed  : when gross < 500 gen gross := 300;
  middle   : property MID when (gross > 500) and (gross <= 2000)
             gen gross := 1200;
  top      : property TOP when gross > 2000 gen gross := 5000;
category magnitude;
  extreme  : if TOP when gross > 100000 gen gross := 200000;
  ordinary : when true;
scripts
  low_brackets  : if not TOP;
  high_brackets : if TOP;
end.
)";

const char *const workload::OvertimeSpec = R"(
test overtimepay;
params h, rate;
category worked;
  none     : property SINGLE when h = 0 gen h := 0, rate := 10;
  regular  : when (h > 0) and (h <= 40) gen h := 35, rate := 10;
  overtime : property OT when h > 40 gen h := 48, rate := 10;
category pay_rate;
  low  : when rate <= 25 gen rate := 10;
  high : when rate > 25 gen rate := 60;
scripts
  with_overtime    : if OT;
  without_overtime : if not OT;
end.
)";
