//===- PaperPrograms.h - Programs from the PLDI'91 paper --------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The example programs the paper's figures are built from, transcribed into
/// the Pascal subset. Tests and benches reproduce the figures from these.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_WORKLOAD_PAPERPROGRAMS_H
#define GADT_WORKLOAD_PAPERPROGRAMS_H

namespace gadt {
namespace workload {

/// Figure 4: computes the square of the sum of [1,2] in two ways and
/// compares. Contains the planted bug (`y + 1` instead of `y - 1` in
/// function decrement).
extern const char *const Figure4Buggy;

/// Figure 4 with the bug fixed — the "intended program" used by reference
/// oracles and test-report generation.
extern const char *const Figure4Fixed;

/// Figure 2(a): the slicing example program (reads x,y; computes sum and
/// mul).
extern const char *const Figure2;

/// Section 6, first transformation example: a procedure with global
/// side-effects (reads global x, writes global z) to be converted to
/// in/out parameters.
extern const char *const Section6Globals;

/// Section 6, second example: a global goto from a nested procedure q to a
/// label in the enclosing procedure p.
extern const char *const Section6GlobalGoto;

/// Section 6, third example: a goto out of a while loop.
extern const char *const Section6LoopGoto;

/// Section 2 / Figure 1: the arrsum procedure under test, wrapped in a
/// runnable program (reads n and the array contents, writes the sum).
extern const char *const ArrsumProgram;

} // namespace workload
} // namespace gadt

#endif // GADT_WORKLOAD_PAPERPROGRAMS_H
