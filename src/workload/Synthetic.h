//===- Synthetic.h - Synthetic program generator ----------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generators of (intended, buggy) program pairs with a known
/// bug location. These stand in for the "larger programs" the paper aims at
/// (Section 9: "We intend to test it on larger programs soon") and drive
/// the scaling/ablation benchmarks plus the randomized property tests
/// (transformation equivalence, debugger completeness).
///
//===----------------------------------------------------------------------===//

#ifndef GADT_WORKLOAD_SYNTHETIC_H
#define GADT_WORKLOAD_SYNTHETIC_H

#include <cstdint>
#include <string>

namespace gadt {
namespace workload {

/// An (intended, buggy) pair plus the routine whose body contains the bug.
struct ProgramPair {
  std::string Fixed;
  std::string Buggy;
  std::string BuggyRoutine;
};

/// A linear call chain p1 -> p2 -> ... -> pN with the bug planted in
/// p<BugIndex> (1-based). Top-down debugging cost grows linearly with
/// BugIndex; divide-and-query logarithmically with N.
ProgramPair chainProgram(unsigned N, unsigned BugIndex);

/// A complete binary call tree of the given depth; the bug sits in the
/// leaf reached by always taking the *last* child (the worst case for
/// left-to-right top-down search).
ProgramPair treeProgram(unsigned Depth);

/// The paper's Figure 5 shape: procedure p performs N-1 calls that are
/// irrelevant to its output y, then one relevant call. Slicing on y removes
/// all N-1 irrelevant queries (Section 7).
ProgramPair wideIrrelevantProgram(unsigned N);

/// Options for the randomized generator.
struct SyntheticOptions {
  uint32_t Seed = 1;
  unsigned NumRoutines = 6;
  unsigned NumGlobals = 3;
  unsigned StmtsPerRoutine = 5;
  bool UseLoops = true;
  bool UseGotos = false; ///< plant non-local gotos (transform stress)
};

/// A random structured program pair: flat routines calling lower-numbered
/// ones, global side effects, bounded loops, optional non-local gotos, and
/// one off-by-one bug in a random routine. Programs always terminate and
/// never fault.
ProgramPair randomProgram(const SyntheticOptions &Opts);

/// A hub-and-leaves program for the incremental-recompute benchmarks and
/// differential tests: \p Leaves loop-heavy leaf procedures, one hub
/// calling all of them, and a main calling the hub. \p Variant perturbs
/// only the body of leaf \p EditedLeaf (1-based; 0 = no edit), so two
/// variants differ in exactly one routine body — the single-routine edit an
/// incremental commit should isolate. Leaf bodies are statement-dense
/// (nested loops and branches over ten interdependent locals) so
/// dependence-graph construction and bytecode compilation dominate the
/// parse. \p Rounds repeats the dense loop block inside every leaf with
/// round-varied constants: reaching-definition rows and postdominator
/// bitsets grow with the statement count, so per-routine analysis cost
/// rises superlinearly with Rounds while parsing stays linear — the knob
/// the benchmarks use to make recompute (not the frontend) the dominant
/// cost. Every value is bounded by `mod` and every loop's trip count is
/// small, so even high-Rounds programs execute quickly under full tracing.
std::string incrementalEditProgram(unsigned Leaves, unsigned EditedLeaf = 0,
                                   unsigned Variant = 0, unsigned Rounds = 1);

/// A layered call mesh that stresses interprocedural summary-edge
/// computation: \p Layers layers of \p Width procedures each, every
/// procedure of layer l calling *all* Width procedures of layer l+1
/// (Width^2 call sites per layer boundary). Each procedure takes two value
/// and two var parameters and reads/writes a global, so every call site
/// carries a dense actual-in/actual-out frontier and the transitive
/// formal-in -> formal-out closure must be propagated through every layer.
/// The bug is planted in the first bottom-layer procedure.
ProgramPair summaryMeshProgram(unsigned Layers, unsigned Width);

} // namespace workload
} // namespace gadt

#endif // GADT_WORKLOAD_SYNTHETIC_H
