//===- Synthetic.cpp - Synthetic program generator ------------------------===//

#include "workload/Synthetic.h"

#include <cassert>
#include <vector>

using namespace gadt;
using namespace gadt::workload;

//===----------------------------------------------------------------------===//
// Chain
//===----------------------------------------------------------------------===//

ProgramPair gadt::workload::chainProgram(unsigned N, unsigned BugIndex) {
  assert(N >= 1 && BugIndex >= 1 && BugIndex <= N);
  auto Emit = [&](bool Buggy) {
    std::string S = "program chain;\nvar r: integer;\n";
    for (unsigned I = N; I >= 1; --I) {
      std::string Name = "p" + std::to_string(I);
      S += "procedure " + Name + "(x: integer; var y: integer);\n";
      bool Bug = Buggy && I == BugIndex;
      if (I == N) {
        S += "begin\n  y := x + " + std::to_string(I) +
             (Bug ? " + 1" : "") + ";\nend;\n";
      } else {
        S += "var t: integer;\nbegin\n  p" + std::to_string(I + 1) + "(x + " +
             std::to_string(I) + ", t);\n  y := t + " + std::to_string(I) +
             (Bug ? " + 1" : "") + ";\nend;\n";
      }
    }
    S += "begin\n  p1(1, r);\n  writeln(r);\nend.\n";
    return S;
  };
  return {Emit(false), Emit(true), "p" + std::to_string(BugIndex)};
}

//===----------------------------------------------------------------------===//
// Tree
//===----------------------------------------------------------------------===//

ProgramPair gadt::workload::treeProgram(unsigned Depth) {
  assert(Depth >= 1 && Depth <= 12);
  unsigned NumNodes = (1u << Depth) - 1;
  unsigned FirstLeaf = 1u << (Depth - 1);
  unsigned BuggyNode = NumNodes; // rightmost leaf

  auto Emit = [&](bool Buggy) {
    std::string S = "program tree;\nvar r: integer;\n";
    for (unsigned I = NumNodes; I >= 1; --I) {
      std::string Name = "n" + std::to_string(I);
      S += "procedure " + Name + "(x: integer; var y: integer);\n";
      bool Bug = Buggy && I == BuggyNode;
      if (I >= FirstLeaf) {
        S += "begin\n  y := x * 2" + std::string(Bug ? " + 1" : "") +
             ";\nend;\n";
      } else {
        S += "var l, rr: integer;\nbegin\n  n" + std::to_string(2 * I) +
             "(x + 1, l);\n  n" + std::to_string(2 * I + 1) +
             "(x + 2, rr);\n  y := l + rr" + (Bug ? " + 1" : "") +
             ";\nend;\n";
      }
    }
    S += "begin\n  n1(1, r);\n  writeln(r);\nend.\n";
    return S;
  };
  return {Emit(false), Emit(true), "n" + std::to_string(BuggyNode)};
}

//===----------------------------------------------------------------------===//
// Wide (Figure 5)
//===----------------------------------------------------------------------===//

ProgramPair gadt::workload::wideIrrelevantProgram(unsigned N) {
  assert(N >= 1);
  auto Emit = [&](bool Buggy) {
    std::string S = "program wide;\nvar x, y: integer;\n";
    for (unsigned I = 1; I < N; ++I)
      S += "procedure q" + std::to_string(I) +
           "(a: integer; var b: integer);\nbegin\n  b := a * " +
           std::to_string(I) + ";\nend;\n";
    S += "procedure target(a: integer; var b: integer);\nbegin\n"
         "  b := a * 10 + " +
         std::string(Buggy ? "2" : "1") + ";\nend;\n";
    S += "procedure p(a: integer; var b: integer);\nvar\n";
    for (unsigned I = 1; I < N; ++I)
      S += "  d" + std::to_string(I) + ": integer;\n";
    if (N == 1)
      S += "  dd: integer;\n";
    S += "begin\n";
    for (unsigned I = 1; I < N; ++I)
      S += "  q" + std::to_string(I) + "(a, d" + std::to_string(I) + ");\n";
    S += "  target(a, b);\nend;\n";
    S += "begin\n  x := 3;\n  p(x, y);\n  writeln(y);\nend.\n";
    return S;
  };
  return {Emit(false), Emit(true), "target"};
}

//===----------------------------------------------------------------------===//
// Summary mesh
//===----------------------------------------------------------------------===//

ProgramPair gadt::workload::summaryMeshProgram(unsigned Layers,
                                               unsigned Width) {
  assert(Layers >= 1 && Width >= 1);
  auto Name = [](unsigned L, unsigned W) {
    return "m" + std::to_string(L) + "_" + std::to_string(W);
  };
  auto Emit = [&](bool Buggy) {
    std::string S = "program mesh;\nvar g1, g2, r1, r2: integer;\n";
    // Bottom-up so every callee is declared before its callers.
    for (unsigned L = Layers; L >= 1; --L) {
      for (unsigned W = 1; W <= Width; ++W) {
        bool Bug = Buggy && L == Layers && W == 1;
        S += "procedure " + Name(L, W) +
             "(a, b: integer; var u, v: integer);\n";
        if (L == Layers) {
          S += "begin\n  u := a + b + " + std::to_string(W) +
               (Bug ? " + 1" : "") + ";\n  v := a - b;\n  g1 := g1 + a;\nend;\n";
        } else {
          S += "var t1, t2, s1, s2: integer;\nbegin\n  t1 := a;\n  t2 := b;\n";
          for (unsigned C = 1; C <= Width; ++C) {
            S += "  " + Name(L + 1, C) + "(t1 + " + std::to_string(C) +
                 ", t2, s1, s2);\n  t1 := t1 + s1;\n  t2 := t2 + s2;\n";
          }
          S += "  u := t1;\n  v := t2 + g2;\n  g2 := g2 + b;\nend;\n";
        }
      }
    }
    S += "begin\n  g1 := 1;\n  g2 := 2;\n";
    for (unsigned W = 1; W <= Width; ++W)
      S += "  " + Name(1, W) + "(" + std::to_string(W) +
           ", 2, r1, r2);\n  g1 := g1 + r1 + r2;\n";
    S += "  writeln(g1, ' ', g2);\nend.\n";
    return S;
  };
  return {Emit(false), Emit(true), Name(Layers, 1)};
}

//===----------------------------------------------------------------------===//
// Incremental-edit workload
//===----------------------------------------------------------------------===//

std::string gadt::workload::incrementalEditProgram(unsigned Leaves,
                                                   unsigned EditedLeaf,
                                                   unsigned Variant,
                                                   unsigned Rounds) {
  assert(Leaves >= 1);
  if (Rounds == 0)
    Rounds = 1;
  std::string S = "program incr;\nvar r: integer;\n";
  for (unsigned I = 1; I <= Leaves; ++I) {
    bool Edited = Variant != 0 && I == EditedLeaf;
    std::string K = std::to_string(I);
    // Statement-dense bodies on purpose: reaching-defs and postdominator
    // rows are bitsets over the routine's definitions/CFG nodes, so the
    // per-routine analysis cost grows quadratically with body size while
    // parsing stays linear — exactly the regime where replaying a clean
    // routine's PDG beats rebuilding it. Every value is bounded with `mod`
    // and every loop has a small trip count, so the differential tests can
    // execute these under full tracing without blowing up.
    S += "procedure leaf" + K + "(x: integer; var y: integer);\n";
    S += "var t, u, v, w, m, k, p, q, i, j: integer;\nbegin\n";
    S += "  t := 0;\n  u := 1;\n  v := 2;\n  w := 3;\n";
    S += "  p := x mod 5;\n  q := x mod 3;\n";
    for (unsigned R = 0; R != Rounds; ++R) {
      // Round-varied small constants keep the rounds from being literal
      // copies of each other (each round reads the previous round's
      // final values, so the def-use web spans the whole body).
      std::string C1 = std::to_string(R % 3 + 1), C2 = std::to_string(R % 5 + 2);
      S += "  for j := 1 to 4 do\n  begin\n";
      S += "    k := (x + j * " + K + " + " + C1 + ") mod 13 + 3;\n";
      S += "    if k > 7 then\n    begin\n"
           "      t := (t + k * " + C2 + " - u) mod 23;\n"
           "      u := (u + t + p) mod 17;\n"
           "      q := (q + u - v) mod 29;\n    end\n"
           "    else\n    begin\n"
           "      t := (t - k + v) mod 23;\n"
           "      v := (v + t - w) mod 19;\n"
           "      p := (p + v + j) mod 7;\n    end;\n";
      S += "    while k > 0 do\n    begin\n      k := k - 2;\n"
           "      w := (w + k + u - v) mod 11;\n"
           "      p := (p + w * " + C1 + " - q) mod 7;\n"
           "      for i := 1 to 2 do\n      begin\n"
           "        q := (q + p + i - t) mod 29;\n"
           "        if q > 11 then\n        begin\n"
           "          m := (q - i) mod 4;\n"
           "          while m > 0 do\n          begin\n"
           "            m := m - 1;\n"
           "            u := (u + m + q) mod 17;\n"
           "            repeat\n              u := (u + 1) mod 17;\n"
           "            until u mod 3 = 0;\n          end;\n"
           "        end\n        else\n"
           "          u := (u + q - w) mod 17;\n      end;\n"
           "    end;\n";
      S += "    for i := 1 to 3 do\n    begin\n"
           "      v := (v + i * u - q) mod 19;\n"
           "      w := (w + v + p) mod 11;\n"
           "      t := (t + u - v + w) mod 23;\n    end;\n";
      S += "    m := (t + u) mod 6 + 4;\n    repeat\n      m := m - 3;\n"
           "      q := (q + m + j) mod 29;\n"
           "      p := (p + q - u) mod 7;\n"
           "      t := (t + p + v) mod 23;\n    until m < 1;\n";
      S += "  end;\n";
    }
    S += "  for j := 1 to 3 do\n    if t > j then\n    begin\n"
         "      t := (t - j + q) mod 23;\n"
         "      u := (u + t - p) mod 17;\n    end;\n";
    if (Edited)
      S += "  t := t + " + std::to_string(Variant) + ";\n";
    S += "  y := t + u + v + w + p + q + " + K + ";\nend;\n";
  }
  S += "procedure hub(a: integer; var b: integer);\nvar s, t: integer;\n"
       "begin\n  s := 0;\n";
  for (unsigned I = 1; I <= Leaves; ++I)
    S += "  leaf" + std::to_string(I) + "(a + " + std::to_string(I) +
         ", t);\n  s := s + t;\n";
  S += "  b := s;\nend;\n";
  S += "begin\n  hub(2, r);\n  writeln(r);\nend.\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Random structured programs
//===----------------------------------------------------------------------===//

namespace {

/// Small deterministic linear-congruential generator.
class Rng {
public:
  explicit Rng(uint32_t Seed) : State(Seed * 2654435761u + 12345u) {}

  unsigned next(unsigned Bound) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<unsigned>((State >> 33) % Bound);
  }

private:
  uint64_t State;
};

/// Emits one random program; \p Buggy perturbs the designated routine.
class RandomEmitter {
public:
  RandomEmitter(const SyntheticOptions &Opts, unsigned BuggyRoutine)
      : Opts(Opts), BuggyRoutine(BuggyRoutine) {}

  std::string emit(bool Buggy) {
    R = Rng(Opts.Seed);
    Out.clear();
    Out += "program rnd;\n";
    if (Opts.UseGotos)
      Out += "label 99;\n";
    Out += "var\n";
    for (unsigned G = 1; G <= Opts.NumGlobals; ++G)
      Out += "  g" + std::to_string(G) + ": integer;\n";
    Out += "  res: integer;\n";
    for (unsigned I = 1; I <= Opts.NumRoutines; ++I)
      emitRoutine(I, Buggy && I == BuggyRoutine);
    emitMain();
    return Out;
  }

private:
  /// A random atom visible inside routine bodies.
  std::string atom() {
    switch (R.next(5)) {
    case 0:
      return "a";
    case 1:
      return "t1";
    case 2:
      return "t2";
    case 3:
      if (Opts.NumGlobals > 0)
        return "g" + std::to_string(1 + R.next(Opts.NumGlobals));
      return "t1";
    default:
      return std::to_string(1 + R.next(9));
    }
  }

  std::string expr(unsigned Depth = 2) {
    if (Depth == 0 || R.next(3) == 0)
      return atom();
    const char *Ops[] = {" + ", " - ", " * "};
    return "(" + expr(Depth - 1) + Ops[R.next(3)] + expr(Depth - 1) + ")";
  }

  std::string condition() {
    const char *Rel[] = {" > ", " < ", " = ", " <= ", " >= ", " <> "};
    return expr(1) + Rel[R.next(6)] + expr(1);
  }

  std::string simpleStmt(unsigned RoutineIndex) {
    // No trailing separator: callers place ';' (none before 'else').
    switch (R.next(4)) {
    case 0:
      return "t1 := " + expr();
    case 1:
      return "t2 := " + expr();
    case 2:
      if (Opts.NumGlobals > 0)
        return "g" + std::to_string(1 + R.next(Opts.NumGlobals)) + " := " +
               expr();
      return "t1 := " + expr();
    default:
      if (RoutineIndex > 1) {
        unsigned Callee = 1 + R.next(RoutineIndex - 1);
        return "r" + std::to_string(Callee) + "(" + expr(1) + ", t2)";
      }
      return "t2 := " + expr();
    }
  }

  void emitRoutine(unsigned I, bool Bug) {
    Out += "procedure r" + std::to_string(I) +
           "(a: integer; var b: integer);\nvar t1, t2: integer;\nbegin\n";
    for (unsigned S = 0; S < Opts.StmtsPerRoutine; ++S) {
      switch (R.next(6)) {
      case 0:
        Out += "  if " + condition() + " then\n    " + simpleStmt(I) +
               "\n  else\n    " + simpleStmt(I) + ";\n";
        break;
      case 1:
        if (Opts.UseLoops) {
          Out += "  for t1 := 1 to " + std::to_string(2 + R.next(3)) +
                 " do\n    t2 := " + expr() + ";\n";
          break;
        }
        [[fallthrough]];
      case 2:
        if (Opts.UseGotos && R.next(4) == 0) {
          // A rarely-firing non-local escape to the end of the program.
          Out += "  if " + expr(1) + " > " + std::to_string(500 + R.next(500)) +
                 " then\n    goto 99;\n";
          break;
        }
        [[fallthrough]];
      default:
        Out += "  " + simpleStmt(I) + ";\n";
        break;
      }
    }
    Out += "  b := " + expr() + (Bug ? " + 1" : "") + ";\nend;\n";
  }

  void emitMain() {
    Out += "begin\n";
    for (unsigned G = 1; G <= Opts.NumGlobals; ++G)
      Out += "  g" + std::to_string(G) + " := " +
             std::to_string(1 + R.next(5)) + ";\n";
    // Call the top few routines so every part of the program is live.
    unsigned Calls = Opts.NumRoutines < 3 ? Opts.NumRoutines : 3;
    for (unsigned C = 0; C < Calls; ++C) {
      unsigned Callee = Opts.NumRoutines - C;
      Out += "  r" + std::to_string(Callee) + "(" +
             std::to_string(1 + R.next(7)) + ", res);\n";
      if (Opts.NumGlobals > 0)
        Out += "  g" + std::to_string(1 + C % Opts.NumGlobals) +
               " := g" + std::to_string(1 + C % Opts.NumGlobals) +
               " + res;\n";
    }
    if (Opts.UseGotos)
      Out += "  99:\n";
    Out += "  writeln(res";
    for (unsigned G = 1; G <= Opts.NumGlobals; ++G)
      Out += ", ' ', g" + std::to_string(G);
    Out += ");\nend.\n";
  }

  SyntheticOptions Opts;
  unsigned BuggyRoutine;
  Rng R{1};
  std::string Out;
};

} // namespace

ProgramPair gadt::workload::randomProgram(const SyntheticOptions &Opts) {
  Rng Pick(Opts.Seed ^ 0x9e3779b9u);
  unsigned BuggyRoutine = 1 + Pick.next(Opts.NumRoutines);
  RandomEmitter E(Opts, BuggyRoutine);
  ProgramPair Pair;
  Pair.Fixed = E.emit(false);
  Pair.Buggy = E.emit(true);
  Pair.BuggyRoutine = "r" + std::to_string(BuggyRoutine);
  return Pair;
}
