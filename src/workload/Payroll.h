//===- Payroll.h - A realistic application workload -------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small but realistic payroll application — the kind of "non-trivial
/// program" the paper's long-range goal targets ("a semi-automatic
/// debugging and testing system which can be used during large-scale
/// program development"). It exercises constants, array globals read
/// through side effects (so the transformation has to convert arrays to
/// parameters), overtime and bracketed-tax logic, and a call hierarchy
/// four levels deep.
///
/// Three variants share the same shape: the intended program, one with a
/// wrong tax-bracket boundary, and one with a wrong overtime rate. T-GEN
/// specifications (with params/gen clauses) cover the tax and overtime
/// routines.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_WORKLOAD_PAYROLL_H
#define GADT_WORKLOAD_PAYROLL_H

namespace gadt {
namespace workload {

/// The intended payroll program.
extern const char *const PayrollCorrect;

/// Bug: the middle tax bracket starts at 400 instead of 500 (in function
/// taxfor).
extern const char *const PayrollTaxBug;

/// Bug: overtime is paid at 2x instead of 1.5x (in function overtimepay).
extern const char *const PayrollOvertimeBug;

/// Self-contained T-GEN specification for `taxfor(gross)`: brackets
/// below/inside/above, with boundary SINGLE frames.
extern const char *const TaxforSpec;

/// Self-contained T-GEN specification for `overtimepay(h, rate)`.
extern const char *const OvertimeSpec;

} // namespace workload
} // namespace gadt

#endif // GADT_WORKLOAD_PAYROLL_H
