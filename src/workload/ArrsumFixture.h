//===- ArrsumFixture.h - Figure 1 test-specification fixture ----*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 1 specification for the arrsum procedure, ported to
/// our T-GEN dialect, together with a deterministic frame instantiator and
/// a reference outcome checker. Used by the Figure 1 bench, the T-GEN
/// tests, and the GADT end-to-end session (Section 8: the arrsum query is
/// answered from the test database).
///
//===----------------------------------------------------------------------===//

#ifndef GADT_WORKLOAD_ARRSUMFIXTURE_H
#define GADT_WORKLOAD_ARRSUMFIXTURE_H

#include "tgen/ReportDB.h"

namespace gadt {
namespace workload {

/// The Figure 1 specification text (categories size_of_array,
/// type_of_elements, deviation; scripts script_1/script_2; result
/// result_1), extended with `when` classifiers so frames can be selected
/// automatically during debugging.
extern const char *const ArrsumSpec;

/// The same specification made self-contained with a `params` declaration
/// and `gen` bindings, so T-GEN can produce executable test cases without
/// the host-language instantiator below (tgen/Generator.h).
extern const char *const ArrsumSpecWithGens;

/// Builds concrete (a, n, b) arguments for a frame of ArrsumSpec. The
/// instantiation round-trips: classifying the produced inputs yields the
/// same frame.
std::optional<std::vector<interp::Value>>
instantiateArrsumFrame(const tgen::TestFrame &Frame);

/// Reference checker: output b must equal the sum of the first n elements.
bool checkArrsumOutcome(const std::vector<interp::Value> &Args,
                        const interp::CallOutcome &Out);

} // namespace workload
} // namespace gadt

#endif // GADT_WORKLOAD_ARRSUMFIXTURE_H
