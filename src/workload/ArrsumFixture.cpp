//===- ArrsumFixture.cpp - Figure 1 test-specification fixture ------------===//

#include "workload/ArrsumFixture.h"

using namespace gadt;
using namespace gadt::workload;
using namespace gadt::interp;
using namespace gadt::tgen;

const char *const gadt::workload::ArrsumSpec = R"(
test arrsum;
category size_of_array;
  zero : property SINGLE when n = 0;
  one  : property SINGLE when n = 1;
  two  : when n = 2;
  more : property MORE when n > 2;
category type_of_elements;
  positive : when a_min > 0;
  negative : when a_max < 0;
  mixed    : if MORE property MIXED when (a_min <= 0) and (a_max >= 0);
category deviation;
  small   : if not MIXED when true;
  large   : if MIXED when a_spread > 20;
  average : if MIXED when a_spread <= 20;
scripts
  script_1 : if MIXED;
  script_2 : if not MIXED;
result
  result_1 : if MIXED;
end.
)";

const char *const gadt::workload::ArrsumSpecWithGens = R"(
test arrsum;
params a, n, out b;
category size_of_array;
  zero : property SINGLE when n = 0 gen n := 0;
  one  : property SINGLE when n = 1 gen n := 1;
  two  : when n = 2 gen n := 2;
  more : property MORE when n > 2 gen n := 7;
category type_of_elements;
  positive : when a_min > 0
             gen a := fill(max(n, 1), 3 * i + 1);
  negative : when a_max < 0
             gen a := fill(max(n, 1), -(3 * i + 1));
  mixed    : if MORE property MIXED
             when (a_min <= 0) and (a_max >= 0)
             gen a := fill(n, (i mod 2) * (2 * i) - i);
category deviation;
  small   : if not MIXED when true;
  large   : if MIXED when a_spread > 20
            gen a := fill(n, ((i mod 2) * (2 * i) - i) * 10);
  average : if MIXED when a_spread <= 20;
scripts
  script_1 : if MIXED;
  script_2 : if not MIXED;
result
  result_1 : if MIXED;
end.
)";

std::optional<std::vector<Value>>
gadt::workload::instantiateArrsumFrame(const TestFrame &Frame) {
  if (Frame.ChoiceNames.size() != 3)
    return std::nullopt;
  const std::string &Size = Frame.ChoiceNames[0];
  const std::string &Type = Frame.ChoiceNames[1];
  const std::string &Deviation = Frame.ChoiceNames[2];

  int64_t N;
  if (Size == "zero")
    N = 0;
  else if (Size == "one")
    N = 1;
  else if (Size == "two")
    N = 2;
  else if (Size == "more")
    N = 7;
  else
    return std::nullopt;

  // The backing array always has at least one element so element-based
  // classifiers stay defined for the n = 0 frame.
  int64_t Len = N > 0 ? N : 1;
  ArrayVal Arr;
  Arr.Lo = 1;
  Arr.Hi = Len;
  for (int64_t I = 1; I <= Len; ++I) {
    int64_t Elem;
    if (Type == "positive")
      Elem = 3 * I + 1;
    else if (Type == "negative")
      Elem = -(3 * I + 1);
    else if (Type == "mixed")
      // Alternating signs; "large" scales the amplitude past the spread
      // threshold of the specification.
      Elem = (I % 2 == 0 ? -I : I) * (Deviation == "large" ? 10 : 1);
    else
      return std::nullopt;
    Arr.Elems.push_back(Elem);
  }

  std::vector<Value> Args;
  Args.push_back(Value::makeArray(std::move(Arr)));
  Args.push_back(Value::makeInt(N));
  Args.push_back(Value()); // var b: filled by the callee
  return Args;
}

bool gadt::workload::checkArrsumOutcome(const std::vector<Value> &Args,
                                        const CallOutcome &Out) {
  if (Args.size() != 3 || !Args[0].isArray() || !Args[1].isInt())
    return false;
  const ArrayVal &Arr = Args[0].asArray();
  int64_t N = Args[1].asInt();
  int64_t Expected = 0;
  for (int64_t I = 1; I <= N; ++I) {
    if (!Arr.inBounds(I))
      return false;
    Expected += Arr.at(I);
  }
  for (const Binding &B : Out.Outputs)
    if (B.Name == "b")
      return B.V.isInt() && B.V.asInt() == Expected;
  return false;
}
