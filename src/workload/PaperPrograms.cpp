//===- PaperPrograms.cpp - Programs from the PLDI'91 paper ----------------===//

#include "workload/PaperPrograms.h"

#include <string>

using namespace gadt;

// Figure 4, transcribed. Differences from the paper's listing:
//  - `n` is passed to arrsum explicitly (as in the paper's Figure 4 listing,
//    which already has `arrsum(a: intarray; n: integer; var b: integer)`).
//  - the unused local `t` in sum2 and `z` in sum1 are kept to stay faithful.
static const char *const Figure4Common = R"(
program main;
type
  intarray = array[1..10] of integer;
var
  isok: boolean;

procedure test(r1, r2: integer; var isok: boolean);
begin
  isok := r1 = r2;
end;

procedure arrsum(a: intarray; n: integer; var b: integer);
var
  i: integer;
begin
  b := 0;
  for i := 1 to n do
    b := b + a[i];
end;

procedure square(y: integer; var r2: integer);
begin
  r2 := y * y;
end;

procedure comput2(y: integer; var r2: integer);
begin
  square(y, r2);
end;

procedure add(s1, s2: integer; var r1: integer);
begin
  r1 := s1 + s2;
end;

function decrement(y: integer): integer;
begin
  decrement := y %DECREMENT% 1;
end;

function increment(y: integer): integer;
begin
  increment := y + 1;
end;

procedure sum2(y: integer; var s2: integer);
var
  t: integer;
begin
  s2 := decrement(y) * y div 2;
end;

procedure sum1(y: integer; var s1: integer);
var
  z: integer;
begin
  s1 := y * increment(y) div 2;
end;

procedure partialsums(y: integer; var s1, s2: integer);
begin
  sum1(y, s1);
  sum2(y, s2);
end;

procedure comput1(y: integer; var r1: integer);
var
  s1, s2: integer;
begin
  partialsums(y, s1, s2);
  add(s1, s2, r1);
end;

procedure computs(y: integer; var r1, r2: integer);
begin
  comput1(y, r1);
  comput2(y, r2);
end;

procedure sqrtest(ary: intarray; n: integer; var isok: boolean);
var
  r1, r2, t: integer;
begin
  arrsum(ary, n, t);
  computs(t, r1, r2);
  test(r1, r2, isok);
end;

begin
  sqrtest([1, 2], 2, isok);
end.
)";

namespace {

/// Replaces the %DECREMENT% hole with the given operator.
std::string instantiateFigure4(const char *Op) {
  std::string Src = Figure4Common;
  const std::string Hole = "%DECREMENT%";
  size_t Pos = Src.find(Hole);
  Src.replace(Pos, Hole.size(), Op);
  return Src;
}

const std::string Figure4BuggyStorage = instantiateFigure4("+");
const std::string Figure4FixedStorage = instantiateFigure4("-");

} // namespace

const char *const workload::Figure4Buggy = Figure4BuggyStorage.c_str();
const char *const workload::Figure4Fixed = Figure4FixedStorage.c_str();

const char *const workload::Figure2 = R"(
program p;
var
  x, y, z, sum, mul: integer;
begin
  read(x, y);
  mul := 0;
  sum := 0;
  if x <= 1 then
    sum := x + y
  else begin
    read(z);
    mul := x * y;
  end;
end.
)";

const char *const workload::Section6Globals = R"(
program g;
var
  x, z, w: integer;

procedure p(var y: integer);
begin
  y := x + 1;
  z := y - x;
end;

begin
  x := 10;
  p(w);
  writeln(z);
end.
)";

const char *const workload::Section6GlobalGoto = R"(
program gg;
label 8;
var
  a, b: integer;

procedure p(v: integer; var r: integer);
label 9;

  procedure q(u: integer; var s: integer);
  begin
    s := u + 1;
    if u > 10 then
      goto 9;
    s := s * 2;
  end;

begin
  r := 0;
  q(v, r);
  r := r + 100;
  9:
  r := r + 1;
  if v > 100 then
    goto 8;
  r := r + 1000;
end;

begin
  a := 20;
  p(a, b);
  8:
  writeln(b);
end.
)";

const char *const workload::Section6LoopGoto = R"(
program lg;
var
  n, acc: integer;

procedure scan(limit: integer; var total: integer);
label 9;
var
  i: integer;
begin
  total := 0;
  i := 0;
  while i < limit do begin
    i := i + 1;
    total := total + i;
    if total > 50 then
      goto 9;
    total := total + 1;
  end;
  total := total + 500;
  9:
  total := total + 7;
end;

begin
  n := 100;
  scan(n, acc);
  writeln(acc);
end.
)";

const char *const workload::ArrsumProgram = R"(
program arrsumprog;
type
  intarray = array[1..100] of integer;
var
  a: intarray;
  n, i, s: integer;
begin
  read(n);
  for i := 1 to n do
    read(a[i]);
  s := 0;
  for i := 1 to n do
    s := s + a[i];
  writeln(s);
end.
)";
