//===- Bytecode.h - Slot-addressed register bytecode ------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled form of a Pascal-subset program: flat, slot-addressed
/// register bytecode executed by bytecode/VM.cpp under the same tracing
/// substrate (interp/ExecState.h) as the tree walker.
///
/// Design notes (see DESIGN.md "Execution tiers"):
///
///  - *Fused operands.* Every value-consuming instruction field is a 16-bit
///    operand that addresses a register, a frame cell ((hops, slot) in the
///    static-link chain — PR 3's storage layout), or a constant-pool entry.
///    Fetching a cell operand performs the same observeRead the tree
///    walker's VarRef evaluation would, so dynamic input sets and DepSet
///    flows are identical; the compiler only fuses a cell operand where the
///    fetch point coincides with the tree walker's evaluation order (it
///    materializes the left operand into a register whenever the right
///    operand's expression emits code of its own).
///
///  - *Events are opcodes.* Unit enter/exit, per-iteration control-dep
///    pushes, step accounting and dependence merges are dedicated opcodes
///    (Step, LoopEnter, IterBegin, ...) that call into the shared
///    ExecState, so a bytecode execution raises the exact event sequence
///    the tree walker raises — including on runtime failure, where the VM
///    unwinds loop and call units in the same order the recursive walker's
///    stack unwinding produces.
///
///  - *Fallback, not partiality.* The compiler either translates the whole
///    program or reports it unsupported (non-local gotos, missing type
///    annotations on hand-built ASTs, encoding overflows); the interpreter
///    then runs the tree tier. There are no mixed-tier executions.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_BYTECODE_BYTECODE_H
#define GADT_BYTECODE_BYTECODE_H

#include "interp/Value.h"
#include "pascal/AST.h"
#include "support/SourceLoc.h"
#include "support/Symbols.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gadt {
namespace pascal {
class AstMap;
} // namespace pascal

namespace bytecode {

//===----------------------------------------------------------------------===//
// Operand encoding
//===----------------------------------------------------------------------===//

/// A 16-bit operand: bits 15-14 select the addressing mode, the rest
/// identify the register / (hops, slot) cell / constant.
constexpr uint16_t OpModeMask = 0xC000;
constexpr uint16_t OpReg = 0x0000;   ///< frame-relative register index
constexpr uint16_t OpCell = 0x4000;  ///< bits 13-11 hops, bits 10-0 slot
constexpr uint16_t OpConst = 0x8000; ///< constant-pool index

constexpr unsigned CellHopsShift = 11;
constexpr uint16_t CellSlotMask = 0x07FF;
constexpr unsigned MaxCellHops = 7;
constexpr uint16_t MaxSlot = CellSlotMask;
constexpr uint16_t MaxRegOrConst = 0x3FFF;

/// "No destination register" marker (procedure-statement calls).
constexpr uint16_t NoDest = 0xFFFF;

inline uint16_t makeRegOperand(uint16_t R) { return OpReg | R; }
inline uint16_t makeCellOperand(unsigned Hops, unsigned Slot) {
  return static_cast<uint16_t>(OpCell | (Hops << CellHopsShift) | Slot);
}
inline uint16_t makeConstOperand(uint16_t Idx) { return OpConst | Idx; }

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

enum class Op : uint16_t {
  // Bookkeeping.
  Step,        ///< countStep; Aux = debug index (statement location)
  // Data movement.
  Load,        ///< reg[A] = fetch(B)
  LoadChecked, ///< reg[A] = cell(B) with use-before-assign check; Aux = dbg
  Store,       ///< storeCell(cell(A), fetch(B))
  LoadIdx,     ///< reg[A] = cell(B)[fetch(C)]; Aux = dbg
  StoreIdx,    ///< cell(A)[fetch(B)] = fetch(C); Aux = dbg
  ArrayLit,    ///< reg[A] = array of regs [B, B+C)
  // Arithmetic / comparison / logic; A = dest reg, B/C operands.
  Add, Sub, Mul,
  DivOp,       ///< Aux = dbg (division-by-zero location)
  ModOp,       ///< Aux = dbg
  EqI, NeI, EqB, NeB, Lt, Le, Gt, Ge,
  AndB, OrB,
  NotB,        ///< reg[A] = !fetch(B)
  NegI,        ///< reg[A] = -fetch(B)
  // Control flow.
  Jmp,         ///< pc = Aux
  IfBr,        ///< pushCtrl(fetch(A).deps); if (!bool) pc = Aux
  PopCtrl,
  // Loop units. Aux = loop index for *Enter/Begin/Prep/Iter, else a target.
  LoopEnter,   ///< push loop state + enter loop unit
  WhileTest,   ///< accumulate fetch(A).deps; if (!bool) pc = Aux
  IterBegin,   ///< ++iter, step, enter iteration unit, pushCtrl(accum)
  IterEnd,     ///< popCtrl, exit iteration unit, pc = Aux
  RepeatTest,  ///< accumulate fetch(A).deps; if (!bool) pc = Aux (loop again)
  ForPrep,     ///< bind loop var cell, bounds from fetch(A)/fetch(B), pushCtrl
  ForTest,     ///< if (loop var out of range) pc = Aux
  ForIter,     ///< ++iter, step, store loop var, enter iteration unit
  ForEnd,      ///< exit iteration unit, advance loop var, pc = Aux
  LoopExit,    ///< exit loop unit, pop loop state (while/repeat)
  ForExit,     ///< popCtrl, exit loop unit, pop loop state
  // Calls.
  CallGuard,   ///< fail if the call-depth limit is hit; Aux = dbg. Emitted
               ///< before argument evaluation — the tree walker refuses a
               ///< too-deep call before evaluating its arguments.
  Call,        ///< invoke Sites[Aux]; A = dest reg or NoDest
  Ret,
  // I/O.
  ReadFetch,   ///< reg[A] = next program input; Aux = dbg
  WriteVal,    ///< append fetch(A) to the output text
  WriteNl,     ///< append '\n'
};

struct Instr {
  Op Code;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  uint32_t Aux = 0;
};

//===----------------------------------------------------------------------===//
// Side tables
//===----------------------------------------------------------------------===//

/// Location/name payload for instructions that can raise runtime errors.
/// Deduplicated; errors are cold, so this stays out of the Instr encoding.
struct DebugInfo {
  SourceLoc Loc;
  std::string Name; ///< variable name for unset/bounds messages
  bool InRead = false; ///< bounds message variant for read statements
};

/// One call site, fully resolved at compile time.
struct ArgDesc {
  bool IsRef = false;
  /// Ref: cell operand for the caller-side variable. Value: register
  /// (caller frame) holding the evaluated argument.
  uint16_t Operand = 0;
  const pascal::VarDecl *Param = nullptr;
  support::Symbol Name; ///< interned parameter name (entry-input bindings)
};

struct CallSiteInfo {
  const pascal::RoutineDecl *Callee = nullptr;
  uint32_t RoutineIdx = 0;
  /// Static-link hops from the caller's activation; -1 = no static parent.
  int32_t LinkHops = -1;
  const pascal::Stmt *CallStmt = nullptr;
  const pascal::Expr *CallExpr = nullptr;
  SourceLoc Loc;
  /// Argument descriptors live in CompiledProgram::ArgPool, rows
  /// [ArgStart, ArgStart + ArgCount) — one flat allocation for the whole
  /// program instead of a heap vector per site.
  uint32_t ArgStart = 0;
  uint32_t ArgCount = 0;
};

/// One compiled loop statement.
struct LoopInfo {
  enum class Kind : uint8_t { While, Repeat, For } K = Kind::While;
  const pascal::Stmt *Stmt = nullptr;
  support::Symbol UnitName;
  SourceLoc Loc;
  bool Down = false;        ///< for-loops: downto
  uint16_t VarOperand = 0;  ///< for-loops: loop-variable cell operand
};

struct CompiledRoutine {
  const pascal::RoutineDecl *Routine = nullptr;
  std::vector<Instr> Code;
  uint32_t NumRegs = 0;
};

/// The side-table rows one routine's code owns. Every table is emitted
/// per routine in routine order (the const pool's dedup maps reset per
/// routine to keep it that way), so a routine's rows form one contiguous
/// run — the unit the incremental recompile splices.
struct RoutineSegment {
  uint32_t ConstStart = 0, ConstCount = 0;
  uint32_t SiteStart = 0, SiteCount = 0;
  uint32_t ArgStart = 0, ArgCount = 0;
  uint32_t LoopStart = 0, LoopCount = 0;
  uint32_t DebugStart = 0, DebugCount = 0;
};

/// AST provenance of one Debug row: the statement or expression whose
/// location/name it carries. Replaying a routine's code across an edit
/// refreshes DebugInfo::Loc from the remapped node, so line shifts caused
/// by edits elsewhere in the file never leave stale locations behind.
struct DebugSrc {
  const pascal::Stmt *S = nullptr;
  const pascal::Expr *E = nullptr;
};

/// A whole compiled program. Immutable after compilation; safe to share
/// across threads and cache per program fingerprint. References the AST it
/// was compiled from — the program must outlive it.
struct CompiledProgram {
  const pascal::Program *Prog = nullptr;
  /// Compiled with use-before-assign checking (InterpOptions::
  /// DetectUninitialized); codegen differs, so checked and unchecked runs
  /// need separate compilations.
  bool Checked = false;
  std::vector<CompiledRoutine> Routines; ///< [0] = the main program
  std::vector<interp::Value> Consts;
  std::vector<CallSiteInfo> Sites;
  std::vector<ArgDesc> ArgPool; ///< flat storage indexed by CallSiteInfo
  std::vector<LoopInfo> Loops;
  std::vector<DebugInfo> Debug;
  /// Per-routine spans of the side tables above, parallel to Routines.
  std::vector<RoutineSegment> Segments;
  /// Provenance of each Debug row, parallel to Debug.
  std::vector<DebugSrc> DebugSources;

  /// Rough retained-size estimate for cache occupancy gauges.
  size_t memoryBytes() const;
};

/// What an incremental recompile may keep. Routines whose Replay flag is
/// set are spliced from \p Old instead of recompiled: their instructions
/// are copied with side-table indices shifted to the new layout, and the
/// AST pointers in their Sites/ArgPool/Loops/Debug rows are remapped
/// through \p Map onto the new program's nodes (refreshing the recorded
/// source locations — an edit above a clean routine shifts its lines).
struct CodeReusePlan {
  const CompiledProgram *Old = nullptr;
  const pascal::AstMap *Map = nullptr;
  /// Parallel to the old program's Routines: nonzero = replay.
  std::vector<char> Replay;
};

/// Counters an incremental recompile reports back.
struct CodeRebuildStats {
  unsigned Recompiled = 0;
  unsigned Replayed = 0;
  bool ReplayFellBack = false;
};

/// Compiles \p P (which must have storage slots assigned) to bytecode.
/// Returns null when the program uses a construct the bytecode tier does
/// not support; \p WhyNot (optional) receives the first reason.
std::shared_ptr<const CompiledProgram>
compile(const pascal::Program &P, bool Checked, std::string *WhyNot = nullptr);

/// Incremental variant: recompiles only routines \p Reuse marks dirty and
/// replays the rest from Reuse.Old. Falls back to a full compile (setting
/// Stats->ReplayFellBack) when the plan does not line up with the new
/// program — never fails where the full compiler would succeed.
std::shared_ptr<const CompiledProgram>
compileWithReuse(const pascal::Program &P, bool Checked,
                 const CodeReusePlan &Reuse, CodeRebuildStats *Stats,
                 std::string *WhyNot = nullptr);

} // namespace bytecode
} // namespace gadt

#endif // GADT_BYTECODE_BYTECODE_H
