//===- VM.cpp - Bytecode dispatch loop ------------------------------------===//
//
// Executes bytecode::CompiledProgram over interp::ExecState. Every handler
// is a transliteration of the corresponding tree-walker step (see
// interp/Interpreter.cpp) — reads, writes, dependence merges and unit
// events happen in the same order, which keeps transcripts byte-identical.
//
// On a runtime failure the VM unwinds its frame stack top-down, raising the
// same iteration/loop/call exit events the recursive walker's early returns
// produce (the walker still runs every exitLoopUnit/finishCallUnit on its
// way out).
//
//===----------------------------------------------------------------------===//

#include "bytecode/VM.h"

using namespace gadt;
using namespace gadt::bytecode;
using namespace gadt::interp;

namespace {

/// A loop statement currently executing (while/repeat/for).
struct LoopState {
  const LoopInfo *LI = nullptr;
  uint32_t LoopNode = 0; ///< loop unit node id (0 = untraced)
  uint32_t IterNode = 0; ///< current iteration unit (0 = between iterations)
  uint32_t Iter = 0;
  /// While/repeat: accumulated condition deps; for: the bound deps.
  DepSet CondAccum;
  CellRef ForCell = NoCell;
  int64_t I = 0;
  int64_t Limit = 0;
  /// Ctrl-stack depths to restore when unwinding out of an iteration /
  /// out of the loop (mirrors where the tree walker's popCtrl calls sit).
  uint32_t CtrlIterDepth = 0;
  uint32_t CtrlLoopDepth = 0;
};

/// One VM call frame.
struct VMFrame {
  uint32_t RoutineIdx = 0;
  uint32_t PC = 0;
  uint32_t RegBase = 0;
  uint32_t NodeId = 0;
  uint16_t Dest = NoDest; ///< caller register receiving the result
  Activation *Act = nullptr;
  Activation *CallerAct = nullptr;
  size_t LoopBase = 0; ///< VMState::Loops size at frame entry
  const pascal::RoutineDecl *Callee = nullptr;
  std::vector<Binding> EntryInputs;
};

} // namespace

namespace gadt {
namespace bytecode {

/// Stacks reused across runs (capacity stays warm, mirroring the pooled
/// cell arena). Frames/activations are indexed, never popped, so their
/// vectors keep their capacity and the activation pointers stay stable.
struct VMState {
  std::vector<Value> Regs;
  std::vector<VMFrame> Frames;
  size_t Depth = 0;
  std::vector<std::unique_ptr<Activation>> ActPool;
  std::vector<LoopState> Loops;
  std::vector<CellRef> RefScratch;

  VMFrame &frameAt(size_t I) {
    if (Frames.size() <= I)
      Frames.resize(I + 1);
    return Frames[I];
  }
  Activation &actAt(size_t I) {
    while (ActPool.size() <= I)
      ActPool.push_back(std::make_unique<Activation>());
    return *ActPool[I];
  }
};

VMState *createVMState() { return new VMState(); }
void destroyVMState(VMState *VS) { delete VS; }

} // namespace bytecode
} // namespace gadt

namespace {

/// Resolves a cell operand against \p A's static chain. Does not observe.
/// Failures here mirror the tree walker's getCell "internal:" error — they
/// cannot occur for analyzed programs.
CellRef resolveCell(ExecState &S, Activation *A, uint16_t Operand) {
  unsigned Hops = (Operand >> CellHopsShift) & MaxCellHops;
  unsigned Slot = Operand & CellSlotMask;
  Activation *Cur = A;
  for (; Hops && Cur; --Hops)
    Cur = Cur->StaticLink;
  if (Cur && Slot < Cur->Slots.size()) {
    CellRef H = Cur->Slots[Slot];
    if (H != NoCell)
      return H;
  }
  std::string Name =
      Cur && Slot < Cur->R->getSlotDecls().size()
          ? Cur->R->getSlotDecls()[Slot]->getName()
          : std::string("<slot>");
  S.fail(SourceLoc(), "internal: no storage for variable '" + Name + "'");
  return NoCell;
}

/// Fetches a source operand: a register, a constant, or a frame cell (the
/// cell path performs the observeRead the tree walker's VarRef evaluation
/// would). Returns null after a resolution failure.
const Value *fetchSrc(ExecState &S, const CompiledProgram &CP,
                      Activation *Act, Value *Regs, uint16_t Operand) {
  switch (Operand & OpModeMask) {
  case OpReg:
    return &Regs[Operand];
  case OpConst:
    return &CP.Consts[Operand & ~OpModeMask];
  default: {
    CellRef H = resolveCell(S, Act, Operand);
    if (H == NoCell)
      return nullptr;
    S.observeRead(H);
    return &S.Arena[H].V;
  }
  }
}

/// Raises the exit events a failure abandons in the current frame:
/// innermost loops first, iteration before loop, with the control stack
/// truncated to where each tree-walker popCtrl would have left it.
void unwindLoops(ExecState &S, VMState &VS, VMFrame &F) {
  while (VS.Loops.size() > F.LoopBase) {
    LoopState &LS = VS.Loops.back();
    Activation &A = *F.Act;
    if (S.Opts.TrackDeps && A.CtrlStack.size() > LS.CtrlIterDepth)
      A.CtrlStack.resize(LS.CtrlIterDepth);
    S.exitLoopUnit(LS.IterNode, A);
    if (S.Opts.TrackDeps && A.CtrlStack.size() > LS.CtrlLoopDepth)
      A.CtrlStack.resize(LS.CtrlLoopDepth);
    S.exitLoopUnit(LS.LoopNode, A);
    VS.Loops.pop_back();
  }
}

template <bool TrackDeps>
void dispatch(ExecState &S, const CompiledProgram &CP, VMState &VS) {
  VMFrame *F = &VS.Frames[VS.Depth - 1];
  const Instr *Code = CP.Routines[F->RoutineIdx].Code.data();
  uint32_t PC = F->PC;
  Value *Regs = VS.Regs.data() + F->RegBase;
  Activation *Act = F->Act;

  auto reload = [&] {
    F = &VS.Frames[VS.Depth - 1];
    Code = CP.Routines[F->RoutineIdx].Code.data();
    PC = F->PC;
    Regs = VS.Regs.data() + F->RegBase;
    Act = F->Act;
  };

  for (;;) {
    if (S.Failed) [[unlikely]] {
      // Unwind: finish abandoned loops and calls exactly as the recursive
      // walker's early returns would, innermost first.
      for (;;) {
        unwindLoops(S, VS, *F);
        if (VS.Depth == 1)
          return; // run() closes the root unit
        --S.CallDepth;
        Value Result;
        S.finishCallUnit(*F->Act, F->Callee, std::move(F->EntryInputs),
                         F->NodeId, F->CallerAct, nullptr, &Result);
        S.freeActivationCells(*F->Act);
        --VS.Depth;
        F = &VS.Frames[VS.Depth - 1];
      }
    }

    const Instr &I = Code[PC++];
    switch (I.Code) {
    case Op::Step:
      S.countStep(CP.Debug[I.Aux].Loc);
      break;

    case Op::Load: {
      const Value *V = fetchSrc(S, CP, Act, Regs, I.B);
      if (!V)
        break;
      Regs[I.A] = *V;
      break;
    }

    case Op::LoadChecked: {
      CellRef H = resolveCell(S, Act, I.B);
      if (H == NoCell)
        break;
      const DebugInfo &DI = CP.Debug[I.Aux];
      if (S.Arena[H].V.isUnset()) {
        S.fail(DI.Loc,
               "variable '" + DI.Name + "' is used before it is assigned");
        break;
      }
      S.observeRead(H);
      Regs[I.A] = S.Arena[H].V;
      break;
    }

    case Op::Store: {
      const Value *V = fetchSrc(S, CP, Act, Regs, I.B);
      if (!V)
        break;
      CellRef H = resolveCell(S, Act, I.A);
      if (H == NoCell)
        break;
      if ((I.B & OpModeMask) == OpReg)
        S.storeCell(*Act, H, std::move(Regs[I.B]));
      else
        S.storeCell(*Act, H, Value(*V));
      break;
    }

    case Op::LoadIdx: {
      const Value *Idx = fetchSrc(S, CP, Act, Regs, I.C);
      if (!Idx)
        break;
      CellRef H = resolveCell(S, Act, I.B);
      if (H == NoCell)
        break;
      S.observeRead(H);
      const Value &AV = S.Arena[H].V;
      const ArrayVal &Arr = AV.asArray();
      int64_t Ix = Idx->asInt();
      if (!Arr.inBounds(Ix)) {
        const DebugInfo &DI = CP.Debug[I.Aux];
        S.fail(DI.Loc, "array index " + std::to_string(Ix) +
                           " out of bounds [" + std::to_string(Arr.Lo) +
                           ".." + std::to_string(Arr.Hi) + "] for '" +
                           DI.Name + "'");
        break;
      }
      if (TrackDeps) {
        Value Out = Value::makeInt(Arr.at(Ix));
        Out.deps().mergeWith(AV.deps());
        Out.deps().mergeWith(Idx->deps());
        Regs[I.A] = std::move(Out);
      } else {
        Regs[I.A].setInt(Arr.at(Ix));
      }
      break;
    }

    case Op::StoreIdx: {
      const Value *V = fetchSrc(S, CP, Act, Regs, I.C);
      if (!V)
        break;
      const Value *Idx = fetchSrc(S, CP, Act, Regs, I.B);
      if (!Idx)
        break;
      CellRef H = resolveCell(S, Act, I.A);
      if (H == NoCell)
        break;
      // Writing one element both reads and writes the array as a whole.
      S.observeRead(H);
      S.observeWrite(H);
      ArrayVal &Arr = S.Arena[H].V.asArray();
      int64_t Ix = Idx->asInt();
      if (!Arr.inBounds(Ix)) {
        const DebugInfo &DI = CP.Debug[I.Aux];
        if (DI.InRead)
          S.fail(DI.Loc, "array index " + std::to_string(Ix) +
                             " out of bounds in read");
        else
          S.fail(DI.Loc, "array index " + std::to_string(Ix) +
                             " out of bounds [" + std::to_string(Arr.Lo) +
                             ".." + std::to_string(Arr.Hi) + "] for '" +
                             DI.Name + "'");
        break;
      }
      Arr.at(Ix) = V->asInt();
      if (TrackDeps) {
        Value &AV = S.Arena[H].V;
        AV.deps().mergeWith(V->deps());
        AV.deps().mergeWith(Idx->deps());
        if (const DepSet *Ctrl = Act->activeCtrlDeps())
          AV.deps().mergeWith(*Ctrl);
      }
      break;
    }

    case Op::ArrayLit: {
      ArrayVal Arr;
      Arr.Lo = 1;
      Arr.Hi = I.C;
      Arr.Elems.reserve(I.C);
      DepSet Deps;
      for (uint16_t K = 0; K != I.C; ++K) {
        Value &E = Regs[I.B + K];
        Arr.Elems.push_back(E.asInt());
        if (TrackDeps)
          Deps.mergeWith(E.deps());
      }
      Value Out = Value::makeArray(std::move(Arr));
      Out.deps() = std::move(Deps);
      Regs[I.A] = std::move(Out);
      break;
    }

#define GADT_VM_FETCH_LR()                                                   \
  const Value *L = fetchSrc(S, CP, Act, Regs, I.B);                          \
  if (!L)                                                                    \
    break;                                                                   \
  const Value *R = fetchSrc(S, CP, Act, Regs, I.C);                          \
  if (!R)                                                                    \
    break;                                                                   \
  Value &D = Regs[I.A];                                                      \
  (void)D

#define GADT_VM_MERGE_LR()                                                   \
  do {                                                                       \
    if (TrackDeps) {                                                         \
      if (&D == L)                                                           \
        D.deps().mergeWith(R->deps());                                       \
      else if (&D == R)                                                      \
        D.deps().mergeWith(L->deps());                                       \
      else {                                                                 \
        D.deps() = L->deps();                                                \
        D.deps().mergeWith(R->deps());                                       \
      }                                                                      \
    }                                                                        \
  } while (0)

    case Op::Add: {
      GADT_VM_FETCH_LR();
      int64_t Res = L->asInt() + R->asInt();
      GADT_VM_MERGE_LR();
      D.setInt(Res);
      break;
    }
    case Op::Sub: {
      GADT_VM_FETCH_LR();
      int64_t Res = L->asInt() - R->asInt();
      GADT_VM_MERGE_LR();
      D.setInt(Res);
      break;
    }
    case Op::Mul: {
      GADT_VM_FETCH_LR();
      int64_t Res = L->asInt() * R->asInt();
      GADT_VM_MERGE_LR();
      D.setInt(Res);
      break;
    }
    case Op::DivOp: {
      GADT_VM_FETCH_LR();
      if (R->asInt() == 0) {
        S.fail(CP.Debug[I.Aux].Loc, "division by zero");
        break;
      }
      int64_t Res = L->asInt() / R->asInt();
      GADT_VM_MERGE_LR();
      D.setInt(Res);
      break;
    }
    case Op::ModOp: {
      GADT_VM_FETCH_LR();
      if (R->asInt() == 0) {
        S.fail(CP.Debug[I.Aux].Loc, "modulo by zero");
        break;
      }
      int64_t Res = L->asInt() % R->asInt();
      GADT_VM_MERGE_LR();
      D.setInt(Res);
      break;
    }
    case Op::EqI: {
      GADT_VM_FETCH_LR();
      bool Res = L->asInt() == R->asInt();
      GADT_VM_MERGE_LR();
      D.setBool(Res);
      break;
    }
    case Op::NeI: {
      GADT_VM_FETCH_LR();
      bool Res = L->asInt() != R->asInt();
      GADT_VM_MERGE_LR();
      D.setBool(Res);
      break;
    }
    case Op::EqB: {
      GADT_VM_FETCH_LR();
      bool Res = L->asBool() == R->asBool();
      GADT_VM_MERGE_LR();
      D.setBool(Res);
      break;
    }
    case Op::NeB: {
      GADT_VM_FETCH_LR();
      bool Res = L->asBool() != R->asBool();
      GADT_VM_MERGE_LR();
      D.setBool(Res);
      break;
    }
    case Op::Lt: {
      GADT_VM_FETCH_LR();
      bool Res = L->asInt() < R->asInt();
      GADT_VM_MERGE_LR();
      D.setBool(Res);
      break;
    }
    case Op::Le: {
      GADT_VM_FETCH_LR();
      bool Res = L->asInt() <= R->asInt();
      GADT_VM_MERGE_LR();
      D.setBool(Res);
      break;
    }
    case Op::Gt: {
      GADT_VM_FETCH_LR();
      bool Res = L->asInt() > R->asInt();
      GADT_VM_MERGE_LR();
      D.setBool(Res);
      break;
    }
    case Op::Ge: {
      GADT_VM_FETCH_LR();
      bool Res = L->asInt() >= R->asInt();
      GADT_VM_MERGE_LR();
      D.setBool(Res);
      break;
    }
    case Op::AndB: {
      GADT_VM_FETCH_LR();
      bool Res = L->asBool() && R->asBool();
      GADT_VM_MERGE_LR();
      D.setBool(Res);
      break;
    }
    case Op::OrB: {
      GADT_VM_FETCH_LR();
      bool Res = L->asBool() || R->asBool();
      GADT_VM_MERGE_LR();
      D.setBool(Res);
      break;
    }
#undef GADT_VM_FETCH_LR
#undef GADT_VM_MERGE_LR

    case Op::NotB: {
      const Value *V = fetchSrc(S, CP, Act, Regs, I.B);
      if (!V)
        break;
      Value &D = Regs[I.A];
      bool Res = !V->asBool();
      if (TrackDeps && &D != V)
        D.deps() = V->deps();
      D.setBool(Res);
      break;
    }
    case Op::NegI: {
      const Value *V = fetchSrc(S, CP, Act, Regs, I.B);
      if (!V)
        break;
      Value &D = Regs[I.A];
      int64_t Res = -V->asInt();
      if (TrackDeps && &D != V)
        D.deps() = V->deps();
      D.setInt(Res);
      break;
    }

    case Op::Jmp:
      PC = I.Aux;
      break;

    case Op::IfBr: {
      const Value *V = fetchSrc(S, CP, Act, Regs, I.A);
      if (!V)
        break;
      S.pushCtrl(*Act, V->deps());
      if (!V->asBool())
        PC = I.Aux;
      break;
    }
    case Op::PopCtrl:
      S.popCtrl(*Act);
      break;

    case Op::LoopEnter: {
      const LoopInfo &LI = CP.Loops[I.Aux];
      LoopState LS;
      LS.LI = &LI;
      LS.LoopNode = S.enterLoopUnit(UnitKind::Loop, LI.UnitName, LI.Stmt, 0,
                                    LI.Loc, *Act);
      LS.CtrlIterDepth = static_cast<uint32_t>(Act->CtrlStack.size());
      LS.CtrlLoopDepth = LS.CtrlIterDepth;
      VS.Loops.push_back(std::move(LS));
      break;
    }
    case Op::WhileTest: {
      const Value *V = fetchSrc(S, CP, Act, Regs, I.A);
      if (!V)
        break;
      if (TrackDeps)
        VS.Loops.back().CondAccum.mergeWith(V->deps());
      if (!V->asBool())
        PC = I.Aux;
      break;
    }
    case Op::IterBegin: {
      LoopState &LS = VS.Loops.back();
      const LoopInfo &LI = *LS.LI;
      ++LS.Iter;
      if (!S.countStep(LI.Loc))
        break;
      LS.IterNode = S.enterLoopUnit(UnitKind::Iteration, LI.UnitName,
                                    LI.Stmt, LS.Iter, LI.Loc, *Act);
      S.pushCtrl(*Act, LS.CondAccum);
      break;
    }
    case Op::IterEnd: {
      LoopState &LS = VS.Loops.back();
      S.popCtrl(*Act);
      S.exitLoopUnit(LS.IterNode, *Act);
      LS.IterNode = 0;
      PC = I.Aux;
      break;
    }
    case Op::RepeatTest: {
      const Value *V = fetchSrc(S, CP, Act, Regs, I.A);
      if (!V)
        break;
      if (TrackDeps)
        VS.Loops.back().CondAccum.mergeWith(V->deps());
      if (!V->asBool())
        PC = I.Aux;
      break;
    }
    case Op::ForPrep: {
      LoopState &LS = VS.Loops.back();
      const LoopInfo &LI = *LS.LI;
      LS.ForCell = resolveCell(S, Act, LI.VarOperand);
      if (LS.ForCell == NoCell)
        break;
      const Value *From = fetchSrc(S, CP, Act, Regs, I.A);
      if (!From)
        break;
      const Value *To = fetchSrc(S, CP, Act, Regs, I.B);
      if (!To)
        break;
      if (TrackDeps) {
        LS.CondAccum.mergeWith(From->deps());
        LS.CondAccum.mergeWith(To->deps());
      }
      LS.I = From->asInt();
      LS.Limit = To->asInt();
      LS.CtrlLoopDepth = static_cast<uint32_t>(Act->CtrlStack.size());
      S.pushCtrl(*Act, LS.CondAccum);
      LS.CtrlIterDepth = static_cast<uint32_t>(Act->CtrlStack.size());
      break;
    }
    case Op::ForTest: {
      LoopState &LS = VS.Loops.back();
      if (!(LS.LI->Down ? LS.I >= LS.Limit : LS.I <= LS.Limit))
        PC = I.Aux;
      break;
    }
    case Op::ForIter: {
      LoopState &LS = VS.Loops.back();
      const LoopInfo &LI = *LS.LI;
      ++LS.Iter;
      if (!S.countStep(LI.Loc))
        break;
      Value IV = Value::makeInt(LS.I);
      if (TrackDeps)
        IV.deps() = LS.CondAccum;
      // The loop-variable store precedes the iteration unit (the write is
      // charged to the loop, not the iteration — tree-walker order).
      S.storeCell(*Act, LS.ForCell, std::move(IV));
      LS.IterNode = S.enterLoopUnit(UnitKind::Iteration, LI.UnitName,
                                    LI.Stmt, LS.Iter, LI.Loc, *Act);
      break;
    }
    case Op::ForEnd: {
      LoopState &LS = VS.Loops.back();
      S.exitLoopUnit(LS.IterNode, *Act);
      LS.IterNode = 0;
      LS.I += LS.LI->Down ? -1 : 1;
      PC = I.Aux;
      break;
    }
    case Op::LoopExit: {
      LoopState &LS = VS.Loops.back();
      S.exitLoopUnit(LS.LoopNode, *Act);
      VS.Loops.pop_back();
      break;
    }
    case Op::ForExit: {
      LoopState &LS = VS.Loops.back();
      S.popCtrl(*Act);
      S.exitLoopUnit(LS.LoopNode, *Act);
      VS.Loops.pop_back();
      break;
    }

    case Op::CallGuard: {
      if (S.CallDepth >= S.Opts.MaxCallDepth) {
        const DebugInfo &DI = CP.Debug[I.Aux];
        S.fail(DI.Loc, "call depth limit exceeded (runaway recursion in '" +
                           DI.Name + "')");
      }
      break;
    }

    case Op::Call: {
      const CallSiteInfo &Site = CP.Sites[I.Aux];
      const ArgDesc *SiteArgs = CP.ArgPool.data() + Site.ArgStart;
      const ArgDesc *SiteArgsEnd = SiteArgs + Site.ArgCount;
      // Resolve reference arguments first; a resolution failure aborts the
      // call before any state is created.
      VS.RefScratch.clear();
      bool RefFail = false;
      for (const ArgDesc *ADP = SiteArgs; ADP != SiteArgsEnd; ++ADP) {
        const ArgDesc &AD = *ADP;
        if (AD.IsRef) {
          CellRef C = resolveCell(S, Act, AD.Operand);
          if (C == NoCell) {
            RefFail = true;
            break;
          }
          VS.RefScratch.push_back(C);
        }
      }
      if (RefFail)
        break;

      // Growing Frames/Regs may reallocate; compute what we need from the
      // caller frame first, then refresh the invalidated pointers.
      const CompiledRoutine &CR = CP.Routines[Site.RoutineIdx];
      uint32_t CallerBase = F->RegBase;
      uint32_t NewBase = CallerBase + CP.Routines[F->RoutineIdx].NumRegs;
      VMFrame &NF = VS.frameAt(VS.Depth);
      Activation &NA = VS.actAt(VS.Depth);
      if (VS.Regs.size() < NewBase + CR.NumRegs)
        VS.Regs.resize(NewBase + CR.NumRegs);
      F = &VS.Frames[VS.Depth - 1];
      Regs = VS.Regs.data() + CallerBase;

      NA.R = Site.Callee;
      NA.StaticLink = Act;
      for (int32_t Hops = Site.LinkHops; Hops > 0; --Hops)
        NA.StaticLink = NA.StaticLink->StaticLink;
      if (Site.LinkHops < 0)
        NA.StaticLink = nullptr;

      NF.EntryInputs.clear();
      if (S.Listener)
        for (const ArgDesc *ADP = SiteArgs; ADP != SiteArgsEnd; ++ADP)
          if (!ADP->IsRef)
            NF.EntryInputs.push_back({ADP->Name, Regs[ADP->Operand]});

      // Cells created from here on are local to the callee's unit frame —
      // and owned by its activation (freed when the call returns).
      uint64_t Watermark = S.CellSerial + 1;
      NA.Watermark = Watermark;
      NA.Slots.assign(Site.Callee->getNumSlots(), NoCell);
      NA.CtrlStack.clear();
      size_t RefIdx = 0;
      for (const ArgDesc *ADP = SiteArgs; ADP != SiteArgsEnd; ++ADP)
        NA.Slots[ADP->Param->getSlot()] =
            ADP->IsRef ? VS.RefScratch[RefIdx++]
                       : S.newCell(ADP->Param, std::move(Regs[ADP->Operand]));
      for (const auto &Lc : Site.Callee->getLocals())
        NA.Slots[Lc->getSlot()] =
            S.newCell(Lc.get(), S.initialValue(Lc->getType()));
      if (Site.Callee->isFunction()) {
        const pascal::VarDecl *RV = Site.Callee->getResultVar();
        NA.Slots[RV->getSlot()] =
            S.newCell(RV, S.initialValue(Site.Callee->getReturnType()));
      }

      NF.RoutineIdx = Site.RoutineIdx;
      NF.PC = 0;
      NF.RegBase = NewBase;
      NF.Dest = I.A;
      NF.Act = &NA;
      NF.CallerAct = Act;
      NF.LoopBase = VS.Loops.size();
      NF.Callee = Site.Callee;
      NF.NodeId = S.beginCallUnit(NA, Site.Callee, Site.CallStmt,
                                  Site.CallExpr, Site.Loc, Watermark);
      ++S.CallDepth;
      F->PC = PC;
      ++VS.Depth;
      reload();
      break;
    }

    case Op::Ret: {
      if (VS.Depth == 1) {
        F->PC = PC;
        return;
      }
      VMFrame &RF = *F;
      --S.CallDepth;
      Value Result;
      S.finishCallUnit(*RF.Act, RF.Callee, std::move(RF.EntryInputs),
                       RF.NodeId, RF.CallerAct, nullptr, &Result);
      S.freeActivationCells(*RF.Act);
      uint16_t Dest = RF.Dest;
      --VS.Depth;
      reload();
      if (Dest != NoDest)
        Regs[Dest] = std::move(Result);
      break;
    }

    case Op::ReadFetch: {
      if (S.InputPos >= S.Input.size()) {
        S.fail(CP.Debug[I.Aux].Loc, "read past end of program input");
        break;
      }
      Regs[I.A] = Value::makeInt(S.Input[S.InputPos++]);
      break;
    }
    case Op::WriteVal: {
      const Value *V = fetchSrc(S, CP, Act, Regs, I.A);
      if (!V)
        break;
      if (V->isStr())
        S.Output += V->asStr();
      else
        S.Output += V->str();
      break;
    }
    case Op::WriteNl:
      S.Output += '\n';
      break;
    }
  }
}

} // namespace

ExecResult bytecode::run(ExecState &S, const CompiledProgram &CP,
                         VMState &VS) {
  S.reset();
  VS.Depth = 1;
  VS.Loops.clear();
  ExecResult Res;

  Activation &Main = VS.actAt(0);
  S.setUpMainActivation(Main);
  uint32_t RootId = S.enterRoot(Main);

  VMFrame &MF = VS.frameAt(0);
  MF.RoutineIdx = 0;
  MF.PC = 0;
  MF.RegBase = 0;
  MF.Dest = NoDest;
  MF.Act = &Main;
  MF.CallerAct = nullptr;
  MF.LoopBase = 0;
  MF.Callee = CP.Routines[0].Routine;
  MF.NodeId = RootId;
  MF.EntryInputs.clear();
  if (VS.Regs.size() < CP.Routines[0].NumRegs)
    VS.Regs.resize(CP.Routines[0].NumRegs);

  if (S.Opts.TrackDeps)
    dispatch<true>(S, CP, VS);
  else
    dispatch<false>(S, CP, VS);

  S.exitRoot(RootId, Main, Res);
  Res.Ok = !S.Failed;
  Res.Error = S.Error;
  Res.Output = S.Output;
  Res.Steps = S.Steps;
  Res.UnitsExecuted = S.NodeCounter;
  S.flushPoolStats();
  return Res;
}
