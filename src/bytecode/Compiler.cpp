//===- Compiler.cpp - AST -> register bytecode ----------------------------===//
//
// Translates a storage-slotted pascal::Program into the flat register form
// of Bytecode.h. The hard requirement is *event equivalence* with the tree
// walker: every cell read/write, dependence merge, unit event and step must
// happen in the same order. Two rules carry that burden:
//
//  1. Code for subexpressions is emitted in the tree walker's evaluation
//     order (left before right, value before index in assignments, bounds
//     before body in for loops).
//
//  2. A cell operand may only be fused into a consuming instruction when no
//     code runs between the tree walker's read point and the instruction.
//     Concretely: for a binary node, if the right operand's expression
//     emits instructions, the left operand is first materialized into a
//     register (Op::Load performs its read at the correct point); purely
//     operand-shaped right-hand sides (registers, cells, constants) fetch
//     inside the consuming instruction, in left-to-right order.
//
// Unsupported constructs (gotos/labels, ASTs without Sema type annotations,
// encoding overflows) reject the whole program — the interpreter then runs
// the tree tier. Rejection is per-program, never per-routine: mixed-tier
// executions would make the event streams impossible to reason about.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Bytecode.h"

#include "pascal/ASTMatch.h"
#include "support/Casting.h"

#include <map>
#include <unordered_map>

using namespace gadt;
using namespace gadt::bytecode;
using namespace gadt::pascal;

size_t CompiledProgram::memoryBytes() const {
  size_t Bytes = sizeof(CompiledProgram);
  for (const CompiledRoutine &R : Routines)
    Bytes += sizeof(CompiledRoutine) + R.Code.size() * sizeof(Instr);
  Bytes += Consts.size() * sizeof(interp::Value);
  Bytes += Sites.size() * sizeof(CallSiteInfo);
  Bytes += ArgPool.size() * sizeof(ArgDesc);
  Bytes += Loops.size() * sizeof(LoopInfo);
  for (const DebugInfo &D : Debug)
    Bytes += sizeof(DebugInfo) + D.Name.size();
  Bytes += Segments.size() * sizeof(RoutineSegment);
  Bytes += DebugSources.size() * sizeof(DebugSrc);
  return Bytes;
}

namespace {

/// A compile-time operand: the encoded 16-bit field plus whether producing
/// it emitted instructions (register results do; fused cells/consts don't).
struct COperand {
  uint16_t Enc = 0;
  bool IsReg = false;
};

class Compiler {
public:
  Compiler(const Program &P, bool Checked,
           const CodeReusePlan *Reuse = nullptr)
      : Prog(P), Checked(Checked), Reuse(Reuse) {}

  /// True when a reuse plan was supplied but could not be applied; the
  /// caller restarts with a plain full compile.
  bool replayFailed() const { return ReplayFail; }
  unsigned replayedCount() const { return Replayed; }

  std::shared_ptr<const CompiledProgram> run(std::string *WhyNot) {
    auto CP = std::make_shared<CompiledProgram>();
    Out = CP.get();
    Out->Prog = &Prog;
    Out->Checked = Checked;
    if (!Prog.areSlotsAssigned())
      bail("program has no storage slots");
    // Pre-size the hash tables: incremental rehashing shows up in compile
    // profiles, and compile latency is the cold-start cost of this tier.
    RoutineIdx.reserve(64);
    ScalarConsts.reserve(64);
    indexRoutines(Prog.getMain());
    bool UsePlan = Reuse != nullptr;
    if (UsePlan && !planUsable()) {
      UsePlan = false;
      ReplayFail = true; // surfaced as a fallback; full compile proceeds
    }
    for (size_t I = 0; I != RoutineList.size() && Ok; ++I) {
      if (UsePlan && Reuse->Replay[I]) {
        if (replayRoutine(I)) {
          ++Replayed;
          continue;
        }
        // A mid-routine replay failure leaves partially appended side
        // tables behind; abort and let the caller restart from scratch.
        ReplayFail = true;
        if (WhyNot && !Why.empty())
          *WhyNot = Why;
        return nullptr;
      }
      compileRoutine(I);
    }
    if (!Ok) {
      if (WhyNot)
        *WhyNot = Why;
      return nullptr;
    }
    return CP;
  }

private:
  const Program &Prog;
  bool Checked;
  const CodeReusePlan *Reuse = nullptr;
  CompiledProgram *Out = nullptr;

  bool Ok = true;
  bool ReplayFail = false;
  unsigned Replayed = 0;
  std::string Why;

  std::vector<const RoutineDecl *> RoutineList;
  std::unordered_map<const RoutineDecl *, uint32_t> RoutineIdx;

  // Per-routine compile state.
  const RoutineDecl *Cur = nullptr;
  std::vector<Instr> Code;
  uint16_t RegTop = 0;
  uint32_t NumRegs = 0;

  // Constant pools with dedup. The debug table is append-only: a dedup map
  // keyed on (loc, name) costs more at compile time than the duplicate
  // entries cost in memory, and compile latency is what a cold Interpreter
  // construction pays before its first run.
  std::unordered_map<uint64_t, uint16_t> ScalarConsts;
  std::map<std::string, uint16_t> StrConsts;
  /// Staging area for call-site argument descriptors. Nested calls in
  /// argument position stage and flush in strict stack discipline, so one
  /// shared vector (saved/restored by high-water mark) replaces a heap
  /// allocation per call site.
  std::vector<ArgDesc> ArgScratch;

  void bail(std::string Reason) {
    if (Ok) {
      Ok = false;
      Why = std::move(Reason);
    }
  }

  void indexRoutines(const RoutineDecl *R) {
    RoutineIdx[R] = static_cast<uint32_t>(RoutineList.size());
    RoutineList.push_back(R);
    for (const auto &N : R->getNested())
      indexRoutines(N.get());
  }

  //===------------------------------------------------------------------===//
  // Emission helpers
  //===------------------------------------------------------------------===//

  uint32_t emit(Op O, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
                uint32_t Aux = 0) {
    Code.push_back({O, A, B, C, Aux});
    return static_cast<uint32_t>(Code.size() - 1);
  }

  uint32_t here() const { return static_cast<uint32_t>(Code.size()); }
  void patch(uint32_t At, uint32_t Target) { Code[At].Aux = Target; }

  uint16_t allocReg() {
    if (RegTop > MaxRegOrConst) {
      bail("register file overflow");
      return 0;
    }
    uint16_t R = RegTop++;
    if (RegTop > NumRegs)
      NumRegs = RegTop;
    return R;
  }

  /// \p S / \p E record which AST node the row's location came from, so an
  /// incremental replay can refresh it after lines shift.
  uint32_t dbg(SourceLoc Loc, std::string Name = "", bool InRead = false,
               const Stmt *S = nullptr, const Expr *E = nullptr) {
    uint32_t Idx = static_cast<uint32_t>(Out->Debug.size());
    Out->Debug.push_back({Loc, std::move(Name), InRead});
    Out->DebugSources.push_back({S, E});
    return Idx;
  }

  /// KindTag 0 = integer, 1 = boolean. The pooled Value is only built on a
  /// dedup miss — literals repeat, and Value construction is not free. The
  /// dedup key packs (payload, tag) injectively into 64 bits (tag is one
  /// bit wide; the shift wraps, which is fine for a hash-map key).
  uint16_t constIdx(int KindTag, int64_t Payload) {
    uint64_t Key = (static_cast<uint64_t>(Payload) << 1) |
                   static_cast<uint64_t>(KindTag);
    auto It = ScalarConsts.find(Key);
    if (It != ScalarConsts.end())
      return It->second;
    if (Out->Consts.size() > MaxRegOrConst) {
      bail("constant pool overflow");
      return 0;
    }
    uint16_t Idx = static_cast<uint16_t>(Out->Consts.size());
    Out->Consts.push_back(KindTag == 0 ? interp::Value::makeInt(Payload)
                                       : interp::Value::makeBool(Payload != 0));
    ScalarConsts.emplace(Key, Idx);
    return Idx;
  }

  uint16_t strConstIdx(const std::string &S) {
    auto It = StrConsts.find(S);
    if (It != StrConsts.end())
      return It->second;
    if (Out->Consts.size() > MaxRegOrConst) {
      bail("constant pool overflow");
      return 0;
    }
    uint16_t Idx = static_cast<uint16_t>(Out->Consts.size());
    Out->Consts.push_back(interp::Value::makeStr(S));
    StrConsts.emplace(S, Idx);
    return Idx;
  }

  /// Encodes direct frame addressing for \p D from the current routine.
  uint16_t cellOperand(const VarDecl *D) {
    uint32_t Hops = Cur->getStorageDepth() - D->getDepth();
    if (Hops > MaxCellHops) {
      bail("static nesting too deep for cell encoding");
      return 0;
    }
    if (D->getSlot() > MaxSlot) {
      bail("frame slot index too large for cell encoding");
      return 0;
    }
    return makeCellOperand(Hops, D->getSlot());
  }

  //===------------------------------------------------------------------===//
  // Expression compilation
  //===------------------------------------------------------------------===//

  /// Whether compiling \p E will emit instructions (as opposed to reducing
  /// to a fused cell/const operand). Drives operand-order materialization.
  bool emitsCode(const Expr *E) const {
    switch (E->getKind()) {
    case Expr::Kind::IntLiteral:
    case Expr::Kind::BoolLiteral:
    case Expr::Kind::StringLiteral:
      return false;
    case Expr::Kind::VarRef:
      return Checked; // checked loads are explicit instructions
    default:
      return true;
    }
  }

  /// Forces \p O into a register (no-op when it already is one). For cell
  /// operands this emits the read at the current code position.
  COperand materialize(COperand O, SourceLoc Loc, const std::string &Name) {
    if (O.IsReg)
      return O;
    uint16_t R = allocReg();
    (void)Loc;
    (void)Name;
    emit(Op::Load, R, O.Enc);
    return {makeRegOperand(R), true};
  }

  /// Compiles \p E; the result is a fused operand or a register. Registers
  /// are stack-allocated: the caller is responsible for restoring RegTop
  /// once the consumers have been emitted.
  COperand compileExpr(const Expr *E) {
    if (!Ok)
      return {};
    switch (E->getKind()) {
    case Expr::Kind::IntLiteral:
      return {makeConstOperand(
                  constIdx(0, cast<IntLiteralExpr>(E)->getValue())),
              false};
    case Expr::Kind::BoolLiteral:
      return {makeConstOperand(
                  constIdx(1, cast<BoolLiteralExpr>(E)->getValue() ? 1 : 0)),
              false};
    case Expr::Kind::StringLiteral:
      return {makeConstOperand(
                  strConstIdx(cast<StringLiteralExpr>(E)->getValue())),
              false};

    case Expr::Kind::VarRef: {
      const auto *VR = cast<VarRefExpr>(E);
      uint16_t Cell = cellOperand(VR->getDecl());
      if (!Ok)
        return {};
      if (!Checked)
        return {Cell, false};
      // Strict mode: the read is an explicit, checked instruction.
      uint16_t R = allocReg();
      emit(Op::LoadChecked, R, Cell, 0,
           dbg(VR->getLoc(), VR->getName(), false, nullptr, VR));
      return {makeRegOperand(R), true};
    }

    case Expr::Kind::Index: {
      const auto *IE = cast<IndexExpr>(E);
      const auto *BaseRef = cast<VarRefExpr>(IE->getBase());
      uint16_t Base = cellOperand(BaseRef->getDecl());
      if (!Ok)
        return {};
      COperand Idx = compileExpr(IE->getIndex());
      if (!Ok)
        return {};
      uint16_t R = Idx.IsReg ? static_cast<uint16_t>(Idx.Enc & ~OpModeMask)
                             : allocReg();
      emit(Op::LoadIdx, R, Base, Idx.Enc,
           dbg(IE->getLoc(), BaseRef->getName(), false, nullptr, IE));
      return {makeRegOperand(R), true};
    }

    case Expr::Kind::ArrayLiteral: {
      const auto *AL = cast<ArrayLiteralExpr>(E);
      if (AL->getElements().size() > MaxRegOrConst) {
        bail("array literal too long");
        return {};
      }
      uint16_t Base = RegTop;
      for (const ExprPtr &Elem : AL->getElements()) {
        uint16_t Slot = RegTop;
        COperand O = compileExpr(Elem.get());
        if (!Ok)
          return {};
        forceIntoReg(O, Slot);
      }
      RegTop = Base;
      uint16_t R = allocReg();
      emit(Op::ArrayLit, R, Base,
           static_cast<uint16_t>(AL->getElements().size()));
      return {makeRegOperand(R), true};
    }

    case Expr::Kind::Call: {
      const auto *CE = cast<CallExpr>(E);
      return compileCall(CE->getCallee(), CE->getArgs(), nullptr, CE,
                         CE->getLoc(), /*WantResult=*/true);
    }

    case Expr::Kind::Unary: {
      const auto *UE = cast<UnaryExpr>(E);
      COperand V = compileExpr(UE->getOperand());
      if (!Ok)
        return {};
      uint16_t R = V.IsReg ? static_cast<uint16_t>(V.Enc & ~OpModeMask)
                           : allocReg();
      emit(UE->getOp() == UnaryOp::Neg ? Op::NegI : Op::NotB, R, V.Enc);
      return {makeRegOperand(R), true};
    }

    case Expr::Kind::Binary: {
      const auto *BE = cast<BinaryExpr>(E);
      uint16_t Watermark = RegTop;
      COperand L = compileExpr(BE->getLHS());
      if (!Ok)
        return {};
      // Rule 2 (file comment): keep the left read ahead of any right-hand
      // code.
      if (!L.IsReg && (L.Enc & OpModeMask) == OpCell &&
          emitsCode(BE->getRHS()))
        L = materialize(L, BE->getLoc(), "");
      COperand R = compileExpr(BE->getRHS());
      if (!Ok)
        return {};
      Op O;
      switch (BE->getOp()) {
      case BinaryOp::Add: O = Op::Add; break;
      case BinaryOp::Sub: O = Op::Sub; break;
      case BinaryOp::Mul: O = Op::Mul; break;
      case BinaryOp::Div: O = Op::DivOp; break;
      case BinaryOp::Mod: O = Op::ModOp; break;
      case BinaryOp::Eq:
      case BinaryOp::Ne: {
        const Type *LTy = BE->getLHS()->getType();
        if (!LTy) {
          bail("expression without a type annotation");
          return {};
        }
        bool IsB = LTy->isBoolean();
        O = BE->getOp() == BinaryOp::Eq ? (IsB ? Op::EqB : Op::EqI)
                                        : (IsB ? Op::NeB : Op::NeI);
        break;
      }
      case BinaryOp::Lt: O = Op::Lt; break;
      case BinaryOp::Le: O = Op::Le; break;
      case BinaryOp::Gt: O = Op::Gt; break;
      case BinaryOp::Ge: O = Op::Ge; break;
      case BinaryOp::And: O = Op::AndB; break;
      case BinaryOp::Or: O = Op::OrB; break;
      }
      RegTop = Watermark;
      uint16_t Dest = allocReg();
      uint32_t Aux = 0;
      if (O == Op::DivOp || O == Op::ModOp)
        Aux = dbg(BE->getLoc(), "", false, nullptr, BE);
      emit(O, Dest, L.Enc, R.Enc, Aux);
      return {makeRegOperand(Dest), true};
    }
    }
    bail("unknown expression kind");
    return {};
  }

  /// Compiles \p E directly into register \p Slot (which must be the
  /// current RegTop), for consumers that need contiguous registers.
  void forceIntoReg(COperand O, uint16_t Slot) {
    if (O.IsReg && (O.Enc & ~OpModeMask) == Slot) {
      if (RegTop <= Slot)
        RegTop = static_cast<uint16_t>(Slot + 1);
      if (RegTop > NumRegs)
        NumRegs = RegTop;
      return;
    }
    RegTop = Slot;
    uint16_t R = allocReg();
    emit(Op::Load, R, O.Enc);
  }

  /// Compiles argument evaluation plus the Call instruction. Value
  /// arguments are materialized into registers in parameter order (the
  /// tree walker's evaluation order); reference arguments are resolved by
  /// the VM at call time, which performs no reads.
  COperand compileCall(const RoutineDecl *Callee,
                       const std::vector<ExprPtr> &Args, const Stmt *CallStmt,
                       const Expr *CallExpr, SourceLoc Loc, bool WantResult) {
    if (!Callee) {
      bail("unresolved call");
      return {};
    }
    auto It = RoutineIdx.find(Callee);
    if (It == RoutineIdx.end()) {
      bail("call to a routine outside the program");
      return {};
    }
    CallSiteInfo Site;
    Site.Callee = Callee;
    Site.RoutineIdx = It->second;
    Site.CallStmt = CallStmt;
    Site.CallExpr = CallExpr;
    Site.Loc = Loc;
    // Static link: hops up the caller's chain to the activation of the
    // callee's lexical parent (or none when calling the program routine).
    Site.LinkHops = -1;
    int32_t Hops = 0;
    for (const RoutineDecl *R = Cur; R; R = R->getParent(), ++Hops)
      if (R == Callee->getParent()) {
        Site.LinkHops = Hops;
        break;
      }

    uint16_t Watermark = RegTop;
    const auto &Params = Callee->getParams();
    if (Args.size() != Params.size()) {
      bail("argument count mismatch");
      return {};
    }
    emit(Op::CallGuard, 0, 0, 0,
         dbg(Loc, Callee->getName(), false, CallStmt, CallExpr));
    size_t ScratchBase = ArgScratch.size();
    for (size_t I = 0, N = Params.size(); I != N; ++I) {
      const VarDecl *P = Params[I].get();
      ArgDesc AD;
      AD.Param = P;
      AD.Name = support::Symbol(P->getName());
      if (P->isReference()) {
        AD.IsRef = true;
        const auto *VR = dyn_cast<VarRefExpr>(Args[I].get());
        if (!VR) {
          bail("reference argument is not a variable");
          return {};
        }
        AD.Operand = cellOperand(VR->getDecl());
        if (!Ok)
          return {};
      } else {
        uint16_t Slot = RegTop;
        COperand O = compileExpr(Args[I].get());
        if (!Ok)
          return {};
        forceIntoReg(O, Slot);
        AD.Operand = Slot; // raw register index
      }
      ArgScratch.push_back(AD);
    }
    // Flush this site's descriptors to the flat pool. Nested calls compiled
    // above (as argument expressions) have already flushed and truncated
    // their own ranges, so [ScratchBase, end) is exactly this site's args.
    Site.ArgStart = static_cast<uint32_t>(Out->ArgPool.size());
    Site.ArgCount = static_cast<uint32_t>(ArgScratch.size() - ScratchBase);
    Out->ArgPool.insert(Out->ArgPool.end(), ArgScratch.begin() + ScratchBase,
                        ArgScratch.end());
    ArgScratch.resize(ScratchBase);
    Out->Sites.push_back(std::move(Site));
    uint32_t SiteIdx = static_cast<uint32_t>(Out->Sites.size() - 1);

    RegTop = Watermark;
    uint16_t Dest = NoDest;
    if (WantResult)
      Dest = allocReg();
    emit(Op::Call, Dest, 0, 0, SiteIdx);
    if (!WantResult)
      return {};
    return {makeRegOperand(Dest), true};
  }

  //===------------------------------------------------------------------===//
  // Statement compilation
  //===------------------------------------------------------------------===//

  void compileStmt(const Stmt *S) {
    if (!Ok)
      return;
    RegTop = 0; // expression temporaries never live across statements
    emit(Op::Step, 0, 0, 0, dbg(S->getLoc(), "", false, S));

    switch (S->getKind()) {
    case Stmt::Kind::Compound:
      for (const StmtPtr &Sub : cast<CompoundStmt>(S)->getBody())
        compileStmt(Sub.get());
      return;

    case Stmt::Kind::Assign:
      compileAssign(cast<AssignStmt>(S));
      return;

    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(S);
      COperand Cond = compileExpr(IS->getCond());
      if (!Ok)
        return;
      uint32_t Br = emit(Op::IfBr, Cond.Enc);
      compileStmt(IS->getThen());
      if (IS->getElse()) {
        uint32_t JmpEnd = emit(Op::Jmp);
        patch(Br, here());
        compileStmt(IS->getElse());
        patch(JmpEnd, here());
      } else {
        patch(Br, here());
      }
      emit(Op::PopCtrl);
      return;
    }

    case Stmt::Kind::While:
      compileWhile(cast<WhileStmt>(S));
      return;
    case Stmt::Kind::Repeat:
      compileRepeat(cast<RepeatStmt>(S));
      return;
    case Stmt::Kind::For:
      compileFor(cast<ForStmt>(S));
      return;

    case Stmt::Kind::ProcCall: {
      const auto *PC = cast<ProcCallStmt>(S);
      compileCall(PC->getCallee(), PC->getArgs(), PC, nullptr, PC->getLoc(),
                  /*WantResult=*/false);
      return;
    }

    case Stmt::Kind::Goto:
    case Stmt::Kind::Labeled:
      bail("gotos/labels execute on the tree tier");
      return;

    case Stmt::Kind::Read:
      compileRead(cast<ReadStmt>(S));
      return;
    case Stmt::Kind::Write:
      compileWrite(cast<WriteStmt>(S));
      return;
    case Stmt::Kind::Empty:
      return;
    }
    bail("unknown statement kind");
  }

  void compileAssign(const AssignStmt *AS) {
    if (const auto *VR = dyn_cast<VarRefExpr>(AS->getTarget())) {
      COperand V = compileExpr(AS->getValue());
      if (!Ok)
        return;
      uint16_t Target = cellOperand(VR->getDecl());
      if (!Ok)
        return;
      emit(Op::Store, Target, V.Enc);
      return;
    }
    const auto *IE = cast<IndexExpr>(AS->getTarget());
    const auto *BaseRef = cast<VarRefExpr>(IE->getBase());
    COperand V = compileExpr(AS->getValue());
    if (!Ok)
      return;
    // The value is evaluated before the index (tree-walker order); fused
    // cell values must not let index code run first.
    if (!V.IsReg && (V.Enc & OpModeMask) == OpCell && emitsCode(IE->getIndex()))
      V = materialize(V, AS->getLoc(), "");
    COperand Idx = compileExpr(IE->getIndex());
    if (!Ok)
      return;
    uint16_t Base = cellOperand(BaseRef->getDecl());
    if (!Ok)
      return;
    emit(Op::StoreIdx, Base, Idx.Enc, V.Enc,
         dbg(IE->getLoc(), BaseRef->getName(), false, nullptr, IE));
  }

  void compileWhile(const WhileStmt *WS) {
    uint32_t LoopIdx = addLoop(LoopInfo::Kind::While, WS, WS->getUnitName(),
                               WS->getLoc());
    emit(Op::LoopEnter, 0, 0, 0, LoopIdx);
    uint32_t Top = here();
    RegTop = 0;
    COperand Cond = compileExpr(WS->getCond());
    if (!Ok)
      return;
    uint32_t Test = emit(Op::WhileTest, Cond.Enc);
    emit(Op::IterBegin, 0, 0, 0, LoopIdx);
    compileStmt(WS->getBody());
    emit(Op::IterEnd, 0, 0, 0, Top);
    patch(Test, here());
    emit(Op::LoopExit, 0, 0, 0, LoopIdx);
  }

  void compileRepeat(const RepeatStmt *RS) {
    uint32_t LoopIdx = addLoop(LoopInfo::Kind::Repeat, RS, RS->getUnitName(),
                               RS->getLoc());
    emit(Op::LoopEnter, 0, 0, 0, LoopIdx);
    uint32_t Top = here();
    emit(Op::IterBegin, 0, 0, 0, LoopIdx);
    for (const StmtPtr &Sub : RS->getBody())
      compileStmt(Sub.get());
    emit(Op::IterEnd, 0, 0, 0, here() + 1); // fall through to the test
    RegTop = 0;
    COperand Cond = compileExpr(RS->getCond());
    if (!Ok)
      return;
    emit(Op::RepeatTest, Cond.Enc, 0, 0, Top);
    emit(Op::LoopExit, 0, 0, 0, LoopIdx);
  }

  void compileFor(const ForStmt *FS) {
    const auto *VR = cast<VarRefExpr>(FS->getLoopVar());
    uint32_t LoopIdx = addLoop(LoopInfo::Kind::For, FS, FS->getUnitName(),
                               FS->getLoc());
    if (!Ok)
      return;
    Out->Loops[LoopIdx].Down = FS->isDownward();
    Out->Loops[LoopIdx].VarOperand = cellOperand(VR->getDecl());
    if (!Ok)
      return;
    emit(Op::LoopEnter, 0, 0, 0, LoopIdx);
    RegTop = 0;
    COperand From = compileExpr(FS->getFrom());
    if (!Ok)
      return;
    if (!From.IsReg && (From.Enc & OpModeMask) == OpCell &&
        emitsCode(FS->getTo()))
      From = materialize(From, FS->getLoc(), "");
    COperand To = compileExpr(FS->getTo());
    if (!Ok)
      return;
    emit(Op::ForPrep, From.Enc, To.Enc, 0, LoopIdx);
    uint32_t Test = emit(Op::ForTest, 0, 0, 0, 0);
    emit(Op::ForIter, 0, 0, 0, LoopIdx);
    compileStmt(FS->getBody());
    emit(Op::ForEnd, 0, 0, 0, Test);
    patch(Test, here());
    emit(Op::ForExit, 0, 0, 0, LoopIdx);
  }

  void compileRead(const ReadStmt *RS) {
    for (const ExprPtr &T : RS->getTargets()) {
      RegTop = 0;
      uint16_t RV = allocReg();
      emit(Op::ReadFetch, RV, 0, 0, dbg(RS->getLoc(), "", false, RS));
      if (const auto *VR = dyn_cast<VarRefExpr>(T.get())) {
        uint16_t Target = cellOperand(VR->getDecl());
        if (!Ok)
          return;
        emit(Op::Store, Target, makeRegOperand(RV));
        continue;
      }
      const auto *IE = cast<IndexExpr>(T.get());
      const auto *BaseRef = cast<VarRefExpr>(IE->getBase());
      COperand Idx = compileExpr(IE->getIndex());
      if (!Ok)
        return;
      uint16_t Base = cellOperand(BaseRef->getDecl());
      if (!Ok)
        return;
      emit(Op::StoreIdx, Base, Idx.Enc, makeRegOperand(RV),
           dbg(IE->getLoc(), BaseRef->getName(), /*InRead=*/true, nullptr,
               IE));
    }
  }

  void compileWrite(const WriteStmt *WS) {
    for (const ExprPtr &Arg : WS->getArgs()) {
      RegTop = 0;
      COperand O = compileExpr(Arg.get());
      if (!Ok)
        return;
      emit(Op::WriteVal, O.Enc);
    }
    if (WS->isWriteln())
      emit(Op::WriteNl);
  }

  uint32_t addLoop(LoopInfo::Kind K, const Stmt *S, const std::string &Name,
                   SourceLoc Loc) {
    LoopInfo LI;
    LI.K = K;
    LI.Stmt = S;
    LI.UnitName = support::Symbol(Name);
    LI.Loc = Loc;
    Out->Loops.push_back(LI);
    return static_cast<uint32_t>(Out->Loops.size() - 1);
  }

  //===------------------------------------------------------------------===//
  // Routine compilation
  //===------------------------------------------------------------------===//

  void compileRoutine(size_t Idx) {
    Cur = RoutineList[Idx];
    Code.clear();
    RegTop = 0;
    NumRegs = 0;
    // Side tables are emitted contiguously per routine — the segment the
    // incremental recompile splices. The const dedup maps reset so a
    // routine's constants land inside its own run (the cost is duplicate
    // pool entries across routines, bounded by the per-program pool cap).
    ScalarConsts.clear();
    StrConsts.clear();
    RoutineSegment Seg;
    Seg.ConstStart = static_cast<uint32_t>(Out->Consts.size());
    Seg.SiteStart = static_cast<uint32_t>(Out->Sites.size());
    Seg.ArgStart = static_cast<uint32_t>(Out->ArgPool.size());
    Seg.LoopStart = static_cast<uint32_t>(Out->Loops.size());
    Seg.DebugStart = static_cast<uint32_t>(Out->Debug.size());
    if (Cur->getNumSlots() > MaxSlot + 1) {
      bail("routine frame too large for cell encoding");
      return;
    }
    if (Cur->getBody())
      compileStmt(Cur->getBody());
    emit(Op::Ret);
    if (!Ok)
      return;
    Seg.ConstCount = static_cast<uint32_t>(Out->Consts.size()) - Seg.ConstStart;
    Seg.SiteCount = static_cast<uint32_t>(Out->Sites.size()) - Seg.SiteStart;
    Seg.ArgCount = static_cast<uint32_t>(Out->ArgPool.size()) - Seg.ArgStart;
    Seg.LoopCount = static_cast<uint32_t>(Out->Loops.size()) - Seg.LoopStart;
    Seg.DebugCount = static_cast<uint32_t>(Out->Debug.size()) - Seg.DebugStart;
    CompiledRoutine CR;
    CR.Routine = Cur;
    CR.Code = std::move(Code);
    CR.NumRegs = NumRegs;
    Out->Routines.push_back(std::move(CR));
    Out->Segments.push_back(Seg);
  }

  //===------------------------------------------------------------------===//
  // Incremental replay
  //===------------------------------------------------------------------===//

  bool planUsable() const {
    const CompiledProgram *O = Reuse->Old;
    return O && Reuse->Map && O->Checked == Checked &&
           O->Routines.size() == RoutineList.size() &&
           O->Segments.size() == O->Routines.size() &&
           O->DebugSources.size() == O->Debug.size() &&
           Reuse->Replay.size() == O->Routines.size();
  }

  /// Shifts a fused operand's constant-pool index by \p Delta; register and
  /// cell operands pass through untouched.
  static bool shiftConstOperand(uint16_t &F, int64_t Delta) {
    if ((F & OpModeMask) != OpConst)
      return true;
    int64_t Idx = static_cast<int64_t>(F & ~OpModeMask) + Delta;
    if (Idx < 0 || Idx > MaxRegOrConst)
      return false;
    F = static_cast<uint16_t>(OpConst | static_cast<uint16_t>(Idx));
    return true;
  }

  /// Rebases one instruction from the old program's side-table layout onto
  /// the new one. Jump targets (Jmp/IfBr/WhileTest/IterEnd/RepeatTest/
  /// ForTest/ForEnd Aux) are routine-local pcs and need no shift.
  static bool relinkInstr(Instr &In, int64_t ConstD, int64_t SiteD,
                          int64_t LoopD, int64_t DbgD) {
    auto ShiftAux = [&In](int64_t Delta) {
      In.Aux = static_cast<uint32_t>(static_cast<int64_t>(In.Aux) + Delta);
    };
    switch (In.Code) {
    case Op::Step:
    case Op::CallGuard:
    case Op::ReadFetch:
      ShiftAux(DbgD);
      return true;
    case Op::Load:
    case Op::NotB:
    case Op::NegI:
      return shiftConstOperand(In.B, ConstD);
    case Op::LoadChecked:
      ShiftAux(DbgD);
      return shiftConstOperand(In.B, ConstD);
    case Op::Store:
      return shiftConstOperand(In.A, ConstD) &&
             shiftConstOperand(In.B, ConstD);
    case Op::LoadIdx:
      ShiftAux(DbgD);
      return shiftConstOperand(In.B, ConstD) &&
             shiftConstOperand(In.C, ConstD);
    case Op::StoreIdx:
      ShiftAux(DbgD);
      return shiftConstOperand(In.A, ConstD) &&
             shiftConstOperand(In.B, ConstD) &&
             shiftConstOperand(In.C, ConstD);
    case Op::DivOp:
    case Op::ModOp:
      ShiftAux(DbgD);
      return shiftConstOperand(In.B, ConstD) &&
             shiftConstOperand(In.C, ConstD);
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::EqI:
    case Op::NeI:
    case Op::EqB:
    case Op::NeB:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
    case Op::AndB:
    case Op::OrB:
      return shiftConstOperand(In.B, ConstD) &&
             shiftConstOperand(In.C, ConstD);
    case Op::IfBr:
    case Op::WhileTest:
    case Op::RepeatTest:
      return shiftConstOperand(In.A, ConstD); // Aux = routine-local pc
    case Op::WriteVal:
      return shiftConstOperand(In.A, ConstD);
    case Op::LoopEnter:
    case Op::IterBegin:
    case Op::ForIter:
    case Op::LoopExit:
    case Op::ForExit:
      ShiftAux(LoopD);
      return true;
    case Op::ForPrep:
      ShiftAux(LoopD);
      return shiftConstOperand(In.A, ConstD) &&
             shiftConstOperand(In.B, ConstD);
    case Op::Call:
      ShiftAux(SiteD);
      return true;
    case Op::ArrayLit: // B/C are a raw register base and count
    case Op::Jmp:
    case Op::PopCtrl:
    case Op::IterEnd:
    case Op::ForTest:
    case Op::ForEnd:
    case Op::Ret:
    case Op::WriteNl:
      return true;
    }
    return false;
  }

  /// Splices old routine \p I into the new program: instructions copied
  /// with side-table indices rebased, side-table rows copied with their AST
  /// pointers remapped through the edit's old->new map and their recorded
  /// locations refreshed from the new nodes. Returns false when the map
  /// does not cover a referenced node — the caller falls back to a full
  /// compile; a false return may leave partially appended rows behind.
  bool replayRoutine(size_t I) {
    const CompiledProgram &O = *Reuse->Old;
    const AstMap &M = *Reuse->Map;
    const CompiledRoutine &OCR = O.Routines[I];
    const RoutineSegment &OS = O.Segments[I];
    if (M.routine(OCR.Routine) != RoutineList[I])
      return false;

    RoutineSegment Seg;
    Seg.ConstStart = static_cast<uint32_t>(Out->Consts.size());
    Seg.SiteStart = static_cast<uint32_t>(Out->Sites.size());
    Seg.ArgStart = static_cast<uint32_t>(Out->ArgPool.size());
    Seg.LoopStart = static_cast<uint32_t>(Out->Loops.size());
    Seg.DebugStart = static_cast<uint32_t>(Out->Debug.size());
    Seg.ConstCount = OS.ConstCount;
    Seg.SiteCount = OS.SiteCount;
    Seg.ArgCount = OS.ArgCount;
    Seg.LoopCount = OS.LoopCount;
    Seg.DebugCount = OS.DebugCount;
    const int64_t ConstD = static_cast<int64_t>(Seg.ConstStart) - OS.ConstStart;
    const int64_t SiteD = static_cast<int64_t>(Seg.SiteStart) - OS.SiteStart;
    const int64_t ArgD = static_cast<int64_t>(Seg.ArgStart) - OS.ArgStart;
    const int64_t LoopD = static_cast<int64_t>(Seg.LoopStart) - OS.LoopStart;
    const int64_t DbgD = static_cast<int64_t>(Seg.DebugStart) - OS.DebugStart;

    if (static_cast<size_t>(Seg.ConstStart) + OS.ConstCount >
        static_cast<size_t>(MaxRegOrConst) + 1) {
      bail("constant pool overflow");
      return false;
    }
    Out->Consts.insert(Out->Consts.end(), O.Consts.begin() + OS.ConstStart,
                       O.Consts.begin() + OS.ConstStart + OS.ConstCount);

    for (uint32_t S = OS.SiteStart; S != OS.SiteStart + OS.SiteCount; ++S) {
      CallSiteInfo NS = O.Sites[S];
      NS.Callee = M.routine(NS.Callee);
      if (!NS.Callee)
        return false;
      auto It = RoutineIdx.find(NS.Callee);
      if (It == RoutineIdx.end())
        return false;
      NS.RoutineIdx = It->second;
      if (NS.CallStmt) {
        NS.CallStmt = M.stmt(NS.CallStmt);
        if (!NS.CallStmt)
          return false;
        NS.Loc = NS.CallStmt->getLoc();
      }
      if (NS.CallExpr) {
        NS.CallExpr = M.expr(NS.CallExpr);
        if (!NS.CallExpr)
          return false;
        NS.Loc = NS.CallExpr->getLoc();
      }
      NS.ArgStart = static_cast<uint32_t>(NS.ArgStart + ArgD);
      Out->Sites.push_back(std::move(NS));
    }

    for (uint32_t A = OS.ArgStart; A != OS.ArgStart + OS.ArgCount; ++A) {
      ArgDesc AD = O.ArgPool[A];
      if (AD.Param) {
        AD.Param = M.var(AD.Param);
        if (!AD.Param)
          return false;
      }
      Out->ArgPool.push_back(std::move(AD));
    }

    for (uint32_t L = OS.LoopStart; L != OS.LoopStart + OS.LoopCount; ++L) {
      LoopInfo LI = O.Loops[L];
      const Stmt *NS = M.stmt(LI.Stmt);
      if (!NS)
        return false;
      LI.Stmt = NS;
      LI.Loc = NS->getLoc();
      // Sema numbers loop unit names program-globally; an edit elsewhere
      // renumbers this routine's units, so re-intern from the new node.
      switch (LI.K) {
      case LoopInfo::Kind::While: {
        const auto *W = dyn_cast<WhileStmt>(NS);
        if (!W)
          return false;
        LI.UnitName = support::Symbol(W->getUnitName());
        break;
      }
      case LoopInfo::Kind::Repeat: {
        const auto *R = dyn_cast<RepeatStmt>(NS);
        if (!R)
          return false;
        LI.UnitName = support::Symbol(R->getUnitName());
        break;
      }
      case LoopInfo::Kind::For: {
        const auto *F = dyn_cast<ForStmt>(NS);
        if (!F)
          return false;
        LI.UnitName = support::Symbol(F->getUnitName());
        break;
      }
      }
      Out->Loops.push_back(std::move(LI));
    }

    for (uint32_t D = OS.DebugStart; D != OS.DebugStart + OS.DebugCount; ++D) {
      DebugInfo DI = O.Debug[D];
      DebugSrc Src = O.DebugSources[D];
      if (Src.S) {
        Src.S = M.stmt(Src.S);
        if (!Src.S)
          return false;
        DI.Loc = Src.S->getLoc();
      }
      if (Src.E) {
        Src.E = M.expr(Src.E);
        if (!Src.E)
          return false;
        DI.Loc = Src.E->getLoc();
      }
      Out->Debug.push_back(std::move(DI));
      Out->DebugSources.push_back(Src);
    }

    CompiledRoutine CR;
    CR.Routine = RoutineList[I];
    CR.NumRegs = OCR.NumRegs;
    CR.Code = OCR.Code;
    for (Instr &In : CR.Code)
      if (!relinkInstr(In, ConstD, SiteD, LoopD, DbgD))
        return false;
    Out->Routines.push_back(std::move(CR));
    Out->Segments.push_back(Seg);
    return true;
  }
};

} // namespace

std::shared_ptr<const CompiledProgram>
bytecode::compile(const Program &P, bool Checked, std::string *WhyNot) {
  return Compiler(P, Checked).run(WhyNot);
}

std::shared_ptr<const CompiledProgram>
bytecode::compileWithReuse(const Program &P, bool Checked,
                           const CodeReusePlan &Reuse, CodeRebuildStats *Stats,
                           std::string *WhyNot) {
  Compiler C(P, Checked, &Reuse);
  auto CP = C.run(WhyNot);
  if (!CP && C.replayFailed()) {
    // The plan did not line up mid-routine; restart without it. The full
    // compiler sees exactly what a cold compile would.
    Compiler Full(P, Checked);
    CP = Full.run(WhyNot);
    if (Stats) {
      Stats->ReplayFellBack = true;
      Stats->Replayed = 0;
      Stats->Recompiled = CP ? static_cast<unsigned>(CP->Routines.size()) : 0;
    }
    return CP;
  }
  if (Stats) {
    Stats->ReplayFellBack = C.replayFailed();
    Stats->Replayed = C.replayedCount();
    Stats->Recompiled =
        CP ? static_cast<unsigned>(CP->Routines.size()) - C.replayedCount()
           : 0;
  }
  return CP;
}
