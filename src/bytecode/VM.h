//===- VM.h - Bytecode dispatch loop ----------------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register VM executing bytecode::CompiledProgram over the shared
/// interp::ExecState substrate. Internal to the interpreter — the public
/// surface is InterpOptions::Tier.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_BYTECODE_VM_H
#define GADT_BYTECODE_VM_H

#include "bytecode/Bytecode.h"
#include "interp/ExecState.h"

namespace gadt {
namespace bytecode {

/// Reusable VM stacks (register file, frame stack, activation pool). Owned
/// by the Interpreter and carried across runs so repeated executions reuse
/// warmed allocations, mirroring the tree walker's pooled cells.
struct VMState;

VMState *createVMState();
void destroyVMState(VMState *);

/// Executes the whole program. \p S must be freshly reset by the caller's
/// entry point *except* for Arena/FreeList pool state; this mirrors
/// the tree walker's run() and produces an identical event stream.
interp::ExecResult run(interp::ExecState &S, const CompiledProgram &CP,
                       VMState &VS);

} // namespace bytecode
} // namespace gadt

#endif // GADT_BYTECODE_VM_H
