//===- SDG.h - System dependence graph (Horwitz-Reps-Binkley) ---*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The system dependence graph of Horwitz, Reps and Binkley ("Interprocedural
/// Slicing using Dependence Graphs", TOPLAS 1990) — the interprocedural
/// slicing machinery the paper builds on (it cites [Horwitz, et al-88]).
///
/// Per routine: an entry vertex, formal-in/out vertices for parameters and
/// for the globals in GREF/GMOD (globals are modeled as additional
/// parameters, exactly the paper's globals-to-parameters view), statement
/// and predicate vertices with control- and flow-dependence edges. Per call
/// site: actual-in/out vertices linked to the callee's formals, plus
/// *summary edges* (actual-in -> actual-out) computed with the standard
/// worklist algorithm, which make the two-phase slicer context-sensitive.
///
/// Storage is an arena/CSR layout: every vertex is a dense `uint32_t` id
/// into one flat node array, each routine owning a contiguous id range
/// (per-routine bases are assigned up front in call-graph preorder, so ids
/// are deterministic no matter how many threads built the per-routine
/// PDGs), and the in/out adjacency lives in kind-tagged compressed arrays
/// produced by a finalize pass that preserves per-vertex insertion order.
/// Per-routine PDG construction (CFG, control dependence, reaching defs,
/// intra-routine edges) is embarrassingly parallel; call linkage and the
/// summary-edge fixpoint then run serially over the merged arena, so a
/// parallel build is bit-for-bit identical to a serial one.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_ANALYSIS_SDG_H
#define GADT_ANALYSIS_SDG_H

#include "analysis/CallGraph.h"
#include "analysis/SideEffects.h"
#include "pascal/AST.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace gadt {

namespace pascal {
class AstMap;
} // namespace pascal

namespace analysis {

class SDG;
struct SDGCallRecord;
namespace detail {
struct SDGBuilder;
}

/// Dense SDG vertex id: an index into SDG::nodes().
using SDGNodeId = uint32_t;
/// Sentinel for "no such vertex".
inline constexpr SDGNodeId SDGNoNode = 0xFFFFFFFFu;

/// Dependence edge kinds.
enum class SDGEdgeKind : uint8_t {
  Control,  ///< control dependence (or call-vertex membership for actuals)
  Flow,     ///< data (flow) dependence
  Call,     ///< call vertex -> callee entry
  ParamIn,  ///< actual-in -> formal-in
  ParamOut, ///< formal-out -> actual-out
  Summary,  ///< actual-in -> actual-out (transitive callee dependence)
};

/// One adjacency entry: the far endpoint plus the edge kind.
struct SDGEdge {
  SDGNodeId N;
  SDGEdgeKind K;
};

/// A contiguous, non-owning run of adjacency entries (one vertex's ins or
/// outs inside the CSR arrays).
class SDGEdgeList {
public:
  SDGEdgeList(const SDGEdge *B, const SDGEdge *E) : Begin(B), End_(E) {}
  const SDGEdge *begin() const { return Begin; }
  const SDGEdge *end() const { return End_; }
  size_t size() const { return static_cast<size_t>(End_ - Begin); }
  bool empty() const { return Begin == End_; }
  const SDGEdge &operator[](size_t I) const { return Begin[I]; }

private:
  const SDGEdge *Begin, *End_;
};

/// One SDG vertex — a plain value in the SDG's flat node array.
class SDGNode {
public:
  enum class Kind : uint8_t {
    Entry,
    FormalIn,
    FormalOut,
    Stmt,      ///< atomic statement (also serves as the call vertex)
    Predicate,
    ActualIn,
    ActualOut,
  };

  Kind getKind() const { return K; }
  SDGNodeId getId() const { return Id; }
  const pascal::RoutineDecl *getRoutine() const { return Routine; }
  /// The source statement this vertex belongs to: the statement itself for
  /// Stmt/Predicate, the call-site statement for actuals, null for entry
  /// and formal vertices.
  const pascal::Stmt *getStmt() const { return S; }
  /// Formal/actual variable (null for result vertices and non-var nodes).
  const pascal::VarDecl *getVar() const { return Var; }
  /// Parameter position for param-actuals/formals; -1 for globals/result.
  int getArgIndex() const { return ArgIndex; }
  bool isResult() const { return Result; }
  const SDGCallRecord *getCall() const { return Call; }

  /// Human-readable label for dumps and tests.
  std::string label() const;

private:
  friend class SDG;
  friend struct detail::SDGBuilder;
  SDGNode(Kind K, SDGNodeId Id) : K(K), Id(Id) {}

  Kind K;
  SDGNodeId Id;
  const pascal::RoutineDecl *Routine = nullptr;
  const pascal::Stmt *S = nullptr;
  const pascal::VarDecl *Var = nullptr;
  int ArgIndex = -1;
  bool Result = false;
  const SDGCallRecord *Call = nullptr;
};

/// Book-keeping for one call site's actual vertices. All formal/actual
/// correspondences are precomputed index tables, so the summary-edge
/// worklist and the slicer resolve them in O(1).
struct SDGCallRecord {
  CallSite Site;
  SDGNodeId CallVertex = SDGNoNode; // the Stmt/Predicate vertex of the site
  std::vector<SDGNodeId> ActualIns;
  std::vector<SDGNodeId> ActualOuts;

  /// Actual-in/out per parameter position (SDGNoNode when absent).
  std::vector<SDGNodeId> InByArg;
  std::vector<SDGNodeId> OutByArg;
  /// Actual-in/out per global variable modeled as a parameter.
  std::unordered_map<const pascal::VarDecl *, SDGNodeId> InByGlobal;
  std::unordered_map<const pascal::VarDecl *, SDGNodeId> OutByGlobal;
  /// Actual-out of the function result (SDGNoNode for procedures).
  SDGNodeId ResultOut = SDGNoNode;
  /// Callee formal ordinal -> actual id, filled during call linkage; the
  /// summary fixpoint indexes these on every worklist pop.
  std::vector<SDGNodeId> AIByFormalIn;
  std::vector<SDGNodeId> AOByFormalOut;

  SDGNodeId actualInForArg(int Index) const {
    return Index >= 0 && static_cast<size_t>(Index) < InByArg.size()
               ? InByArg[static_cast<size_t>(Index)]
               : SDGNoNode;
  }
  SDGNodeId actualInForGlobal(const pascal::VarDecl *G) const {
    auto It = InByGlobal.find(G);
    return It == InByGlobal.end() ? SDGNoNode : It->second;
  }
  SDGNodeId actualOutForArg(int Index) const {
    return Index >= 0 && static_cast<size_t>(Index) < OutByArg.size()
               ? OutByArg[static_cast<size_t>(Index)]
               : SDGNoNode;
  }
  SDGNodeId actualOutForGlobal(const pascal::VarDecl *G) const {
    auto It = OutByGlobal.find(G);
    return It == OutByGlobal.end() ? SDGNoNode : It->second;
  }
  SDGNodeId actualOutForResult() const { return ResultOut; }
};

namespace detail {

/// One directed edge during construction, before the CSR finalize.
struct PendingEdge {
  SDGNodeId From, To;
  SDGEdgeKind K;
};

/// The routine-local PDG one worker produces: nodes and edges under local
/// ids (0-based within the routine), merged into the global arena with a
/// per-routine base offset. Everything in here is routine-local state, so
/// workers never touch shared data. An SDG built with KeepReplayData keeps
/// a pre-merge snapshot of these per routine — the unit the incremental
/// rebuild replays (pointer-remapped onto the new AST) for clean routines.
struct RoutinePdg {
  const pascal::RoutineDecl *R = nullptr;
  std::vector<SDGNode> Nodes;       ///< local ids = index
  std::vector<PendingEdge> Edges;   ///< local ids, chronological, deduped
  std::vector<SDGCallRecord> Calls; ///< all vertex ids local
  std::vector<std::pair<const pascal::Stmt *, uint32_t>> StmtNodes;
  uint32_t EntryLocal = SDGNoNode;
};

} // namespace detail

/// A summary pair (formal-in ordinal, formal-out ordinal) of one routine:
/// "this formal-in reaches that formal-out along a realizable same-level
/// path". The per-routine pair sets are the portable form of the summary
/// fixpoint — call-site summary edges are materialized from them in call
/// record order, and an incremental rebuild replays them for routines whose
/// fixpoint support didn't change.
using SummaryPairList = std::vector<std::pair<uint32_t, uint32_t>>;

/// Instructions for rebuilding an SDG after an edit, reusing per-routine
/// artifacts of the previous build (which must have been constructed with
/// KeepReplayData). Index I everywhere refers to the I-th routine of the
/// *new* program's call-graph preorder; the planner guarantees the old
/// program has the same routine list, so indices align.
struct SDGReusePlan {
  /// The previous build to replay from.
  const SDG *Old = nullptr;
  /// Old-AST -> new-AST node correspondence for all clean routines.
  const pascal::AstMap *Map = nullptr;
  /// Replay[I] != 0: copy routine I's PDG from the old build (pointers
  /// remapped through Map) instead of rebuilding it.
  std::vector<char> Replay;
  /// SummaryAffected[I] != 0: routine I's summary pairs must be recomputed
  /// (the routine is dirty or transitively calls a dirty routine... more
  /// precisely: dirty or a transitive *caller* of a dirty routine, the
  /// upward closure). Unaffected routines replay their cached pairs. Must
  /// be closed under "callers of": the partial fixpoint only seeds
  /// affected routines' formal-outs.
  std::vector<char> SummaryAffected;
};

/// Counters an incremental build reports back to the transaction.
struct SDGRebuildStats {
  unsigned PdgBuilt = 0;        ///< routines whose PDG was rebuilt
  unsigned PdgReplayed = 0;     ///< routines replayed from the old build
  unsigned SummaryRecomputed = 0; ///< routines in the partial fixpoint
  bool ReplayFellBack = false;  ///< a planned replay failed verification
};

/// Construction options.
struct SDGBuildOptions {
  /// Worker threads for the per-routine PDG phase: 1 builds serially on
  /// the calling thread (the default), 0 uses one thread per hardware
  /// thread. Node ids, edges and all renderings are identical for every
  /// value — linkage and summary edges always run serially.
  unsigned Threads = 1;
  /// Keep the pre-merge per-routine PDG snapshots and the per-routine
  /// summary pair sets, so a later build can reuse them via SDGReusePlan.
  bool KeepReplayData = false;
  /// Reuse plan from a previous build (null: build everything cold).
  const SDGReusePlan *Reuse = nullptr;
  /// When non-null, filled with what the build actually did.
  SDGRebuildStats *Stats = nullptr;
  /// Pre-built whole-program analyses over the same program, adopted
  /// instead of recomputing them (the transaction layer already needs
  /// both for its dirty rules, so rebuilding here would double the cost
  /// of every commit). Null: the constructor builds its own.
  std::shared_ptr<const CallGraph> SharedCG;
  std::shared_ptr<const SideEffectAnalysis> SharedSEA;
};

/// The whole-program dependence graph.
class SDG {
public:
  explicit SDG(const pascal::Program &P, SDGBuildOptions Opts = {});
  ~SDG();

  SDG(const SDG &) = delete;
  SDG &operator=(const SDG &) = delete;

  const std::vector<SDGNode> &nodes() const { return NodesV; }
  const SDGNode &node(SDGNodeId Id) const { return NodesV[Id]; }
  const std::vector<SDGCallRecord> &calls() const { return CallsV; }

  /// Outgoing/incoming adjacency of \p Id (CSR slices; insertion order).
  SDGEdgeList outs(SDGNodeId Id) const {
    return {OutE.data() + OutOff[Id], OutE.data() + OutOff[Id + 1]};
  }
  SDGEdgeList ins(SDGNodeId Id) const {
    return {InE.data() + InOff[Id], InE.data() + InOff[Id + 1]};
  }
  /// Membership test over the CSR out-slice of \p From.
  bool hasEdge(SDGNodeId From, SDGNodeId To, SDGEdgeKind K) const;

  SDGNodeId entryOf(const pascal::RoutineDecl *R) const;
  /// The vertex of the atomic part of \p S; SDGNoNode for compound/labeled.
  SDGNodeId stmtNode(const pascal::Stmt *S) const;
  /// Formal-out vertex of variable \p Name (parameter or global) of \p R.
  SDGNodeId formalOut(const pascal::RoutineDecl *R,
                      const std::string &Name) const;
  /// Formal-out vertex of the function result of \p R.
  SDGNodeId formalOutResult(const pascal::RoutineDecl *R) const;
  /// Formal-in vertex of variable \p Name of \p R.
  SDGNodeId formalIn(const pascal::RoutineDecl *R,
                     const std::string &Name) const;

  const CallGraph &callGraph() const { return *CG; }
  const SideEffectAnalysis &sideEffects() const { return *SEA; }

  unsigned numEdges() const { return NumEdges; }
  unsigned numSummaryEdges() const { return NumSummary; }

  /// Number of routines == number of per-routine id ranges (call-graph
  /// preorder, main first).
  size_t numRoutines() const { return Ranges.size(); }
  /// The contiguous [begin, end) id range of the I-th routine's vertices.
  std::pair<SDGNodeId, SDGNodeId> routineRange(size_t I) const {
    return {Ranges[I].Begin, Ranges[I].End};
  }
  /// Whether this build retained replay data (KeepReplayData was set).
  bool hasReplayData() const { return !Pdgs.empty(); }
  /// Per-routine summary pair sets, sorted; empty unless KeepReplayData.
  const std::vector<SummaryPairList> &summaryPairs() const {
    return SummaryPairsV;
  }

  /// Renders all vertices and edges, for debugging.
  std::string str() const;

  /// Renders the graph in Graphviz DOT syntax: vertices clustered per
  /// routine, edge styles per dependence kind (control solid, flow dashed,
  /// interprocedural bold, summary dotted).
  std::string dot() const;

private:
  friend struct detail::SDGBuilder;

  /// The contiguous id range a routine's vertices occupy.
  struct RoutineRange {
    SDGNodeId Begin = 0, End = 0;
  };

  std::shared_ptr<const CallGraph> CG;
  std::shared_ptr<const SideEffectAnalysis> SEA;
  std::vector<SDGNode> NodesV;
  std::vector<SDGCallRecord> CallsV;
  /// Ranges parallel to CG->routines(), plus the routine -> index map.
  std::vector<RoutineRange> Ranges;
  std::unordered_map<const pascal::RoutineDecl *, uint32_t> RoutineIdx;
  std::unordered_map<const pascal::RoutineDecl *, SDGNodeId> Entries;
  std::unordered_map<const pascal::Stmt *, SDGNodeId> StmtMap;
  /// CSR adjacency: per-vertex offset arrays (size nodes+1) into the flat
  /// edge arrays, built by a stable counting-sort finalize pass.
  std::vector<uint32_t> OutOff, InOff;
  std::vector<SDGEdge> OutE, InE;
  unsigned NumEdges = 0;
  unsigned NumSummary = 0;
  /// Replay data (KeepReplayData builds only): pre-merge per-routine PDG
  /// snapshots and the per-routine summary pair sets.
  std::vector<detail::RoutinePdg> Pdgs;
  std::vector<SummaryPairList> SummaryPairsV;
};

} // namespace analysis
} // namespace gadt

#endif // GADT_ANALYSIS_SDG_H
