//===- SDG.h - System dependence graph (Horwitz-Reps-Binkley) ---*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The system dependence graph of Horwitz, Reps and Binkley ("Interprocedural
/// Slicing using Dependence Graphs", TOPLAS 1990) — the interprocedural
/// slicing machinery the paper builds on (it cites [Horwitz, et al-88]).
///
/// Per routine: an entry vertex, formal-in/out vertices for parameters and
/// for the globals in GREF/GMOD (globals are modeled as additional
/// parameters, exactly the paper's globals-to-parameters view), statement
/// and predicate vertices with control- and flow-dependence edges. Per call
/// site: actual-in/out vertices linked to the callee's formals, plus
/// *summary edges* (actual-in -> actual-out) computed with the standard
/// worklist algorithm, which make the two-phase slicer context-sensitive.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_ANALYSIS_SDG_H
#define GADT_ANALYSIS_SDG_H

#include "analysis/CFG.h"
#include "analysis/CallGraph.h"
#include "analysis/ControlDep.h"
#include "analysis/Dataflow.h"
#include "analysis/SideEffects.h"
#include "pascal/AST.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gadt {
namespace analysis {

class SDG;
struct SDGCallRecord;

/// Dependence edge kinds.
enum class SDGEdgeKind : uint8_t {
  Control,  ///< control dependence (or call-vertex membership for actuals)
  Flow,     ///< data (flow) dependence
  Call,     ///< call vertex -> callee entry
  ParamIn,  ///< actual-in -> formal-in
  ParamOut, ///< formal-out -> actual-out
  Summary,  ///< actual-in -> actual-out (transitive callee dependence)
};

/// One SDG vertex.
class SDGNode {
public:
  enum class Kind : uint8_t {
    Entry,
    FormalIn,
    FormalOut,
    Stmt,      ///< atomic statement (also serves as the call vertex)
    Predicate,
    ActualIn,
    ActualOut,
  };

  struct Edge {
    SDGNode *N;
    SDGEdgeKind K;
  };

  Kind getKind() const { return K; }
  unsigned getId() const { return Id; }
  const pascal::RoutineDecl *getRoutine() const { return Routine; }
  /// The source statement this vertex belongs to: the statement itself for
  /// Stmt/Predicate, the call-site statement for actuals, null for entry
  /// and formal vertices.
  const pascal::Stmt *getStmt() const { return S; }
  /// Formal/actual variable (null for result vertices and non-var nodes).
  const pascal::VarDecl *getVar() const { return Var; }
  /// Parameter position for param-actuals/formals; -1 for globals/result.
  int getArgIndex() const { return ArgIndex; }
  bool isResult() const { return Result; }
  const SDGCallRecord *getCall() const { return Call; }

  const std::vector<Edge> &outs() const { return Out; }
  const std::vector<Edge> &ins() const { return In; }

  /// Human-readable label for dumps and tests.
  std::string label() const;

private:
  friend class SDG;
  SDGNode(Kind K, unsigned Id) : K(K), Id(Id) {}

  Kind K;
  unsigned Id;
  const pascal::RoutineDecl *Routine = nullptr;
  const pascal::Stmt *S = nullptr;
  const pascal::VarDecl *Var = nullptr;
  int ArgIndex = -1;
  bool Result = false;
  const SDGCallRecord *Call = nullptr;
  std::vector<Edge> Out;
  std::vector<Edge> In;
};

/// Book-keeping for one call site's actual vertices.
struct SDGCallRecord {
  CallSite Site;
  SDGNode *CallVertex = nullptr; // the Stmt/Predicate vertex of the site
  std::vector<SDGNode *> ActualIns;
  std::vector<SDGNode *> ActualOuts;

  SDGNode *actualInForArg(int Index) const;
  SDGNode *actualInForGlobal(const pascal::VarDecl *G) const;
  SDGNode *actualOutForArg(int Index) const;
  SDGNode *actualOutForGlobal(const pascal::VarDecl *G) const;
  SDGNode *actualOutForResult() const;
};

/// The whole-program dependence graph.
class SDG {
public:
  explicit SDG(const pascal::Program &P);
  ~SDG();

  SDG(const SDG &) = delete;
  SDG &operator=(const SDG &) = delete;

  const std::vector<std::unique_ptr<SDGNode>> &nodes() const { return Nodes; }
  const std::vector<std::unique_ptr<SDGCallRecord>> &calls() const {
    return Calls;
  }

  SDGNode *entryOf(const pascal::RoutineDecl *R) const;
  /// The vertex of the atomic part of \p S; null for compound/labeled.
  SDGNode *stmtNode(const pascal::Stmt *S) const;
  /// Formal-out vertex of variable \p Name (parameter or global) of \p R.
  SDGNode *formalOut(const pascal::RoutineDecl *R,
                     const std::string &Name) const;
  /// Formal-out vertex of the function result of \p R.
  SDGNode *formalOutResult(const pascal::RoutineDecl *R) const;
  /// Formal-in vertex of variable \p Name of \p R.
  SDGNode *formalIn(const pascal::RoutineDecl *R,
                    const std::string &Name) const;

  const CallGraph &callGraph() const { return *CG; }
  const SideEffectAnalysis &sideEffects() const { return *SEA; }

  unsigned numEdges() const { return NumEdges; }
  unsigned numSummaryEdges() const { return NumSummary; }

  /// Renders all vertices and edges, for debugging.
  std::string str() const;

  /// Renders the graph in Graphviz DOT syntax: vertices clustered per
  /// routine, edge styles per dependence kind (control solid, flow dashed,
  /// interprocedural bold, summary dotted).
  std::string dot() const;

private:
  SDGNode *newNode(SDGNode::Kind K, const pascal::RoutineDecl *R);
  void addEdge(SDGNode *From, SDGNode *To, SDGEdgeKind K);
  bool hasEdge(const SDGNode *From, const SDGNode *To, SDGEdgeKind K) const;
  void buildRoutine(const pascal::RoutineDecl *R);
  void buildCallLinkage();
  void computeSummaryEdges();

  /// Vertices that *define* variable \p V at CFG node \p D (the statement
  /// vertex for direct defs, actual-out vertices for call-mediated defs).
  std::vector<SDGNode *> defVerticesAt(const CFGNode *D,
                                       const pascal::VarDecl *V) const;

  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<SideEffectAnalysis> SEA;
  std::vector<std::unique_ptr<SDGNode>> Nodes;
  std::vector<std::unique_ptr<SDGCallRecord>> Calls;
  std::map<const pascal::RoutineDecl *, std::unique_ptr<CFG>> CFGs;
  std::map<const pascal::RoutineDecl *, SDGNode *> Entries;
  std::map<const pascal::Stmt *, SDGNode *> StmtNodes;
  std::map<const CFGNode *, SDGNode *> CfgToSdg;
  unsigned NumEdges = 0;
  unsigned NumSummary = 0;
};

} // namespace analysis
} // namespace gadt

#endif // GADT_ANALYSIS_SDG_H
