//===- CFG.h - Per-routine control-flow graphs ------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graphs over the Pascal subset, the substrate for reaching
/// definitions and control-dependence computation. One node per atomic
/// statement or branch predicate, plus Entry/Exit and formal-in/out
/// boundary nodes that model parameter and global-variable flow across the
/// routine interface (these become the formal vertices of the system
/// dependence graph).
///
//===----------------------------------------------------------------------===//

#ifndef GADT_ANALYSIS_CFG_H
#define GADT_ANALYSIS_CFG_H

#include "analysis/DefUse.h"
#include "analysis/SideEffects.h"
#include "pascal/AST.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gadt {
namespace analysis {

/// One CFG vertex.
class CFGNode {
public:
  enum class Kind : uint8_t {
    Entry,
    Exit,
    FormalIn,  ///< Defines one parameter or referenced global at entry.
    FormalOut, ///< Uses one reference parameter / modified global / result
               ///< at exit.
    Statement, ///< An atomic statement.
    Predicate, ///< The condition of an if/while/repeat or a for header.
  };

  Kind getKind() const { return K; }
  unsigned getId() const { return Id; }
  const pascal::Stmt *getStmt() const { return S; }
  /// The variable of a FormalIn/FormalOut node (null for the function
  /// result formal-out, see isResultFormal).
  const pascal::VarDecl *getFormalVar() const { return FormalVar; }
  bool isResultFormal() const {
    return K == Kind::FormalOut && ResultFormal;
  }

  const std::vector<CFGNode *> &succs() const { return Succs; }
  const std::vector<CFGNode *> &preds() const { return Preds; }

  /// Direct variable accesses + calls of this node (empty for Entry/Exit).
  const StmtAccess &access() const { return Access; }

  /// Human-readable label for dumps and tests.
  std::string label() const;

private:
  friend class CFG;
  CFGNode(Kind K, unsigned Id) : K(K), Id(Id) {}

  Kind K;
  unsigned Id;
  const pascal::Stmt *S = nullptr;
  const pascal::VarDecl *FormalVar = nullptr;
  bool ResultFormal = false;
  std::vector<CFGNode *> Succs;
  std::vector<CFGNode *> Preds;
  StmtAccess Access;
};

/// The control-flow graph of one routine.
class CFG {
public:
  /// Builds the CFG of \p R. \p Effects supplies callee summaries used to
  /// attribute call-mediated defs/uses, and \p R's own GREF/GMOD determine
  /// the formal-in/out boundary nodes. For the root (program) routine every
  /// global becomes a formal-out, so slicing criteria "variable v at end of
  /// program" have a vertex to anchor to.
  CFG(const pascal::RoutineDecl *R, const SideEffectAnalysis &Effects);

  const pascal::RoutineDecl *routine() const { return R; }
  CFGNode *entry() const { return Entry; }
  CFGNode *exit() const { return Exit; }
  const std::vector<std::unique_ptr<CFGNode>> &nodes() const { return Nodes; }

  const std::vector<CFGNode *> &formalIns() const { return FormalIns; }
  const std::vector<CFGNode *> &formalOuts() const { return FormalOuts; }

  /// The node created for the atomic part of \p S; null when \p S has none
  /// (compound/labeled).
  CFGNode *nodeFor(const pascal::Stmt *S) const;

  /// The formal-out node for variable \p V (parameter or global); null when
  /// absent.
  CFGNode *formalOutFor(const pascal::VarDecl *V) const;
  /// The formal-out node of the function result; null for procedures.
  CFGNode *resultFormalOut() const;
  /// The formal-in node for variable \p V; null when absent.
  CFGNode *formalInFor(const pascal::VarDecl *V) const;

  /// Renders "id: label -> succ-ids" lines for tests and debugging.
  std::string str() const;

private:
  CFGNode *newNode(CFGNode::Kind K);
  /// Builds the subgraph for \p S; control flows from \p Preds into it.
  /// Returns the dangling exits of the subgraph.
  std::vector<CFGNode *> buildStmt(const pascal::Stmt *S,
                                   std::vector<CFGNode *> Preds);
  void connect(const std::vector<CFGNode *> &From, CFGNode *To);
  void addEdge(CFGNode *From, CFGNode *To);

  const pascal::RoutineDecl *R;
  const SideEffectAnalysis &Effects;
  std::vector<std::unique_ptr<CFGNode>> Nodes;
  CFGNode *Entry = nullptr;
  CFGNode *Exit = nullptr;
  std::vector<CFGNode *> FormalIns;
  std::vector<CFGNode *> FormalOuts;
  std::map<const pascal::Stmt *, CFGNode *> StmtNodes;
  std::map<int, CFGNode *> LabelTargets;
  std::vector<std::pair<CFGNode *, const pascal::GotoStmt *>> PendingGotos;
};

} // namespace analysis
} // namespace gadt

#endif // GADT_ANALYSIS_CFG_H
