//===- CallGraph.cpp - Whole-program call graph ---------------------------===//

#include "analysis/CallGraph.h"

#include "pascal/ASTMatch.h"
#include "support/Casting.h"

#include <algorithm>
#include <set>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::pascal;

const std::vector<ExprPtr> &CallSite::args() const {
  if (CallStmt)
    return CallStmt->getArgs();
  return CallExpr->getArgs();
}

namespace {

void collectCallsInExpr(const RoutineDecl *Caller, const Stmt *AtStmt,
                        const Expr *E, std::vector<CallSite> &Out) {
  if (!E)
    return;
  forEachExprIn(const_cast<Expr *>(E), [&](Expr *Sub) {
    if (auto *CE = dyn_cast<CallExpr>(Sub)) {
      CallSite CS;
      CS.Caller = Caller;
      CS.Callee = CE->getCallee();
      CS.AtStmt = AtStmt;
      CS.CallExpr = CE;
      Out.push_back(CS);
    }
  });
}

} // namespace

std::vector<CallSite>
gadt::analysis::collectCallsInStmt(const RoutineDecl *Caller, const Stmt *S) {
  std::vector<CallSite> Out;
  switch (S->getKind()) {
  case Stmt::Kind::Assign: {
    const auto *AS = cast<AssignStmt>(S);
    collectCallsInExpr(Caller, S, AS->getTarget(), Out);
    collectCallsInExpr(Caller, S, AS->getValue(), Out);
    break;
  }
  case Stmt::Kind::If:
    collectCallsInExpr(Caller, S, cast<IfStmt>(S)->getCond(), Out);
    break;
  case Stmt::Kind::While:
    collectCallsInExpr(Caller, S, cast<WhileStmt>(S)->getCond(), Out);
    break;
  case Stmt::Kind::Repeat:
    collectCallsInExpr(Caller, S, cast<RepeatStmt>(S)->getCond(), Out);
    break;
  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    collectCallsInExpr(Caller, S, FS->getFrom(), Out);
    collectCallsInExpr(Caller, S, FS->getTo(), Out);
    break;
  }
  case Stmt::Kind::ProcCall: {
    const auto *PC = cast<ProcCallStmt>(S);
    CallSite CS;
    CS.Caller = Caller;
    CS.Callee = PC->getCallee();
    CS.AtStmt = S;
    CS.CallStmt = PC;
    Out.push_back(CS);
    for (const ExprPtr &Arg : PC->getArgs())
      collectCallsInExpr(Caller, S, Arg.get(), Out);
    break;
  }
  case Stmt::Kind::Read:
    for (const ExprPtr &T : cast<ReadStmt>(S)->getTargets())
      if (const auto *IE = dyn_cast<IndexExpr>(T.get()))
        collectCallsInExpr(Caller, S, IE->getIndex(), Out);
    break;
  case Stmt::Kind::Write:
    for (const ExprPtr &A : cast<WriteStmt>(S)->getArgs())
      collectCallsInExpr(Caller, S, A.get(), Out);
    break;
  case Stmt::Kind::Compound:
  case Stmt::Kind::Goto:
  case Stmt::Kind::Labeled:
  case Stmt::Kind::Empty:
    break;
  }
  return Out;
}

CallGraph::CallGraph(const Program &P) {
  forEachRoutine(P.getMain(), [this](RoutineDecl *R) {
    Routines.push_back(R);
    std::vector<CallSite> &Sites = SitesByCaller[R];
    if (!R->getBody())
      return;
    forEachStmt(R->getBody(), [&](Stmt *S) {
      std::vector<CallSite> InStmt = collectCallsInStmt(R, S);
      Sites.insert(Sites.end(), InStmt.begin(), InStmt.end());
    });
  });
  for (const RoutineDecl *R : Routines) {
    const auto &RS = SitesByCaller[R];
    Sites.insert(Sites.end(), RS.begin(), RS.end());
  }
}

CallGraph::CallGraph(const Program &P, const CallGraph &Old,
                     const pascal::AstMap &Map,
                     const std::vector<char> &CleanBody) {
  size_t Pos = 0;
  forEachRoutine(P.getMain(), [&](RoutineDecl *R) {
    const size_t I = Pos++;
    Routines.push_back(R);
    std::vector<CallSite> &RS = SitesByCaller[R];
    if (!R->getBody())
      return;
    if (I < CleanBody.size() && CleanBody[I] && I < Old.Routines.size()) {
      // The body is byte-identical to the old routine's and every node is
      // mapped, so the old site list translates index-for-index. The kind
      // checks below are defensive: a mistranslated node demotes the
      // routine to the walk instead of producing a wrong graph.
      const std::vector<CallSite> &OldSites =
          Old.callSitesIn(Old.Routines[I]);
      RS.reserve(OldSites.size());
      bool Ok = true;
      for (const CallSite &CS : OldSites) {
        CallSite NS;
        NS.Caller = R;
        NS.Callee = Map.routine(CS.Callee);
        NS.AtStmt = Map.stmt(CS.AtStmt);
        if (CS.CallStmt) {
          const Stmt *MS = Map.stmt(CS.CallStmt);
          NS.CallStmt = MS ? dyn_cast<ProcCallStmt>(MS) : nullptr;
        }
        if (CS.CallExpr) {
          const Expr *ME = Map.expr(CS.CallExpr);
          NS.CallExpr = ME ? dyn_cast<pascal::CallExpr>(ME) : nullptr;
        }
        if ((CS.Callee && !NS.Callee) || !NS.AtStmt ||
            (CS.CallStmt && !NS.CallStmt) || (CS.CallExpr && !NS.CallExpr)) {
          Ok = false;
          break;
        }
        RS.push_back(NS);
      }
      if (Ok)
        return;
      RS.clear();
    }
    forEachStmt(R->getBody(), [&](Stmt *S) {
      std::vector<CallSite> InStmt = collectCallsInStmt(R, S);
      RS.insert(RS.end(), InStmt.begin(), InStmt.end());
    });
  });
  for (const RoutineDecl *R : Routines) {
    const auto &RS = SitesByCaller[R];
    Sites.insert(Sites.end(), RS.begin(), RS.end());
  }
}

const std::vector<CallSite> &
CallGraph::callSitesIn(const RoutineDecl *R) const {
  auto It = SitesByCaller.find(R);
  return It == SitesByCaller.end() ? Empty : It->second;
}

std::vector<const RoutineDecl *> CallGraph::bottomUpOrder() const {
  std::vector<const RoutineDecl *> Order;
  std::set<const RoutineDecl *> Visited;
  // Iterative postorder DFS over the call graph.
  std::function<void(const RoutineDecl *)> Visit =
      [&](const RoutineDecl *R) {
        if (!Visited.insert(R).second)
          return;
        for (const CallSite &CS : callSitesIn(R))
          if (CS.Callee)
            Visit(CS.Callee);
        Order.push_back(R);
      };
  for (const RoutineDecl *R : Routines)
    Visit(R);
  return Order;
}
