//===- ControlDep.cpp - Postdominators and control dependence -------------===//

#include "analysis/ControlDep.h"

#include <algorithm>

using namespace gadt;
using namespace gadt::analysis;

ControlDependence::ControlDependence(const CFG &G) {
  // Iterative postdominator computation: PostDom(Exit) = {Exit};
  // PostDom(n) = {n} ∪ ⋂ PostDom(succ). Nodes start at "all nodes".
  std::set<const CFGNode *> All;
  for (const auto &N : G.nodes())
    All.insert(N.get());
  for (const auto &N : G.nodes())
    PostDom[N.get()] = N.get() == G.exit()
                           ? std::set<const CFGNode *>{G.exit()}
                           : All;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &NPtr : G.nodes()) {
      const CFGNode *N = NPtr.get();
      if (N == G.exit())
        continue;
      std::set<const CFGNode *> NewSet;
      bool First = true;
      for (const CFGNode *S : N->succs()) {
        if (First) {
          NewSet = PostDom[S];
          First = false;
          continue;
        }
        std::set<const CFGNode *> Inter;
        std::set_intersection(NewSet.begin(), NewSet.end(),
                              PostDom[S].begin(), PostDom[S].end(),
                              std::inserter(Inter, Inter.begin()));
        NewSet = std::move(Inter);
      }
      if (First)
        NewSet.clear(); // no successors: cannot reach exit
      NewSet.insert(N);
      if (NewSet != PostDom[N]) {
        PostDom[N] = std::move(NewSet);
        Changed = true;
      }
    }
  }

  // Ferrante-Ottenstein-Warren: for each edge A->B where B does not
  // postdominate A, every node in PostDom(B) \ PostDom(A) is control
  // dependent on A.
  std::map<const CFGNode *, std::set<const CFGNode *>> CD;
  for (const auto &APtr : G.nodes()) {
    const CFGNode *A = APtr.get();
    if (A->succs().size() < 2)
      continue;
    for (const CFGNode *B : A->succs()) {
      if (PostDom[A].count(B))
        continue; // B postdominates A: taking this edge decides nothing
      for (const CFGNode *X : PostDom[B])
        if (!PostDom[A].count(X))
          CD[X].insert(A);
    }
  }
  for (const auto &NPtr : G.nodes()) {
    const CFGNode *N = NPtr.get();
    auto It = CD.find(N);
    if (It != CD.end())
      Controllers[N].assign(It->second.begin(), It->second.end());
    else if (N != G.entry())
      Controllers[N] = {G.entry()};
  }
}

const std::vector<const CFGNode *> &
ControlDependence::controllersOf(const CFGNode *N) const {
  auto It = Controllers.find(N);
  return It == Controllers.end() ? Empty : It->second;
}

bool ControlDependence::postDominates(const CFGNode *A,
                                      const CFGNode *B) const {
  auto It = PostDom.find(B);
  return It != PostDom.end() && It->second.count(A) != 0;
}
