//===- ControlDep.cpp - Postdominators and control dependence -------------===//

#include "analysis/ControlDep.h"

using namespace gadt;
using namespace gadt::analysis;

ControlDependence::ControlDependence(const CFG &G) {
  const size_t N = G.nodes().size();
  RowWords = (N + 63) / 64;
  const unsigned ExitId = G.exit()->getId();

  // Iterative postdominator computation: PostDom(Exit) = {Exit};
  // PostDom(n) = {n} ∪ ⋂ PostDom(succ). Nodes start at "all nodes", the
  // top of the lattice, so the intersections only ever shrink rows.
  PostDom.assign(N * RowWords, ~uint64_t(0));
  if (N % 64) {
    // Clear the bits beyond N in every row's last word.
    uint64_t Tail = (~uint64_t(0)) >> (64 - N % 64);
    for (size_t Row = 0; Row != N; ++Row)
      PostDom[Row * RowWords + RowWords - 1] = Tail;
  }
  uint64_t *ExitRow = &PostDom[ExitId * RowWords];
  for (size_t W = 0; W != RowWords; ++W)
    ExitRow[W] = 0;
  ExitRow[ExitId / 64] = uint64_t(1) << (ExitId % 64);

  std::vector<uint64_t> Tmp(RowWords);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &NPtr : G.nodes()) {
      const CFGNode *Node = NPtr.get();
      if (Node->getId() == ExitId)
        continue;
      bool First = true;
      for (const CFGNode *S : Node->succs()) {
        const uint64_t *SRow = &PostDom[size_t(S->getId()) * RowWords];
        if (First) {
          for (size_t W = 0; W != RowWords; ++W)
            Tmp[W] = SRow[W];
          First = false;
        } else {
          for (size_t W = 0; W != RowWords; ++W)
            Tmp[W] &= SRow[W];
        }
      }
      if (First)
        for (size_t W = 0; W != RowWords; ++W)
          Tmp[W] = 0; // no successors: cannot reach exit
      unsigned Id = Node->getId();
      Tmp[Id / 64] |= uint64_t(1) << (Id % 64); // reflexive
      uint64_t *Row = &PostDom[size_t(Id) * RowWords];
      for (size_t W = 0; W != RowWords; ++W) {
        if (Row[W] != Tmp[W]) {
          Row[W] = Tmp[W];
          Changed = true;
        }
      }
    }
  }

  // Ferrante-Ottenstein-Warren: for each edge A->B where B does not
  // postdominate A, every node in PostDom(B) \ PostDom(A) is control
  // dependent on A.
  std::vector<uint64_t> CD(N * RowWords, 0); // bit (X, A): X depends on A
  for (const auto &APtr : G.nodes()) {
    const CFGNode *A = APtr.get();
    if (A->succs().size() < 2)
      continue;
    const uint64_t *ARow = &PostDom[size_t(A->getId()) * RowWords];
    for (const CFGNode *B : A->succs()) {
      unsigned BId = B->getId();
      if ((ARow[BId / 64] >> (BId % 64)) & 1)
        continue; // B postdominates A: taking this edge decides nothing
      const uint64_t *BRow = &PostDom[size_t(BId) * RowWords];
      uint64_t ABit = uint64_t(1) << (A->getId() % 64);
      size_t AWord = A->getId() / 64;
      for (size_t W = 0; W != RowWords; ++W) {
        for (uint64_t Bits = BRow[W] & ~ARow[W]; Bits; Bits &= Bits - 1) {
          size_t X = W * 64 + static_cast<size_t>(__builtin_ctzll(Bits));
          CD[X * RowWords + AWord] |= ABit;
        }
      }
    }
  }

  Controllers.resize(N);
  for (const auto &NPtr : G.nodes()) {
    const CFGNode *Node = NPtr.get();
    unsigned Id = Node->getId();
    const uint64_t *Row = &CD[size_t(Id) * RowWords];
    std::vector<const CFGNode *> &Out = Controllers[Id];
    for (size_t W = 0; W != RowWords; ++W)
      for (uint64_t Bits = Row[W]; Bits; Bits &= Bits - 1)
        Out.push_back(
            G.nodes()[W * 64 + static_cast<size_t>(__builtin_ctzll(Bits))]
                .get());
    if (Out.empty() && Node != G.entry())
      Out.push_back(G.entry());
  }
}

const std::vector<const CFGNode *> &
ControlDependence::controllersOf(const CFGNode *N) const {
  size_t Id = N->getId();
  return Id < Controllers.size() ? Controllers[Id] : Empty;
}

bool ControlDependence::postDominates(const CFGNode *A,
                                      const CFGNode *B) const {
  size_t BId = B->getId();
  if (BId * RowWords >= PostDom.size())
    return false;
  unsigned AId = A->getId();
  return (PostDom[BId * RowWords + AId / 64] >> (AId % 64)) & 1;
}
