//===- ControlDep.h - Postdominators and control dependence -----*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Postdominator sets and Ferrante-Ottenstein-Warren control dependence
/// over a routine CFG: node X is control dependent on branch node A when
/// some edge out of A always leads to X while another may avoid it.
///
/// CFG node ids are dense, so postdominator sets live in one flat bit
/// matrix (node-count squared bits) and the fixpoint intersects whole
/// words; controller lists come out in ascending id order, which keeps the
/// dependence-graph build deterministic regardless of allocation order or
/// the thread the routine was analyzed on.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_ANALYSIS_CONTROLDEP_H
#define GADT_ANALYSIS_CONTROLDEP_H

#include "analysis/CFG.h"

#include <cstdint>
#include <vector>

namespace gadt {
namespace analysis {

/// Control-dependence relation for one CFG.
class ControlDependence {
public:
  explicit ControlDependence(const CFG &G);

  /// Branch nodes that \p N is control dependent on, in ascending CFG-id
  /// order. Nodes with no controlling branch depend on the routine entry
  /// (returned as the CFG entry node).
  const std::vector<const CFGNode *> &controllersOf(const CFGNode *N) const;

  /// True when \p A postdominates \p B (reflexive).
  bool postDominates(const CFGNode *A, const CFGNode *B) const;

private:
  /// Words per postdominator row.
  size_t RowWords = 0;
  /// N rows of RowWords words each; bit (B*RowWords*64 + A) set when A
  /// postdominates B.
  std::vector<uint64_t> PostDom;
  /// Controller lists indexed by CFG node id.
  std::vector<std::vector<const CFGNode *>> Controllers;
  std::vector<const CFGNode *> Empty;
};

} // namespace analysis
} // namespace gadt

#endif // GADT_ANALYSIS_CONTROLDEP_H
