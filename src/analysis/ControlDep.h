//===- ControlDep.h - Postdominators and control dependence -----*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Postdominator sets and Ferrante-Ottenstein-Warren control dependence
/// over a routine CFG: node X is control dependent on branch node A when
/// some edge out of A always leads to X while another may avoid it.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_ANALYSIS_CONTROLDEP_H
#define GADT_ANALYSIS_CONTROLDEP_H

#include "analysis/CFG.h"

#include <map>
#include <set>
#include <vector>

namespace gadt {
namespace analysis {

/// Control-dependence relation for one CFG.
class ControlDependence {
public:
  explicit ControlDependence(const CFG &G);

  /// Branch nodes that \p N is control dependent on. Nodes with no
  /// controlling branch depend on the routine entry (returned as the CFG
  /// entry node).
  const std::vector<const CFGNode *> &controllersOf(const CFGNode *N) const;

  /// True when \p A postdominates \p B (reflexive).
  bool postDominates(const CFGNode *A, const CFGNode *B) const;

private:
  std::map<const CFGNode *, std::set<const CFGNode *>> PostDom;
  std::map<const CFGNode *, std::vector<const CFGNode *>> Controllers;
  std::vector<const CFGNode *> Empty;
};

} // namespace analysis
} // namespace gadt

#endif // GADT_ANALYSIS_CONTROLDEP_H
