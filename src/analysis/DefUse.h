//===- DefUse.h - Per-statement variable accesses ---------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Syntactic def/use extraction for the *atomic part* of a statement (the
/// condition of an if, the header of a for, the whole of an assignment...),
/// separating direct variable accesses from call-mediated ones. Shared by
/// side-effect analysis, reaching definitions, and the dependence graphs.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_ANALYSIS_DEFUSE_H
#define GADT_ANALYSIS_DEFUSE_H

#include "analysis/CallGraph.h"
#include "pascal/AST.h"

#include <vector>

namespace gadt {
namespace analysis {

/// Direct accesses of one atomic statement, plus the calls it makes (whose
/// effects depend on the callee and are resolved by interprocedural
/// analysis).
struct StmtAccess {
  /// Variables read directly (including value arguments of calls and array
  /// bases of element writes).
  std::vector<const pascal::VarDecl *> Uses;
  /// Variables written directly (assignment targets, read() targets).
  std::vector<const pascal::VarDecl *> Defs;
  /// Calls made by the statement; var-argument and global effects flow
  /// through these.
  std::vector<CallSite> Calls;

  bool uses(const pascal::VarDecl *V) const;
  bool defs(const pascal::VarDecl *V) const;
};

/// Computes the accesses of the atomic part of \p S within routine \p R.
/// Compound/labeled statements yield empty accesses (their children are
/// separate CFG nodes); goto and empty statements access nothing.
StmtAccess computeStmtAccess(const pascal::RoutineDecl *R,
                             const pascal::Stmt *S);

/// The variable referenced by a var/out argument expression (Sema
/// guarantees var arguments are plain variable references).
const pascal::VarDecl *varArgDecl(const pascal::Expr *Arg);

} // namespace analysis
} // namespace gadt

#endif // GADT_ANALYSIS_DEFUSE_H
