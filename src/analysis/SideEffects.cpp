//===- SideEffects.cpp - Banning-style side-effect analysis ---------------===//

#include "analysis/SideEffects.h"

#include "analysis/DefUse.h"
#include "pascal/ASTMatch.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::pascal;

bool RoutineEffects::refsGlobal(const VarDecl *V) const {
  return std::find(GRef.begin(), GRef.end(), V) != GRef.end();
}

bool RoutineEffects::modsGlobal(const VarDecl *V) const {
  return std::find(GMod.begin(), GMod.end(), V) != GMod.end();
}

namespace {

/// Full access sets (any variable, local or not) per routine during the
/// fixpoint.
struct WorkSets {
  std::unordered_set<const VarDecl *> Refs;
  std::unordered_set<const VarDecl *> Mods;
};

unsigned paramIndexOf(const RoutineDecl *R, const VarDecl *V) {
  const auto &Params = R->getParams();
  for (unsigned I = 0, N = Params.size(); I != N; ++I)
    if (Params[I].get() == V)
      return I;
  return ~0u;
}

/// Orders variables deterministically: by name, then by owner's qualified
/// name (distinct variables never compare equal in practice).
bool varLess(const VarDecl *A, const VarDecl *B) {
  if (A->getName() != B->getName())
    return A->getName() < B->getName();
  std::string AO = A->getOwner() ? A->getOwner()->qualifiedName() : "";
  std::string BO = B->getOwner() ? B->getOwner()->qualifiedName() : "";
  if (AO != BO)
    return AO < BO;
  return A < B;
}

/// Gathers the direct (call-independent) accesses of \p R in one pass over
/// its body. This intentionally mirrors computeStmtAccess's per-statement
/// rules, but hoists the call-argument exclusion set to the routine level
/// (every Expr node occurs exactly once in the AST, so an excluded var
/// argument is excluded wherever the walk meets it) and skips the
/// per-statement access/call-site materialization — on large routines that
/// per-statement bookkeeping dominated the whole analysis.
void collectDirect(const RoutineDecl *R, const std::vector<CallSite> &Calls,
                   WorkSets &W) {
  // Var arguments carry the callee's parameter effects; the fixpoint
  // propagates those, so they never count as direct accesses.
  std::unordered_set<const Expr *> Excluded;
  for (const CallSite &CS : Calls) {
    if (!CS.Callee)
      continue;
    const auto &Params = CS.Callee->getParams();
    const auto &Args = CS.args();
    for (size_t I = 0, N = std::min(Params.size(), Args.size()); I != N; ++I)
      if (Params[I]->isReference())
        Excluded.insert(Args[I].get());
  }
  auto UseExpr = [&](const Expr *E) {
    if (!E)
      return;
    forEachExprIn(const_cast<Expr *>(E), [&](Expr *Sub) {
      if (auto *VR = dyn_cast<VarRefExpr>(Sub))
        if (VR->getDecl() && !Excluded.count(VR))
          W.Refs.insert(VR->getDecl());
    });
  };
  auto DefLValue = [&](const Expr *Target) {
    if (const auto *VR = dyn_cast<VarRefExpr>(Target)) {
      if (VR->getDecl())
        W.Mods.insert(VR->getDecl());
      return;
    }
    const auto *IE = cast<IndexExpr>(Target);
    const auto *Base = cast<VarRefExpr>(IE->getBase());
    if (Base->getDecl()) {
      W.Mods.insert(Base->getDecl());
      W.Refs.insert(Base->getDecl()); // partial update reads the array
    }
    UseExpr(IE->getIndex());
  };
  forEachStmt(const_cast<CompoundStmt *>(R->getBody()), [&](Stmt *S) {
    switch (S->getKind()) {
    case Stmt::Kind::Assign: {
      const auto *AS = cast<AssignStmt>(S);
      DefLValue(AS->getTarget());
      UseExpr(AS->getValue());
      break;
    }
    case Stmt::Kind::If:
      UseExpr(cast<IfStmt>(S)->getCond());
      break;
    case Stmt::Kind::While:
      UseExpr(cast<WhileStmt>(S)->getCond());
      break;
    case Stmt::Kind::Repeat:
      UseExpr(cast<RepeatStmt>(S)->getCond());
      break;
    case Stmt::Kind::For: {
      const auto *FS = cast<ForStmt>(S);
      DefLValue(FS->getLoopVar());
      UseExpr(FS->getFrom());
      UseExpr(FS->getTo());
      break;
    }
    case Stmt::Kind::ProcCall:
      for (const ExprPtr &Arg : cast<ProcCallStmt>(S)->getArgs())
        UseExpr(Arg.get());
      break;
    case Stmt::Kind::Read:
      for (const ExprPtr &T : cast<ReadStmt>(S)->getTargets())
        DefLValue(T.get());
      break;
    case Stmt::Kind::Write:
      for (const ExprPtr &A : cast<WriteStmt>(S)->getArgs())
        UseExpr(A.get());
      break;
    case Stmt::Kind::Compound:
    case Stmt::Kind::Goto:
    case Stmt::Kind::Labeled:
    case Stmt::Kind::Empty:
      break;
    }
  });
}

} // namespace

SideEffectAnalysis::SideEffectAnalysis(const Program &P, const CallGraph &CG)
    : SideEffectAnalysis(P, CG, nullptr, nullptr, nullptr) {}

SideEffectAnalysis::SideEffectAnalysis(const Program &,
                                       const CallGraph &CG,
                                       const SideEffectAnalysis *Old,
                                       const pascal::AstMap *Map,
                                       const std::vector<char> *CleanDirect) {
  // Direct access sets, one routine at a time: translated from the old
  // analysis when the caller vouches the routine's body and binding are
  // unchanged, walked from the body otherwise.
  const std::vector<const RoutineDecl *> &Rs = CG.routines();
  std::map<const RoutineDecl *, WorkSets> Direct;
  std::map<const RoutineDecl *, std::vector<CallSite>> Calls;
  DirectV.resize(Rs.size());
  for (size_t I = 0; I != Rs.size(); ++I) {
    const RoutineDecl *R = Rs[I];
    WorkSets &W = Direct[R];
    Calls[R] = CG.callSitesIn(R);
    if (!R->getBody())
      continue;
    bool Seeded = false;
    if (Old && Map && CleanDirect && I < CleanDirect->size() &&
        (*CleanDirect)[I] && I < Old->DirectV.size()) {
      auto Translate = [&Map](const std::vector<const VarDecl *> &Vs,
                              std::unordered_set<const VarDecl *> &Out) {
        for (const VarDecl *V : Vs) {
          const VarDecl *NV = Map->var(V);
          if (!NV)
            return false;
          Out.insert(NV);
        }
        return true;
      };
      const DirectAccess &OldD = Old->DirectV[I];
      Seeded = Translate(OldD.Refs, W.Refs) && Translate(OldD.Mods, W.Mods);
      if (!Seeded) {
        W.Refs.clear();
        W.Mods.clear();
      }
    }
    if (!Seeded)
      collectDirect(R, Calls[R], W);
    DirectV[I].Refs.assign(W.Refs.begin(), W.Refs.end());
    DirectV[I].Mods.assign(W.Mods.begin(), W.Mods.end());
  }

  // Fixpoint over the call graph. Bottom-up order converges in one pass for
  // non-recursive programs; recursion just needs extra rounds.
  std::map<const RoutineDecl *, WorkSets> Full = Direct;
  std::vector<const RoutineDecl *> Order = CG.bottomUpOrder();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const RoutineDecl *R : Order) {
      WorkSets &W = Full[R];
      size_t Before = W.Refs.size() + W.Mods.size();
      for (const CallSite &CS : Calls[R]) {
        if (!CS.Callee)
          continue;
        const WorkSets &CalleeW = Full[CS.Callee];
        // Effects on variables non-local to the callee propagate as-is
        // (whether they are local to R or still non-local is resolved when
        // the final sets are assembled below).
        for (const VarDecl *V : CalleeW.Refs)
          if (V->getOwner() != CS.Callee)
            W.Refs.insert(V);
        for (const VarDecl *V : CalleeW.Mods)
          if (V->getOwner() != CS.Callee)
            W.Mods.insert(V);
        // Effects funneled through the callee's parameters hit the
        // corresponding argument variables.
        const auto &Params = CS.Callee->getParams();
        const auto &Args = CS.args();
        for (size_t I = 0, N = std::min(Params.size(), Args.size()); I != N;
             ++I) {
          const VarDecl *Param = Params[I].get();
          if (!Param->isReference())
            continue;
          const VarDecl *ArgVar = varArgDecl(Args[I].get());
          if (!ArgVar)
            continue;
          if (CalleeW.Refs.count(Param))
            W.Refs.insert(ArgVar);
          if (CalleeW.Mods.count(Param))
            W.Mods.insert(ArgVar);
        }
      }
      if (W.Refs.size() + W.Mods.size() != Before)
        Changed = true;
    }
  }

  // Split the full sets into the published form.
  for (const RoutineDecl *R : CG.routines()) {
    RoutineEffects &E = Effects[R];
    const WorkSets &W = Full[R];
    for (const VarDecl *V : W.Refs) {
      unsigned ParamIdx = paramIndexOf(R, V);
      if (ParamIdx != ~0u)
        E.RefParams.insert(ParamIdx);
      else if (V->getOwner() != R)
        E.GRef.push_back(V);
    }
    for (const VarDecl *V : W.Mods) {
      unsigned ParamIdx = paramIndexOf(R, V);
      if (ParamIdx != ~0u)
        E.ModParams.insert(ParamIdx);
      else if (V->getOwner() != R)
        E.GMod.push_back(V);
    }
    std::sort(E.GRef.begin(), E.GRef.end(), varLess);
    std::sort(E.GMod.begin(), E.GMod.end(), varLess);
  }
}

const RoutineEffects &
SideEffectAnalysis::effects(const RoutineDecl *R) const {
  auto It = Effects.find(R);
  assert(It != Effects.end() && "routine not analyzed");
  return It->second;
}

bool SideEffectAnalysis::programIsSideEffectFree() const {
  for (const auto &[R, E] : Effects) {
    if (R->isProgram())
      continue; // accesses from the main block are not side effects
    if (!E.GRef.empty() || !E.GMod.empty())
      return false;
  }
  return true;
}
