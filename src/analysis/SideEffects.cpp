//===- SideEffects.cpp - Banning-style side-effect analysis ---------------===//

#include "analysis/SideEffects.h"

#include "analysis/DefUse.h"

#include <algorithm>
#include <cassert>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::pascal;

bool RoutineEffects::refsGlobal(const VarDecl *V) const {
  return std::find(GRef.begin(), GRef.end(), V) != GRef.end();
}

bool RoutineEffects::modsGlobal(const VarDecl *V) const {
  return std::find(GMod.begin(), GMod.end(), V) != GMod.end();
}

namespace {

/// Full access sets (any variable, local or not) per routine during the
/// fixpoint.
struct WorkSets {
  std::set<const VarDecl *> Refs;
  std::set<const VarDecl *> Mods;
};

unsigned paramIndexOf(const RoutineDecl *R, const VarDecl *V) {
  const auto &Params = R->getParams();
  for (unsigned I = 0, N = Params.size(); I != N; ++I)
    if (Params[I].get() == V)
      return I;
  return ~0u;
}

/// Orders variables deterministically: by name, then by owner's qualified
/// name (distinct variables never compare equal in practice).
bool varLess(const VarDecl *A, const VarDecl *B) {
  if (A->getName() != B->getName())
    return A->getName() < B->getName();
  std::string AO = A->getOwner() ? A->getOwner()->qualifiedName() : "";
  std::string BO = B->getOwner() ? B->getOwner()->qualifiedName() : "";
  if (AO != BO)
    return AO < BO;
  return A < B;
}

} // namespace

SideEffectAnalysis::SideEffectAnalysis(const Program &P, const CallGraph &CG) {
  // Gather the direct (call-independent) accesses of every routine once.
  std::map<const RoutineDecl *, WorkSets> Direct;
  std::map<const RoutineDecl *, std::vector<CallSite>> Calls;
  for (const RoutineDecl *R : CG.routines()) {
    WorkSets &W = Direct[R];
    Calls[R] = CG.callSitesIn(R);
    if (!R->getBody())
      continue;
    forEachStmt(const_cast<CompoundStmt *>(R->getBody()), [&](Stmt *S) {
      StmtAccess A = computeStmtAccess(R, S);
      W.Refs.insert(A.Uses.begin(), A.Uses.end());
      W.Mods.insert(A.Defs.begin(), A.Defs.end());
    });
  }

  // Fixpoint over the call graph. Bottom-up order converges in one pass for
  // non-recursive programs; recursion just needs extra rounds.
  std::map<const RoutineDecl *, WorkSets> Full = Direct;
  std::vector<const RoutineDecl *> Order = CG.bottomUpOrder();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const RoutineDecl *R : Order) {
      WorkSets &W = Full[R];
      size_t Before = W.Refs.size() + W.Mods.size();
      for (const CallSite &CS : Calls[R]) {
        if (!CS.Callee)
          continue;
        const WorkSets &CalleeW = Full[CS.Callee];
        // Effects on variables non-local to the callee propagate as-is
        // (whether they are local to R or still non-local is resolved when
        // the final sets are assembled below).
        for (const VarDecl *V : CalleeW.Refs)
          if (V->getOwner() != CS.Callee)
            W.Refs.insert(V);
        for (const VarDecl *V : CalleeW.Mods)
          if (V->getOwner() != CS.Callee)
            W.Mods.insert(V);
        // Effects funneled through the callee's parameters hit the
        // corresponding argument variables.
        const auto &Params = CS.Callee->getParams();
        const auto &Args = CS.args();
        for (size_t I = 0, N = std::min(Params.size(), Args.size()); I != N;
             ++I) {
          const VarDecl *Param = Params[I].get();
          if (!Param->isReference())
            continue;
          const VarDecl *ArgVar = varArgDecl(Args[I].get());
          if (!ArgVar)
            continue;
          if (CalleeW.Refs.count(Param))
            W.Refs.insert(ArgVar);
          if (CalleeW.Mods.count(Param))
            W.Mods.insert(ArgVar);
        }
      }
      if (W.Refs.size() + W.Mods.size() != Before)
        Changed = true;
    }
  }

  // Split the full sets into the published form.
  for (const RoutineDecl *R : CG.routines()) {
    RoutineEffects &E = Effects[R];
    const WorkSets &W = Full[R];
    for (const VarDecl *V : W.Refs) {
      unsigned ParamIdx = paramIndexOf(R, V);
      if (ParamIdx != ~0u)
        E.RefParams.insert(ParamIdx);
      else if (V->getOwner() != R)
        E.GRef.push_back(V);
    }
    for (const VarDecl *V : W.Mods) {
      unsigned ParamIdx = paramIndexOf(R, V);
      if (ParamIdx != ~0u)
        E.ModParams.insert(ParamIdx);
      else if (V->getOwner() != R)
        E.GMod.push_back(V);
    }
    std::sort(E.GRef.begin(), E.GRef.end(), varLess);
    std::sort(E.GMod.begin(), E.GMod.end(), varLess);
  }
}

const RoutineEffects &
SideEffectAnalysis::effects(const RoutineDecl *R) const {
  auto It = Effects.find(R);
  assert(It != Effects.end() && "routine not analyzed");
  return It->second;
}

bool SideEffectAnalysis::programIsSideEffectFree() const {
  for (const auto &[R, E] : Effects) {
    if (R->isProgram())
      continue; // accesses from the main block are not side effects
    if (!E.GRef.empty() || !E.GMod.empty())
      return false;
  }
  return true;
}
