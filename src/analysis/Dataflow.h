//===- Dataflow.h - Reaching definitions ------------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic reaching-definitions dataflow over the CFG, with call-mediated
/// effects resolved through the side-effect analysis. Feeds the flow
/// (data-dependence) edges of the dependence graphs.
///
/// The definition universe — every (variable, defining node) pair — is
/// enumerated once in CFG-id order and the in/out sets are bit rows over
/// it, so the transfer function is a handful of word ops (kill = clear the
/// variable's mask, gen = set the node's bits) and reachingIn answers come
/// back in deterministic enumeration order, independent of pointer values
/// or the thread the routine was analyzed on.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_ANALYSIS_DATAFLOW_H
#define GADT_ANALYSIS_DATAFLOW_H

#include "analysis/CFG.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace gadt {
namespace analysis {

/// Variables possibly written by \p N, including writes performed by
/// callees through var parameters and global side effects.
std::vector<const pascal::VarDecl *>
effectiveDefs(const CFGNode *N, const SideEffectAnalysis &SEA);

/// Variables possibly read by \p N, including reads performed by callees.
std::vector<const pascal::VarDecl *>
effectiveUses(const CFGNode *N, const SideEffectAnalysis &SEA);

/// Reaching definitions for one routine's CFG. A "definition" is a pair
/// (variable, CFG node that may write it).
class ReachingDefs {
public:
  ReachingDefs(const CFG &G, const SideEffectAnalysis &SEA);

  /// Definitions of \p V reaching the *entry* of \p N, in ascending
  /// defining-node id order.
  std::vector<const CFGNode *> reachingIn(const CFGNode *N,
                                          const pascal::VarDecl *V) const;

private:
  /// One entry of the definition universe.
  struct Def {
    const pascal::VarDecl *Var;
    const CFGNode *Node;
  };
  std::vector<Def> Defs;         ///< universe, in CFG-id order
  size_t RowWords = 0;           ///< words per in-set row
  std::vector<uint64_t> In;      ///< node-count rows over the universe
  /// Definition indices per variable, ascending (= ascending node id).
  std::unordered_map<const pascal::VarDecl *, std::vector<uint32_t>> ByVar;
};

} // namespace analysis
} // namespace gadt

#endif // GADT_ANALYSIS_DATAFLOW_H
