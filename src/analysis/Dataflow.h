//===- Dataflow.h - Reaching definitions ------------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic reaching-definitions dataflow over the CFG, with call-mediated
/// effects resolved through the side-effect analysis. Feeds the flow
/// (data-dependence) edges of the dependence graphs.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_ANALYSIS_DATAFLOW_H
#define GADT_ANALYSIS_DATAFLOW_H

#include "analysis/CFG.h"

#include <map>
#include <set>
#include <vector>

namespace gadt {
namespace analysis {

/// Variables possibly written by \p N, including writes performed by
/// callees through var parameters and global side effects.
std::vector<const pascal::VarDecl *>
effectiveDefs(const CFGNode *N, const SideEffectAnalysis &SEA);

/// Variables possibly read by \p N, including reads performed by callees.
std::vector<const pascal::VarDecl *>
effectiveUses(const CFGNode *N, const SideEffectAnalysis &SEA);

/// Reaching definitions for one routine's CFG. A "definition" is a pair
/// (variable, CFG node that may write it).
class ReachingDefs {
public:
  ReachingDefs(const CFG &G, const SideEffectAnalysis &SEA);

  /// Definitions of \p V reaching the *entry* of \p N.
  std::vector<const CFGNode *> reachingIn(const CFGNode *N,
                                          const pascal::VarDecl *V) const;

private:
  using Def = std::pair<const pascal::VarDecl *, const CFGNode *>;
  std::map<const CFGNode *, std::set<Def>> In;
};

} // namespace analysis
} // namespace gadt

#endif // GADT_ANALYSIS_DATAFLOW_H
