//===- SideEffects.h - Banning-style side-effect analysis -------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural side-effect analysis in the spirit of Banning
/// [Banning-78/79], which the paper cites as the definition of "side
/// effects": for every routine, the sets of non-local variables it may
/// reference (GREF) and modify (GMOD), directly or through calls (including
/// effects funneled through var parameters), plus which of its own
/// parameters it may read and write.
///
/// The transformation phase uses GREF/GMOD to convert global accesses into
/// in/out parameters; the system dependence graph uses them to build
/// formal-in/out and actual-in/out vertices for globals.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_ANALYSIS_SIDEEFFECTS_H
#define GADT_ANALYSIS_SIDEEFFECTS_H

#include "analysis/CallGraph.h"
#include "pascal/AST.h"

#include <map>
#include <set>
#include <vector>

namespace gadt {
namespace analysis {

/// Per-routine effect sets. Variable sets are ordered by declaration name
/// (then owner nesting depth) so every consumer iterates deterministically.
struct RoutineEffects {
  /// Non-local variables possibly read before being written (conservative:
  /// any read counts).
  std::vector<const pascal::VarDecl *> GRef;
  /// Non-local variables possibly written.
  std::vector<const pascal::VarDecl *> GMod;
  /// Own parameters possibly read / possibly written (indices into the
  /// routine's parameter list).
  std::set<unsigned> RefParams;
  std::set<unsigned> ModParams;

  bool refsGlobal(const pascal::VarDecl *V) const;
  bool modsGlobal(const pascal::VarDecl *V) const;
};

/// Whole-program side-effect information.
class SideEffectAnalysis {
public:
  SideEffectAnalysis(const pascal::Program &P, const CallGraph &CG);

  const RoutineEffects &effects(const pascal::RoutineDecl *R) const;

  /// True when no routine in the program has global side effects — the
  /// postcondition of the paper's transformation phase.
  bool programIsSideEffectFree() const;

private:
  std::map<const pascal::RoutineDecl *, RoutineEffects> Effects;
};

} // namespace analysis
} // namespace gadt

#endif // GADT_ANALYSIS_SIDEEFFECTS_H
