//===- SideEffects.h - Banning-style side-effect analysis -------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural side-effect analysis in the spirit of Banning
/// [Banning-78/79], which the paper cites as the definition of "side
/// effects": for every routine, the sets of non-local variables it may
/// reference (GREF) and modify (GMOD), directly or through calls (including
/// effects funneled through var parameters), plus which of its own
/// parameters it may read and write.
///
/// The transformation phase uses GREF/GMOD to convert global accesses into
/// in/out parameters; the system dependence graph uses them to build
/// formal-in/out and actual-in/out vertices for globals.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_ANALYSIS_SIDEEFFECTS_H
#define GADT_ANALYSIS_SIDEEFFECTS_H

#include "analysis/CallGraph.h"
#include "pascal/AST.h"

#include <map>
#include <set>
#include <vector>

namespace gadt {

namespace pascal {
class AstMap;
} // namespace pascal

namespace analysis {

/// Per-routine effect sets. Variable sets are ordered by declaration name
/// (then owner nesting depth) so every consumer iterates deterministically.
struct RoutineEffects {
  /// Non-local variables possibly read before being written (conservative:
  /// any read counts).
  std::vector<const pascal::VarDecl *> GRef;
  /// Non-local variables possibly written.
  std::vector<const pascal::VarDecl *> GMod;
  /// Own parameters possibly read / possibly written (indices into the
  /// routine's parameter list).
  std::set<unsigned> RefParams;
  std::set<unsigned> ModParams;

  bool refsGlobal(const pascal::VarDecl *V) const;
  bool modsGlobal(const pascal::VarDecl *V) const;
};

/// Whole-program side-effect information.
class SideEffectAnalysis {
public:
  SideEffectAnalysis(const pascal::Program &P, const CallGraph &CG);

  /// Incremental variant (runtime/EditSession.cpp): routines flagged in
  /// \p CleanDirect — indexed by preorder position, aligned with
  /// CG.routines() and \p Old, which the caller guarantees pair
  /// routine-for-routine — have unchanged bodies *and* unchanged name
  /// binding (no frame edit anywhere on their lexical ancestor chain), so
  /// their direct access sets are taken from \p Old translated
  /// declaration-by-declaration through \p Map instead of re-walking the
  /// body. Any unmapped declaration falls the routine back to the walk.
  /// The interprocedural fixpoint always re-runs over the fresh direct
  /// sets, so callee effect changes propagate exactly as in the
  /// from-scratch constructor.
  SideEffectAnalysis(const pascal::Program &P, const CallGraph &CG,
                     const SideEffectAnalysis *Old, const pascal::AstMap *Map,
                     const std::vector<char> *CleanDirect);

  const RoutineEffects &effects(const pascal::RoutineDecl *R) const;

  /// True when no routine in the program has global side effects — the
  /// postcondition of the paper's transformation phase.
  bool programIsSideEffectFree() const;

private:
  std::map<const pascal::RoutineDecl *, RoutineEffects> Effects;

  /// Direct (call-independent) accesses per routine, aligned with the call
  /// graph's preorder routine list. Retained so the next edit's analysis
  /// can seed clean routines by translating these sets instead of
  /// re-walking their bodies. Element order is incidental (set semantics);
  /// everything published is re-sorted.
  struct DirectAccess {
    std::vector<const pascal::VarDecl *> Refs, Mods;
  };
  std::vector<DirectAccess> DirectV;
};

} // namespace analysis
} // namespace gadt

#endif // GADT_ANALYSIS_SIDEEFFECTS_H
