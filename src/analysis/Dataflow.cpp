//===- Dataflow.cpp - Reaching definitions --------------------------------===//

#include "analysis/Dataflow.h"

#include "support/Casting.h"

#include <algorithm>
#include <deque>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::pascal;

static void addUnique(std::vector<const VarDecl *> &Vec, const VarDecl *V) {
  if (V && std::find(Vec.begin(), Vec.end(), V) == Vec.end())
    Vec.push_back(V);
}

std::vector<const VarDecl *>
gadt::analysis::effectiveDefs(const CFGNode *N,
                              const SideEffectAnalysis &SEA) {
  std::vector<const VarDecl *> Out = N->access().Defs;
  for (const CallSite &CS : N->access().Calls) {
    if (!CS.Callee)
      continue;
    const RoutineEffects &E = SEA.effects(CS.Callee);
    const auto &Params = CS.Callee->getParams();
    const auto &Args = CS.args();
    for (size_t I = 0, Sz = std::min(Params.size(), Args.size()); I != Sz;
         ++I)
      if (Params[I]->isReference() && E.ModParams.count(I))
        addUnique(Out, varArgDecl(Args[I].get()));
    for (const VarDecl *G : E.GMod)
      addUnique(Out, G);
  }
  return Out;
}

std::vector<const VarDecl *>
gadt::analysis::effectiveUses(const CFGNode *N,
                              const SideEffectAnalysis &SEA) {
  std::vector<const VarDecl *> Out = N->access().Uses;
  for (const CallSite &CS : N->access().Calls) {
    if (!CS.Callee)
      continue;
    const RoutineEffects &E = SEA.effects(CS.Callee);
    const auto &Params = CS.Callee->getParams();
    const auto &Args = CS.args();
    for (size_t I = 0, Sz = std::min(Params.size(), Args.size()); I != Sz;
         ++I)
      if (Params[I]->isReference() && E.RefParams.count(I))
        addUnique(Out, varArgDecl(Args[I].get()));
    for (const VarDecl *G : E.GRef)
      addUnique(Out, G);
  }
  return Out;
}

namespace {

/// True when the write of \p N to \p V always replaces the whole value, so
/// earlier definitions are killed. Array-element writes and call-mediated
/// writes are weak (may-writes).
bool stronglyDefines(const CFGNode *N, const VarDecl *V) {
  const Stmt *S = N->getStmt();
  switch (N->getKind()) {
  case CFGNode::Kind::FormalIn:
    return N->getFormalVar() == V;
  case CFGNode::Kind::Statement:
    if (const auto *AS = dyn_cast_or_null<AssignStmt>(S)) {
      const auto *VR = dyn_cast<VarRefExpr>(AS->getTarget());
      return VR && VR->getDecl() == V;
    }
    if (const auto *RS = dyn_cast_or_null<ReadStmt>(S)) {
      for (const ExprPtr &T : RS->getTargets())
        if (const auto *VR = dyn_cast<VarRefExpr>(T.get()))
          if (VR->getDecl() == V)
            return true;
      return false;
    }
    return false;
  case CFGNode::Kind::Predicate:
    if (const auto *FS = dyn_cast_or_null<ForStmt>(S))
      return cast<VarRefExpr>(FS->getLoopVar())->getDecl() == V;
    return false;
  default:
    return false;
  }
}

} // namespace

ReachingDefs::ReachingDefs(const CFG &G, const SideEffectAnalysis &SEA) {
  // Precompute gen sets and kill predicates.
  std::map<const CFGNode *, std::set<Def>> Gen;
  std::map<const CFGNode *, std::vector<const VarDecl *>> Strong;
  for (const auto &N : G.nodes()) {
    for (const VarDecl *V : effectiveDefs(N.get(), SEA)) {
      Gen[N.get()].insert({V, N.get()});
      if (stronglyDefines(N.get(), V))
        Strong[N.get()].push_back(V);
    }
  }

  // Worklist iteration.
  std::deque<const CFGNode *> Work;
  for (const auto &N : G.nodes())
    Work.push_back(N.get());
  std::map<const CFGNode *, std::set<Def>> Out;
  while (!Work.empty()) {
    const CFGNode *N = Work.front();
    Work.pop_front();
    std::set<Def> NewIn;
    for (const CFGNode *P : N->preds())
      NewIn.insert(Out[P].begin(), Out[P].end());
    std::set<Def> NewOut = NewIn;
    for (const VarDecl *V : Strong[N])
      for (auto It = NewOut.begin(); It != NewOut.end();)
        It = It->first == V ? NewOut.erase(It) : std::next(It);
    NewOut.insert(Gen[N].begin(), Gen[N].end());
    bool Changed = NewIn != In[N] || NewOut != Out[N];
    In[N] = std::move(NewIn);
    Out[N] = std::move(NewOut);
    if (Changed)
      for (const CFGNode *S : N->succs())
        Work.push_back(S);
  }
}

std::vector<const CFGNode *>
ReachingDefs::reachingIn(const CFGNode *N, const VarDecl *V) const {
  std::vector<const CFGNode *> Result;
  auto It = In.find(N);
  if (It == In.end())
    return Result;
  for (const Def &D : It->second)
    if (D.first == V)
      Result.push_back(D.second);
  return Result;
}
