//===- Dataflow.cpp - Reaching definitions --------------------------------===//

#include "analysis/Dataflow.h"

#include "support/Casting.h"

#include <algorithm>
#include <deque>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::pascal;

static void addUnique(std::vector<const VarDecl *> &Vec, const VarDecl *V) {
  if (V && std::find(Vec.begin(), Vec.end(), V) == Vec.end())
    Vec.push_back(V);
}

std::vector<const VarDecl *>
gadt::analysis::effectiveDefs(const CFGNode *N,
                              const SideEffectAnalysis &SEA) {
  std::vector<const VarDecl *> Out = N->access().Defs;
  for (const CallSite &CS : N->access().Calls) {
    if (!CS.Callee)
      continue;
    const RoutineEffects &E = SEA.effects(CS.Callee);
    const auto &Params = CS.Callee->getParams();
    const auto &Args = CS.args();
    for (size_t I = 0, Sz = std::min(Params.size(), Args.size()); I != Sz;
         ++I)
      if (Params[I]->isReference() && E.ModParams.count(I))
        addUnique(Out, varArgDecl(Args[I].get()));
    for (const VarDecl *G : E.GMod)
      addUnique(Out, G);
  }
  return Out;
}

std::vector<const VarDecl *>
gadt::analysis::effectiveUses(const CFGNode *N,
                              const SideEffectAnalysis &SEA) {
  std::vector<const VarDecl *> Out = N->access().Uses;
  for (const CallSite &CS : N->access().Calls) {
    if (!CS.Callee)
      continue;
    const RoutineEffects &E = SEA.effects(CS.Callee);
    const auto &Params = CS.Callee->getParams();
    const auto &Args = CS.args();
    for (size_t I = 0, Sz = std::min(Params.size(), Args.size()); I != Sz;
         ++I)
      if (Params[I]->isReference() && E.RefParams.count(I))
        addUnique(Out, varArgDecl(Args[I].get()));
    for (const VarDecl *G : E.GRef)
      addUnique(Out, G);
  }
  return Out;
}

namespace {

/// True when the write of \p N to \p V always replaces the whole value, so
/// earlier definitions are killed. Array-element writes and call-mediated
/// writes are weak (may-writes).
bool stronglyDefines(const CFGNode *N, const VarDecl *V) {
  const Stmt *S = N->getStmt();
  switch (N->getKind()) {
  case CFGNode::Kind::FormalIn:
    return N->getFormalVar() == V;
  case CFGNode::Kind::Statement:
    if (const auto *AS = dyn_cast_or_null<AssignStmt>(S)) {
      const auto *VR = dyn_cast<VarRefExpr>(AS->getTarget());
      return VR && VR->getDecl() == V;
    }
    if (const auto *RS = dyn_cast_or_null<ReadStmt>(S)) {
      for (const ExprPtr &T : RS->getTargets())
        if (const auto *VR = dyn_cast<VarRefExpr>(T.get()))
          if (VR->getDecl() == V)
            return true;
      return false;
    }
    return false;
  case CFGNode::Kind::Predicate:
    if (const auto *FS = dyn_cast_or_null<ForStmt>(S))
      return cast<VarRefExpr>(FS->getLoopVar())->getDecl() == V;
    return false;
  default:
    return false;
  }
}

} // namespace

ReachingDefs::ReachingDefs(const CFG &G, const SideEffectAnalysis &SEA) {
  const size_t N = G.nodes().size();

  // Enumerate the definition universe in CFG-id order and precompute each
  // node's gen bits, per-variable kill masks and strong-kill list.
  std::vector<std::pair<uint32_t, uint32_t>> GenRange(N, {0, 0});
  std::vector<std::vector<const VarDecl *>> Strong(N);
  for (const auto &NPtr : G.nodes()) {
    const CFGNode *Node = NPtr.get();
    uint32_t Begin = static_cast<uint32_t>(Defs.size());
    for (const VarDecl *V : effectiveDefs(Node, SEA)) {
      ByVar[V].push_back(static_cast<uint32_t>(Defs.size()));
      Defs.push_back({V, Node});
      if (stronglyDefines(Node, V))
        Strong[Node->getId()].push_back(V);
    }
    GenRange[Node->getId()] = {Begin, static_cast<uint32_t>(Defs.size())};
  }
  const size_t D = Defs.size();
  RowWords = (D + 63) / 64;
  // All-defs-of-variable masks, for whole-row kills.
  std::unordered_map<const VarDecl *, std::vector<uint64_t>> KillMask;
  for (const auto &[V, Ids] : ByVar) {
    std::vector<uint64_t> &M =
        KillMask.emplace(V, std::vector<uint64_t>(RowWords, 0)).first->second;
    for (uint32_t Id : Ids)
      M[Id / 64] |= uint64_t(1) << (Id % 64);
  }

  In.assign(N * RowWords, 0);
  std::vector<uint64_t> Out(N * RowWords, 0);
  std::vector<uint64_t> Tmp(RowWords);

  // Worklist iteration over node ids.
  std::deque<uint32_t> Work;
  std::vector<char> Queued(N, 1);
  for (const auto &NPtr : G.nodes())
    Work.push_back(NPtr->getId());
  while (!Work.empty()) {
    uint32_t Id = Work.front();
    Work.pop_front();
    Queued[Id] = 0;
    const CFGNode *Node = G.nodes()[Id].get();

    // NewIn = union of predecessor outs.
    for (size_t W = 0; W != RowWords; ++W)
      Tmp[W] = 0;
    for (const CFGNode *P : Node->preds()) {
      const uint64_t *PRow = &Out[size_t(P->getId()) * RowWords];
      for (size_t W = 0; W != RowWords; ++W)
        Tmp[W] |= PRow[W];
    }
    uint64_t *InRow = &In[size_t(Id) * RowWords];
    bool Changed = false;
    for (size_t W = 0; W != RowWords; ++W) {
      if (InRow[W] != Tmp[W]) {
        InRow[W] = Tmp[W];
        Changed = true;
      }
    }

    // NewOut = (NewIn \ strong kills) ∪ gen.
    for (const VarDecl *V : Strong[Id]) {
      const std::vector<uint64_t> &M = KillMask[V];
      for (size_t W = 0; W != RowWords; ++W)
        Tmp[W] &= ~M[W];
    }
    for (uint32_t DefId = GenRange[Id].first; DefId != GenRange[Id].second;
         ++DefId)
      Tmp[DefId / 64] |= uint64_t(1) << (DefId % 64);
    uint64_t *OutRow = &Out[size_t(Id) * RowWords];
    for (size_t W = 0; W != RowWords; ++W) {
      if (OutRow[W] != Tmp[W]) {
        OutRow[W] = Tmp[W];
        Changed = true;
      }
    }
    if (Changed)
      for (const CFGNode *S : Node->succs())
        if (!Queued[S->getId()]) {
          Queued[S->getId()] = 1;
          Work.push_back(S->getId());
        }
  }
}

std::vector<const CFGNode *>
ReachingDefs::reachingIn(const CFGNode *N, const VarDecl *V) const {
  std::vector<const CFGNode *> Result;
  auto It = ByVar.find(V);
  if (It == ByVar.end() || size_t(N->getId()) * RowWords >= In.size())
    return Result;
  const uint64_t *Row = &In[size_t(N->getId()) * RowWords];
  for (uint32_t DefId : It->second)
    if ((Row[DefId / 64] >> (DefId % 64)) & 1)
      Result.push_back(Defs[DefId].Node);
  return Result;
}
