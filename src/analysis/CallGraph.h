//===- CallGraph.h - Whole-program call graph -------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call graph underlying side-effect analysis and the system dependence
/// graph. Call sites include both statement-position procedure calls and
/// expression-position function calls.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_ANALYSIS_CALLGRAPH_H
#define GADT_ANALYSIS_CALLGRAPH_H

#include "pascal/AST.h"

#include <map>
#include <vector>

namespace gadt {

namespace pascal {
class AstMap;
} // namespace pascal

namespace analysis {

/// One syntactic call: the calling routine, the enclosing statement, and
/// either the ProcCallStmt or the CallExpr.
struct CallSite {
  const pascal::RoutineDecl *Caller = nullptr;
  const pascal::RoutineDecl *Callee = nullptr;
  /// The statement the call occurs in (the ProcCallStmt itself, or the
  /// statement containing the CallExpr).
  const pascal::Stmt *AtStmt = nullptr;
  const pascal::ProcCallStmt *CallStmt = nullptr; // statement calls
  const pascal::CallExpr *CallExpr = nullptr;     // expression calls

  /// The argument expressions, regardless of call form.
  const std::vector<pascal::ExprPtr> &args() const;
};

/// Whole-program call graph, built once per (possibly transformed) program.
class CallGraph {
public:
  explicit CallGraph(const pascal::Program &P);

  /// Incremental variant (runtime/EditSession.cpp): routines flagged in
  /// \p CleanBody — indexed by preorder position, which the caller
  /// guarantees pairs \p Old and \p P routine-for-routine — have
  /// structurally unchanged, fully mapped bodies, so their call sites are
  /// translated pointer-for-pointer from \p Old through \p Map instead of
  /// re-walking the body. Any routine that is dirty, unflagged, or fails
  /// translation falls back to the walk; the result is always identical to
  /// the from-scratch constructor.
  CallGraph(const pascal::Program &P, const CallGraph &Old,
            const pascal::AstMap &Map, const std::vector<char> &CleanBody);

  const std::vector<CallSite> &callSitesIn(const pascal::RoutineDecl *R) const;
  const std::vector<CallSite> &allCallSites() const { return Sites; }

  /// All routines, preorder over the routine tree (root first).
  const std::vector<const pascal::RoutineDecl *> &routines() const {
    return Routines;
  }

  /// Routines in reverse topological order of the call graph (callees
  /// before callers); recursive cycles are broken arbitrarily, which is
  /// sound for the fixpoint computations layered on top.
  std::vector<const pascal::RoutineDecl *> bottomUpOrder() const;

private:
  std::vector<const pascal::RoutineDecl *> Routines;
  std::vector<CallSite> Sites;
  std::map<const pascal::RoutineDecl *, std::vector<CallSite>> SitesByCaller;
  std::vector<CallSite> Empty;
};

/// Collects every call (statement or expression position) inside statement
/// \p S of routine \p Caller.
std::vector<CallSite> collectCallsInStmt(const pascal::RoutineDecl *Caller,
                                         const pascal::Stmt *S);

} // namespace analysis
} // namespace gadt

#endif // GADT_ANALYSIS_CALLGRAPH_H
