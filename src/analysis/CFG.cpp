//===- CFG.cpp - Per-routine control-flow graphs --------------------------===//

#include "analysis/CFG.h"

#include "support/Casting.h"

#include <algorithm>
#include <cassert>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::pascal;

std::string CFGNode::label() const {
  switch (K) {
  case Kind::Entry:
    return "entry";
  case Kind::Exit:
    return "exit";
  case Kind::FormalIn:
    return "formal-in " + FormalVar->getName();
  case Kind::FormalOut:
    return ResultFormal ? "formal-out <result>"
                        : "formal-out " + FormalVar->getName();
  case Kind::Predicate: {
    switch (S->getKind()) {
    case Stmt::Kind::If:
      return "if " + cast<IfStmt>(S)->getCond()->str();
    case Stmt::Kind::While:
      return "while " + cast<WhileStmt>(S)->getCond()->str();
    case Stmt::Kind::Repeat:
      return "until " + cast<RepeatStmt>(S)->getCond()->str();
    case Stmt::Kind::For: {
      const auto *FS = cast<ForStmt>(S);
      return "for " + FS->getLoopVar()->str() + " := " +
             FS->getFrom()->str() + ".." + FS->getTo()->str();
    }
    default:
      return "predicate";
    }
  }
  case Kind::Statement:
    switch (S->getKind()) {
    case Stmt::Kind::Labeled:
      return std::to_string(cast<LabeledStmt>(S)->getLabel()) + ":";
    case Stmt::Kind::Goto:
      return "goto " + std::to_string(cast<GotoStmt>(S)->getLabel());
    case Stmt::Kind::Assign: {
      const auto *AS = cast<AssignStmt>(S);
      return AS->getTarget()->str() + " := " + AS->getValue()->str();
    }
    case Stmt::Kind::ProcCall:
      return "call " + cast<ProcCallStmt>(S)->getCalleeName();
    case Stmt::Kind::Read:
      return "read";
    case Stmt::Kind::Write:
      return "write";
    case Stmt::Kind::Empty:
      return "skip";
    default:
      return "stmt";
    }
  }
  return "?";
}

CFGNode *CFG::newNode(CFGNode::Kind K) {
  Nodes.emplace_back(new CFGNode(K, static_cast<unsigned>(Nodes.size())));
  return Nodes.back().get();
}

void CFG::addEdge(CFGNode *From, CFGNode *To) {
  assert(From && To);
  if (std::find(From->Succs.begin(), From->Succs.end(), To) !=
      From->Succs.end())
    return;
  From->Succs.push_back(To);
  To->Preds.push_back(From);
}

void CFG::connect(const std::vector<CFGNode *> &From, CFGNode *To) {
  for (CFGNode *F : From)
    addEdge(F, To);
}

CFG::CFG(const RoutineDecl *R, const SideEffectAnalysis &Effects)
    : R(R), Effects(Effects) {
  Entry = newNode(CFGNode::Kind::Entry);
  Exit = newNode(CFGNode::Kind::Exit);

  const RoutineEffects &E = Effects.effects(R);

  // Formal-in boundary: parameters carrying values in, then referenced
  // globals.
  std::vector<CFGNode *> Chain = {Entry};
  auto addFormalIn = [&](const VarDecl *V) {
    CFGNode *N = newNode(CFGNode::Kind::FormalIn);
    N->FormalVar = V;
    N->Access.Defs.push_back(V);
    FormalIns.push_back(N);
    connect(Chain, N);
    Chain = {N};
  };
  for (const auto &P : R->getParams())
    if (P->getMode() != ParamMode::Out)
      addFormalIn(P.get());
  for (const VarDecl *G : E.GRef)
    addFormalIn(G);

  // Body.
  std::vector<CFGNode *> BodyExits = Chain;
  if (R->getBody())
    BodyExits = buildStmt(R->getBody(), Chain);

  // Patch gotos now that every label target exists.
  for (auto &[Node, GS] : PendingGotos) {
    if (GS->isNonLocal()) {
      addEdge(Node, Exit);
      continue;
    }
    auto It = LabelTargets.find(GS->getLabel());
    assert(It != LabelTargets.end() && "Sema guarantees labels are defined");
    addEdge(Node, It->second);
  }

  // Formal-out boundary: reference parameters, modified globals, result.
  // For the program routine, every global is a formal-out so that slicing
  // criteria at program exit have an anchor vertex.
  auto addFormalOut = [&](const VarDecl *V, bool IsResult) {
    CFGNode *N = newNode(CFGNode::Kind::FormalOut);
    N->FormalVar = IsResult ? nullptr : V;
    N->ResultFormal = IsResult;
    N->Access.Uses.push_back(V);
    FormalOuts.push_back(N);
    connect(BodyExits, N);
    BodyExits = {N};
  };
  if (R->isProgram()) {
    for (const auto &G : R->getLocals())
      addFormalOut(G.get(), false);
  } else {
    for (const auto &P : R->getParams())
      if (P->isReference())
        addFormalOut(P.get(), false);
    for (const VarDecl *G : E.GMod)
      addFormalOut(G, false);
    if (R->isFunction())
      addFormalOut(R->getResultVar(), true);
  }

  connect(BodyExits, Exit);
}

std::vector<CFGNode *> CFG::buildStmt(const Stmt *S,
                                      std::vector<CFGNode *> Preds) {
  switch (S->getKind()) {
  case Stmt::Kind::Compound: {
    std::vector<CFGNode *> Cur = std::move(Preds);
    for (const StmtPtr &Sub : cast<CompoundStmt>(S)->getBody())
      Cur = buildStmt(Sub.get(), std::move(Cur));
    return Cur;
  }

  case Stmt::Kind::Labeled: {
    const auto *LS = cast<LabeledStmt>(S);
    // A dedicated join node marks the label target.
    CFGNode *N = newNode(CFGNode::Kind::Statement);
    N->S = S;
    StmtNodes[S] = N;
    LabelTargets[LS->getLabel()] = N;
    connect(Preds, N);
    return buildStmt(LS->getSub(), {N});
  }

  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(S);
    CFGNode *P = newNode(CFGNode::Kind::Predicate);
    P->S = S;
    P->Access = computeStmtAccess(R, S);
    StmtNodes[S] = P;
    connect(Preds, P);
    std::vector<CFGNode *> Exits = buildStmt(IS->getThen(), {P});
    if (IS->getElse()) {
      std::vector<CFGNode *> ElseExits = buildStmt(IS->getElse(), {P});
      Exits.insert(Exits.end(), ElseExits.begin(), ElseExits.end());
    } else {
      Exits.push_back(P);
    }
    return Exits;
  }

  case Stmt::Kind::While: {
    const auto *WS = cast<WhileStmt>(S);
    CFGNode *P = newNode(CFGNode::Kind::Predicate);
    P->S = S;
    P->Access = computeStmtAccess(R, S);
    StmtNodes[S] = P;
    connect(Preds, P);
    std::vector<CFGNode *> BodyExits = buildStmt(WS->getBody(), {P});
    connect(BodyExits, P);
    return {P};
  }

  case Stmt::Kind::Repeat: {
    const auto *RS = cast<RepeatStmt>(S);
    size_t FirstNew = Nodes.size();
    std::vector<CFGNode *> Cur = std::move(Preds);
    for (const StmtPtr &Sub : RS->getBody())
      Cur = buildStmt(Sub.get(), std::move(Cur));
    CFGNode *P = newNode(CFGNode::Kind::Predicate);
    P->S = S;
    P->Access = computeStmtAccess(R, S);
    StmtNodes[S] = P;
    connect(Cur, P);
    // Back edge: condition false repeats the body (or itself when empty).
    CFGNode *BodyEntry = FirstNew < Nodes.size() - 1
                             ? Nodes[FirstNew].get()
                             : P;
    addEdge(P, BodyEntry);
    return {P};
  }

  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    CFGNode *P = newNode(CFGNode::Kind::Predicate);
    P->S = S;
    P->Access = computeStmtAccess(R, S);
    StmtNodes[S] = P;
    connect(Preds, P);
    std::vector<CFGNode *> BodyExits = buildStmt(FS->getBody(), {P});
    connect(BodyExits, P);
    return {P};
  }

  case Stmt::Kind::Goto: {
    CFGNode *N = newNode(CFGNode::Kind::Statement);
    N->S = S;
    StmtNodes[S] = N;
    connect(Preds, N);
    PendingGotos.push_back({N, cast<GotoStmt>(S)});
    return {}; // control never falls through
  }

  case Stmt::Kind::Assign:
  case Stmt::Kind::ProcCall:
  case Stmt::Kind::Read:
  case Stmt::Kind::Write:
  case Stmt::Kind::Empty: {
    CFGNode *N = newNode(CFGNode::Kind::Statement);
    N->S = S;
    N->Access = computeStmtAccess(R, S);
    StmtNodes[S] = N;
    connect(Preds, N);
    return {N};
  }
  }
  return Preds;
}

CFGNode *CFG::nodeFor(const Stmt *S) const {
  auto It = StmtNodes.find(S);
  return It == StmtNodes.end() ? nullptr : It->second;
}

CFGNode *CFG::formalOutFor(const VarDecl *V) const {
  for (CFGNode *N : FormalOuts)
    if (N->getFormalVar() == V)
      return N;
  return nullptr;
}

CFGNode *CFG::resultFormalOut() const {
  for (CFGNode *N : FormalOuts)
    if (N->isResultFormal())
      return N;
  return nullptr;
}

CFGNode *CFG::formalInFor(const VarDecl *V) const {
  for (CFGNode *N : FormalIns)
    if (N->getFormalVar() == V)
      return N;
  return nullptr;
}

std::string CFG::str() const {
  std::string Out;
  for (const auto &N : Nodes) {
    Out += std::to_string(N->getId()) + ": " + N->label() + " ->";
    for (const CFGNode *S : N->succs())
      Out += " " + std::to_string(S->getId());
    Out += '\n';
  }
  return Out;
}
