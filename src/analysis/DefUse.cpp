//===- DefUse.cpp - Per-statement variable accesses -----------------------===//

#include "analysis/DefUse.h"

#include "support/Casting.h"

#include <algorithm>
#include <set>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::pascal;

bool StmtAccess::uses(const VarDecl *V) const {
  return std::find(Uses.begin(), Uses.end(), V) != Uses.end();
}

bool StmtAccess::defs(const VarDecl *V) const {
  return std::find(Defs.begin(), Defs.end(), V) != Defs.end();
}

const VarDecl *gadt::analysis::varArgDecl(const Expr *Arg) {
  if (const auto *VR = dyn_cast<VarRefExpr>(Arg))
    return VR->getDecl();
  return nullptr;
}

namespace {

/// Collects accesses with an exclusion set of VarRefExprs that must not be
/// counted as plain uses (assignment targets, var arguments).
class AccessCollector {
public:
  AccessCollector(const RoutineDecl *R, const Stmt *S) : S(S) {
    Result.Calls = collectCallsInStmt(R, S);
    for (const CallSite &CS : Result.Calls) {
      if (!CS.Callee)
        continue;
      const auto &Params = CS.Callee->getParams();
      const auto &Args = CS.args();
      for (size_t I = 0, N = std::min(Params.size(), Args.size()); I != N;
           ++I)
        if (Params[I]->isReference())
          Excluded.insert(Args[I].get());
    }
  }

  void addUse(const VarDecl *V) {
    if (V && !Result.uses(V))
      Result.Uses.push_back(V);
  }

  void addDef(const VarDecl *V) {
    if (V && !Result.defs(V))
      Result.Defs.push_back(V);
  }

  /// Adds all non-excluded variable reads inside \p E.
  void useExpr(const Expr *E) {
    if (!E)
      return;
    forEachExprIn(const_cast<Expr *>(E), [this](Expr *Sub) {
      if (auto *VR = dyn_cast<VarRefExpr>(Sub))
        if (!Excluded.count(VR))
          addUse(VR->getDecl());
    });
  }

  /// Handles an lvalue that is written: plain variables are pure defs;
  /// array elements both read and write the array and read the index.
  void defLValue(const Expr *Target) {
    if (const auto *VR = dyn_cast<VarRefExpr>(Target)) {
      addDef(VR->getDecl());
      return;
    }
    const auto *IE = cast<IndexExpr>(Target);
    const auto *Base = cast<VarRefExpr>(IE->getBase());
    addDef(Base->getDecl());
    addUse(Base->getDecl()); // partial update preserves other elements
    useExpr(IE->getIndex());
  }

  StmtAccess take() { return std::move(Result); }

  const Stmt *S;

private:
  StmtAccess Result;
  std::set<const Expr *> Excluded;
};

} // namespace

StmtAccess gadt::analysis::computeStmtAccess(const RoutineDecl *R,
                                             const Stmt *S) {
  AccessCollector C(R, S);
  switch (S->getKind()) {
  case Stmt::Kind::Assign: {
    const auto *AS = cast<AssignStmt>(S);
    C.defLValue(AS->getTarget());
    C.useExpr(AS->getValue());
    break;
  }
  case Stmt::Kind::If:
    C.useExpr(cast<IfStmt>(S)->getCond());
    break;
  case Stmt::Kind::While:
    C.useExpr(cast<WhileStmt>(S)->getCond());
    break;
  case Stmt::Kind::Repeat:
    C.useExpr(cast<RepeatStmt>(S)->getCond());
    break;
  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    C.defLValue(FS->getLoopVar());
    C.useExpr(FS->getFrom());
    C.useExpr(FS->getTo());
    break;
  }
  case Stmt::Kind::ProcCall:
    for (const ExprPtr &Arg : cast<ProcCallStmt>(S)->getArgs())
      C.useExpr(Arg.get());
    break;
  case Stmt::Kind::Read:
    for (const ExprPtr &T : cast<ReadStmt>(S)->getTargets())
      C.defLValue(T.get());
    break;
  case Stmt::Kind::Write:
    for (const ExprPtr &A : cast<WriteStmt>(S)->getArgs())
      C.useExpr(A.get());
    break;
  case Stmt::Kind::Compound:
  case Stmt::Kind::Goto:
  case Stmt::Kind::Labeled:
  case Stmt::Kind::Empty:
    break;
  }
  return C.take();
}
