//===- SDG.cpp - System dependence graph ----------------------------------===//

#include "analysis/SDG.h"

#include "analysis/CFG.h"
#include "analysis/ControlDep.h"
#include "analysis/Dataflow.h"
#include "analysis/DefUse.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pascal/ASTMatch.h"
#include "support/Casting.h"
#include "support/Parallel.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <map>
#include <unordered_set>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::pascal;

//===----------------------------------------------------------------------===//
// SDGNode
//===----------------------------------------------------------------------===//

std::string SDGNode::label() const {
  auto VarName = [this]() {
    return Var ? Var->getName() : std::string("<result>");
  };
  switch (K) {
  case Kind::Entry:
    return "entry " + Routine->getName();
  case Kind::FormalIn:
    return "formal-in " + VarName() + " @" + Routine->getName();
  case Kind::FormalOut:
    return "formal-out " + VarName() + " @" + Routine->getName();
  case Kind::Stmt:
    return "stmt@" + S->getLoc().str() + " in " + Routine->getName();
  case Kind::Predicate:
    return "pred@" + S->getLoc().str() + " in " + Routine->getName();
  case Kind::ActualIn:
    return "actual-in " +
           (ArgIndex >= 0 ? "#" + std::to_string(ArgIndex) : VarName()) +
           " @call " + Call->Site.Callee->getName();
  case Kind::ActualOut:
    return "actual-out " +
           (Result ? std::string("<result>")
                   : ArgIndex >= 0 ? "#" + std::to_string(ArgIndex)
                                   : VarName()) +
           " @call " + Call->Site.Callee->getName();
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

namespace gadt {
namespace analysis {
namespace detail {

struct SDGBuilder {
  SDG &G;
  explicit SDGBuilder(SDG &G) : G(G) {}

  /// Intra-routine edge dedup: (from, to) -> kind bitmask.
  std::unordered_map<uint64_t, uint8_t> LocalSeen;

  /// Formal ordinals and per-routine formal-out counts, computed during
  /// call linkage and reused by the summary fixpoint.
  std::vector<int32_t> FiOrdSaved, FoOrdSaved;
  std::vector<uint32_t> FoCountSaved;

  static uint64_t edgeKey(uint32_t From, uint32_t To) {
    return (uint64_t(From) << 32) | To;
  }

  void addLocalEdge(RoutinePdg &P, uint32_t From, uint32_t To,
                    SDGEdgeKind K) {
    uint8_t Bit = uint8_t(1) << static_cast<uint8_t>(K);
    uint8_t &Mask = LocalSeen[edgeKey(From, To)];
    if (Mask & Bit)
      return;
    Mask |= Bit;
    P.Edges.push_back({From, To, K});
  }

  /// Builds the program dependence graph of one routine into \p P.
  void buildRoutine(const RoutineDecl *R, RoutinePdg &P);

  /// Serial phases over the merged arena. merge reads the per-routine
  /// arenas without mutating them (relocation happens on the copies pushed
  /// into the graph), so the caller can move \p Locals into the replay
  /// snapshot afterwards instead of deep-copying it up front.
  void merge(const std::vector<RoutinePdg> &Locals);
  void buildCallLinkage(std::vector<PendingEdge> &Edges);
  /// Summary fixpoint. Cold mode (\p Affected null): seed every formal-out.
  /// Partial mode: seed only routines flagged in \p Affected and pre-install
  /// the cached pair sets (\p OldPairs) of unaffected callees — the BFS
  /// provably never enters an unaffected routine because the affected set
  /// is closed under "callers of". Either way the resulting per-routine
  /// pair sets are sorted and call-site summary edges are materialized in
  /// call-record order, so a partial rebuild is byte-identical to a cold
  /// one. The pair sets are left in G.SummaryPairsV (the ctor clears them
  /// when replay data isn't wanted).
  void computeSummaryEdges(std::vector<PendingEdge> &Edges,
                           const std::vector<char> *Affected,
                           const std::vector<SummaryPairList> *OldPairs);
  /// \p InsOnly builds only the incoming-edge side — enough for the
  /// summary fixpoint, which walks predecessors exclusively; the final
  /// call after summary edges materializes both sides. \p InMask (valid
  /// with InsOnly) keeps only edges into flagged nodes: the partial
  /// fixpoint provably never reads predecessors of unaffected routines'
  /// nodes, so their adjacency need not be materialized at all.
  void finalizeCSR(const std::vector<PendingEdge> &Edges,
                   bool InsOnly = false,
                   const std::vector<char> *InMask = nullptr);

  /// Copies the old build's pre-merge PDG of one routine and rewrites
  /// every AST pointer through \p Map onto the new program. Returns false
  /// (leaving \p P in an unspecified state) if anything fails to
  /// correspond — the caller then rebuilds the routine from scratch.
  static bool replayRoutinePdg(const RoutinePdg &Old,
                               const RoutineDecl *NewR,
                               const pascal::AstMap &Map,
                               const CallGraph &NewCG, RoutinePdg &P);
};

bool SDGBuilder::replayRoutinePdg(const RoutinePdg &Old,
                                  const RoutineDecl *NewR,
                                  const pascal::AstMap &Map,
                                  const CallGraph &NewCG, RoutinePdg &P) {
  P.R = NewR;
  P.Nodes = Old.Nodes;
  P.Edges = Old.Edges;
  P.EntryLocal = Old.EntryLocal;
  for (SDGNode &N : P.Nodes) {
    N.Routine = NewR;
    if (N.S) {
      const Stmt *NS = Map.stmt(N.S);
      if (!NS)
        return false;
      N.S = NS;
    }
    if (N.Var) {
      const VarDecl *NV = Map.var(N.Var);
      if (!NV)
        return false;
      N.Var = NV;
    }
    // Re-pointed at the new call records by merge().
    N.Call = nullptr;
  }
  P.StmtNodes.clear();
  P.StmtNodes.reserve(Old.StmtNodes.size());
  for (const auto &[S, Local] : Old.StmtNodes) {
    const Stmt *NS = Map.stmt(S);
    if (!NS)
      return false;
    P.StmtNodes.push_back({NS, Local});
  }
  // Re-anchor the call records on the new call graph's sites. A clean body
  // yields the same site sequence, so records pair up positionally; verify
  // the correspondence anyway.
  std::vector<const CallSite *> NewSites;
  for (const CallSite &CS : NewCG.callSitesIn(NewR))
    if (CS.Callee)
      NewSites.push_back(&CS);
  if (NewSites.size() != Old.Calls.size())
    return false;
  P.Calls = Old.Calls;
  for (size_t I = 0; I != P.Calls.size(); ++I) {
    SDGCallRecord &Rec = P.Calls[I];
    const CallSite &NS = *NewSites[I];
    if (Map.routine(Rec.Site.Callee) != NS.Callee ||
        Map.stmt(Rec.Site.AtStmt) != NS.AtStmt)
      return false;
    Rec.Site = NS;
    std::unordered_map<const VarDecl *, SDGNodeId> In, Out;
    In.reserve(Rec.InByGlobal.size());
    Out.reserve(Rec.OutByGlobal.size());
    for (const auto &[V, Id] : Rec.InByGlobal) {
      const VarDecl *NV = Map.var(V);
      if (!NV)
        return false;
      In.emplace(NV, Id);
    }
    for (const auto &[V, Id] : Rec.OutByGlobal) {
      const VarDecl *NV = Map.var(V);
      if (!NV)
        return false;
      Out.emplace(NV, Id);
    }
    Rec.InByGlobal = std::move(In);
    Rec.OutByGlobal = std::move(Out);
    // Refilled by call linkage against the new callee formals.
    Rec.AIByFormalIn.clear();
    Rec.AOByFormalOut.clear();
  }
  return true;
}

static int paramIndexIn(const RoutineDecl *R, const VarDecl *V) {
  const auto &Params = R->getParams();
  for (unsigned I = 0, N = Params.size(); I != N; ++I)
    if (Params[I].get() == V)
      return static_cast<int>(I);
  return -1;
}

void SDGBuilder::buildRoutine(const RoutineDecl *R, RoutinePdg &P) {
  P.R = R;
  CFG Cfg(R, *G.SEA);
  ControlDependence CD(Cfg);
  ReachingDefs RD(Cfg, *G.SEA);

  auto newNode = [&](SDGNode::Kind K) -> uint32_t {
    uint32_t Id = static_cast<uint32_t>(P.Nodes.size());
    P.Nodes.push_back(SDGNode(K, Id));
    P.Nodes.back().Routine = R;
    return Id;
  };

  // --- Vertices mirroring CFG nodes.
  std::vector<uint32_t> CfgToLocal(Cfg.nodes().size(), SDGNoNode);
  for (const auto &NPtr : Cfg.nodes()) {
    const CFGNode *N = NPtr.get();
    switch (N->getKind()) {
    case CFGNode::Kind::Entry:
      P.EntryLocal = newNode(SDGNode::Kind::Entry);
      CfgToLocal[N->getId()] = P.EntryLocal;
      break;
    case CFGNode::Kind::Exit:
      break;
    case CFGNode::Kind::FormalIn: {
      uint32_t F = newNode(SDGNode::Kind::FormalIn);
      P.Nodes[F].Var = N->getFormalVar();
      P.Nodes[F].ArgIndex = paramIndexIn(R, P.Nodes[F].Var);
      CfgToLocal[N->getId()] = F;
      break;
    }
    case CFGNode::Kind::FormalOut: {
      uint32_t F = newNode(SDGNode::Kind::FormalOut);
      P.Nodes[F].Var = N->getFormalVar();
      P.Nodes[F].Result = N->isResultFormal();
      P.Nodes[F].ArgIndex =
          P.Nodes[F].Var ? paramIndexIn(R, P.Nodes[F].Var) : -1;
      CfgToLocal[N->getId()] = F;
      break;
    }
    case CFGNode::Kind::Statement:
    case CFGNode::Kind::Predicate: {
      uint32_t X = newNode(N->getKind() == CFGNode::Kind::Predicate
                               ? SDGNode::Kind::Predicate
                               : SDGNode::Kind::Stmt);
      P.Nodes[X].S = N->getStmt();
      CfgToLocal[N->getId()] = X;
      P.StmtNodes.push_back({N->getStmt(), X});
      break;
    }
    }
  }
  std::unordered_map<const Stmt *, uint32_t> StmtToLocal(
      P.StmtNodes.size() * 2);
  for (const auto &[St, Id] : P.StmtNodes)
    StmtToLocal.emplace(St, Id);
  auto stmtLocal = [&](const Stmt *S) -> uint32_t {
    auto It = StmtToLocal.find(S);
    return It == StmtToLocal.end() ? SDGNoNode : It->second;
  };

  // --- Actual vertices per call site, grouped by site statement for the
  // def-lookup and result-flow passes below.
  std::map<const Stmt *, std::vector<uint32_t>> CallsByStmt;
  for (const CallSite &CS : G.CG->callSitesIn(R)) {
    if (!CS.Callee)
      continue;
    uint32_t RecIdx = static_cast<uint32_t>(P.Calls.size());
    P.Calls.emplace_back();
    SDGCallRecord &Rec = P.Calls.back();
    Rec.Site = CS;
    Rec.CallVertex = stmtLocal(CS.AtStmt);
    assert(Rec.CallVertex != SDGNoNode && "call site statement has no vertex");
    const RoutineEffects &E = G.SEA->effects(CS.Callee);
    const auto &Params = CS.Callee->getParams();
    const auto &Args = CS.args();
    size_t NumArgs = std::min(Params.size(), Args.size());
    Rec.InByArg.assign(NumArgs, SDGNoNode);
    Rec.OutByArg.assign(NumArgs, SDGNoNode);
    for (size_t I = 0; I != NumArgs; ++I) {
      uint32_t AI = newNode(SDGNode::Kind::ActualIn);
      P.Nodes[AI].S = CS.AtStmt;
      P.Nodes[AI].ArgIndex = static_cast<int>(I);
      if (Params[I]->isReference())
        P.Nodes[AI].Var = varArgDecl(Args[I].get());
      Rec.ActualIns.push_back(AI);
      Rec.InByArg[I] = AI;
      addLocalEdge(P, Rec.CallVertex, AI, SDGEdgeKind::Control);
      if (Params[I]->isReference()) {
        uint32_t AO = newNode(SDGNode::Kind::ActualOut);
        P.Nodes[AO].S = CS.AtStmt;
        P.Nodes[AO].ArgIndex = static_cast<int>(I);
        P.Nodes[AO].Var = varArgDecl(Args[I].get());
        Rec.ActualOuts.push_back(AO);
        Rec.OutByArg[I] = AO;
        addLocalEdge(P, Rec.CallVertex, AO, SDGEdgeKind::Control);
      }
    }
    for (const VarDecl *Gl : E.GRef) {
      uint32_t AI = newNode(SDGNode::Kind::ActualIn);
      P.Nodes[AI].S = CS.AtStmt;
      P.Nodes[AI].Var = Gl;
      Rec.ActualIns.push_back(AI);
      Rec.InByGlobal.emplace(Gl, AI);
      addLocalEdge(P, Rec.CallVertex, AI, SDGEdgeKind::Control);
    }
    for (const VarDecl *Gl : E.GMod) {
      uint32_t AO = newNode(SDGNode::Kind::ActualOut);
      P.Nodes[AO].S = CS.AtStmt;
      P.Nodes[AO].Var = Gl;
      Rec.ActualOuts.push_back(AO);
      Rec.OutByGlobal.emplace(Gl, AO);
      addLocalEdge(P, Rec.CallVertex, AO, SDGEdgeKind::Control);
    }
    if (CS.Callee->isFunction() && CS.CallExpr) {
      uint32_t AO = newNode(SDGNode::Kind::ActualOut);
      P.Nodes[AO].S = CS.AtStmt;
      P.Nodes[AO].Result = true;
      Rec.ActualOuts.push_back(AO);
      Rec.ResultOut = AO;
      addLocalEdge(P, Rec.CallVertex, AO, SDGEdgeKind::Control);
    }
    CallsByStmt[CS.AtStmt].push_back(RecIdx);
  }

  // --- Control-dependence edges.
  for (const auto &NPtr : Cfg.nodes()) {
    const CFGNode *N = NPtr.get();
    uint32_t X = CfgToLocal[N->getId()];
    if (X == SDGNoNode || P.Nodes[X].getKind() == SDGNode::Kind::Entry)
      continue;
    for (const CFGNode *C : CD.controllersOf(N)) {
      uint32_t From = CfgToLocal[C->getId()];
      if (From != SDGNoNode)
        addLocalEdge(P, From, X, SDGEdgeKind::Control);
    }
  }

  // --- Flow-dependence edges. Definitions of V at CFG node D surface at
  // the formal-in vertex, the statement vertex for direct defs, and the
  // actual-out vertices of calls made by D's statement.
  auto forEachDefVertex = [&](const CFGNode *D, const VarDecl *V,
                              auto &&Fn) {
    uint32_t X = CfgToLocal[D->getId()];
    if (X == SDGNoNode)
      return;
    if (P.Nodes[X].getKind() == SDGNode::Kind::FormalIn) {
      Fn(X);
      return;
    }
    if (D->access().defs(V))
      Fn(X);
    auto It = CallsByStmt.find(D->getStmt());
    if (It != CallsByStmt.end())
      for (uint32_t RecIdx : It->second)
        for (uint32_t AO : P.Calls[RecIdx].ActualOuts) {
          const SDGNode &AONode = P.Nodes[AO];
          if (!AONode.isResult() && AONode.getVar() == V)
            Fn(AO);
        }
  };
  auto addUseEdges = [&](uint32_t UseNode, const VarDecl *V,
                         const CFGNode *Anchor) {
    for (const CFGNode *D : RD.reachingIn(Anchor, V))
      forEachDefVertex(D, V, [&](uint32_t DefV) {
        addLocalEdge(P, DefV, UseNode, SDGEdgeKind::Flow);
      });
  };

  for (const auto &NPtr : Cfg.nodes()) {
    const CFGNode *N = NPtr.get();
    uint32_t X = CfgToLocal[N->getId()];
    if (X == SDGNoNode || P.Nodes[X].getKind() == SDGNode::Kind::Entry)
      continue;
    for (const VarDecl *V : N->access().Uses)
      addUseEdges(X, V, N);
  }

  // Actual-in uses and result flow.
  for (SDGCallRecord &Rec : P.Calls) {
    const CFGNode *Anchor = Cfg.nodeFor(Rec.Site.AtStmt);
    assert(Anchor && "call site has no CFG node");
    const auto &Args = Rec.Site.args();
    for (uint32_t AI : Rec.ActualIns) {
      const SDGNode &AINode = P.Nodes[AI];
      if (AINode.getArgIndex() >= 0 && !AINode.getVar()) {
        // Value argument: uses every variable in the argument expression.
        forEachExprIn(
            const_cast<Expr *>(
                Args[static_cast<size_t>(AINode.getArgIndex())].get()),
            [&](Expr *Sub) {
              if (auto *VR = dyn_cast<VarRefExpr>(Sub))
                addUseEdges(AI, VR->getDecl(), Anchor);
            });
      } else if (AINode.getVar()) {
        addUseEdges(AI, AINode.getVar(), Anchor);
      }
    }
    // A function call's result flows into the innermost consumer: another
    // call's argument when nested, otherwise the site's statement vertex.
    if (Rec.ResultOut != SDGNoNode) {
      uint32_t Consumer = Rec.CallVertex;
      for (uint32_t OtherIdx : CallsByStmt[Rec.Site.AtStmt]) {
        SDGCallRecord &Other = P.Calls[OtherIdx];
        if (&Other == &Rec)
          continue;
        const auto &OtherArgs = Other.Site.args();
        for (size_t I = 0; I != OtherArgs.size(); ++I) {
          bool Contains = false;
          forEachExprIn(const_cast<Expr *>(OtherArgs[I].get()),
                        [&](Expr *Sub) {
                          if (Sub == Rec.Site.CallExpr)
                            Contains = true;
                        });
          if (Contains) {
            uint32_t AI = Other.actualInForArg(static_cast<int>(I));
            if (AI != SDGNoNode)
              Consumer = AI;
          }
        }
      }
      addLocalEdge(P, Rec.ResultOut, Consumer, SDGEdgeKind::Flow);
    }
  }
}

void SDGBuilder::merge(const std::vector<RoutinePdg> &Locals) {
  // Prefix-sum the per-routine node counts into deterministic id bases —
  // the order is CG->routines() (call-graph preorder), exactly the order
  // the old serial build allocated ids in.
  size_t TotalNodes = 0, TotalCalls = 0, TotalEdges = 0, TotalStmts = 0;
  G.Ranges.resize(Locals.size());
  for (size_t I = 0; I != Locals.size(); ++I) {
    G.Ranges[I].Begin = static_cast<SDGNodeId>(TotalNodes);
    TotalNodes += Locals[I].Nodes.size();
    G.Ranges[I].End = static_cast<SDGNodeId>(TotalNodes);
    TotalCalls += Locals[I].Calls.size();
    TotalEdges += Locals[I].Edges.size();
    TotalStmts += Locals[I].StmtNodes.size();
  }
  G.NodesV.reserve(TotalNodes);
  G.CallsV.reserve(TotalCalls);
  G.StmtMap.reserve(TotalStmts);
  G.RoutineIdx.reserve(Locals.size());

  for (size_t I = 0; I != Locals.size(); ++I) {
    const RoutinePdg &P = Locals[I];
    SDGNodeId Base = G.Ranges[I].Begin;
    G.RoutineIdx.emplace(P.R, static_cast<uint32_t>(I));
    for (const SDGNode &N : P.Nodes) {
      G.NodesV.push_back(N);
      G.NodesV.back().Id += Base;
    }
    assert(P.EntryLocal != SDGNoNode && "routine without entry vertex");
    G.Entries.emplace(P.R, Base + P.EntryLocal);
    for (const auto &[S, Local] : P.StmtNodes)
      G.StmtMap.emplace(S, Base + Local);
    for (const SDGCallRecord &Src : P.Calls) {
      G.CallsV.push_back(Src);
      SDGCallRecord &Rec = G.CallsV.back();
      Rec.CallVertex += Base;
      for (SDGNodeId &Id : Rec.ActualIns)
        Id += Base;
      for (SDGNodeId &Id : Rec.ActualOuts)
        Id += Base;
      for (SDGNodeId &Id : Rec.InByArg)
        if (Id != SDGNoNode)
          Id += Base;
      for (SDGNodeId &Id : Rec.OutByArg)
        if (Id != SDGNoNode)
          Id += Base;
      for (auto &[Var, Id] : Rec.InByGlobal)
        Id += Base;
      for (auto &[Var, Id] : Rec.OutByGlobal)
        Id += Base;
      if (Rec.ResultOut != SDGNoNode)
        Rec.ResultOut += Base;
    }
  }
  // Call-record addresses are stable now; point the actual vertices at
  // their records.
  for (const SDGCallRecord &Rec : G.CallsV) {
    for (SDGNodeId Id : Rec.ActualIns)
      G.NodesV[Id].Call = &Rec;
    for (SDGNodeId Id : Rec.ActualOuts)
      G.NodesV[Id].Call = &Rec;
  }
}

void SDGBuilder::buildCallLinkage(std::vector<PendingEdge> &Edges) {
  // Formal ordinals: the k-th formal-in/out vertex of a routine, in id
  // order. The linkage tables below map them straight to actuals, which is
  // what the summary fixpoint pops against. FiByVar/FoByVar resolve the
  // callee-side endpoint of param-in/out edges per formal variable.
  const size_t NumRoutines = G.Ranges.size();
  std::vector<int32_t> FiOrd(G.NodesV.size(), -1);
  std::vector<int32_t> FoOrd(G.NodesV.size(), -1);
  std::vector<uint32_t> FiCount(NumRoutines, 0);
  std::vector<uint32_t> FoCount(NumRoutines, 0);
  std::vector<std::unordered_map<const VarDecl *, SDGNodeId>>
      FiByVar(NumRoutines), FoByVar(NumRoutines);
  std::vector<SDGNodeId> FoResult(NumRoutines, SDGNoNode);
  for (size_t R = 0; R != NumRoutines; ++R)
    for (SDGNodeId Id = G.Ranges[R].Begin; Id != G.Ranges[R].End; ++Id) {
      const SDGNode &N = G.NodesV[Id];
      if (N.getKind() == SDGNode::Kind::FormalIn) {
        FiOrd[Id] = static_cast<int32_t>(FiCount[R]++);
        FiByVar[R].emplace(N.getVar(), Id);
      } else if (N.getKind() == SDGNode::Kind::FormalOut) {
        FoOrd[Id] = static_cast<int32_t>(FoCount[R]++);
        if (N.isResult())
          FoResult[R] = Id;
        else
          FoByVar[R].emplace(N.getVar(), Id);
      }
    }
  auto lookup =
      [](const std::unordered_map<const VarDecl *, SDGNodeId> &Map,
         const VarDecl *V) -> SDGNodeId {
    auto It = Map.find(V);
    return It == Map.end() ? SDGNoNode : It->second;
  };

  // Two expression calls to the same callee inside one statement share
  // their call vertex; emit the call edge only once.
  std::unordered_set<uint64_t> CallEdgeSeen;
  for (SDGCallRecord &Rec : G.CallsV) {
    const RoutineDecl *Callee = Rec.Site.Callee;
    uint32_t CalleeIdx = G.RoutineIdx.at(Callee);
    SDGNodeId Entry = G.Entries.at(Callee);
    if (CallEdgeSeen.insert((uint64_t(Rec.CallVertex) << 32) | Entry).second)
      Edges.push_back({Rec.CallVertex, Entry, SDGEdgeKind::Call});
    Rec.AIByFormalIn.assign(FiCount[CalleeIdx], SDGNoNode);
    Rec.AOByFormalOut.assign(FoCount[CalleeIdx], SDGNoNode);

    const auto &Params = Callee->getParams();
    for (SDGNodeId AI : Rec.ActualIns) {
      const SDGNode &AINode = G.NodesV[AI];
      const VarDecl *V =
          AINode.getArgIndex() >= 0
              ? Params[static_cast<size_t>(AINode.getArgIndex())].get()
              : AINode.getVar();
      SDGNodeId FI = lookup(FiByVar[CalleeIdx], V);
      if (FI != SDGNoNode) {
        Edges.push_back({AI, FI, SDGEdgeKind::ParamIn});
        Rec.AIByFormalIn[static_cast<size_t>(FiOrd[FI])] = AI;
      }
    }
    for (SDGNodeId AO : Rec.ActualOuts) {
      const SDGNode &AONode = G.NodesV[AO];
      SDGNodeId FO =
          AONode.isResult()
              ? FoResult[CalleeIdx]
              : lookup(FoByVar[CalleeIdx],
                       AONode.getArgIndex() >= 0
                           ? Params[static_cast<size_t>(AONode.getArgIndex())]
                                 .get()
                           : AONode.getVar());
      if (FO != SDGNoNode) {
        Edges.push_back({FO, AO, SDGEdgeKind::ParamOut});
        Rec.AOByFormalOut[static_cast<size_t>(FoOrd[FO])] = AO;
      }
    }
  }
  FiOrdSaved = std::move(FiOrd);
  FoOrdSaved = std::move(FoOrd);
  FoCountSaved = std::move(FoCount);
}

void SDGBuilder::computeSummaryEdges(std::vector<PendingEdge> &Edges,
                                     const std::vector<char> *Affected,
                                     const std::vector<SummaryPairList> *OldPairs) {
  // Worklist of "path edges" (n, fo): vertex n reaches formal-out fo along
  // a realizable same-level path within fo's routine. Per vertex the
  // reached formal-outs are one bitset row over the *owning routine's*
  // formal-outs (dense local numbering), so membership is a bit test and
  // the whole table is one arena allocation.
  const size_t N = G.NodesV.size();
  const std::vector<int32_t> &FiOrd = FiOrdSaved;
  const std::vector<int32_t> &FoOrd = FoOrdSaved;
  const std::vector<uint32_t> &FoCount = FoCountSaved;

  // Routine index per node (ranges are contiguous) and per-node bit base.
  std::vector<uint32_t> NodeRoutine(N);
  for (size_t R = 0; R != G.Ranges.size(); ++R)
    for (SDGNodeId Id = G.Ranges[R].Begin; Id != G.Ranges[R].End; ++Id)
      NodeRoutine[Id] = static_cast<uint32_t>(R);
  std::vector<uint64_t> BitBase(N + 1, 0);
  for (size_t Id = 0; Id != N; ++Id)
    BitBase[Id + 1] = BitBase[Id] + FoCount[NodeRoutine[Id]];
  std::vector<uint64_t> Pairs((BitBase[N] + 63) / 64, 0);

  // Calls per callee routine, in call-record order.
  std::vector<std::vector<uint32_t>> CallsTo(G.Ranges.size());
  for (size_t C = 0; C != G.CallsV.size(); ++C)
    CallsTo[G.RoutineIdx.at(G.CallsV[C].Site.Callee)].push_back(
        static_cast<uint32_t>(C));

  // Formal-outs reached per vertex, in discovery order, plus the summary
  // in-edges accumulated per actual-out (the CSR has no summary edges yet).
  std::vector<std::vector<uint32_t>> FosReached(N);
  std::vector<std::vector<SDGNodeId>> SummaryIns(N);
  std::unordered_set<uint64_t> SummarySeen;
  std::deque<std::pair<SDGNodeId, uint32_t>> Work;
  uint64_t PathPairs = 0;

  // The portable result: per-routine (fi, fo) pair sets, in discovery
  // order here, sorted before materialization.
  std::vector<SummaryPairList> RoutinePairs(G.Ranges.size());

  auto addPair = [&](SDGNodeId Node, uint32_t Fo) {
    uint64_t Bit = BitBase[Node] + Fo;
    uint64_t Mask = uint64_t(1) << (Bit % 64);
    if (Pairs[Bit / 64] & Mask)
      return;
    Pairs[Bit / 64] |= Mask;
    ++PathPairs;
    Work.push_back({Node, Fo});
    FosReached[Node].push_back(Fo);
  };

  // Partial mode: replay the cached pair sets of unaffected routines and
  // pre-install the summary in-edges they imply at their call sites, so
  // paths through calls to unaffected callees propagate in the BFS without
  // ever entering the callee.
  if (Affected) {
    for (size_t R = 0; R != G.Ranges.size(); ++R)
      if (!(*Affected)[R])
        RoutinePairs[R] = (*OldPairs)[R];
    for (const SDGCallRecord &Rec : G.CallsV) {
      uint32_t CalleeIdx = G.RoutineIdx.at(Rec.Site.Callee);
      if ((*Affected)[CalleeIdx])
        continue;
      for (const auto &[Fi, Fo] : RoutinePairs[CalleeIdx]) {
        SDGNodeId AI = Rec.AIByFormalIn[Fi];
        SDGNodeId AO = Rec.AOByFormalOut[Fo];
        if (AI == SDGNoNode || AO == SDGNoNode ||
            !SummarySeen.insert((uint64_t(AI) << 32) | AO).second)
          continue;
        SummaryIns[AO].push_back(AI);
      }
    }
  }

  for (SDGNodeId Id = 0; Id != N; ++Id)
    if (FoOrd[Id] >= 0 && (!Affected || (*Affected)[NodeRoutine[Id]]))
      addPair(Id, static_cast<uint32_t>(FoOrd[Id]));

  while (!Work.empty()) {
    auto [Node, Fo] = Work.front();
    Work.pop_front();

    if (G.NodesV[Node].getKind() == SDGNode::Kind::FormalIn) {
      // A same-level path fi ->* fo is a summary pair of this routine and
      // induces summary edges ai -> ao at every call to it.
      uint32_t Fi = static_cast<uint32_t>(FiOrd[Node]);
      uint32_t R = NodeRoutine[Node];
      assert(!Affected || (*Affected)[R]);
      RoutinePairs[R].push_back({Fi, Fo});
      for (uint32_t CallIdx : CallsTo[R]) {
        const SDGCallRecord &Rec = G.CallsV[CallIdx];
        SDGNodeId AI = Rec.AIByFormalIn[Fi];
        SDGNodeId AO = Rec.AOByFormalOut[Fo];
        if (AI == SDGNoNode || AO == SDGNoNode ||
            !SummarySeen.insert((uint64_t(AI) << 32) | AO).second)
          continue;
        SummaryIns[AO].push_back(AI);
        // The new edge extends any path already known to leave AO.
        for (uint32_t Fo2 : FosReached[AO])
          addPair(AI, Fo2);
      }
    }

    // Control, flow and summary in-edges stay within the routine, so every
    // predecessor shares Fo's owner and the pair propagates unconditionally.
    for (const SDGEdge &E : G.ins(Node)) {
      if (E.K != SDGEdgeKind::Control && E.K != SDGEdgeKind::Flow)
        continue;
      assert(NodeRoutine[E.N] == NodeRoutine[Node]);
      addPair(E.N, Fo);
    }
    for (SDGNodeId AI : SummaryIns[Node])
      addPair(AI, Fo);
  }

  // Canonical materialization: per call record (in record order), per
  // sorted (fi, fo) pair of its callee. This makes the summary edge order
  // a function of the final pair sets alone — identical for cold and
  // partial builds.
  for (SummaryPairList &PL : RoutinePairs)
    std::sort(PL.begin(), PL.end());
  G.NumSummary = 0;
  for (const SDGCallRecord &Rec : G.CallsV) {
    uint32_t CalleeIdx = G.RoutineIdx.at(Rec.Site.Callee);
    for (const auto &[Fi, Fo] : RoutinePairs[CalleeIdx]) {
      SDGNodeId AI = Rec.AIByFormalIn[Fi];
      SDGNodeId AO = Rec.AOByFormalOut[Fo];
      if (AI == SDGNoNode || AO == SDGNoNode)
        continue;
      Edges.push_back({AI, AO, SDGEdgeKind::Summary});
      ++G.NumSummary;
    }
  }
  G.SummaryPairsV = std::move(RoutinePairs);

  static obs::Counter &PairC =
      obs::Registry::global().counter("analysis.sdg.summary.pairs");
  PairC.add(PathPairs);
}

void SDGBuilder::finalizeCSR(const std::vector<PendingEdge> &Edges,
                             bool InsOnly,
                             const std::vector<char> *InMask) {
  // Stable counting sort by endpoint: per-vertex adjacency comes out in
  // exactly the order the edges were recorded, matching the append order
  // of the old pointer-graph representation.
  const size_t N = G.NodesV.size();
  if (InsOnly) {
    G.InOff.assign(N + 1, 0);
    for (const PendingEdge &E : Edges)
      if (!InMask || (*InMask)[E.To])
        ++G.InOff[E.To + 1];
    for (size_t I = 0; I != N; ++I)
      G.InOff[I + 1] += G.InOff[I];
    G.InE.resize(G.InOff[N]);
    std::vector<uint32_t> InCur(G.InOff.begin(), G.InOff.end() - 1);
    for (const PendingEdge &E : Edges)
      if (!InMask || (*InMask)[E.To])
        G.InE[InCur[E.To]++] = {E.From, E.K};
    G.NumEdges = static_cast<unsigned>(Edges.size());
    return;
  }
  G.OutOff.assign(N + 1, 0);
  G.InOff.assign(N + 1, 0);
  for (const PendingEdge &E : Edges) {
    ++G.OutOff[E.From + 1];
    ++G.InOff[E.To + 1];
  }
  for (size_t I = 0; I != N; ++I) {
    G.OutOff[I + 1] += G.OutOff[I];
    G.InOff[I + 1] += G.InOff[I];
  }
  G.OutE.resize(Edges.size());
  G.InE.resize(Edges.size());
  std::vector<uint32_t> OutCur(G.OutOff.begin(), G.OutOff.end() - 1);
  std::vector<uint32_t> InCur(G.InOff.begin(), G.InOff.end() - 1);
  for (const PendingEdge &E : Edges) {
    G.OutE[OutCur[E.From]++] = {E.To, E.K};
    G.InE[InCur[E.To]++] = {E.From, E.K};
  }
  G.NumEdges = static_cast<unsigned>(Edges.size());
}

} // namespace detail
} // namespace analysis
} // namespace gadt

//===----------------------------------------------------------------------===//
// SDG construction
//===----------------------------------------------------------------------===//

SDG::~SDG() = default;

SDG::SDG(const Program &P, SDGBuildOptions Opts)
    : CG(Opts.SharedCG ? Opts.SharedCG : std::make_shared<CallGraph>(P)),
      SEA(Opts.SharedSEA ? Opts.SharedSEA
                         : std::make_shared<SideEffectAnalysis>(P, *CG)) {
  obs::Span Span("sdg", "analysis");
  detail::SDGBuilder B(*this);

  const std::vector<const RoutineDecl *> &Routines = CG->routines();
  std::vector<detail::RoutinePdg> Locals(Routines.size());
  unsigned Threads = support::resolveThreads(Opts.Threads);

  // Validate the reuse plan's shape; a malformed plan degrades to a cold
  // build rather than failing.
  const SDGReusePlan *Reuse = Opts.Reuse;
  bool CanReuse = Reuse && Reuse->Old && Reuse->Map &&
                  Reuse->Old->Pdgs.size() == Routines.size() &&
                  Reuse->Old->SummaryPairsV.size() == Routines.size() &&
                  Reuse->Replay.size() == Routines.size() &&
                  Reuse->SummaryAffected.size() == Routines.size();
  std::atomic<unsigned> Replayed{0};
  std::atomic<bool> ReplayFellBack{false};
  {
    obs::Span Pdg("sdg.pdg", "analysis");
    Pdg.arg("threads", Threads);
    // Routine-local phase: CFG, control deps, reaching defs and all
    // intra-routine vertices/edges, under local ids — or, with a reuse
    // plan, a pointer-remapped copy of the old build's PDG for routines
    // the edit left clean. Safe to fan out — workers share only the
    // immutable ASTs, call graph and effect sets. Each worker needs its
    // own dedup map, so give every index a builder.
    support::parallelFor(Threads, Routines.size(), [&](size_t I) {
      if (CanReuse && Reuse->Replay[I]) {
        if (detail::SDGBuilder::replayRoutinePdg(Reuse->Old->Pdgs[I], Routines[I],
                                     *Reuse->Map, *CG, Locals[I])) {
          Replayed.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        // A failed replay invalidates the plan's summary partition too
        // (this routine was assumed clean); note it and rebuild.
        ReplayFellBack.store(true, std::memory_order_relaxed);
        Locals[I] = detail::RoutinePdg();
      }
      detail::SDGBuilder Local(*this);
      Local.buildRoutine(Routines[I], Locals[I]);
    });
  }

  // Serial phases: deterministic id assignment + merge, interprocedural
  // linkage, summary fixpoint, CSR finalize. merge leaves the per-routine
  // arenas untouched (they still hold local ids and their own node copies),
  // so the replay snapshot below is a move, not a deep copy.
  std::vector<detail::PendingEdge> Edges;
  {
    obs::Span Merge("sdg.merge", "analysis");
    B.merge(Locals);
    size_t IntraEdges = 0;
    for (const detail::RoutinePdg &L : Locals)
      IntraEdges += L.Edges.size();
    Edges.reserve(IntraEdges);
    for (size_t I = 0; I != Locals.size(); ++I) {
      SDGNodeId Base = Ranges[I].Begin;
      for (const detail::PendingEdge &E : Locals[I].Edges)
        Edges.push_back({E.From + Base, E.To + Base, E.K});
    }
    if (Opts.KeepReplayData)
      Pdgs = std::move(Locals);
  }
  {
    obs::Span Linkage("sdg.linkage", "analysis");
    B.buildCallLinkage(Edges);
  }
  bool PartialSummary =
      CanReuse && !ReplayFellBack.load(std::memory_order_relaxed);
  {
    obs::Span Csr("sdg.csr", "analysis");
    if (PartialSummary) {
      std::vector<char> Mask(NodesV.size(), 0);
      for (size_t I = 0; I != Ranges.size(); ++I)
        if (Reuse->SummaryAffected[I])
          std::fill(Mask.begin() + Ranges[I].Begin,
                    Mask.begin() + Ranges[I].End, 1);
      B.finalizeCSR(Edges, /*InsOnly=*/true, &Mask);
    } else {
      B.finalizeCSR(Edges, /*InsOnly=*/true);
    }
  }
  {
    obs::Span Summary("sdg.summary", "analysis");
    B.computeSummaryEdges(Edges,
                          PartialSummary ? &Reuse->SummaryAffected : nullptr,
                          PartialSummary ? &Reuse->Old->SummaryPairsV
                                         : nullptr);
    Summary.arg("summary", NumSummary);
  }
  {
    obs::Span Csr("sdg.csr", "analysis");
    B.finalizeCSR(Edges);
  }
  if (!Opts.KeepReplayData)
    SummaryPairsV.clear();
  if (Opts.Stats) {
    Opts.Stats->PdgReplayed = Replayed.load(std::memory_order_relaxed);
    Opts.Stats->PdgBuilt =
        static_cast<unsigned>(Routines.size()) - Opts.Stats->PdgReplayed;
    Opts.Stats->ReplayFellBack = !PartialSummary && CanReuse;
    unsigned AffectedCount = 0;
    if (PartialSummary) {
      for (char C : Reuse->SummaryAffected)
        AffectedCount += C ? 1 : 0;
    } else {
      AffectedCount = static_cast<unsigned>(Routines.size());
    }
    Opts.Stats->SummaryRecomputed = AffectedCount;
  }

  Span.arg("routines", Routines.size());
  Span.arg("nodes", NodesV.size());
  Span.arg("edges", NumEdges);
  static obs::Counter &Builds =
      obs::Registry::global().counter("analysis.sdg.builds");
  static obs::Counter &NodeC =
      obs::Registry::global().counter("analysis.sdg.nodes");
  static obs::Counter &EdgeC =
      obs::Registry::global().counter("analysis.sdg.edges");
  Builds.add();
  NodeC.add(NodesV.size());
  EdgeC.add(NumEdges);
}

//===----------------------------------------------------------------------===//
// Lookup and rendering
//===----------------------------------------------------------------------===//

bool SDG::hasEdge(SDGNodeId From, SDGNodeId To, SDGEdgeKind K) const {
  for (const SDGEdge &E : outs(From))
    if (E.N == To && E.K == K)
      return true;
  return false;
}

SDGNodeId SDG::entryOf(const RoutineDecl *R) const {
  auto It = Entries.find(R);
  return It == Entries.end() ? SDGNoNode : It->second;
}

SDGNodeId SDG::stmtNode(const Stmt *S) const {
  auto It = StmtMap.find(S);
  return It == StmtMap.end() ? SDGNoNode : It->second;
}

SDGNodeId SDG::formalOut(const RoutineDecl *R, const std::string &Name) const {
  auto It = RoutineIdx.find(R);
  if (It == RoutineIdx.end())
    return SDGNoNode;
  const RoutineRange &Range = Ranges[It->second];
  for (SDGNodeId Id = Range.Begin; Id != Range.End; ++Id)
    if (NodesV[Id].getKind() == SDGNode::Kind::FormalOut &&
        NodesV[Id].getVar() && NodesV[Id].getVar()->getName() == Name)
      return Id;
  return SDGNoNode;
}

SDGNodeId SDG::formalOutResult(const RoutineDecl *R) const {
  auto It = RoutineIdx.find(R);
  if (It == RoutineIdx.end())
    return SDGNoNode;
  const RoutineRange &Range = Ranges[It->second];
  for (SDGNodeId Id = Range.Begin; Id != Range.End; ++Id)
    if (NodesV[Id].getKind() == SDGNode::Kind::FormalOut &&
        NodesV[Id].isResult())
      return Id;
  return SDGNoNode;
}

SDGNodeId SDG::formalIn(const RoutineDecl *R, const std::string &Name) const {
  auto It = RoutineIdx.find(R);
  if (It == RoutineIdx.end())
    return SDGNoNode;
  const RoutineRange &Range = Ranges[It->second];
  for (SDGNodeId Id = Range.Begin; Id != Range.End; ++Id)
    if (NodesV[Id].getKind() == SDGNode::Kind::FormalIn &&
        NodesV[Id].getVar() && NodesV[Id].getVar()->getName() == Name)
      return Id;
  return SDGNoNode;
}

std::string SDG::str() const {
  std::string Out;
  for (const SDGNode &N : NodesV) {
    Out += std::to_string(N.getId()) + ": " + N.label() + "\n";
    for (const SDGEdge &E : outs(N.getId())) {
      const char *K = "";
      switch (E.K) {
      case SDGEdgeKind::Control:
        K = "ctrl";
        break;
      case SDGEdgeKind::Flow:
        K = "flow";
        break;
      case SDGEdgeKind::Call:
        K = "call";
        break;
      case SDGEdgeKind::ParamIn:
        K = "pin";
        break;
      case SDGEdgeKind::ParamOut:
        K = "pout";
        break;
      case SDGEdgeKind::Summary:
        K = "sum";
        break;
      }
      Out += "  -" + std::string(K) + "-> " + std::to_string(E.N) + "\n";
    }
  }
  return Out;
}

static std::string escapeDotLabel(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string SDG::dot() const {
  std::string Out = "digraph sdg {\n  node [shape=box, "
                    "fontname=\"monospace\", fontsize=10];\n";
  // Cluster vertices per routine: each routine's ids are one contiguous
  // range, emitted in call-graph preorder.
  const std::vector<const RoutineDecl *> &Routines = CG->routines();
  for (size_t R = 0; R != Ranges.size(); ++R) {
    Out += "  subgraph cluster_" + std::to_string(R) + " {\n";
    Out += "    label=\"" + escapeDotLabel(Routines[R]->qualifiedName()) +
           "\";\n";
    for (SDGNodeId Id = Ranges[R].Begin; Id != Ranges[R].End; ++Id)
      Out += "    v" + std::to_string(Id) + " [label=\"" +
             escapeDotLabel(NodesV[Id].label()) + "\"];\n";
    Out += "  }\n";
  }
  for (const SDGNode &N : NodesV)
    for (const SDGEdge &E : outs(N.getId())) {
      Out += "  v" + std::to_string(N.getId()) + " -> v" +
             std::to_string(E.N);
      switch (E.K) {
      case SDGEdgeKind::Control:
        break;
      case SDGEdgeKind::Flow:
        Out += " [style=dashed]";
        break;
      case SDGEdgeKind::Call:
      case SDGEdgeKind::ParamIn:
      case SDGEdgeKind::ParamOut:
        Out += " [style=bold, color=blue]";
        break;
      case SDGEdgeKind::Summary:
        Out += " [style=dotted, color=red]";
        break;
      }
      Out += ";\n";
    }
  Out += "}\n";
  return Out;
}
