//===- SDG.cpp - System dependence graph ----------------------------------===//

#include "analysis/SDG.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <set>

using namespace gadt;
using namespace gadt::analysis;
using namespace gadt::pascal;

//===----------------------------------------------------------------------===//
// SDGCallRecord
//===----------------------------------------------------------------------===//

SDGNode *SDGCallRecord::actualInForArg(int Index) const {
  for (SDGNode *N : ActualIns)
    if (N->getArgIndex() == Index)
      return N;
  return nullptr;
}

SDGNode *SDGCallRecord::actualInForGlobal(const VarDecl *G) const {
  for (SDGNode *N : ActualIns)
    if (N->getArgIndex() < 0 && N->getVar() == G)
      return N;
  return nullptr;
}

SDGNode *SDGCallRecord::actualOutForArg(int Index) const {
  for (SDGNode *N : ActualOuts)
    if (N->getArgIndex() == Index)
      return N;
  return nullptr;
}

SDGNode *SDGCallRecord::actualOutForGlobal(const VarDecl *G) const {
  for (SDGNode *N : ActualOuts)
    if (N->getArgIndex() < 0 && !N->isResult() && N->getVar() == G)
      return N;
  return nullptr;
}

SDGNode *SDGCallRecord::actualOutForResult() const {
  for (SDGNode *N : ActualOuts)
    if (N->isResult())
      return N;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// SDGNode
//===----------------------------------------------------------------------===//

std::string SDGNode::label() const {
  auto VarName = [this]() {
    return Var ? Var->getName() : std::string("<result>");
  };
  switch (K) {
  case Kind::Entry:
    return "entry " + Routine->getName();
  case Kind::FormalIn:
    return "formal-in " + VarName() + " @" + Routine->getName();
  case Kind::FormalOut:
    return "formal-out " + VarName() + " @" + Routine->getName();
  case Kind::Stmt:
    return "stmt@" + S->getLoc().str() + " in " + Routine->getName();
  case Kind::Predicate:
    return "pred@" + S->getLoc().str() + " in " + Routine->getName();
  case Kind::ActualIn:
    return "actual-in " +
           (ArgIndex >= 0 ? "#" + std::to_string(ArgIndex) : VarName()) +
           " @call " + Call->Site.Callee->getName();
  case Kind::ActualOut:
    return "actual-out " +
           (Result ? std::string("<result>")
                   : ArgIndex >= 0 ? "#" + std::to_string(ArgIndex)
                                   : VarName()) +
           " @call " + Call->Site.Callee->getName();
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// SDG construction
//===----------------------------------------------------------------------===//

SDG::~SDG() = default;

SDGNode *SDG::newNode(SDGNode::Kind K, const RoutineDecl *R) {
  Nodes.emplace_back(new SDGNode(K, static_cast<unsigned>(Nodes.size())));
  Nodes.back()->Routine = R;
  return Nodes.back().get();
}

bool SDG::hasEdge(const SDGNode *From, const SDGNode *To,
                  SDGEdgeKind K) const {
  for (const SDGNode::Edge &E : From->outs())
    if (E.N == To && E.K == K)
      return true;
  return false;
}

void SDG::addEdge(SDGNode *From, SDGNode *To, SDGEdgeKind K) {
  assert(From && To);
  if (hasEdge(From, To, K))
    return;
  From->Out.push_back({To, K});
  To->In.push_back({From, K});
  ++NumEdges;
  if (K == SDGEdgeKind::Summary)
    ++NumSummary;
}

SDG::SDG(const Program &P)
    : CG(std::make_unique<CallGraph>(P)),
      SEA(std::make_unique<SideEffectAnalysis>(P, *CG)) {
  obs::Span Span("sdg", "analysis");
  for (const RoutineDecl *R : CG->routines())
    CFGs[R] = std::make_unique<CFG>(R, *SEA);
  for (const RoutineDecl *R : CG->routines())
    buildRoutine(R);
  buildCallLinkage();
  computeSummaryEdges();
  Span.arg("routines", CG->routines().size());
  Span.arg("nodes", Nodes.size());
  Span.arg("edges", NumEdges);
  static obs::Counter &Builds =
      obs::Registry::global().counter("analysis.sdg.builds");
  static obs::Counter &NodeC =
      obs::Registry::global().counter("analysis.sdg.nodes");
  static obs::Counter &EdgeC =
      obs::Registry::global().counter("analysis.sdg.edges");
  Builds.add();
  NodeC.add(Nodes.size());
  EdgeC.add(NumEdges);
}

static int paramIndexIn(const RoutineDecl *R, const VarDecl *V) {
  const auto &Params = R->getParams();
  for (unsigned I = 0, N = Params.size(); I != N; ++I)
    if (Params[I].get() == V)
      return static_cast<int>(I);
  return -1;
}

void SDG::buildRoutine(const RoutineDecl *R) {
  CFG &G = *CFGs[R];
  ControlDependence CD(G);
  ReachingDefs RD(G, *SEA);

  // --- Vertices mirroring CFG nodes.
  for (const auto &NPtr : G.nodes()) {
    const CFGNode *N = NPtr.get();
    switch (N->getKind()) {
    case CFGNode::Kind::Entry: {
      SDGNode *E = newNode(SDGNode::Kind::Entry, R);
      Entries[R] = E;
      CfgToSdg[N] = E;
      break;
    }
    case CFGNode::Kind::Exit:
      break;
    case CFGNode::Kind::FormalIn: {
      SDGNode *F = newNode(SDGNode::Kind::FormalIn, R);
      F->Var = N->getFormalVar();
      F->ArgIndex = paramIndexIn(R, F->Var);
      CfgToSdg[N] = F;
      break;
    }
    case CFGNode::Kind::FormalOut: {
      SDGNode *F = newNode(SDGNode::Kind::FormalOut, R);
      F->Var = N->getFormalVar();
      F->Result = N->isResultFormal();
      F->ArgIndex = F->Var ? paramIndexIn(R, F->Var) : -1;
      CfgToSdg[N] = F;
      break;
    }
    case CFGNode::Kind::Statement:
    case CFGNode::Kind::Predicate: {
      SDGNode *X = newNode(N->getKind() == CFGNode::Kind::Predicate
                               ? SDGNode::Kind::Predicate
                               : SDGNode::Kind::Stmt,
                           R);
      X->S = N->getStmt();
      CfgToSdg[N] = X;
      StmtNodes[N->getStmt()] = X;
      break;
    }
    }
  }

  // --- Actual vertices per call site.
  std::map<const Stmt *, std::vector<SDGCallRecord *>> CallsByStmt;
  for (const CallSite &CS : CG->callSitesIn(R)) {
    if (!CS.Callee)
      continue;
    auto Rec = std::make_unique<SDGCallRecord>();
    Rec->Site = CS;
    Rec->CallVertex = StmtNodes[CS.AtStmt];
    assert(Rec->CallVertex && "call site statement has no vertex");
    const RoutineEffects &E = SEA->effects(CS.Callee);
    const auto &Params = CS.Callee->getParams();
    const auto &Args = CS.args();
    for (size_t I = 0, N = std::min(Params.size(), Args.size()); I != N;
         ++I) {
      SDGNode *AI = newNode(SDGNode::Kind::ActualIn, R);
      AI->S = CS.AtStmt;
      AI->ArgIndex = static_cast<int>(I);
      AI->Call = Rec.get();
      if (Params[I]->isReference())
        AI->Var = varArgDecl(Args[I].get());
      Rec->ActualIns.push_back(AI);
      addEdge(Rec->CallVertex, AI, SDGEdgeKind::Control);
      if (Params[I]->isReference()) {
        SDGNode *AO = newNode(SDGNode::Kind::ActualOut, R);
        AO->S = CS.AtStmt;
        AO->ArgIndex = static_cast<int>(I);
        AO->Var = varArgDecl(Args[I].get());
        AO->Call = Rec.get();
        Rec->ActualOuts.push_back(AO);
        addEdge(Rec->CallVertex, AO, SDGEdgeKind::Control);
      }
    }
    for (const VarDecl *Gl : E.GRef) {
      SDGNode *AI = newNode(SDGNode::Kind::ActualIn, R);
      AI->S = CS.AtStmt;
      AI->Var = Gl;
      AI->Call = Rec.get();
      Rec->ActualIns.push_back(AI);
      addEdge(Rec->CallVertex, AI, SDGEdgeKind::Control);
    }
    for (const VarDecl *Gl : E.GMod) {
      SDGNode *AO = newNode(SDGNode::Kind::ActualOut, R);
      AO->S = CS.AtStmt;
      AO->Var = Gl;
      AO->Call = Rec.get();
      Rec->ActualOuts.push_back(AO);
      addEdge(Rec->CallVertex, AO, SDGEdgeKind::Control);
    }
    if (CS.Callee->isFunction() && CS.CallExpr) {
      SDGNode *AO = newNode(SDGNode::Kind::ActualOut, R);
      AO->S = CS.AtStmt;
      AO->Result = true;
      AO->Call = Rec.get();
      Rec->ActualOuts.push_back(AO);
      addEdge(Rec->CallVertex, AO, SDGEdgeKind::Control);
    }
    CallsByStmt[CS.AtStmt].push_back(Rec.get());
    Calls.push_back(std::move(Rec));
  }

  // --- Control-dependence edges.
  for (const auto &NPtr : G.nodes()) {
    const CFGNode *N = NPtr.get();
    SDGNode *X = CfgToSdg.count(N) ? CfgToSdg[N] : nullptr;
    if (!X || X->getKind() == SDGNode::Kind::Entry)
      continue;
    for (const CFGNode *C : CD.controllersOf(N)) {
      auto It = CfgToSdg.find(C);
      if (It != CfgToSdg.end())
        addEdge(It->second, X, SDGEdgeKind::Control);
    }
  }

  // --- Flow-dependence edges.
  auto addUseEdges = [&](SDGNode *UseNode, const VarDecl *V,
                         const CFGNode *Anchor) {
    for (const CFGNode *D : RD.reachingIn(Anchor, V))
      for (SDGNode *DefV : defVerticesAt(D, V))
        addEdge(DefV, UseNode, SDGEdgeKind::Flow);
  };

  for (const auto &NPtr : G.nodes()) {
    const CFGNode *N = NPtr.get();
    auto It = CfgToSdg.find(N);
    if (It == CfgToSdg.end())
      continue;
    SDGNode *X = It->second;
    if (X->getKind() == SDGNode::Kind::Entry)
      continue;
    for (const VarDecl *V : N->access().Uses)
      addUseEdges(X, V, N);
  }

  // Actual-in uses and result flow.
  for (const auto &RecPtr : Calls) {
    SDGCallRecord *Rec = RecPtr.get();
    if (Rec->Site.Caller != R)
      continue;
    const CFGNode *Anchor = G.nodeFor(Rec->Site.AtStmt);
    assert(Anchor && "call site has no CFG node");
    const auto &Args = Rec->Site.args();
    for (SDGNode *AI : Rec->ActualIns) {
      if (AI->getArgIndex() >= 0 && !AI->getVar()) {
        // Value argument: uses every variable in the argument expression.
        forEachExprIn(const_cast<Expr *>(
                          Args[static_cast<size_t>(AI->getArgIndex())].get()),
                      [&](Expr *Sub) {
                        if (auto *VR = dyn_cast<VarRefExpr>(Sub))
                          addUseEdges(AI, VR->getDecl(), Anchor);
                      });
      } else if (AI->getVar()) {
        addUseEdges(AI, AI->getVar(), Anchor);
      }
    }
    // A function call's result flows into the innermost consumer: another
    // call's argument when nested, otherwise the site's statement vertex.
    if (SDGNode *ResultAO = Rec->actualOutForResult()) {
      SDGNode *Consumer = Rec->CallVertex;
      for (const auto &OtherPtr : Calls) {
        SDGCallRecord *Other = OtherPtr.get();
        if (Other == Rec || Other->Site.AtStmt != Rec->Site.AtStmt)
          continue;
        const auto &OtherArgs = Other->Site.args();
        for (size_t I = 0; I != OtherArgs.size(); ++I) {
          bool Contains = false;
          forEachExprIn(const_cast<Expr *>(OtherArgs[I].get()),
                        [&](Expr *Sub) {
                          if (Sub == Rec->Site.CallExpr)
                            Contains = true;
                        });
          if (Contains) {
            if (SDGNode *AI = Other->actualInForArg(static_cast<int>(I)))
              Consumer = AI;
          }
        }
      }
      addEdge(ResultAO, Consumer, SDGEdgeKind::Flow);
    }
  }
}

std::vector<SDGNode *> SDG::defVerticesAt(const CFGNode *D,
                                          const VarDecl *V) const {
  std::vector<SDGNode *> Out;
  auto It = CfgToSdg.find(D);
  if (It == CfgToSdg.end())
    return Out;
  SDGNode *X = It->second;
  if (X->getKind() == SDGNode::Kind::FormalIn) {
    Out.push_back(X);
    return Out;
  }
  if (D->access().defs(V))
    Out.push_back(X);
  // Call-mediated definitions surface at actual-out vertices.
  for (const auto &RecPtr : Calls) {
    const SDGCallRecord *Rec = RecPtr.get();
    if (Rec->Site.AtStmt != D->getStmt())
      continue;
    for (SDGNode *AO : Rec->ActualOuts)
      if (!AO->isResult() && AO->getVar() == V)
        Out.push_back(AO);
  }
  return Out;
}

void SDG::buildCallLinkage() {
  for (const auto &RecPtr : Calls) {
    SDGCallRecord *Rec = RecPtr.get();
    const RoutineDecl *Callee = Rec->Site.Callee;
    CFG &CalleeCFG = *CFGs.at(Callee);
    addEdge(Rec->CallVertex, Entries.at(Callee), SDGEdgeKind::Call);

    const auto &Params = Callee->getParams();
    for (SDGNode *AI : Rec->ActualIns) {
      const CFGNode *FI = nullptr;
      if (AI->getArgIndex() >= 0)
        FI = CalleeCFG.formalInFor(
            Params[static_cast<size_t>(AI->getArgIndex())].get());
      else
        FI = CalleeCFG.formalInFor(AI->getVar());
      if (FI)
        addEdge(AI, CfgToSdg.at(FI), SDGEdgeKind::ParamIn);
    }
    for (SDGNode *AO : Rec->ActualOuts) {
      const CFGNode *FO = nullptr;
      if (AO->isResult())
        FO = CalleeCFG.resultFormalOut();
      else if (AO->getArgIndex() >= 0)
        FO = CalleeCFG.formalOutFor(
            Params[static_cast<size_t>(AO->getArgIndex())].get());
      else
        FO = CalleeCFG.formalOutFor(AO->getVar());
      if (FO)
        addEdge(CfgToSdg.at(FO), AO, SDGEdgeKind::ParamOut);
    }
  }
}

void SDG::computeSummaryEdges() {
  // Worklist of "path edges" (n, fo): vertex n reaches formal-out fo along
  // a realizable same-level path within fo's routine.
  using Pair = std::pair<SDGNode *, SDGNode *>;
  std::set<Pair> PathEdges;
  std::deque<Pair> Work;
  std::map<SDGNode *, std::vector<SDGNode *>> FosReachedFrom;
  std::map<const RoutineDecl *, std::vector<SDGCallRecord *>> CallsTo;
  for (const auto &RecPtr : Calls)
    CallsTo[RecPtr->Site.Callee].push_back(RecPtr.get());

  auto addPair = [&](SDGNode *N, SDGNode *Fo) {
    if (PathEdges.insert({N, Fo}).second) {
      Work.push_back({N, Fo});
      FosReachedFrom[N].push_back(Fo);
    }
  };

  for (const auto &NPtr : Nodes)
    if (NPtr->getKind() == SDGNode::Kind::FormalOut)
      addPair(NPtr.get(), NPtr.get());

  while (!Work.empty()) {
    auto [N, Fo] = Work.front();
    Work.pop_front();

    if (N->getKind() == SDGNode::Kind::FormalIn) {
      // A same-level path fi ->* fo induces summary edges ai -> ao at every
      // call to this routine.
      for (SDGCallRecord *Rec : CallsTo[N->getRoutine()]) {
        SDGNode *AI = N->getArgIndex() >= 0
                          ? Rec->actualInForArg(N->getArgIndex())
                          : Rec->actualInForGlobal(N->getVar());
        SDGNode *AO = Fo->isResult() ? Rec->actualOutForResult()
                      : Fo->getArgIndex() >= 0
                          ? Rec->actualOutForArg(Fo->getArgIndex())
                          : Rec->actualOutForGlobal(Fo->getVar());
        if (!AI || !AO || hasEdge(AI, AO, SDGEdgeKind::Summary))
          continue;
        addEdge(AI, AO, SDGEdgeKind::Summary);
        // The new edge extends any path already known to leave AO.
        for (SDGNode *Fo2 : FosReachedFrom[AO])
          addPair(AI, Fo2);
      }
    }

    for (const SDGNode::Edge &E : N->ins()) {
      if (E.K != SDGEdgeKind::Control && E.K != SDGEdgeKind::Flow &&
          E.K != SDGEdgeKind::Summary)
        continue;
      if (E.N->getRoutine() == Fo->getRoutine())
        addPair(E.N, Fo);
    }
  }
}

//===----------------------------------------------------------------------===//
// Lookup and rendering
//===----------------------------------------------------------------------===//

SDGNode *SDG::entryOf(const RoutineDecl *R) const {
  auto It = Entries.find(R);
  return It == Entries.end() ? nullptr : It->second;
}

SDGNode *SDG::stmtNode(const Stmt *S) const {
  auto It = StmtNodes.find(S);
  return It == StmtNodes.end() ? nullptr : It->second;
}

SDGNode *SDG::formalOut(const RoutineDecl *R, const std::string &Name) const {
  for (const auto &N : Nodes)
    if (N->getKind() == SDGNode::Kind::FormalOut && N->getRoutine() == R &&
        N->getVar() && N->getVar()->getName() == Name)
      return N.get();
  return nullptr;
}

SDGNode *SDG::formalOutResult(const RoutineDecl *R) const {
  for (const auto &N : Nodes)
    if (N->getKind() == SDGNode::Kind::FormalOut && N->getRoutine() == R &&
        N->isResult())
      return N.get();
  return nullptr;
}

SDGNode *SDG::formalIn(const RoutineDecl *R, const std::string &Name) const {
  for (const auto &N : Nodes)
    if (N->getKind() == SDGNode::Kind::FormalIn && N->getRoutine() == R &&
        N->getVar() && N->getVar()->getName() == Name)
      return N.get();
  return nullptr;
}

std::string SDG::str() const {
  std::string Out;
  for (const auto &N : Nodes) {
    Out += std::to_string(N->getId()) + ": " + N->label() + "\n";
    for (const SDGNode::Edge &E : N->outs()) {
      const char *K = "";
      switch (E.K) {
      case SDGEdgeKind::Control:
        K = "ctrl";
        break;
      case SDGEdgeKind::Flow:
        K = "flow";
        break;
      case SDGEdgeKind::Call:
        K = "call";
        break;
      case SDGEdgeKind::ParamIn:
        K = "pin";
        break;
      case SDGEdgeKind::ParamOut:
        K = "pout";
        break;
      case SDGEdgeKind::Summary:
        K = "sum";
        break;
      }
      Out += "  -" + std::string(K) + "-> " + std::to_string(E.N->getId()) +
             "\n";
    }
  }
  return Out;
}

static std::string escapeDotLabel(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string SDG::dot() const {
  std::string Out = "digraph sdg {\n  node [shape=box, "
                    "fontname=\"monospace\", fontsize=10];\n";
  // Cluster vertices per routine.
  std::map<const RoutineDecl *, std::vector<const SDGNode *>> ByRoutine;
  for (const auto &N : Nodes)
    ByRoutine[N->getRoutine()].push_back(N.get());
  unsigned Cluster = 0;
  for (const auto &[R, Members] : ByRoutine) {
    Out += "  subgraph cluster_" + std::to_string(Cluster++) + " {\n";
    Out += "    label=\"" + escapeDotLabel(R->qualifiedName()) + "\";\n";
    for (const SDGNode *N : Members)
      Out += "    v" + std::to_string(N->getId()) + " [label=\"" +
             escapeDotLabel(N->label()) + "\"];\n";
    Out += "  }\n";
  }
  for (const auto &N : Nodes)
    for (const SDGNode::Edge &E : N->outs()) {
      Out += "  v" + std::to_string(N->getId()) + " -> v" +
             std::to_string(E.N->getId());
      switch (E.K) {
      case SDGEdgeKind::Control:
        break;
      case SDGEdgeKind::Flow:
        Out += " [style=dashed]";
        break;
      case SDGEdgeKind::Call:
      case SDGEdgeKind::ParamIn:
      case SDGEdgeKind::ParamOut:
        Out += " [style=bold, color=blue]";
        break;
      case SDGEdgeKind::Summary:
        Out += " [style=dotted, color=red]";
        break;
      }
      Out += ";\n";
    }
  Out += "}\n";
  return Out;
}
