//===- Value.h - Runtime values ---------------------------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values of the Pascal interpreter. Every value optionally carries
/// a *dependence set*: the ids of the execution-tree nodes (unit executions)
/// whose results flowed into it. This is the substrate of the dynamic
/// slicer (paper Section 7 / [Kamkar-91b]).
///
//===----------------------------------------------------------------------===//

#ifndef GADT_INTERP_VALUE_H
#define GADT_INTERP_VALUE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gadt {
namespace interp {

/// A sorted, duplicate-free set of execution-tree node ids.
///
/// Dependence sets are copied every time a value flows — into an expression
/// result, across a unit boundary, into a control stack — so representation
/// cost dominates TrackDeps runs. Two-level storage keeps both directions
/// cheap:
///
///  - up to InlineCap ids live inline (no allocation at all; the common
///    case for short def-use chains), and
///  - larger sets are a shared heap vector. Copying a DepSet is then a
///    refcount bump, mergeWith can adopt the other side's handle outright
///    when one set subsumes the other, and identical large sets are
///    hash-consed into one allocation per thread (see Value.cpp).
///
/// Mutation is copy-on-write with one exception: when this set is the
/// *sole* owner of its heap vector (use_count == 1 — notably never true
/// for interned vectors, since the intern table itself holds a reference),
/// a disjoint merge extends the vector in place instead of reallocating.
/// Sets under construction are confined to the executing thread, so the
/// uniqueness check is race-free; once a handle has been shared — into the
/// execution tree, the slicer, another value — the count exceeds one and
/// the storage is never edited again. The intern table is thread-local,
/// which keeps BatchRunner threads from contending (or racing) on it.
class DepSet {
public:
  DepSet() = default;

  bool empty() const { return !Heap && Count == 0; }
  size_t size() const { return Heap ? Heap->size() : Count; }
  /// The ids in ascending order. Returns by value: inline sets have no
  /// vector to reference, and callers are tests and diagnostics.
  std::vector<uint32_t> ids() const {
    return std::vector<uint32_t>(begin(), begin() + size());
  }

  bool contains(uint32_t Id) const;
  void insert(uint32_t Id);
  void mergeWith(const DepSet &Other);

  /// Empties the set: drops the heap handle (refcount decrement at most)
  /// or just zeroes the inline count.
  void clear() {
    Heap.reset();
    Count = 0;
  }

  friend bool operator==(const DepSet &A, const DepSet &B) {
    size_t N = A.size();
    if (N != B.size())
      return false;
    if (A.Heap && A.Heap == B.Heap)
      return true;
    const uint32_t *PA = A.begin(), *PB = B.begin();
    for (size_t I = 0; I != N; ++I)
      if (PA[I] != PB[I])
        return false;
    return true;
  }

private:
  static constexpr size_t InlineCap = 4;

  const uint32_t *begin() const { return Heap ? Heap->data() : Small; }

  /// Replaces the contents with \p V (sorted, unique), choosing inline or
  /// interned heap storage by size. Takes the vector by value so the heap
  /// path moves instead of copying.
  void adopt(std::vector<uint32_t> V);

  uint32_t Small[InlineCap] = {};
  uint32_t Count = 0; // meaningful only when !Heap
  /// Logically immutable once shared; see the class comment for the
  /// unique-owner in-place extension.
  std::shared_ptr<std::vector<uint32_t>> Heap;
};

/// An array value: inclusive bounds plus elements. Pascal arrays have value
/// semantics (copied on assignment and on value-parameter passing).
struct ArrayVal {
  int64_t Lo = 1;
  int64_t Hi = 0;
  std::vector<int64_t> Elems;

  int64_t size() const { return Hi - Lo + 1; }
  bool inBounds(int64_t Index) const { return Index >= Lo && Index <= Hi; }
  int64_t &at(int64_t Index) { return Elems[static_cast<size_t>(Index - Lo)]; }
  int64_t at(int64_t Index) const {
    return Elems[static_cast<size_t>(Index - Lo)];
  }

  friend bool operator==(const ArrayVal &A, const ArrayVal &B) {
    return A.Lo == B.Lo && A.Hi == B.Hi && A.Elems == B.Elems;
  }
};

/// A runtime value: unset, integer, boolean, array or string.
class Value {
public:
  enum class Kind : uint8_t { Unset, Int, Bool, Array, Str };

  Value() = default;
  static Value makeInt(int64_t V) {
    Value Val;
    Val.K = Kind::Int;
    Val.Int = V;
    return Val;
  }
  static Value makeBool(bool V) {
    Value Val;
    Val.K = Kind::Bool;
    Val.Bool = V;
    return Val;
  }
  static Value makeArray(ArrayVal V) {
    Value Val;
    Val.K = Kind::Array;
    Val.Array = std::move(V);
    return Val;
  }
  static Value makeStr(std::string V) {
    Value Val;
    Val.K = Kind::Str;
    Val.Str = std::move(V);
    return Val;
  }

  /// In-place scalar mutation for register reuse: releases any array/string
  /// payload left behind by a previous occupant but keeps the DepSet (the
  /// caller assigns dependences explicitly when tracking is on).
  void setInt(int64_t V) {
    if (K == Kind::Array)
      Array = ArrayVal();
    else if (K == Kind::Str)
      Str.clear();
    K = Kind::Int;
    Int = V;
  }
  void setBool(bool V) {
    if (K == Kind::Array)
      Array = ArrayVal();
    else if (K == Kind::Str)
      Str.clear();
    K = Kind::Bool;
    Bool = V;
  }

  /// Returns the value to the unset state, releasing every heap-owning
  /// payload (array/string storage, shared dependence vectors). Equivalent
  /// to `*this = Value()` but without constructing and destroying a
  /// temporary — this runs once per cell returned to the interpreter's
  /// pool, where scalars with inline deps (the common case) pay nothing.
  void poolReset() {
    if (K == Kind::Array)
      Array = ArrayVal();
    else if (K == Kind::Str)
      Str = std::string();
    K = Kind::Unset;
    Deps.clear();
  }

  Kind kind() const { return K; }
  bool isUnset() const { return K == Kind::Unset; }
  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return K == Kind::Bool; }
  bool isArray() const { return K == Kind::Array; }
  bool isStr() const { return K == Kind::Str; }

  int64_t asInt() const { return Int; }
  bool asBool() const { return Bool; }
  const ArrayVal &asArray() const { return Array; }
  ArrayVal &asArray() { return Array; }
  const std::string &asStr() const { return Str; }

  DepSet &deps() { return Deps; }
  const DepSet &deps() const { return Deps; }

  /// Structural equality; dependence sets do not participate.
  bool equals(const Value &Other) const;

  /// Renders in the paper's notation: integers as-is, booleans as
  /// true/false, arrays as "[1, 2]".
  std::string str() const;

private:
  Kind K = Kind::Unset;
  int64_t Int = 0;
  bool Bool = false;
  ArrayVal Array;
  std::string Str;
  DepSet Deps;
};

} // namespace interp
} // namespace gadt

#endif // GADT_INTERP_VALUE_H
