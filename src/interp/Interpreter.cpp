//===- Interpreter.cpp - Tracing Pascal interpreter -----------------------===//

#include "interp/Interpreter.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Casting.h"

#include <algorithm>

using namespace gadt;
using namespace gadt::interp;
using namespace gadt::pascal;

TraceListener::~TraceListener() = default;

Value gadt::interp::defaultValue(const Type *Ty) {
  if (!Ty)
    return Value();
  switch (Ty->getKind()) {
  case Type::Kind::Integer:
    return Value::makeInt(0);
  case Type::Kind::Boolean:
    return Value::makeBool(false);
  case Type::Kind::String:
    return Value::makeStr("");
  case Type::Kind::Array: {
    ArrayVal A;
    A.Lo = Ty->getLowerBound();
    A.Hi = Ty->getUpperBound();
    A.Elems.assign(static_cast<size_t>(A.size()), 0);
    return Value::makeArray(std::move(A));
  }
  }
  return Value();
}

namespace {

/// Index of a cell in the interpreter's arena. Cells are pooled: handles of
/// dead activations return to a free list and are reissued with a fresh
/// serial, so a handle is only meaningful while its cell is live — which
/// the watermark discipline guarantees for every handle the interpreter
/// retains (see observeRead/freeActivationCells).
using CellRef = uint32_t;
constexpr CellRef NoCell = UINT32_MAX;

/// A storage location. Var parameters alias cells across activations, so
/// cells live in a shared arena and are identified by a serial number that
/// orders them by creation time (used to decide locality relative to a
/// unit). ReadUpTo/WriteUpTo are observation stamps: every live unit frame
/// whose FrameId is at or below the stamp has already recorded this cell
/// (or the cell is local to it), so observation walks touch each cell a
/// constant number of times per event instead of once per active frame.
struct Cell {
  Value V;
  uint64_t Serial = 0;
  uint64_t ReadUpTo = 0;
  uint64_t WriteUpTo = 0;
  /// Declaration the cell was created for (naming fallback).
  const VarDecl *Decl = nullptr;
};

/// One routine activation: a flat frame of cell handles indexed by the
/// slots Sema assigned (params, then locals, then the function result).
struct Activation {
  const RoutineDecl *R = nullptr;
  Activation *StaticLink = nullptr;
  /// Cells with Serial >= Watermark were created by (and die with) this
  /// activation; below it they are aliased from the caller.
  uint64_t Watermark = 0;
  std::vector<CellRef> Slots;
  /// Stack of *merged* control-dependence sets; back() is the set of deps
  /// governing any store performed right now.
  std::vector<DepSet> CtrlStack;

  const DepSet *activeCtrlDeps() const {
    return CtrlStack.empty() ? nullptr : &CtrlStack.back();
  }
};

/// Dynamic input/output observation for one executing unit.
struct UnitFrame {
  uint32_t NodeId = 0;
  UnitKind Kind = UnitKind::Call;
  /// Cells created at or after this serial are local to the unit.
  uint64_t Watermark = 0;
  /// Monotonic push id; cell stamps reference it.
  uint64_t FrameId = 0;
  Activation *Act = nullptr;
  std::vector<std::pair<CellRef, Value>> FirstReads;
  std::vector<CellRef> Writes;
};

} // namespace

struct Interpreter::Impl {
  const Program &Prog;
  InterpOptions Opts;
  TraceListener *Listener = nullptr;
  std::vector<int64_t> Input;

  // Per-run state.
  bool Failed = false;
  RuntimeError Error;
  std::string Output;
  uint64_t Steps = 0;
  uint32_t NodeCounter = 0;
  uint64_t CellSerial = 0;
  uint64_t FrameCounter = 0;
  uint64_t PooledReuses = 0;
  size_t InputPos = 0;
  unsigned CallDepth = 0;
  std::vector<Cell> Arena;
  std::vector<CellRef> FreeList;
  std::vector<UnitFrame> Frames;
  struct {
    bool Active = false;
    int Label = 0;
    Activation *Target = nullptr;
    SourceLoc Loc;
  } Goto;

  Impl(const Program &Prog, InterpOptions Opts) : Prog(Prog), Opts(Opts) {}

  void reset() {
    Failed = false;
    Error = RuntimeError();
    Output.clear();
    Steps = 0;
    NodeCounter = 0;
    CellSerial = 0;
    FrameCounter = 0;
    InputPos = 0;
    CallDepth = 0;
    Arena.clear();
    FreeList.clear();
    Frames.clear();
    Goto.Active = false;
  }

  /// Publishes per-run pool statistics; called at the end of each entry
  /// point so hot paths pay plain increments, not atomics.
  void flushPoolStats() {
    if (PooledReuses == 0)
      return;
    static obs::Counter &Pooled =
        obs::Registry::global().counter("interp.cells.pooled");
    Pooled.add(PooledReuses);
    PooledReuses = 0;
  }

  void fail(SourceLoc Loc, std::string Msg) {
    if (Failed)
      return;
    Failed = true;
    Error.Loc = Loc;
    Error.Message = std::move(Msg);
  }

  CellRef newCell(const VarDecl *Decl, Value V) {
    CellRef H;
    if (!FreeList.empty()) {
      H = FreeList.back();
      FreeList.pop_back();
      ++PooledReuses;
    } else {
      H = static_cast<CellRef>(Arena.size());
      Arena.emplace_back();
    }
    Cell &C = Arena[H];
    C.V = std::move(V);
    C.Serial = ++CellSerial;
    C.ReadUpTo = 0;
    C.WriteUpTo = 0;
    C.Decl = Decl;
    return H;
  }

  /// Returns the cells this activation created to the pool. Safe because no
  /// retained handle can reach them afterwards: enclosing unit frames only
  /// record cells below their watermark, which is at or below this
  /// activation's, and the activation's own frames are popped first.
  void freeActivationCells(Activation &Act) {
    for (CellRef H : Act.Slots) {
      if (H == NoCell)
        continue;
      Cell &C = Arena[H];
      if (C.Serial < Act.Watermark)
        continue; // aliased from the caller
      C.V = Value();
      FreeList.push_back(H);
    }
  }

  /// Initial value of a freshly declared variable: in strict mode scalars
  /// stay unset so use-before-assignment is detectable.
  Value initialValue(const Type *Ty) {
    if (Opts.DetectUninitialized && Ty && !Ty->isArray())
      return Value();
    return defaultValue(Ty);
  }

  //===--------------------------------------------------------------------===//
  // Cell access with unit-frame observation
  //===--------------------------------------------------------------------===//

  // Watermarks are non-decreasing with frame-stack depth, so the frames a
  // cell is non-local to form a suffix of the stack; so do the frames above
  // a cell's stamp. Observation therefore walks from the top of the stack
  // and stops at the first frame that is already covered — each event costs
  // O(frames actually recording), not O(live frames).

  /// Records a read of \p H in every active unit frame to which the cell is
  /// non-local and not already read or written. Call *before* using the
  /// value.
  void observeRead(CellRef H) {
    if (Frames.empty())
      return;
    Cell &C = Arena[H];
    uint64_t Stamp = std::max(C.ReadUpTo, C.WriteUpTo);
    for (size_t I = Frames.size(); I-- > 0;) {
      UnitFrame &F = Frames[I];
      if (F.FrameId <= Stamp || C.Serial >= F.Watermark)
        break;
      F.FirstReads.push_back({H, C.V});
    }
    if (C.ReadUpTo < Frames.back().FrameId)
      C.ReadUpTo = Frames.back().FrameId;
  }

  /// Records a write of \p H in every active unit frame to which the cell
  /// is non-local.
  void observeWrite(CellRef H) {
    if (Frames.empty())
      return;
    Cell &C = Arena[H];
    for (size_t I = Frames.size(); I-- > 0;) {
      UnitFrame &F = Frames[I];
      if (F.FrameId <= C.WriteUpTo || C.Serial >= F.Watermark)
        break;
      F.Writes.push_back(H);
    }
    if (C.WriteUpTo < Frames.back().FrameId)
      C.WriteUpTo = Frames.back().FrameId;
  }

  /// Whether \p H was write-recorded in \p F (valid right after \p F was
  /// popped, before any new frame is pushed).
  bool writtenInFrame(const UnitFrame &F, CellRef H) const {
    return Arena[H].WriteUpTo >= F.FrameId && Arena[H].Serial < F.Watermark;
  }

  /// Full store: observes the write and applies active control deps.
  void storeCell(Activation &A, CellRef H, Value V) {
    observeWrite(H);
    if (Opts.TrackDeps)
      if (const DepSet *Ctrl = A.activeCtrlDeps())
        V.deps().mergeWith(*Ctrl);
    Arena[H].V = std::move(V);
  }

  //===--------------------------------------------------------------------===//
  // Name / cell resolution
  //===--------------------------------------------------------------------===//

  CellRef getCell(Activation &A, const VarDecl *D, SourceLoc Loc) {
    Activation *Cur = &A;
    for (uint32_t Hops = Cur->R->getStorageDepth() - D->getDepth();
         Hops && Cur; --Hops)
      Cur = Cur->StaticLink;
    if (Cur && D->getSlot() < Cur->Slots.size()) {
      CellRef H = Cur->Slots[D->getSlot()];
      if (H != NoCell)
        return H;
    }
    fail(Loc, "internal: no storage for variable '" + D->getName() + "'");
    return NoCell;
  }

  //===--------------------------------------------------------------------===//
  // Expression evaluation
  //===--------------------------------------------------------------------===//

  Value evalExpr(Activation &A, const Expr *E) {
    if (Failed)
      return Value();
    switch (E->getKind()) {
    case Expr::Kind::IntLiteral:
      return Value::makeInt(cast<IntLiteralExpr>(E)->getValue());
    case Expr::Kind::BoolLiteral:
      return Value::makeBool(cast<BoolLiteralExpr>(E)->getValue());
    case Expr::Kind::StringLiteral:
      return Value::makeStr(cast<StringLiteralExpr>(E)->getValue());

    case Expr::Kind::ArrayLiteral: {
      const auto *AL = cast<ArrayLiteralExpr>(E);
      ArrayVal Arr;
      Arr.Lo = 1;
      Arr.Hi = static_cast<int64_t>(AL->getElements().size());
      DepSet Deps;
      for (const ExprPtr &Elem : AL->getElements()) {
        Value V = evalExpr(A, Elem.get());
        if (Failed)
          return Value();
        Arr.Elems.push_back(V.asInt());
        if (Opts.TrackDeps)
          Deps.mergeWith(V.deps());
      }
      Value Out = Value::makeArray(std::move(Arr));
      Out.deps() = std::move(Deps);
      return Out;
    }

    case Expr::Kind::VarRef: {
      const auto *VR = cast<VarRefExpr>(E);
      CellRef C = getCell(A, VR->getDecl(), VR->getLoc());
      if (C == NoCell)
        return Value();
      if (Opts.DetectUninitialized && Arena[C].V.isUnset()) {
        fail(VR->getLoc(), "variable '" + VR->getName() +
                               "' is used before it is assigned");
        return Value();
      }
      observeRead(C);
      return Arena[C].V;
    }

    case Expr::Kind::Index: {
      const auto *IE = cast<IndexExpr>(E);
      const auto *BaseRef = cast<VarRefExpr>(IE->getBase());
      CellRef C = getCell(A, BaseRef->getDecl(), BaseRef->getLoc());
      if (C == NoCell)
        return Value();
      Value Idx = evalExpr(A, IE->getIndex());
      if (Failed)
        return Value();
      observeRead(C);
      const ArrayVal &Arr = Arena[C].V.asArray();
      if (!Arr.inBounds(Idx.asInt())) {
        fail(IE->getLoc(), "array index " + std::to_string(Idx.asInt()) +
                               " out of bounds [" + std::to_string(Arr.Lo) +
                               ".." + std::to_string(Arr.Hi) + "] for '" +
                               BaseRef->getName() + "'");
        return Value();
      }
      Value Out = Value::makeInt(Arr.at(Idx.asInt()));
      if (Opts.TrackDeps) {
        Out.deps().mergeWith(Arena[C].V.deps());
        Out.deps().mergeWith(Idx.deps());
      }
      return Out;
    }

    case Expr::Kind::Call: {
      const auto *CE = cast<CallExpr>(E);
      return performCall(A, CE->getCallee(), CE->getArgs(), nullptr, CE,
                         CE->getLoc());
    }

    case Expr::Kind::Unary: {
      const auto *UE = cast<UnaryExpr>(E);
      Value Op = evalExpr(A, UE->getOperand());
      if (Failed)
        return Value();
      Value Out = UE->getOp() == UnaryOp::Neg ? Value::makeInt(-Op.asInt())
                                              : Value::makeBool(!Op.asBool());
      if (Opts.TrackDeps)
        Out.deps() = Op.deps();
      return Out;
    }

    case Expr::Kind::Binary: {
      const auto *BE = cast<BinaryExpr>(E);
      Value L = evalExpr(A, BE->getLHS());
      if (Failed)
        return Value();
      Value R = evalExpr(A, BE->getRHS());
      if (Failed)
        return Value();
      Value Out = applyBinary(BE, L, R);
      if (Failed)
        return Value();
      if (Opts.TrackDeps) {
        Out.deps().mergeWith(L.deps());
        Out.deps().mergeWith(R.deps());
      }
      return Out;
    }
    }
    return Value();
  }

  Value applyBinary(const BinaryExpr *BE, const Value &L, const Value &R) {
    switch (BE->getOp()) {
    case BinaryOp::Add:
      return Value::makeInt(L.asInt() + R.asInt());
    case BinaryOp::Sub:
      return Value::makeInt(L.asInt() - R.asInt());
    case BinaryOp::Mul:
      return Value::makeInt(L.asInt() * R.asInt());
    case BinaryOp::Div:
      if (R.asInt() == 0) {
        fail(BE->getLoc(), "division by zero");
        return Value();
      }
      return Value::makeInt(L.asInt() / R.asInt());
    case BinaryOp::Mod:
      if (R.asInt() == 0) {
        fail(BE->getLoc(), "modulo by zero");
        return Value();
      }
      return Value::makeInt(L.asInt() % R.asInt());
    case BinaryOp::Eq:
      return Value::makeBool(L.isBool() ? L.asBool() == R.asBool()
                                        : L.asInt() == R.asInt());
    case BinaryOp::Ne:
      return Value::makeBool(L.isBool() ? L.asBool() != R.asBool()
                                        : L.asInt() != R.asInt());
    case BinaryOp::Lt:
      return Value::makeBool(L.asInt() < R.asInt());
    case BinaryOp::Le:
      return Value::makeBool(L.asInt() <= R.asInt());
    case BinaryOp::Gt:
      return Value::makeBool(L.asInt() > R.asInt());
    case BinaryOp::Ge:
      return Value::makeBool(L.asInt() >= R.asInt());
    case BinaryOp::And:
      return Value::makeBool(L.asBool() && R.asBool());
    case BinaryOp::Or:
      return Value::makeBool(L.asBool() || R.asBool());
    }
    return Value();
  }

  //===--------------------------------------------------------------------===//
  // Calls
  //===--------------------------------------------------------------------===//

  /// Finds the static link for a call to \p Callee made from \p Caller.
  Activation *findStaticLink(Activation &Caller, const RoutineDecl *Callee) {
    for (Activation *Cur = &Caller; Cur; Cur = Cur->StaticLink)
      if (Cur->R == Callee->getParent())
        return Cur;
    // Calling an enclosing routine recursively: its parent's activation is
    // further up; calling the program routine has no static parent.
    return nullptr;
  }

  /// The parameter declaration whose frame slot holds \p H, or null. When
  /// two reference parameters alias one cell, the last one wins (matching
  /// the map-based attribution this replaced).
  const VarDecl *paramOfCell(const Activation &Act, const RoutineDecl *Callee,
                             CellRef H) const {
    const VarDecl *Found = nullptr;
    size_t NumParams = Callee->getParams().size();
    for (size_t I = 0; I != NumParams; ++I)
      if (Act.Slots[I] == H)
        Found = Callee->getParams()[I].get();
    return Found;
  }

  /// Shared tail of performCall/callRoutine: raises unit events, executes
  /// the body, and collects input/output bindings.
  ///
  /// \p EntryInputs carries bindings for value/in parameters (captured at
  /// entry — only when bindings are wanted). \p OutputsOut, when non-null,
  /// receives the output bindings even without a listener (callRoutine
  /// needs them); otherwise bindings are only assembled for the listener.
  /// Dependence side effects (output deps merged into cell values and the
  /// function result) happen regardless.
  void runPreparedCall(Activation &Act, const RoutineDecl *Callee,
                       std::vector<Binding> EntryInputs,
                       const Stmt *CallStmt, const Expr *CallExpr,
                       SourceLoc Loc, Activation *Caller,
                       std::vector<Binding> *OutputsOut, Value *Result,
                       uint64_t Watermark) {
    uint32_t NodeId = ++NodeCounter;
    if (Listener) {
      UnitStart Start;
      Start.NodeId = NodeId;
      Start.Kind = UnitKind::Call;
      Start.Name = Callee->getName();
      Start.Routine = Callee;
      Start.CallStmt = CallStmt;
      Start.CallExpr = CallExpr;
      Start.Loc = Loc;
      Listener->enterUnit(Start);
    }
    Frames.push_back(UnitFrame());
    UnitFrame &F = Frames.back();
    F.NodeId = NodeId;
    F.Kind = UnitKind::Call;
    F.Watermark = Watermark;
    F.FrameId = ++FrameCounter;
    F.Act = &Act;
    size_t FrameIndex = Frames.size() - 1;

    ++CallDepth;
    if (Callee->getBody())
      execStmt(Act, Callee->getBody());
    --CallDepth;

    // A non-local goto targeting *this* activation that was not caught at
    // any compound level means a jump into a structured statement.
    if (Goto.Active && Goto.Target == &Act) {
      fail(Goto.Loc,
           "goto " + std::to_string(Goto.Label) +
               " jumps into a structured statement (not supported)");
      Goto.Active = false;
    }

    UnitFrame Frame = std::move(Frames[FrameIndex]);
    Frames.pop_back();

    bool WantOut = Listener || OutputsOut;

    // Assemble inputs: declared-order parameters first, then true global
    // side reads. Pure bookkeeping for the listener — skipped entirely
    // when no one is listening.
    std::vector<Binding> Inputs;
    if (Listener) {
      Inputs = std::move(EntryInputs);
      // var parameters that were read before being written.
      for (const auto &[C, V] : Frame.FirstReads)
        if (const VarDecl *P = paramOfCell(Act, Callee, C))
          Inputs.push_back({P->getName(), V});
      // Global (non-parameter) reads.
      for (const auto &[C, V] : Frame.FirstReads)
        if (!paramOfCell(Act, Callee, C))
          Inputs.push_back({nameOfCell(&Act, C), V});
    }

    // Outputs: var/out parameters in declared order, then global writes,
    // then the function result. The dependence merges are semantics (they
    // persist in the written cells), so they run with or without bindings.
    std::vector<Binding> Outputs;
    DepSet OutDeps;
    if (Opts.TrackDeps) {
      OutDeps.insert(NodeId);
      if (Caller)
        if (const DepSet *Ctrl = Caller->activeCtrlDeps())
          OutDeps.mergeWith(*Ctrl);
    }
    auto finalizeOut = [&](Value &V) {
      if (Opts.TrackDeps)
        V.deps().mergeWith(OutDeps);
    };
    for (const auto &P : Callee->getParams()) {
      if (!P->isReference())
        continue;
      CellRef C = Act.Slots[P->getSlot()];
      if (C == NoCell)
        continue;
      if (writtenInFrame(Frame, C) || P->getMode() == ParamMode::Out) {
        finalizeOut(Arena[C].V);
        if (WantOut)
          Outputs.push_back({P->getName(), Arena[C].V});
      }
    }
    for (CellRef C : Frame.Writes)
      if (!paramOfCell(Act, Callee, C)) {
        finalizeOut(Arena[C].V);
        if (WantOut)
          Outputs.push_back({nameOfCell(&Act, C), Arena[C].V});
      }
    if (Callee->isFunction()) {
      CellRef C = Act.Slots[Callee->getResultVar()->getSlot()];
      if (C != NoCell) {
        if (Opts.DetectUninitialized && Arena[C].V.isUnset() && !Failed)
          fail(Callee->getLoc(), "function '" + Callee->getName() +
                                     "' returns without assigning its "
                                     "result");
        finalizeOut(Arena[C].V);
        if (WantOut)
          Outputs.push_back({Callee->getName(), Arena[C].V});
        if (Result)
          *Result = std::move(Arena[C].V);
      }
    }

    if (Listener) {
      if (OutputsOut)
        Listener->exitUnit(NodeId, std::move(Inputs), Outputs);
      else
        Listener->exitUnit(NodeId, std::move(Inputs), std::move(Outputs));
    }
    if (OutputsOut)
      *OutputsOut = std::move(Outputs);
  }

  Value performCall(Activation &Caller, const RoutineDecl *Callee,
                    const std::vector<ExprPtr> &Args, const Stmt *CallStmt,
                    const Expr *CallExpr, SourceLoc Loc) {
    if (!Callee) {
      fail(Loc, "internal: unresolved call");
      return Value();
    }
    if (CallDepth >= Opts.MaxCallDepth) {
      fail(Loc, "call depth limit exceeded (runaway recursion in '" +
                    Callee->getName() + "')");
      return Value();
    }
    Activation Act;
    Act.R = Callee;
    Act.StaticLink = findStaticLink(Caller, Callee);

    // Bind parameters. Reference parameters alias the caller's cell; value
    // parameters are evaluated and copied. Evaluation happens in the
    // caller, so reads are charged to the caller's units.
    std::vector<Binding> EntryInputs;
    const auto &Params = Callee->getParams();
    std::vector<CellRef> RefCells(Params.size(), NoCell);
    std::vector<Value> ValueArgs(Params.size());
    for (size_t I = 0, N = Params.size(); I != N; ++I) {
      const VarDecl *P = Params[I].get();
      if (P->isReference()) {
        const auto *VR = cast<VarRefExpr>(Args[I].get());
        CellRef C = getCell(Caller, VR->getDecl(), VR->getLoc());
        if (C == NoCell)
          return Value();
        // The caller's cell stays non-local to the callee's frame, so the
        // frame observes whether the callee reads its pre-state.
        RefCells[I] = C;
      } else {
        Value V = evalExpr(Caller, Args[I].get());
        if (Failed)
          return Value();
        if (Listener)
          EntryInputs.push_back({P->getName(), V});
        ValueArgs[I] = std::move(V);
      }
    }
    // Cells created from here on are local to the callee's unit frame —
    // and owned by its activation (freed when the call returns).
    uint64_t Watermark = CellSerial + 1;
    Act.Watermark = Watermark;
    Act.Slots.resize(Callee->getNumSlots(), NoCell);
    for (size_t I = 0, N = Params.size(); I != N; ++I) {
      const VarDecl *P = Params[I].get();
      Act.Slots[P->getSlot()] =
          RefCells[I] != NoCell ? RefCells[I]
                                : newCell(P, std::move(ValueArgs[I]));
    }
    for (const auto &L : Callee->getLocals())
      Act.Slots[L->getSlot()] = newCell(L.get(), initialValue(L->getType()));
    if (Callee->isFunction()) {
      const VarDecl *RV = Callee->getResultVar();
      Act.Slots[RV->getSlot()] =
          newCell(RV, initialValue(Callee->getReturnType()));
    }

    Value Result;
    runPreparedCall(Act, Callee, std::move(EntryInputs), CallStmt, CallExpr,
                    Loc, &Caller, nullptr, &Result, Watermark);
    freeActivationCells(Act);
    return Result;
  }

  //===--------------------------------------------------------------------===//
  // Loop units
  //===--------------------------------------------------------------------===//

  /// Pushes a frame + listener event for a loop or iteration unit; returns
  /// the node id (0 when this unit kind is not traced).
  uint32_t enterLoopUnit(UnitKind Kind, const std::string &Name,
                         const Stmt *LoopStmt, uint32_t IterIndex,
                         SourceLoc Loc, Activation &A) {
    if (!Opts.TraceLoops)
      return 0;
    if (Kind == UnitKind::Iteration && !Opts.TraceIterations)
      return 0;
    uint32_t NodeId = ++NodeCounter;
    if (Listener) {
      UnitStart Start;
      Start.NodeId = NodeId;
      Start.Kind = Kind;
      Start.Name = Name;
      Start.LoopStmt = LoopStmt;
      Start.IterIndex = IterIndex;
      Start.Loc = Loc;
      Listener->enterUnit(Start);
    }
    Frames.push_back(UnitFrame());
    UnitFrame &F = Frames.back();
    F.NodeId = NodeId;
    F.Kind = Kind;
    F.Watermark = CellSerial + 1;
    F.FrameId = ++FrameCounter;
    F.Act = &A;
    return NodeId;
  }

  /// Returns the name under which \p H is visible from activation \p A
  /// (var parameters alias caller cells whose creation name differs from
  /// the local parameter name). Falls back to the creation name.
  std::string nameOfCell(Activation *A, CellRef H) {
    for (Activation *Cur = A; Cur; Cur = Cur->StaticLink)
      for (size_t I = 0, N = Cur->Slots.size(); I != N; ++I)
        if (Cur->Slots[I] == H)
          return Cur->R->getSlotDecls()[I]->getName();
    const VarDecl *D = Arena[H].Decl;
    return D ? D->getName() : std::string("<cell>");
  }

  void exitLoopUnit(uint32_t NodeId, Activation &A) {
    if (NodeId == 0)
      return;
    UnitFrame Frame = std::move(Frames.back());
    Frames.pop_back();
    std::vector<Binding> Inputs, Outputs;
    if (Listener)
      for (const auto &[C, V] : Frame.FirstReads)
        Inputs.push_back({nameOfCell(&A, C), V});
    DepSet OutDeps;
    if (Opts.TrackDeps) {
      OutDeps.insert(NodeId);
      if (const DepSet *Ctrl = A.activeCtrlDeps())
        OutDeps.mergeWith(*Ctrl);
    }
    for (CellRef C : Frame.Writes) {
      if (Opts.TrackDeps)
        Arena[C].V.deps().mergeWith(OutDeps);
      if (Listener)
        Outputs.push_back({nameOfCell(&A, C), Arena[C].V});
    }
    if (Listener)
      Listener->exitUnit(NodeId, std::move(Inputs), std::move(Outputs));
  }

  //===--------------------------------------------------------------------===//
  // Statement execution
  //===--------------------------------------------------------------------===//

  bool countStep(SourceLoc Loc) {
    if (++Steps > Opts.MaxSteps) [[unlikely]] {
      fail(Loc, "step limit exceeded (possible non-termination)");
      return false;
    }
    return true;
  }

  void execStmt(Activation &A, const Stmt *S) {
    if (Failed || Goto.Active)
      return;
    if (!countStep(S->getLoc()))
      return;

    switch (S->getKind()) {
    case Stmt::Kind::Compound:
      execCompound(A, cast<CompoundStmt>(S)->getBody());
      return;
    case Stmt::Kind::Assign:
      execAssign(A, cast<AssignStmt>(S));
      return;
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(S);
      Value Cond = evalExpr(A, IS->getCond());
      if (Failed)
        return;
      pushCtrl(A, Cond.deps());
      if (Cond.asBool())
        execStmt(A, IS->getThen());
      else if (IS->getElse())
        execStmt(A, IS->getElse());
      popCtrl(A);
      return;
    }
    case Stmt::Kind::While:
      execWhile(A, cast<WhileStmt>(S));
      return;
    case Stmt::Kind::Repeat:
      execRepeat(A, cast<RepeatStmt>(S));
      return;
    case Stmt::Kind::For:
      execFor(A, cast<ForStmt>(S));
      return;
    case Stmt::Kind::ProcCall: {
      const auto *PC = cast<ProcCallStmt>(S);
      performCall(A, PC->getCallee(), PC->getArgs(), PC, nullptr,
                  PC->getLoc());
      return;
    }
    case Stmt::Kind::Goto: {
      const auto *GS = cast<GotoStmt>(S);
      // Find the activation that declares the label (walk the static chain
      // to the routine Sema resolved).
      Activation *Target = &A;
      while (Target && Target->R != GS->getTargetRoutine())
        Target = Target->StaticLink;
      if (!Target) {
        fail(GS->getLoc(), "internal: no activation declares label " +
                               std::to_string(GS->getLabel()));
        return;
      }
      Goto.Active = true;
      Goto.Label = GS->getLabel();
      Goto.Target = Target;
      Goto.Loc = GS->getLoc();
      return;
    }
    case Stmt::Kind::Labeled:
      execStmt(A, cast<LabeledStmt>(S)->getSub());
      return;
    case Stmt::Kind::Read:
      execRead(A, cast<ReadStmt>(S));
      return;
    case Stmt::Kind::Write:
      execWrite(A, cast<WriteStmt>(S));
      return;
    case Stmt::Kind::Empty:
      return;
    }
  }

  void execCompound(Activation &A, const std::vector<StmtPtr> &Body) {
    size_t I = 0;
    while (I < Body.size()) {
      if (Failed)
        return;
      execStmt(A, Body[I].get());
      if (Failed)
        return;
      if (Goto.Active) {
        // Catch the goto if its label is an immediate child of this
        // compound within the right activation.
        if (Goto.Target == &A) {
          bool Caught = false;
          for (size_t J = 0; J < Body.size(); ++J) {
            const auto *LS = dyn_cast<LabeledStmt>(Body[J].get());
            if (LS && LS->getLabel() == Goto.Label) {
              Goto.Active = false;
              I = J;
              Caught = true;
              break;
            }
          }
          if (Caught) {
            if (!countStep(Body[I]->getLoc()))
              return;
            continue; // execute the labeled statement next
          }
        }
        return; // propagate outward
      }
      ++I;
    }
  }

  void execAssign(Activation &A, const AssignStmt *AS) {
    Value V = evalExpr(A, AS->getValue());
    if (Failed)
      return;
    if (const auto *VR = dyn_cast<VarRefExpr>(AS->getTarget())) {
      CellRef C = getCell(A, VR->getDecl(), VR->getLoc());
      if (C == NoCell)
        return;
      storeCell(A, C, std::move(V));
      return;
    }
    const auto *IE = cast<IndexExpr>(AS->getTarget());
    const auto *BaseRef = cast<VarRefExpr>(IE->getBase());
    CellRef C = getCell(A, BaseRef->getDecl(), BaseRef->getLoc());
    if (C == NoCell)
      return;
    Value Idx = evalExpr(A, IE->getIndex());
    if (Failed)
      return;
    // Writing one element both reads and writes the array as a whole.
    observeRead(C);
    observeWrite(C);
    ArrayVal &Arr = Arena[C].V.asArray();
    if (!Arr.inBounds(Idx.asInt())) {
      fail(IE->getLoc(), "array index " + std::to_string(Idx.asInt()) +
                             " out of bounds [" + std::to_string(Arr.Lo) +
                             ".." + std::to_string(Arr.Hi) + "] for '" +
                             BaseRef->getName() + "'");
      return;
    }
    Arr.at(Idx.asInt()) = V.asInt();
    if (Opts.TrackDeps) {
      Arena[C].V.deps().mergeWith(V.deps());
      Arena[C].V.deps().mergeWith(Idx.deps());
      if (const DepSet *Ctrl = A.activeCtrlDeps())
        Arena[C].V.deps().mergeWith(*Ctrl);
    }
  }

  void pushCtrl(Activation &A, const DepSet &CondDeps) {
    if (!Opts.TrackDeps)
      return;
    DepSet Merged = CondDeps;
    if (const DepSet *Active = A.activeCtrlDeps())
      Merged.mergeWith(*Active);
    A.CtrlStack.push_back(std::move(Merged));
  }

  void popCtrl(Activation &A) {
    if (!Opts.TrackDeps)
      return;
    A.CtrlStack.pop_back();
  }

  void execWhile(Activation &A, const WhileStmt *WS) {
    uint32_t LoopNode = enterLoopUnit(UnitKind::Loop, WS->getUnitName(), WS,
                                      0, WS->getLoc(), A);
    DepSet CondAccum;
    uint32_t Iter = 0;
    for (;;) {
      Value Cond = evalExpr(A, WS->getCond());
      if (Failed)
        break;
      if (Opts.TrackDeps)
        CondAccum.mergeWith(Cond.deps());
      if (!Cond.asBool())
        break;
      ++Iter;
      if (!countStep(WS->getLoc()))
        break;
      uint32_t IterNode = enterLoopUnit(UnitKind::Iteration,
                                        WS->getUnitName(), WS, Iter,
                                        WS->getLoc(), A);
      pushCtrl(A, CondAccum);
      execStmt(A, WS->getBody());
      popCtrl(A);
      exitLoopUnit(IterNode, A);
      if (Failed || Goto.Active)
        break;
    }
    exitLoopUnit(LoopNode, A);
  }

  void execRepeat(Activation &A, const RepeatStmt *RS) {
    uint32_t LoopNode = enterLoopUnit(UnitKind::Loop, RS->getUnitName(), RS,
                                      0, RS->getLoc(), A);
    DepSet CondAccum;
    uint32_t Iter = 0;
    for (;;) {
      ++Iter;
      if (!countStep(RS->getLoc()))
        break;
      uint32_t IterNode = enterLoopUnit(UnitKind::Iteration,
                                        RS->getUnitName(), RS, Iter,
                                        RS->getLoc(), A);
      pushCtrl(A, CondAccum);
      for (const StmtPtr &Sub : RS->getBody()) {
        execStmt(A, Sub.get());
        if (Failed || Goto.Active)
          break;
      }
      popCtrl(A);
      exitLoopUnit(IterNode, A);
      if (Failed || Goto.Active)
        break;
      Value Cond = evalExpr(A, RS->getCond());
      if (Failed)
        break;
      if (Opts.TrackDeps)
        CondAccum.mergeWith(Cond.deps());
      if (Cond.asBool())
        break;
    }
    exitLoopUnit(LoopNode, A);
  }

  void execFor(Activation &A, const ForStmt *FS) {
    uint32_t LoopNode = enterLoopUnit(UnitKind::Loop, FS->getUnitName(), FS,
                                      0, FS->getLoc(), A);
    const auto *VR = cast<VarRefExpr>(FS->getLoopVar());
    CellRef LoopCell = getCell(A, VR->getDecl(), VR->getLoc());
    Value From = evalExpr(A, FS->getFrom());
    Value To = evalExpr(A, FS->getTo());
    if (!Failed && LoopCell != NoCell) {
      DepSet BoundDeps;
      if (Opts.TrackDeps) {
        BoundDeps.mergeWith(From.deps());
        BoundDeps.mergeWith(To.deps());
      }
      pushCtrl(A, BoundDeps);
      int64_t I = From.asInt();
      int64_t Limit = To.asInt();
      uint32_t Iter = 0;
      while (FS->isDownward() ? I >= Limit : I <= Limit) {
        ++Iter;
        if (!countStep(FS->getLoc()))
          break;
        Value IV = Value::makeInt(I);
        if (Opts.TrackDeps)
          IV.deps() = BoundDeps;
        storeCell(A, LoopCell, std::move(IV));
        uint32_t IterNode = enterLoopUnit(UnitKind::Iteration,
                                          FS->getUnitName(), FS, Iter,
                                          FS->getLoc(), A);
        execStmt(A, FS->getBody());
        exitLoopUnit(IterNode, A);
        if (Failed || Goto.Active)
          break;
        I += FS->isDownward() ? -1 : 1;
      }
      popCtrl(A);
    }
    exitLoopUnit(LoopNode, A);
  }

  void execRead(Activation &A, const ReadStmt *RS) {
    for (const ExprPtr &T : RS->getTargets()) {
      if (Failed)
        return;
      if (InputPos >= Input.size()) {
        fail(RS->getLoc(), "read past end of program input");
        return;
      }
      Value V = Value::makeInt(Input[InputPos++]);
      if (const auto *VR = dyn_cast<VarRefExpr>(T.get())) {
        CellRef C = getCell(A, VR->getDecl(), VR->getLoc());
        if (C == NoCell)
          return;
        storeCell(A, C, std::move(V));
        continue;
      }
      const auto *IE = cast<IndexExpr>(T.get());
      const auto *BaseRef = cast<VarRefExpr>(IE->getBase());
      CellRef C = getCell(A, BaseRef->getDecl(), BaseRef->getLoc());
      if (C == NoCell)
        return;
      Value Idx = evalExpr(A, IE->getIndex());
      if (Failed)
        return;
      observeRead(C);
      observeWrite(C);
      ArrayVal &Arr = Arena[C].V.asArray();
      if (!Arr.inBounds(Idx.asInt())) {
        fail(IE->getLoc(), "array index " + std::to_string(Idx.asInt()) +
                               " out of bounds in read");
        return;
      }
      Arr.at(Idx.asInt()) = V.asInt();
      if (Opts.TrackDeps) {
        Arena[C].V.deps().mergeWith(Idx.deps());
        if (const DepSet *Ctrl = A.activeCtrlDeps())
          Arena[C].V.deps().mergeWith(*Ctrl);
      }
    }
  }

  void execWrite(Activation &A, const WriteStmt *WS) {
    for (const ExprPtr &Arg : WS->getArgs()) {
      Value V = evalExpr(A, Arg.get());
      if (Failed)
        return;
      if (V.isStr())
        Output += V.asStr();
      else
        Output += V.str();
    }
    if (WS->isWriteln())
      Output += '\n';
  }

  //===--------------------------------------------------------------------===//
  // Entry points
  //===--------------------------------------------------------------------===//

  Activation makeActivation(const RoutineDecl *R, Activation *Link) {
    Activation Act;
    Act.R = R;
    Act.StaticLink = Link;
    Act.Watermark = CellSerial + 1;
    Act.Slots.resize(R->getNumSlots(), NoCell);
    return Act;
  }

  Activation makeMainActivation() {
    Activation Main = makeActivation(Prog.getMain(), nullptr);
    for (const auto &G : Prog.getMain()->getLocals())
      Main.Slots[G->getSlot()] =
          newCell(G.get(), initialValue(G->getType()));
    return Main;
  }

  ExecResult run() {
    reset();
    ExecResult Res;
    Activation Main = makeMainActivation();

    uint32_t RootId = ++NodeCounter;
    if (Listener) {
      UnitStart Start;
      Start.NodeId = RootId;
      Start.Kind = UnitKind::Call;
      Start.Name = Prog.getMain()->getName();
      Start.Routine = Prog.getMain();
      Start.Loc = Prog.getMain()->getLoc();
      Listener->enterUnit(Start);
    }
    Frames.push_back(UnitFrame());
    Frames.back().NodeId = RootId;
    Frames.back().Watermark = CellSerial + 1;
    Frames.back().FrameId = ++FrameCounter;
    Frames.back().Act = &Main;

    if (Prog.getMain()->getBody())
      execStmt(Main, Prog.getMain()->getBody());
    if (Goto.Active) {
      fail(Goto.Loc, "goto " + std::to_string(Goto.Label) +
                         " escaped the main program");
      Goto.Active = false;
    }

    Frames.pop_back();
    for (const auto &G : Prog.getMain()->getLocals())
      Res.FinalGlobals.push_back(
          {G->getName(), Arena[Main.Slots[G->getSlot()]].V});
    if (Listener) {
      std::vector<Binding> Outputs = Res.FinalGlobals;
      if (!Output.empty())
        Outputs.push_back({"<output>", Value::makeStr(Output)});
      Listener->exitUnit(RootId, {}, std::move(Outputs));
    }

    Res.Ok = !Failed;
    Res.Error = Error;
    Res.Output = Output;
    Res.Steps = Steps;
    Res.UnitsExecuted = NodeCounter;
    flushPoolStats();
    return Res;
  }

  const RoutineDecl *findRoutineByName(const RoutineDecl *Root,
                                       const std::string &Name) {
    if (Root->getName() == Name)
      return Root;
    for (const auto &N : Root->getNested())
      if (const RoutineDecl *Found = findRoutineByName(N.get(), Name))
        return Found;
    return nullptr;
  }

  CallOutcome callRoutine(const std::string &Name, std::vector<Value> Args,
                          const std::vector<Binding> &GlobalPresets) {
    reset();
    CallOutcome Out;
    const RoutineDecl *Callee = findRoutineByName(Prog.getMain(), Name);
    if (!Callee) {
      Out.Error = {SourceLoc(), "no routine named '" + Name + "'"};
      return Out;
    }
    if (Args.size() != Callee->getParams().size()) {
      Out.Error = {SourceLoc(), "argument count mismatch calling '" + Name +
                                    "'"};
      return Out;
    }

    Activation Main = makeMainActivation();
    // Build activations for the static chain from main down to the callee's
    // parent (their locals are default-initialized). This lets test cases
    // invoke nested routines directly.
    std::vector<std::unique_ptr<Activation>> Chain;
    Activation *Link = &Main;
    {
      std::vector<const RoutineDecl *> Path;
      for (const RoutineDecl *R = Callee->getParent();
           R && R != Prog.getMain(); R = R->getParent())
        Path.push_back(R);
      for (auto It = Path.rbegin(); It != Path.rend(); ++It) {
        auto Act = std::make_unique<Activation>(makeActivation(*It, Link));
        for (const auto &L : (*It)->getLocals())
          Act->Slots[L->getSlot()] =
              newCell(L.get(), initialValue(L->getType()));
        for (const auto &P : (*It)->getParams())
          Act->Slots[P->getSlot()] =
              newCell(P.get(), defaultValue(P->getType()));
        Link = Act.get();
        Chain.push_back(std::move(Act));
      }
    }

    // Apply global presets by name, innermost scope first.
    for (const Binding &Preset : GlobalPresets) {
      for (Activation *Cur = Link; Cur; Cur = Cur->StaticLink) {
        bool Applied = false;
        const auto &Decls = Cur->R->getSlotDecls();
        for (size_t I = 0, N = Decls.size(); I != N; ++I)
          if (Cur->Slots[I] != NoCell &&
              Decls[I]->getName() == Preset.Name) {
            Arena[Cur->Slots[I]].V = Preset.V;
            Applied = true;
            break;
          }
        if (Applied)
          break;
      }
    }

    uint64_t Watermark = CellSerial + 1;
    Activation Act = makeActivation(Callee, Link);
    Act.Watermark = Watermark;
    std::vector<Binding> EntryInputs;
    for (size_t I = 0, N = Callee->getParams().size(); I != N; ++I) {
      const VarDecl *Param = Callee->getParams()[I].get();
      Value V = Args[I].isUnset() ? defaultValue(Param->getType())
                                  : std::move(Args[I]);
      if (Listener && !Param->isReference())
        EntryInputs.push_back({Param->getName(), V});
      Act.Slots[Param->getSlot()] = newCell(Param, std::move(V));
    }
    for (const auto &L : Callee->getLocals())
      Act.Slots[L->getSlot()] = newCell(L.get(), initialValue(L->getType()));
    if (Callee->isFunction()) {
      const VarDecl *RV = Callee->getResultVar();
      Act.Slots[RV->getSlot()] =
          newCell(RV, initialValue(Callee->getReturnType()));
    }

    std::vector<Binding> Outputs;
    Value Result;
    runPreparedCall(Act, Callee, std::move(EntryInputs), nullptr, nullptr,
                    Callee->getLoc(), nullptr, &Outputs, &Result, Watermark);
    if (Goto.Active) {
      fail(Goto.Loc, "non-local goto escaped the routine under test");
      Goto.Active = false;
    }

    Out.Ok = !Failed;
    Out.Error = Error;
    Out.Output = Output;
    // The trace-shaped outputs (written params, global effects, result),
    // augmented with unwritten var parameters so checkers see the full
    // post-state.
    Out.Outputs = std::move(Outputs);
    for (size_t I = 0, N = Callee->getParams().size(); I != N; ++I) {
      const VarDecl *Param = Callee->getParams()[I].get();
      if (!Param->isReference())
        continue;
      bool Present = false;
      for (const Binding &B : Out.Outputs)
        if (B.Name == Param->getName())
          Present = true;
      if (!Present)
        Out.Outputs.push_back(
            {Param->getName(), Arena[Act.Slots[Param->getSlot()]].V});
    }
    flushPoolStats();
    return Out;
  }
};

Interpreter::Interpreter(const Program &Prog, InterpOptions Opts)
    : P(std::make_unique<Impl>(Prog, Opts)) {
  // Every production path reaches the interpreter through pascal::analyze(),
  // which assigns frame slots; hand-built programs in tests may not have
  // them yet. The lazy assignment is idempotent and happens before any
  // BatchRunner thread could share the program (subjects are analyzed
  // before the pool starts), so it is not a data race in practice.
  if (!Prog.areSlotsAssigned())
    assignStorageSlots(const_cast<Program &>(Prog));
}

Interpreter::~Interpreter() = default;

void Interpreter::setInput(std::vector<int64_t> Input) {
  P->Input = std::move(Input);
}

void Interpreter::setListener(TraceListener *L) { P->Listener = L; }

ExecResult Interpreter::run() {
  obs::Span Span("interp.run", "interp");
  ExecResult R = P->run();
  Span.arg("steps", R.Steps);
  Span.arg("units", R.UnitsExecuted);
  // Per-run execution profile, unified in the central registry. The
  // references are resolved once; subsequent runs pay three relaxed adds.
  static obs::Counter &Runs = obs::Registry::global().counter("interp.runs");
  static obs::Counter &Steps =
      obs::Registry::global().counter("interp.steps");
  static obs::Counter &Units =
      obs::Registry::global().counter("interp.units");
  Runs.add();
  Steps.add(R.Steps);
  Units.add(R.UnitsExecuted);
  return R;
}

CallOutcome Interpreter::callRoutine(const std::string &Name,
                                     std::vector<Value> Args,
                                     const std::vector<Binding> &Presets) {
  return P->callRoutine(Name, std::move(Args), Presets);
}
