//===- Interpreter.cpp - Tracing Pascal interpreter -----------------------===//

#include "interp/Interpreter.h"

#include "bytecode/Bytecode.h"
#include "bytecode/VM.h"
#include "interp/ExecState.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Casting.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

using namespace gadt;
using namespace gadt::interp;
using namespace gadt::pascal;

TraceListener::~TraceListener() = default;

Value gadt::interp::defaultValue(const Type *Ty) {
  if (!Ty)
    return Value();
  switch (Ty->getKind()) {
  case Type::Kind::Integer:
    return Value::makeInt(0);
  case Type::Kind::Boolean:
    return Value::makeBool(false);
  case Type::Kind::String:
    return Value::makeStr("");
  case Type::Kind::Array: {
    ArrayVal A;
    A.Lo = Ty->getLowerBound();
    A.Hi = Ty->getUpperBound();
    A.Elems.assign(static_cast<size_t>(A.size()), 0);
    return Value::makeArray(std::move(A));
  }
  }
  return Value();
}

struct Interpreter::Impl : ExecState {
  /// Non-local goto in flight (tree tier only; the bytecode compiler
  /// rejects programs with gotos).
  struct {
    bool Active = false;
    int Label = 0;
    Activation *Target = nullptr;
    SourceLoc Loc;
  } Goto;

  // Bytecode tier: lazily compiled code (when none was injected through
  // InterpOptions::Code) and the VM's reusable stacks.
  std::shared_ptr<const bytecode::CompiledProgram> OwnCode;
  bool CompileAttempted = false;
  bytecode::VMState *VS = nullptr;

  Impl(const Program &Prog, InterpOptions Opts)
      : ExecState(Prog, Opts) {}
  ~Impl() {
    if (VS)
      bytecode::destroyVMState(VS);
  }

  void resetRun() {
    reset();
    Goto.Active = false;
  }

  //===--------------------------------------------------------------------===//
  // Expression evaluation
  //===--------------------------------------------------------------------===//

  Value evalExpr(Activation &A, const Expr *E) {
    if (Failed)
      return Value();
    switch (E->getKind()) {
    case Expr::Kind::IntLiteral:
      return Value::makeInt(cast<IntLiteralExpr>(E)->getValue());
    case Expr::Kind::BoolLiteral:
      return Value::makeBool(cast<BoolLiteralExpr>(E)->getValue());
    case Expr::Kind::StringLiteral:
      return Value::makeStr(cast<StringLiteralExpr>(E)->getValue());

    case Expr::Kind::ArrayLiteral: {
      const auto *AL = cast<ArrayLiteralExpr>(E);
      ArrayVal Arr;
      Arr.Lo = 1;
      Arr.Hi = static_cast<int64_t>(AL->getElements().size());
      DepSet Deps;
      for (const ExprPtr &Elem : AL->getElements()) {
        Value V = evalExpr(A, Elem.get());
        if (Failed)
          return Value();
        Arr.Elems.push_back(V.asInt());
        if (Opts.TrackDeps)
          Deps.mergeWith(V.deps());
      }
      Value Out = Value::makeArray(std::move(Arr));
      Out.deps() = std::move(Deps);
      return Out;
    }

    case Expr::Kind::VarRef: {
      const auto *VR = cast<VarRefExpr>(E);
      CellRef C = getCell(A, VR->getDecl(), VR->getLoc());
      if (C == NoCell)
        return Value();
      if (Opts.DetectUninitialized && Arena[C].V.isUnset()) {
        fail(VR->getLoc(), "variable '" + VR->getName() +
                               "' is used before it is assigned");
        return Value();
      }
      observeRead(C);
      return Arena[C].V;
    }

    case Expr::Kind::Index: {
      const auto *IE = cast<IndexExpr>(E);
      const auto *BaseRef = cast<VarRefExpr>(IE->getBase());
      CellRef C = getCell(A, BaseRef->getDecl(), BaseRef->getLoc());
      if (C == NoCell)
        return Value();
      Value Idx = evalExpr(A, IE->getIndex());
      if (Failed)
        return Value();
      observeRead(C);
      const ArrayVal &Arr = Arena[C].V.asArray();
      if (!Arr.inBounds(Idx.asInt())) {
        fail(IE->getLoc(), "array index " + std::to_string(Idx.asInt()) +
                               " out of bounds [" + std::to_string(Arr.Lo) +
                               ".." + std::to_string(Arr.Hi) + "] for '" +
                               BaseRef->getName() + "'");
        return Value();
      }
      Value Out = Value::makeInt(Arr.at(Idx.asInt()));
      if (Opts.TrackDeps) {
        Out.deps().mergeWith(Arena[C].V.deps());
        Out.deps().mergeWith(Idx.deps());
      }
      return Out;
    }

    case Expr::Kind::Call: {
      const auto *CE = cast<CallExpr>(E);
      return performCall(A, CE->getCallee(), CE->getArgs(), nullptr, CE,
                         CE->getLoc());
    }

    case Expr::Kind::Unary: {
      const auto *UE = cast<UnaryExpr>(E);
      Value Op = evalExpr(A, UE->getOperand());
      if (Failed)
        return Value();
      Value Out = UE->getOp() == UnaryOp::Neg ? Value::makeInt(-Op.asInt())
                                              : Value::makeBool(!Op.asBool());
      if (Opts.TrackDeps)
        Out.deps() = Op.deps();
      return Out;
    }

    case Expr::Kind::Binary: {
      const auto *BE = cast<BinaryExpr>(E);
      Value L = evalExpr(A, BE->getLHS());
      if (Failed)
        return Value();
      Value R = evalExpr(A, BE->getRHS());
      if (Failed)
        return Value();
      Value Out = applyBinary(BE, L, R);
      if (Failed)
        return Value();
      if (Opts.TrackDeps) {
        Out.deps().mergeWith(L.deps());
        Out.deps().mergeWith(R.deps());
      }
      return Out;
    }
    }
    return Value();
  }

  Value applyBinary(const BinaryExpr *BE, const Value &L, const Value &R) {
    switch (BE->getOp()) {
    case BinaryOp::Add:
      return Value::makeInt(L.asInt() + R.asInt());
    case BinaryOp::Sub:
      return Value::makeInt(L.asInt() - R.asInt());
    case BinaryOp::Mul:
      return Value::makeInt(L.asInt() * R.asInt());
    case BinaryOp::Div:
      if (R.asInt() == 0) {
        fail(BE->getLoc(), "division by zero");
        return Value();
      }
      return Value::makeInt(L.asInt() / R.asInt());
    case BinaryOp::Mod:
      if (R.asInt() == 0) {
        fail(BE->getLoc(), "modulo by zero");
        return Value();
      }
      return Value::makeInt(L.asInt() % R.asInt());
    case BinaryOp::Eq:
      return Value::makeBool(L.isBool() ? L.asBool() == R.asBool()
                                        : L.asInt() == R.asInt());
    case BinaryOp::Ne:
      return Value::makeBool(L.isBool() ? L.asBool() != R.asBool()
                                        : L.asInt() != R.asInt());
    case BinaryOp::Lt:
      return Value::makeBool(L.asInt() < R.asInt());
    case BinaryOp::Le:
      return Value::makeBool(L.asInt() <= R.asInt());
    case BinaryOp::Gt:
      return Value::makeBool(L.asInt() > R.asInt());
    case BinaryOp::Ge:
      return Value::makeBool(L.asInt() >= R.asInt());
    case BinaryOp::And:
      return Value::makeBool(L.asBool() && R.asBool());
    case BinaryOp::Or:
      return Value::makeBool(L.asBool() || R.asBool());
    }
    return Value();
  }

  //===--------------------------------------------------------------------===//
  // Calls
  //===--------------------------------------------------------------------===//

  /// Finds the static link for a call to \p Callee made from \p Caller.
  Activation *findStaticLink(Activation &Caller, const RoutineDecl *Callee) {
    for (Activation *Cur = &Caller; Cur; Cur = Cur->StaticLink)
      if (Cur->R == Callee->getParent())
        return Cur;
    // Calling an enclosing routine recursively: its parent's activation is
    // further up; calling the program routine has no static parent.
    return nullptr;
  }

  /// Shared tail of performCall/callRoutine: raises unit events, executes
  /// the body, and collects input/output bindings.
  ///
  /// \p EntryInputs carries bindings for value/in parameters (captured at
  /// entry — only when bindings are wanted). \p OutputsOut, when non-null,
  /// receives the output bindings even without a listener (callRoutine
  /// needs them); otherwise bindings are only assembled for the listener.
  /// Dependence side effects (output deps merged into cell values and the
  /// function result) happen regardless.
  void runPreparedCall(Activation &Act, const RoutineDecl *Callee,
                       std::vector<Binding> EntryInputs,
                       const Stmt *CallStmt, const Expr *CallExpr,
                       SourceLoc Loc, Activation *Caller,
                       std::vector<Binding> *OutputsOut, Value *Result,
                       uint64_t Watermark) {
    uint32_t NodeId =
        beginCallUnit(Act, Callee, CallStmt, CallExpr, Loc, Watermark);

    ++CallDepth;
    if (Callee->getBody())
      execStmt(Act, Callee->getBody());
    --CallDepth;

    // A non-local goto targeting *this* activation that was not caught at
    // any compound level means a jump into a structured statement.
    if (Goto.Active && Goto.Target == &Act) {
      fail(Goto.Loc,
           "goto " + std::to_string(Goto.Label) +
               " jumps into a structured statement (not supported)");
      Goto.Active = false;
    }

    finishCallUnit(Act, Callee, std::move(EntryInputs), NodeId, Caller,
                   OutputsOut, Result);
  }

  Value performCall(Activation &Caller, const RoutineDecl *Callee,
                    const std::vector<ExprPtr> &Args, const Stmt *CallStmt,
                    const Expr *CallExpr, SourceLoc Loc) {
    if (!Callee) {
      fail(Loc, "internal: unresolved call");
      return Value();
    }
    if (CallDepth >= Opts.MaxCallDepth) {
      fail(Loc, "call depth limit exceeded (runaway recursion in '" +
                    Callee->getName() + "')");
      return Value();
    }
    Activation Act;
    Act.R = Callee;
    Act.StaticLink = findStaticLink(Caller, Callee);

    // Bind parameters. Reference parameters alias the caller's cell; value
    // parameters are evaluated and copied. Evaluation happens in the
    // caller, so reads are charged to the caller's units.
    std::vector<Binding> EntryInputs;
    const auto &Params = Callee->getParams();
    std::vector<CellRef> RefCells(Params.size(), NoCell);
    std::vector<Value> ValueArgs(Params.size());
    for (size_t I = 0, N = Params.size(); I != N; ++I) {
      const VarDecl *P = Params[I].get();
      if (P->isReference()) {
        const auto *VR = cast<VarRefExpr>(Args[I].get());
        CellRef C = getCell(Caller, VR->getDecl(), VR->getLoc());
        if (C == NoCell)
          return Value();
        // The caller's cell stays non-local to the callee's frame, so the
        // frame observes whether the callee reads its pre-state.
        RefCells[I] = C;
      } else {
        Value V = evalExpr(Caller, Args[I].get());
        if (Failed)
          return Value();
        if (Listener)
          EntryInputs.push_back({P->getName(), V});
        ValueArgs[I] = std::move(V);
      }
    }
    // Cells created from here on are local to the callee's unit frame —
    // and owned by its activation (freed when the call returns).
    uint64_t Watermark = CellSerial + 1;
    Act.Watermark = Watermark;
    Act.Slots.resize(Callee->getNumSlots(), NoCell);
    for (size_t I = 0, N = Params.size(); I != N; ++I) {
      const VarDecl *P = Params[I].get();
      Act.Slots[P->getSlot()] =
          RefCells[I] != NoCell ? RefCells[I]
                                : newCell(P, std::move(ValueArgs[I]));
    }
    for (const auto &L : Callee->getLocals())
      Act.Slots[L->getSlot()] = newCell(L.get(), initialValue(L->getType()));
    if (Callee->isFunction()) {
      const VarDecl *RV = Callee->getResultVar();
      Act.Slots[RV->getSlot()] =
          newCell(RV, initialValue(Callee->getReturnType()));
    }

    Value Result;
    runPreparedCall(Act, Callee, std::move(EntryInputs), CallStmt, CallExpr,
                    Loc, &Caller, nullptr, &Result, Watermark);
    freeActivationCells(Act);
    return Result;
  }

  //===--------------------------------------------------------------------===//
  // Loop units
  //===--------------------------------------------------------------------===//

  //===--------------------------------------------------------------------===//
  // Statement execution
  //===--------------------------------------------------------------------===//

  void execStmt(Activation &A, const Stmt *S) {
    if (Failed || Goto.Active)
      return;
    if (!countStep(S->getLoc()))
      return;

    switch (S->getKind()) {
    case Stmt::Kind::Compound:
      execCompound(A, cast<CompoundStmt>(S)->getBody());
      return;
    case Stmt::Kind::Assign:
      execAssign(A, cast<AssignStmt>(S));
      return;
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(S);
      Value Cond = evalExpr(A, IS->getCond());
      if (Failed)
        return;
      pushCtrl(A, Cond.deps());
      if (Cond.asBool())
        execStmt(A, IS->getThen());
      else if (IS->getElse())
        execStmt(A, IS->getElse());
      popCtrl(A);
      return;
    }
    case Stmt::Kind::While:
      execWhile(A, cast<WhileStmt>(S));
      return;
    case Stmt::Kind::Repeat:
      execRepeat(A, cast<RepeatStmt>(S));
      return;
    case Stmt::Kind::For:
      execFor(A, cast<ForStmt>(S));
      return;
    case Stmt::Kind::ProcCall: {
      const auto *PC = cast<ProcCallStmt>(S);
      performCall(A, PC->getCallee(), PC->getArgs(), PC, nullptr,
                  PC->getLoc());
      return;
    }
    case Stmt::Kind::Goto: {
      const auto *GS = cast<GotoStmt>(S);
      // Find the activation that declares the label (walk the static chain
      // to the routine Sema resolved).
      Activation *Target = &A;
      while (Target && Target->R != GS->getTargetRoutine())
        Target = Target->StaticLink;
      if (!Target) {
        fail(GS->getLoc(), "internal: no activation declares label " +
                               std::to_string(GS->getLabel()));
        return;
      }
      Goto.Active = true;
      Goto.Label = GS->getLabel();
      Goto.Target = Target;
      Goto.Loc = GS->getLoc();
      return;
    }
    case Stmt::Kind::Labeled:
      execStmt(A, cast<LabeledStmt>(S)->getSub());
      return;
    case Stmt::Kind::Read:
      execRead(A, cast<ReadStmt>(S));
      return;
    case Stmt::Kind::Write:
      execWrite(A, cast<WriteStmt>(S));
      return;
    case Stmt::Kind::Empty:
      return;
    }
  }

  void execCompound(Activation &A, const std::vector<StmtPtr> &Body) {
    size_t I = 0;
    while (I < Body.size()) {
      if (Failed)
        return;
      execStmt(A, Body[I].get());
      if (Failed)
        return;
      if (Goto.Active) {
        // Catch the goto if its label is an immediate child of this
        // compound within the right activation.
        if (Goto.Target == &A) {
          bool Caught = false;
          for (size_t J = 0; J < Body.size(); ++J) {
            const auto *LS = dyn_cast<LabeledStmt>(Body[J].get());
            if (LS && LS->getLabel() == Goto.Label) {
              Goto.Active = false;
              I = J;
              Caught = true;
              break;
            }
          }
          if (Caught) {
            if (!countStep(Body[I]->getLoc()))
              return;
            continue; // execute the labeled statement next
          }
        }
        return; // propagate outward
      }
      ++I;
    }
  }

  void execAssign(Activation &A, const AssignStmt *AS) {
    Value V = evalExpr(A, AS->getValue());
    if (Failed)
      return;
    if (const auto *VR = dyn_cast<VarRefExpr>(AS->getTarget())) {
      CellRef C = getCell(A, VR->getDecl(), VR->getLoc());
      if (C == NoCell)
        return;
      storeCell(A, C, std::move(V));
      return;
    }
    const auto *IE = cast<IndexExpr>(AS->getTarget());
    const auto *BaseRef = cast<VarRefExpr>(IE->getBase());
    CellRef C = getCell(A, BaseRef->getDecl(), BaseRef->getLoc());
    if (C == NoCell)
      return;
    Value Idx = evalExpr(A, IE->getIndex());
    if (Failed)
      return;
    // Writing one element both reads and writes the array as a whole.
    observeRead(C);
    observeWrite(C);
    ArrayVal &Arr = Arena[C].V.asArray();
    if (!Arr.inBounds(Idx.asInt())) {
      fail(IE->getLoc(), "array index " + std::to_string(Idx.asInt()) +
                             " out of bounds [" + std::to_string(Arr.Lo) +
                             ".." + std::to_string(Arr.Hi) + "] for '" +
                             BaseRef->getName() + "'");
      return;
    }
    Arr.at(Idx.asInt()) = V.asInt();
    if (Opts.TrackDeps) {
      Arena[C].V.deps().mergeWith(V.deps());
      Arena[C].V.deps().mergeWith(Idx.deps());
      if (const DepSet *Ctrl = A.activeCtrlDeps())
        Arena[C].V.deps().mergeWith(*Ctrl);
    }
  }

  void execWhile(Activation &A, const WhileStmt *WS) {
    uint32_t LoopNode = enterLoopUnit(UnitKind::Loop, WS->getUnitName(), WS,
                                      0, WS->getLoc(), A);
    DepSet CondAccum;
    uint32_t Iter = 0;
    for (;;) {
      Value Cond = evalExpr(A, WS->getCond());
      if (Failed)
        break;
      if (Opts.TrackDeps)
        CondAccum.mergeWith(Cond.deps());
      if (!Cond.asBool())
        break;
      ++Iter;
      if (!countStep(WS->getLoc()))
        break;
      uint32_t IterNode = enterLoopUnit(UnitKind::Iteration,
                                        WS->getUnitName(), WS, Iter,
                                        WS->getLoc(), A);
      pushCtrl(A, CondAccum);
      execStmt(A, WS->getBody());
      popCtrl(A);
      exitLoopUnit(IterNode, A);
      if (Failed || Goto.Active)
        break;
    }
    exitLoopUnit(LoopNode, A);
  }

  void execRepeat(Activation &A, const RepeatStmt *RS) {
    uint32_t LoopNode = enterLoopUnit(UnitKind::Loop, RS->getUnitName(), RS,
                                      0, RS->getLoc(), A);
    DepSet CondAccum;
    uint32_t Iter = 0;
    for (;;) {
      ++Iter;
      if (!countStep(RS->getLoc()))
        break;
      uint32_t IterNode = enterLoopUnit(UnitKind::Iteration,
                                        RS->getUnitName(), RS, Iter,
                                        RS->getLoc(), A);
      pushCtrl(A, CondAccum);
      for (const StmtPtr &Sub : RS->getBody()) {
        execStmt(A, Sub.get());
        if (Failed || Goto.Active)
          break;
      }
      popCtrl(A);
      exitLoopUnit(IterNode, A);
      if (Failed || Goto.Active)
        break;
      Value Cond = evalExpr(A, RS->getCond());
      if (Failed)
        break;
      if (Opts.TrackDeps)
        CondAccum.mergeWith(Cond.deps());
      if (Cond.asBool())
        break;
    }
    exitLoopUnit(LoopNode, A);
  }

  void execFor(Activation &A, const ForStmt *FS) {
    uint32_t LoopNode = enterLoopUnit(UnitKind::Loop, FS->getUnitName(), FS,
                                      0, FS->getLoc(), A);
    const auto *VR = cast<VarRefExpr>(FS->getLoopVar());
    CellRef LoopCell = getCell(A, VR->getDecl(), VR->getLoc());
    Value From = evalExpr(A, FS->getFrom());
    Value To = evalExpr(A, FS->getTo());
    if (!Failed && LoopCell != NoCell) {
      DepSet BoundDeps;
      if (Opts.TrackDeps) {
        BoundDeps.mergeWith(From.deps());
        BoundDeps.mergeWith(To.deps());
      }
      pushCtrl(A, BoundDeps);
      int64_t I = From.asInt();
      int64_t Limit = To.asInt();
      uint32_t Iter = 0;
      while (FS->isDownward() ? I >= Limit : I <= Limit) {
        ++Iter;
        if (!countStep(FS->getLoc()))
          break;
        Value IV = Value::makeInt(I);
        if (Opts.TrackDeps)
          IV.deps() = BoundDeps;
        storeCell(A, LoopCell, std::move(IV));
        uint32_t IterNode = enterLoopUnit(UnitKind::Iteration,
                                          FS->getUnitName(), FS, Iter,
                                          FS->getLoc(), A);
        execStmt(A, FS->getBody());
        exitLoopUnit(IterNode, A);
        if (Failed || Goto.Active)
          break;
        I += FS->isDownward() ? -1 : 1;
      }
      popCtrl(A);
    }
    exitLoopUnit(LoopNode, A);
  }

  void execRead(Activation &A, const ReadStmt *RS) {
    for (const ExprPtr &T : RS->getTargets()) {
      if (Failed)
        return;
      if (InputPos >= Input.size()) {
        fail(RS->getLoc(), "read past end of program input");
        return;
      }
      Value V = Value::makeInt(Input[InputPos++]);
      if (const auto *VR = dyn_cast<VarRefExpr>(T.get())) {
        CellRef C = getCell(A, VR->getDecl(), VR->getLoc());
        if (C == NoCell)
          return;
        storeCell(A, C, std::move(V));
        continue;
      }
      const auto *IE = cast<IndexExpr>(T.get());
      const auto *BaseRef = cast<VarRefExpr>(IE->getBase());
      CellRef C = getCell(A, BaseRef->getDecl(), BaseRef->getLoc());
      if (C == NoCell)
        return;
      Value Idx = evalExpr(A, IE->getIndex());
      if (Failed)
        return;
      observeRead(C);
      observeWrite(C);
      ArrayVal &Arr = Arena[C].V.asArray();
      if (!Arr.inBounds(Idx.asInt())) {
        fail(IE->getLoc(), "array index " + std::to_string(Idx.asInt()) +
                               " out of bounds in read");
        return;
      }
      Arr.at(Idx.asInt()) = V.asInt();
      if (Opts.TrackDeps) {
        Arena[C].V.deps().mergeWith(Idx.deps());
        if (const DepSet *Ctrl = A.activeCtrlDeps())
          Arena[C].V.deps().mergeWith(*Ctrl);
      }
    }
  }

  void execWrite(Activation &A, const WriteStmt *WS) {
    for (const ExprPtr &Arg : WS->getArgs()) {
      Value V = evalExpr(A, Arg.get());
      if (Failed)
        return;
      if (V.isStr())
        Output += V.asStr();
      else
        Output += V.str();
    }
    if (WS->isWriteln())
      Output += '\n';
  }

  //===--------------------------------------------------------------------===//
  // Entry points
  //===--------------------------------------------------------------------===//

  Activation makeActivation(const RoutineDecl *R, Activation *Link) {
    Activation Act;
    Act.R = R;
    Act.StaticLink = Link;
    Act.Watermark = CellSerial + 1;
    Act.Slots.resize(R->getNumSlots(), NoCell);
    return Act;
  }

  Activation makeMainActivation() {
    Activation Main = makeActivation(Prog.getMain(), nullptr);
    for (const auto &G : Prog.getMain()->getLocals())
      Main.Slots[G->getSlot()] =
          newCell(G.get(), initialValue(G->getType()));
    return Main;
  }

  ExecResult runTree() {
    resetRun();
    ExecResult Res;
    Activation Main = makeMainActivation();
    uint32_t RootId = enterRoot(Main);

    if (Prog.getMain()->getBody())
      execStmt(Main, Prog.getMain()->getBody());
    if (Goto.Active) {
      fail(Goto.Loc, "goto " + std::to_string(Goto.Label) +
                         " escaped the main program");
      Goto.Active = false;
    }

    exitRoot(RootId, Main, Res);
    Res.Ok = !Failed;
    Res.Error = Error;
    Res.Output = Output;
    Res.Steps = Steps;
    Res.UnitsExecuted = NodeCounter;
    flushPoolStats();
    return Res;
  }

  /// Selected execution tier for this process (cached env lookup). The
  /// environment can only force the tree tier; bytecode is the default.
  static ExecTier envTier() {
    static ExecTier T = [] {
      const char *E = std::getenv("GADT_EXEC_TIER");
      if (E && std::string_view(E) == "tree")
        return ExecTier::Tree;
      return ExecTier::Bytecode;
    }();
    return T;
  }

  /// The compiled unit to run, preferring code injected via InterpOptions
  /// (the RuntimeContext cache) when it matches this program and checking
  /// mode; otherwise compiles once. Null = unsupported, run the tree.
  const bytecode::CompiledProgram *resolveCode() {
    if (Opts.Code && Opts.Code->Prog == &Prog &&
        Opts.Code->Checked == Opts.DetectUninitialized)
      return Opts.Code.get();
    if (!CompileAttempted) {
      CompileAttempted = true;
      OwnCode = bytecode::compile(Prog, Opts.DetectUninitialized);
    }
    return OwnCode.get();
  }

  ExecResult run() {
    ExecTier Tier = Opts.Tier != ExecTier::Auto ? Opts.Tier : envTier();
    if (Tier == ExecTier::Bytecode) {
      if (const bytecode::CompiledProgram *CP = resolveCode()) {
        static obs::Counter &TierBc =
            obs::Registry::global().counter("interp.tier.bytecode");
        TierBc.add();
        if (!VS)
          VS = bytecode::createVMState();
        return bytecode::run(*this, *CP, *VS);
      }
      static obs::Counter &TierFb =
          obs::Registry::global().counter("interp.tier.fallback");
      TierFb.add();
    }
    static obs::Counter &TierTree =
        obs::Registry::global().counter("interp.tier.tree");
    TierTree.add();
    return runTree();
  }

  const RoutineDecl *findRoutineByName(const RoutineDecl *Root,
                                       const std::string &Name) {
    if (Root->getName() == Name)
      return Root;
    for (const auto &N : Root->getNested())
      if (const RoutineDecl *Found = findRoutineByName(N.get(), Name))
        return Found;
    return nullptr;
  }

  CallOutcome callRoutine(const std::string &Name, std::vector<Value> Args,
                          const std::vector<Binding> &GlobalPresets) {
    resetRun();
    CallOutcome Out;
    const RoutineDecl *Callee = findRoutineByName(Prog.getMain(), Name);
    if (!Callee) {
      Out.Error = {SourceLoc(), "no routine named '" + Name + "'"};
      return Out;
    }
    if (Args.size() != Callee->getParams().size()) {
      Out.Error = {SourceLoc(), "argument count mismatch calling '" + Name +
                                    "'"};
      return Out;
    }

    Activation Main = makeMainActivation();
    // Build activations for the static chain from main down to the callee's
    // parent (their locals are default-initialized). This lets test cases
    // invoke nested routines directly.
    std::vector<std::unique_ptr<Activation>> Chain;
    Activation *Link = &Main;
    {
      std::vector<const RoutineDecl *> Path;
      for (const RoutineDecl *R = Callee->getParent();
           R && R != Prog.getMain(); R = R->getParent())
        Path.push_back(R);
      for (auto It = Path.rbegin(); It != Path.rend(); ++It) {
        auto Act = std::make_unique<Activation>(makeActivation(*It, Link));
        for (const auto &L : (*It)->getLocals())
          Act->Slots[L->getSlot()] =
              newCell(L.get(), initialValue(L->getType()));
        for (const auto &P : (*It)->getParams())
          Act->Slots[P->getSlot()] =
              newCell(P.get(), defaultValue(P->getType()));
        Link = Act.get();
        Chain.push_back(std::move(Act));
      }
    }

    // Apply global presets by name, innermost scope first.
    for (const Binding &Preset : GlobalPresets) {
      for (Activation *Cur = Link; Cur; Cur = Cur->StaticLink) {
        bool Applied = false;
        const auto &Decls = Cur->R->getSlotDecls();
        for (size_t I = 0, N = Decls.size(); I != N; ++I)
          if (Cur->Slots[I] != NoCell &&
              Decls[I]->getName() == Preset.Name) {
            Arena[Cur->Slots[I]].V = Preset.V;
            Applied = true;
            break;
          }
        if (Applied)
          break;
      }
    }

    uint64_t Watermark = CellSerial + 1;
    Activation Act = makeActivation(Callee, Link);
    Act.Watermark = Watermark;
    std::vector<Binding> EntryInputs;
    for (size_t I = 0, N = Callee->getParams().size(); I != N; ++I) {
      const VarDecl *Param = Callee->getParams()[I].get();
      Value V = Args[I].isUnset() ? defaultValue(Param->getType())
                                  : std::move(Args[I]);
      if (Listener && !Param->isReference())
        EntryInputs.push_back({Param->getName(), V});
      Act.Slots[Param->getSlot()] = newCell(Param, std::move(V));
    }
    for (const auto &L : Callee->getLocals())
      Act.Slots[L->getSlot()] = newCell(L.get(), initialValue(L->getType()));
    if (Callee->isFunction()) {
      const VarDecl *RV = Callee->getResultVar();
      Act.Slots[RV->getSlot()] =
          newCell(RV, initialValue(Callee->getReturnType()));
    }

    std::vector<Binding> Outputs;
    Value Result;
    runPreparedCall(Act, Callee, std::move(EntryInputs), nullptr, nullptr,
                    Callee->getLoc(), nullptr, &Outputs, &Result, Watermark);
    if (Goto.Active) {
      fail(Goto.Loc, "non-local goto escaped the routine under test");
      Goto.Active = false;
    }

    Out.Ok = !Failed;
    Out.Error = Error;
    Out.Output = Output;
    // The trace-shaped outputs (written params, global effects, result),
    // augmented with unwritten var parameters so checkers see the full
    // post-state.
    Out.Outputs = std::move(Outputs);
    for (size_t I = 0, N = Callee->getParams().size(); I != N; ++I) {
      const VarDecl *Param = Callee->getParams()[I].get();
      if (!Param->isReference())
        continue;
      bool Present = false;
      for (const Binding &B : Out.Outputs)
        if (B.Name == Param->getName())
          Present = true;
      if (!Present)
        Out.Outputs.push_back(
            {Param->getName(), Arena[Act.Slots[Param->getSlot()]].V});
    }
    flushPoolStats();
    return Out;
  }
};

Interpreter::Interpreter(const Program &Prog, InterpOptions Opts)
    : P(std::make_unique<Impl>(Prog, Opts)) {
  // Every production path reaches the interpreter through pascal::analyze(),
  // which assigns frame slots; hand-built programs in tests may not have
  // them yet. The lazy assignment is idempotent and happens before any
  // BatchRunner thread could share the program (subjects are analyzed
  // before the pool starts), so it is not a data race in practice.
  if (!Prog.areSlotsAssigned())
    assignStorageSlots(const_cast<Program &>(Prog));
}

Interpreter::~Interpreter() = default;

void Interpreter::setInput(std::vector<int64_t> Input) {
  P->Input = std::move(Input);
}

void Interpreter::setListener(TraceListener *L) { P->Listener = L; }

ExecResult Interpreter::run() {
  obs::Span Span("interp.run", "interp");
  ExecResult R = P->run();
  Span.arg("steps", R.Steps);
  Span.arg("units", R.UnitsExecuted);
  // Per-run execution profile, unified in the central registry. The
  // references are resolved once; subsequent runs pay three relaxed adds.
  static obs::Counter &Runs = obs::Registry::global().counter("interp.runs");
  static obs::Counter &Steps =
      obs::Registry::global().counter("interp.steps");
  static obs::Counter &Units =
      obs::Registry::global().counter("interp.units");
  Runs.add();
  Steps.add(R.Steps);
  Units.add(R.UnitsExecuted);
  return R;
}

CallOutcome Interpreter::callRoutine(const std::string &Name,
                                     std::vector<Value> Args,
                                     const std::vector<Binding> &Presets) {
  return P->callRoutine(Name, std::move(Args), Presets);
}
