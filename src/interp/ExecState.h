//===- ExecState.h - Shared execution substrate -----------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate shared by the tree-walking interpreter and the
/// bytecode VM: the pooled cell arena, activation records, unit-frame
/// observation (dynamic input/output sets), dependence bookkeeping and the
/// unit enter/exit event protocol.
///
/// Both tiers funnel every observable effect — cell reads/writes, DepSet
/// merges, listener events, step/limit accounting — through this one
/// struct, which is what makes their transcripts byte-identical: a tier can
/// only differ in *how* it walks the program, never in *what* an execution
/// records. The tree walker (interp/Interpreter.cpp) remains the oracle;
/// the register VM (bytecode/VM.cpp) is the fast path.
///
/// This is an internal header: everything here is an implementation detail
/// of interp::Interpreter and may change freely.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_INTERP_EXECSTATE_H
#define GADT_INTERP_EXECSTATE_H

#include "interp/Interpreter.h"
#include "obs/Metrics.h"
#include "support/Casting.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace gadt {
namespace interp {

/// Index of a cell in the interpreter's arena. Cells are pooled: handles of
/// dead activations return to a free list and are reissued with a fresh
/// serial, so a handle is only meaningful while its cell is live — which
/// the watermark discipline guarantees for every handle the interpreter
/// retains (see observeRead/freeActivationCells).
using CellRef = uint32_t;
constexpr CellRef NoCell = UINT32_MAX;

/// A storage location. Var parameters alias cells across activations, so
/// cells live in a shared arena and are identified by a serial number that
/// orders them by creation time (used to decide locality relative to a
/// unit). ReadUpTo/WriteUpTo are observation stamps: every live unit frame
/// whose FrameId is at or below the stamp has already recorded this cell
/// (or the cell is local to it), so observation walks touch each cell a
/// constant number of times per event instead of once per active frame.
struct Cell {
  Value V;
  uint64_t Serial = 0;
  uint64_t ReadUpTo = 0;
  uint64_t WriteUpTo = 0;
  /// Declaration the cell was created for (naming fallback).
  const pascal::VarDecl *Decl = nullptr;
};

/// One routine activation: a flat frame of cell handles indexed by the
/// slots Sema assigned (params, then locals, then the function result).
struct Activation {
  const pascal::RoutineDecl *R = nullptr;
  Activation *StaticLink = nullptr;
  /// Cells with Serial >= Watermark were created by (and die with) this
  /// activation; below it they are aliased from the caller.
  uint64_t Watermark = 0;
  std::vector<CellRef> Slots;
  /// Stack of *merged* control-dependence sets; back() is the set of deps
  /// governing any store performed right now.
  std::vector<DepSet> CtrlStack;

  const DepSet *activeCtrlDeps() const {
    return CtrlStack.empty() ? nullptr : &CtrlStack.back();
  }
};

/// Dynamic input/output observation for one executing unit.
struct UnitFrame {
  uint32_t NodeId = 0;
  UnitKind Kind = UnitKind::Call;
  /// Cells created at or after this serial are local to the unit.
  uint64_t Watermark = 0;
  /// Monotonic push id; cell stamps reference it.
  uint64_t FrameId = 0;
  Activation *Act = nullptr;
  std::vector<std::pair<CellRef, Value>> FirstReads;
  std::vector<CellRef> Writes;
};

/// All state one execution carries, plus every operation whose effects are
/// observable across tiers. Both executors derive from (or hold) one of
/// these; see the file comment.
struct ExecState {
  const pascal::Program &Prog;
  InterpOptions Opts;
  TraceListener *Listener = nullptr;
  std::vector<int64_t> Input;

  // Per-run state.
  bool Failed = false;
  RuntimeError Error;
  std::string Output;
  uint64_t Steps = 0;
  uint32_t NodeCounter = 0;
  uint64_t CellSerial = 0;
  uint64_t FrameCounter = 0;
  uint64_t PooledReuses = 0;
  size_t InputPos = 0;
  unsigned CallDepth = 0;
  std::vector<Cell> Arena;
  std::vector<CellRef> FreeList;
  /// Pooled unit-frame stack: [0, FrameTop) are live; slots above FrameTop
  /// keep their FirstReads/Writes buffer capacity for the next unit at that
  /// depth. Popping a frame is a decrement — with ~one malloc/free pair per
  /// unit otherwise, the pool is visible on every TrackDeps profile.
  std::vector<UnitFrame> Frames;
  size_t FrameTop = 0;

  ExecState(const pascal::Program &Prog, InterpOptions Opts)
      : Prog(Prog), Opts(Opts) {}

  void reset() {
    Failed = false;
    Error = RuntimeError();
    Output.clear();
    Steps = 0;
    NodeCounter = 0;
    CellSerial = 0;
    FrameCounter = 0;
    InputPos = 0;
    CallDepth = 0;
    Arena.clear();
    FreeList.clear();
    // Keep the frame pool's buffers but release the Values they pin.
    for (UnitFrame &F : Frames) {
      F.FirstReads.clear();
      F.Writes.clear();
    }
    FrameTop = 0;
  }

  /// Pushes a (recycled) unit frame. The caller must assign every header
  /// field; FirstReads/Writes come back empty with capacity retained.
  UnitFrame &pushFrame() {
    if (FrameTop == Frames.size())
      Frames.emplace_back();
    UnitFrame &F = Frames[FrameTop++];
    F.FirstReads.clear();
    F.Writes.clear();
    return F;
  }

  /// Publishes per-run pool statistics; called at the end of each entry
  /// point so hot paths pay plain increments, not atomics.
  void flushPoolStats() {
    if (PooledReuses == 0)
      return;
    static obs::Counter &Pooled =
        obs::Registry::global().counter("interp.cells.pooled");
    Pooled.add(PooledReuses);
    PooledReuses = 0;
  }

  void fail(SourceLoc Loc, std::string Msg) {
    if (Failed)
      return;
    Failed = true;
    Error.Loc = Loc;
    Error.Message = std::move(Msg);
  }

  CellRef newCell(const pascal::VarDecl *Decl, Value V) {
    CellRef H;
    if (!FreeList.empty()) {
      H = FreeList.back();
      FreeList.pop_back();
      ++PooledReuses;
    } else {
      H = static_cast<CellRef>(Arena.size());
      Arena.emplace_back();
    }
    Cell &C = Arena[H];
    C.V = std::move(V);
    C.Serial = ++CellSerial;
    C.ReadUpTo = 0;
    C.WriteUpTo = 0;
    C.Decl = Decl;
    return H;
  }

  /// Returns the cells this activation created to the pool. Safe because no
  /// retained handle can reach them afterwards: enclosing unit frames only
  /// record cells below their watermark, which is at or below this
  /// activation's, and the activation's own frames are popped first.
  void freeActivationCells(Activation &Act) {
    for (CellRef H : Act.Slots) {
      if (H == NoCell)
        continue;
      Cell &C = Arena[H];
      if (C.Serial < Act.Watermark)
        continue; // aliased from the caller
      C.V.poolReset(); // don't let pooled cells pin heap payload
      FreeList.push_back(H);
    }
  }

  /// Initial value of a freshly declared variable: in strict mode scalars
  /// stay unset so use-before-assignment is detectable.
  Value initialValue(const pascal::Type *Ty) {
    if (Opts.DetectUninitialized && Ty && !Ty->isArray())
      return Value();
    return defaultValue(Ty);
  }

  //===--------------------------------------------------------------------===//
  // Cell access with unit-frame observation
  //===--------------------------------------------------------------------===//

  // Watermarks are non-decreasing with frame-stack depth, so the frames a
  // cell is non-local to form a suffix of the stack; so do the frames above
  // a cell's stamp. Observation therefore walks from the top of the stack
  // and stops at the first frame that is already covered — each event costs
  // O(frames actually recording), not O(live frames).

  /// Records a read of \p H in every active unit frame to which the cell is
  /// non-local and not already read or written. Call *before* using the
  /// value.
  ///
  /// First-read capture exists solely to assemble input bindings for the
  /// listener (finishCallUnit/exitLoopUnit read FirstReads under
  /// `if (Listener)` only), so with no listener the whole walk — including
  /// the Value copy per recorded read — is skipped. Write observation has
  /// no such shortcut: the Writes list drives output dependence merges,
  /// which persist in cells whether or not anyone is listening.
  void observeRead(CellRef H) {
    if (!Listener || FrameTop == 0)
      return;
    Cell &C = Arena[H];
    uint64_t Stamp = std::max(C.ReadUpTo, C.WriteUpTo);
    for (size_t I = FrameTop; I-- > 0;) {
      UnitFrame &F = Frames[I];
      if (F.FrameId <= Stamp || C.Serial >= F.Watermark)
        break;
      F.FirstReads.push_back({H, C.V});
    }
    if (C.ReadUpTo < Frames[FrameTop - 1].FrameId)
      C.ReadUpTo = Frames[FrameTop - 1].FrameId;
  }

  /// Records a write of \p H in every active unit frame to which the cell
  /// is non-local.
  void observeWrite(CellRef H) {
    if (FrameTop == 0)
      return;
    Cell &C = Arena[H];
    for (size_t I = FrameTop; I-- > 0;) {
      UnitFrame &F = Frames[I];
      if (F.FrameId <= C.WriteUpTo || C.Serial >= F.Watermark)
        break;
      F.Writes.push_back(H);
    }
    if (C.WriteUpTo < Frames[FrameTop - 1].FrameId)
      C.WriteUpTo = Frames[FrameTop - 1].FrameId;
  }

  /// Whether \p H was write-recorded in \p F (valid right after \p F was
  /// popped, before any new frame is pushed).
  bool writtenInFrame(const UnitFrame &F, CellRef H) const {
    return Arena[H].WriteUpTo >= F.FrameId && Arena[H].Serial < F.Watermark;
  }

  /// Full store: observes the write and applies active control deps.
  void storeCell(Activation &A, CellRef H, Value V) {
    observeWrite(H);
    if (Opts.TrackDeps)
      if (const DepSet *Ctrl = A.activeCtrlDeps())
        V.deps().mergeWith(*Ctrl);
    Arena[H].V = std::move(V);
  }

  //===--------------------------------------------------------------------===//
  // Name / cell resolution
  //===--------------------------------------------------------------------===//

  CellRef getCell(Activation &A, const pascal::VarDecl *D, SourceLoc Loc) {
    Activation *Cur = &A;
    for (uint32_t Hops = Cur->R->getStorageDepth() - D->getDepth();
         Hops && Cur; --Hops)
      Cur = Cur->StaticLink;
    if (Cur && D->getSlot() < Cur->Slots.size()) {
      CellRef H = Cur->Slots[D->getSlot()];
      if (H != NoCell)
        return H;
    }
    fail(Loc, "internal: no storage for variable '" + D->getName() + "'");
    return NoCell;
  }

  /// The parameter declaration whose frame slot holds \p H, or null. When
  /// two reference parameters alias one cell, the last one wins (matching
  /// the map-based attribution this replaced).
  const pascal::VarDecl *paramOfCell(const Activation &Act,
                                     const pascal::RoutineDecl *Callee,
                                     CellRef H) const {
    const pascal::VarDecl *Found = nullptr;
    size_t NumParams = Callee->getParams().size();
    for (size_t I = 0; I != NumParams; ++I)
      if (Act.Slots[I] == H)
        Found = Callee->getParams()[I].get();
    return Found;
  }

  /// Returns the name under which \p H is visible from activation \p A
  /// (var parameters alias caller cells whose creation name differs from
  /// the local parameter name). Falls back to the creation name.
  std::string nameOfCell(Activation *A, CellRef H) {
    for (Activation *Cur = A; Cur; Cur = Cur->StaticLink)
      for (size_t I = 0, N = Cur->Slots.size(); I != N; ++I)
        if (Cur->Slots[I] == H)
          return Cur->R->getSlotDecls()[I]->getName();
    const pascal::VarDecl *D = Arena[H].Decl;
    return D ? D->getName() : std::string("<cell>");
  }

  //===--------------------------------------------------------------------===//
  // Step accounting and control-dependence stack
  //===--------------------------------------------------------------------===//

  bool countStep(SourceLoc Loc) {
    if (++Steps > Opts.MaxSteps) [[unlikely]] {
      fail(Loc, "step limit exceeded (possible non-termination)");
      return false;
    }
    return true;
  }

  void pushCtrl(Activation &A, const DepSet &CondDeps) {
    if (!Opts.TrackDeps)
      return;
    DepSet Merged = CondDeps;
    if (const DepSet *Active = A.activeCtrlDeps())
      Merged.mergeWith(*Active);
    A.CtrlStack.push_back(std::move(Merged));
  }

  void popCtrl(Activation &A) {
    if (!Opts.TrackDeps)
      return;
    A.CtrlStack.pop_back();
  }

  //===--------------------------------------------------------------------===//
  // Unit protocol: calls
  //===--------------------------------------------------------------------===//

  /// Raises the enter event for a routine-call unit and pushes its
  /// observation frame. Returns the unit's node id; finishCallUnit closes
  /// the unit after the body executed.
  uint32_t beginCallUnit(Activation &Act, const pascal::RoutineDecl *Callee,
                         const pascal::Stmt *CallStmt,
                         const pascal::Expr *CallExpr, SourceLoc Loc,
                         uint64_t Watermark) {
    uint32_t NodeId = ++NodeCounter;
    if (Listener) {
      UnitStart Start;
      Start.NodeId = NodeId;
      Start.Kind = UnitKind::Call;
      Start.Name = Callee->getName();
      Start.Routine = Callee;
      Start.CallStmt = CallStmt;
      Start.CallExpr = CallExpr;
      Start.Loc = Loc;
      Listener->enterUnit(Start);
    }
    UnitFrame &F = pushFrame();
    F.NodeId = NodeId;
    F.Kind = UnitKind::Call;
    F.Watermark = Watermark;
    F.FrameId = ++FrameCounter;
    F.Act = &Act;
    return NodeId;
  }

  /// Pops the unit frame pushed by beginCallUnit, assembles the dynamic
  /// input/output bindings, applies the output dependence merges (which
  /// persist in the written cells — semantics, not bookkeeping) and raises
  /// the exit event.
  ///
  /// \p EntryInputs carries bindings for value/in parameters (captured at
  /// entry — only when bindings are wanted). \p OutputsOut, when non-null,
  /// receives the output bindings even without a listener (callRoutine
  /// needs them); otherwise bindings are only assembled for the listener.
  void finishCallUnit(Activation &Act, const pascal::RoutineDecl *Callee,
                      std::vector<Binding> EntryInputs, uint32_t NodeId,
                      Activation *Caller, std::vector<Binding> *OutputsOut,
                      Value *Result) {
    // Pop by decrement; the slot stays valid (nothing below pushes a unit
    // frame before this function returns) and its buffers get recycled.
    UnitFrame &Frame = Frames[--FrameTop];

    bool WantOut = Listener || OutputsOut;

    // Assemble inputs: declared-order parameters first, then true global
    // side reads. Pure bookkeeping for the listener — skipped entirely
    // when no one is listening.
    std::vector<Binding> Inputs;
    if (Listener) {
      Inputs = std::move(EntryInputs);
      // var parameters that were read before being written.
      for (const auto &[C, V] : Frame.FirstReads)
        if (const pascal::VarDecl *P = paramOfCell(Act, Callee, C))
          Inputs.push_back({P->getName(), V});
      // Global (non-parameter) reads.
      for (const auto &[C, V] : Frame.FirstReads)
        if (!paramOfCell(Act, Callee, C))
          Inputs.push_back({nameOfCell(&Act, C), V});
    }

    // Outputs: var/out parameters in declared order, then global writes,
    // then the function result. The dependence merges are semantics (they
    // persist in the written cells), so they run with or without bindings.
    std::vector<Binding> Outputs;
    DepSet OutDeps;
    if (Opts.TrackDeps) {
      OutDeps.insert(NodeId);
      if (Caller)
        if (const DepSet *Ctrl = Caller->activeCtrlDeps())
          OutDeps.mergeWith(*Ctrl);
    }
    auto finalizeOut = [&](Value &V) {
      if (Opts.TrackDeps)
        V.deps().mergeWith(OutDeps);
    };
    for (const auto &P : Callee->getParams()) {
      if (!P->isReference())
        continue;
      CellRef C = Act.Slots[P->getSlot()];
      if (C == NoCell)
        continue;
      if (writtenInFrame(Frame, C) || P->getMode() == pascal::ParamMode::Out) {
        finalizeOut(Arena[C].V);
        if (WantOut)
          Outputs.push_back({P->getName(), Arena[C].V});
      }
    }
    for (CellRef C : Frame.Writes)
      if (!paramOfCell(Act, Callee, C)) {
        finalizeOut(Arena[C].V);
        if (WantOut)
          Outputs.push_back({nameOfCell(&Act, C), Arena[C].V});
      }
    if (Callee->isFunction()) {
      CellRef C = Act.Slots[Callee->getResultVar()->getSlot()];
      if (C != NoCell) {
        if (Opts.DetectUninitialized && Arena[C].V.isUnset() && !Failed)
          fail(Callee->getLoc(), "function '" + Callee->getName() +
                                     "' returns without assigning its "
                                     "result");
        finalizeOut(Arena[C].V);
        if (WantOut)
          Outputs.push_back({Callee->getName(), Arena[C].V});
        if (Result)
          *Result = std::move(Arena[C].V);
      }
    }

    if (Listener) {
      if (OutputsOut)
        Listener->exitUnit(NodeId, std::move(Inputs), Outputs);
      else
        Listener->exitUnit(NodeId, std::move(Inputs), std::move(Outputs));
    }
    if (OutputsOut)
      *OutputsOut = std::move(Outputs);
  }

  //===--------------------------------------------------------------------===//
  // Unit protocol: loops and iterations
  //===--------------------------------------------------------------------===//

  /// Pushes a frame + listener event for a loop or iteration unit; returns
  /// the node id (0 when this unit kind is not traced).
  uint32_t enterLoopUnit(UnitKind Kind, support::Symbol Name,
                         const pascal::Stmt *LoopStmt, uint32_t IterIndex,
                         SourceLoc Loc, Activation &A) {
    if (!Opts.TraceLoops)
      return 0;
    if (Kind == UnitKind::Iteration && !Opts.TraceIterations)
      return 0;
    uint32_t NodeId = ++NodeCounter;
    if (Listener) {
      UnitStart Start;
      Start.NodeId = NodeId;
      Start.Kind = Kind;
      Start.Name = Name;
      Start.LoopStmt = LoopStmt;
      Start.IterIndex = IterIndex;
      Start.Loc = Loc;
      Listener->enterUnit(Start);
    }
    UnitFrame &F = pushFrame();
    F.NodeId = NodeId;
    F.Kind = Kind;
    F.Watermark = CellSerial + 1;
    F.FrameId = ++FrameCounter;
    F.Act = &A;
    return NodeId;
  }

  void exitLoopUnit(uint32_t NodeId, Activation &A) {
    if (NodeId == 0)
      return;
    UnitFrame &Frame = Frames[--FrameTop]; // pop; see finishCallUnit
    std::vector<Binding> Inputs, Outputs;
    if (Listener)
      for (const auto &[C, V] : Frame.FirstReads)
        Inputs.push_back({nameOfCell(&A, C), V});
    DepSet OutDeps;
    if (Opts.TrackDeps) {
      OutDeps.insert(NodeId);
      if (const DepSet *Ctrl = A.activeCtrlDeps())
        OutDeps.mergeWith(*Ctrl);
    }
    for (CellRef C : Frame.Writes) {
      if (Opts.TrackDeps)
        Arena[C].V.deps().mergeWith(OutDeps);
      if (Listener)
        Outputs.push_back({nameOfCell(&A, C), Arena[C].V});
    }
    if (Listener)
      Listener->exitUnit(NodeId, std::move(Inputs), std::move(Outputs));
  }

  //===--------------------------------------------------------------------===//
  // Program entry and exit (the root unit)
  //===--------------------------------------------------------------------===//

  /// Sets up \p Act as the main activation: globals become fresh cells.
  /// \p Act must already be empty/reset.
  void setUpMainActivation(Activation &Act) {
    Act.R = Prog.getMain();
    Act.StaticLink = nullptr;
    Act.Watermark = CellSerial + 1;
    Act.Slots.assign(Prog.getMain()->getNumSlots(), NoCell);
    Act.CtrlStack.clear();
    for (const auto &G : Prog.getMain()->getLocals())
      Act.Slots[G->getSlot()] = newCell(G.get(), initialValue(G->getType()));
  }

  /// Raises the enter event for the root (whole-program) unit and pushes
  /// its observation frame. Returns the root node id.
  uint32_t enterRoot(Activation &Main) {
    uint32_t RootId = ++NodeCounter;
    if (Listener) {
      UnitStart Start;
      Start.NodeId = RootId;
      Start.Kind = UnitKind::Call;
      Start.Name = Prog.getMain()->getName();
      Start.Routine = Prog.getMain();
      Start.Loc = Prog.getMain()->getLoc();
      Listener->enterUnit(Start);
    }
    UnitFrame &F = pushFrame();
    F.NodeId = RootId;
    F.Kind = UnitKind::Call;
    F.Watermark = CellSerial + 1;
    F.FrameId = ++FrameCounter;
    F.Act = &Main;
    return RootId;
  }

  /// Pops the root frame, assembles the final-global bindings and raises
  /// the root exit event (globals plus the collected `<output>` text).
  void exitRoot(uint32_t RootId, Activation &Main, ExecResult &Res) {
    --FrameTop;
    for (const auto &G : Prog.getMain()->getLocals())
      Res.FinalGlobals.push_back(
          {G->getName(), Arena[Main.Slots[G->getSlot()]].V});
    if (Listener) {
      std::vector<Binding> Outputs = Res.FinalGlobals;
      if (!Output.empty())
        Outputs.push_back({"<output>", Value::makeStr(Output)});
      Listener->exitUnit(RootId, {}, std::move(Outputs));
    }
  }
};

} // namespace interp
} // namespace gadt

#endif // GADT_INTERP_EXECSTATE_H
