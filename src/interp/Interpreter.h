//===- Interpreter.h - Tracing Pascal interpreter ---------------*- C++ -*-===//
//
// Part of the GADT project (PLDI'91 GADT reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking interpreter for the Pascal subset with the hooks GADT's
/// tracing phase needs:
///
///  - Unit events: every routine call (and, optionally, every local loop and
///    loop iteration — the paper's debugging units) raises enter/exit events
///    carrying input and output bindings. Input/output sets are computed
///    *dynamically*: a unit's inputs are the parameters plus every non-local
///    cell it read before writing; its outputs are the var/out parameters
///    and non-local cells it wrote, plus the function result. This realizes
///    the paper's requirement that the execution tree record "parameter
///    values and value of variables which cause global side-effects within
///    the unit" without relying on static analysis.
///
///  - Dependence tracking: when enabled, every value carries the set of unit
///    executions whose outputs flowed into it (including dynamic control
///    dependences), which the dynamic slicer consumes.
///
///  - Non-local gotos execute with exit-side-effect semantics (activations
///    unwind until the declaring routine is reached), so untransformed
///    programs behave identically to their transformed versions.
///
//===----------------------------------------------------------------------===//

#ifndef GADT_INTERP_INTERPRETER_H
#define GADT_INTERP_INTERPRETER_H

#include "interp/Value.h"
#include "pascal/AST.h"
#include "support/SourceLoc.h"
#include "support/Symbols.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gadt {
namespace bytecode {
struct CompiledProgram;
} // namespace bytecode
namespace interp {

/// Which executor runs the program. Both tiers raise identical events and
/// produce byte-identical results; the bytecode tier is simply faster.
/// `Auto` defers to the `GADT_EXEC_TIER` environment variable
/// (`tree`/`bytecode`) and defaults to bytecode. Programs the bytecode
/// compiler cannot handle (non-local gotos, un-annotated hand-built ASTs,
/// encoding overflows) automatically fall back to the tree walker.
enum class ExecTier : uint8_t { Auto, Tree, Bytecode };

/// A fatal condition encountered while executing the subject program.
struct RuntimeError {
  SourceLoc Loc;
  std::string Message;
};

/// What kind of debugging unit an execution-tree node stands for.
enum class UnitKind : uint8_t { Call, Loop, Iteration };

/// A named value crossing a unit boundary. The name is an interned symbol:
/// one word per binding, and the execution tree's millions of bindings
/// share a single copy of each distinct name.
struct Binding {
  support::Symbol Name;
  Value V;
};

/// Identification of a unit execution, delivered on entry.
struct UnitStart {
  uint32_t NodeId = 0;
  UnitKind Kind = UnitKind::Call;
  /// Routine name for calls; the loop's synthesized unit name for loops and
  /// iterations. Interned — comparisons are integer compares.
  support::Symbol Name;
  const pascal::RoutineDecl *Routine = nullptr; // calls only
  const pascal::Stmt *CallStmt = nullptr;  // statement-position call site
  const pascal::Expr *CallExpr = nullptr;  // expression-position call site
  const pascal::Stmt *LoopStmt = nullptr;  // loops and iterations
  uint32_t IterIndex = 0;                  // 1-based, iterations only
  SourceLoc Loc;
};

/// Receives unit enter/exit events; the trace library's ExecTreeBuilder is
/// the canonical implementation.
class TraceListener {
public:
  virtual ~TraceListener();
  virtual void enterUnit(const UnitStart &Start) = 0;
  virtual void exitUnit(uint32_t NodeId, std::vector<Binding> Inputs,
                        std::vector<Binding> Outputs) = 0;
};

/// Execution knobs.
struct InterpOptions {
  /// Raise unit events for local loops (paper: loops are debugging units).
  bool TraceLoops = false;
  /// Raise unit events for individual loop iterations (requires TraceLoops).
  bool TraceIterations = false;
  /// Track value dependences for dynamic slicing.
  bool TrackDeps = false;
  /// Abort with a runtime error after this many executed statements.
  uint64_t MaxSteps = 50000000;
  /// Abort when the subject's call depth exceeds this (runaway recursion
  /// would otherwise exhaust the host stack).
  unsigned MaxCallDepth = 1000;
  /// Strict mode: scalar variables start out unset and reading one before
  /// assigning it is a runtime error, as is a function returning without
  /// assigning its result. (Arrays are still zero-initialized; per-element
  /// tracking is out of scope.) Off by default — standard Pascal leaves
  /// such reads undefined, and the paper's programs do not rely on them.
  bool DetectUninitialized = false;
  /// Executor selection; see ExecTier.
  ExecTier Tier = ExecTier::Auto;
  /// Precompiled bytecode for the program being run (e.g. from the
  /// RuntimeContext code cache). Used only when it matches the program and
  /// the DetectUninitialized mode; otherwise the interpreter compiles (or
  /// falls back) on its own. The referenced program must stay alive for as
  /// long as this compiled unit is used.
  std::shared_ptr<const bytecode::CompiledProgram> Code;
};

/// Result of running a whole program.
struct ExecResult {
  bool Ok = false;
  RuntimeError Error;
  /// Text produced by write/writeln.
  std::string Output;
  /// Final values of the program's global variables.
  std::vector<Binding> FinalGlobals;
  uint64_t Steps = 0;
  uint32_t UnitsExecuted = 0;
};

/// Result of invoking one routine directly (used by the T-GEN test runner
/// and by reference-program oracles).
struct CallOutcome {
  bool Ok = false;
  RuntimeError Error;
  /// var/out parameters (final values) and, for functions, the result —
  /// in declaration order, result last.
  std::vector<Binding> Outputs;
  std::string Output;
};

/// The interpreter. One instance executes one program; it may be run
/// multiple times (state is reset per run).
class Interpreter {
public:
  explicit Interpreter(const pascal::Program &P, InterpOptions Opts = {});
  ~Interpreter();

  Interpreter(const Interpreter &) = delete;
  Interpreter &operator=(const Interpreter &) = delete;

  /// Values consumed by read() statements, in order.
  void setInput(std::vector<int64_t> Input);
  /// Receives unit events; may be null. Not owned.
  void setListener(TraceListener *L);

  /// Executes the whole program.
  ExecResult run();

  /// Executes a single routine. \p Name is the simple (lowercase) routine
  /// name, looked up depth-first in the routine tree. \p Args supplies one
  /// value per parameter (values for var/out parameters initialize the
  /// callee-visible cell; pass Value() for out parameters). Globals are
  /// default-initialized, then overridden by \p GlobalPresets (matched by
  /// name against the variables of enclosing scopes) — this lets reference
  /// oracles replay a traced call of a routine with global side effects.
  ///
  /// Outputs carry the same bindings a traced execution would record
  /// (written var/out parameters, global side effects, function result),
  /// plus unwritten var parameters for checker convenience.
  CallOutcome callRoutine(const std::string &Name, std::vector<Value> Args,
                          const std::vector<Binding> &GlobalPresets = {});

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

/// Returns a default-initialized value of type \p Ty (0 / false / zeroed
/// array with declared bounds).
Value defaultValue(const pascal::Type *Ty);

} // namespace interp
} // namespace gadt

#endif // GADT_INTERP_INTERPRETER_H
