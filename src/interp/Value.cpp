//===- Value.cpp - Runtime values -----------------------------------------===//

#include "interp/Value.h"

#include <algorithm>

using namespace gadt;
using namespace gadt::interp;

bool DepSet::contains(uint32_t Id) const {
  return std::binary_search(Ids.begin(), Ids.end(), Id);
}

void DepSet::insert(uint32_t Id) {
  auto It = std::lower_bound(Ids.begin(), Ids.end(), Id);
  if (It == Ids.end() || *It != Id)
    Ids.insert(It, Id);
}

void DepSet::mergeWith(const DepSet &Other) {
  if (Other.Ids.empty())
    return;
  if (Ids.empty()) {
    Ids = Other.Ids;
    return;
  }
  std::vector<uint32_t> Merged;
  Merged.reserve(Ids.size() + Other.Ids.size());
  std::set_union(Ids.begin(), Ids.end(), Other.Ids.begin(), Other.Ids.end(),
                 std::back_inserter(Merged));
  Ids = std::move(Merged);
}

bool Value::equals(const Value &Other) const {
  if (K != Other.K)
    return false;
  switch (K) {
  case Kind::Unset:
    return true;
  case Kind::Int:
    return Int == Other.Int;
  case Kind::Bool:
    return Bool == Other.Bool;
  case Kind::Array:
    return Array == Other.Array;
  case Kind::Str:
    return Str == Other.Str;
  }
  return false;
}

std::string Value::str() const {
  switch (K) {
  case Kind::Unset:
    return "<unset>";
  case Kind::Int:
    return std::to_string(Int);
  case Kind::Bool:
    return Bool ? "true" : "false";
  case Kind::Str:
    return "'" + Str + "'";
  case Kind::Array: {
    std::string Out = "[";
    for (size_t I = 0, N = Array.Elems.size(); I != N; ++I) {
      if (I != 0)
        Out += ", ";
      Out += std::to_string(Array.Elems[I]);
    }
    Out += "]";
    return Out;
  }
  }
  return "<invalid>";
}
