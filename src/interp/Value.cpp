//===- Value.cpp - Runtime values -----------------------------------------===//

#include "interp/Value.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <unordered_map>

using namespace gadt;
using namespace gadt::interp;

namespace {

using HeapVec = std::vector<uint32_t>;
using HeapPtr = std::shared_ptr<HeapVec>;

uint64_t hashIds(const uint32_t *P, size_t N) {
  uint64_t H = 1469598103934665603ull; // FNV-1a
  for (size_t I = 0; I != N; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

/// Per-thread hash-consing table for heap-backed id vectors. Thread-local
/// so BatchRunner threads never contend; entries hold shared_ptrs, so a
/// consumer (execution tree, slicer) outliving the interning thread is
/// fine. Capped: dependence sets of one subject repeat heavily, but across
/// many subjects the population is unbounded, so the table is dropped
/// wholesale when it grows past the cap (correctness is unaffected —
/// interning only dedupes storage).
struct InternTable {
  static constexpr size_t MaxEntries = 1 << 15;
  std::unordered_map<uint64_t, std::vector<HeapPtr>> Buckets;
  size_t Entries = 0;
};

thread_local InternTable Interned;

HeapPtr internVec(HeapVec V) {
  InternTable &T = Interned;
  if (T.Entries >= InternTable::MaxEntries) {
    T.Buckets.clear();
    T.Entries = 0;
  }
  auto &Cands = T.Buckets[hashIds(V.data(), V.size())];
  for (const HeapPtr &C : Cands)
    if (*C == V) {
      static obs::Counter &Hits =
          obs::Registry::global().counter("interp.depset.intern_hits");
      Hits.add();
      return C;
    }
  Cands.push_back(std::make_shared<HeapVec>(std::move(V)));
  ++T.Entries;
  return Cands.back();
}

} // namespace

void DepSet::adopt(HeapVec V) {
  if (V.size() <= InlineCap) {
    Heap.reset();
    std::copy(V.begin(), V.end(), Small);
    Count = static_cast<uint32_t>(V.size());
    return;
  }
  // Interning pays off for the small-to-medium sets that recur (loop
  // bodies re-merging the same dependences); very large sets are mostly
  // unique prefixes of a growing chain, where hashing every merge result
  // costs more than the occasional dedup saves. They still share storage
  // through the copy-on-write handle.
  constexpr size_t InternMax = 16;
  Heap = V.size() <= InternMax
             ? internVec(std::move(V))
             : std::make_shared<HeapVec>(std::move(V));
  Count = 0;
}

bool DepSet::contains(uint32_t Id) const {
  const uint32_t *B = begin();
  return std::binary_search(B, B + size(), Id);
}

void DepSet::insert(uint32_t Id) {
  const uint32_t *B = begin();
  size_t N = size();
  const uint32_t *Pos = std::lower_bound(B, B + N, Id);
  if (Pos != B + N && *Pos == Id)
    return;
  if (!Heap && N < InlineCap) {
    size_t At = static_cast<size_t>(Pos - B);
    for (size_t I = N; I > At; --I)
      Small[I] = Small[I - 1];
    Small[At] = Id;
    ++Count;
    return;
  }
  HeapVec V;
  V.reserve(N + 1);
  V.insert(V.end(), B, Pos);
  V.push_back(Id);
  V.insert(V.end(), Pos, B + N);
  adopt(std::move(V));
}

void DepSet::mergeWith(const DepSet &Other) {
  if (&Other == this)
    return;
  size_t ON = Other.size();
  if (ON == 0)
    return;
  size_t N = size();
  if (N == 0) {
    *this = Other; // inline copy or refcount bump — never an allocation
    return;
  }
  if (Heap && Heap == Other.Heap)
    return;
  const uint32_t *A = begin();
  const uint32_t *B = Other.begin();
  if (N + ON <= InlineCap) {
    uint32_t Tmp[InlineCap];
    uint32_t *End = std::set_union(A, A + N, B, B + ON, Tmp);
    std::copy(Tmp, End, Small);
    Count = static_cast<uint32_t>(End - Tmp);
    return;
  }
  // Disjoint-range fast path: a unit finishing merges its fresh (maximal)
  // node id into accumulated deps constantly — that union is plain
  // concatenation, no element-wise walk needed.
  if (A[N - 1] < B[0] || B[ON - 1] < A[0]) {
    // Sole owner of an uninterned heap vector (the growing tip of a merge
    // chain): extend it in place. Geometric capacity growth turns the
    // one-allocation-per-merge pattern into O(log n) allocations.
    if (Heap && Heap.use_count() == 1 && N > InlineCap) {
      if (A[N - 1] < B[0])
        Heap->insert(Heap->end(), B, B + ON);
      else
        Heap->insert(Heap->begin(), B, B + ON);
      return;
    }
    const uint32_t *Lo = A[N - 1] < B[0] ? A : B;
    size_t LoN = Lo == A ? N : ON;
    const uint32_t *Hi = Lo == A ? B : A;
    size_t HiN = N + ON - LoN;
    HeapVec Cat;
    Cat.reserve(N + ON);
    Cat.insert(Cat.end(), Lo, Lo + LoN);
    Cat.insert(Cat.end(), Hi, Hi + HiN);
    adopt(std::move(Cat));
    return;
  }
  // Subsumption fast paths: merge chains in TrackDeps runs mostly re-merge
  // sets that already contain each other.
  if (ON <= N && std::includes(A, A + N, B, B + ON))
    return;
  if (N < ON && std::includes(B, B + ON, A, A + N)) {
    *this = Other;
    return;
  }
  HeapVec Merged;
  Merged.reserve(N + ON);
  std::set_union(A, A + N, B, B + ON, std::back_inserter(Merged));
  adopt(std::move(Merged));
}

bool Value::equals(const Value &Other) const {
  if (K != Other.K)
    return false;
  switch (K) {
  case Kind::Unset:
    return true;
  case Kind::Int:
    return Int == Other.Int;
  case Kind::Bool:
    return Bool == Other.Bool;
  case Kind::Array:
    return Array == Other.Array;
  case Kind::Str:
    return Str == Other.Str;
  }
  return false;
}

std::string Value::str() const {
  switch (K) {
  case Kind::Unset:
    return "<unset>";
  case Kind::Int:
    return std::to_string(Int);
  case Kind::Bool:
    return Bool ? "true" : "false";
  case Kind::Str:
    return "'" + Str + "'";
  case Kind::Array: {
    std::string Out = "[";
    for (size_t I = 0, N = Array.Elems.size(); I != N; ++I) {
      if (I != 0)
        Out += ", ";
      Out += std::to_string(Array.Elems[I]);
    }
    Out += "]";
    return Out;
  }
  }
  return "<invalid>";
}
