file(REMOVE_RECURSE
  "libgadt_slicing.a"
)
