
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slicing/DynamicSlicer.cpp" "src/slicing/CMakeFiles/gadt_slicing.dir/DynamicSlicer.cpp.o" "gcc" "src/slicing/CMakeFiles/gadt_slicing.dir/DynamicSlicer.cpp.o.d"
  "/root/repo/src/slicing/ProgramProjection.cpp" "src/slicing/CMakeFiles/gadt_slicing.dir/ProgramProjection.cpp.o" "gcc" "src/slicing/CMakeFiles/gadt_slicing.dir/ProgramProjection.cpp.o.d"
  "/root/repo/src/slicing/StaticSlicer.cpp" "src/slicing/CMakeFiles/gadt_slicing.dir/StaticSlicer.cpp.o" "gcc" "src/slicing/CMakeFiles/gadt_slicing.dir/StaticSlicer.cpp.o.d"
  "/root/repo/src/slicing/TreePruner.cpp" "src/slicing/CMakeFiles/gadt_slicing.dir/TreePruner.cpp.o" "gcc" "src/slicing/CMakeFiles/gadt_slicing.dir/TreePruner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/gadt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gadt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/gadt_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/pascal/CMakeFiles/gadt_pascal.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gadt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
