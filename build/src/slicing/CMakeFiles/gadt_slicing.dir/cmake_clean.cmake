file(REMOVE_RECURSE
  "CMakeFiles/gadt_slicing.dir/DynamicSlicer.cpp.o"
  "CMakeFiles/gadt_slicing.dir/DynamicSlicer.cpp.o.d"
  "CMakeFiles/gadt_slicing.dir/ProgramProjection.cpp.o"
  "CMakeFiles/gadt_slicing.dir/ProgramProjection.cpp.o.d"
  "CMakeFiles/gadt_slicing.dir/StaticSlicer.cpp.o"
  "CMakeFiles/gadt_slicing.dir/StaticSlicer.cpp.o.d"
  "CMakeFiles/gadt_slicing.dir/TreePruner.cpp.o"
  "CMakeFiles/gadt_slicing.dir/TreePruner.cpp.o.d"
  "libgadt_slicing.a"
  "libgadt_slicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadt_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
