# Empty dependencies file for gadt_slicing.
# This may be replaced when dependencies are built.
