file(REMOVE_RECURSE
  "libgadt_transform.a"
)
