
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/GlobalGotos.cpp" "src/transform/CMakeFiles/gadt_transform.dir/GlobalGotos.cpp.o" "gcc" "src/transform/CMakeFiles/gadt_transform.dir/GlobalGotos.cpp.o.d"
  "/root/repo/src/transform/GlobalsToParams.cpp" "src/transform/CMakeFiles/gadt_transform.dir/GlobalsToParams.cpp.o" "gcc" "src/transform/CMakeFiles/gadt_transform.dir/GlobalsToParams.cpp.o.d"
  "/root/repo/src/transform/LoopEscapes.cpp" "src/transform/CMakeFiles/gadt_transform.dir/LoopEscapes.cpp.o" "gcc" "src/transform/CMakeFiles/gadt_transform.dir/LoopEscapes.cpp.o.d"
  "/root/repo/src/transform/Transform.cpp" "src/transform/CMakeFiles/gadt_transform.dir/Transform.cpp.o" "gcc" "src/transform/CMakeFiles/gadt_transform.dir/Transform.cpp.o.d"
  "/root/repo/src/transform/TransformUtils.cpp" "src/transform/CMakeFiles/gadt_transform.dir/TransformUtils.cpp.o" "gcc" "src/transform/CMakeFiles/gadt_transform.dir/TransformUtils.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/gadt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pascal/CMakeFiles/gadt_pascal.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gadt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
