file(REMOVE_RECURSE
  "CMakeFiles/gadt_transform.dir/GlobalGotos.cpp.o"
  "CMakeFiles/gadt_transform.dir/GlobalGotos.cpp.o.d"
  "CMakeFiles/gadt_transform.dir/GlobalsToParams.cpp.o"
  "CMakeFiles/gadt_transform.dir/GlobalsToParams.cpp.o.d"
  "CMakeFiles/gadt_transform.dir/LoopEscapes.cpp.o"
  "CMakeFiles/gadt_transform.dir/LoopEscapes.cpp.o.d"
  "CMakeFiles/gadt_transform.dir/Transform.cpp.o"
  "CMakeFiles/gadt_transform.dir/Transform.cpp.o.d"
  "CMakeFiles/gadt_transform.dir/TransformUtils.cpp.o"
  "CMakeFiles/gadt_transform.dir/TransformUtils.cpp.o.d"
  "libgadt_transform.a"
  "libgadt_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadt_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
