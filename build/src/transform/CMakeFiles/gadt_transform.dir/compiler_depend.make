# Empty compiler generated dependencies file for gadt_transform.
# This may be replaced when dependencies are built.
