file(REMOVE_RECURSE
  "CMakeFiles/gadt_trace.dir/ExecTree.cpp.o"
  "CMakeFiles/gadt_trace.dir/ExecTree.cpp.o.d"
  "CMakeFiles/gadt_trace.dir/ExecTreeBuilder.cpp.o"
  "CMakeFiles/gadt_trace.dir/ExecTreeBuilder.cpp.o.d"
  "libgadt_trace.a"
  "libgadt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
