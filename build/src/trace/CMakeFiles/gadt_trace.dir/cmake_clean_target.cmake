file(REMOVE_RECURSE
  "libgadt_trace.a"
)
